(* Tests for the fleet topology generator (lib/netgen) and the E5
   fleet evaluation. *)

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Generator shape                                                     *)
(* ------------------------------------------------------------------ *)

let test_fat_tree_shape () =
  let t = Netgen.generate ~profile:Netgen.Fat_tree ~routers:20 in
  checki "internal routers" 20 (List.length t.Netgen.nodes);
  checki "k" 4 t.Netgen.k;
  (* 21 = 20 internal + the external origin router. *)
  checki "topology size" 21
    (List.length (Netsim.Topology.router_names t.Netgen.topology));
  let roles r =
    List.length (List.filter (fun n -> n.Netgen.role = r) t.Netgen.nodes)
  in
  checki "cores" 4 (roles Netgen.Core);
  checki "aggs" 8 (roles Netgen.Aggregation);
  checki "edges" 8 (roles Netgen.Edge)

let test_fat_tree_trim () =
  (* A non-canonical size keeps the spine and truncates the pod tail,
     pruning dangling sessions: the result must still validate. *)
  let t = Netgen.generate ~profile:Netgen.Fat_tree ~routers:13 in
  checki "internal routers" 13 (List.length t.Netgen.nodes);
  List.iter
    (fun r ->
      let open Netsim.Topology in
      List.iter
        (fun nb -> ignore (find t.Netgen.topology nb.peer))
        r.neighbors)
    t.Netgen.topology.Netsim.Topology.routers

let test_wan_shape () =
  let t = Netgen.generate ~profile:Netgen.Wan ~routers:25 in
  checki "internal routers" 25 (List.length t.Netgen.nodes);
  let roles r =
    List.length (List.filter (fun n -> n.Netgen.role = r) t.Netgen.nodes)
  in
  checki "backbone" 11 (roles Netgen.Backbone);
  checki "sites" 14 (roles Netgen.Site)

let test_generate_deterministic () =
  let show t =
    Format.asprintf "%a" Netsim.Topology.pp t.Netgen.topology
  in
  let a = Netgen.generate ~profile:Netgen.Fat_tree ~routers:32 in
  let b = Netgen.generate ~profile:Netgen.Fat_tree ~routers:32 in
  check Alcotest.string "byte-identical topologies" (show a) (show b)

let test_invalid_sizes () =
  Alcotest.check_raises "zero routers"
    (Netgen.Invalid_profile "routers must be >= 1 (got 0)") (fun () ->
      ignore (Netgen.generate ~profile:Netgen.Fat_tree ~routers:0))

(* ------------------------------------------------------------------ *)
(* Policy compiler                                                     *)
(* ------------------------------------------------------------------ *)

let test_policy_plans () =
  let t = Netgen.generate ~profile:Netgen.Fat_tree ~routers:20 in
  let plans = Netgen.Policy.compile t in
  checki "one plan per router" 20 (List.length plans);
  List.iter
    (fun (p : Netgen.Policy.plan) ->
      let expected =
        match p.Netgen.Policy.role with
        | Netgen.Edge | Netgen.Site -> 5
        | _ -> 4
      in
      checki
        (p.Netgen.Policy.router ^ " steps")
        expected
        (List.length p.Netgen.Policy.steps);
      (* Every step's target map has a reference version for the
         oracle. *)
      List.iter
        (fun (s : Netgen.Policy.step) ->
          checkb
            (p.Netgen.Policy.router ^ "/" ^ s.Netgen.Policy.map ^ " reference")
            true
            (Config.Database.route_map p.Netgen.Policy.reference
               s.Netgen.Policy.map
            <> None))
        p.Netgen.Policy.steps)
    plans

(* ------------------------------------------------------------------ *)
(* E5 end-to-end on a small fleet, with simulation checks              *)
(* ------------------------------------------------------------------ *)

let test_e5_small_fleet () =
  let r = Evaluation.E5_fleet.run ~simulate:true ~routers:20 () in
  checki "results" 20 (List.length r.Evaluation.E5_fleet.results);
  List.iter
    (fun (res : Evaluation.E5_fleet.router_result) ->
      checkb (res.Evaluation.E5_fleet.router ^ " asked questions") true
        (res.Evaluation.E5_fleet.questions > 0))
    r.Evaluation.E5_fleet.results;
  match r.Evaluation.E5_fleet.simulation with
  | None -> Alcotest.fail "expected simulation"
  | Some (state, checks) ->
      checkb "converged" true state.Netsim.Simulator.converged;
      List.iter
        (fun (c : Netgen.check) ->
          checkb ("check " ^ c.Netgen.name) true c.Netgen.ok)
        checks

let test_e5_serial_equals_pooled () =
  let strip (r : Evaluation.E5_fleet.router_result) =
    Printf.sprintf "%s q=%d s=%d l=%d" r.Evaluation.E5_fleet.router
      r.Evaluation.E5_fleet.questions r.Evaluation.E5_fleet.synthesis_calls
      r.Evaluation.E5_fleet.total_llm_calls
  in
  let serial = Evaluation.E5_fleet.run ~routers:12 () in
  let pool = Parallel.Pool.create ~domains:4 () in
  let pooled = Evaluation.E5_fleet.run ~pool ~routers:12 () in
  Alcotest.(check (list string))
    "serial = pooled"
    (List.map strip serial.Evaluation.E5_fleet.results)
    (List.map strip pooled.Evaluation.E5_fleet.results)

let test_e5_gauges_settle () =
  ignore (Evaluation.E5_fleet.run ~routers:6 ());
  let gauges = Obs.Gauge.sample_all () in
  let v name = List.assoc name gauges in
  check (Alcotest.float 0.) "pending" 0. (v "fleet.routers.pending");
  check (Alcotest.float 0.) "running" 0. (v "fleet.routers.running");
  check (Alcotest.float 0.) "done" 6. (v "fleet.routers.done");
  check (Alcotest.float 0.) "stragglers" 0. (v "fleet.stragglers")

let () =
  Alcotest.run "netgen"
    [
      ( "generator",
        [
          Alcotest.test_case "fat-tree shape" `Quick test_fat_tree_shape;
          Alcotest.test_case "fat-tree trim" `Quick test_fat_tree_trim;
          Alcotest.test_case "wan shape" `Quick test_wan_shape;
          Alcotest.test_case "deterministic" `Quick test_generate_deterministic;
          Alcotest.test_case "invalid sizes" `Quick test_invalid_sizes;
        ] );
      ( "policy",
        [ Alcotest.test_case "plans" `Quick test_policy_plans ] );
      ( "e5",
        [
          Alcotest.test_case "small fleet + simulation" `Slow
            test_e5_small_fleet;
          Alcotest.test_case "serial = pooled" `Slow
            test_e5_serial_equals_pooled;
          Alcotest.test_case "gauges settle" `Quick test_e5_gauges_settle;
        ] );
    ]
