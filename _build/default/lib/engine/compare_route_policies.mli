(** Behavioural diff of two route-maps — the analogue of Batfish's
    [compareRoutePolicies].

    The maps may live in different databases (e.g. two candidate
    insertions of a synthesized stanza, each carrying freshly named
    ancillary lists). Differences are reported as concrete input routes
    together with both outcomes; community-transform differences are
    exposed by targeted sampling of separating community sets. *)

type difference = {
  route : Bgp.Route.t;
  result_a : Config.Semantics.route_result;
  result_b : Config.Semantics.route_result;
  stanza_a : int option; (* seq of the handling stanza; None = implicit *)
  stanza_b : int option;
}

val compare :
  ?limit:int ->
  db_a:Config.Database.t ->
  db_b:Config.Database.t ->
  Config.Route_map.t ->
  Config.Route_map.t ->
  difference list
(** All behavioural differences, one example per differing pair of
    execution cells, capped at [limit]. *)

val first_difference :
  db_a:Config.Database.t ->
  db_b:Config.Database.t ->
  Config.Route_map.t ->
  Config.Route_map.t ->
  difference option

val equal_behavior :
  db_a:Config.Database.t ->
  db_b:Config.Database.t ->
  Config.Route_map.t ->
  Config.Route_map.t ->
  bool

val pp_difference : Format.formatter -> difference -> unit
(** Rendered in the paper's OPTION 1 / OPTION 2 style. *)
