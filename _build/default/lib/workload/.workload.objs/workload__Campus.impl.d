lib/workload/campus.ml: Acl_gen Array Config List Printf Random Route_map_gen
