lib/config/packet.ml: Format Netaddr
