lib/engine/search_filters.mli: Config Symbdd
