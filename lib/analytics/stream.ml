(* Streaming session analytics (see stream.mli). *)

module E = Telemetry.Event

type file = {
  path : string;
  name : string;
  mutable offset : int; (* bytes consumed from the log so far *)
  pending : Buffer.t; (* trailing partial line, kept across polls *)
  mutable lineno : int; (* lines completed so far *)
  mutable held : (int * string) option;
      (* a complete-but-malformed line, held back under the tolerant
         final-line rule: dropped if nothing follows it, fatal if
         content does *)
  mutable acc : Report.Acc.t;
  mutable events : int;
  mutable error : string option; (* sticky *)
  on_event : E.t -> unit; (* extra per-event sink (streaming trace) *)
}

let open_file ?(on_event = fun _ -> ()) path =
  {
    on_event;
    path;
    name = Filename.remove_extension (Filename.basename path);
    offset = 0;
    pending = Buffer.create 256;
    lineno = 0;
    held = None;
    acc = Report.Acc.empty;
    events = 0;
    error = None;
  }

let file_path f = f.path
let file_name f = f.name
let file_acc f = f.acc
let file_events f = f.events
let file_error f = f.error

let file_router f =
  Option.value ~default:f.name (Report.Acc.router_label f.acc)

let fail f msg =
  f.error <- Some msg;
  f.error

let process_line f line added =
  f.lineno <- f.lineno + 1;
  if String.trim line = "" then ()
  else
    match f.held with
    | Some (ln, msg) ->
        (* Garbage earlier than the final content line means the file
           is not a recording: reject loudly, like Session.parse_lines. *)
        ignore (fail f (Printf.sprintf "line %d: %s" ln msg))
    | None -> (
        let parsed =
          match Json.parse line with
          | Error m -> Error m
          | Ok j -> E.of_json j
        in
        match parsed with
        | Error m -> f.held <- Some (f.lineno, m)
        | Ok e ->
            f.acc <- Report.Acc.add f.acc e;
            f.events <- f.events + 1;
            f.on_event e;
            incr added)

let consume f s added =
  let len = String.length s in
  let rec go pos =
    if pos < len && f.error = None then
      match String.index_from_opt s pos '\n' with
      | None -> Buffer.add_substring f.pending s pos (len - pos)
      | Some nl ->
          Buffer.add_substring f.pending s pos (nl - pos);
          let line = Buffer.contents f.pending in
          Buffer.clear f.pending;
          process_line f line added;
          go (nl + 1)
  in
  go 0

let chunk = 65536

let poll_file f =
  match f.error with
  | Some e -> Error e
  | None -> (
      match open_in_bin f.path with
      | exception Sys_error m -> Error (Option.get (fail f m))
      | ic ->
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () ->
              let len = in_channel_length ic in
              if len < f.offset then
                Error
                  (Option.get
                     (fail f
                        (Printf.sprintf
                           "file shrank from %d to %d bytes (truncated?)"
                           f.offset len)))
              else begin
                seek_in ic f.offset;
                let buf = Bytes.create chunk in
                let added = ref 0 in
                let rec read_loop () =
                  let n = input ic buf 0 chunk in
                  if n > 0 then begin
                    f.offset <- f.offset + n;
                    consume f (Bytes.sub_string buf 0 n) added;
                    if f.error = None then read_loop ()
                  end
                in
                read_loop ();
                match f.error with
                | Some e -> Error e
                | None -> Ok !added
              end))

(* ------------------------------------------------------------------ *)
(* Directory followers.                                                *)
(* ------------------------------------------------------------------ *)

type dir = { root : string; mutable files : file list (* sorted by name *) }

let scan root =
  match Sys.readdir root with
  | exception Sys_error _ -> []
  | entries ->
      Array.to_list entries
      |> List.sort String.compare
      |> List.filter (fun f -> Filename.check_suffix f ".jsonl")
      |> List.map (Filename.concat root)

let refresh d =
  (* Keep follower state for files already known; pick up new ones.
     The rebuilt list stays in sorted path order regardless of the
     order the filesystem revealed the files in. *)
  let known = List.map (fun f -> (f.path, f)) d.files in
  d.files <-
    List.map
      (fun path ->
        match List.assoc_opt path known with
        | Some f -> f
        | None -> open_file path)
      (scan d.root)

let open_dir root =
  let d = { root; files = [] } in
  refresh d;
  d

let poll d =
  refresh d;
  List.fold_left
    (fun added f ->
      match poll_file f with Ok n -> added + n | Error _ -> added)
    0 d.files

let files d = d.files

let report_of_dir d =
  Report.of_accs (List.map (fun f -> (f.name, f.acc)) d.files)

(* ------------------------------------------------------------------ *)
(* One-shot folds.                                                     *)
(* ------------------------------------------------------------------ *)

let fold_file path =
  let f = open_file path in
  match poll_file f with
  | Ok _ -> Ok (f.name, f.acc)
  | Error m -> Error (Printf.sprintf "%s: %s" path m)

let iter_file path sink =
  let f = open_file ~on_event:sink path in
  match poll_file f with
  | Ok _ -> Ok f.events
  | Error m -> Error (Printf.sprintf "%s: %s" path m)

let report_paths ?pool paths =
  let paths = Session.expand_paths paths in
  let folds =
    match pool with
    | Some pool when Parallel.Pool.domains pool > 1 ->
        (* Accumulators are plain data, so per-file folds shard across
           domains; merge order below is input order, and Acc.merge is
           associative, so the result is pool-size independent. *)
        Parallel.Pool.map pool ~f:fold_file paths
    | _ -> List.map fold_file paths
  in
  let ( let* ) r f = Result.bind r f in
  let* named =
    List.fold_left
      (fun acc r ->
        let* acc = acc in
        let* x = r in
        Ok (x :: acc))
      (Ok []) folds
    |> Result.map List.rev
  in
  Ok (Report.of_accs named)
