(** Corpus-level aggregation of overlap statistics, producing the
    quantities reported in the paper's Section 3. *)

type acl_summary = {
  total : int;
  with_overlaps : int; (* >= 1 overlapping pair *)
  heavy_overlaps : int; (* > threshold overlapping pairs *)
  with_conflicts : int;
  heavy_conflicts : int;
  with_nontrivial : int;
  heavy_nontrivial : int;
  max_overlaps : int; (* largest per-ACL overlap count *)
}

val default_threshold : int
(** 20, the paper's reporting threshold. *)

val summarize_acls :
  ?threshold:int ->
  ?pool:Parallel.Pool.t ->
  ?progress:(int -> unit) ->
  Config.Acl.t list ->
  acl_summary
(** Per-ACL analyses are independent, so a [pool] of N domains analyzes
    N ACLs concurrently; results are aggregated in input order, so the
    summary is identical at every pool size. Every distinct rule in the
    corpus is compiled once into a shared frozen base manager, and each
    domain analyzes under a private delta layered on it (no per-domain
    recompilation). Deltas are reset periodically, bounding memory on
    very large corpora without touching the shared base or any BDD the
    caller holds. [progress] fires only on the serial path (pool absent
    or of one domain): parallel completion order is nondeterministic. *)

type route_map_summary = {
  rm_total : int;
  rm_with_overlaps : int;
  rm_heavy_overlaps : int;
  rm_max_overlaps : int;
  rm_conflicting_pairs_total : int;
}

val summarize_route_maps :
  ?threshold:int ->
  ?pool:Parallel.Pool.t ->
  Config.Database.t ->
  Config.Route_map.t list ->
  route_map_summary
(** Same parallelization and memory-bounding contract as
    {!summarize_acls}. *)

val pp_acl_summary : Format.formatter -> acl_summary -> unit
val pp_route_map_summary : Format.formatter -> route_map_summary -> unit
