(** Experiment E4 — the paper's Section 5 evaluation (Figures 3 and 4):
    incrementally synthesize the route-maps of routers M, R1 and R2 from
    natural-language intents with the full Clarify pipeline, install
    them on the Figure 3 topology, and check the five global policies.

    The global policies are decomposed Lightyear-style into per-router,
    per-interface local intents, each of which becomes one stanza
    insertion. The simulated user answering disambiguation questions is
    driven by the hand-written reference configuration. *)

module D = Clarify.Disambiguator
module P = Clarify.Pipeline
module I = Llm.Intent

let bogon_ranges =
  List.map
    (fun p -> Netaddr.Prefix_range.make p ~ge:None ~le:(Some 32))
    Netsim.Figure3.bogons

let reused_range =
  Netaddr.Prefix_range.make
    (Netaddr.Prefix.of_string_exn "192.168.0.0/16")
    ~ge:None ~le:(Some 32)

let service_range =
  Netaddr.Prefix_range.exact Netsim.Figure3.service_prefix

(* The building-block intents. *)
let deny_bogons =
  I.route_map_intent ~prefixes:bogon_ranges Config.Action.Deny

let deny_reused = I.route_map_intent ~prefixes:[ reused_range ] Config.Action.Deny
let permit_all = I.route_map_intent Config.Action.Permit

let permit_all_tagging community =
  I.route_map_intent
    ~sets:[ Config.Route_map.Set_community { communities = [ community ]; additive = true } ]
    Config.Action.Permit

let deny_community community =
  I.route_map_intent ~communities:[ community ] Config.Action.Deny

let permit_service = I.route_map_intent ~prefixes:[ service_range ] Config.Action.Permit

let permit_service_lp200 =
  I.route_map_intent ~prefixes:[ service_range ]
    ~sets:[ Config.Route_map.Set_local_pref 200 ]
    Config.Action.Permit

(* One update step: which map, in which order, built from which intent. *)
type step = { map : string; intent : I.t }

let border_steps ~prefix_name ~own_community ~other_community =
  let m n = prefix_name ^ "_" ^ n in
  [
    (* import from the ISP: drop bogons, tag the rest. *)
    { map = m "FROM_ISP"; intent = deny_bogons };
    { map = m "FROM_ISP"; intent = permit_all_tagging own_community };
    (* export to the ISP: drop bogons, then everything else, then learn
       that routes from the other ISP must not leak (inserted last, so
       it must be disambiguated above the catch-all). *)
    { map = m "TO_ISP"; intent = deny_bogons };
    { map = m "TO_ISP"; intent = permit_all };
    { map = m "TO_ISP"; intent = deny_community other_community };
    (* import from the datacenter: service first, reused blocked. *)
    { map = m "FROM_DC"; intent = permit_service };
    { map = m "FROM_DC"; intent = deny_reused };
    { map = m "FROM_DC"; intent = permit_all };
    (* import from management: reused blocked. *)
    { map = m "FROM_M"; intent = deny_reused };
    { map = m "FROM_M"; intent = permit_all };
    (* export to management: reused blocked. *)
    { map = m "TO_M"; intent = deny_reused };
    { map = m "TO_M"; intent = permit_all };
  ]

let m_steps =
  [
    { map = "M_FROM_R1"; intent = permit_service_lp200 };
    { map = "M_FROM_R1"; intent = permit_all };
    { map = "M_FROM_R1"; intent = deny_reused };
    { map = "M_FROM_R2"; intent = deny_reused };
    { map = "M_FROM_R2"; intent = permit_all };
    { map = "M_TO_R1"; intent = deny_reused };
    { map = "M_TO_R1"; intent = permit_all };
    { map = "M_TO_R2"; intent = deny_reused };
    { map = "M_TO_R2"; intent = permit_all };
  ]

(* Rename border step maps to the topology's names. *)
let rename_map = function
  | "R1_FROM_ISP" -> "R1_FROM_ISP1"
  | "R1_TO_ISP" -> "R1_TO_ISP1"
  | "R2_FROM_ISP" -> "R2_FROM_ISP2"
  | "R2_TO_ISP" -> "R2_TO_ISP2"
  | other -> other

type router_stats = {
  router : string;
  route_maps : int;
  synthesis_calls : int; (* the paper's "#LLM calls" *)
  total_llm_calls : int; (* including classification and spec extraction *)
  questions : int; (* the paper's "#Disambiguation" *)
  steps : int;
}

type result = {
  stats : router_stats list;
  policies : Netsim.Policies.result list;
  converged : bool;
  rounds : int;
}

(* With --record-dir, each router's steps run under their own channel
   recorder (one log per router, D/e4_<router>.jsonl) tagged with a
   router context label, so `clarify report D` can rebuild Figure 4
   from the logs alone. *)
let with_router_recording ~record_dir ~router f =
  match record_dir with
  | None -> f ()
  | Some dir ->
      let path = Filename.concat dir ("e4_" ^ router ^ ".jsonl") in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          Telemetry.with_channel_recorder oc @@ fun () ->
          Telemetry.with_context [ ("router", router) ] (fun () ->
              let r = f () in
              (* Close each router log with a point-in-time gauge
                 sample (GC pressure, BDD manager sizes, pool
                 occupancy) so `clarify report --format json` can show
                 runtime state per router. The event kind is unknown to
                 the deterministic md/csv renderings, which ignore it
                 by construction. *)
              Telemetry.emit ~kind:"gauges" (fun () ->
                  List.map
                    (fun (n, v) -> (n, Json.Float v))
                    (Obs.Gauge.sample_all ()));
              r))

(* Build one router's config by running every step through the
   pipeline, with the oracle answering from the reference semantics. *)
let build_router ?record_dir ~router ~map_names ~steps ~reference_db () =
  with_router_recording ~record_dir ~router @@ fun () ->
  let llm = Llm.Mock_llm.create () in
  let questions = ref 0 in
  let db =
    List.fold_left
      (fun db { map; intent } ->
        let map = rename_map map in
        (* Ensure the target map exists (placeholder when first touched). *)
        let db =
          if Config.Database.route_map db map = None then
            Config.Database.add_route_map db (Config.Route_map.make map [])
          else db
        in
        let reference_map =
          Option.get (Config.Database.route_map reference_db map)
        in
        let oracle =
          D.intent_driven (fun route ->
              Config.Semantics.eval_route_map reference_db reference_map route)
        in
        let prompt = I.to_prompt intent in
        match
          P.run_route_map_update ~llm ~oracle ~db ~target:map ~prompt ()
        with
        | Ok report ->
            questions := !questions + List.length report.P.questions;
            report.P.db
        | Error e ->
            failwith
              (Printf.sprintf "E4 %s %s: %s" router map
                 (P.error_to_string e)))
      Config.Database.empty steps
  in
  let stats =
    {
      router;
      route_maps = List.length map_names;
      synthesis_calls = (Llm.Mock_llm.stats llm).Llm.Mock_llm.synthesis_calls;
      total_llm_calls = Llm.Mock_llm.total_calls llm;
      questions = !questions;
      steps = List.length steps;
    }
  in
  (db, stats)

(* The three routers are synthesized independently (each from its own
   reference config, with its own mock LLM and oracle), so a pool runs
   them on separate domains: each worker builds BDDs in its own manager
   and records telemetry through its own domain-local recorder, and
   only plain data (the config database and stats) crosses back. The
   per-router results are assembled in fixed M, R1, R2 order, so the
   report is identical at every pool size. *)
let run ?record_dir ?(pool = Parallel.Pool.serial) () =
  let reference = Netsim.Figure3.reference () in
  let ref_db name = (Netsim.Topology.find reference name).Netsim.Topology.config in
  let specs =
    [
      ("M", Netsim.Figure3.m_maps, m_steps);
      ( "R1",
        Netsim.Figure3.r1_maps,
        border_steps ~prefix_name:"R1"
          ~own_community:Netsim.Figure3.from_isp1_community
          ~other_community:Netsim.Figure3.from_isp2_community );
      ( "R2",
        Netsim.Figure3.r2_maps,
        border_steps ~prefix_name:"R2"
          ~own_community:Netsim.Figure3.from_isp2_community
          ~other_community:Netsim.Figure3.from_isp1_community );
    ]
  in
  let built =
    Parallel.Pool.map pool
      ~f:(fun (router, map_names, steps) ->
        build_router ?record_dir ~router ~map_names ~steps
          ~reference_db:(ref_db router) ())
      specs
  in
  let (m_db, m_stats), (r1_db, r1_stats), (r2_db, r2_stats) =
    match built with [ m; r1; r2 ] -> (m, r1, r2) | _ -> assert false
  in
  let topology =
    Netsim.Figure3.topology ~r1_config:r1_db ~r2_config:r2_db ~m_config:m_db
      ~dc_config:Config.Database.empty
  in
  let state = Netsim.Simulator.run topology in
  {
    stats = [ m_stats; r1_stats; r2_stats ];
    policies = Netsim.Policies.check_all state;
    converged = state.Netsim.Simulator.converged;
    rounds = state.Netsim.Simulator.rounds;
  }

(* Figure 4 of the paper, for comparison. *)
let paper_figure4 = [ ("M", 4, 9, 5); ("R1", 5, 12, 6); ("R2", 5, 12, 6) ]

let print fmt r =
  Format.fprintf fmt "=== E4: incremental synthesis on Figure 3 ===@.@.";
  Format.fprintf fmt "Figure 4 — paper vs measured:@.";
  Format.fprintf fmt "%-8s %22s %22s %22s@." "Router" "#Route-maps (p/m)"
    "#LLM calls (p/m)" "#Disambiguation (p/m)";
  List.iter
    (fun s ->
      let p_maps, p_calls, p_dis =
        match List.find_opt (fun (n, _, _, _) -> n = s.router) paper_figure4 with
        | Some (_, m, c, d) -> (m, c, d)
        | None -> (0, 0, 0)
      in
      Format.fprintf fmt "%-8s %18d / %d %18d / %d %18d / %d@." s.router p_maps
        s.route_maps p_calls s.synthesis_calls p_dis s.questions)
    r.stats;
  Format.fprintf fmt
    "@.(LLM calls above count synthesis calls, as in the paper; including \
     classification and spec-extraction calls the totals are %s.)@.@."
    (String.concat ", "
       (List.map
          (fun s -> Printf.sprintf "%s: %d" s.router s.total_llm_calls)
          r.stats));
  Format.fprintf fmt "BGP simulation: converged in %d rounds.@.@." r.rounds;
  Format.fprintf fmt "Global policies:@.%a@." Netsim.Policies.pp r.policies
