(* Tests for the features beyond the paper's prototype: prefix-list
   insertion disambiguation (the paper's first future-work item) and
   the LLM-as-disambiguator baseline (its closing discussion). *)

open Config
module Pld = Clarify.Prefix_list_disambiguator

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let pfx = Netaddr.Prefix.of_string_exn

let range ?ge ?le s = Netaddr.Prefix_range.make (pfx s) ~ge ~le

let parse_ok src =
  match Parser.parse src with
  | Ok db -> db
  | Error m -> Alcotest.failf "parse failed: %s" m

let target_list () =
  Prefix_list.make "PL"
    [
      Prefix_list.entry ~seq:10 ~action:Action.Permit (range ~le:24 "10.0.0.0/8");
      Prefix_list.entry ~seq:20 ~action:Action.Deny (range ~le:32 "10.1.0.0/16");
      Prefix_list.entry ~seq:30 ~action:Action.Permit (range ~le:32 "20.0.0.0/8");
    ]

let eval pl p =
  match Prefix_list.eval pl p with Some a -> a | None -> Action.Deny

(* ------------------------------------------------------------------ *)
(* Prefix-list insertion                                              *)
(* ------------------------------------------------------------------ *)

let test_pl_boundaries () =
  let target = target_list () in
  (* New deny entry for 10.0.0.0/8 le 32: overlaps entry 10 (conflict),
     overlaps entry 20 (same action -> behaviour may still differ?
     deny/deny -> no), disjoint from entry 30. *)
  let entry =
    Prefix_list.entry ~seq:99 ~action:Action.Deny (range ~le:32 "10.0.0.0/8")
  in
  let bs = Pld.boundaries ~target entry in
  Alcotest.(check (list int))
    "boundary at entry 10 only" [ 0 ]
    (List.map (fun (q : Pld.question) -> q.position) bs);
  let q = List.hd bs in
  check "example matched by both" true
    (Netaddr.Prefix_range.matches (range ~le:24 "10.0.0.0/8") q.prefix
    && Netaddr.Prefix_range.matches (range ~le:32 "10.0.0.0/8") q.prefix);
  check "options differ" true (q.if_new_first <> q.if_old_first)

let test_pl_insert_new_first () =
  let target = target_list () in
  let entry =
    Prefix_list.entry ~seq:99 ~action:Action.Deny (range ~le:32 "10.0.0.0/8")
  in
  (* The user wants all of 10/8 denied. *)
  let desired p =
    if Netaddr.Prefix_range.matches (range ~le:32 "10.0.0.0/8") p then
      Action.Deny
    else eval target p
  in
  match Pld.run ~target ~entry ~oracle:(Pld.intent_driven desired) () with
  | Error _ -> Alcotest.fail "disambiguation failed"
  | Ok o ->
      check_int "placed on top" 0 o.position;
      check_int "one question" 1 (List.length o.questions);
      check "10/8 now denied" true
        (eval o.prefix_list (pfx "10.2.0.0/16") = Action.Deny);
      check "20/8 untouched" true
        (eval o.prefix_list (pfx "20.1.0.0/16") = Action.Permit)

let test_pl_insert_old_first () =
  let target = target_list () in
  let entry =
    Prefix_list.entry ~seq:99 ~action:Action.Deny (range ~le:32 "10.0.0.0/8")
  in
  (* The user wants existing behaviour kept: only previously-unmatched
     10/8 prefixes (length 25-32 outside 10.1/16) become denied — which
     the implicit deny already did, so behaviour is unchanged. *)
  let desired p = eval target p in
  match Pld.run ~target ~entry ~oracle:(Pld.intent_driven desired) () with
  | Error _ -> Alcotest.fail "disambiguation failed"
  | Ok o ->
      check_int "placed at bottom" 3 o.position;
      check "short 10/8 prefixes still permitted" true
        (eval o.prefix_list (pfx "10.2.0.0/16") = Action.Permit)

let test_pl_no_overlap () =
  let target = target_list () in
  let entry =
    Prefix_list.entry ~seq:99 ~action:Action.Deny (range ~le:32 "99.0.0.0/8")
  in
  let oracle _ = Alcotest.fail "no question expected" in
  match Pld.run ~target ~entry ~oracle () with
  | Ok o ->
      check_int "no boundaries" 0 o.boundaries;
      check_int "appended" 3 o.position
  | Error _ -> Alcotest.fail "disambiguation failed"

let test_pl_linear_inconsistency () =
  (* Two conflicting overlaps with opposite desired outcomes cannot be
     realized by one insertion; Linear mode must notice. *)
  let target =
    Prefix_list.make "PL"
      [
        Prefix_list.entry ~seq:10 ~action:Action.Permit (range ~le:24 "10.0.0.0/8");
        Prefix_list.entry ~seq:20 ~action:Action.Permit (range ~le:24 "20.0.0.0/8");
      ]
  in
  let entry =
    Prefix_list.entry ~seq:99 ~action:Action.Deny (range ~le:24 "0.0.0.0/0")
  in
  let oracle =
    let first = ref true in
    fun (_ : Pld.question) ->
      if !first then begin
        first := false;
        Pld.Prefer_new
      end
      else Pld.Prefer_old
  in
  match Pld.run ~mode:Pld.Linear ~target ~entry ~oracle () with
  | Error (Pld.Inconsistent_intent qs) -> check_int "two asked" 2 (List.length qs)
  | Ok _ -> Alcotest.fail "expected inconsistency"

let prop_pl_binary_recovers_placement =
  QCheck.Test.make ~name:"prefix-list binary search recovers any placement"
    ~count:60
    QCheck.(int_range 0 3)
    (fun p ->
      let target = target_list () in
      let entry =
        Prefix_list.entry ~seq:99 ~action:Action.Deny (range ~le:32 "10.0.0.0/8")
      in
      let desired_list = Pld.insert_entry_at target p entry in
      let desired q = eval desired_list q in
      match Pld.run ~target ~entry ~oracle:(Pld.intent_driven desired) () with
      | Error _ -> false
      | Ok o ->
          (* Behavioural equality over a probe set that covers every
             region of interest. *)
          List.for_all
            (fun probe -> eval o.prefix_list probe = eval desired_list probe)
            [
              pfx "10.0.0.0/8"; pfx "10.2.0.0/16"; pfx "10.1.0.0/16";
              pfx "10.1.5.0/24"; pfx "10.1.5.0/32"; pfx "10.2.0.0/25";
              pfx "20.5.0.0/16"; pfx "99.0.0.0/8";
            ])

(* ------------------------------------------------------------------ *)
(* The paper's §4 caveat: sequential insertion is order/choice
   sensitive. Desired final map: [B: permit 10.1/16; A: deny 10/8;
   S1: permit all]. Inserting B into [S1] finds no behavioural boundary
   (B duplicates S1's behaviour on its region), so every position is
   equivalent *at that moment* and the algorithm freely picks the
   bottom — after which no placement of A can realize the goal. Had B
   landed on top, inserting A between B and S1 succeeds. *)
(* ------------------------------------------------------------------ *)

let order_sensitivity_db () =
  parse_ok
    {|
ip prefix-list TEN permit 10.0.0.0/8 le 32
ip prefix-list TENONE permit 10.1.0.0/16 le 32
route-map M permit 10
|}

let stanza_a =
  Route_map.stanza ~seq:99
    ~matches:[ Route_map.Match_prefix_list [ "TEN" ] ]
    Action.Deny

let stanza_b =
  Route_map.stanza ~seq:98
    ~matches:[ Route_map.Match_prefix_list [ "TENONE" ] ]
    Action.Permit

let desired_final db =
  (* [B; A; S1] built by hand. *)
  let target = Option.get (Database.route_map db "M") in
  let with_a = Route_map.insert_at target 0 stanza_a in
  Route_map.insert_at with_a 0 stanza_b

let test_sequential_insertion_order_sensitivity () =
  let db = order_sensitivity_db () in
  let target = Option.get (Database.route_map db "M") in
  let final = desired_final db in
  let desired r = Semantics.eval_route_map db final r in
  let oracle = Clarify.Disambiguator.intent_driven desired in
  (* Step 1: insert B. No boundary exists, so the algorithm appends. *)
  let after_b =
    match Clarify.Disambiguator.run ~db ~target ~stanza:stanza_b ~oracle () with
    | Ok o ->
        check_int "B: no boundaries" 0 o.Clarify.Disambiguator.boundaries;
        check_int "B appended at bottom" 1 o.Clarify.Disambiguator.position;
        o.Clarify.Disambiguator.map
    | Error _ -> Alcotest.fail "step 1 failed"
  in
  (* Step 2: inserting A can no longer realize the goal; Linear mode
     reports the inconsistency instead of silently mis-inserting. *)
  (match
     Clarify.Disambiguator.run ~mode:Clarify.Disambiguator.Linear ~db
       ~target:after_b ~stanza:stanza_a ~oracle ()
   with
  | Error (Clarify.Disambiguator.Inconsistent_intent _) -> ()
  | Ok o ->
      (* If it "succeeds", the result must NOT match the goal — prove
         the failure is real, not an artifact of the checker. *)
      check "misses the goal" false
        (Engine.Compare_route_policies.equal_behavior ~db_a:db ~db_b:db
           o.Clarify.Disambiguator.map final)
  | Error _ -> Alcotest.fail "unexpected error");
  (* The alternative placement choice at step 1 (top, behaviourally
     equivalent at the time) makes step 2 succeed — the paper's point. *)
  let after_b_top = Route_map.insert_at target 0 stanza_b in
  match
    Clarify.Disambiguator.run ~db ~target:after_b_top ~stanza:stanza_a ~oracle ()
  with
  | Ok o ->
      check "goal reached via the other branch" true
        (Engine.Compare_route_policies.equal_behavior ~db_a:db ~db_b:db
           o.Clarify.Disambiguator.map final)
  | Error _ -> Alcotest.fail "step 2 (alternative) failed"

(* ------------------------------------------------------------------ *)
(* LLM placement baseline                                             *)
(* ------------------------------------------------------------------ *)

let test_llm_placement_heuristics () =
  let db =
    parse_ok
      {|
ip prefix-list P permit 10.0.0.0/8 le 24
route-map RM deny 10
 match ip address prefix-list P
route-map RM permit 20
|}
  in
  let target = Option.get (Database.route_map db "RM") in
  (* A deny goes above the trailing catch-all permit. *)
  let deny = Route_map.stanza ~seq:99 Action.Deny in
  check_int "deny above catch-all" 1
    (Llm.Llm_placement.guess ~target ~stanza:deny);
  (* A permit goes to the bottom. *)
  let permit = Route_map.stanza ~seq:99 Action.Permit in
  check_int "permit at bottom" 2
    (Llm.Llm_placement.guess ~target ~stanza:permit);
  (* Without a catch-all, a deny goes to the top. *)
  let target2 =
    Route_map.make "RM2"
      [
        Route_map.stanza ~seq:10
          ~matches:[ Route_map.Match_prefix_list [ "P" ] ]
          Action.Permit;
      ]
  in
  check_int "deny at top" 0 (Llm.Llm_placement.guess ~target:target2 ~stanza:deny)

let test_a2_ablation () =
  let r = Evaluation.A2_llm_disambiguator.run () in
  check "clarify always correct" true
    (r.Evaluation.A2_llm_disambiguator.clarify_correct
    = r.Evaluation.A2_llm_disambiguator.scenarios);
  check "llm heuristic is worse" true
    (r.Evaluation.A2_llm_disambiguator.llm_correct
    < r.Evaluation.A2_llm_disambiguator.scenarios);
  check "questions are few" true
    (r.Evaluation.A2_llm_disambiguator.clarify_questions_total
    <= 3 * r.Evaluation.A2_llm_disambiguator.scenarios)

(* ------------------------------------------------------------------ *)
(* E2/E3/E4 drivers stay faithful (regression harness for the tables) *)
(* ------------------------------------------------------------------ *)

let test_e2_rows_match () =
  List.iter
    (fun (r : Evaluation.E23_overlap_study.row) ->
      match r.quantity with
      | "ACLs with >=1 overlap" -> check "69" true (r.measured = "69")
      | "ACLs with >20 overlaps" -> check "48" true (r.measured = "48")
      | "route-maps with overlaps" -> check "140" true (r.measured = "140")
      | _ -> ())
    (Evaluation.E23_overlap_study.cloud ())

let test_e4_matches_figure4 () =
  let r = Evaluation.E4_lightyear.run () in
  check "converged" true r.Evaluation.E4_lightyear.converged;
  check "all policies hold" true
    (Netsim.Policies.all_hold r.Evaluation.E4_lightyear.policies);
  List.iter
    (fun (s : Evaluation.E4_lightyear.router_stats) ->
      let expected =
        List.find
          (fun (n, _, _, _) -> n = s.router)
          Evaluation.E4_lightyear.paper_figure4
      in
      let _, maps, calls, questions = expected in
      check_int (s.router ^ " route-maps") maps s.route_maps;
      check_int (s.router ^ " llm calls") calls s.synthesis_calls;
      check_int (s.router ^ " questions") questions s.questions)
    r.Evaluation.E4_lightyear.stats

let test_e1_driver () =
  let o = Evaluation.E1_running_example.run () in
  check_int "four candidates" 4
    (List.length o.Evaluation.E1_running_example.candidates);
  check "differential example found" true
    (o.Evaluation.E1_running_example.question <> None);
  let report = o.Evaluation.E1_running_example.report in
  check_int "top placement" 0 report.Clarify.Pipeline.position

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "extensions"
    [
      ( "prefix-list-disambiguator",
        [
          Alcotest.test_case "boundaries" `Quick test_pl_boundaries;
          Alcotest.test_case "insert new first" `Quick test_pl_insert_new_first;
          Alcotest.test_case "insert old first" `Quick test_pl_insert_old_first;
          Alcotest.test_case "no overlap" `Quick test_pl_no_overlap;
          Alcotest.test_case "linear inconsistency" `Quick
            test_pl_linear_inconsistency;
          q prop_pl_binary_recovers_placement;
        ] );
      ( "sequential-insertion",
        [
          Alcotest.test_case "order/choice sensitivity (paper §4)" `Quick
            test_sequential_insertion_order_sensitivity;
        ] );
      ( "llm-placement",
        [
          Alcotest.test_case "heuristics" `Quick test_llm_placement_heuristics;
          Alcotest.test_case "A2 ablation" `Quick test_a2_ablation;
        ] );
      ( "evaluation-drivers",
        [
          Alcotest.test_case "E1" `Quick test_e1_driver;
          Alcotest.test_case "E2 rows" `Slow test_e2_rows_match;
          Alcotest.test_case "E4 equals Figure 4" `Slow test_e4_matches_figure4;
        ] );
    ]
