lib/bdd/bvec.mli: Bdd
