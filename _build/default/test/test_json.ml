let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let parse_ok s =
  match Json.parse s with
  | Ok j -> j
  | Error m -> Alcotest.failf "parse failed on %s: %s" s m

let test_values () =
  check "null" true (parse_ok "null" = Json.Null);
  check "true" true (parse_ok "true" = Json.Bool true);
  check "false" true (parse_ok "false" = Json.Bool false);
  check "int" true (parse_ok "42" = Json.Int 42);
  check "negative" true (parse_ok "-7" = Json.Int (-7));
  check "float" true (parse_ok "3.5" = Json.Float 3.5);
  check "exp" true (parse_ok "1e3" = Json.Float 1000.0);
  check "string" true (parse_ok {|"hi"|} = Json.String "hi");
  check "empty list" true (parse_ok "[]" = Json.List []);
  check "empty obj" true (parse_ok "{}" = Json.Obj [])

let test_nested () =
  let j = parse_ok {|{"a": [1, 2, {"b": true}], "c": "x"}|} in
  check "member a" true
    (Json.member "a" j = Some (Json.List [ Json.Int 1; Json.Int 2; Json.Obj [ ("b", Json.Bool true) ] ]));
  check "member c" true (Json.member "c" j = Some (Json.String "x"));
  check "missing" true (Json.member "zz" j = None)

let test_escapes () =
  check "newline" true (parse_ok {|"a\nb"|} = Json.String "a\nb");
  check "tab" true (parse_ok {|"a\tb"|} = Json.String "a\tb");
  check "quote" true (parse_ok {|"a\"b"|} = Json.String "a\"b");
  check "backslash" true (parse_ok {|"a\\b"|} = Json.String "a\\b");
  check "unicode ascii" true (parse_ok {|"A"|} = Json.String "A");
  check "unicode 2-byte" true (parse_ok {|"é"|} = Json.String "\xc3\xa9")

let test_errors () =
  let fails s = check ("reject " ^ s) true (Result.is_error (Json.parse s)) in
  List.iter fails
    [ ""; "{"; "["; {|{"a"}|}; {|{"a":}|}; "[1,]"; "tru"; {|"unterminated|};
      "1 2"; "{,}"; {|{"a":1,}|} ]

let test_whitespace () =
  check "spaces ok" true
    (parse_ok " {\n \"a\" :\t1 } " = Json.Obj [ ("a", Json.Int 1) ])

let test_print_compact () =
  let j = Json.Obj [ ("a", Json.List [ Json.Int 1 ]); ("b", Json.String "x") ] in
  check_str "compact" {|{"a":[1],"b":"x"}|} (Json.to_string ~indent:0 j)

let test_paper_spec_format () =
  (* The paper's JSON spec example round-trips. *)
  let src =
    {|{"permit": true, "prefix": ["100.0.0.0/16:16-23"], "community": "/_300:3_/", "set": {"metric": 55}}|}
  in
  let j = parse_ok src in
  check "roundtrip" true (parse_ok (Json.to_string j) = j);
  check "permit field" true (Json.member "permit" j = Some (Json.Bool true))

let gen_json =
  QCheck.Gen.(
    sized_size (int_range 0 6) @@ fix (fun self size ->
        if size <= 1 then
          oneof
            [
              return Json.Null;
              map (fun b -> Json.Bool b) bool;
              map (fun n -> Json.Int n) (int_range (-1000000) 1000000);
              map (fun s -> Json.String s) (string_size ~gen:printable (int_range 0 10));
            ]
        else
          oneof
            [
              map (fun l -> Json.List l) (list_size (int_range 0 4) (self (size / 2)));
              map
                (fun fields -> Json.Obj fields)
                (list_size (int_range 0 4)
                   (pair (string_size ~gen:printable (int_range 1 8)) (self (size / 2))));
            ]))

(* Object keys must be unique for roundtrip comparison. *)
let rec dedup_keys = function
  | Json.Obj fields ->
      let seen = Hashtbl.create 8 in
      Json.Obj
        (List.filter_map
           (fun (k, v) ->
             if Hashtbl.mem seen k then None
             else begin
               Hashtbl.add seen k ();
               Some (k, dedup_keys v)
             end)
           fields)
  | Json.List l -> Json.List (List.map dedup_keys l)
  | j -> j

let prop_roundtrip =
  QCheck.Test.make ~name:"print/parse roundtrip" ~count:500
    (QCheck.make ~print:Json.to_string (QCheck.Gen.map dedup_keys gen_json))
    (fun j ->
      match Json.parse (Json.to_string j) with
      | Ok j' -> Json.equal j j'
      | Error m -> QCheck.Test.fail_reportf "reparse failed: %s" m)

let prop_roundtrip_compact =
  QCheck.Test.make ~name:"compact print/parse roundtrip" ~count:500
    (QCheck.make ~print:Json.to_string (QCheck.Gen.map dedup_keys gen_json))
    (fun j ->
      match Json.parse (Json.to_string ~indent:0 j) with
      | Ok j' -> Json.equal j j'
      | Error m -> QCheck.Test.fail_reportf "reparse failed: %s" m)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "json"
    [
      ( "parser",
        [
          Alcotest.test_case "values" `Quick test_values;
          Alcotest.test_case "nested" `Quick test_nested;
          Alcotest.test_case "escapes" `Quick test_escapes;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "whitespace" `Quick test_whitespace;
          Alcotest.test_case "paper spec format" `Quick test_paper_spec_format;
        ] );
      ( "printer",
        [
          Alcotest.test_case "compact" `Quick test_print_compact;
          q prop_roundtrip;
          q prop_roundtrip_compact;
        ] );
    ]
