lib/core/pipeline.mli: Acl_disambiguator Config Disambiguator Engine Llm
