type t = int

let max_addr = (1 lsl 32) - 1
let zero = 0
let broadcast = max_addr

let of_int n =
  if n < 0 || n > max_addr then invalid_arg "Ipv4.of_int: out of range";
  n

let to_int a = a

let of_octets a b c d =
  let check o = if o < 0 || o > 255 then invalid_arg "Ipv4.of_octets" in
  check a; check b; check c; check d;
  (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let of_string s =
  match String.split_on_char '.' s with
  | [a; b; c; d] -> (
      let octet x =
        if x = "" || String.length x > 3 then None
        else
          match int_of_string_opt x with
          | Some n when n >= 0 && n <= 255 -> Some n
          | _ -> None
      in
      match (octet a, octet b, octet c, octet d) with
      | Some a, Some b, Some c, Some d -> Some (of_octets a b c d)
      | _ -> None)
  | _ -> None

let of_string_exn s =
  match of_string s with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Ipv4.of_string_exn: %S" s)

let to_string a =
  Printf.sprintf "%d.%d.%d.%d"
    ((a lsr 24) land 0xff) ((a lsr 16) land 0xff) ((a lsr 8) land 0xff)
    (a land 0xff)

let bit a i =
  if i < 0 || i > 31 then invalid_arg "Ipv4.bit";
  (a lsr (31 - i)) land 1 = 1

let with_bit a i v =
  if i < 0 || i > 31 then invalid_arg "Ipv4.with_bit";
  let m = 1 lsl (31 - i) in
  if v then a lor m else a land lnot m land max_addr

let mask len =
  if len < 0 || len > 32 then invalid_arg "Ipv4.mask";
  if len = 0 then 0 else (max_addr lsl (32 - len)) land max_addr

let wildcard_of_mask m = lnot m land max_addr
let logand = ( land )
let logor = ( lor )
let succ a = (a + 1) land max_addr
let compare = Int.compare
let equal = Int.equal
let pp fmt a = Format.pp_print_string fmt (to_string a)
