(** Structured user intents for single-stanza updates.

    An intent is what the user means; its English rendering (via
    {!to_prompt}) is what they type, and the natural-language frontend
    ({!Nl_parser}) recovers the structure. The simulated LLM is the
    composition parse ∘ render plus templates and fault injection. *)

type route_map_intent = {
  action : Config.Action.t;
  prefixes : Netaddr.Prefix_range.t list; (* routes containing one of these *)
  communities : Bgp.Community.t list; (* tagged with all of these *)
  as_path_origin : int option; (* originating from this AS *)
  as_path_contains : int option; (* passing through this AS *)
  local_pref : int option;
  metric_match : int option;
  tag_match : int option;
  sets : Config.Route_map.set_clause list;
}

type acl_intent = {
  acl_action : Config.Action.t;
  protocol : Config.Packet.protocol;
  src : Config.Acl.addr_spec;
  src_port : Config.Acl.port_spec;
  dst : Config.Acl.addr_spec;
  dst_port : Config.Acl.port_spec;
  established : bool;
}

type t = Route_map of route_map_intent | Acl of acl_intent

let route_map_intent ?(prefixes = []) ?(communities = []) ?as_path_origin
    ?as_path_contains ?local_pref ?metric_match ?tag_match ?(sets = []) action
    =
  Route_map
    {
      action;
      prefixes;
      communities;
      as_path_origin;
      as_path_contains;
      local_pref;
      metric_match;
      tag_match;
      sets;
    }

let acl_intent ?(protocol = Config.Packet.Ip) ?(src = Config.Acl.Any)
    ?(src_port = Config.Acl.Any_port) ?(dst = Config.Acl.Any)
    ?(dst_port = Config.Acl.Any_port) ?(established = false) acl_action =
  Acl { acl_action; protocol; src; src_port; dst; dst_port; established }

(* ------------------------------------------------------------------ *)
(* English rendering                                                  *)
(* ------------------------------------------------------------------ *)

let render_length_window (r : Netaddr.Prefix_range.t) =
  let len = r.prefix.Netaddr.Prefix.len in
  if r.lo = len && r.hi = len then ""
  else if r.lo = len then
    Printf.sprintf " with mask length less than or equal to %d" r.hi
  else if r.hi = 32 then
    Printf.sprintf " with mask length greater than or equal to %d" r.lo
  else
    Printf.sprintf " with mask length between %d and %d" r.lo r.hi

let render_prefixes = function
  | [] -> []
  | [ r ] ->
      [
        Printf.sprintf "containing the prefix %s%s"
          (Netaddr.Prefix.to_string r.Netaddr.Prefix_range.prefix)
          (render_length_window r);
      ]
  | rs ->
      [
        "containing one of the prefixes "
        ^ String.concat " or "
            (List.map
               (fun r ->
                 Netaddr.Prefix.to_string r.Netaddr.Prefix_range.prefix
                 ^ render_length_window r)
               rs);
      ]

let render_communities = function
  | [] -> []
  | [ c ] ->
      [ "tagged with the community " ^ Bgp.Community.to_string c ]
  | cs ->
      [
        "tagged with the communities "
        ^ String.concat " and " (List.map Bgp.Community.to_string cs);
      ]

let render_set = function
  | Config.Route_map.Set_metric n ->
      Printf.sprintf "Their MED value should be set to %d." n
  | Config.Route_map.Set_local_pref n ->
      Printf.sprintf "Their local preference should be set to %d." n
  | Config.Route_map.Set_community { communities; additive = true } ->
      Printf.sprintf "The communities %s should be added."
        (String.concat " and " (List.map Bgp.Community.to_string communities))
  | Config.Route_map.Set_community { communities; additive = false } ->
      Printf.sprintf "Their communities should be replaced with %s."
        (String.concat " and " (List.map Bgp.Community.to_string communities))
  | Config.Route_map.Set_comm_list_delete name ->
      Printf.sprintf "Communities matching the list %s should be removed." name
  | Config.Route_map.Set_as_path_prepend asns ->
      Printf.sprintf "The AS path should be prepended with %s."
        (String.concat " " (List.map string_of_int asns))
  | Config.Route_map.Set_next_hop ip ->
      Printf.sprintf "The next hop should be set to %s."
        (Netaddr.Ipv4.to_string ip)
  | Config.Route_map.Set_tag n -> Printf.sprintf "Their tag should be set to %d." n
  | Config.Route_map.Set_weight n ->
      Printf.sprintf "Their weight should be set to %d." n
  | Config.Route_map.Set_origin o ->
      Printf.sprintf "Their origin should be set to %s."
        (Bgp.Route.origin_to_string o)

let render_route_map (i : route_map_intent) =
  let verb =
    match i.action with
    | Config.Action.Permit -> "permits"
    | Config.Action.Deny -> "denies"
  in
  let conditions =
    List.concat
      [
        render_prefixes i.prefixes;
        render_communities i.communities;
        (match i.as_path_origin with
        | Some a -> [ Printf.sprintf "originating from AS %d" a ]
        | None -> []);
        (match i.as_path_contains with
        | Some a -> [ Printf.sprintf "passing through AS %d" a ]
        | None -> []);
        (match i.local_pref with
        | Some n -> [ Printf.sprintf "with local preference %d" n ]
        | None -> []);
        (match i.metric_match with
        | Some n -> [ Printf.sprintf "with MED %d" n ]
        | None -> []);
        (match i.tag_match with
        | Some n -> [ Printf.sprintf "with tag %d" n ]
        | None -> []);
      ]
  in
  let head =
    match conditions with
    | [] -> Printf.sprintf "Write a route-map stanza that %s all routes." verb
    | cs ->
        Printf.sprintf "Write a route-map stanza that %s routes %s." verb
          (String.concat " and " cs)
  in
  String.concat " " (head :: List.map render_set i.sets)

let render_addr which = function
  | Config.Acl.Any -> (
      match which with `Src -> "anywhere" | `Dst -> "any destination")
  | Config.Acl.Host ip -> "host " ^ Netaddr.Ipv4.to_string ip
  | Config.Acl.Wildcard _ as w -> (
      match Config.Acl.addr_to_prefix w with
      | Some p -> Netaddr.Prefix.to_string p
      | None -> (
          match w with
          | Config.Acl.Wildcard (base, wild) ->
              Printf.sprintf "%s wildcard %s"
                (Netaddr.Ipv4.to_string base)
                (Netaddr.Ipv4.to_string wild)
          | _ -> assert false))

let render_port role = function
  | Config.Acl.Any_port -> []
  | Config.Acl.Eq n -> [ Printf.sprintf "%s port %d" role n ]
  | Config.Acl.Neq n -> [ Printf.sprintf "%s port not %d" role n ]
  | Config.Acl.Lt n -> [ Printf.sprintf "%s port below %d" role n ]
  | Config.Acl.Gt n -> [ Printf.sprintf "%s port above %d" role n ]
  | Config.Acl.Range (a, b) ->
      [ Printf.sprintf "%s ports %d to %d" role a b ]

let render_acl (i : acl_intent) =
  let verb =
    match i.acl_action with
    | Config.Action.Permit -> "permits"
    | Config.Action.Deny -> "denies"
  in
  let parts =
    List.concat
      [
        [
          Printf.sprintf "Write an access list rule that %s %s traffic from %s to %s"
            verb
            (Config.Packet.protocol_to_string i.protocol)
            (render_addr `Src i.src) (render_addr `Dst i.dst);
        ];
        render_port "source" i.src_port;
        render_port "destination" i.dst_port;
        (if i.established then [ "for established connections only" ] else []);
      ]
  in
  String.concat " with " [ List.hd parts ]
  ^ (match List.tl parts with
    | [] -> ""
    | rest -> " with " ^ String.concat " and " rest)
  ^ "."

let to_prompt = function
  | Route_map i -> render_route_map i
  | Acl i -> render_acl i

(* ------------------------------------------------------------------ *)
(* Spec extraction (the paper's second LLM call)                      *)
(* ------------------------------------------------------------------ *)

(** The behavioural spec corresponding to a route-map intent, in the
    paper's JSON format. *)
let spec_of_route_map (i : route_map_intent) =
  (* A single community becomes the paper's regex form; several use the
     spec's all-of field (standard-list semantics). *)
  let community, communities_all =
    match i.communities with
    | [] -> (None, [])
    | [ c ] ->
        ( Some
            (Sre.Community_regex.compile
               (Printf.sprintf "_%s_" (Bgp.Community.to_string c))),
          [] )
    | cs -> (None, cs)
  in
  let as_path =
    match (i.as_path_origin, i.as_path_contains) with
    | Some a, _ -> Some (Sre.As_path_regex.compile (Printf.sprintf "_%d$" a))
    | None, Some a -> Some (Sre.As_path_regex.compile (Printf.sprintf "_%d_" a))
    | None, None -> None
  in
  Engine.Spec.make ~prefixes:i.prefixes ?community ~communities_all ?as_path
    ?local_pref:i.local_pref ?metric:i.metric_match ?tag:i.tag_match
    ~sets:i.sets i.action

let equal = ( = )

let pp fmt t = Format.pp_print_string fmt (to_prompt t)
