lib/config/database.ml: Acl As_path_list Community_list Format List Map Prefix_list Route_map String
