(** The Figure-4 aggregator: per-router statistics recomputed from
    recorded session logs.

    The Markdown and CSV renderings contain only deterministic data
    (event counts and chars/4 token estimates), so they can be
    committed as goldens and diffed in CI; wall-clock phase timings
    appear only in the JSON rendering. *)

type phase = { phase : string; total_ns : float; count : int }

type fleet_info = {
  role : string; (* netgen role recorded by the E5 fleet_router event *)
  steps_planned : int;
  completed : bool; (* a fleet_router_done event was seen *)
  wall_ns : float; (* from fleet_router_done; 0 until completed *)
}

type router_stats = {
  router : string;
  sessions : int; (* session_start events *)
  route_maps : int; (* distinct session_start targets *)
  stanzas : int; (* placement events *)
  questions : int;
  probes : int;
  boundaries : int; (* differing insertion boundaries, summed over
                       placement events *)
  retries : int; (* verify events with a non-"verified" verdict *)
  classify_calls : int;
  synthesize_calls : int;
  spec_calls : int;
  prompt_tokens : int;
  completion_tokens : int;
  cost_usd : float; (* {!Llm.Tokens.cost} over the token totals *)
  phases : phase list;
      (* wall time per depth-1 pipeline span, plus "total" for the
         root span; JSON rendering only *)
  boundary_ns : float;
      (* wall time summed over find_boundaries spans; the JSON
         rendering also derives boundary_ns_per_question from it *)
  batch_sessions : int; (* session_start events with pipeline="batch" *)
  batch_intents : int; (* intents summed over batch_plan events *)
  batch_conflict_pairs : int;
      (* genuine inter-intent conflict edges reported by batch plans *)
  batch_fast_path : int;
      (* batch items placed from precomputed boundaries, without
         recompiling the target *)
  batch_questions_saved : int;
      (* questions served from the shared batch answer cache
         (batch_cache_hit events) *)
  gauges : (string * float) list;
      (* the last "gauges" event of the router's sessions: point-in-time
         runtime state (GC pressure, BDD manager sizes, pool occupancy)
         sampled when the session closed; JSON rendering only *)
  fleet : fleet_info option;
      (* per-router progress from an E5 fleet run (fleet_router /
         fleet_router_done events); JSON rendering only *)
}

type t = { routers : router_stats list }

(** The incremental per-router accumulator behind every report.

    [add] folds one event in constant space; [merge a b] combines two
    accumulators whose event ranges are ordered a-before-b and is
    associative, so a pooled fold over file shards finishes
    byte-identically to a serial fold. {!of_sessions} and the streaming
    reader ({!Stream}) both go through this fold, which is what makes
    batch and streaming reports byte-for-byte interchangeable. *)
module Acc : sig
  type t

  val empty : t
  val add : t -> Telemetry.Event.t -> t
  val merge : t -> t -> t
  val of_events : Telemetry.Event.t list -> t

  val finish : router:string -> t -> router_stats

  val router_label : t -> string option
  (** First ctx ["router"] label seen, as in {!Session.router}. *)

  val events : t -> int
  val last_ts_ns : t -> float (* 0. before any event *)
  val last_kind : t -> string option
  val questions : t -> int
  val stanzas : t -> int
end

val llm_calls : router_stats -> int
(** classify + synthesize + spec. *)

val of_accs : (string * Acc.t) list -> t
(** [(fallback_name, acc)] per log, in log order; accumulators resolve
    to {!Acc.router_label}[ | fallback] and merge per router in input
    order. Rows are sorted by router name. *)

val of_sessions : Session.t list -> t
(** Sessions with the same {!Session.router} merge into one row; rows
    are sorted by router name. *)

val figure4_markdown : t -> string
(** Just the paper's Figure-4 table (route-maps, stanzas, synthesis
    calls, questions, boundaries, retries per router). *)

val to_markdown : t -> string
(** Figure-4 table plus the LLM usage/cost table. Deterministic. *)

val to_csv : t -> string
val to_json : t -> Json.t
