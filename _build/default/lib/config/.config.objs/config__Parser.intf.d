lib/config/parser.mli: Database
