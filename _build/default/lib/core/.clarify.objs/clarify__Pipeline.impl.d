lib/core/pipeline.ml: Acl_disambiguator Config Disambiguator Engine Format List Llm Naming Printf String Symbolic
