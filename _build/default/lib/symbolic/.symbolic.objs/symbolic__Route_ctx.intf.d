lib/symbolic/route_ctx.mli: Bdd Bgp Bvec Config Hashtbl Netaddr Sre Symbdd
