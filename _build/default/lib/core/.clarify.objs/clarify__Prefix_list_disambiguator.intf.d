lib/core/prefix_list_disambiguator.mli: Config Format Netaddr
