lib/overlap/corpus.mli: Config Format
