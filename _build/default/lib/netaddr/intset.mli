(** Sets of non-negative integers represented as sorted disjoint closed
    intervals. Used for ASN predicates, character classes and port sets. *)

type t

val empty : t
val is_empty : t -> bool
val singleton : int -> t

val range : int -> int -> t
(** [range lo hi] is the closed interval. @raise Invalid_argument if
    [lo > hi] or [lo < 0]. *)

val full : max:int -> t
(** [full ~max] is [range 0 max]. *)

val of_list : int list -> t
val mem : int -> t -> bool
val union : t -> t -> t
val inter : t -> t -> t

val compl : max:int -> t -> t
(** Complement within the universe [0..max]. *)

val diff : t -> t -> t
val choose : t -> int option
(** Smallest element, if any. *)

val cardinal : t -> int
val intervals : t -> (int * int) list
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val subset : t -> t -> bool
val pp : Format.formatter -> t -> unit
