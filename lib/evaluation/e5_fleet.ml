(** Experiment E5 — fleet-scale synthesis: generate a whole topology
    with {!Netgen}, expand the global policies into per-router intent
    worklists, and run every router's synthesis through the full
    Clarify pipeline, sharded across the domain pool.

    Each router is an independent unit of work: its own mock LLM, its
    own reference-driven oracle, its own scratch BDD manager (so peak
    memory is per-router, not per-fleet), and — with [--record-dir] —
    its own JSONL telemetry log ([e5_<router>.jsonl]) that the
    streaming analytics ({!Analytics.Stream}) can tail while the run is
    live. Fleet progress is published through gauges
    ([fleet.routers.{pending,running,done}], [fleet.stragglers]) and a
    [fleet.router_ns] wall-time histogram, so [clarify top --fleet]
    can watch a thousand-router run without touching the logs. *)

module D = Clarify.Disambiguator
module P = Clarify.Pipeline

(* ------------------------------------------------------------------ *)
(* Fleet gauges. Workers on pool domains bump plain atomics; the
   gauges are pull-mode collectors sampled at scrape time. (Gauge.set
   is last-write-wins per series, so concurrent workers must not set
   gauges directly.)                                                   *)
(* ------------------------------------------------------------------ *)

let pending_n = Atomic.make 0
let running_n = Atomic.make 0
let done_n = Atomic.make 0
let done_ns_total = Atomic.make 0 (* int nanoseconds, fetch_and_add *)

(* Start times of in-flight routers, for the straggler probe. *)
let starts_mu = Mutex.create ()
let starts : (string, float) Hashtbl.t = Hashtbl.create 64

let now () = Unix.gettimeofday ()

let stragglers_now () =
  (* A straggler is an in-flight router that has already taken more
     than twice the mean completed wall time (and at least 100ms, so
     tiny fleets don't flap). Before anything completes there is no
     baseline and nothing is a straggler. *)
  let completed = Atomic.get done_n in
  if completed = 0 then 0
  else
    let mean_s =
      float_of_int (Atomic.get done_ns_total) /. float_of_int completed /. 1e9
    in
    let threshold = Float.max 0.1 (2. *. mean_s) in
    let t = now () in
    Mutex.lock starts_mu;
    let n =
      Hashtbl.fold
        (fun _ started acc -> if t -. started > threshold then acc + 1 else acc)
        starts 0
    in
    Mutex.unlock starts_mu;
    n

let metrics =
  lazy
    (let g name help f = ignore (Obs.Gauge.collector ~help name f) in
     g "fleet.routers.pending" "routers not yet started in the current E5 run"
       (fun () -> float_of_int (Atomic.get pending_n));
     g "fleet.routers.running" "routers currently synthesizing" (fun () ->
         float_of_int (Atomic.get running_n));
     g "fleet.routers.done" "routers completed in the current E5 run"
       (fun () -> float_of_int (Atomic.get done_n));
     g "fleet.stragglers"
       "in-flight routers over 2x the mean completed wall time"
       (fun () -> float_of_int (stragglers_now ()));
     Obs.Histogram.make ~help:"per-router synthesis wall time"
       "fleet.router_ns")

let reset_fleet ~routers =
  ignore (Lazy.force metrics);
  Atomic.set pending_n routers;
  Atomic.set running_n 0;
  Atomic.set done_n 0;
  Atomic.set done_ns_total 0;
  Mutex.lock starts_mu;
  Hashtbl.reset starts;
  Mutex.unlock starts_mu

let router_started name =
  Atomic.decr pending_n;
  Atomic.incr running_n;
  Mutex.lock starts_mu;
  Hashtbl.replace starts name (now ());
  Mutex.unlock starts_mu

let router_finished name wall_ns =
  Atomic.decr running_n;
  Atomic.incr done_n;
  ignore (Atomic.fetch_and_add done_ns_total (int_of_float wall_ns));
  Obs.Histogram.observe_ns (Lazy.force metrics) wall_ns;
  Mutex.lock starts_mu;
  Hashtbl.remove starts name;
  Mutex.unlock starts_mu

(* ------------------------------------------------------------------ *)
(* Per-router synthesis.                                               *)
(* ------------------------------------------------------------------ *)

type router_result = {
  router : string;
  role : Netgen.role;
  site : int;
  steps : int;
  questions : int;
  synthesis_calls : int;
  total_llm_calls : int;
  wall_ns : float; (* nondeterministic; excluded from reports *)
  config : Config.Database.t;
}

type result = {
  profile : Netgen.profile;
  routers : int;
  k : int;
  pods : int;
  results : router_result list; (* generation order, pool-size independent *)
  simulation : (Netsim.Simulator.state * Netgen.check list) option;
  wall_ns : float;
}

let with_router_recording ~record_dir ~(plan : Netgen.Policy.plan) f =
  match record_dir with
  | None -> f ()
  | Some dir ->
      let path = Filename.concat dir ("e5_" ^ plan.Netgen.Policy.router ^ ".jsonl") in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          Telemetry.with_channel_recorder oc @@ fun () ->
          Telemetry.with_context [ ("router", plan.Netgen.Policy.router) ]
            (fun () ->
              Telemetry.emit ~kind:"fleet_router" (fun () ->
                  [
                    ("router", Json.String plan.Netgen.Policy.router);
                    ( "role",
                      Json.String (Netgen.role_to_string plan.Netgen.Policy.role)
                    );
                    ("site", Json.Int plan.Netgen.Policy.site);
                    ( "steps",
                      Json.Int (List.length plan.Netgen.Policy.steps) );
                  ]);
              let r, wall_ns = f () in
              Telemetry.emit ~kind:"fleet_router_done" (fun () ->
                  [
                    ("router", Json.String plan.Netgen.Policy.router);
                    ("wall_ns", Json.Float wall_ns);
                  ]);
              (* Same close-out idiom as E4: a point-in-time gauge
                 sample, JSON-only in reports. *)
              Telemetry.emit ~kind:"gauges" (fun () ->
                  List.map
                    (fun (n, v) -> (n, Json.Float v))
                    (Obs.Gauge.sample_all ()));
              (r, wall_ns)))

let build_router ?record_dir ?bdd_base (plan : Netgen.Policy.plan) =
  let open Netgen.Policy in
  router_started plan.router;
  let (result : router_result), wall_ns =
        with_router_recording ~record_dir ~plan @@ fun () ->
        let t0 = Unix.gettimeofday () in
        (* A scratch manager per router bounds BDD memory by the
           largest single router, not the fleet. When the run supplies
           a frozen base (the prewarmed shared prefix ranges), the
           scratch manager is a delta layered on it, so the shared
           structure is compiled once per run instead of per router. *)
        let manager =
          match bdd_base with
          | Some base -> Symbdd.Bdd.Manager.create_delta base
          | None -> Symbdd.Bdd.Manager.create ()
        in
        let db, questions, llm =
          Symbdd.Bdd.with_manager manager @@ fun () ->
          let llm = Llm.Mock_llm.create () in
          let questions = ref 0 in
          let db =
            List.fold_left
              (fun db { map; intent } ->
                let db =
                  if Config.Database.route_map db map = None then
                    Config.Database.add_route_map db
                      (Config.Route_map.make map [])
                  else db
                in
                let reference_map =
                  Option.get (Config.Database.route_map plan.reference map)
                in
                let oracle =
                  D.intent_driven (fun route ->
                      Config.Semantics.eval_route_map plan.reference
                        reference_map route)
                in
                let prompt = Llm.Intent.to_prompt intent in
                match
                  P.run_route_map_update ~llm ~oracle ~db ~target:map ~prompt ()
                with
                | Ok report ->
                    questions := !questions + List.length report.P.questions;
                    report.P.db
                | Error e ->
                    failwith
                      (Printf.sprintf "E5 %s %s: %s" plan.router map
                         (P.error_to_string e)))
              Config.Database.empty plan.steps
          in
          (db, !questions, llm)
        in
        let wall_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
        ( {
            router = plan.router;
            role = plan.role;
            site = plan.site;
            steps = List.length plan.steps;
            questions;
            synthesis_calls =
              (Llm.Mock_llm.stats llm).Llm.Mock_llm.synthesis_calls;
            total_llm_calls = Llm.Mock_llm.total_calls llm;
            wall_ns;
            config = db;
          },
          wall_ns )
  in
  router_finished plan.router wall_ns;
  result

(* ------------------------------------------------------------------ *)
(* The fleet manifest: written before any router starts so a watcher
   (clarify fleet status) knows the full roster, roles and step
   budgets even while logs are still appearing.                        *)
(* ------------------------------------------------------------------ *)

let manifest_name = "fleet.json"

let write_manifest ~dir (net : Netgen.t) (plans : Netgen.Policy.plan list) =
  let nodes =
    List.map
      (fun (p : Netgen.Policy.plan) ->
        Json.Obj
          [
            ("router", Json.String p.Netgen.Policy.router);
            ("role", Json.String (Netgen.role_to_string p.Netgen.Policy.role));
            ("site", Json.Int p.Netgen.Policy.site);
            ("steps", Json.Int (List.length p.Netgen.Policy.steps));
          ])
      plans
  in
  let doc =
    Json.Obj
      [
        ("schema", Json.String "clarify-fleet/1");
        ("profile", Json.String (Netgen.profile_to_string net.Netgen.profile));
        ("routers", Json.Int net.Netgen.routers);
        ("k", Json.Int net.Netgen.k);
        ("pods", Json.Int net.Netgen.pods);
        ("log_prefix", Json.String "e5_");
        ("nodes", Json.List nodes);
      ]
  in
  let oc = open_out (Filename.concat dir manifest_name) in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string ~indent:1 doc))

(* ------------------------------------------------------------------ *)
(* The run.                                                            *)
(* ------------------------------------------------------------------ *)

let run ?record_dir ?(pool = Parallel.Pool.serial) ?(simulate = false)
    ?(profile = Netgen.Fat_tree) ?(grain = 1) ?skew ~routers () =
  let t0 = Unix.gettimeofday () in
  let net = Netgen.generate ~profile ~routers in
  let plans = Netgen.Policy.compile net in
  let plans =
    match skew with
    | None -> plans
    | Some (heavy, factor) -> Netgen.Policy.skew ~heavy ~factor plans
  in
  reset_fleet ~routers:(List.length plans);
  Option.iter (fun dir -> write_manifest ~dir net plans) record_dir;
  (* Every plan's intents reference the same handful of prefix ranges;
     compile them once into a frozen base shared by all routers. *)
  let bdd_base = Symbdd.Bdd.Manager.create () in
  Symbdd.Bdd.with_manager bdd_base (fun () ->
      List.iter
        (fun r -> ignore (Symbolic.Route_ctx.of_prefix_range r))
        (Netgen.Policy.shared_ranges ()));
  Symbdd.Bdd.Manager.freeze bdd_base;
  (* One router per task (grain 1): a router that carries 10x the
     stanzas delays only itself — its pod-mates get stolen by idle
     workers, which is what keeps the fleet's p99/p50 tail flat.
     [?grain] exists so the bench can reconstruct the coarse
     chunked-fork-join baseline it compares against. *)
  let results =
    Parallel.Pool.map ~grain pool
      ~f:(fun plan -> build_router ?record_dir ~bdd_base plan)
      plans
  in
  let simulation =
    if simulate then (
      let topo =
        Netgen.install net (List.map (fun r -> (r.router, r.config)) results)
      in
      let state = Netsim.Simulator.run topo in
      Some (state, Netgen.check net state))
    else None
  in
  {
    profile;
    routers;
    k = net.Netgen.k;
    pods = net.Netgen.pods;
    results;
    simulation;
    wall_ns = (Unix.gettimeofday () -. t0) *. 1e9;
  }

(* ------------------------------------------------------------------ *)
(* Reporting.                                                          *)
(* ------------------------------------------------------------------ *)

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.
  | n ->
      let idx = int_of_float (ceil (p /. 100. *. float_of_int n)) - 1 in
      sorted.(max 0 (min (n - 1) idx))

let print fmt (r : result) =
  Format.fprintf fmt "=== E5: fleet synthesis (%s, %d routers) ===@.@."
    (Netgen.profile_to_string r.profile)
    r.routers;
  (match r.profile with
  | Netgen.Fat_tree ->
      Format.fprintf fmt "topology: fat-tree k=%d, %d pods@." r.k r.pods
  | Netgen.Wan ->
      Format.fprintf fmt "topology: WAN, %d backbone cities@." r.pods);
  let by_role =
    List.fold_left
      (fun acc (res : router_result) ->
        let role = Netgen.role_to_string res.role in
        let n = try List.assoc role acc with Not_found -> 0 in
        (role, n + 1) :: List.remove_assoc role acc)
      [] r.results
    |> List.sort compare
  in
  Format.fprintf fmt "roles: %s@.@."
    (String.concat ", "
       (List.map (fun (role, n) -> Printf.sprintf "%d %s" n role) by_role));
  let sum f = List.fold_left (fun a x -> a + f x) 0 r.results in
  Format.fprintf fmt
    "steps %d, questions %d, synthesis calls %d, total LLM calls %d@."
    (sum (fun x -> x.steps))
    (sum (fun x -> x.questions))
    (sum (fun x -> x.synthesis_calls))
    (sum (fun x -> x.total_llm_calls));
  let walls =
    List.map (fun (x : router_result) -> x.wall_ns /. 1e6) r.results
    |> Array.of_list
  in
  Array.sort compare walls;
  Format.fprintf fmt
    "router wall (nondeterministic): p50 %.1fms  p99 %.1fms  max %.1fms; \
     fleet wall %.2fs@.@."
    (percentile walls 50.) (percentile walls 99.) (percentile walls 100.)
    (r.wall_ns /. 1e9);
  match r.simulation with
  | None -> Format.fprintf fmt "BGP simulation: skipped (pass --simulate)@."
  | Some (state, checks) ->
      Format.fprintf fmt "BGP simulation: converged=%b in %d rounds@."
        state.Netsim.Simulator.converged state.Netsim.Simulator.rounds;
      List.iter (fun c -> Format.fprintf fmt "%a@." Netgen.pp_check c) checks
