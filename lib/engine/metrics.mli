(** Observability counters for the symbolic engine. Referencing this
    module also wires the BDD allocation and compile-cache hooks to the
    [obs] lifecycle. *)

val search_filters_calls : Obs.Counter.t
val search_route_policies_calls : Obs.Counter.t
val compare_route_policies_calls : Obs.Counter.t
val compare_acls_calls : Obs.Counter.t
val bdd_nodes : Obs.Counter.t
val cache_hits : Obs.Counter.t
val cache_misses : Obs.Counter.t

val publish_manager_stats : unit -> unit
(** Raise the [bdd.manager.nodes] / [bdd.manager.memo_entries] /
    [bdd.manager.cache_entries] counters to the current domain
    manager's live sizes (high-water marks; counters are monotonic).
    Call just before taking a snapshot so `clarify obs` reports show
    where BDD memory stands. *)
