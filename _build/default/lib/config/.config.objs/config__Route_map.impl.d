lib/config/route_map.ml: Action Bgp Format Int List Netaddr Printf Stdlib String
