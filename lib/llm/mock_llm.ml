(** The simulated LLM: a [prompt -> completion] endpoint with call
    accounting and scheduled fault injection.

    The completion function is the composition of the natural-language
    parser and the template synthesizer, optionally corrupted by the
    next scheduled fault. Because faults are consumed one per synthesis
    attempt, the verify-and-repair loop of the pipeline converges once
    the schedule is exhausted — mirroring an LLM that fixes its output
    when shown a counterexample. *)

type request = {
  system : string;
  few_shot : (string * string) list;
  user : string;
}

type stats = {
  mutable classify_calls : int;
  mutable synthesis_calls : int;
  mutable spec_calls : int;
  mutable prompt_tokens : int;
  mutable completion_tokens : int;
  mutable faults_injected : Fault_injector.fault list; (* newest first *)
}

type t = {
  mutable pending_faults : Fault_injector.fault list;
  (* Replay transcript: when set, synthesis answers come verbatim from
     here (a recorded session's responses, faults already baked in)
     instead of the parser+synthesizer. *)
  mutable replay : (string, string) result list option;
  stats : stats;
}

(* Observability: one counter per endpoint, shared by every instance. *)
let classify_counter =
  Obs.Counter.make "llm.calls.classify" ~help:"classification calls"

let synthesize_counter =
  Obs.Counter.make "llm.calls.synthesize" ~help:"synthesis calls"

let spec_counter =
  Obs.Counter.make "llm.calls.spec" ~help:"spec-extraction calls"

(* Token accounting: per-call estimates go to the stats record (always)
   and the labeled per-endpoint counters (while Obs is enabled), and are
   returned so the emitters below can tag their telemetry events. *)
let account t ~endpoint ~prompt_tokens ~completion_tokens =
  t.stats.prompt_tokens <- t.stats.prompt_tokens + prompt_tokens;
  t.stats.completion_tokens <- t.stats.completion_tokens + completion_tokens;
  Tokens.account ~endpoint ~prompt_tokens ~completion_tokens

let token_fields ~prompt_tokens ~completion_tokens =
  [
    ("prompt_tokens", Json.Int prompt_tokens);
    ("completion_tokens", Json.Int completion_tokens);
  ]

let create ?(faults = []) ?replay () =
  {
    pending_faults = faults;
    replay;
    stats =
      {
        classify_calls = 0;
        synthesis_calls = 0;
        spec_calls = 0;
        prompt_tokens = 0;
        completion_tokens = 0;
        faults_injected = [];
      };
  }

let stats t = t.stats

let total_calls t =
  t.stats.classify_calls + t.stats.synthesis_calls + t.stats.spec_calls

(** The classification call (paper step 1). *)
let classify t prompt =
  t.stats.classify_calls <- t.stats.classify_calls + 1;
  Obs.Counter.incr classify_counter;
  let verdict = Classifier.classify prompt in
  let prompt_tokens = Tokens.estimate prompt in
  (* The classifier answers with a single label. *)
  let completion_tokens = 1 in
  account t ~endpoint:"classify" ~prompt_tokens ~completion_tokens;
  Telemetry.emit ~kind:"llm_classify" (fun () ->
      [
        ("prompt", Json.String prompt);
        ( "verdict",
          Json.String (match verdict with `Acl -> "acl" | `Route_map -> "route_map")
        );
      ]
      @ token_fields ~prompt_tokens ~completion_tokens);
  verdict

(** The synthesis call (paper step 3): returns Cisco IOS text. [Error]
    models a refusal/unparseable intent. *)
let synthesize t (req : request) =
  t.stats.synthesis_calls <- t.stats.synthesis_calls + 1;
  Obs.Counter.incr synthesize_counter;
  let result, fault =
    match t.replay with
    | Some transcript -> (
        (* Replaying a recorded session: answers come from the log. *)
        match transcript with
        | [] -> (Error "replay transcript exhausted", None)
        | r :: rest ->
            t.replay <- Some rest;
            (r, None))
    | None -> (
        (* Counterexample feedback appended by the repair loop guides a
           real LLM; the simulated one simply re-reads the original
           intent. *)
        let user =
          match String.index_opt req.user '\n' with
          | Some i -> String.sub req.user 0 i
          | None -> req.user
        in
        let kind = Classifier.classify user in
        match Nl_parser.parse kind user with
        | Error e -> (Error (Nl_parser.error_message e), None)
        | Ok intent -> (
            let clean = Synthesizer.render intent in
            match t.pending_faults with
            | [] -> (Ok clean, None)
            | fault :: rest -> (
                t.pending_faults <- rest;
                match Fault_injector.apply fault clean with
                | Some corrupted ->
                    t.stats.faults_injected <- fault :: t.stats.faults_injected;
                    (Ok corrupted, Some fault)
                | None -> (Ok clean, None)
                (* fault not applicable to this snippet *))))
  in
  let prompt_tokens =
    Tokens.estimate_request ~system:req.system ~few_shot:req.few_shot
      ~user:req.user
  in
  let completion_tokens =
    Tokens.estimate (match result with Ok s | Error s -> s)
  in
  account t ~endpoint:"synthesize" ~prompt_tokens ~completion_tokens;
  Telemetry.emit ~kind:"llm_synthesize" (fun () ->
      [
        ("prompt", Json.String req.user);
        ("ok", Json.Bool (Result.is_ok result));
        ( (match result with Ok _ -> "text" | Error _ -> "error"),
          Json.String (match result with Ok s | Error s -> s) );
        ( "fault",
          match fault with
          | None -> Json.Null
          | Some f -> Json.String (Fault_injector.fault_to_string f) );
      ]
      @ token_fields ~prompt_tokens ~completion_tokens);
  result

(** The spec-extraction call (paper step 3'): the JSON behavioural spec
    of the user's intent. Always faithful — the paper has the user
    manually vet this output, so an unfaithful spec would be caught
    before verification. *)
let generate_spec t prompt =
  t.stats.spec_calls <- t.stats.spec_calls + 1;
  Obs.Counter.incr spec_counter;
  let result =
    match Nl_parser.parse_route_map prompt with
    | Error e -> Error (Nl_parser.error_message e)
    | Ok intent -> Ok (Intent.spec_of_route_map intent)
  in
  let prompt_tokens = Tokens.estimate prompt in
  let completion_tokens =
    Tokens.estimate
      (match result with
      | Ok spec -> Json.to_string ~indent:0 (Engine.Spec.to_json spec)
      | Error m -> m)
  in
  account t ~endpoint:"spec" ~prompt_tokens ~completion_tokens;
  Telemetry.emit ~kind:"llm_spec" (fun () ->
      [
        ("prompt", Json.String prompt);
        ("ok", Json.Bool (Result.is_ok result));
        ( match result with
        | Ok spec -> ("spec", Engine.Spec.to_json spec)
        | Error m -> ("error", Json.String m) );
      ]
      @ token_fields ~prompt_tokens ~completion_tokens);
  result
