type t = { prefix : Prefix.t; lo : int; hi : int }

let make prefix ~ge ~le =
  let len = prefix.Prefix.len in
  let lo, hi =
    match (ge, le) with
    | None, None -> (len, len)
    | None, Some e -> (len, e)
    | Some g, None -> (g, 32)
    | Some g, Some e -> (g, e)
  in
  if not (len <= lo && lo <= hi && hi <= 32) then
    invalid_arg "Prefix_range.make: bounds must satisfy len <= ge <= le <= 32";
  { prefix; lo; hi }

let exact prefix = make prefix ~ge:None ~le:None
let any = make Prefix.default ~ge:None ~le:(Some 32)

let matches t q =
  let open Prefix in
  q.len >= t.lo && q.len <= t.hi
  && Ipv4.equal (Ipv4.logand q.ip (Ipv4.mask t.prefix.len)) t.prefix.ip

(* Two entries share a matched route prefix iff their base prefixes agree
   on the shorter one's bits and their length windows intersect. *)
let bits_compatible a b =
  let la = a.prefix.Prefix.len and lb = b.prefix.Prefix.len in
  let l = min la lb in
  Ipv4.equal
    (Ipv4.logand a.prefix.Prefix.ip (Ipv4.mask l))
    (Ipv4.logand b.prefix.Prefix.ip (Ipv4.mask l))

let witness_overlap a b =
  if not (bits_compatible a b) then None
  else
    let lo = max a.lo b.lo and hi = min a.hi b.hi in
    if lo > hi then None
    else
      let base =
        if a.prefix.Prefix.len >= b.prefix.Prefix.len then a.prefix else b.prefix
      in
      Some (Prefix.make base.Prefix.ip lo)

let overlap a b = Option.is_some (witness_overlap a b)

let subset a b =
  bits_compatible a b
  && b.prefix.Prefix.len <= a.prefix.Prefix.len
  && b.lo <= a.lo && a.hi <= b.hi

let witness t = Prefix.make t.prefix.Prefix.ip t.lo

let ge_le t =
  let len = t.prefix.Prefix.len in
  match (t.lo, t.hi) with
  | lo, hi when lo = len && hi = len -> (None, None)
  | lo, 32 when lo <> len -> (Some lo, None)
  | lo, hi when lo = len -> (None, Some hi)
  | lo, hi -> (Some lo, Some hi)

let compare a b =
  match Prefix.compare a.prefix b.prefix with
  | 0 -> ( match Int.compare a.lo b.lo with 0 -> Int.compare a.hi b.hi | c -> c)
  | c -> c

let equal a b = compare a b = 0

let to_string t =
  let ge, le = ge_le t in
  String.concat ""
    [ Prefix.to_string t.prefix;
      (match ge with Some g -> Printf.sprintf " ge %d" g | None -> "");
      (match le with Some e -> Printf.sprintf " le %d" e | None -> "") ]

let pp fmt t = Format.pp_print_string fmt (to_string t)
