lib/netaddr/prefix_range.mli: Format Prefix
