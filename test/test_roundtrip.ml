(* Parser round-trip properties over the workload generators: printing
   a generated configuration and parsing it back must preserve every
   named object structurally, and printing must reach a fixpoint after
   one round trip. Complements the hand-written cases in test_config.ml
   with the [Workload] generators used by the benchmarks, whose shapes
   (density-swept rules, crossing pairs, generated list references) are
   much more varied. *)

let case_count = 200

let reparse db =
  let text = Config.Parser.to_string db in
  match Config.Parser.parse text with
  | Ok db' -> (text, db')
  | Error m ->
      QCheck.Test.fail_reportf "reprinted config does not parse: %s@.%s" m text

(* print ∘ parse ∘ print = print — catches printers that normalise
   differently on the second pass. *)
let print_fixpoint db =
  let text, db' = reparse db in
  let text', _ = reparse db' in
  if text <> text' then
    QCheck.Test.fail_reportf "printing is not a fixpoint:@.%s@.vs@.%s" text
      text'
  else true

let gen_rng =
  QCheck.Gen.(map (fun seed -> Random.State.make [| seed |]) (int_bound 1_000_000))

(* --- ACLs from the density-swept random corpus ------------------- *)

let arb_corpus_acl =
  QCheck.make
    QCheck.Gen.(
      let* rng = gen_rng in
      let* rules = int_range 1 15 and* d = int_bound 10 in
      return
        (Workload.Random_corpus.acl ~rng ~name:"RT_ACL" ~rules
           ~overlap_density:(float_of_int d /. 10.)))
    ~print:(Format.asprintf "%a" Config.Acl.pp)

let prop_corpus_acl_roundtrip =
  QCheck.Test.make ~count:case_count ~name:"random_corpus acl round-trips"
    arb_corpus_acl (fun acl ->
      let db = Config.Database.add_acl Config.Database.empty acl in
      let _, db' = reparse db in
      match Config.Database.acl db' "RT_ACL" with
      | None -> QCheck.Test.fail_report "ACL lost in round trip"
      | Some acl' -> acl' = acl && print_fixpoint db)

(* --- ACLs from the closed-form overlap generator ----------------- *)

let arb_gen_acl =
  QCheck.make
    QCheck.Gen.(
      let* rng = gen_rng in
      let* plain = int_bound 6
      and* crossing = int_bound 4
      and* trailing = bool in
      (* An empty ACL is just a header line, which the parser rightly
         drops; keep at least one rule. *)
      let plain = if plain = 0 && crossing = 0 && not trailing then 1 else plain in
      return
        (Workload.Acl_gen.make ~rng ~name:"RT_GEN" ~plain ~crossing
           ~trailing_deny_any:trailing))
    ~print:(Format.asprintf "%a" Config.Acl.pp)

let prop_gen_acl_roundtrip =
  QCheck.Test.make ~count:case_count ~name:"acl_gen acl round-trips"
    arb_gen_acl (fun acl ->
      let db = Config.Database.add_acl Config.Database.empty acl in
      let _, db' = reparse db in
      match Config.Database.acl db' "RT_GEN" with
      | None -> QCheck.Test.fail_report "ACL lost in round trip"
      | Some acl' -> acl' = acl && print_fixpoint db)

(* --- Route-maps plus their generated match lists ----------------- *)

let arb_route_map_db =
  QCheck.make
    QCheck.Gen.(
      let* rng = gen_rng in
      let* stanzas = int_range 1 10 and* d = int_bound 10 in
      return
        (Workload.Random_corpus.route_map ~rng ~db:Config.Database.empty
           ~name:"RT_MAP" ~stanzas
           ~overlap_density:(float_of_int d /. 10.)))
    ~print:(fun (db, _) -> Config.Parser.to_string db)

let prop_route_map_roundtrip =
  QCheck.Test.make ~count:case_count ~name:"random_corpus route-map round-trips"
    arb_route_map_db (fun (db, rm) ->
      let _, db' = reparse db in
      match Config.Database.route_map db' "RT_MAP" with
      | None -> QCheck.Test.fail_report "route-map lost in round trip"
      | Some rm' -> rm' = rm && print_fixpoint db)

(* Every list the generated map references survives the round trip —
   the map alone round-tripping is not enough for re-verification. *)
let prop_route_map_references_survive =
  QCheck.Test.make ~count:case_count ~name:"generated lists survive round trip"
    arb_route_map_db (fun (db, _) ->
      let _, db' = reparse db in
      (match Config.Database.route_map db' "RT_MAP" with
      | None -> false
      | Some rm' -> Config.Database.undefined_references db' rm' = [])
      && List.sort compare (Config.Database.all_names db')
         = List.sort compare (Config.Database.all_names db))

let () =
  Alcotest.run "roundtrip"
    [
      ( "parse-print",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_corpus_acl_roundtrip;
            prop_gen_acl_roundtrip;
            prop_route_map_roundtrip;
            prop_route_map_references_survive;
          ] );
    ]
