lib/engine/compare_acls.ml: Bdd Config Format List Symbdd Symbolic
