(** Symbolic IPv4 packet header space over BDD variables.

    Variable layout (MSB-first within each field):
    src 0-31, dst 32-63, protocol 64-71, src port 72-87, dst port 88-103,
    established 104. *)

open Symbdd

let src = Bvec.sequential ~first:0 ~width:32
let dst = Bvec.sequential ~first:32 ~width:32
let protocol = Bvec.sequential ~first:64 ~width:8
let src_port = Bvec.sequential ~first:72 ~width:16
let dst_port = Bvec.sequential ~first:88 ~width:16
let established_var = 104

let of_addr_spec field = function
  | Config.Acl.Any -> Bdd.one
  | Config.Acl.Host ip ->
      Bvec.eq_const field (Netaddr.Ipv4.to_int ip)
  | Config.Acl.Wildcard (base, wild) ->
      (* Constrain exactly the bits the wildcard marks as significant. *)
      let acc = ref Bdd.one in
      for i = 0 to 31 do
        if not (Netaddr.Ipv4.bit wild i) then begin
          let v = List.nth (Bvec.vars field) i in
          let lit = if Netaddr.Ipv4.bit base i then Bdd.var v else Bdd.nvar v in
          acc := Bdd.conj lit !acc
        end
      done;
      !acc

let of_port_spec field = function
  | Config.Acl.Any_port -> Bdd.one
  | Config.Acl.Eq n -> Bvec.eq_const field n
  | Config.Acl.Neq n -> Bdd.neg (Bvec.eq_const field n)
  | Config.Acl.Lt n -> if n = 0 then Bdd.zero else Bvec.le_const field (n - 1)
  | Config.Acl.Gt n ->
      if n >= 65535 then Bdd.zero else Bvec.ge_const field (n + 1)
  | Config.Acl.Range (a, b) -> Bvec.in_range field a b

let of_protocol = function
  | Config.Packet.Ip -> Bdd.one
  | p -> Bvec.eq_const protocol (Config.Packet.protocol_number p)

(* Canonical compile-cache key: every field that affects the match BDD
   (action and seq do not), rendered unambiguously. *)
let addr_key = function
  | Config.Acl.Any -> "*"
  | Config.Acl.Host ip -> "h" ^ string_of_int (Netaddr.Ipv4.to_int ip)
  | Config.Acl.Wildcard (base, wild) ->
      "w"
      ^ string_of_int (Netaddr.Ipv4.to_int base)
      ^ "/"
      ^ string_of_int (Netaddr.Ipv4.to_int wild)

let port_key = function
  | Config.Acl.Any_port -> "*"
  | Config.Acl.Eq n -> "e" ^ string_of_int n
  | Config.Acl.Neq n -> "n" ^ string_of_int n
  | Config.Acl.Lt n -> "l" ^ string_of_int n
  | Config.Acl.Gt n -> "g" ^ string_of_int n
  | Config.Acl.Range (a, b) -> "r" ^ string_of_int a ^ "-" ^ string_of_int b

let proto_key = function
  | Config.Packet.Ip -> "ip" (* distinct from [Proto 0], which renders "0" *)
  | p -> string_of_int (Config.Packet.protocol_number p)

let rule_key (r : Config.Acl.rule) =
  String.concat ";"
    [
      "acl.rule";
      proto_key r.protocol;
      addr_key r.src;
      addr_key r.dst;
      port_key r.src_port;
      port_key r.dst_port;
      (if r.established then "E" else "-");
    ]

(** The match condition of one ACL rule (ignoring its action). Memoized
    in the current manager's compilation cache, so corpus sweeps compile
    each distinct rule once per manager epoch. *)
let of_rule (r : Config.Acl.rule) =
  Bdd.cached ~key:(rule_key r) (fun () ->
      Bdd.conj_list
        [
          of_protocol r.protocol;
          of_addr_spec src r.src;
          of_addr_spec dst r.dst;
          of_port_spec src_port r.src_port;
          of_port_spec dst_port r.dst_port;
          (if r.established then Bdd.var established_var else Bdd.one);
        ])

type cell = {
  guard : Bdd.t; (* packets reaching and matching this rule *)
  action : Config.Action.t;
  rule_seq : int option; (* [None] for the implicit trailing deny *)
}

(** Ordered first-match partition of the packet space: each cell's guard
    is the rule's match condition minus everything matched earlier; the
    final cell is the implicit deny. Guards partition the space. *)
let exec (acl : Config.Acl.t) =
  let rec go unmatched = function
    | [] ->
        [ { guard = unmatched; action = Config.Action.Deny; rule_seq = None } ]
    | (r : Config.Acl.rule) :: rest ->
        let m = of_rule r in
        let guard = Bdd.conj unmatched m in
        { guard; action = r.action; rule_seq = Some r.seq }
        :: go (Bdd.conj unmatched (Bdd.neg m)) rest
  in
  go Bdd.one acl.Config.Acl.rules

(** Prefix execution: [i]th element is the set of packets that fall
    through (match none of) rules [0..i-1]; index 0 is the full space
    and index [n] the implicit-deny guard. One traversal serves every
    insertion position (DESIGN.md §11). *)
let exec_prefixes (acl : Config.Acl.t) =
  let rules = Array.of_list acl.Config.Acl.rules in
  let n = Array.length rules in
  let reach = Array.make (n + 1) Bdd.one in
  for i = 0 to n - 1 do
    reach.(i + 1) <- Bdd.conj reach.(i) (Bdd.neg (of_rule rules.(i)))
  done;
  reach

(** The set of packets an ACL permits. *)
let permitted acl =
  Bdd.disj_list
    (List.filter_map
       (fun c ->
         if Config.Action.equal c.action Config.Action.Permit then Some c.guard
         else None)
       (exec acl))

(** Extract a concrete packet from a non-empty region. Prefers familiar
    protocols (TCP, then UDP, then ICMP) when the region allows them. *)
let to_packet bdd =
  if Bdd.is_zero bdd then None
  else
    let bdd =
      let candidates =
        [
          Bdd.conj bdd (Bvec.eq_const protocol 6);
          Bdd.conj bdd (Bvec.eq_const protocol 17);
          Bdd.conj bdd (Bvec.eq_const protocol 1);
        ]
      in
      match List.find_opt Bdd.is_sat candidates with
      | Some refined -> refined
      | None -> bdd
    in
    let a = Bdd.any_sat bdd in
    let field bv = Bvec.decode bv a in
    let protocol_v = Config.Packet.protocol_of_number (field protocol) in
    Some
      {
        Config.Packet.src = Netaddr.Ipv4.of_int (field src);
        dst = Netaddr.Ipv4.of_int (field dst);
        protocol = protocol_v;
        src_port = field src_port;
        dst_port = field dst_port;
        established =
          (match List.assoc_opt established_var a with
          | Some b -> b
          | None -> false);
      }

(** A packet matched by both rules, if any — the overlap witness. *)
let overlap_witness r1 r2 = to_packet (Bdd.conj (of_rule r1) (of_rule r2))
