lib/symbolic/packet_space.ml: Bdd Bvec Config List Netaddr Symbdd
