(** Rule-overlap analysis for ACLs (the paper's Section 3 Batfish
    extension).

    Two rules {e overlap} when some packet matches both; the overlap is
    {e conflicting} when their actions differ, and {e trivial} when one
    rule's match set is a subset of the other's (e.g. [permit tcp host
    1.1.1.1 host 2.2.2.2] against [deny ip any any]). *)

type pair = {
  rule_a : Config.Acl.rule;
  rule_b : Config.Acl.rule;
  conflicting : bool;
  subset : bool; (* one match set contained in the other *)
}

type stats = {
  name : string;
  rules : int;
  overlap_pairs : int;
  conflict_pairs : int;
  nontrivial_conflicts : int; (* conflicting and not subset *)
}

val pairs : Config.Acl.t -> pair list
(** Every overlapping rule pair, via BDD intersection. *)

val analyze : Config.Acl.t -> stats

val witness : pair -> Config.Packet.t option
(** A packet matched by both rules of the pair. *)
