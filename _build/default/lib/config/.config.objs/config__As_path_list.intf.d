lib/config/as_path_list.mli: Action Format Sre
