lib/config/semantics.mli: Acl Action Bgp Database Format Packet Route_map
