(** Corpus-level aggregation of overlap statistics, producing the
    quantities reported in the paper's Section 3. *)

type acl_summary = {
  total : int;
  with_overlaps : int; (* >= 1 overlapping pair *)
  heavy_overlaps : int; (* > threshold overlapping pairs *)
  with_conflicts : int;
  heavy_conflicts : int;
  with_nontrivial : int;
  heavy_nontrivial : int;
  max_overlaps : int; (* largest per-ACL overlap count *)
}

val default_threshold : int
(** 20, the paper's reporting threshold. *)

val summarize_acls :
  ?threshold:int -> ?progress:(int -> unit) -> Config.Acl.t list -> acl_summary
(** BDD caches are cleared periodically to bound memory on very large
    corpora. *)

type route_map_summary = {
  rm_total : int;
  rm_with_overlaps : int;
  rm_heavy_overlaps : int;
  rm_max_overlaps : int;
  rm_conflicting_pairs_total : int;
}

val summarize_route_maps :
  ?threshold:int ->
  Config.Database.t ->
  Config.Route_map.t list ->
  route_map_summary

val pp_acl_summary : Format.formatter -> acl_summary -> unit
val pp_route_map_summary : Format.formatter -> route_map_summary -> unit
