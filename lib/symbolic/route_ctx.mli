(** Symbolic BGP route space.

    Variable layout: prefix bits 0-31, prefix length 32-37, local-pref
    38-69, metric 70-101, tag 102-133, then one atom variable per
    community in the finite community universe, then one per as-path
    access-list in scope.

    {b Community abstraction.} Expanded community lists match regexes
    against a route's community set, which is unbounded. The modelled
    routes carry communities from a finite universe computed from
    everything in scope: concrete communities in standard lists, set
    clauses and specs, plus a witness of every expanded regex, of every
    pairwise regex difference, and one community matching no regex.
    Every subset of the universe is a realizable community set, so all
    extracted examples are sound, and the difference witnesses make the
    analysis complete for behavioural differences expressible by the
    regexes in scope.

    {b AS-path abstraction.} Each as-path access-list in scope becomes a
    boolean atom "this list permits the route's path". Atom-valuation
    feasibility is decided lazily with the symbolic regex engine;
    infeasible valuations are blocked from the space and feasible ones
    memoized with a concrete witness path.

    BDDs built against one context must not be mixed with another's. *)

open Symbdd

val pfx_ip : Bvec.t
val pfx_len : Bvec.t
val local_pref : Bvec.t
val metric : Bvec.t
val tag : Bvec.t

val atom_base : int
(** First atom variable index; community atom [i] is variable
    [atom_base + i]. *)

type t = {
  comm_universe : Bgp.Community.t array; (* sorted *)
  as_path_lists : Config.As_path_list.t array;
  accept_langs : Sre.As_path_regex.R.re array; (* paths each list permits *)
  mutable blocked : Bdd.t; (* negated infeasible as-path atom cubes *)
  combo_table : (bool list, int list option) Hashtbl.t;
}

val create :
  ?extra_communities:Bgp.Community.t list ->
  ?extra_comm_regexes:Sre.Community_regex.t list ->
  ?extra_as_path_lists:Config.As_path_list.t list ->
  (Config.Database.t * Config.Route_map.t list) list ->
  t
(** Build a context whose universe covers everything the given
    route-maps reference in their respective databases, plus the extras
    (typically a specification's regexes). *)

val fork : t -> t
(** A private copy sharing the immutable universe but owning the
    mutable feasibility state (blocked cubes, witness memo), so a
    worker domain can use a context compiled into a shared frozen BDD
    base without racing other workers on its caches. *)

val comm_var : t -> Bgp.Community.t -> int option
(** The atom variable of a universe community. *)

val as_path_var : t -> Config.As_path_list.t -> int option
val accept_language : Config.As_path_list.t -> Sre.As_path_regex.R.re

val valid : t -> Bdd.t
(** Routes representable in this context (prefix length at most 32). *)

(** {2 Match-condition compilation} *)

val of_prefix_range : Netaddr.Prefix_range.t -> Bdd.t
val of_prefix_list : Config.Prefix_list.t -> Bdd.t

val of_comm_regex : t -> Sre.Community_regex.t -> Bdd.t
(** "The route carries at least one community in the regex's language",
    relative to the universe. *)

val of_community_list : t -> Config.Community_list.t -> Bdd.t

val of_as_path_list : t -> Config.As_path_list.t -> Bdd.t
(** @raise Invalid_argument if the list was not in scope at creation. *)

val of_match_clause : t -> Config.Database.t -> Config.Route_map.match_clause -> Bdd.t
val of_stanza : t -> Config.Database.t -> Config.Route_map.stanza -> Bdd.t

(** {2 Symbolic execution} *)

type cell = {
  guard : Bdd.t;
  action : Config.Action.t;
  sets : Config.Route_map.set_clause list;
  stanza_seq : int option; (* [None] for the implicit trailing deny *)
}

val exec : t -> Config.Database.t -> Config.Route_map.t -> cell list
(** Ordered first-match partition of the route space; guards are
    pairwise disjoint and cover everything, the last cell being the
    implicit deny. *)

val exec_prefixes :
  t -> Config.Database.t -> Config.Route_map.t -> Bdd.t array
(** Prefix execution of a map with [n] stanzas: an array of [n + 1]
    reachability sets whose [i]th element is the routes matching none
    of stanzas [0..i-1] (index 0 is the full space, index [n] the
    implicit-deny guard). Computed in one traversal, so every insertion
    position's fall-through set comes from a single compilation. *)

val accepted : t -> Config.Database.t -> Config.Route_map.t -> Bdd.t
(** Routes the map accepts (any permit stanza). *)

(** {2 Models} *)

val to_route : t -> Bdd.t -> Bgp.Route.t option
(** Extract a concrete route from a region, or [None] if the region is
    empty after removing infeasible as-path valuations. Unconstrained
    attributes are biased toward BGP defaults (local-pref 100, metric
    and tag 0) so examples read like real advertisements. *)

val is_sat : t -> Bdd.t -> bool
(** Does a real route live in the region? *)

val route_env : t -> Bgp.Route.t -> int -> bool
(** The BDD environment describing a concrete route, for evaluating
    region membership with {!Symbdd.Bdd.eval}. Sound for routes whose
    communities all lie in the universe. *)

val representable : t -> Bgp.Route.t -> bool
(** All the route's communities lie in the context universe. *)
