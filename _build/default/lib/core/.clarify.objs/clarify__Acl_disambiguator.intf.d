lib/core/acl_disambiguator.mli: Config Format
