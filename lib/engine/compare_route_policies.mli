(** Behavioural diff of two route-maps — the analogue of Batfish's
    [compareRoutePolicies].

    The maps may live in different databases (e.g. two candidate
    insertions of a synthesized stanza, each carrying freshly named
    ancillary lists). Differences are reported as concrete input routes
    together with both outcomes; community-transform differences are
    exposed by targeted sampling of separating community sets. *)

type difference = {
  route : Bgp.Route.t;
  result_a : Config.Semantics.route_result;
  result_b : Config.Semantics.route_result;
  stanza_a : int option; (* seq of the handling stanza; None = implicit *)
  stanza_b : int option;
}

val compare :
  ?limit:int ->
  db_a:Config.Database.t ->
  db_b:Config.Database.t ->
  Config.Route_map.t ->
  Config.Route_map.t ->
  difference list
(** All behavioural differences, one example per differing pair of
    execution cells, capped at [limit]. *)

val first_difference :
  db_a:Config.Database.t ->
  db_b:Config.Database.t ->
  Config.Route_map.t ->
  Config.Route_map.t ->
  difference option

val equal_behavior :
  db_a:Config.Database.t ->
  db_b:Config.Database.t ->
  Config.Route_map.t ->
  Config.Route_map.t ->
  bool

val adjacent_insertions :
  ?naive:bool ->
  ?pool:Parallel.Pool.t ->
  db:Config.Database.t ->
  target:Config.Route_map.t ->
  Config.Route_map.stanza ->
  (int * difference) list
(** Every insertion position [i] (0-based, ascending) at which inserting
    the stanza at [i] behaves differently from inserting it at [i + 1],
    with one witness route per position — the full boundary sweep the
    disambiguators binary-search over.

    By default the sweep is incremental: the target map is symbolically
    executed once and position [i]'s candidate region is
    [cell_i.guard ∧ match(stanza)], so the whole sweep costs one
    compilation instead of the naive [n] two-map comparisons. [~naive]
    forces either strategy explicitly; when omitted,
    {!Boundary_mode.naive_requested} decides (the
    [CLARIFY_NAIVE_BOUNDARIES] escape hatch). Both strategies return
    identical results — the property suite enforces byte-equality.

    [~pool] splits the sweep into one contiguous chunk of positions per
    worker domain; each chunk compiles its own context (BDDs never
    cross domains), and results are re-assembled in position order. *)

type batch_sweep = {
  per_candidate : (int * difference) list array;
      (** candidate [k]'s boundary sweep against the original target,
          exactly what {!adjacent_insertions} would return for it *)
  overlaps : (int * int) list;
      (** candidate pairs [i < j] whose match regions intersect *)
  conflicts : (int * int * difference) list;
      (** overlapping pairs with genuinely different behaviour on some
          shared route, with a differential witness *)
}

val batch_insertions :
  ?pool:Parallel.Pool.t ->
  db:Config.Database.t ->
  target:Config.Route_map.t ->
  Config.Route_map.stanza list ->
  batch_sweep
(** Multi-stanza sweep for batch synthesis: boundary sweeps for every
    candidate plus the pairwise inter-intent overlap/conflict graph,
    all against one compiled first-match partition of [target] (one
    symbolic context serially; one per chunk under [~pool]). The
    symbolic scope always includes every candidate, so witnesses are
    independent of how the work is sharded. Increments
    {!Metrics.batch_conflict_pairs} by the number of conflicts. *)

val pp_difference : Format.formatter -> difference -> unit
(** Rendered in the paper's OPTION 1 / OPTION 2 style. *)
