test/test_llm.ml: Acl Action Alcotest Bgp Config Database Engine Format Hashtbl Json List Llm Netaddr Packet Parser QCheck QCheck_alcotest Result Route_map
