lib/core/disambiguator.mli: Bgp Config Format
