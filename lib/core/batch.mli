(** Conflict-aware batch intent synthesis (DESIGN.md §12).

    [run] takes N natural-language intents at once and produces exactly
    the configuration N sequential {!Pipeline} runs would — same final
    config, same questions — while compiling each target policy's
    first-match partition once (via
    {!Engine.Compare_route_policies.batch_insertions} /
    {!Engine.Compare_acls.batch_insertions}) and deduplicating repeated
    questions across intents with a shared
    {!Disambig_common.Answer_cache}. Genuine inter-intent conflicts are
    reported as edges of the pairwise conflict graph, each carrying a
    differential witness, and are resolved through the ordinary
    disambiguation questions of the later intent. *)

type item =
  | Route_map_update of { target : string; prompt : string }
  | Acl_update of { target : string; prompt : string }

type question =
  | Route_map_q of Disambiguator.question
  | Acl_q of Acl_disambiguator.question

type oracle = intent:int -> target:string -> question -> Disambig_common.answer
(** The batch user: answers one placement question for intent [intent]
    against policy [target]. *)

type witness =
  | Route_witness of Engine.Compare_route_policies.difference
  | Acl_witness of Engine.Compare_acls.difference
  | Prefix_witness of Netaddr.Prefix.t

type conflict = {
  intent_a : int; (* input indices, [intent_a < intent_b] *)
  intent_b : int;
  target : string;
  witness : witness;
}

type item_result =
  | Route_map_result of Pipeline.route_map_report
  | Acl_result of Pipeline.acl_report

type report = {
  db : Config.Database.t; (* final configuration, all intents applied *)
  items : item_result list; (* in input order *)
  conflicts : conflict list; (* genuine inter-intent conflict edges *)
  overlap_pairs : int; (* intent pairs whose match regions intersect *)
  questions_saved : int; (* answer-cache hits *)
}

type error = { intent : int; reason : Pipeline.error }

val error_to_string : error -> string
val default_max_attempts : int

val run :
  ?max_attempts:int ->
  ?rm_mode:Disambiguator.mode ->
  ?acl_mode:Acl_disambiguator.mode ->
  ?pool:Parallel.Pool.t ->
  llm:Llm.Mock_llm.t ->
  oracle:oracle ->
  db:Config.Database.t ->
  item list ->
  (report, error) result
(** Run a whole batch end to end: synthesize and verify every intent
    (same LLM call order as N sequential runs), sweep each target
    policy once for all boundary sets plus the inter-intent
    overlap/conflict graph, then place stanzas in input order —
    match-disjoint intents reuse translated precomputed boundaries
    (zero extra compilations), overlapping intents disambiguate live
    against the evolving target. [?pool] shards the batch sweep and any
    live boundary sweeps across worker domains; results are identical
    serial or pooled. Increments {!Engine.Metrics.batch_intents},
    {!Engine.Metrics.batch_conflict_pairs} and
    {!Engine.Metrics.batch_questions_saved}, and observes
    {!Engine.Metrics.batch_ns}. *)

(** {2 Prefix-list batches}

    Prefix-list entries are not LLM-synthesized; their batch is the
    sequential disambiguation loop plus the shared answer cache and the
    pairwise conflict graph over entry ranges. *)

type prefix_item = { target : string; entry : Config.Prefix_list.entry }

type prefix_report = {
  db : Config.Database.t;
  outcomes : Prefix_list_disambiguator.outcome list; (* in input order *)
  conflicts : conflict list;
  questions_saved : int;
}

val insert_prefix_list_entries :
  ?mode:Prefix_list_disambiguator.mode ->
  oracle:
    (intent:int ->
    target:string ->
    Prefix_list_disambiguator.question ->
    Disambig_common.answer) ->
  db:Config.Database.t ->
  prefix_item list ->
  (prefix_report, error) result
