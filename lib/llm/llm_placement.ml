(** A baseline for the paper's closing question: could the LLM itself
    play the role of the disambiguator?

    This module guesses an insertion position from the kind of surface
    heuristics a language model applies to configuration text — without
    symbolic reasoning and, crucially, without asking the user anything.
    The evaluation harness measures how often the guess is behaviourally
    what the user wanted; the symbolic disambiguator is correct by
    construction, which is the paper's argument for symbolic tools at
    this stage of the pipeline. *)

(* Is the stanza an unconditional catch-all? *)
let is_catch_all (s : Config.Route_map.stanza) = s.Config.Route_map.matches = []

(* Call accounting: the baseline counts as one LLM round trip whose
   prompt is the rendered target plus the candidate stanza and whose
   answer is a single position token. *)
let calls_counter =
  Obs.Counter.make "llm.calls.placement" ~help:"placement-guess calls"

let account ~target ~stanza =
  if Obs.enabled () then begin
    Obs.Counter.incr calls_counter;
    let prompt =
      Format.asprintf "%a@.%a" Config.Route_map.pp target
        (fun fmt s ->
          Config.Route_map.pp_stanza fmt target.Config.Route_map.name s)
        stanza
    in
    Tokens.account ~endpoint:"placement"
      ~prompt_tokens:(Tokens.estimate prompt) ~completion_tokens:1
  end

(** Guess where to insert [stanza] in [target]. Heuristics, in order:
    1. a deny stanza goes above a trailing catch-all permit, if any —
       "specific denies belong before the default";
    2. otherwise a deny stanza goes to the top — "filters first";
    3. otherwise (permit) it goes to the bottom — "additions last". *)
let guess ~(target : Config.Route_map.t) ~(stanza : Config.Route_map.stanza) =
  account ~target ~stanza;
  let n = List.length target.Config.Route_map.stanzas in
  match stanza.Config.Route_map.action with
  | Config.Action.Deny -> (
      match List.rev target.Config.Route_map.stanzas with
      | last :: _
        when is_catch_all last
             && Config.Action.equal last.Config.Route_map.action
                  Config.Action.Permit ->
          n - 1
      | _ -> 0)
  | Config.Action.Permit -> n

(** Apply the guess. *)
let place ~target ~stanza =
  Config.Route_map.insert_at target (guess ~target ~stanza) stanza
