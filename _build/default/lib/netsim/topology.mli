(** Network topologies: eBGP routers, sessions, originated prefixes and
    per-neighbor import/export route-map chains. *)

type neighbor = {
  peer : string; (* remote router name *)
  import : string list; (* route-map chain applied to received routes *)
  export : string list; (* route-map chain applied to advertised routes *)
}

type router = {
  name : string;
  asn : int;
  router_ip : Netaddr.Ipv4.t; (* advertised as next-hop *)
  originated : Netaddr.Prefix.t list;
  neighbors : neighbor list;
  config : Config.Database.t; (* this router's lists and route-maps *)
}

type t = { routers : router list }

exception Invalid_topology of string

val router :
  ?originated:Netaddr.Prefix.t list ->
  ?neighbors:neighbor list ->
  ?config:Config.Database.t ->
  asn:int ->
  router_ip:Netaddr.Ipv4.t ->
  string ->
  router

val neighbor : ?import:string list -> ?export:string list -> string -> neighbor

val make : router list -> t
(** Validates the topology. @raise Invalid_topology on duplicate router
    names, unknown neighbors, unidirectional sessions, or chains
    referencing undefined route-maps. *)

val find : t -> string -> router
(** @raise Invalid_topology when absent. *)

val router_names : t -> string list
val with_config : t -> string -> Config.Database.t -> t
val with_router : t -> router -> t
val pp : Format.formatter -> t -> unit
