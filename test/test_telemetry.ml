(* Tests for lib/telemetry: the flight-recorder event format and
   recorder lifecycle, and the bench-snapshot schema with its
   regression-gate diff. *)

module T = Telemetry
module E = Telemetry.Event
module B = Telemetry.Bench

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Events                                                             *)
(* ------------------------------------------------------------------ *)

let sample_event =
  {
    E.seq = 3;
    kind = "llm_synthesize";
    span = "pipeline.route_map_update.synthesize";
    ts_ns = 12_500.;
    ctx = [ ("router", "R1") ];
    fields =
      [
        ("prompt", Json.String "Add a stanza...");
        ("ok", Json.Bool true);
        ("text", Json.String "route-map X permit 10\n");
        ("fault", Json.Null);
      ];
  }

let test_event_roundtrip () =
  match E.of_json (Json.parse_exn (Json.to_string (E.to_json sample_event))) with
  | Error m -> Alcotest.failf "event does not round-trip: %s" m
  | Ok e ->
      check_int "seq" sample_event.E.seq e.E.seq;
      Alcotest.(check string) "kind" sample_event.E.kind e.E.kind;
      Alcotest.(check string) "span" sample_event.E.span e.E.span;
      check_bool "fields preserved" true (e.E.fields = sample_event.E.fields)

let test_event_matches () =
  check_bool "matches itself" true (E.matches sample_event sample_event);
  (* seq, span and fault are informational: a replay cannot reproduce
     them, so they must not count as divergence. *)
  let tweaked =
    {
      sample_event with
      E.seq = 99;
      span = "";
      fields =
        List.map
          (fun (n, v) ->
            if n = "fault" then (n, Json.String "flip-action") else (n, v))
          sample_event.E.fields;
    }
  in
  check_bool "seq/span/fault ignored" true (E.matches sample_event tweaked);
  let other_kind = { sample_event with E.kind = "verify" } in
  check_bool "kind divergence" false (E.matches sample_event other_kind);
  let other_text =
    {
      sample_event with
      E.fields =
        List.map
          (fun (n, v) ->
            if n = "text" then (n, Json.String "tampered") else (n, v))
          sample_event.E.fields;
    }
  in
  check_bool "payload divergence" false (E.matches sample_event other_text)

let test_recorder_lifecycle () =
  T.stop ();
  let forced = ref false in
  T.emit ~kind:"ghost" (fun () ->
      forced := true;
      []);
  check_bool "payload not forced while not recording" false !forced;
  let events = T.record_to_memory () in
  check_bool "recording" true (T.recording ());
  T.emit ~kind:"one" (fun () -> [ ("n", Json.Int 1) ]);
  Obs.enable ();
  Obs.reset ();
  Obs.with_span "spanned" (fun () ->
      T.emit ~kind:"two" (fun () -> [ ("n", Json.Int 2) ]));
  Obs.disable ();
  T.stop ();
  T.emit ~kind:"three" (fun () -> []);
  match events () with
  | [ a; b ] ->
      check_int "seq 0" 0 a.E.seq;
      check_int "seq 1" 1 b.E.seq;
      Alcotest.(check string) "kind" "one" a.E.kind;
      Alcotest.(check string) "span captured" "spanned" b.E.span
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

let test_with_memory_recorder_restores () =
  T.stop ();
  let outer = T.record_to_memory () in
  let (), inner =
    T.with_memory_recorder (fun () ->
        T.emit ~kind:"inner" (fun () -> []))
  in
  T.emit ~kind:"outer" (fun () -> []);
  T.stop ();
  check_int "inner events isolated" 1 (List.length inner);
  match outer () with
  | [ e ] -> Alcotest.(check string) "outer recorder restored" "outer" e.E.kind
  | evs -> Alcotest.failf "expected 1 outer event, got %d" (List.length evs)

let test_parse_events () =
  let src =
    String.concat "\n"
      [
        {|{"seq":0,"kind":"a","span":"","data":{}}|};
        "";
        {|{"seq":1,"kind":"b","span":"x","data":{"k":1}}|};
        "";
      ]
  in
  (match T.parse_events src with
  | Error m -> Alcotest.failf "parse_events: %s" m
  | Ok [ a; b ] ->
      Alcotest.(check string) "first kind" "a" a.E.kind;
      Alcotest.(check (option int)) "field" (Some 1) (E.int_field "k" b)
  | Ok evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs));
  match T.parse_events "{\"seq\":0}" with
  | Error m ->
      check_bool "error mentions the line" true
        (String.length m >= 6 && String.sub m 0 6 = "line 1")
  | Ok _ -> Alcotest.fail "malformed event accepted"

(* ------------------------------------------------------------------ *)
(* Bench snapshots and the regression gate                            *)
(* ------------------------------------------------------------------ *)

(* A bench file built from a real registry, for schema round-trips. *)
let sample_bench () =
  Obs.enable ();
  Obs.reset ();
  Obs.Counter.incr ~by:11 (Obs.Counter.make "test.bench.llm_calls");
  let h = Obs.Histogram.make "test.bench.verify" in
  List.iter (Obs.Histogram.observe_ns h) [ 1e6; 3e6 ];
  let snapshot = Obs.Snapshot.take () in
  Obs.disable ();
  {
    B.domains = 1;
    experiments = [ ("E1", { B.snapshot; events = 13 }) ];
    benchmarks = [ ("config-parse/isp_out", 36_340.0) ];
  }

let test_bench_roundtrip () =
  let t = sample_bench () in
  match B.of_string (Json.to_string (B.to_json t)) with
  | Error m -> Alcotest.failf "bench file does not round-trip: %s" m
  | Ok t' ->
      check_int "experiments" 1 (List.length t'.B.experiments);
      let e = List.assoc "E1" t'.B.experiments in
      check_int "events" 13 e.B.events;
      check_bool "snapshot identical" true
        (Obs.Snapshot.equal
           (List.assoc "E1" t.B.experiments).B.snapshot e.B.snapshot);
      check_bool "benchmarks identical" true
        (t.B.benchmarks = t'.B.benchmarks)

let test_bench_schema_guard () =
  match B.of_string {|{"schema":"clarify-bench/999","experiments":{},"benchmarks":{}}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown schema accepted"

let test_diff_self_is_zero () =
  let t = sample_bench () in
  let deltas = B.diff t t in
  check_bool "no regression" false (B.regressed deltas);
  check_bool "every delta is zero" true
    (List.for_all (fun d -> d.B.change = 0.) deltas);
  check_bool "some metrics compared" true (List.length deltas >= 3)

let with_hist_scaled factor t =
  {
    t with
    B.experiments =
      List.map
        (fun (name, e) ->
          ( name,
            {
              e with
              B.snapshot =
                {
                  e.B.snapshot with
                  Obs.Snapshot.histograms =
                    List.map
                      (fun (n, h) ->
                        ( n,
                          {
                            h with
                            Obs.Snapshot.sum_ns = h.Obs.Snapshot.sum_ns *. factor;
                          } ))
                      e.B.snapshot.Obs.Snapshot.histograms;
                };
            } ))
        t.B.experiments;
  }

let test_diff_latency_regression () =
  let t = sample_bench () in
  let doubled = with_hist_scaled 2.0 t in
  let deltas = B.diff t doubled in
  check_bool "2x latency regresses" true (B.regressed deltas);
  let d =
    List.find (fun d -> d.B.regressed) deltas
  in
  Alcotest.(check string)
    "the regressed metric is the histogram mean"
    "exp.E1.hist.test.bench.verify.mean_ns" d.B.metric;
  Alcotest.(check (float 1e-9)) "change is +100%" 1.0 d.B.change;
  (* The gate is directional: the same diff reversed is an improvement. *)
  check_bool "2x speedup is not a regression" false
    (B.regressed (B.diff doubled t))

let test_diff_threshold () =
  let t = sample_bench () in
  let a_bit_slower = with_hist_scaled 1.1 t in
  check_bool "+10% passes the default 20% gate" false
    (B.regressed (B.diff t a_bit_slower));
  check_bool "+10% trips a 5% gate" true
    (B.regressed (B.diff ~threshold:0.05 t a_bit_slower))

let test_diff_counter_regression () =
  let t = sample_bench () in
  let more_calls =
    {
      t with
      B.experiments =
        List.map
          (fun (name, e) ->
            ( name,
              {
                e with
                B.snapshot =
                  {
                    e.B.snapshot with
                    Obs.Snapshot.counters =
                      List.map
                        (fun (n, v) -> (n, v * 2))
                        e.B.snapshot.Obs.Snapshot.counters;
                  };
              } ))
          t.B.experiments;
    }
  in
  check_bool "doubled counter regresses" true
    (B.regressed (B.diff t more_calls))

let test_diff_added_removed () =
  let t = sample_bench () in
  let renamed =
    { t with B.benchmarks = [ ("config-parse/renamed", 36_340.0) ] }
  in
  let deltas = B.diff t renamed in
  check_bool "added/removed metrics never regress" false (B.regressed deltas);
  check_bool "removed metric reported" true
    (List.exists
       (fun d -> d.B.new_value = None && d.B.metric = "bench.config-parse/isp_out.ns_per_run")
       deltas);
  check_bool "added metric reported" true
    (List.exists
       (fun d -> d.B.old_value = None && d.B.metric = "bench.config-parse/renamed.ns_per_run")
       deltas)

let () =
  Alcotest.run "telemetry"
    [
      ( "events",
        [
          Alcotest.test_case "round-trip" `Quick test_event_roundtrip;
          Alcotest.test_case "replay equivalence" `Quick test_event_matches;
          Alcotest.test_case "recorder lifecycle" `Quick test_recorder_lifecycle;
          Alcotest.test_case "memory recorder restores" `Quick
            test_with_memory_recorder_restores;
          Alcotest.test_case "parse jsonl" `Quick test_parse_events;
        ] );
      ( "bench gate",
        [
          Alcotest.test_case "file round-trip" `Quick test_bench_roundtrip;
          Alcotest.test_case "schema guard" `Quick test_bench_schema_guard;
          Alcotest.test_case "self diff is zero" `Quick test_diff_self_is_zero;
          Alcotest.test_case "2x latency regresses" `Quick
            test_diff_latency_regression;
          Alcotest.test_case "threshold" `Quick test_diff_threshold;
          Alcotest.test_case "counter regression" `Quick
            test_diff_counter_regression;
          Alcotest.test_case "added/removed" `Quick test_diff_added_removed;
        ] );
    ]
