lib/llm/nl_parser.ml: Bgp Config Intent List Netaddr Option Result Seq String
