(** Structured user intents for single-stanza updates.

    An intent is what the user means; {!to_prompt} renders it as the
    English they would type, and {!Nl_parser} recovers the structure.
    The simulated LLM is the composition parse ∘ render, plus templates
    and fault injection. *)

type route_map_intent = {
  action : Config.Action.t;
  prefixes : Netaddr.Prefix_range.t list; (* routes containing one *)
  communities : Bgp.Community.t list; (* tagged with all of these *)
  as_path_origin : int option; (* originating from this AS *)
  as_path_contains : int option; (* passing through this AS *)
  local_pref : int option;
  metric_match : int option;
  tag_match : int option;
  sets : Config.Route_map.set_clause list;
}

type acl_intent = {
  acl_action : Config.Action.t;
  protocol : Config.Packet.protocol;
  src : Config.Acl.addr_spec;
  src_port : Config.Acl.port_spec;
  dst : Config.Acl.addr_spec;
  dst_port : Config.Acl.port_spec;
  established : bool;
}

type t = Route_map of route_map_intent | Acl of acl_intent

val route_map_intent :
  ?prefixes:Netaddr.Prefix_range.t list ->
  ?communities:Bgp.Community.t list ->
  ?as_path_origin:int ->
  ?as_path_contains:int ->
  ?local_pref:int ->
  ?metric_match:int ->
  ?tag_match:int ->
  ?sets:Config.Route_map.set_clause list ->
  Config.Action.t ->
  t

val acl_intent :
  ?protocol:Config.Packet.protocol ->
  ?src:Config.Acl.addr_spec ->
  ?src_port:Config.Acl.port_spec ->
  ?dst:Config.Acl.addr_spec ->
  ?dst_port:Config.Acl.port_spec ->
  ?established:bool ->
  Config.Action.t ->
  t

val to_prompt : t -> string
(** Render the intent as a natural-English prompt in the paper's style.
    [Nl_parser.parse] inverts this rendering (property-tested). *)

val spec_of_route_map : route_map_intent -> Engine.Spec.t
(** The behavioural spec corresponding to a route-map intent — the
    paper's second LLM call. A single community becomes the paper's
    regex form, several use the spec's all-of field. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
