(** Route-policy search and stanza verification — the analogue of
    Batfish's [searchRoutePolicies]. *)

open Symbdd
module Ctx = Symbolic.Route_ctx

(* Treat a spec's as-path regex as an anonymous single-entry list so it
   can become a context atom. *)
let spec_as_path_list regex =
  Config.As_path_list.make "<spec>"
    [ (Config.Action.Permit, Sre.As_path_regex.source regex) ]

(** Compile a spec's match condition into the route space. *)
let spec_space ctx (spec : Spec.t) =
  Bdd.conj_list
    [
      (match spec.prefixes with
      | [] -> Bdd.one
      | ps -> Bdd.disj_list (List.map Ctx.of_prefix_range ps));
      (match spec.community with
      | None -> Bdd.one
      | Some regex -> Ctx.of_comm_regex ctx regex);
      Bdd.conj_list
        (List.map
           (fun c ->
             match Ctx.comm_var ctx c with
             | Some v -> Bdd.var v
             | None -> Bdd.zero (* outside the universe: unmatchable *))
           spec.communities_all);
      (match spec.as_path with
      | None -> Bdd.one
      | Some regex ->
          (* Treat the spec regex as an anonymous single-entry list; the
             context must have been built with it in scope. *)
          (* The context must have been built with this regex in scope. *)
          Ctx.of_as_path_list ctx (spec_as_path_list regex));
      (match spec.local_pref with
      | None -> Bdd.one
      | Some n -> Bvec.eq_const Ctx.local_pref n);
      (match spec.metric with
      | None -> Bdd.one
      | Some n -> Bvec.eq_const Ctx.metric n);
      (match spec.tag with
      | None -> Bdd.one
      | Some n -> Bvec.eq_const Ctx.tag n);
    ]

(** Context covering a route-map plus a spec's regexes. *)
let context_for db rm (spec : Spec.t) =
  Ctx.create
    ~extra_communities:spec.communities_all
    ~extra_comm_regexes:(Option.to_list spec.community)
    ~extra_as_path_lists:
      (match spec.as_path with
      | None -> []
      | Some r -> [ spec_as_path_list r ])
    [ (db, [ rm ]) ]

(** Find a route the policy treats with the given action inside a
    spec-shaped constraint (Batfish's searchRoutePolicies). *)
let search db rm ~(constraint_spec : Spec.t) ~(action : Config.Action.t) =
  Obs.Counter.incr Metrics.search_route_policies_calls;
  let ctx = context_for db rm constraint_spec in
  let space = spec_space ctx constraint_spec in
  let target =
    Bdd.disj_list
      (List.filter_map
         (fun (c : Ctx.cell) ->
           if Config.Action.equal c.action action then Some c.guard else None)
         (Ctx.exec ctx db rm))
  in
  Ctx.to_route ctx (Bdd.conj space target)

type verdict =
  | Verified
  | Wrong_action of { expected : Config.Action.t; got : Config.Action.t }
  | Match_too_broad of Bgp.Route.t (* stanza matches, spec does not *)
  | Match_too_narrow of Bgp.Route.t (* spec matches, stanza does not *)
  | Wrong_sets of { expected : Config.Transform.t; got : Config.Transform.t }
  | Undefined_references of (string list)

let pp_verdict fmt = function
  | Verified -> Format.pp_print_string fmt "verified"
  | Wrong_action { expected; got } ->
      Format.fprintf fmt "wrong action: expected %a, got %a" Config.Action.pp
        expected Config.Action.pp got
  | Match_too_broad r ->
      Format.fprintf fmt
        "@[<v>stanza matches a route outside the specification:@ %a@]"
        Bgp.Route.pp r
  | Match_too_narrow r ->
      Format.fprintf fmt
        "@[<v>stanza fails to match a route the specification covers:@ %a@]"
        Bgp.Route.pp r
  | Wrong_sets { expected; got } ->
      Format.fprintf fmt "wrong set clauses: expected %a, got %a"
        Config.Transform.pp expected Config.Transform.pp got
  | Undefined_references names ->
      Format.fprintf fmt "undefined list references: %s"
        (String.concat ", " names)

(** Verify that a single-stanza route-map implements a spec exactly:
    same match set, same action, same transform. Counterexamples are
    concrete routes. *)
let verify_stanza db (rm : Config.Route_map.t) (spec : Spec.t) =
  Obs.Counter.incr Metrics.search_route_policies_calls;
  match Config.Database.undefined_references db rm with
  | _ :: _ as undef -> Undefined_references (List.map snd undef)
  | [] -> (
      match rm.Config.Route_map.stanzas with
      | [ stanza ] -> (
          if not (Config.Action.equal stanza.action spec.action) then
            Wrong_action { expected = spec.action; got = stanza.action }
          else
            let ctx = context_for db rm spec in
            let sm = spec_space ctx spec in
            let st = Ctx.of_stanza ctx db stanza in
            match Ctx.to_route ctx (Bdd.conj st (Bdd.neg sm)) with
            | Some r -> Match_too_broad r
            | None -> (
                match Ctx.to_route ctx (Bdd.conj sm (Bdd.neg st)) with
                | Some r -> Match_too_narrow r
                | None ->
                    let expected = Config.Transform.of_sets db spec.sets in
                    let got = Config.Transform.of_sets db stanza.sets in
                    if Config.Transform.equal ~db1:db ~db2:db expected got then
                      Verified
                    else Wrong_sets { expected; got }))
      | stanzas ->
          invalid_arg
            (Printf.sprintf
               "verify_stanza: expected exactly one stanza, found %d"
               (List.length stanzas)))
