(** Synthetic ACL generation with exact overlap accounting.

    ACLs are assembled from building blocks whose pairwise interactions
    are known in closed form (verified against the analyzer by property
    tests):

    - [plain] pairwise-disjoint permit rules;
    - [crossing] pairs of partially-overlapping rules with opposite
      actions confined to pair-private address space: one {e non-trivial}
      conflicting overlap each;
    - an optional trailing [deny ip any any], overlapping every
      preceding rule and conflicting (trivially) with every permit.

    With the trailing deny: overlaps = 3·crossing + plain, conflicts =
    2·crossing + plain, non-trivial = crossing. Without it, all three
    equal [crossing]. *)

val make :
  rng:Random.State.t ->
  name:string ->
  plain:int ->
  crossing:int ->
  trailing_deny_any:bool ->
  Config.Acl.t
(** @raise Invalid_argument when [crossing > 255]. *)

val expected : plain:int -> crossing:int -> trailing_deny_any:bool -> int * int * int
(** [(overlaps, conflicts, nontrivial)] the analyzer will report. *)
