lib/netsim/simulator.mli: Bgp Format Map Netaddr Topology
