(* Property-based differential testing of the symbolic ACL engine
   against the concrete interpreter: for random ACLs and packets, the
   BDD encoding used by [Engine.Search_filters] must agree with
   [Config.Semantics.eval_acl] packet by packet, and every witness the
   symbolic search produces must check out concretely. *)

let case_count = 200

(* ------------------------------------------------------------------ *)
(* Packet <-> BDD assignment, per the Packet_space variable layout:
   src 0-31, dst 32-63, protocol 64-71, src port 72-87, dst port
   88-103, established 104 — MSB-first within each field. *)
(* ------------------------------------------------------------------ *)

let int_bit ~width value i = value land (1 lsl (width - 1 - i)) <> 0

let assignment (p : Config.Packet.t) v =
  if v < 32 then Netaddr.Ipv4.bit p.src v
  else if v < 64 then Netaddr.Ipv4.bit p.dst (v - 32)
  else if v < 72 then
    int_bit ~width:8 (Config.Packet.protocol_number p.protocol) (v - 64)
  else if v < 88 then int_bit ~width:16 p.src_port (v - 72)
  else if v < 104 then int_bit ~width:16 p.dst_port (v - 88)
  else if v = 104 then p.established
  else Alcotest.failf "unexpected BDD variable %d" v

let matches space p = Symbdd.Bdd.eval (assignment p) space

(* ------------------------------------------------------------------ *)
(* Generators                                                         *)
(* ------------------------------------------------------------------ *)

let gen_packet =
  QCheck.Gen.(
    let addr =
      map
        (fun i -> Netaddr.Ipv4.of_int (i land 0xFFFF_FFFF))
        (int_bound max_int)
    in
    let* protocol =
      frequency
        [
          (4, return Config.Packet.Tcp);
          (3, return Config.Packet.Udp);
          (2, return Config.Packet.Icmp);
          (1, return (Config.Packet.Proto 47));
        ]
    in
    let* src = addr and* dst = addr in
    let* src_port, dst_port, established =
      if Config.Packet.has_ports protocol then
        let* sp = int_bound 65535 and* dp = int_bound 65535 in
        let* est =
          if protocol = Config.Packet.Tcp then bool else return false
        in
        return (sp, dp, est)
      else return (0, 0, false)
    in
    return
      (Config.Packet.make ~protocol ~src_port ~dst_port ~established ~src ~dst
         ()))

(* Two ACL shapes: the fully random corpus generator (density-swept) and
   the closed-form overlap generator, both driven from a qcheck seed so
   shrinking reduces to replaying a smaller seed. *)
let gen_acl =
  QCheck.Gen.(
    let* seed = int_bound 1_000_000 and* shape = int_bound 2 in
    let rng = Random.State.make [| seed |] in
    match shape with
    | 0 | 1 ->
        let* rules = int_range 1 12 and* d = int_bound 10 in
        return
          (Workload.Random_corpus.acl ~rng ~name:"DIFF" ~rules
             ~overlap_density:(float_of_int d /. 10.))
    | _ ->
        let* plain = int_bound 4
        and* crossing = int_bound 3
        and* trailing = bool in
        return
          (Workload.Acl_gen.make ~rng ~name:"DIFF" ~plain ~crossing
             ~trailing_deny_any:trailing))

let gen_acl_and_packets =
  QCheck.Gen.(
    let* acl = gen_acl in
    (* Random packets rarely hit narrow rules, so also probe with one
       packet drawn from each cell of the ACL's first-match partition —
       those exercise every decision region by construction. *)
    let cell_packets =
      List.filter_map
        (fun (c : Symbolic.Packet_space.cell) ->
          Symbolic.Packet_space.to_packet c.guard)
        (Symbolic.Packet_space.exec acl)
    in
    let* random_packets = list_size (int_range 1 8) gen_packet in
    return (acl, cell_packets @ random_packets))

let arb_acl_and_packets =
  QCheck.make gen_acl_and_packets ~print:(fun (acl, packets) ->
      Format.asprintf "%a@.packets:@.%a" Config.Acl.pp acl
        (Format.pp_print_list Config.Packet.pp)
        packets)

(* ------------------------------------------------------------------ *)
(* Properties                                                         *)
(* ------------------------------------------------------------------ *)

(* The heart of the differential suite: the symbolic action space and
   the concrete interpreter agree on every probed packet. *)
let prop_action_space_agrees =
  QCheck.Test.make ~count:case_count ~name:"action_space agrees with eval_acl"
    arb_acl_and_packets (fun (acl, packets) ->
      let permit_space =
        Engine.Search_filters.action_space acl Config.Action.Permit
      in
      let deny_space =
        Engine.Search_filters.action_space acl Config.Action.Deny
      in
      List.for_all
        (fun p ->
          let concrete = Config.Semantics.eval_acl acl p in
          matches permit_space p = (concrete = Config.Action.Permit)
          && matches deny_space p = (concrete = Config.Action.Deny))
        packets)

(* Permit and deny spaces partition the full packet space. *)
let prop_spaces_partition =
  QCheck.Test.make ~count:case_count ~name:"permit/deny spaces partition"
    arb_acl_and_packets (fun (acl, _) ->
      let permit_space =
        Engine.Search_filters.action_space acl Config.Action.Permit
      in
      let deny_space =
        Engine.Search_filters.action_space acl Config.Action.Deny
      in
      Symbdd.Bdd.(
        equal (conj permit_space deny_space) zero
        && equal (disj permit_space deny_space) one))

(* Every witness [search] returns satisfies the query concretely. *)
let prop_search_witness_is_concrete =
  QCheck.Test.make ~count:case_count ~name:"search witnesses check concretely"
    arb_acl_and_packets (fun (acl, _) ->
      List.for_all
        (fun action ->
          match
            Engine.Search_filters.search acl
              (Engine.Search_filters.any_query action)
          with
          | None ->
              (* No witness: no probed packet may take that action
                 either; verify on one cell per region. *)
              List.for_all
                (fun (c : Symbolic.Packet_space.cell) ->
                  match Symbolic.Packet_space.to_packet c.guard with
                  | None -> true
                  | Some p -> Config.Semantics.eval_acl acl p <> action)
                (Symbolic.Packet_space.exec acl)
          | Some p -> Config.Semantics.eval_acl acl p = action)
        [ Config.Action.Permit; Config.Action.Deny ])

(* An ACL never differs from itself, and when [differ] produces a
   counterexample for two distinct ACLs it is a real one. *)
let prop_differ =
  QCheck.Test.make ~count:case_count ~name:"differ soundness"
    (QCheck.pair arb_acl_and_packets arb_acl_and_packets)
    (fun ((a, _), (b, _)) ->
      Engine.Search_filters.differ a a = None
      && Engine.Search_filters.differ b b = None
      &&
      match Engine.Search_filters.differ a b with
      | None ->
          (* Symbolically equivalent: the concrete interpreters must
             agree on probe packets from both partitions. *)
          List.for_all
            (fun acl ->
              List.for_all
                (fun (c : Symbolic.Packet_space.cell) ->
                  match Symbolic.Packet_space.to_packet c.guard with
                  | None -> true
                  | Some p ->
                      Config.Semantics.eval_acl a p
                      = Config.Semantics.eval_acl b p)
                (Symbolic.Packet_space.exec acl))
            [ a; b ]
      | Some p ->
          Config.Semantics.eval_acl a p <> Config.Semantics.eval_acl b p)

let () =
  Alcotest.run "differential"
    [
      ( "symbolic-vs-concrete",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_action_space_agrees;
            prop_spaces_partition;
            prop_search_witness_is_concrete;
            prop_differ;
          ] );
    ]
