(** Canonical form of a stanza's set-clause sequence.

    Set clauses apply in order and later clauses of the same kind
    override earlier ones; community clauses form a small pipeline
    (replace / add / list-delete) whose composition we normalize so that
    two stanzas can be compared for behavioural equality without
    enumerating routes. Canonical equality is sound (equal canonical
    forms behave identically); for community pipelines it is also
    complete relative to the community-list definitions in the database
    used to build them. *)

type community_op =
  | Comm_id (* leave communities unchanged *)
  | Comm_const of Bgp.Community.t list (* replace with this set *)
  | Comm_update of { delete : string list; add : Bgp.Community.t list }
      (** delete what the named lists match, then add [add] *)

type t = {
  metric : int option;
  local_pref : int option;
  communities : community_op;
  prepend : int list;
  next_hop : Netaddr.Ipv4.t option;
  tag : int option;
  weight : int option;
  origin : Bgp.Route.origin option;
}

let identity =
  {
    metric = None;
    local_pref = None;
    communities = Comm_id;
    prepend = [];
    next_hop = None;
    tag = None;
    weight = None;
    origin = None;
  }

let norm_comms cs = List.sort_uniq Bgp.Community.compare cs

(* Delete from a concrete set what a named list matches. *)
let delete_matching db name cs =
  match Database.community_list db name with
  | None -> cs
  | Some cl -> List.filter (fun c -> not (Community_list.matches cl [ c ])) cs

let apply_clause db t = function
  | Route_map.Set_metric n -> { t with metric = Some n }
  | Route_map.Set_local_pref n -> { t with local_pref = Some n }
  | Route_map.Set_community { communities; additive = false } ->
      { t with communities = Comm_const (norm_comms communities) }
  | Route_map.Set_community { communities; additive = true } -> (
      match t.communities with
      | Comm_id -> { t with communities = Comm_update { delete = []; add = norm_comms communities } }
      | Comm_const cs ->
          { t with communities = Comm_const (norm_comms (communities @ cs)) }
      | Comm_update { delete; add } ->
          {
            t with
            communities = Comm_update { delete; add = norm_comms (communities @ add) };
          })
  | Route_map.Set_comm_list_delete name -> (
      match t.communities with
      | Comm_id ->
          { t with communities = Comm_update { delete = [ name ]; add = [] } }
      | Comm_const cs ->
          { t with communities = Comm_const (delete_matching db name cs) }
      | Comm_update { delete; add } ->
          {
            t with
            communities =
              Comm_update
                {
                  delete = List.sort_uniq String.compare (name :: delete);
                  add = delete_matching db name add;
                };
          })
  | Route_map.Set_as_path_prepend asns -> { t with prepend = asns @ t.prepend }
  | Route_map.Set_next_hop ip -> { t with next_hop = Some ip }
  | Route_map.Set_tag n -> { t with tag = Some n }
  | Route_map.Set_weight n -> { t with weight = Some n }
  | Route_map.Set_origin o -> { t with origin = Some o }

let of_sets db sets = List.fold_left (apply_clause db) identity sets

(* Community-op equality must compare list *definitions*, not names:
   the same name can denote different lists in two databases. *)
let comm_op_equal db1 db2 a b =
  match (a, b) with
  | Comm_id, Comm_id -> true
  | Comm_const x, Comm_const y -> x = y
  | Comm_update u, Comm_update v ->
      u.add = v.add
      && List.length u.delete = List.length v.delete
      && List.for_all2
           (fun n1 n2 ->
             Database.community_list db1 n1 = Database.community_list db2 n2)
           u.delete v.delete
  | _ -> false

let equal ~db1 ~db2 a b =
  a.metric = b.metric && a.local_pref = b.local_pref
  && a.prepend = b.prepend && a.next_hop = b.next_hop && a.tag = b.tag
  && a.weight = b.weight && a.origin = b.origin
  && comm_op_equal db1 db2 a.communities b.communities

let pp fmt t =
  let parts =
    List.concat
      [
        (match t.metric with Some n -> [ Printf.sprintf "metric=%d" n ] | None -> []);
        (match t.local_pref with
        | Some n -> [ Printf.sprintf "local-pref=%d" n ]
        | None -> []);
        (match t.communities with
        | Comm_id -> []
        | Comm_const cs ->
            [
              "communities:="
              ^ String.concat "," (List.map Bgp.Community.to_string cs);
            ]
        | Comm_update { delete; add } ->
            [
              Printf.sprintf "communities-=%s+=%s"
                (String.concat "," delete)
                (String.concat "," (List.map Bgp.Community.to_string add));
            ]);
        (match t.prepend with
        | [] -> []
        | asns ->
            [ "prepend=" ^ String.concat "," (List.map string_of_int asns) ]);
        (match t.next_hop with
        | Some ip -> [ "next-hop=" ^ Netaddr.Ipv4.to_string ip ]
        | None -> []);
        (match t.tag with Some n -> [ Printf.sprintf "tag=%d" n ] | None -> []);
        (match t.weight with
        | Some n -> [ Printf.sprintf "weight=%d" n ]
        | None -> []);
        (match t.origin with
        | Some o -> [ "origin=" ^ Bgp.Route.origin_to_string o ]
        | None -> []);
      ]
  in
  Format.pp_print_string fmt
    (if parts = [] then "(no transform)" else String.concat " " parts)
