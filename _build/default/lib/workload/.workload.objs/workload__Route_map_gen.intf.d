lib/workload/route_map_gen.mli: Config
