examples/acl_update.ml: Clarify Config Format List Llm Netaddr
