(** Constrained-English intent parser — the language-understanding half
    of the simulated LLM.

    Accepted phrasing (case-insensitive; synonyms in parentheses):

    Route-map intents — first sentence gives match conditions, later
    sentences give set clauses:
    - "permits (allows, accepts) / denies (blocks, drops, rejects) routes"
    - "containing the prefix 100.0.0.0/16 with mask length less than or
      equal to 23" (also "greater than or equal to", "between A and B",
      "at most", "at least")
    - "tagged with the community 300:3" / "communities 1:2 and 3:4"
    - "originating from AS 32", "passing through AS 100"
    - "with local preference 300", "with MED 20" ("metric"), "with tag 7"
    - set sentences: "Their MED (metric) value should be set to 55",
      "Their local preference should be set to 200", "The communities
      65000:1 should be added", "Their communities should be replaced
      with 65000:1", "The AS path should be prepended with 65000 65000",
      "The next hop should be set to 10.0.0.1", "Their tag/weight/origin
      should be set to ...".

    ACL intents:
    - "permits tcp (udp, icmp, ip) traffic from <src> to <dst>"
    - endpoints: "anywhere"/"any"/"any destination", "host 1.2.3.4",
      "10.0.0.0/8"
    - "with source/destination port 443", "port above/below N",
      "ports A to B", "for established connections" *)

type error = Unrecognized of string

let words s =
  (* Lowercase and strip punctuation that is not meaningful inside
     tokens (periods are sentence-level and handled before this). *)
  String.lowercase_ascii s
  |> String.split_on_char ' '
  |> List.concat_map (String.split_on_char '\n')
  |> List.map (fun w ->
         let is_junk c = c = ',' || c = ';' || c = '"' || c = '\'' in
         String.to_seq w |> Seq.filter (fun c -> not (is_junk c))
         |> String.of_seq)
  |> List.filter (fun w -> w <> "")

(* Split into sentences on ". " and a trailing "."; prefixes like
   10.0.0.0/8 contain no ". " so they survive. *)
let sentences s =
  let s = String.trim s in
  let n = String.length s in
  let out = ref [] in
  let start = ref 0 in
  for i = 0 to n - 2 do
    if s.[i] = '.' && (s.[i + 1] = ' ' || s.[i + 1] = '\n') then begin
      out := String.sub s !start (i - !start) :: !out;
      start := i + 1
    end
  done;
  let last = String.sub s !start (n - !start) in
  let last =
    let l = String.trim last in
    if l <> "" && l.[String.length l - 1] = '.' then
      String.sub l 0 (String.length l - 1)
    else l
  in
  List.rev (last :: !out) |> List.filter (fun x -> String.trim x <> "")

let action_of_word = function
  | "permit" | "permits" | "allow" | "allows" | "accept" | "accepts" ->
      Some Config.Action.Permit
  | "deny" | "denies" | "block" | "blocks" | "drop" | "drops" | "reject"
  | "rejects" ->
      Some Config.Action.Deny
  | _ -> None

let find_action ws =
  match List.find_map action_of_word ws with
  | Some a -> Ok a
  | None -> Error (Unrecognized "no permit/deny verb found")

let int_word w = int_of_string_opt w

(* ------------------------------------------------------------------ *)
(* Route-map match conditions                                         *)
(* ------------------------------------------------------------------ *)

(* "less than or equal to 23" / "at most 23" / "greater than or equal
   to 24" / "at least 24" / "between 24 and 28" — returns (ge, le). *)
let rec parse_window = function
  | "less" :: "than" :: "or" :: "equal" :: "to" :: n :: _
  | "at" :: "most" :: n :: _ ->
      Option.map (fun v -> (None, Some v)) (int_word n)
  | "greater" :: "than" :: "or" :: "equal" :: "to" :: n :: _
  | "at" :: "least" :: n :: _ ->
      Option.map (fun v -> (Some v, None)) (int_word n)
  | "between" :: a :: "and" :: b :: _ -> (
      match (int_word a, int_word b) with
      | Some a, Some b -> Some (Some a, Some b)
      | _ -> None)
  | _ :: rest -> parse_window rest
  | [] -> None

(* Scan for prefixes; each may be followed by "with mask length ..." *)
let rec collect_prefixes acc = function
  | [] -> List.rev acc
  | w :: rest -> (
      match Netaddr.Prefix.of_string w with
      | None -> collect_prefixes acc rest
      | Some p ->
          let window =
            match rest with
            | "with" :: "mask" :: "length" :: tail -> parse_window tail
            | _ -> None
          in
          let range =
            match window with
            | Some (ge, le) -> (
                try Some (Netaddr.Prefix_range.make p ~ge ~le)
                with Invalid_argument _ -> None)
            | None -> Some (Netaddr.Prefix_range.exact p)
          in
          collect_prefixes
            (match range with Some r -> r :: acc | None -> acc)
            rest)

let rec collect_communities acc = function
  | [] -> List.rev acc
  | w :: rest -> (
      match Bgp.Community.of_string w with
      | Some c -> collect_communities (c :: acc) rest
      | None -> collect_communities acc rest)

let rec find_as_clause = function
  | ("originating" | "originated") :: rest -> (
      match rest with
      | "from" :: ("as" | "asn") :: n :: _ ->
          Option.map (fun a -> `Origin a) (int_word n)
      | _ -> find_as_clause rest)
  | ("passing" | "going") :: "through" :: ("as" | "asn") :: n :: _ ->
      Option.map (fun a -> `Contains a) (int_word n)
  | "transiting" :: ("as" | "asn") :: n :: _ ->
      Option.map (fun a -> `Contains a) (int_word n)
  | _ :: rest -> find_as_clause rest
  | [] -> None

let rec find_local_pref = function
  | "local" :: ("preference" | "pref") :: n :: _ -> int_word n
  | "local-preference" :: n :: _ -> int_word n
  | _ :: rest -> find_local_pref rest
  | [] -> None

let rec find_metric_match = function
  | ("med" | "metric") :: n :: _ -> int_word n
  | _ :: rest -> find_metric_match rest
  | [] -> None

let rec find_tag_match = function
  | "tag" :: n :: _ -> int_word n
  | _ :: rest -> find_tag_match rest
  | [] -> None

(* ------------------------------------------------------------------ *)
(* Route-map set sentences                                            *)
(* ------------------------------------------------------------------ *)

let rec last_int = function
  | [] -> None
  | [ w ] -> int_word w
  | _ :: rest -> last_int rest

let parse_set_sentence ws =
  let has w = List.mem w ws in
  let value_after_to () =
    let rec go = function
      | "to" :: v :: _ -> Some v
      | _ :: rest -> go rest
      | [] -> None
    in
    go ws
  in
  if (has "med" || has "metric") && (has "set" || has "be") then
    Option.map (fun n -> Config.Route_map.Set_metric n) (last_int ws)
  else if has "local" && (has "preference" || has "pref") then
    Option.map (fun n -> Config.Route_map.Set_local_pref n) (last_int ws)
  else if (has "communities" || has "community") && has "added" then
    match collect_communities [] ws with
    | [] -> None
    | communities ->
        Some (Config.Route_map.Set_community { communities; additive = true })
  else if (has "communities" || has "community") && (has "replaced" || has "set")
  then
    match collect_communities [] ws with
    | [] -> None
    | communities ->
        Some (Config.Route_map.Set_community { communities; additive = false })
  else if has "prepended" || has "prepend" then
    let asns = List.filter_map int_word ws in
    if asns = [] then None else Some (Config.Route_map.Set_as_path_prepend asns)
  else if has "next" && has "hop" then
    Option.bind (value_after_to ()) (fun v ->
        Option.map
          (fun ip -> Config.Route_map.Set_next_hop ip)
          (Netaddr.Ipv4.of_string v))
  else if has "tag" then
    Option.map (fun n -> Config.Route_map.Set_tag n) (last_int ws)
  else if has "weight" then
    Option.map (fun n -> Config.Route_map.Set_weight n) (last_int ws)
  else if has "origin" then
    Option.bind (value_after_to ()) (fun v ->
        match v with
        | "igp" -> Some (Config.Route_map.Set_origin Bgp.Route.Igp)
        | "egp" -> Some (Config.Route_map.Set_origin Bgp.Route.Egp)
        | "incomplete" -> Some (Config.Route_map.Set_origin Bgp.Route.Incomplete)
        | _ -> None)
  else None

let parse_route_map_sentences = function
  | [] -> Error (Unrecognized "empty prompt")
  | first :: rest -> (
      let ws = words first in
      match find_action ws with
      | Error e -> Error e
      | Ok action ->
          let prefixes = collect_prefixes [] ws in
          let communities = collect_communities [] ws in
          let as_path_origin, as_path_contains =
            match find_as_clause ws with
            | Some (`Origin a) -> (Some a, None)
            | Some (`Contains a) -> (None, Some a)
            | None -> (None, None)
          in
          let sets = List.filter_map (fun s -> parse_set_sentence (words s)) rest in
          if List.length sets <> List.length rest then
            Error (Unrecognized "could not understand a set-clause sentence")
          else
            Ok
              {
                Intent.action;
                prefixes;
                communities;
                as_path_origin;
                as_path_contains;
                local_pref = find_local_pref ws;
                metric_match = find_metric_match ws;
                tag_match = find_tag_match ws;
                sets;
              })

(* ------------------------------------------------------------------ *)
(* ACL intents                                                        *)
(* ------------------------------------------------------------------ *)

let parse_endpoint ws =
  (* The endpoint phrase runs until "to"/"with"/end. *)
  let rec go = function
    | [] -> (Config.Acl.Any, [])
    | ("any" | "anywhere" | "anything") :: rest -> (Config.Acl.Any, rest)
    | "destination" :: rest -> go rest
    | "host" :: ip :: rest -> (
        match Netaddr.Ipv4.of_string ip with
        | Some a -> (Config.Acl.Host a, rest)
        | None -> (Config.Acl.Any, rest))
    | w :: rest -> (
        match Netaddr.Prefix.of_string w with
        | Some p -> (Config.Acl.addr_of_prefix p, rest)
        | None -> (
            match Netaddr.Ipv4.of_string w with
            | Some a -> (Config.Acl.Host a, rest)
            | None -> go rest))
  in
  go ws

let parse_port_phrase ws =
  let rec go = function
    | "port" :: "above" :: n :: _ -> Option.map (fun v -> Config.Acl.Gt v) (int_word n)
    | "port" :: "below" :: n :: _ -> Option.map (fun v -> Config.Acl.Lt v) (int_word n)
    | "port" :: "not" :: n :: _ -> Option.map (fun v -> Config.Acl.Neq v) (int_word n)
    | "port" :: n :: _ -> Option.map (fun v -> Config.Acl.Eq v) (int_word n)
    | "ports" :: a :: "to" :: b :: _ -> (
        match (int_word a, int_word b) with
        | Some a, Some b -> Some (Config.Acl.Range (a, b))
        | _ -> None)
    | _ :: rest -> go rest
    | [] -> None
  in
  go ws

(* Split a token list at the first occurrence of a keyword. *)
let split_at kw ws =
  let rec go acc = function
    | [] -> (List.rev acc, [])
    | w :: rest when w = kw -> (List.rev acc, rest)
    | w :: rest -> go (w :: acc) rest
  in
  go [] ws

let parse_acl_prompt text =
  (* ACL intents are a single sentence; going through [sentences] strips
     the trailing period so numeric tokens parse cleanly. *)
  let text = match sentences text with s :: _ -> s | [] -> text in
  let ws = words text in
  match find_action ws with
  | Error e -> Error e
  | Ok acl_action ->
      let protocol =
        if List.mem "tcp" ws then Config.Packet.Tcp
        else if List.mem "udp" ws then Config.Packet.Udp
        else if List.mem "icmp" ws then Config.Packet.Icmp
        else Config.Packet.Ip
      in
      let _, after_from = split_at "from" ws in
      let before_to, after_to = split_at "to" after_from in
      let src, _ = parse_endpoint before_to in
      let dst, _ = parse_endpoint after_to in
      (* Port phrases: "source port N" / "destination port N"; a bare
         "port N" applies to the destination. *)
      let src_port =
        let _, after_src = split_at "source" ws in
        match parse_port_phrase after_src with
        | Some p -> p
        | None -> Config.Acl.Any_port
      in
      let dst_port =
        let _, after_dst = split_at "destination" ws in
        match parse_port_phrase after_dst with
        | Some p -> p
        | None -> (
            (* bare "on port N" anywhere after "to" *)
            match parse_port_phrase after_to with
            | Some p -> p
            | None -> Config.Acl.Any_port)
      in
      let src_port, dst_port =
        if not (Config.Packet.has_ports protocol) then
          (Config.Acl.Any_port, Config.Acl.Any_port)
        else (src_port, dst_port)
      in
      let established =
        List.mem "established" ws && protocol = Config.Packet.Tcp
      in
      Ok
        {
          Intent.acl_action;
          protocol;
          src;
          src_port;
          dst;
          dst_port;
          established;
        }

(* ------------------------------------------------------------------ *)
(* Entry points                                                       *)
(* ------------------------------------------------------------------ *)

let parse_route_map text = parse_route_map_sentences (sentences text)

let parse kind text =
  match kind with
  | `Route_map -> Result.map (fun i -> Intent.Route_map i) (parse_route_map text)
  | `Acl -> Result.map (fun i -> Intent.Acl i) (parse_acl_prompt text)

let error_message (Unrecognized m) = m
