(** Synchronous BGP propagation to fixpoint (eBGP between ASes, iBGP
    full-mesh semantics within an AS).

    Each round every router advertises, for every prefix, its current
    best route to each neighbor through its export chain (prepending its
    ASN, rewriting the next hop, resetting non-transitive attributes);
    receivers run their import chain, drop AS-path loops, and re-select
    best paths. Decision order: highest weight, highest local
    preference, shortest AS path, lowest origin (IGP < EGP <
    incomplete), lowest MED, stable sender tie-break. Locally originated
    routes always win. *)

type rib_entry = {
  route : Bgp.Route.t;
  learned_from : string option; (* None = locally originated *)
}

module Smap : Map.S with type key = string

module Pmap : Map.S with type key = Netaddr.Prefix.t

type state = {
  topology : Topology.t;
  ribs : rib_entry Pmap.t Smap.t; (* router -> prefix -> best *)
  rounds : int; (* rounds to convergence *)
  converged : bool; (* false when max_rounds was hit *)
}

val default_max_rounds : int

val run : ?max_rounds:int -> Topology.t -> state

val rib : state -> string -> (Netaddr.Prefix.t * rib_entry) list
(** @raise Topology.Invalid_topology for unknown routers. *)

val lookup : state -> router:string -> prefix:Netaddr.Prefix.t -> rib_entry option
val reaches : state -> router:string -> prefix:Netaddr.Prefix.t -> bool
val pp_rib : Format.formatter -> state -> string -> unit
