(* A persistent work-stealing scheduler over OCaml domains.

   Worker domains are spawned once per process (lazily, up to the
   largest pool ever used) and reused across batches: between batches
   they park on a condition variable and wake when the next batch is
   published, so a steady stream of small maps — the clarify-as-a-
   service shape — pays the ~tens-of-microseconds domain-spawn cost
   exactly once. [shutdown] (also registered [at_exit]) wakes and joins
   them.

   Work distribution is per *item group* (the [?grain] of {!map}), not
   per contiguous worker-sized chunk: each participant owns a bounded
   Chase–Lev deque ({!Deque}) seeded with its share of task ids, pops
   locally from the bottom, and when empty steals from the top of a
   randomly chosen victim with exponential backoff. A straggling item
   therefore delays only itself — its neighbours get stolen — which is
   what flattens the E5 fleet p99/p50 tail.

   Determinism is unchanged from the fork-join pool this replaces:
   results land in per-item slots indexed by input position and are
   reassembled in input order, and the first failure in *input* order
   wins exception priority, so a parallel map is observationally
   [List.map] whatever the steal schedule. [CLARIFY_STEAL_STRESS=1]
   exploits that: it seeds every task into slot 0's deque and makes all
   participants claim through the steal path, forcing maximal
   cross-worker contention while the goldens must stay byte-identical.

   BDD layering: tasks must return plain data, never BDD values. With
   [?bdd_base] (a frozen root manager) every participant runs under a
   long-lived private delta manager layered on that base — cached in
   domain-local storage and *reset* (rewound to the base boundary, not
   reallocated) at the start of each batch, so the arena allocation is
   also paid once. Without a base, persistent workers run under a
   long-lived scratch root manager, likewise reset per batch, which
   preserves the old fresh-domain property that one batch's nodes can
   never leak into the next. *)

type t = { domains : int }

let env_var = "CLARIFY_JOBS"

let default_domains () =
  match Sys.getenv_opt env_var with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> 1)

let create ?domains () =
  let domains =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  { domains }

let domains t = t.domains
let serial = { domains = 1 }

let steal_stress_env = "CLARIFY_STEAL_STRESS"

let steal_stress () =
  match Sys.getenv_opt steal_stress_env with
  | Some ("1" | "true" | "yes" | "on") -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Instrumentation                                                    *)
(* ------------------------------------------------------------------ *)

(* Per-domain labeled series, looked up at batch start (in the
   submitting domain) rather than cached at pool creation: Obs.reset
   drops labeled series, so handles must be re-acquired per batch.
   Counters and histograms shard their cells per writing domain, so
   handing one handle to one worker never races. *)
type worker_metrics = {
  tasks : Obs.Counter.t; (* parallel.tasks{domain=N} *)
  task_ns : Obs.Histogram.t; (* parallel.task_ns{domain=N} *)
  queue_wait_ns : Obs.Histogram.t; (* parallel.queue_wait_ns{domain=N} *)
  busy : Obs.Gauge.t; (* parallel.worker.busy{domain=N} *)
  steals : Obs.Counter.t; (* parallel.steals{domain=N} *)
  steal_failures : Obs.Counter.t; (* parallel.steal_failures{domain=N} *)
  idle_ns : Obs.Counter.t; (* parallel.worker.idle_ns{domain=N} *)
  bdd_nodes : Obs.Counter.t; (* bdd.nodes_allocated{domain=N} *)
  cache_hits : Obs.Counter.t; (* bdd.compile_cache.hits{domain=N} *)
  cache_misses : Obs.Counter.t;
}

let worker_metrics i =
  let l = [ ("domain", string_of_int i) ] in
  {
    tasks =
      Obs.Counter.labeled "parallel.tasks" l ~help:"tasks run per worker domain";
    task_ns =
      Obs.Histogram.labeled "parallel.task_ns" l
        ~help:"per-task wall time per worker domain";
    queue_wait_ns = Obs.Histogram.labeled "parallel.queue_wait_ns" l;
    busy =
      Obs.Gauge.labeled "parallel.worker.busy" l
        ~help:"1 while this worker domain is running batch tasks";
    steals =
      Obs.Counter.labeled "parallel.steals" l
        ~help:"tasks claimed from another worker's deque";
    steal_failures =
      Obs.Counter.labeled "parallel.steal_failures" l
        ~help:"steal passes that lost every CAS race to other thieves";
    idle_ns =
      Obs.Counter.labeled "parallel.worker.idle_ns" l
        ~help:"mid-batch time spent hunting for work (own deque empty)";
    bdd_nodes = Obs.Counter.labeled "bdd.nodes_allocated" l;
    cache_hits = Obs.Counter.labeled "bdd.compile_cache.hits" l;
    cache_misses = Obs.Counter.labeled "bdd.compile_cache.misses" l;
  }

let batches = lazy (Obs.Counter.make "parallel.batches")

let spawned =
  lazy
    (Obs.Counter.make "parallel.domains_spawned"
       ~help:"worker domains spawned since process start (flat = reuse works)")

let park_ns =
  lazy
    (Obs.Histogram.make "parallel.park_ns"
       ~help:"worker parked-idle intervals between batches")

let pool_domains =
  lazy
    (Obs.Gauge.make "parallel.pool.domains"
       ~help:"configured worker domains of the last batch's pool")

let active_workers =
  lazy
    (Obs.Gauge.make "parallel.pool.active_workers"
       ~help:"worker domains currently inside a batch")

(* Count BDD work into this worker's own labeled series. The hooks go
   on the worker's installed manager (its batch delta or scratch);
   worker 0 is the submitting domain, whose pre-existing hooks (the
   engine's process-wide counters) are saved and restored around the
   batch. *)
let with_worker_hooks m f =
  if not (Obs.enabled ()) then f ()
  else begin
    let saved_alloc = Symbdd.Bdd.get_alloc_hook () in
    let saved_cache = Symbdd.Bdd.get_cache_hook () in
    Symbdd.Bdd.set_alloc_hook (Some (fun () -> Obs.Counter.incr m.bdd_nodes));
    Symbdd.Bdd.set_cache_hook
      (Some
         (fun hit ->
           Obs.Counter.incr (if hit then m.cache_hits else m.cache_misses)));
    Fun.protect
      ~finally:(fun () ->
        Symbdd.Bdd.set_alloc_hook saved_alloc;
        Symbdd.Bdd.set_cache_hook saved_cache)
      f
  end

(* ------------------------------------------------------------------ *)
(* Scheduler state                                                    *)
(* ------------------------------------------------------------------ *)

type batch = {
  stress : bool;
  deques : Deque.t array; (* one per participant; slot 0 = submitter *)
  metrics : worker_metrics array; (* empty when observability was off *)
  run : worker_metrics option -> int -> unit; (* execute one task id *)
  ntasks : int;
  completed : int Atomic.t; (* tasks fully run (or failed) *)
  active : int Atomic.t; (* persistent workers inside [participate] *)
  bdd_base : Symbdd.Bdd.Manager.t option;
  submitted : float; (* Obs.now () at publish; 0. when obs off *)
}

(* [mu] guards [generation]/[shutting_down] and orders the publish /
   park handshake; [batch_lock] serializes submitters end-to-end, so at
   most one batch is ever in flight. [current] is an Atomic only so the
   metrics-serving thread's gauge collector can read it lock-free. *)
let mu = Mutex.create ()
let cv_work = Condition.create () (* new batch published, or shutdown *)
let cv_done = Condition.create () (* task count or active count dropped *)
let generation = ref 0 (* bumped per batch, under mu *)
let shutting_down = ref false
let current : batch option Atomic.t = Atomic.make None
let batch_lock = Mutex.create ()
let worker_handles : unit Domain.t list ref = ref [] (* under batch_lock *)
let workers_spawned = ref 0
let global_deques : Deque.t array ref = ref [||]

let spawned_workers () = !workers_spawned

let () =
  ignore
    (Obs.Gauge.collector "parallel.queue.depth"
       ~help:"unclaimed tasks across the in-flight batch's worker deques"
       (fun () ->
         match Atomic.get current with
         | None -> 0.
         | Some b ->
             float_of_int
               (Array.fold_left (fun acc d -> acc + Deque.size d) 0 b.deques)))

(* ------------------------------------------------------------------ *)
(* Per-domain BDD managers                                            *)
(* ------------------------------------------------------------------ *)

let in_task_key = Domain.DLS.new_key (fun () -> ref false)
let in_worker () = !(Domain.DLS.get in_task_key)

(* Long-lived delta manager per domain, keyed by its frozen base. Same
   base next batch -> Manager.reset rewinds the delta to the base
   boundary and keeps its arena; different base -> a fresh delta
   replaces the cached one. *)
let delta_key :
    (Symbdd.Bdd.Manager.t * Symbdd.Bdd.Manager.t) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let delta_for base =
  let cell = Domain.DLS.get delta_key in
  match !cell with
  | Some (b0, d) when b0 == base ->
      Symbdd.Bdd.Manager.reset d;
      d
  | _ ->
      let d = Symbdd.Bdd.Manager.create_delta base in
      cell := Some (base, d);
      d

(* Long-lived scratch root manager for base-less batches on persistent
   workers; reset per batch, so nodes from one batch never survive into
   the next — the same isolation fresh domains used to give. *)
let scratch_key : Symbdd.Bdd.Manager.t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let scratch_manager () =
  let cell = Domain.DLS.get scratch_key in
  match !cell with
  | Some m ->
      Symbdd.Bdd.Manager.reset m;
      m
  | None ->
      let m = Symbdd.Bdd.Manager.create () in
      cell := Some m;
      m

(* Serial path (pool of 1, single task, or nested submission): same
   manager layering, fresh delta per call as before. *)
let with_base_delta bdd_base f =
  match bdd_base with
  | None -> f ()
  | Some base ->
      Symbdd.Bdd.with_manager (Symbdd.Bdd.Manager.create_delta base) f

(* ------------------------------------------------------------------ *)
(* The work loop                                                      *)
(* ------------------------------------------------------------------ *)

let backoff k =
  let spins = 1 lsl min (4 + k) 12 in
  for _ = 1 to spins do
    Domain.cpu_relax ()
  done

let work_loop b slot m =
  (match m with
  | Some mm ->
      Obs.Histogram.observe_ns mm.queue_wait_ns
        ((Obs.now () -. b.submitted) *. 1e9)
  | None -> ());
  let parts = Array.length b.deques in
  let own = b.deques.(slot) in
  (* xorshift, seeded per slot: victim choice is randomized but the
     schedule never affects results, only which slot computes them. *)
  let rng = ref (((slot + 1) * 0x9E3779B1) lxor 0x2545F491) in
  let next_rand () =
    let x = !rng in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    let x = x land 0x3FFFFFFF in
    rng := (if x = 0 then 1 else x);
    !rng
  in
  let finish g =
    b.run m g;
    let done_ = 1 + Atomic.fetch_and_add b.completed 1 in
    if done_ >= b.ntasks then begin
      Mutex.lock mu;
      Condition.broadcast cv_done;
      Mutex.unlock mu
    end
  in
  (* One randomized pass over the victims. Result: a task id, or
     [Deque.empty] when every deque was observed empty (no pushes ever
     happen mid-batch, so empty is monotone and this means done), or
     [Deque.abort] when at least one CAS was lost — work may remain, so
     the caller backs off and retries. In stress mode the pass includes
     the scanner's own deque, since all claims go through here. *)
  let try_steal () =
    let start = next_rand () mod parts in
    let res = ref Deque.empty in
    let i = ref 0 in
    while !res < 0 && !i < parts do
      let v = (start + !i) mod parts in
      if v <> slot || b.stress then begin
        let r = Deque.steal b.deques.(v) in
        if r >= 0 then res := r
        else if r = Deque.abort then res := Deque.abort
      end;
      incr i
    done;
    !res
  in
  let rec steal_until k =
    if Atomic.get b.completed >= b.ntasks then Deque.empty
    else
      let r = try_steal () in
      if r >= 0 then begin
        (match m with Some mm -> Obs.Counter.incr mm.steals | None -> ());
        r
      end
      else if r = Deque.empty then Deque.empty
      else begin
        (match m with
        | Some mm -> Obs.Counter.incr mm.steal_failures
        | None -> ());
        backoff k;
        steal_until (k + 1)
      end
  in
  let rec loop () =
    let g = if b.stress then Deque.empty else Deque.pop own in
    if g >= 0 then begin
      finish g;
      loop ()
    end
    else begin
      let t0 = match m with Some _ -> Obs.now () | None -> 0. in
      let g = steal_until 0 in
      (match m with
      | Some mm ->
          Obs.Counter.incr mm.idle_ns
            ~by:(int_of_float ((Obs.now () -. t0) *. 1e9))
      | None -> ());
      if g >= 0 then begin
        finish g;
        loop ()
      end
    end
  in
  loop ()

let participate b slot =
  let flag = Domain.DLS.get in_task_key in
  flag := true;
  Fun.protect
    ~finally:(fun () -> flag := false)
    (fun () ->
      let m =
        if slot < Array.length b.metrics then Some b.metrics.(slot) else None
      in
      let body () = work_loop b slot m in
      let instrumented () =
        match m with
        | Some mm ->
            Obs.Gauge.set mm.busy 1.;
            Fun.protect
              ~finally:(fun () -> Obs.Gauge.set mm.busy 0.)
              (fun () ->
                with_worker_hooks mm (fun () ->
                    (* Root span per worker: a separate thread lane in
                       the Chrome-trace export of any recording
                       session. *)
                    Obs.with_span (Printf.sprintf "domain%d" slot) body))
        | None -> body ()
      in
      (* Install the participant's manager before the hooks, so the
         hooks land on the delta/scratch manager. Slot 0 without a base
         keeps its ambient default manager, like the old worker 0. *)
      match b.bdd_base with
      | Some base -> Symbdd.Bdd.with_manager (delta_for base) instrumented
      | None ->
          if slot > 0 then
            Symbdd.Bdd.with_manager (scratch_manager ()) instrumented
          else instrumented ())

(* ------------------------------------------------------------------ *)
(* Worker lifecycle                                                   *)
(* ------------------------------------------------------------------ *)

let worker_main slot gen0 () =
  let last_gen = ref gen0 in
  let running = ref true in
  while !running do
    Mutex.lock mu;
    let t_park = if Obs.enabled () then Obs.now () else -1. in
    while (not !shutting_down) && !generation = !last_gen do
      Condition.wait cv_work mu
    done;
    if !shutting_down then begin
      running := false;
      Mutex.unlock mu
    end
    else begin
      last_gen := !generation;
      (* Join the batch while holding [mu]: the submitter closes the
         join window (current := None) and reads [active] under the
         same lock, so it can never miss us. Slots beyond the batch's
         participant count sit this one out. *)
      let joined =
        match Atomic.get current with
        | Some b when slot < Array.length b.deques ->
            Atomic.incr b.active;
            Some b
        | _ -> None
      in
      Mutex.unlock mu;
      match joined with
      | None -> ()
      | Some b ->
          if t_park >= 0. && Obs.enabled () then
            Obs.Histogram.observe_ns (Lazy.force park_ns)
              ((Obs.now () -. t_park) *. 1e9);
          (try participate b slot
           with _ ->
             (* Task exceptions are captured per task inside [b.run];
                anything reaching here is a scheduler-infrastructure
                failure. Swallow it so [active] still drops — a hung
                submitter would be strictly worse. *)
             ());
          Atomic.decr b.active;
          Mutex.lock mu;
          Condition.broadcast cv_done;
          Mutex.unlock mu
    end
  done

(* Called with [batch_lock] held. Spawns up to [extra] persistent
   workers (slots 1..extra) that this process is missing; existing ones
   are reused, so parallel.domains_spawned stays flat across batches. *)
let ensure_workers extra =
  while !workers_spawned < extra do
    incr workers_spawned;
    let slot = !workers_spawned in
    Mutex.lock mu;
    let gen0 = !generation in
    Mutex.unlock mu;
    let d = Domain.spawn (worker_main slot gen0) in
    worker_handles := d :: !worker_handles;
    Obs.Counter.incr (Lazy.force spawned)
  done

let ensure_deques parts =
  let cur = Array.length !global_deques in
  if cur < parts then
    global_deques :=
      Array.init parts (fun i ->
          if i < cur then !global_deques.(i) else Deque.create ())

let shutdown () =
  Mutex.lock batch_lock;
  Mutex.lock mu;
  shutting_down := true;
  Condition.broadcast cv_work;
  Mutex.unlock mu;
  List.iter Domain.join !worker_handles;
  worker_handles := [];
  workers_spawned := 0;
  Mutex.lock mu;
  shutting_down := false;
  Mutex.unlock mu;
  Mutex.unlock batch_lock

let () = at_exit shutdown

(* ------------------------------------------------------------------ *)
(* map                                                                *)
(* ------------------------------------------------------------------ *)

(* Contiguous bounds: first [rem] of [chunks] shares get an extra. *)
let chunk_bounds ~n ~chunks i =
  let base = n / chunks and rem = n mod chunks in
  let start = (i * base) + min i rem in
  let len = base + if i < rem then 1 else 0 in
  (start, len)

let ranges ?(grain = 8) n =
  let grain = max 1 grain in
  let rec go start acc =
    if start >= n then List.rev acc
    else
      let len = min grain (n - start) in
      go (start + len) ((start, len) :: acc)
  in
  if n <= 0 then [] else go 0 []

let map ?(grain = 1) ?bdd_base pool ~f items =
  let n = List.length items in
  if n = 0 then []
  else begin
    let stress = steal_stress () in
    let grain = if stress then 1 else max 1 grain in
    let ntasks = (n + grain - 1) / grain in
    if pool.domains <= 1 || ntasks <= 1 || in_worker () then
      (* Serial path: pool of 1, a single task, or a nested submission
         from inside a worker task (running it inline avoids deadlock
         on the one-batch-at-a-time lock and keeps determinism
         trivially). Same manager layering as the parallel path. *)
      with_base_delta bdd_base (fun () -> List.map f items)
    else begin
      (match bdd_base with
      | Some base when not (Symbdd.Bdd.Manager.frozen base) ->
          invalid_arg "Parallel.Pool.map: ~bdd_base must be frozen"
      | _ -> ());
      Mutex.lock batch_lock;
      Fun.protect ~finally:(fun () -> Mutex.unlock batch_lock) @@ fun () ->
      let parts = min pool.domains ntasks in
      ensure_workers (parts - 1);
      ensure_deques parts;
      let enabled = Obs.enabled () in
      let input = Array.of_list items in
      let results = Array.make n None in
      let fails : (int * exn) option array = Array.make ntasks None in
      let run m g =
        let start = g * grain in
        let stop = min n (start + grain) in
        let i = ref start in
        try
          while !i < stop do
            let t0 = match m with Some _ -> Obs.now () | None -> 0. in
            let r = f input.(!i) in
            results.(!i) <- Some r;
            (match m with
            | Some mm ->
                Obs.Counter.incr mm.tasks;
                Obs.Histogram.observe_ns mm.task_ns ((Obs.now () -. t0) *. 1e9)
            | None -> ());
            incr i
          done
        with e -> fails.(g) <- Some (!i, e)
      in
      (* Seed the deques while they are quiescent (no batch in flight,
         workers parked or skipping). Ids are pushed in reverse so each
         owner pops its range in ascending input order and thieves take
         from the far (high-index) end. Stress mode piles every task
         into slot 0's deque so every claim is a contended steal. *)
      if stress then begin
        let d0 = !global_deques.(0) in
        Deque.reset d0 ~ensure:ntasks;
        for g = ntasks - 1 downto 0 do
          Deque.push d0 g
        done;
        for w = 1 to parts - 1 do
          Deque.reset !global_deques.(w) ~ensure:1
        done
      end
      else
        for w = 0 to parts - 1 do
          let start, len = chunk_bounds ~n:ntasks ~chunks:parts w in
          let d = !global_deques.(w) in
          Deque.reset d ~ensure:(max 1 len);
          for g = start + len - 1 downto start do
            Deque.push d g
          done
        done;
      let metrics = if enabled then Array.init parts worker_metrics else [||] in
      let b =
        {
          stress;
          deques = Array.sub !global_deques 0 parts;
          metrics;
          run;
          ntasks;
          completed = Atomic.make 0;
          active = Atomic.make 0;
          bdd_base;
          submitted = (if enabled then Obs.now () else 0.);
        }
      in
      if enabled then begin
        Obs.Counter.incr (Lazy.force batches);
        Obs.Gauge.set (Lazy.force pool_domains) (float_of_int pool.domains);
        Obs.Gauge.set (Lazy.force active_workers) (float_of_int parts)
      end;
      Mutex.lock mu;
      incr generation;
      Atomic.set current (Some b);
      Condition.broadcast cv_work;
      Mutex.unlock mu;
      (* The submitting domain participates as slot 0. *)
      let submitter_exn = ref None in
      (try participate b 0 with e -> submitter_exn := Some e);
      (* Wait for all tasks, close the join window, then wait for every
         joined worker to leave the batch before the deques can be
         reseeded by the next map. *)
      Mutex.lock mu;
      while Atomic.get b.completed < b.ntasks do
        Condition.wait cv_done mu
      done;
      Atomic.set current None;
      while Atomic.get b.active > 0 do
        Condition.wait cv_done mu
      done;
      Mutex.unlock mu;
      if enabled then Obs.Gauge.set (Lazy.force active_workers) 0.;
      (match !submitter_exn with Some e -> raise e | None -> ());
      let worst =
        Array.fold_left
          (fun acc cur ->
            match (acc, cur) with
            | None, c -> c
            | Some _, None -> acc
            | Some (i, _), Some (j, _) -> if j < i then cur else acc)
          None fails
      in
      match worst with
      | Some (_, e) -> raise e
      | None ->
          Array.to_list results
          |> List.map (function Some r -> r | None -> assert false)
    end
  end
