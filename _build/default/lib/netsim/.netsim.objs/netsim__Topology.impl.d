lib/netsim/topology.ml: Config Format List Netaddr Printf String
