open Netaddr

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Ipv4                                                               *)
(* ------------------------------------------------------------------ *)

let test_ipv4_roundtrip () =
  List.iter
    (fun s -> check_str s s Ipv4.(to_string (of_string_exn s)))
    [ "0.0.0.0"; "255.255.255.255"; "10.0.0.1"; "192.168.100.200"; "1.2.3.4" ]

let test_ipv4_reject () =
  List.iter
    (fun s -> check ("reject " ^ s) true (Ipv4.of_string s = None))
    [ ""; "1.2.3"; "1.2.3.4.5"; "256.0.0.1"; "1.2.3.x"; "-1.2.3.4"; "01x.2.3.4";
      "1..2.3"; "1.2.3.1000" ]

let test_ipv4_bits () =
  let a = Ipv4.of_string_exn "128.0.0.1" in
  check "top bit" true (Ipv4.bit a 0);
  check "bit 1" false (Ipv4.bit a 1);
  check "last bit" true (Ipv4.bit a 31);
  let b = Ipv4.with_bit a 0 false in
  check_str "cleared" "0.0.0.1" (Ipv4.to_string b);
  let c = Ipv4.with_bit b 8 true in
  check_str "set bit 8" "0.128.0.1" (Ipv4.to_string c)

let test_ipv4_mask () =
  check_str "/0" "0.0.0.0" Ipv4.(to_string (mask 0));
  check_str "/8" "255.0.0.0" Ipv4.(to_string (mask 8));
  check_str "/24" "255.255.255.0" Ipv4.(to_string (mask 24));
  check_str "/32" "255.255.255.255" Ipv4.(to_string (mask 32));
  check_str "wildcard /24" "0.0.0.255"
    Ipv4.(to_string (wildcard_of_mask (mask 24)))

let test_ipv4_succ_wraps () =
  check_str "succ max" "0.0.0.0" Ipv4.(to_string (succ broadcast));
  check_str "succ" "0.0.1.0" Ipv4.(to_string (succ (of_string_exn "0.0.0.255")))

let prop_ipv4_string_roundtrip =
  QCheck.Test.make ~name:"ipv4 to_string/of_string roundtrip" ~count:500
    QCheck.(int_range 0 ((1 lsl 32) - 1))
    (fun n ->
      let a = Ipv4.of_int n in
      Ipv4.of_string (Ipv4.to_string a) = Some a)

let prop_ipv4_bit_with_bit =
  QCheck.Test.make ~name:"ipv4 with_bit/bit agree" ~count:500
    QCheck.(triple (int_range 0 ((1 lsl 32) - 1)) (int_range 0 31) bool)
    (fun (n, i, v) ->
      let a = Ipv4.with_bit (Ipv4.of_int n) i v in
      Ipv4.bit a i = v)

(* ------------------------------------------------------------------ *)
(* Prefix                                                             *)
(* ------------------------------------------------------------------ *)

let pfx = Prefix.of_string_exn

let test_prefix_canonical () =
  check_str "host bits zeroed" "10.0.0.0/8" (Prefix.to_string (pfx "10.1.2.3/8"));
  check_str "/0" "0.0.0.0/0" (Prefix.to_string (pfx "255.255.255.255/0"));
  check_str "/32 kept" "1.2.3.4/32" (Prefix.to_string (pfx "1.2.3.4/32"))

let test_prefix_contains () =
  check "contains" true (Prefix.contains_ip (pfx "10.0.0.0/8") (Ipv4.of_string_exn "10.255.0.1"));
  check "not contains" false
    (Prefix.contains_ip (pfx "10.0.0.0/8") (Ipv4.of_string_exn "11.0.0.1"));
  check "default contains all" true
    (Prefix.contains_ip Prefix.default (Ipv4.of_string_exn "200.1.2.3"))

let test_prefix_subset () =
  check "subset" true (Prefix.subset (pfx "10.1.0.0/16") (pfx "10.0.0.0/8"));
  check "not subset (reverse)" false
    (Prefix.subset (pfx "10.0.0.0/8") (pfx "10.1.0.0/16"));
  check "disjoint" false (Prefix.subset (pfx "11.0.0.0/8") (pfx "10.0.0.0/8"));
  check "self subset" true (Prefix.subset (pfx "10.0.0.0/8") (pfx "10.0.0.0/8"))

let test_prefix_overlap () =
  check "nested overlap" true (Prefix.overlap (pfx "10.0.0.0/8") (pfx "10.1.0.0/16"));
  check "disjoint" false (Prefix.overlap (pfx "10.0.0.0/8") (pfx "11.0.0.0/8"));
  check "sibling disjoint" false
    (Prefix.overlap (pfx "10.0.0.0/9") (pfx "10.128.0.0/9"))

let test_prefix_first_last () =
  let p = pfx "10.0.0.0/24" in
  check_str "first" "10.0.0.0" (Ipv4.to_string (Prefix.first p));
  check_str "last" "10.0.0.255" (Ipv4.to_string (Prefix.last p));
  check_str "last /0" "255.255.255.255" (Ipv4.to_string (Prefix.last Prefix.default))

let test_prefix_split () =
  (match Prefix.split (pfx "10.0.0.0/8") with
  | Some (a, b) ->
      check_str "lo half" "10.0.0.0/9" (Prefix.to_string a);
      check_str "hi half" "10.128.0.0/9" (Prefix.to_string b)
  | None -> Alcotest.fail "split /8 should succeed");
  check "split /32" true (Prefix.split (pfx "1.2.3.4/32") = None)

let gen_prefix =
  QCheck.Gen.(
    map2
      (fun ip len -> Prefix.make (Ipv4.of_int ip) len)
      (int_range 0 ((1 lsl 32) - 1))
      (int_range 0 32))

let arb_prefix = QCheck.make ~print:Prefix.to_string gen_prefix

let prop_prefix_roundtrip =
  QCheck.Test.make ~name:"prefix to_string/of_string roundtrip" ~count:500
    arb_prefix
    (fun p -> Prefix.of_string (Prefix.to_string p) = Some p)

let prop_prefix_subset_contains =
  QCheck.Test.make ~name:"subset implies containment of first/last" ~count:500
    QCheck.(pair arb_prefix arb_prefix)
    (fun (p, q) ->
      QCheck.assume (Prefix.subset p q);
      Prefix.contains_ip q (Prefix.first p) && Prefix.contains_ip q (Prefix.last p))

let prop_prefix_split_partitions =
  QCheck.Test.make ~name:"split partitions the prefix" ~count:500 arb_prefix
    (fun p ->
      match Prefix.split p with
      | None -> p.Prefix.len = 32
      | Some (a, b) ->
          Prefix.subset a p && Prefix.subset b p
          && (not (Prefix.overlap a b))
          && Ipv4.equal (Ipv4.succ (Prefix.last a)) (Prefix.first b))

(* ------------------------------------------------------------------ *)
(* Prefix_range                                                       *)
(* ------------------------------------------------------------------ *)

let pr ?ge ?le s = Prefix_range.make (pfx s) ~ge ~le

let test_range_defaults () =
  let r = pr "10.0.0.0/8" in
  check "exact matches" true (Prefix_range.matches r (pfx "10.0.0.0/8"));
  check "longer rejected" false (Prefix_range.matches r (pfx "10.1.0.0/16"))

let test_range_le () =
  (* The paper's D1 entry: 10.0.0.0/8 le 24. *)
  let r = pr ~le:24 "10.0.0.0/8" in
  check "matches /8" true (Prefix_range.matches r (pfx "10.0.0.0/8"));
  check "matches /16 inside" true (Prefix_range.matches r (pfx "10.5.0.0/16"));
  check "matches /24 inside" true (Prefix_range.matches r (pfx "10.5.5.0/24"));
  check "rejects /25" false (Prefix_range.matches r (pfx "10.5.5.0/25"));
  check "rejects outside" false (Prefix_range.matches r (pfx "11.0.0.0/16"))

let test_range_ge () =
  (* The paper's D1 entry: 1.0.0.0/20 ge 24. *)
  let r = pr ~ge:24 "1.0.0.0/20" in
  check "rejects /20" false (Prefix_range.matches r (pfx "1.0.0.0/20"));
  check "matches /24" true (Prefix_range.matches r (pfx "1.0.5.0/24"));
  check "matches /32" true (Prefix_range.matches r (pfx "1.0.15.255/32"));
  check "rejects outside" false (Prefix_range.matches r (pfx "1.0.16.0/24"))

let test_range_invalid () =
  Alcotest.check_raises "ge below len rejected"
    (Invalid_argument "Prefix_range.make: bounds must satisfy len <= ge <= le <= 32")
    (fun () -> ignore (pr ~ge:4 "10.0.0.0/8"));
  Alcotest.check_raises "crossed bounds rejected"
    (Invalid_argument "Prefix_range.make: bounds must satisfy len <= ge <= le <= 32")
    (fun () -> ignore (pr ~ge:20 ~le:10 "10.0.0.0/8"))

let test_range_overlap () =
  let a = pr ~le:24 "10.0.0.0/8" in
  let b = pr ~ge:16 ~le:32 "10.1.0.0/16" in
  check "overlap" true (Prefix_range.overlap a b);
  (match Prefix_range.witness_overlap a b with
  | Some w ->
      check "witness in a" true (Prefix_range.matches a w);
      check "witness in b" true (Prefix_range.matches b w)
  | None -> Alcotest.fail "expected witness");
  let c = pr ~ge:25 "10.0.0.0/8" in
  check "disjoint length windows" false (Prefix_range.overlap a c);
  let d = pr ~le:24 "11.0.0.0/8" in
  check "disjoint bits" false (Prefix_range.overlap a d)

let test_range_subset () =
  check "narrower subset" true
    (Prefix_range.subset (pr ~le:20 "10.1.0.0/16") (pr ~ge:8 ~le:24 "10.0.0.0/8"));
  check "wider not subset" false
    (Prefix_range.subset (pr ~ge:8 ~le:24 "10.0.0.0/8") (pr ~le:20 "10.1.0.0/16"));
  check "any covers all" true (Prefix_range.subset (pr ~le:24 "10.0.0.0/8") Prefix_range.any)

let test_range_ge_le_render () =
  check_str "default" "10.0.0.0/8" (Prefix_range.to_string (pr "10.0.0.0/8"));
  check_str "le" "10.0.0.0/8 le 24" (Prefix_range.to_string (pr ~le:24 "10.0.0.0/8"));
  check_str "ge" "1.0.0.0/20 ge 24" (Prefix_range.to_string (pr ~ge:24 "1.0.0.0/20"));
  check_str "ge le" "1.0.0.0/20 ge 24 le 28"
    (Prefix_range.to_string (pr ~ge:24 ~le:28 "1.0.0.0/20"))

let gen_range =
  QCheck.Gen.(
    gen_prefix >>= fun p ->
    let len = p.Prefix.len in
    int_range len 32 >>= fun lo ->
    int_range lo 32 >>= fun hi ->
    return (Prefix_range.make p ~ge:(Some lo) ~le:(Some hi)))

let arb_range = QCheck.make ~print:Prefix_range.to_string gen_range

let prop_range_witness_matches =
  QCheck.Test.make ~name:"range witness matches its range" ~count:500 arb_range
    (fun r -> Prefix_range.matches r (Prefix_range.witness r))

let prop_range_overlap_witness =
  QCheck.Test.make ~name:"overlap witness matched by both" ~count:1000
    QCheck.(pair arb_range arb_range)
    (fun (a, b) ->
      match Prefix_range.witness_overlap a b with
      | Some w -> Prefix_range.matches a w && Prefix_range.matches b w
      | None -> true)

let prop_range_overlap_complete =
  (* If a concrete prefix is matched by both ranges, overlap must say so. *)
  QCheck.Test.make ~name:"overlap detection is complete" ~count:1000
    QCheck.(triple arb_range arb_range arb_prefix)
    (fun (a, b, q) ->
      QCheck.assume (Prefix_range.matches a q && Prefix_range.matches b q);
      Prefix_range.overlap a b)

let prop_range_subset_sound =
  QCheck.Test.make ~name:"subset is sound on samples" ~count:1000
    QCheck.(triple arb_range arb_range arb_prefix)
    (fun (a, b, q) ->
      QCheck.assume (Prefix_range.subset a b && Prefix_range.matches a q);
      Prefix_range.matches b q)

(* ------------------------------------------------------------------ *)
(* Intset                                                             *)
(* ------------------------------------------------------------------ *)

let iset = Alcotest.testable Intset.pp Intset.equal

let test_intset_basics () =
  check "empty" true (Intset.is_empty Intset.empty);
  check "nonempty" false (Intset.is_empty (Intset.singleton 5));
  check "mem" true (Intset.mem 5 (Intset.range 1 10));
  check "not mem" false (Intset.mem 11 (Intset.range 1 10));
  check_int "cardinal" 10 (Intset.cardinal (Intset.range 1 10));
  check "choose" true (Intset.choose (Intset.range 3 9) = Some 3)

let test_intset_normalize () =
  Alcotest.check iset "adjacent merged" (Intset.range 1 10)
    (Intset.union (Intset.range 1 5) (Intset.range 6 10));
  Alcotest.check iset "overlap merged" (Intset.range 1 10)
    (Intset.union (Intset.range 1 7) (Intset.range 4 10));
  Alcotest.check iset "of_list dedups" (Intset.of_list [ 1; 2; 3 ])
    (Intset.of_list [ 3; 1; 2; 2; 1 ])

let test_intset_ops () =
  let a = Intset.union (Intset.range 0 10) (Intset.range 20 30) in
  let b = Intset.range 5 25 in
  Alcotest.check iset "inter"
    (Intset.union (Intset.range 5 10) (Intset.range 20 25))
    (Intset.inter a b);
  Alcotest.check iset "compl"
    (Intset.union (Intset.range 11 19) (Intset.range 31 40))
    (Intset.compl ~max:40 a);
  Alcotest.check iset "diff" (Intset.union (Intset.range 0 4) (Intset.range 26 30))
    (Intset.diff a b)

let gen_intset =
  QCheck.Gen.(
    list_size (int_range 0 8) (pair (int_range 0 200) (int_range 0 30))
    |> map (fun ivs ->
           List.fold_left
             (fun acc (lo, w) -> Intset.union acc (Intset.range lo (lo + w)))
             Intset.empty ivs))

let arb_intset = QCheck.make ~print:(Format.asprintf "%a" Intset.pp) gen_intset


let prop_intset_union =
  QCheck.Test.make ~name:"union membership" ~count:1000
    QCheck.(triple arb_intset arb_intset (int_range 0 260))
    (fun (a, b, n) ->
      Intset.mem n (Intset.union a b) = (Intset.mem n a || Intset.mem n b))

let prop_intset_inter =
  QCheck.Test.make ~name:"inter membership" ~count:1000
    QCheck.(triple arb_intset arb_intset (int_range 0 260))
    (fun (a, b, n) ->
      Intset.mem n (Intset.inter a b) = (Intset.mem n a && Intset.mem n b))

let prop_intset_compl =
  QCheck.Test.make ~name:"compl membership" ~count:1000
    QCheck.(pair arb_intset (int_range 0 300))
    (fun (a, n) ->
      Intset.mem n (Intset.compl ~max:300 a) = not (Intset.mem n a))

let prop_intset_diff =
  QCheck.Test.make ~name:"diff membership" ~count:1000
    QCheck.(triple arb_intset arb_intset (int_range 0 260))
    (fun (a, b, n) ->
      Intset.mem n (Intset.diff a b) = (Intset.mem n a && not (Intset.mem n b)))

let prop_intset_cardinal =
  QCheck.Test.make ~name:"cardinal counts members" ~count:300 arb_intset
    (fun a ->
      let count = ref 0 in
      for n = 0 to 300 do
        if Intset.mem n a then incr count
      done;
      Intset.cardinal a = !count)

let prop_intset_subset =
  QCheck.Test.make ~name:"subset agrees with membership" ~count:500
    QCheck.(pair arb_intset arb_intset)
    (fun (a, b) ->
      let sub = Intset.subset a b in
      let holds = ref true in
      for n = 0 to 300 do
        if Intset.mem n a && not (Intset.mem n b) then holds := false
      done;
      sub = !holds)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "netaddr"
    [
      ( "ipv4",
        [
          Alcotest.test_case "roundtrip" `Quick test_ipv4_roundtrip;
          Alcotest.test_case "reject malformed" `Quick test_ipv4_reject;
          Alcotest.test_case "bit access" `Quick test_ipv4_bits;
          Alcotest.test_case "masks" `Quick test_ipv4_mask;
          Alcotest.test_case "succ wraps" `Quick test_ipv4_succ_wraps;
          q prop_ipv4_string_roundtrip;
          q prop_ipv4_bit_with_bit;
        ] );
      ( "prefix",
        [
          Alcotest.test_case "canonicalization" `Quick test_prefix_canonical;
          Alcotest.test_case "contains" `Quick test_prefix_contains;
          Alcotest.test_case "subset" `Quick test_prefix_subset;
          Alcotest.test_case "overlap" `Quick test_prefix_overlap;
          Alcotest.test_case "first/last" `Quick test_prefix_first_last;
          Alcotest.test_case "split" `Quick test_prefix_split;
          q prop_prefix_roundtrip;
          q prop_prefix_subset_contains;
          q prop_prefix_split_partitions;
        ] );
      ( "prefix_range",
        [
          Alcotest.test_case "defaults" `Quick test_range_defaults;
          Alcotest.test_case "le semantics" `Quick test_range_le;
          Alcotest.test_case "ge semantics" `Quick test_range_ge;
          Alcotest.test_case "invalid bounds" `Quick test_range_invalid;
          Alcotest.test_case "overlap" `Quick test_range_overlap;
          Alcotest.test_case "subset" `Quick test_range_subset;
          Alcotest.test_case "ge/le rendering" `Quick test_range_ge_le_render;
          q prop_range_witness_matches;
          q prop_range_overlap_witness;
          q prop_range_overlap_complete;
          q prop_range_subset_sound;
        ] );
      ( "intset",
        [
          Alcotest.test_case "basics" `Quick test_intset_basics;
          Alcotest.test_case "normalization" `Quick test_intset_normalize;
          Alcotest.test_case "set operations" `Quick test_intset_ops;
          q prop_intset_union;
          q prop_intset_inter;
          q prop_intset_compl;
          q prop_intset_diff;
          q prop_intset_cardinal;
          q prop_intset_subset;
        ] );
    ]
