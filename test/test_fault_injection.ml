(* End-to-end coverage of every [Llm.Fault_injector] fault class
   through the full pipeline: with a single attempt each class must
   surface as [Verification_exhausted] carrying the verdict that
   characterises it, and with the default attempt budget the verifier's
   counterexample loop must repair it in exactly one extra round, with
   the observability counters agreeing. *)

module P = Clarify.Pipeline
module D = Clarify.Disambiguator
module F = Llm.Fault_injector

let check_int = Alcotest.(check int)

let parse_ok src =
  match Config.Parser.parse src with
  | Ok db -> db
  | Error m -> Alcotest.failf "parse failed: %s" m

let run ?max_attempts ~faults () =
  let llm = Llm.Mock_llm.create ~faults () in
  P.run_route_map_update ?max_attempts ~llm ~oracle:D.always_new
    ~db:(parse_ok Evaluation.E1_running_example.isp_out_config)
    ~target:"ISP_OUT" ~prompt:Evaluation.E1_running_example.prompt ()

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
  in
  go 0

(* The verdict each fault class must provoke on the E1 scenario. The
   substrings come from [Search_route_policies.pp_verdict] and the
   pipeline's own verdict lines. *)
let expected_verdict = function
  | F.Mask_off_by_one -> "outside the specification"
  | F.Flip_action -> "wrong action"
  | F.Hallucinate_name -> "undefined list references"
  | F.Drop_set_clause -> "wrong set clauses"
  | F.Wrong_set_value -> "wrong set clauses"
  | F.Wrong_community -> "outside the specification"
  | F.Syntax_error -> "syntax error"

let test_fault_detected fault () =
  match run ~max_attempts:1 ~faults:[ fault ] () with
  | Ok _ ->
      Alcotest.failf "fault %s slipped through verification"
        (F.fault_to_string fault)
  | Error (P.Verification_exhausted history) -> (
      match history with
      | [ verdict ] ->
          if not (contains ~needle:(expected_verdict fault) verdict) then
            Alcotest.failf "fault %s produced verdict %S, expected one about %S"
              (F.fault_to_string fault) verdict (expected_verdict fault)
      | _ ->
          Alcotest.failf "expected exactly one verdict, got %d"
            (List.length history))
  | Error e ->
      Alcotest.failf "fault %s produced unexpected error: %s"
        (F.fault_to_string fault) (P.error_to_string e)

let counter_value name =
  match Obs.Counter.find name with
  | Some c -> Obs.Counter.value c
  | None -> Alcotest.failf "counter %s is not registered" name

(* With the default budget the counterexample loop repairs the fault:
   one faulty attempt, one clean retry — visible both in the report and
   in the obs counters. *)
let test_fault_repaired fault () =
  Obs.enable ();
  Obs.reset ();
  Fun.protect ~finally:Obs.disable @@ fun () ->
  match run ~faults:[ fault ] () with
  | Error e ->
      Alcotest.failf "fault %s not repaired: %s" (F.fault_to_string fault)
        (P.error_to_string e)
  | Ok report ->
      check_int "two synthesis attempts" 2 report.P.synthesis_attempts;
      check_int "one feedback line" 1
        (List.length report.P.verification_history);
      check_int "attempts counter" 2
        (counter_value "pipeline.synthesis_attempts");
      check_int "one counterexample loop" 1
        (counter_value "pipeline.counterexample_loops");
      check_int "fault injected once" 1 (counter_value "llm.faults.injected");
      check_int "per-class counter" 1
        (counter_value
           (Obs.Labels.full_name "llm.faults.injected"
              [ ("class", F.fault_to_string fault) ]));
      if
        not
          (contains
             ~needle:(expected_verdict fault)
             (String.concat "\n" report.P.verification_history))
      then
        Alcotest.failf "feedback for %s does not mention %S"
          (F.fault_to_string fault) (expected_verdict fault)

(* A clean run consumes no faults and loops zero times. *)
let test_clean_run () =
  Obs.enable ();
  Obs.reset ();
  Fun.protect ~finally:Obs.disable @@ fun () ->
  match run ~faults:[] () with
  | Error e -> Alcotest.failf "clean run failed: %s" (P.error_to_string e)
  | Ok report ->
      check_int "one attempt" 1 report.P.synthesis_attempts;
      check_int "no faults" 0 (counter_value "llm.faults.injected");
      check_int "no loops" 0 (counter_value "pipeline.counterexample_loops")

(* Two scheduled faults: both detected, both repaired on the third try. *)
let test_two_faults () =
  Obs.enable ();
  Obs.reset ();
  Fun.protect ~finally:Obs.disable @@ fun () ->
  match run ~faults:[ F.Flip_action; F.Wrong_set_value ] () with
  | Error e -> Alcotest.failf "double fault not repaired: %s" (P.error_to_string e)
  | Ok report ->
      check_int "three attempts" 3 report.P.synthesis_attempts;
      check_int "two loops" 2 (counter_value "pipeline.counterexample_loops");
      check_int "two injections" 2 (counter_value "llm.faults.injected")

(* ------------------------------------------------------------------ *)
(* Faults mid-batch                                                   *)
(* ------------------------------------------------------------------ *)

(* A three-intent batch on ISP_OUT where intents 1 and 2 genuinely
   conflict. The first scheduled fault is consumed — inapplicably, so
   the output stays clean — by intent 0 (its snippet has no set
   clause); the fault under test therefore corrupts intent 1's first
   synthesis, mid-batch and on a conflict-graph participant. *)
let batch_items =
  [
    Clarify.Batch.Route_map_update
      {
        target = "ISP_OUT";
        prompt =
          "Write a route-map stanza that denies routes containing the prefix \
           200.0.0.0/8.";
      };
    Clarify.Batch.Route_map_update
      { target = "ISP_OUT"; prompt = Evaluation.E1_running_example.prompt };
    Clarify.Batch.Route_map_update
      {
        target = "ISP_OUT";
        prompt =
          "Write a route-map stanza that denies routes containing the prefix \
           100.0.0.0/18 with mask length less than or equal to 23.";
      };
  ]

let run_batch ~faults () =
  let llm = Llm.Mock_llm.create ~faults () in
  let oracle ~intent:_ ~target:_ _ = Clarify.Disambig_common.Prefer_new in
  Clarify.Batch.run ~llm ~oracle
    ~db:(parse_ok Evaluation.E1_running_example.isp_out_config)
    batch_items

let batch_questions (report : Clarify.Batch.report) =
  List.concat_map
    (function
      | Clarify.Batch.Route_map_result rr ->
          List.map Clarify.Disambiguator.view rr.P.questions
      | Clarify.Batch.Acl_result ar ->
          List.map Clarify.Acl_disambiguator.view ar.P.questions)
    report.Clarify.Batch.items

let attempts_of (report : Clarify.Batch.report) =
  List.map
    (function
      | Clarify.Batch.Route_map_result rr -> rr.P.synthesis_attempts
      | Clarify.Batch.Acl_result ar -> ar.P.synthesis_attempts)
    report.Clarify.Batch.items

(* Injecting any fault class mid-batch: the repair loop recovers inside
   phase 1, and the rest of the batch is untouched — same final
   configuration, same conflict edges, and the answered questions come
   in exactly the same order as a clean batch. *)
let test_batch_fault_repaired fault () =
  Obs.enable ();
  Obs.reset ();
  Fun.protect ~finally:Obs.disable @@ fun () ->
  let clean =
    match run_batch ~faults:[] () with
    | Ok r -> r
    | Error e ->
        Alcotest.failf "clean batch failed: %s" (Clarify.Batch.error_to_string e)
  in
  let faulty =
    match run_batch ~faults:[ F.Drop_set_clause; fault ] () with
    | Error e ->
        Alcotest.failf "batch with %s not repaired: %s" (F.fault_to_string fault)
          (Clarify.Batch.error_to_string e)
    | Ok r -> r
  in
  check_int "fault injected once" 1 (counter_value "llm.faults.injected");
  Alcotest.(check (list int))
    "repair cost lands on the faulted intent only" [ 1; 2; 1 ]
    (attempts_of faulty);
  check_int "clean intents stay single-attempt" 3
    (List.fold_left ( + ) 0 (attempts_of clean));
  Alcotest.(check string)
    "same final configuration"
    (Config.Parser.to_string clean.Clarify.Batch.db)
    (Config.Parser.to_string faulty.Clarify.Batch.db);
  (* The conflict graph survives the repair: same genuine edge between
     intents 1 and 2, same overlap count. *)
  check_int "one conflict edge" 1 (List.length faulty.Clarify.Batch.conflicts);
  let edge = List.hd faulty.Clarify.Batch.conflicts in
  check_int "edge a" 1 edge.Clarify.Batch.intent_a;
  check_int "edge b" 2 edge.Clarify.Batch.intent_b;
  check_int "overlap pairs as in the clean run"
    clean.Clarify.Batch.overlap_pairs faulty.Clarify.Batch.overlap_pairs;
  (* Answered questions keep their order: the faulty run asks exactly
     the clean run's questions, in the same sequence. *)
  Alcotest.(check bool)
    "questions unchanged and unreordered" true
    (batch_questions clean = batch_questions faulty)

let () =
  Alcotest.run "fault-injection"
    [
      ( "detected (max_attempts = 1)",
        List.map
          (fun fault ->
            Alcotest.test_case (F.fault_to_string fault) `Quick
              (test_fault_detected fault))
          F.all_faults );
      ( "repaired by the feedback loop",
        List.map
          (fun fault ->
            Alcotest.test_case (F.fault_to_string fault) `Quick
              (test_fault_repaired fault))
          F.all_faults );
      ( "schedules",
        [
          Alcotest.test_case "clean run" `Quick test_clean_run;
          Alcotest.test_case "two faults" `Quick test_two_faults;
        ] );
      ( "mid-batch",
        List.map
          (fun fault ->
            Alcotest.test_case (F.fault_to_string fault) `Quick
              (test_batch_fault_repaired fault))
          F.all_faults );
    ]
