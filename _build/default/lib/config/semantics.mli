(** Concrete first-match semantics of route-maps and ACLs — the
    reference behaviour the symbolic engine must agree with (checked by
    property tests). *)

type route_result =
  | Accept of Bgp.Route.t (* possibly transformed by set clauses *)
  | Reject

val match_clause : Database.t -> Bgp.Route.t -> Route_map.match_clause -> bool
(** A clause referring to an undefined list never matches. *)

val stanza_matches : Database.t -> Route_map.stanza -> Bgp.Route.t -> bool
val apply_set : Database.t -> Bgp.Route.t -> Route_map.set_clause -> Bgp.Route.t
val apply_sets : Database.t -> Bgp.Route.t -> Route_map.set_clause list -> Bgp.Route.t

val matching_stanza :
  Database.t -> Route_map.t -> Bgp.Route.t -> Route_map.stanza option
(** The stanza handling the route (the paper's function [M]), if any. *)

val eval_route_map : Database.t -> Route_map.t -> Bgp.Route.t -> route_result
(** First-match evaluation with Cisco's implicit trailing deny. *)

val eval_chain :
  Database.t -> Route_map.t list -> Bgp.Route.t -> route_result
(** Route-maps applied in order; a route must be accepted by each, and
    transformations accumulate. *)

val eval_acl : Acl.t -> Packet.t -> Action.t
(** First-match with the implicit deny applied. *)

val route_result_equal : route_result -> route_result -> bool
val pp_route_result : Format.formatter -> route_result -> unit
