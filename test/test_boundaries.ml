(* Property suite for the incremental boundary engine: on randomly
   generated targets and insertion candidates, the compile-once sweep
   must reproduce the naive per-position comparison byte-for-byte —
   same boundary positions, same witness examples, same placements in
   every disambiguation mode, serial or fanned across a worker pool.
   The naive path is reached the same way production would reach it,
   through the CLARIFY_NAIVE_BOUNDARIES environment variable. *)

module D = Clarify.Disambiguator
module Ad = Clarify.Acl_disambiguator
module Pd = Clarify.Prefix_list_disambiguator
module Crp = Engine.Compare_route_policies
module Ca = Engine.Compare_acls

let cases = 220
let ip = Netaddr.Ipv4.of_octets

let with_naive f =
  Unix.putenv Engine.Boundary_mode.env_var "1";
  Fun.protect
    ~finally:(fun () -> Unix.putenv Engine.Boundary_mode.env_var "0")
    f

let check_same ~what ~case ~render naive incremental =
  if naive <> incremental then
    Alcotest.failf "case %d: %s diverge@.naive:@.%s@.incremental:@.%s" case
      what
      (String.concat "\n" (List.map render naive))
      (String.concat "\n" (List.map render incremental))

(* ------------------------------------------------------------------ *)
(* Route-maps                                                         *)
(* ------------------------------------------------------------------ *)

let random_sets rng =
  List.filter_map
    (fun c -> c)
    [
      (if Random.State.bool rng then
         Some (Config.Route_map.Set_local_pref (50 + Random.State.int rng 200))
       else None);
      (if Random.State.int rng 3 = 0 then
         Some (Config.Route_map.Set_metric (Random.State.int rng 500))
       else None);
      (if Random.State.int rng 3 = 0 then
         Some
           (Config.Route_map.Set_community
              {
                communities =
                  [ Bgp.Community.make 65000 (1 + Random.State.int rng 4) ];
                additive = Random.State.bool rng;
              })
       else None);
      (if Random.State.int rng 4 = 0 then
         Some (Config.Route_map.Set_tag (Random.State.int rng 100))
       else None);
    ]

let route_map_case rng case =
  let stanzas = 1 + Random.State.int rng 7 in
  let db, target =
    Workload.Random_corpus.route_map ~rng ~db:Config.Database.empty
      ~name:(Printf.sprintf "T%d" case)
      ~stanzas
      ~overlap_density:(Random.State.float rng 1.0)
  in
  (* The candidate stanza matches a prefix window in the same address
     space as the generated stanzas, sometimes wide enough to overlap
     all of them, with random transforms to exercise the Permit/Permit
     set-clause comparison and the community-separating sampler. *)
  let pl_name = Printf.sprintf "NEW%d" case in
  let base, ge =
    if Random.State.int rng 4 = 0 then (Netaddr.Prefix.make (ip 60 0 0 0) 8, 8)
    else (Netaddr.Prefix.make (ip 60 (Random.State.int rng stanzas) 0 0) 16, 16)
  in
  let le = ge + Random.State.int rng (33 - ge) in
  let db =
    Config.Database.add_prefix_list db
      (Config.Prefix_list.make pl_name
         [
           Config.Prefix_list.entry ~seq:10 ~action:Config.Action.Permit
             (Netaddr.Prefix_range.make base ~ge:(Some ge) ~le:(Some le));
         ])
  in
  let action =
    if Random.State.bool rng then Config.Action.Permit else Config.Action.Deny
  in
  let stanza =
    Config.Route_map.stanza ~seq:5
      ~matches:[ Config.Route_map.Match_prefix_list [ pl_name ] ]
      ~sets:(random_sets rng) action
  in
  (db, target, stanza)

let render_rm_question q = Format.asprintf "%a" D.pp_question q

let check_rm_modes ~case ~db ~target ~stanza =
  List.iter
    (fun mode ->
      List.iter
        (fun oracle ->
          let naive =
            with_naive (fun () -> D.run ~mode ~db ~target ~stanza ~oracle ())
          in
          let incr = D.run ~mode ~db ~target ~stanza ~oracle () in
          match (naive, incr) with
          | Ok a, Ok b ->
              if
                a.D.position <> b.D.position
                || a.D.map <> b.D.map
                || a.D.boundaries <> b.D.boundaries
                || a.D.questions <> b.D.questions
              then
                Alcotest.failf
                  "case %d: run outcomes diverge (position %d vs %d)" case
                  a.D.position b.D.position
          | Error _, Error _ -> ()
          | _ -> Alcotest.failf "case %d: run verdicts diverge" case)
        [ D.always_new; D.always_old ])
    [ D.Binary_search; D.Top_bottom; D.Linear ]

let test_route_map_equivalence () =
  let rng = Random.State.make [| 0x5eed; 1 |] in
  let pool = Parallel.Pool.create ~domains:4 () in
  for case = 0 to cases - 1 do
    let db, target, stanza = route_map_case rng case in
    let naive = with_naive (fun () -> D.boundaries ~db ~target stanza) in
    let incr = D.boundaries ~db ~target stanza in
    check_same ~what:"route-map boundaries" ~case ~render:render_rm_question
      naive incr;
    if case mod 3 = 0 then check_rm_modes ~case ~db ~target ~stanza;
    if case mod 10 = 0 then begin
      let serial = Crp.adjacent_insertions ~naive:false ~db ~target stanza in
      let pooled =
        Crp.adjacent_insertions ~naive:false ~pool ~db ~target stanza
      in
      let pooled_naive =
        Crp.adjacent_insertions ~naive:true ~pool ~db ~target stanza
      in
      let render (i, (d : Crp.difference)) =
        Format.asprintf "%d: %a" i Crp.pp_difference d
      in
      check_same ~what:"pooled incremental sweep" ~case ~render serial pooled;
      check_same ~what:"pooled naive sweep" ~case ~render serial pooled_naive
    end
  done

(* as-path matches mutate the context's blocked-path state during
   sampling, the one place the shared-context sweep could drift from
   fresh per-position contexts; pin one deterministic case. *)
let test_route_map_as_path_case () =
  let db =
    Config.Database.empty
    |> Fun.flip Config.Database.add_as_path_list
         (Config.As_path_list.make "AP100" [ (Config.Action.Permit, "_100_") ])
    |> Fun.flip Config.Database.add_as_path_list
         (Config.As_path_list.make "AP200" [ (Config.Action.Permit, "_200_") ])
  in
  let target =
    Config.Route_map.make "T"
      [
        Config.Route_map.stanza ~seq:10
          ~matches:[ Config.Route_map.Match_as_path [ "AP100" ] ]
          Config.Action.Permit;
        Config.Route_map.stanza ~seq:20
          ~matches:[ Config.Route_map.Match_as_path [ "AP200" ] ]
          Config.Action.Deny;
      ]
  in
  let stanza =
    Config.Route_map.stanza ~seq:5
      ~matches:[ Config.Route_map.Match_as_path [ "AP100" ] ]
      ~sets:[ Config.Route_map.Set_local_pref 200 ]
      Config.Action.Permit
  in
  let db = Config.Database.add_route_map db target in
  let naive = with_naive (fun () -> D.boundaries ~db ~target stanza) in
  let incr = D.boundaries ~db ~target stanza in
  check_same ~what:"as-path boundaries" ~case:0 ~render:render_rm_question
    naive incr

(* ------------------------------------------------------------------ *)
(* ACLs                                                               *)
(* ------------------------------------------------------------------ *)

let acl_case rng case =
  let rules = 1 + Random.State.int rng 8 in
  let target =
    Workload.Random_corpus.acl ~rng
      ~name:(Printf.sprintf "A%d" case)
      ~rules
      ~overlap_density:(Random.State.float rng 1.0)
  in
  (* The candidate overlaps the generated 30.0.0.0/8 host regions with
     varying width. *)
  let src =
    match Random.State.int rng 3 with
    | 0 -> Config.Acl.Any
    | 1 ->
        Config.Acl.addr_of_prefix
          (Netaddr.Prefix.make (ip 30 (Random.State.int rng 8) 0 0) 12)
    | _ ->
        Config.Acl.addr_of_prefix
          (Netaddr.Prefix.make (ip 30 0 (Random.State.int rng 8) 0) 24)
  in
  let dst_port =
    match Random.State.int rng 3 with
    | 0 -> Config.Acl.Any_port
    | 1 -> Config.Acl.Range (1024, 40000)
    | _ -> Config.Acl.Gt 1000
  in
  let action =
    if Random.State.bool rng then Config.Action.Permit else Config.Action.Deny
  in
  let rule =
    Config.Acl.rule ~protocol:Config.Packet.Tcp ~src ~dst:Config.Acl.Any
      ~dst_port action
  in
  (target, rule)

let render_acl_question q = Format.asprintf "%a" Ad.pp_question q

let check_acl_modes ~case ~target ~rule =
  List.iter
    (fun mode ->
      List.iter
        (fun oracle ->
          let naive =
            with_naive (fun () -> Ad.run ~mode ~target ~rule ~oracle ())
          in
          let incr = Ad.run ~mode ~target ~rule ~oracle () in
          match (naive, incr) with
          | Ok a, Ok b ->
              if
                a.Ad.position <> b.Ad.position
                || a.Ad.acl <> b.Ad.acl
                || a.Ad.boundaries <> b.Ad.boundaries
                || a.Ad.questions <> b.Ad.questions
              then
                Alcotest.failf
                  "case %d: acl outcomes diverge (position %d vs %d)" case
                  a.Ad.position b.Ad.position
          | Error _, Error _ -> ()
          | _ -> Alcotest.failf "case %d: acl verdicts diverge" case)
        [ (fun _ -> Ad.Prefer_new); (fun _ -> Ad.Prefer_old) ])
    [ Ad.Binary_search; Ad.Top_bottom; Ad.Linear ]

let test_acl_equivalence () =
  let rng = Random.State.make [| 0x5eed; 2 |] in
  let pool = Parallel.Pool.create ~domains:4 () in
  for case = 0 to cases - 1 do
    let target, rule = acl_case rng case in
    let naive = with_naive (fun () -> Ad.boundaries ~target rule) in
    let incr = Ad.boundaries ~target rule in
    check_same ~what:"acl boundaries" ~case ~render:render_acl_question naive
      incr;
    if case mod 3 = 0 then check_acl_modes ~case ~target ~rule;
    if case mod 10 = 0 then begin
      let serial = Ca.adjacent_insertions ~naive:false ~target rule in
      let pooled = Ca.adjacent_insertions ~naive:false ~pool ~target rule in
      let pooled_naive =
        Ca.adjacent_insertions ~naive:true ~pool ~target rule
      in
      let render (i, (d : Ca.difference)) =
        Format.asprintf "%d: %a" i Ca.pp_difference d
      in
      check_same ~what:"pooled acl sweep" ~case ~render serial pooled;
      check_same ~what:"pooled naive acl sweep" ~case ~render serial
        pooled_naive
    end
  done

(* ------------------------------------------------------------------ *)
(* Prefix lists                                                       *)
(* ------------------------------------------------------------------ *)

let prefix_list_case rng case =
  let entry_at rng j =
    let len = 10 + Random.State.int rng 7 in
    let base =
      Netaddr.Prefix.make (ip 50 (Random.State.int rng 4) (j mod 4) 0) len
    in
    let ge = len + Random.State.int rng (33 - len) in
    let le = ge + Random.State.int rng (33 - ge) in
    let action =
      if Random.State.bool rng then Config.Action.Permit
      else Config.Action.Deny
    in
    Config.Prefix_list.entry ~seq:((j + 1) * 10) ~action
      (Netaddr.Prefix_range.make base ~ge:(Some ge) ~le:(Some le))
  in
  let n = 1 + Random.State.int rng 8 in
  let target =
    Config.Prefix_list.make
      (Printf.sprintf "P%d" case)
      (List.init n (entry_at rng))
  in
  let entry = { (entry_at rng 0) with Config.Prefix_list.seq = 5 } in
  (target, entry)

let render_pl_question q = Format.asprintf "%a" Pd.pp_question q

let check_pl_modes ~case ~target ~entry =
  List.iter
    (fun mode ->
      List.iter
        (fun oracle ->
          let naive =
            with_naive (fun () -> Pd.run ~mode ~target ~entry ~oracle ())
          in
          let incr = Pd.run ~mode ~target ~entry ~oracle () in
          match (naive, incr) with
          | Ok a, Ok b ->
              if
                a.Pd.position <> b.Pd.position
                || a.Pd.prefix_list <> b.Pd.prefix_list
                || a.Pd.boundaries <> b.Pd.boundaries
                || a.Pd.questions <> b.Pd.questions
              then
                Alcotest.failf
                  "case %d: prefix-list outcomes diverge (position %d vs %d)"
                  case a.Pd.position b.Pd.position
          | Error _, Error _ -> ()
          | _ -> Alcotest.failf "case %d: prefix-list verdicts diverge" case)
        [ (fun _ -> Pd.Prefer_new); (fun _ -> Pd.Prefer_old) ])
    [ Pd.Binary_search; Pd.Top_bottom; Pd.Linear ]

let test_prefix_list_equivalence () =
  let rng = Random.State.make [| 0x5eed; 3 |] in
  for case = 0 to cases - 1 do
    let target, entry = prefix_list_case rng case in
    let naive = with_naive (fun () -> Pd.boundaries ~target entry) in
    let incr = Pd.boundaries ~target entry in
    check_same ~what:"prefix-list boundaries" ~case ~render:render_pl_question
      naive incr;
    if case mod 3 = 0 then check_pl_modes ~case ~target ~entry
  done

let () =
  Alcotest.run "boundaries"
    [
      ( "naive-vs-incremental",
        [
          Alcotest.test_case "route-maps" `Quick test_route_map_equivalence;
          Alcotest.test_case "route-map as-path" `Quick
            test_route_map_as_path_case;
          Alcotest.test_case "acls" `Quick test_acl_equivalence;
          Alcotest.test_case "prefix lists" `Quick
            test_prefix_list_equivalence;
        ] );
    ]
