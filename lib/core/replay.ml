(** Deterministic replay of a recorded session (see DESIGN.md
    §Observability).

    A recorded log fully determines a session: the initial
    configuration, target and prompt come from [session_start], the LLM
    synthesis responses (faults already baked in) are fed verbatim to a
    replay {!Llm.Mock_llm}, and the user's disambiguation answers are
    fed to a scripted oracle. The pipeline is then re-run under an
    in-memory recorder and the two event streams are compared pairwise
    ({!Telemetry.Event.matches}); any mismatch — a tampered response, a
    changed verifier verdict, a different placement — surfaces as a
    {!divergence} at the first differing event. *)

module E = Telemetry.Event

type divergence = {
  index : int; (* 0-based position in the event stream *)
  recorded : E.t option; (* [None]: replay produced extra events *)
  replayed : E.t option; (* [None]: replay stopped short *)
}

type outcome = Identical | Diverged of divergence

type report = {
  pipeline : string; (* "route_map" or "acl" *)
  recorded_events : int;
  replayed_events : int;
  outcome : outcome;
}

exception Oracle_exhausted

let scripted_answers answers =
  let remaining = ref answers in
  fun () ->
    match !remaining with
    | [] -> raise Oracle_exhausted
    | a :: rest ->
        remaining := rest;
        a

let required e name =
  match E.str_field name e with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "session_start: missing field %S" name)

let run_events recorded =
  let ( let* ) r f = Result.bind r f in
  (* Span mirror events (Telemetry.span_sink) carry wall-clock timings
     that never reproduce, and gauge samples are point-in-time runtime
     state; drop both from the streams before comparing. The replay
     side never emits them anyway (no sink is installed, gauges are
     only sampled by the evaluation harness), but recordings made with
     --record-dir contain them. *)
  let recorded =
    List.filter (fun e -> e.E.kind <> "span" && e.E.kind <> "gauges") recorded
  in
  let* start =
    match recorded with
    | e :: _ when e.E.kind = "session_start" -> Ok e
    | _ :: _ -> Error "log does not begin with a session_start event"
    | [] -> Error "empty event log"
  in
  let* pipeline = required start "pipeline" in
  let* target = required start "target" in
  let* prompt = required start "prompt" in
  let* mode_name = required start "mode" in
  let* config = required start "config" in
  let max_attempts =
    Option.value ~default:Pipeline.default_max_attempts
      (E.int_field "max_attempts" start)
  in
  let* db =
    Result.map_error
      (fun m -> "recorded config does not parse: " ^ m)
      (Config.Parser.parse config)
  in
  (* LLM responses and user answers, in recorded order. *)
  let responses =
    List.filter_map
      (fun e ->
        if e.E.kind <> "llm_synthesize" then None
        else
          match (E.field "ok" e, E.str_field "text" e, E.str_field "error" e) with
          | Some (Json.Bool true), Some text, _ -> Some (Ok text)
          | _, _, Some err -> Some (Error err)
          | _ -> Some (Error "malformed llm_synthesize event"))
      recorded
  in
  (* A question event immediately preceded by a "batch_cache_hit"
     marker was answered from the batch answer cache, not by the user;
     the replayed run will serve it from its own cache, so its answer
     must not consume from the scripted oracle. *)
  let* answers =
    List.fold_left
      (fun acc e ->
        let* acc, cached = acc in
        if e.E.kind = "batch_cache_hit" then Ok (acc, true)
        else if e.E.kind <> "question" then Ok (acc, cached)
        else if cached then Ok (acc, false)
        else
          match E.str_field "answer" e with
          | Some "new" -> Ok (`New :: acc, false)
          | Some "old" -> Ok (`Old :: acc, false)
          | _ -> Error "question event without a new/old answer")
      (Ok ([], false))
      recorded
    |> Result.map (fun (acc, _) -> List.rev acc)
  in
  let llm = Llm.Mock_llm.create ~replay:responses () in
  let next = scripted_answers answers in
  let* run =
    match pipeline with
    | "route_map" ->
        let* mode =
          match mode_name with
          | "binary_search" -> Ok Disambiguator.Binary_search
          | "top_bottom" -> Ok Disambiguator.Top_bottom
          | "linear" -> Ok Disambiguator.Linear
          | m -> Error (Printf.sprintf "unknown disambiguation mode %S" m)
        in
        let oracle _ =
          match next () with
          | `New -> Disambiguator.Prefer_new
          | `Old -> Disambiguator.Prefer_old
        in
        Ok
          (fun () ->
            ignore
              (Pipeline.run_route_map_update ~max_attempts ~mode ~llm ~oracle
                 ~db ~target ~prompt ()))
    | "acl" ->
        let* mode =
          match mode_name with
          | "binary_search" -> Ok Acl_disambiguator.Binary_search
          | "top_bottom" -> Ok Acl_disambiguator.Top_bottom
          | "linear" -> Ok Acl_disambiguator.Linear
          | m -> Error (Printf.sprintf "unknown disambiguation mode %S" m)
        in
        let oracle _ =
          match next () with
          | `New -> Acl_disambiguator.Prefer_new
          | `Old -> Acl_disambiguator.Prefer_old
        in
        Ok
          (fun () ->
            ignore
              (Pipeline.run_acl_update ~max_attempts ~mode ~llm ~oracle ~db
                 ~target ~prompt ()))
    | "batch" ->
        let* rm_mode =
          match mode_name with
          | "binary_search" -> Ok Disambiguator.Binary_search
          | "top_bottom" -> Ok Disambiguator.Top_bottom
          | "linear" -> Ok Disambiguator.Linear
          | m -> Error (Printf.sprintf "unknown disambiguation mode %S" m)
        in
        let* acl_mode =
          match E.str_field "acl_mode" start with
          | None | Some "binary_search" -> Ok Acl_disambiguator.Binary_search
          | Some "top_bottom" -> Ok Acl_disambiguator.Top_bottom
          | Some "linear" -> Ok Acl_disambiguator.Linear
          | Some m -> Error (Printf.sprintf "unknown disambiguation mode %S" m)
        in
        let* items =
          match E.field "items" start with
          | Some (Json.List items) ->
              List.fold_left
                (fun acc j ->
                  let* acc = acc in
                  let str name =
                    match Json.member name j with
                    | Some (Json.String s) -> Ok s
                    | _ ->
                        Error
                          (Printf.sprintf
                             "batch session_start: item missing field %S" name)
                  in
                  let* kind = str "kind" in
                  let* target = str "target" in
                  let* prompt = str "prompt" in
                  match kind with
                  | "route_map" ->
                      Ok (Batch.Route_map_update { target; prompt } :: acc)
                  | "acl" -> Ok (Batch.Acl_update { target; prompt } :: acc)
                  | k ->
                      Error
                        (Printf.sprintf "batch session_start: unknown kind %S" k))
                (Ok []) items
              |> Result.map List.rev
          | _ -> Error "batch session_start: missing items list"
        in
        let oracle ~intent:_ ~target:_ _ =
          match next () with
          | `New -> Disambig_common.Prefer_new
          | `Old -> Disambig_common.Prefer_old
        in
        Ok
          (fun () ->
            ignore
              (Batch.run ~max_attempts ~rm_mode ~acl_mode ~llm ~oracle ~db
                 items))
    | p -> Error (Printf.sprintf "unknown pipeline kind %S" p)
  in
  (* Re-run under a fresh in-memory recorder. An exhausted oracle means
     the replay asked a question the recording never answered — itself a
     divergence, reported at whatever event the replay had reached. *)
  let (), replayed = Telemetry.with_memory_recorder (fun () ->
      try run () with Oracle_exhausted -> ())
  in
  let rec compare i = function
    | [], [] -> Identical
    | r :: rs, p :: ps when E.matches r p -> compare (i + 1) (rs, ps)
    | rs, ps ->
        Diverged
          {
            index = i;
            recorded = (match rs with r :: _ -> Some r | [] -> None);
            replayed = (match ps with p :: _ -> Some p | [] -> None);
          }
  in
  Ok
    {
      pipeline;
      recorded_events = List.length recorded;
      replayed_events = List.length replayed;
      outcome = compare 0 (recorded, replayed);
    }

let run_file path = Result.bind (Telemetry.load_file path) run_events

let identical r = r.outcome = Identical

let pp_event fmt = function
  | None -> Format.fprintf fmt "(no event)"
  | Some e -> Format.fprintf fmt "%s" (Json.to_string ~indent:2 (E.to_json e))

let pp_report fmt r =
  match r.outcome with
  | Identical ->
      Format.fprintf fmt
        "replay ok: %s session, %d/%d events matched bit-for-bit@." r.pipeline
        r.replayed_events r.recorded_events
  | Diverged d ->
      Format.fprintf fmt
        "@[<v>replay DIVERGED at event %d (%s session, %d recorded / %d \
         replayed events)@,recorded:@,%a@,replayed:@,%a@]@."
        d.index r.pipeline r.recorded_events r.replayed_events pp_event
        d.recorded pp_event d.replayed
