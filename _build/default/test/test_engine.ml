open Config
module Srp = Engine.Search_route_policies
module Crp = Engine.Compare_route_policies
module Sf = Engine.Search_filters

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let pfx = Netaddr.Prefix.of_string_exn
let comm = Bgp.Community.of_string_exn

let parse_ok src =
  match Parser.parse src with
  | Ok db -> db
  | Error m -> Alcotest.failf "parse failed: %s" m

(* ------------------------------------------------------------------ *)
(* Spec JSON round-trips (the paper's Section 2.1 format)             *)
(* ------------------------------------------------------------------ *)

let paper_spec_json =
  {|{
  "permit": true,
  "prefix": ["100.0.0.0/16:16-23"],
  "community": "/_300:3_/",
  "set": { "metric": 55 }
}|}

let paper_spec () =
  match Engine.Spec.of_string paper_spec_json with
  | Ok s -> s
  | Error m -> Alcotest.failf "spec parse failed: %s" m

let test_spec_parse () =
  let s = paper_spec () in
  check "permit" true (s.Engine.Spec.action = Action.Permit);
  check_int "one prefix" 1 (List.length s.Engine.Spec.prefixes);
  (match s.Engine.Spec.prefixes with
  | [ r ] ->
      check "prefix range" true
        (Netaddr.Prefix_range.equal r
           (Netaddr.Prefix_range.make (pfx "100.0.0.0/16") ~ge:(Some 16)
              ~le:(Some 23)))
  | _ -> Alcotest.fail "expected one prefix");
  check "community regex" true (s.Engine.Spec.community <> None);
  check "metric set" true
    (s.Engine.Spec.sets = [ Route_map.Set_metric 55 ])

let test_spec_roundtrip () =
  let s = paper_spec () in
  match Engine.Spec.of_string (Engine.Spec.to_string s) with
  | Ok s2 ->
      check "same action" true (s2.Engine.Spec.action = s.Engine.Spec.action);
      check "same prefixes" true (s2.Engine.Spec.prefixes = s.Engine.Spec.prefixes);
      check "same sets" true (s2.Engine.Spec.sets = s.Engine.Spec.sets)
  | Error m -> Alcotest.failf "roundtrip failed: %s" m

let test_spec_matches_concrete () =
  let s = paper_spec () in
  let good =
    Bgp.Route.make ~communities:[ comm "300:3" ] (pfx "100.0.0.0/20")
  in
  let wrong_comm = Bgp.Route.make (pfx "100.0.0.0/20") in
  let wrong_len =
    Bgp.Route.make ~communities:[ comm "300:3" ] (pfx "100.0.0.0/24")
  in
  check "good" true (Engine.Spec.matches s good);
  check "missing community" false (Engine.Spec.matches s wrong_comm);
  check "mask too long" false (Engine.Spec.matches s wrong_len)

let test_spec_errors () =
  let expect_err j =
    match Engine.Spec.of_string j with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected spec error for %s" j
  in
  List.iter expect_err
    [
      {|{"prefix": ["1.0.0.0/8"]}|};
      {|{"permit": "yes"}|};
      {|{"permit": true, "prefix": "1.2.3.4"}|};
      {|{"permit": true, "set": {"bogus": 1}}|};
      {|{"permit": true|};
    ]

(* ------------------------------------------------------------------ *)
(* Stanza verification (paper's verification step)                    *)
(* ------------------------------------------------------------------ *)

let correct_snippet =
  {|
ip community-list expanded COM_LIST permit _300:3_
ip prefix-list PREFIX_100 permit 100.0.0.0/16 le 23
route-map SET_METRIC permit 10
 match community COM_LIST
 match ip address prefix-list PREFIX_100
 set metric 55
|}

let verify src =
  let d = parse_ok src in
  let rm = Option.get (Database.route_map d "SET_METRIC") in
  Srp.verify_stanza d rm (paper_spec ())

let test_verify_correct () =
  match verify correct_snippet with
  | Srp.Verified -> ()
  | v -> Alcotest.failf "expected Verified, got %s" (Format.asprintf "%a" Srp.pp_verdict v)

let test_verify_wrong_action () =
  let bad = Str_replace.replace correct_snippet "route-map SET_METRIC permit 10"
      "route-map SET_METRIC deny 10" in
  match verify bad with
  | Srp.Wrong_action _ -> ()
  | _ -> Alcotest.fail "expected Wrong_action"

let test_verify_too_broad () =
  (* le 24 instead of le 23: matches /24 routes the spec excludes. *)
  let bad =
    Str_replace.replace correct_snippet "permit 100.0.0.0/16 le 23"
      "permit 100.0.0.0/16 le 24"
  in
  match verify bad with
  | Srp.Match_too_broad r ->
      check "counterexample outside spec" false
        (Engine.Spec.matches (paper_spec ()) r);
      check_int "mask length 24" 24 r.Bgp.Route.prefix.Netaddr.Prefix.len
  | v -> Alcotest.failf "expected Match_too_broad, got %s" (Format.asprintf "%a" Srp.pp_verdict v)

let test_verify_too_narrow () =
  (* le 20 misses /21../23 routes the spec covers. *)
  let bad =
    Str_replace.replace correct_snippet "permit 100.0.0.0/16 le 23"
      "permit 100.0.0.0/16 le 20"
  in
  match verify bad with
  | Srp.Match_too_narrow r ->
      check "counterexample inside spec" true
        (Engine.Spec.matches (paper_spec ()) r)
  | _ -> Alcotest.fail "expected Match_too_narrow"

let test_verify_wrong_sets () =
  let bad = Str_replace.replace correct_snippet "set metric 55" "set metric 56" in
  match verify bad with
  | Srp.Wrong_sets _ -> ()
  | _ -> Alcotest.fail "expected Wrong_sets"

let test_verify_missing_set () =
  let bad = Str_replace.replace correct_snippet "\n set metric 55" "" in
  match verify bad with
  | Srp.Wrong_sets _ -> ()
  | _ -> Alcotest.fail "expected Wrong_sets for dropped set clause"

let test_verify_undefined_reference () =
  (* A hallucinated list name. *)
  let bad =
    Str_replace.replace correct_snippet "match community COM_LIST"
      "match community HALLUCINATED"
  in
  match verify bad with
  | Srp.Undefined_references names -> check "names" true (List.mem "HALLUCINATED" names)
  | _ -> Alcotest.fail "expected Undefined_references"

let test_search_route_policies () =
  let d = parse_ok correct_snippet in
  let rm = Option.get (Database.route_map d "SET_METRIC") in
  (* Find a permitted route within the spec space. *)
  (match Srp.search d rm ~constraint_spec:(paper_spec ()) ~action:Action.Permit with
  | Some r ->
      check "matches spec" true (Engine.Spec.matches (paper_spec ()) r)
  | None -> Alcotest.fail "expected a permitted route");
  (* No denied route within the spec space (the stanza covers it all). *)
  check "no denied route inside spec" true
    (Srp.search d rm ~constraint_spec:(paper_spec ()) ~action:Action.Deny = None)

(* ------------------------------------------------------------------ *)
(* compareRoutePolicies: the paper's Figure 2 (a) vs (b)              *)
(* ------------------------------------------------------------------ *)

let fig2a =
  {|
ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
ip prefix-list D1 seq 30 permit 1.0.0.0/20 ge 24
ip community-list expanded D2 permit _300:3_
ip prefix-list D3 permit 100.0.0.0/16 le 23
route-map ISP_OUT permit 10
 match community D2
 match ip address prefix-list D3
 set metric 55
route-map ISP_OUT deny 20
 match as-path D0
route-map ISP_OUT deny 30
 match ip address prefix-list D1
route-map ISP_OUT permit 40
 match local-preference 300
|}

let fig2b =
  {|
ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
ip prefix-list D1 seq 30 permit 1.0.0.0/20 ge 24
ip community-list expanded D2 permit _300:3_
ip prefix-list D3 permit 100.0.0.0/16 le 23
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300
route-map ISP_OUT permit 40
 match community D2
 match ip address prefix-list D3
 set metric 55
|}

let test_compare_fig2 () =
  let da = parse_ok fig2a and db_ = parse_ok fig2b in
  let rma = Option.get (Database.route_map da "ISP_OUT") in
  let rmb = Option.get (Database.route_map db_ "ISP_OUT") in
  let diffs = Crp.compare ~db_a:da ~db_b:db_ rma rmb in
  check "differences exist" true (diffs <> []);
  (* Every reported difference is a genuine behavioural difference. *)
  List.iter
    (fun (d : Crp.difference) ->
      let ra = Semantics.eval_route_map da rma d.route in
      let rb = Semantics.eval_route_map db_ rmb d.route in
      check "result_a faithful" true (Semantics.route_result_equal ra d.result_a);
      check "result_b faithful" true (Semantics.route_result_equal rb d.result_b);
      check "really differ" false (Semantics.route_result_equal ra rb))
    diffs;
  (* The paper's canonical differential input: prefix 100.0.0.0/16,
     as-path [32], community 300:3 — permitted with metric 55 under (a),
     denied under (b). *)
  let paper_route =
    Bgp.Route.make ~as_path:[ 32 ] ~communities:[ comm "300:3" ]
      (pfx "100.0.0.0/16")
  in
  let ra = Semantics.eval_route_map da rma paper_route in
  let rb = Semantics.eval_route_map db_ rmb paper_route in
  (match ra with
  | Semantics.Accept r -> check_int "metric 55 under (a)" 55 r.Bgp.Route.metric
  | Semantics.Reject -> Alcotest.fail "paper route should be accepted under (a)");
  check "denied under (b)" true (rb = Semantics.Reject);
  (* The engine must find a difference covering this cell: some diff
     route matching the new stanza and as-path list D0. *)
  check "found a D0-vs-new-stanza difference" true
    (List.exists
       (fun (d : Crp.difference) ->
         let r = d.route in
         As_path_list.matches
           (Option.get (Database.as_path_list da "D0"))
           r.Bgp.Route.as_path
         && List.exists (Bgp.Community.equal (comm "300:3")) r.Bgp.Route.communities)
       diffs)

let test_compare_equal_maps () =
  let d = parse_ok fig2a in
  let rm = Option.get (Database.route_map d "ISP_OUT") in
  check "map equals itself" true (Crp.equal_behavior ~db_a:d ~db_b:d rm rm)

let test_compare_set_difference () =
  (* Same matches, different transform: must be reported. *)
  let mk metric =
    parse_ok
      (Printf.sprintf
         {|
ip prefix-list P permit 10.0.0.0/8 le 24
route-map M permit 10
 match ip address prefix-list P
 set metric %d
|}
         metric)
  in
  let da = mk 5 and db_ = mk 7 in
  let rma = Option.get (Database.route_map da "M") in
  let rmb = Option.get (Database.route_map db_ "M") in
  match Crp.first_difference ~db_a:da ~db_b:db_ rma rmb with
  | Some d -> (
      match (d.result_a, d.result_b) with
      | Semantics.Accept a, Semantics.Accept b ->
          check_int "metric a" 5 a.Bgp.Route.metric;
          check_int "metric b" 7 b.Bgp.Route.metric
      | _ -> Alcotest.fail "expected two accepts")
  | None -> Alcotest.fail "expected a difference"

let test_compare_community_transform_difference () =
  (* Transforms that differ only on community handling: the engine must
     sample a route that separates them. *)
  let mk op =
    parse_ok
      (Printf.sprintf
         {|
ip community-list expanded SCRUB permit _65000:.*_
ip prefix-list P permit 10.0.0.0/8 le 24
route-map M permit 10
 match ip address prefix-list P
%s
|}
         op)
  in
  let da = mk " set comm-list SCRUB delete" in
  let db_ = mk "" in
  let rma = Option.get (Database.route_map da "M") in
  let rmb = Option.get (Database.route_map db_ "M") in
  match Crp.first_difference ~db_a:da ~db_b:db_ rma rmb with
  | Some d ->
      check "route carries a scrubbable community" true
        (List.exists
           (fun c -> (Bgp.Community.to_pair c |> fst) = 65000)
           d.route.Bgp.Route.communities)
  | None -> Alcotest.fail "expected a community-transform difference"

let test_compare_shadowed_stanza_no_difference () =
  (* The differing stanza is fully shadowed: no behavioural change. *)
  let mk extra =
    parse_ok
      (Printf.sprintf
         {|
ip prefix-list P permit 10.0.0.0/8 le 32
ip prefix-list Q permit 10.1.0.0/16 le 32
route-map M deny 10
 match ip address prefix-list P
%s
|}
         extra)
  in
  let da = mk "route-map M permit 20\n match ip address prefix-list Q\n" in
  let db_ = mk "" in
  let rma = Option.get (Database.route_map da "M") in
  let rmb = Option.get (Database.route_map db_ "M") in
  check "no difference" true (Crp.equal_behavior ~db_a:da ~db_b:db_ rma rmb)

(* ------------------------------------------------------------------ *)
(* searchFilters                                                      *)
(* ------------------------------------------------------------------ *)

let fw =
  {|
ip access-list extended FW
 permit tcp 10.0.0.0/8 any eq 443
 deny ip any any
|}

let test_search_filters () =
  let d = parse_ok fw in
  let acl = Option.get (Database.acl d "FW") in
  (match Sf.search acl (Sf.any_query Action.Permit) with
  | Some p ->
      check "permitted packet found" true
        (Semantics.eval_acl acl p = Action.Permit);
      check "tcp 443" true
        (p.Packet.protocol = Packet.Tcp && p.Packet.dst_port = 443)
  | None -> Alcotest.fail "expected a permitted packet");
  match Sf.search acl (Sf.any_query Action.Deny) with
  | Some p -> check "denied packet found" true (Semantics.eval_acl acl p = Action.Deny)
  | None -> Alcotest.fail "expected a denied packet"

let test_search_filters_differ () =
  let d = parse_ok fw in
  let acl = Option.get (Database.acl d "FW") in
  check "acl equals itself" true (Sf.differ acl acl = None);
  let d2 =
    parse_ok
      {|
ip access-list extended FW
 permit tcp 10.0.0.0/8 any eq 443
 permit tcp 10.0.0.0/8 any eq 80
 deny ip any any
|}
  in
  let acl2 = Option.get (Database.acl d2 "FW") in
  match Sf.differ acl acl2 with
  | Some p ->
      check "differs on port 80" true
        (Semantics.eval_acl acl p <> Semantics.eval_acl acl2 p)
  | None -> Alcotest.fail "expected a differing packet"

let () =
  Alcotest.run "engine"
    [
      ( "spec",
        [
          Alcotest.test_case "parse paper spec" `Quick test_spec_parse;
          Alcotest.test_case "roundtrip" `Quick test_spec_roundtrip;
          Alcotest.test_case "concrete matching" `Quick test_spec_matches_concrete;
          Alcotest.test_case "rejects malformed" `Quick test_spec_errors;
        ] );
      ( "searchRoutePolicies",
        [
          Alcotest.test_case "verify correct snippet" `Quick test_verify_correct;
          Alcotest.test_case "wrong action" `Quick test_verify_wrong_action;
          Alcotest.test_case "match too broad" `Quick test_verify_too_broad;
          Alcotest.test_case "match too narrow" `Quick test_verify_too_narrow;
          Alcotest.test_case "wrong sets" `Quick test_verify_wrong_sets;
          Alcotest.test_case "missing set" `Quick test_verify_missing_set;
          Alcotest.test_case "undefined reference" `Quick test_verify_undefined_reference;
          Alcotest.test_case "search" `Quick test_search_route_policies;
        ] );
      ( "compareRoutePolicies",
        [
          Alcotest.test_case "Figure 2 (a) vs (b)" `Quick test_compare_fig2;
          Alcotest.test_case "equal maps" `Quick test_compare_equal_maps;
          Alcotest.test_case "set-clause difference" `Quick test_compare_set_difference;
          Alcotest.test_case "community transform difference" `Quick
            test_compare_community_transform_difference;
          Alcotest.test_case "shadowed stanza" `Quick
            test_compare_shadowed_stanza_no_difference;
        ] );
      ( "searchFilters",
        [
          Alcotest.test_case "find permit/deny packets" `Quick test_search_filters;
          Alcotest.test_case "differ" `Quick test_search_filters_differ;
        ] );
    ]
