(** ACL search — the analogue of Batfish's [searchFilters]: find a
    packet within a header-space constraint for which the ACL takes a
    given action, or prove there is none. *)

type query = {
  within : Symbdd.Bdd.t; (* header-space constraint; [Bdd.one] = all *)
  action : Config.Action.t; (* final ACL action sought *)
}

val any_query : Config.Action.t -> query

val action_space : Config.Acl.t -> Config.Action.t -> Symbdd.Bdd.t
(** Header space on which the ACL's final action is the given one. *)

val search : Config.Acl.t -> query -> Config.Packet.t option
(** A packet satisfying the query, if any. *)

val differ : Config.Acl.t -> Config.Acl.t -> Config.Packet.t option
(** A packet the two ACLs treat differently, if any. *)

type verdict =
  | Verified
  | Wrong_action of { expected : Config.Action.t }
  | Match_too_broad of Config.Packet.t (* rule matches, spec does not *)
  | Match_too_narrow of Config.Packet.t (* spec matches, rule does not *)

val verify_rule :
  Config.Acl.rule ->
  spec_space:Symbdd.Bdd.t ->
  action:Config.Action.t ->
  verdict
(** Verify a single synthesized ACL rule against a header-space spec:
    the rule's match condition must equal the spec space and the action
    must agree; counterexamples are concrete packets. *)
