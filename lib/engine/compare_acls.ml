(** Behavioural diff of two ACLs, used to generate differential packet
    examples for ACL insertion disambiguation. *)

open Symbdd
module Ps = Symbolic.Packet_space

type difference = {
  packet : Config.Packet.t;
  action_a : Config.Action.t;
  action_b : Config.Action.t;
  rule_a : int option; (* handling rule seq under A; None = implicit deny *)
  rule_b : int option;
}

(** All behavioural differences, one example packet per differing pair
    of execution cells, capped at [limit]. *)
let compare ?(limit = max_int) (a : Config.Acl.t) (b : Config.Acl.t) =
  Obs.Counter.incr Metrics.compare_acls_calls;
  let cells_a = Ps.exec a and cells_b = Ps.exec b in
  let out = ref [] in
  let count = ref 0 in
  List.iter
    (fun (ca : Ps.cell) ->
      List.iter
        (fun (cb : Ps.cell) ->
          if !count < limit && not (Config.Action.equal ca.action cb.action)
          then
            match Ps.to_packet (Bdd.conj ca.guard cb.guard) with
            | None -> ()
            | Some packet ->
                out :=
                  {
                    packet;
                    action_a = ca.action;
                    action_b = cb.action;
                    rule_a = ca.rule_seq;
                    rule_b = cb.rule_seq;
                  }
                  :: !out;
                incr count)
        cells_b)
    cells_a;
  List.rev !out

let first_difference a b =
  match compare ~limit:1 a b with [] -> None | d :: _ -> Some d

let equal_behavior a b = first_difference a b = None

let pp_difference fmt d =
  Format.fprintf fmt
    "@[<v>Input packet: %a@ OPTION A: %a (rule %s)@ OPTION B: %a (rule %s)@]"
    Config.Packet.pp d.packet Config.Action.pp d.action_a
    (match d.rule_a with Some s -> string_of_int s | None -> "implicit deny")
    Config.Action.pp d.action_b
    (match d.rule_b with Some s -> string_of_int s | None -> "implicit deny")
