lib/bdd/bvec.ml: Array Bdd List Printf
