examples/quickstart.mli:
