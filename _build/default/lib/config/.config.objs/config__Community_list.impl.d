lib/config/community_list.ml: Action Bgp Format List Sre String
