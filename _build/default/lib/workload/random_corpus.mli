(** Fully random configuration generation with a tunable overlap
    density, for fuzzing and the density-sweep benchmark. Overlap counts
    are emergent (measured by the analyzer), but the density knob moves
    them monotonically: 0.0 produces pairwise-disjoint rules, 1.0
    heavily entangled ones. *)

val acl :
  rng:Random.State.t ->
  name:string ->
  rules:int ->
  overlap_density:float ->
  Config.Acl.t
(** @raise Invalid_argument when density is outside [0, 1]. *)

val route_map :
  rng:Random.State.t ->
  db:Config.Database.t ->
  name:string ->
  stanzas:int ->
  overlap_density:float ->
  Config.Database.t * Config.Route_map.t
