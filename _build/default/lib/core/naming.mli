(** Fresh naming of ancillary lists when a synthesized snippet is
    imported into an existing configuration (the paper's automatic
    renaming of data-structure names on insertion: COM_LIST becomes D2,
    PREFIX_100 becomes D3, and so on). *)

val fresh_names : Config.Database.t -> int -> string list
(** The next [n] names of the form [D<k>] not defined in the database,
    ascending in [k]. *)

type imported = {
  db : Config.Database.t; (* target db plus the renamed lists *)
  stanza : Config.Route_map.stanza; (* references rewritten *)
  renaming : (string * string) list; (* old name -> fresh name *)
}

val import_route_map_snippet :
  db:Config.Database.t ->
  snippet:Config.Database.t ->
  Config.Route_map.t ->
  (imported, string) result
(** Import a synthesized snippet (ancillary lists plus a single-stanza
    route-map): every list the stanza references is copied under a fresh
    [D<k>] name, assigned in the order the lists appear in the stanza,
    and the stanza's references are rewritten. Errors when the snippet
    does not contain exactly one stanza. *)
