test/test_extensions.ml: Action Alcotest Clarify Config Database Engine Evaluation List Llm Netaddr Netsim Option Parser Prefix_list QCheck QCheck_alcotest Route_map Semantics
