lib/llm/llm_placement.mli: Config
