lib/llm/fault_injector.mli:
