(* The Figure-4 aggregator: per-router statistics recomputed from
   recorded session logs instead of ad hoc counters inside the
   evaluation harness. Everything in the Markdown and CSV renderings is
   deterministic (event counts and chars/4 token estimates), so reports
   can be committed as goldens and diffed in CI; wall-clock phase
   timings are confined to the JSON rendering. *)

module E = Telemetry.Event

type phase = { phase : string; total_ns : float; count : int }

type router_stats = {
  router : string;
  sessions : int; (* session_start events *)
  route_maps : int; (* distinct session_start targets *)
  stanzas : int; (* placement events *)
  questions : int;
  probes : int;
  boundaries : int; (* summed over placement events *)
  retries : int; (* verify events with a non-"verified" verdict *)
  classify_calls : int;
  synthesize_calls : int;
  spec_calls : int;
  prompt_tokens : int;
  completion_tokens : int;
  cost_usd : float;
  phases : phase list; (* wall time per pipeline phase; JSON only *)
  boundary_ns : float; (* find_boundaries span time; JSON only *)
  batch_sessions : int; (* session_start with pipeline="batch" *)
  batch_intents : int; (* intents over all batch_plan events *)
  batch_conflict_pairs : int; (* genuine inter-intent conflict edges *)
  batch_fast_path : int; (* batch items placed without recompiling *)
  batch_questions_saved : int; (* batch_cache_hit events *)
  gauges : (string * float) list; (* last "gauges" event; JSON only *)
}

type t = { routers : router_stats list }

let llm_calls s = s.classify_calls + s.synthesize_calls + s.spec_calls

(* Phase attribution from span mirror events: the root span (depth 0)
   is the whole pipeline run, depth-1 spans are its phases (classify,
   spec_extract, synthesize, import, disambiguate), named by the last
   path segment. Deeper spans are details of a phase and would double
   count. *)
let phase_of_span e =
  match (E.int_field "depth" e, E.str_field "path" e) with
  | Some 0, Some _ -> Some "total"
  | Some 1, Some path ->
      let segs = String.split_on_char '.' path in
      Some (List.nth segs (List.length segs - 1))
  | _ -> None

let stats_of_events ~router events =
  let count k = List.length (List.filter (fun e -> e.E.kind = k) events) in
  let sum_int k field =
    List.fold_left
      (fun acc e ->
        if e.E.kind = k then
          acc + Option.value ~default:0 (E.int_field field e)
        else acc)
      0 events
  in
  let targets =
    List.filter_map
      (fun e ->
        if e.E.kind = "session_start" then E.str_field "target" e else None)
      events
    |> List.sort_uniq String.compare
  in
  let retries =
    List.length
      (List.filter
         (fun e ->
           e.E.kind = "verify" && E.str_field "verdict" e <> Some "verified")
         events)
  in
  let prompt_tokens =
    sum_int "llm_classify" "prompt_tokens"
    + sum_int "llm_synthesize" "prompt_tokens"
    + sum_int "llm_spec" "prompt_tokens"
  in
  let completion_tokens =
    sum_int "llm_classify" "completion_tokens"
    + sum_int "llm_synthesize" "completion_tokens"
    + sum_int "llm_spec" "completion_tokens"
  in
  (* Wall time inside boundary discovery, summed over every
     find_boundaries span regardless of depth (the disambiguators emit
     one per sweep). Like the phase timings, nondeterministic, so
     JSON-only. *)
  let boundary_ns =
    List.fold_left
      (fun acc e ->
        if e.E.kind <> "span" then acc
        else
          match (E.str_field "path" e, E.field "duration_ns" e) with
          | Some path, Some (Json.Float f)
            when String.ends_with ~suffix:"find_boundaries" path ->
              acc +. f
          | Some path, Some (Json.Int i)
            when String.ends_with ~suffix:"find_boundaries" path ->
              acc +. float_of_int i
          | _ -> acc)
      0. events
  in
  let phases =
    List.fold_left
      (fun acc e ->
        if e.E.kind <> "span" then acc
        else
          match (phase_of_span e, E.field "duration_ns" e) with
          | Some name, Some ((Json.Float _ | Json.Int _) as jd) ->
              let d =
                match jd with
                | Json.Float f -> f
                | Json.Int i -> float_of_int i
                | _ -> 0.
              in
              let cur =
                Option.value ~default:{ phase = name; total_ns = 0.; count = 0 }
                  (List.assoc_opt name acc)
              in
              (name,
               { cur with total_ns = cur.total_ns +. d; count = cur.count + 1 })
              :: List.remove_assoc name acc
          | _ -> acc)
      [] events
    |> List.map snd
    |> List.sort (fun a b -> String.compare a.phase b.phase)
  in
  let batch_sessions =
    List.length
      (List.filter
         (fun e ->
           e.E.kind = "session_start"
           && E.str_field "pipeline" e = Some "batch")
         events)
  in
  let batch_fast_path =
    List.length
      (List.filter
         (fun e ->
           e.E.kind = "batch_item"
           && E.field "fast_path" e = Some (Json.Bool true))
         events)
  in
  (* Runtime state sampled when the session closed; the last gauges
     event wins when several sessions merge into one router row. Like
     the phase timings, nondeterministic, so JSON-only. *)
  let gauges =
    List.fold_left
      (fun acc e ->
        if e.E.kind <> "gauges" then acc
        else
          List.filter_map
            (fun (n, v) ->
              match v with
              | Json.Float f -> Some (n, f)
              | Json.Int i -> Some (n, float_of_int i)
              | _ -> None)
            e.E.fields)
      [] events
  in
  {
    router;
    sessions = count "session_start";
    route_maps = List.length targets;
    stanzas = count "placement";
    questions = count "question";
    probes = count "probe";
    boundaries = sum_int "placement" "boundaries";
    retries;
    classify_calls = count "llm_classify";
    synthesize_calls = count "llm_synthesize";
    spec_calls = count "llm_spec";
    prompt_tokens;
    completion_tokens;
    cost_usd = Llm.Tokens.cost ~prompt_tokens ~completion_tokens;
    phases;
    boundary_ns;
    batch_sessions;
    batch_intents = sum_int "batch_plan" "intents";
    batch_conflict_pairs = sum_int "batch_plan" "conflict_pairs";
    batch_fast_path;
    batch_questions_saved = count "batch_cache_hit";
    gauges;
  }

(* Sessions for the same router (one log per policy step, say) merge
   into one row; rows sort by router name so output order never depends
   on argument or readdir order. *)
let of_sessions sessions =
  let groups = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let r = Session.router s in
      let prev = Option.value ~default:[] (Hashtbl.find_opt groups r) in
      Hashtbl.replace groups r (prev @ [ s ]))
    sessions;
  let routers =
    Hashtbl.fold
      (fun router ss acc ->
        let events = List.concat_map (fun s -> s.Session.events) ss in
        stats_of_events ~router events :: acc)
      groups []
    |> List.sort (fun a b -> String.compare a.router b.router)
  in
  { routers }

(* ------------------------------------------------------------------ *)
(* Renderings                                                         *)
(* ------------------------------------------------------------------ *)

let figure4_markdown t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    "| Router | Route-maps | Stanzas | Synthesis calls | Questions | \
     Boundaries | Retries |\n";
  Buffer.add_string b "|---|---:|---:|---:|---:|---:|---:|\n";
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "| %s | %d | %d | %d | %d | %d | %d |\n" s.router
           s.route_maps s.stanzas s.synthesize_calls s.questions s.boundaries
           s.retries))
    t.routers;
  Buffer.contents b

let cost_markdown t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    "| Router | LLM calls | Classify | Synthesize | Spec | Prompt tokens | \
     Completion tokens | Est. cost (USD) |\n";
  Buffer.add_string b "|---|---:|---:|---:|---:|---:|---:|---:|\n";
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "| %s | %d | %d | %d | %d | %d | %d | %.6f |\n"
           s.router (llm_calls s) s.classify_calls s.synthesize_calls
           s.spec_calls s.prompt_tokens s.completion_tokens s.cost_usd))
    t.routers;
  Buffer.contents b

(* Only rendered when batch sessions are present, so reports over
   single-intent logs (e.g. the committed E4 golden) are unchanged. *)
let batch_markdown t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    "| Router | Batch sessions | Intents | Conflict pairs | Fast-path \
     placements | Questions saved |\n";
  Buffer.add_string b "|---|---:|---:|---:|---:|---:|\n";
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "| %s | %d | %d | %d | %d | %d |\n" s.router
           s.batch_sessions s.batch_intents s.batch_conflict_pairs
           s.batch_fast_path s.batch_questions_saved))
    t.routers;
  Buffer.contents b

let to_markdown t =
  "# Session report\n\n## Figure 4: per-router interaction counts\n\n"
  ^ figure4_markdown t ^ "\n## LLM usage and estimated cost\n\n"
  ^ cost_markdown t
  ^
  if List.exists (fun s -> s.batch_sessions > 0) t.routers then
    "\n## Batch intents\n\n" ^ batch_markdown t
  else ""

let to_csv t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    "router,sessions,route_maps,stanzas,questions,probes,boundaries,retries,\
     classify_calls,synthesize_calls,spec_calls,prompt_tokens,\
     completion_tokens,cost_usd,batch_sessions,batch_intents,\
     batch_conflict_pairs,batch_fast_path,batch_questions_saved\n";
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf
           "%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.6f,%d,%d,%d,%d,%d\n"
           s.router s.sessions s.route_maps s.stanzas s.questions s.probes
           s.boundaries s.retries s.classify_calls s.synthesize_calls
           s.spec_calls s.prompt_tokens s.completion_tokens s.cost_usd
           s.batch_sessions s.batch_intents s.batch_conflict_pairs
           s.batch_fast_path s.batch_questions_saved))
    t.routers;
  Buffer.contents b

let to_json t =
  Json.Obj
    [
      ( "routers",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("router", Json.String s.router);
                   ("sessions", Json.Int s.sessions);
                   ("route_maps", Json.Int s.route_maps);
                   ("stanzas", Json.Int s.stanzas);
                   ("questions", Json.Int s.questions);
                   ("probes", Json.Int s.probes);
                   ("boundaries", Json.Int s.boundaries);
                   ("retries", Json.Int s.retries);
                   ("classify_calls", Json.Int s.classify_calls);
                   ("synthesize_calls", Json.Int s.synthesize_calls);
                   ("spec_calls", Json.Int s.spec_calls);
                   ("llm_calls", Json.Int (llm_calls s));
                   ("prompt_tokens", Json.Int s.prompt_tokens);
                   ("completion_tokens", Json.Int s.completion_tokens);
                   ("cost_usd", Json.Float s.cost_usd);
                   ("batch_sessions", Json.Int s.batch_sessions);
                   ("batch_intents", Json.Int s.batch_intents);
                   ("batch_conflict_pairs", Json.Int s.batch_conflict_pairs);
                   ("batch_fast_path", Json.Int s.batch_fast_path);
                   ( "batch_questions_saved",
                     Json.Int s.batch_questions_saved );
                   ("boundary_ns", Json.Float s.boundary_ns);
                   ( "boundary_ns_per_question",
                     Json.Float
                       (s.boundary_ns /. float_of_int (max 1 s.questions)) );
                   ( "gauges",
                     Json.Obj
                       (List.map (fun (n, v) -> (n, Json.Float v)) s.gauges) );
                   ( "phases",
                     Json.List
                       (List.map
                          (fun p ->
                            Json.Obj
                              [
                                ("phase", Json.String p.phase);
                                ("total_ns", Json.Float p.total_ns);
                                ("count", Json.Int p.count);
                              ])
                          s.phases) );
                 ])
             t.routers) );
    ]
