(** Cisco [ip community-list] definitions, standard and expanded. *)

type standard_entry = { action : Action.t; communities : Bgp.Community.t list }

type expanded_entry = {
  action : Action.t;
  regex : Sre.Community_regex.t; (* compiled once at construction *)
}

type body =
  | Standard of standard_entry list
  | Expanded of expanded_entry list

type t = { name : string; body : body }

let standard name entries = { name; body = Standard entries }

let expanded name entries =
  let compile (action, source) =
    { action; regex = Sre.Community_regex.compile source }
  in
  { name; body = Expanded (List.map compile entries) }

(** First matching entry's action. A standard entry matches when the
    route carries every listed community; an expanded entry matches when
    at least one carried community satisfies the regex. *)
let eval t (communities : Bgp.Community.t list) =
  match t.body with
  | Standard entries ->
      List.find_map
        (fun e ->
          if
            List.for_all
              (fun c -> List.exists (Bgp.Community.equal c) communities)
              e.communities
          then Some e.action
          else None)
        entries
  | Expanded entries ->
      List.find_map
        (fun e ->
          if
            List.exists
              (fun c ->
                Sre.Community_regex.matches e.regex (Bgp.Community.to_pair c))
              communities
          then Some e.action
          else None)
        entries

let matches t communities = eval t communities = Some Action.Permit

(** The permit-entry regexes/communities, used by the symbolic engine. *)
let permitted_patterns t =
  match t.body with
  | Standard entries ->
      `Standard
        (List.filter_map
           (fun (e : standard_entry) ->
             if Action.equal e.action Action.Permit then Some e.communities
             else None)
           entries)
  | Expanded entries ->
      `Expanded
        (List.filter_map
           (fun e ->
             if Action.equal e.action Action.Permit then Some e.regex else None)
           entries)

let rename t name = { t with name }

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  (match t.body with
  | Standard entries ->
      Format.pp_print_list ~pp_sep:Format.pp_print_cut
        (fun fmt (e : standard_entry) ->
          Format.fprintf fmt "ip community-list standard %s %s %s" t.name
            (Action.to_string e.action)
            (String.concat " " (List.map Bgp.Community.to_string e.communities)))
        fmt entries
  | Expanded entries ->
      Format.pp_print_list ~pp_sep:Format.pp_print_cut
        (fun fmt (e : expanded_entry) ->
          Format.fprintf fmt "ip community-list expanded %s %s %s" t.name
            (Action.to_string e.action)
            (Sre.Community_regex.source e.regex))
        fmt entries);
  Format.fprintf fmt "@]"
