(* A recorded session: one JSONL flight-recorder log, loaded back as
   events plus enough identity (name, router) for aggregation. *)

module E = Telemetry.Event

type t = { name : string; path : string; events : E.t list }

let base_name path =
  let b = Filename.basename path in
  Filename.remove_extension b

(* The router a session ran for: the first ctx "router" label found in
   its events (stamped by Telemetry.with_context around each router's
   evaluation run), else the session name — a per-router log file named
   e4_R1.jsonl identifies itself even without context labels. *)
let router t =
  let from_ctx =
    List.find_map (fun e -> List.assoc_opt "router" e.E.ctx) t.events
  in
  Option.value from_ctx ~default:t.name

(* Tolerant parsing skips a malformed FINAL line only: a crashed or
   still-running recorder leaves at most one truncated line at the end
   of the file, while garbage earlier in the log means the file is not
   a recording and should be rejected loudly. *)
let parse_lines ~tolerant src =
  let lines = String.split_on_char '\n' src in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        if String.trim line = "" then go (lineno + 1) acc rest
        else
          let last_content =
            List.for_all (fun l -> String.trim l = "") rest
          in
          let err m = Error (Printf.sprintf "line %d: %s" lineno m) in
          let parsed =
            match Json.parse line with
            | Error m -> Error m
            | Ok j -> E.of_json j
          in
          (match parsed with
          | Ok e -> go (lineno + 1) (e :: acc) rest
          | Error m ->
              if tolerant && last_content then Ok (List.rev acc) else err m)
  in
  go 1 [] lines

let load_file ?(tolerant = false) path =
  match open_in_bin path with
  | exception Sys_error m -> Error m
  | ic ->
      let n = in_channel_length ic in
      let src = really_input_string ic n in
      close_in ic;
      Result.map
        (fun events -> { name = base_name path; path; events })
        (parse_lines ~tolerant src)

(* Expand each argument: a directory contributes its *.jsonl files in
   name order, anything else is taken as a log file. *)
let expand_paths paths =
  List.concat_map
    (fun p ->
      if Sys.file_exists p && Sys.is_directory p then
        Sys.readdir p |> Array.to_list |> List.sort String.compare
        |> List.filter (fun f -> Filename.check_suffix f ".jsonl")
        |> List.map (Filename.concat p)
      else [ p ])
    paths

let load ?tolerant paths =
  let ( let* ) r f = Result.bind r f in
  List.fold_left
    (fun acc path ->
      let* acc = acc in
      let* s =
        Result.map_error
          (fun m -> Printf.sprintf "%s: %s" path m)
          (load_file ?tolerant path)
      in
      Ok (s :: acc))
    (Ok []) (expand_paths paths)
  |> Result.map List.rev
