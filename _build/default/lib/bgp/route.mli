(** BGP route advertisements as analysed by route-maps.

    The attribute set mirrors the inputs shown in the paper's
    differential examples: network prefix, AS path, communities,
    local preference, metric (MED), next-hop, tag and weight. *)

type origin = Igp | Egp | Incomplete

type t = {
  prefix : Netaddr.Prefix.t;
  as_path : int list; (* leftmost = most recent hop *)
  communities : Community.t list; (* sorted, deduplicated *)
  local_pref : int;
  metric : int;
  next_hop : Netaddr.Ipv4.t;
  origin : origin;
  tag : int;
  weight : int;
}

val make :
  ?as_path:int list ->
  ?communities:Community.t list ->
  ?local_pref:int ->
  ?metric:int ->
  ?next_hop:Netaddr.Ipv4.t ->
  ?origin:origin ->
  ?tag:int ->
  ?weight:int ->
  Netaddr.Prefix.t ->
  t
(** Defaults match the paper's example route: empty AS path, no
    communities, local-pref 100, metric 0, next-hop 0.0.0.1, origin IGP,
    tag 0, weight 0. *)

val with_communities : t -> Community.t list -> t
(** Replace the community set (normalized). *)

val add_communities : t -> Community.t list -> t
val delete_communities : t -> (Community.t -> bool) -> t
val has_community : t -> Community.t -> bool
val prepend_as_path : t -> int list -> t

val origin_to_string : origin -> string
val compare : t -> t -> int
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Multi-line rendering in the paper's differential-example style. *)
