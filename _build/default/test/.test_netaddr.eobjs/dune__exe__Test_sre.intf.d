test/test_sre.mli:
