lib/workload/acl_gen.mli: Config Random
