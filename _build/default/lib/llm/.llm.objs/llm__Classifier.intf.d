lib/llm/classifier.mli:
