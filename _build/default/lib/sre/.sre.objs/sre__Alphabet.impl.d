lib/sre/alphabet.ml: Char Format Netaddr Option
