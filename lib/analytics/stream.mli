(** Streaming session analytics: fold JSONL logs into {!Report.Acc}
    aggregates incrementally, in constant memory per log.

    A {!file} is a tail-follower over one flight-recorder log: each
    {!poll_file} reads only the bytes appended since the previous poll,
    feeds every complete line through {!Report.Acc.add}, and holds back
    a trailing partial or malformed line under the same tolerant rule
    as {!Session.load_file} (a crashed or still-running recorder leaves
    at most one bad line, at the end; content after a malformed line is
    a fatal error). Peak memory is one accumulator plus one pending
    line per file, independent of log length — where
    {!Session.load_file} slurps the whole log.

    A {!dir} follows every [*.jsonl] in a directory, in sorted name
    order (new files are picked up on every poll), so a live E5 fleet
    run can be watched while routers are still being synthesized.

    Because {!Report.Acc.merge} is associative and file order is
    sorted, {!report_paths} folds file shards across a domain pool and
    still finishes byte-identically to a serial fold — and to the
    {!Session.load_file}-based {!Report.of_sessions}. *)

type file

val open_file : ?on_event:(Telemetry.Event.t -> unit) -> string -> file
(** No I/O happens until the first {!poll_file}. [on_event] is called
    on every parsed event, in log order, in addition to the fold (used
    by the streaming trace export). *)

val poll_file : file -> (int, string) result
(** Read everything appended since the last poll; returns the number
    of new events folded. An error ("line N: ..." garbage mid-file,
    vanished or shrunk file) is sticky: the file stops folding and
    every later poll returns the same error. *)

val file_path : file -> string
val file_name : file -> string (* basename without extension *)

val file_router : file -> string
(** First ctx ["router"] label seen, else {!file_name} — the same
    resolution as {!Session.router}. *)

val file_acc : file -> Report.Acc.t
val file_events : file -> int
val file_error : file -> string option

type dir

val open_dir : string -> dir

val poll : dir -> int
(** Rescan the directory for new [*.jsonl] logs, poll every follower,
    and return the number of new events folded (per-file errors are
    sticky and visible via {!file_error}). *)

val files : dir -> file list
(** Sorted by file name. *)

val report_of_dir : dir -> Report.t
(** The report over everything folded so far. Byte-identical to
    [Report.of_sessions] over the same (complete) logs. *)

val fold_file : string -> (string * Report.Acc.t, string) result
(** One-shot streaming fold of a whole log: [(file_name, acc)]. *)

val iter_file : string -> (Telemetry.Event.t -> unit) -> (int, string) result
(** One-shot streaming pass handing every event to the callback (e.g. a
    {!Trace.Writer}); returns the event count. Same tolerant final-line
    rule as the fold. *)

val report_paths :
  ?pool:Parallel.Pool.t -> string list -> (Report.t, string) result
(** One-shot report over logs and/or directories (directories expand to
    their [*.jsonl] files in sorted name order, as in {!Session.load}).
    With a pool, files are folded in parallel and merged in input
    order; the result is byte-identical at every pool size. *)
