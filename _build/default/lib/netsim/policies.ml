(** Checkers for the five global policies of the paper's Section 5
    evaluation, against a converged simulation of the Figure 3 network. *)

type result = { policy : string; holds : bool; detail : string }

let check_all (state : Simulator.state) =
  let learned router prefix =
    match Simulator.lookup state ~router ~prefix with
    | Some { learned_from = Some via; route; _ } -> Some (via, route)
    | _ -> None
  in
  (* 1. Reused prefixes are mutually invisible: each owner sees only its
     own origination, and no other router carries the reused prefix. *)
  let p1 =
    let locally_owned router =
      match Simulator.lookup state ~router ~prefix:Figure3.reused_prefix with
      | Some { learned_from = None; _ } -> true
      | _ -> false
    in
    let leaked =
      List.filter
        (fun r ->
          learned r Figure3.reused_prefix <> None)
        [ "M"; "DC"; "R1"; "R2"; "ISP1"; "ISP2" ]
    in
    {
      policy = "P1 reused prefixes mutually invisible";
      holds = locally_owned "M" && locally_owned "DC" && leaked = [];
      detail =
        (if leaked = [] then "no router learned 192.168.100.0/24 over BGP"
         else "leaked to: " ^ String.concat ", " leaked);
    }
  in
  (* 2. The service prefix is visible to M. *)
  let p2 =
    match learned "M" Figure3.service_prefix with
    | Some (via, _) ->
        {
          policy = "P2 10.1.0.0/16 visible to M";
          holds = true;
          detail = "learned via " ^ via;
        }
    | None ->
        {
          policy = "P2 10.1.0.0/16 visible to M";
          holds = false;
          detail = "absent from M's RIB";
        }
  in
  (* 3. M prefers the path through R1. *)
  let p3 =
    match learned "M" Figure3.service_prefix with
    | Some (via, route) ->
        {
          policy = "P3 M prefers R1 for 10.1.0.0/16";
          holds = via = "R1";
          detail =
            Printf.sprintf "best path via %s (local-pref %d)" via
              route.Bgp.Route.local_pref;
        }
    | None ->
        {
          policy = "P3 M prefers R1 for 10.1.0.0/16";
          holds = false;
          detail = "absent from M's RIB";
        }
  in
  (* 4. No bogon prefixes are advertised to the ISPs. *)
  let p4 =
    let offending router =
      List.filter_map
        (fun (p, (e : Simulator.rib_entry)) ->
          if
            e.learned_from <> None
            && List.exists (fun b -> Netaddr.Prefix.subset p b) Figure3.bogons
          then Some (Netaddr.Prefix.to_string p)
          else None)
        (Simulator.rib state router)
    in
    let bad = offending "ISP1" @ offending "ISP2" in
    {
      policy = "P4 no bogons advertised";
      holds = bad = [];
      detail =
        (if bad = [] then "ISP RIBs contain no bogon routes"
         else "bogons at ISPs: " ^ String.concat ", " bad);
    }
  in
  (* 5. ISP1 and ISP2 are mutually unreachable through our network. *)
  let p5 =
    let sees router prefix = learned router prefix <> None in
    let isp1_sees_isp2 = sees "ISP1" Figure3.isp2_prefix in
    let isp2_sees_isp1 = sees "ISP2" Figure3.isp1_prefix in
    {
      policy = "P5 ISP1 and ISP2 mutually unreachable via us";
      holds = (not isp1_sees_isp2) && not isp2_sees_isp1;
      detail =
        String.concat "; "
          (List.filter
             (fun s -> s <> "")
             [
               (if isp1_sees_isp2 then "ISP1 reaches 70.0.0.0/8" else "");
               (if isp2_sees_isp1 then "ISP2 reaches 60.0.0.0/8" else "");
             ])
        |> fun s -> if s = "" then "no cross-ISP leakage" else s;
    }
  in
  [ p1; p2; p3; p4; p5 ]

let all_hold results = List.for_all (fun r -> r.holds) results

let pp fmt results =
  List.iter
    (fun r ->
      Format.fprintf fmt "%-45s %s  (%s)@." r.policy
        (if r.holds then "PASS" else "FAIL")
        r.detail)
    results
