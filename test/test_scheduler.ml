(* The work-stealing scheduler: deque algebra, steal-stress
   determinism, nested submission, exception priority, and worker
   persistence (domains spawned once, deltas reset — not reallocated —
   between batches).

   Steal-stress mode (CLARIFY_STEAL_STRESS=1) seeds every task into
   slot 0's deque and routes every claim through the lock-free steal
   path, so these runs exercise maximal cross-worker contention — and
   must still be byte-identical to the serial run, because the
   experiment goldens are compared across --jobs values in CI. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

module Deque = Parallel.Deque

(* ------------------------------------------------------------------ *)
(* Deque unit tests                                                   *)
(* ------------------------------------------------------------------ *)

let test_deque_owner_thief_order () =
  let d = Deque.create ~capacity:8 () in
  List.iter (Deque.push d) [ 0; 1; 2; 3 ];
  check_int "owner pops newest" 3 (Deque.pop d);
  check_int "thief steals oldest" 0 (Deque.steal d);
  check_int "thief keeps fifo order" 1 (Deque.steal d);
  check_int "owner keeps lifo order" 2 (Deque.pop d);
  check_int "empty pop" Deque.empty (Deque.pop d);
  check_int "empty steal" Deque.empty (Deque.steal d)

let test_deque_bounded () =
  let d = Deque.create ~capacity:8 () in
  for i = 0 to 7 do
    Deque.push d i
  done;
  check_bool "push into a full deque raises" true
    (match Deque.push d 8 with
    | () -> false
    | exception Invalid_argument _ -> true);
  check_bool "negative ids rejected" true
    (match Deque.push (Deque.create ()) (-1) with
    | () -> false
    | exception Invalid_argument _ -> true);
  Deque.reset d ~ensure:100;
  check_int "reset empties" 0 (Deque.size d);
  check_bool "reset grows capacity" true (Deque.capacity d >= 100)

(* Four thieves hammering one deque from other domains while the owner
   pops: every id must be claimed exactly once across all five. *)
let test_deque_concurrent_claims () =
  let n = 2000 in
  let d = Deque.create ~capacity:n () in
  for i = n - 1 downto 0 do
    Deque.push d i
  done;
  let thief () =
    let mine = ref [] in
    let rec go misses =
      if misses < 10_000 then
        match Deque.steal d with
        | x when x >= 0 ->
            mine := x :: !mine;
            go 0
        | x when x = Deque.abort -> go misses
        | _ -> go (misses + 1)
    in
    go 0;
    !mine
  in
  let thieves = List.init 4 (fun _ -> Domain.spawn thief) in
  let owned = ref [] in
  let rec drain () =
    match Deque.pop d with
    | x when x >= 0 ->
        owned := x :: !owned;
        drain ()
    | _ -> if Deque.size d > 0 then drain ()
  in
  drain ();
  let claimed = !owned @ List.concat_map Domain.join thieves in
  check_int "every task claimed exactly once" n (List.length claimed);
  let sorted = List.sort_uniq compare claimed in
  check_bool "no id lost or duplicated" true
    (sorted = List.init n Fun.id)

(* ------------------------------------------------------------------ *)
(* Steal-stress determinism                                           *)
(* ------------------------------------------------------------------ *)

let with_stress f =
  let saved = Sys.getenv_opt Parallel.Pool.steal_stress_env in
  Unix.putenv Parallel.Pool.steal_stress_env "1";
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv Parallel.Pool.steal_stress_env
        (Option.value saved ~default:"0"))
    f

let test_stress_flag_roundtrip () =
  with_stress (fun () ->
      check_bool "stress visible" true (Parallel.Pool.steal_stress ()))

(* Boundary sweep: serial ≡ pooled ≡ pooled-under-stress, for both the
   incremental and naive engines. *)
let test_stress_boundaries_identical () =
  let corpus = Workload.Cloud.generate ~seed:7 () in
  let target =
    List.fold_left
      (fun (best : Config.Acl.t) (a : Config.Acl.t) ->
        if List.length a.rules > List.length best.rules then a else best)
      (List.hd corpus.Workload.Cloud.acls)
      corpus.Workload.Cloud.acls
  in
  let rule =
    match corpus.Workload.Cloud.acls with
    | _ :: (b : Config.Acl.t) :: _ -> List.hd b.rules
    | _ -> Alcotest.fail "corpus too small"
  in
  let pool = Parallel.Pool.create ~domains:4 () in
  List.iter
    (fun naive ->
      let serial = Engine.Compare_acls.adjacent_insertions ~naive ~target rule in
      let pooled =
        Engine.Compare_acls.adjacent_insertions ~naive ~pool ~target rule
      in
      let stressed =
        with_stress (fun () ->
            Engine.Compare_acls.adjacent_insertions ~naive ~pool ~target rule)
      in
      check_bool
        (Printf.sprintf "pooled sweep identical (naive=%b)" naive)
        true (serial = pooled);
      check_bool
        (Printf.sprintf "steal-stress sweep identical (naive=%b)" naive)
        true (serial = stressed))
    [ false; true ]

(* Batch sweep: per-candidate boundaries and the pairwise verdicts. *)
let test_stress_batch_identical () =
  let corpus = Workload.Cloud.generate ~seed:11 () in
  let target = List.hd corpus.Workload.Cloud.acls in
  let rules =
    match corpus.Workload.Cloud.acls with
    | _ :: (b : Config.Acl.t) :: (c : Config.Acl.t) :: _ ->
        (List.filteri (fun i _ -> i < 3) b.rules
        @ List.filteri (fun i _ -> i < 2) c.rules)
    | _ -> Alcotest.fail "corpus too small"
  in
  let pool = Parallel.Pool.create ~domains:4 () in
  let view (s : Engine.Compare_acls.batch_sweep) =
    (Array.to_list s.per_candidate, s.overlaps, s.conflicts)
  in
  let serial = view (Engine.Compare_acls.batch_insertions ~target rules) in
  let pooled =
    view (Engine.Compare_acls.batch_insertions ~pool ~target rules)
  in
  let stressed =
    with_stress (fun () ->
        view (Engine.Compare_acls.batch_insertions ~pool ~target rules))
  in
  check_bool "pooled batch identical" true (serial = pooled);
  check_bool "steal-stress batch identical" true (serial = stressed)

(* E5 fleet shard: router configs and question counts byte-identical
   under maximal steal contention. *)
let e5_view (r : Evaluation.E5_fleet.result) =
  List.map
    (fun (x : Evaluation.E5_fleet.router_result) ->
      (x.router, x.questions, Config.Parser.to_string x.config))
    r.results

let test_stress_e5_identical () =
  let serial = e5_view (Evaluation.E5_fleet.run ~routers:24 ()) in
  let pool = Parallel.Pool.create ~domains:4 () in
  let pooled = e5_view (Evaluation.E5_fleet.run ~pool ~routers:24 ()) in
  let stressed =
    with_stress (fun () ->
        e5_view (Evaluation.E5_fleet.run ~pool ~routers:24 ()))
  in
  check_bool "pooled fleet identical" true (serial = pooled);
  check_bool "steal-stress fleet identical" true (serial = stressed);
  (* The skewed fleet (first 2 routers carry 4x steps) must stay
     deterministic too — it is what the straggler bench legs compare. *)
  let skew = Some (2, 4) in
  let s2 = e5_view (Evaluation.E5_fleet.run ?skew ~routers:24 ()) in
  let p2 =
    with_stress (fun () ->
        e5_view (Evaluation.E5_fleet.run ?skew ~pool ~routers:24 ()))
  in
  check_bool "skewed steal-stress fleet identical" true (s2 = p2)

(* ------------------------------------------------------------------ *)
(* Nested submission                                                  *)
(* ------------------------------------------------------------------ *)

(* A batch sweep inside a fleet-shard-shaped outer map: the inner map
   sees it is already on a worker and runs inline (serial), so the
   scheduler never deadlocks on its one-batch-at-a-time lock and the
   combined result still equals the all-serial one. *)
let test_nested_submission () =
  let corpus = Workload.Cloud.generate ~seed:5 () in
  let target = List.hd corpus.Workload.Cloud.acls in
  let rules =
    List.filteri (fun i _ -> i < 3)
      (List.nth corpus.Workload.Cloud.acls 1).Config.Acl.rules
  in
  let pool = Parallel.Pool.create ~domains:4 () in
  let shard _i =
    let s = Engine.Compare_acls.batch_insertions ~pool ~target rules in
    (Array.to_list s.per_candidate, s.overlaps, s.conflicts)
  in
  let serial = shard 0 in
  let results = Parallel.Pool.map pool ~f:shard (List.init 6 Fun.id) in
  check_bool "inner sweep inside worker tasks matches serial" true
    (List.for_all (fun r -> r = serial) results);
  check_bool "not flagged as worker after the batch" false
    (Parallel.Pool.in_worker ())

(* ------------------------------------------------------------------ *)
(* Exception priority                                                 *)
(* ------------------------------------------------------------------ *)

exception Boom of int

let test_stress_exception_priority () =
  with_stress (fun () ->
      let pool = Parallel.Pool.create ~domains:4 () in
      let f x = if x mod 7 = 3 then raise (Boom x) else x in
      (match Parallel.Pool.map pool ~f (List.init 40 Fun.id) with
      | _ -> Alcotest.fail "exception was swallowed"
      | exception Boom x ->
          check_int "smallest failing input wins under stress" 3 x);
      Alcotest.(check (list int))
        "usable after stressed failure" [ 2; 4; 6 ]
        (Parallel.Pool.map pool ~f:(fun x -> 2 * x) [ 1; 2; 3 ]))

(* ------------------------------------------------------------------ *)
(* Worker persistence                                                 *)
(* ------------------------------------------------------------------ *)

(* Workers are spawned once and reused: after a shutdown (fresh slate),
   the first batch spawns domains - 1 workers and four more batches
   spawn none — both the process view and the metric stay flat. *)
let test_workers_persist_across_batches () =
  Parallel.Pool.shutdown ();
  Obs.enable ();
  Obs.reset ();
  let spawned_counter = Obs.Counter.make "parallel.domains_spawned" in
  let pool = Parallel.Pool.create ~domains:3 () in
  let batch () =
    ignore (Parallel.Pool.map pool ~f:(fun x -> x * x) (List.init 32 Fun.id))
  in
  batch ();
  let after_first = Parallel.Pool.spawned_workers () in
  let metric_first = Obs.Counter.value spawned_counter in
  for _ = 1 to 4 do
    batch ()
  done;
  let after_fifth = Parallel.Pool.spawned_workers () in
  let metric_fifth = Obs.Counter.value spawned_counter in
  Obs.disable ();
  check_int "first batch spawns domains-1 workers" 2 after_first;
  check_int "no further spawns across batches" 2 after_fifth;
  check_int "parallel.domains_spawned counts the spawns" 2 metric_first;
  check_int "parallel.domains_spawned stays flat" 2 metric_fifth

(* Steal metrics actually fire under stress: with every task in slot
   0's deque, the other workers can only obtain work by stealing. *)
let test_steals_observed_under_stress () =
  with_stress (fun () ->
      Obs.enable ();
      Obs.reset ();
      let pool = Parallel.Pool.create ~domains:4 () in
      ignore
        (Parallel.Pool.map pool
           ~f:(fun x ->
             (* enough work per task that thieves wake before it ends *)
             let r = ref 0 in
             for i = 0 to 20_000 do
               r := !r + (i * x)
             done;
             !r)
           (List.init 64 Fun.id));
      let steals =
        List.fold_left
          (fun acc d ->
            match
              Obs.Counter.find_labeled "parallel.steals"
                [ ("domain", string_of_int d) ]
            with
            | Some c -> acc + Obs.Counter.value c
            | None -> acc)
          0 [ 0; 1; 2; 3 ]
      in
      Obs.disable ();
      check_bool
        (Printf.sprintf "cross-worker steals recorded (%d)" steals)
        true (steals > 0))

(* Long-lived deltas are rewound between batches: a batch that allocates
   heavily leaves nothing behind for the next batch on the same base —
   every task of the second batch starts at the base boundary. *)
let test_delta_reset_between_batches () =
  let open Symbdd in
  let pool = Parallel.Pool.create ~domains:4 () in
  let base = Bdd.Manager.create () in
  Bdd.with_manager base (fun () ->
      ignore (Bvec.in_range (Bvec.sequential ~first:0 ~width:16) 5 9999));
  Bdd.Manager.freeze base;
  let allocate i =
    ignore
      (Bdd.sat_count ~nvars:16
         (Bvec.eq_const (Bvec.sequential ~first:0 ~width:16) i));
    i
  in
  ignore (Parallel.Pool.map ~bdd_base:base pool ~f:allocate (List.init 32 Fun.id));
  let leaked =
    Parallel.Pool.map ~bdd_base:base pool
      ~f:(fun _ ->
        (* [nodes] counts a delta's own unique table only; after the
           between-batch reset it must be back to the base boundary. *)
        let s = Bdd.Manager.stats (Bdd.manager ()) in
        (s.Bdd.Manager.nodes, s.Bdd.Manager.base_nodes))
      (List.init 32 Fun.id)
  in
  check_bool "no nodes leak across batches into reused deltas" true
    (List.for_all (fun (n, _) -> n = 0) leaked);
  check_bool "tasks really run on deltas of the shared base" true
    (List.for_all (fun (_, b) -> b > 0) leaked)

let () =
  Alcotest.run "scheduler"
    [
      ( "deque",
        [
          Alcotest.test_case "owner/thief order" `Quick
            test_deque_owner_thief_order;
          Alcotest.test_case "bounded + reset" `Quick test_deque_bounded;
          Alcotest.test_case "concurrent claims exactly once" `Quick
            test_deque_concurrent_claims;
        ] );
      ( "steal-stress determinism",
        [
          Alcotest.test_case "stress flag roundtrip" `Quick
            test_stress_flag_roundtrip;
          Alcotest.test_case "boundaries identical" `Slow
            test_stress_boundaries_identical;
          Alcotest.test_case "batch identical" `Slow
            test_stress_batch_identical;
          Alcotest.test_case "E5 fleet identical" `Slow
            test_stress_e5_identical;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "nested submission" `Slow test_nested_submission;
          Alcotest.test_case "exception priority under stress" `Quick
            test_stress_exception_priority;
          Alcotest.test_case "workers persist across batches" `Quick
            test_workers_persist_across_batches;
          Alcotest.test_case "steals observed under stress" `Quick
            test_steals_observed_under_stress;
          Alcotest.test_case "deltas reset between batches" `Quick
            test_delta_reset_between_batches;
        ] );
    ]
