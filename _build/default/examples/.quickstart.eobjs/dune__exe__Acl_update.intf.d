examples/acl_update.mli:
