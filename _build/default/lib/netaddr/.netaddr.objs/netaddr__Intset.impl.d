lib/netaddr/intset.ml: Format Hashtbl Int List Stdlib
