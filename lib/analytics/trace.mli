(** Chrome-trace (chrome://tracing / Perfetto) export of recorded
    sessions and live span buffers.

    Output is the Chromium Trace Event JSON format:
    [{"traceEvents": [...], "displayTimeUnit": "ms"}]. Span mirror
    events ([kind="span"], from {!Telemetry.span_sink}) become complete
    ["X"] events with [ts]/[dur] in microseconds; every other recorded
    event becomes an instant ["i"] tick named by its kind, with small
    scalar payload fields as hover args. Processes map to routers (the
    [ctx] ["router"] label, else [process]) and threads to the root
    segment of the span path, both named via ["M"] metadata events. *)

val of_events : ?process:string -> Telemetry.Event.t list -> Json.t
(** [process] (default ["clarify"]) names the process lane for events
    without a router context label. Events with [ts_ns = 0] (logs from
    before timestamps existed) fall back to their sequence number, one
    microsecond apart. *)

val of_spans : ?process:string -> Obs.Span.t list -> Json.t
(** Export a live span buffer ([Obs.spans ()]) without a recording. *)

(** Streaming export: events are written as they are fed, so a log
    never has to fit in memory (pair with {!Stream.iter_file}). The
    emitted JSON is semantically identical to {!of_events}, with lane
    metadata interleaved at first sight instead of collected first. *)
module Writer : sig
  type t

  val create : ?process:string -> out_channel -> t
  (** Writes the traceEvents header immediately. *)

  val event : t -> Telemetry.Event.t -> unit
  val close : t -> unit (* writes the footer; idempotent *)
end
