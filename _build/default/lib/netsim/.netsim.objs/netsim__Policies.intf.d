lib/netsim/policies.mli: Format Simulator
