(** Extended regular expressions over a predicate alphabet, with
    Brzozowski derivatives and lazy symbolic DFA exploration.

    The constructors normalize aggressively (ACI laws, identities) so
    that the set of derivatives of any regex is finite, which makes
    emptiness and witness search terminate. *)

exception Too_many_states

module Make (A : Alphabet.S) = struct
  type re =
    | Empty
    | Eps
    | Pred of A.pred
    | Cat of re * re (* right-nested *)
    | Alt of re list (* sorted, deduped, length >= 2 *)
    | Inter of re list (* sorted, deduped, length >= 2 *)
    | Star of re
    | Compl of re

  let rec compare_re a b =
    match (a, b) with
    | Empty, Empty | Eps, Eps -> 0
    | Empty, _ -> -1
    | _, Empty -> 1
    | Eps, _ -> -1
    | _, Eps -> 1
    | Pred p, Pred q -> A.compare p q
    | Pred _, _ -> -1
    | _, Pred _ -> 1
    | Cat (a1, a2), Cat (b1, b2) -> (
        match compare_re a1 b1 with 0 -> compare_re a2 b2 | c -> c)
    | Cat _, _ -> -1
    | _, Cat _ -> 1
    | Alt xs, Alt ys -> List.compare compare_re xs ys
    | Alt _, _ -> -1
    | _, Alt _ -> 1
    | Inter xs, Inter ys -> List.compare compare_re xs ys
    | Inter _, _ -> -1
    | _, Inter _ -> 1
    | Star x, Star y -> compare_re x y
    | Star _, _ -> -1
    | _, Star _ -> 1
    | Compl x, Compl y -> compare_re x y

  let equal_re a b = compare_re a b = 0
  let empty = Empty
  let eps = Eps
  let all = Compl Empty (* every word *)

  let pred p = if A.is_empty p then Empty else Pred p
  let any = pred A.tt

  let rec cat a b =
    match (a, b) with
    | Empty, _ | _, Empty -> Empty
    | Eps, r | r, Eps -> r
    | Cat (x, y), b -> Cat (x, cat y b)
    | _ -> Cat (a, b)

  let sort_dedup rs =
    List.sort_uniq compare_re rs

  let alt_list rs =
    let rs =
      List.concat_map (function Alt xs -> xs | r -> [ r ]) rs
      |> List.filter (fun r -> r <> Empty)
      |> sort_dedup
    in
    if List.exists (fun r -> equal_re r all) rs then all
    else
      match rs with [] -> Empty | [ r ] -> r | rs -> Alt rs

  let alt a b = alt_list [ a; b ]

  let inter_list rs =
    let rs =
      List.concat_map (function Inter xs -> xs | r -> [ r ]) rs
      |> List.filter (fun r -> not (equal_re r all))
      |> sort_dedup
    in
    if List.mem Empty rs then Empty
    else match rs with [] -> all | [ r ] -> r | rs -> Inter rs

  let inter a b = inter_list [ a; b ]

  let star = function
    | Empty | Eps -> Eps
    | Star _ as r -> r
    | r -> Star r

  let plus r = cat r (star r)
  let opt r = alt eps r
  let compl = function Compl r -> r | r -> Compl r

  let rec nullable = function
    | Empty | Pred _ -> false
    | Eps | Star _ -> true
    | Cat (a, b) -> nullable a && nullable b
    | Alt rs -> List.exists nullable rs
    | Inter rs -> List.for_all nullable rs
    | Compl r -> not (nullable r)

  let rec deriv c = function
    | Empty | Eps -> Empty
    | Pred p -> if A.mem c p then Eps else Empty
    | Cat (a, b) ->
        let d = cat (deriv c a) b in
        if nullable a then alt d (deriv c b) else d
    | Alt rs -> alt_list (List.map (deriv c) rs)
    | Inter rs -> inter_list (List.map (deriv c) rs)
    | Star r as s -> cat (deriv c r) s
    | Compl r -> compl (deriv c r)

  let matches r word = nullable (List.fold_left (fun r c -> deriv c r) r word)

  (* Predicates that can guard the first symbol of a word in [r]. *)
  let rec head_preds = function
    | Empty | Eps -> []
    | Pred p -> [ p ]
    | Cat (a, b) ->
        if nullable a then head_preds a @ head_preds b else head_preds a
    | Alt rs | Inter rs -> List.concat_map head_preds rs
    | Star r | Compl r -> head_preds r

  (* Satisfiable boolean combinations of the given predicates; they
     partition the alphabet. *)
  let minterms preds =
    let split acc p =
      List.concat_map
        (fun m ->
          let mp = A.conj m p and mn = A.conj m (A.neg p) in
          List.filter (fun q -> not (A.is_empty q)) [ mp; mn ])
        acc
    in
    List.fold_left split [ A.tt ] preds
    |> List.sort_uniq A.compare

  module Re_map = Map.Make (struct
    type t = re

    let compare = compare_re
  end)

  type dfa = {
    states : re array; (* state id -> canonical regex *)
    accepting : bool array;
    trans : (A.pred * int) list array; (* total: minterms cover alphabet *)
  }

  let default_state_limit = 20_000

  (* Lazy breadth-first determinization. *)
  let build_dfa ?(state_limit = default_state_limit) r0 =
    let ids = ref (Re_map.singleton r0 0) in
    let rev = ref [ r0 ] in
    let n = ref 1 in
    let trans_acc = ref [] (* (src, (pred, dst) list) *) in
    let queue = Queue.create () in
    Queue.add (0, r0) queue;
    while not (Queue.is_empty queue) do
      let src, r = Queue.pop queue in
      let outs =
        List.map
          (fun m ->
            let c =
              match A.witness m with
              | Some c -> c
              | None -> assert false (* minterms are satisfiable *)
            in
            let r' = deriv c r in
            let dst =
              match Re_map.find_opt r' !ids with
              | Some i -> i
              | None ->
                  let i = !n in
                  if i >= state_limit then raise Too_many_states;
                  ids := Re_map.add r' i !ids;
                  rev := r' :: !rev;
                  incr n;
                  Queue.add (i, r') queue;
                  i
            in
            (m, dst))
          (minterms (head_preds r))
      in
      trans_acc := (src, outs) :: !trans_acc
    done;
    let states = Array.of_list (List.rev !rev) in
    let accepting = Array.map nullable states in
    let trans = Array.make !n [] in
    List.iter (fun (src, outs) -> trans.(src) <- outs) !trans_acc;
    { states; accepting; trans }

  let dfa_accepts dfa word =
    let rec go s = function
      | [] -> dfa.accepting.(s)
      | c :: rest -> (
          match
            List.find_opt (fun (p, _) -> A.mem c p) dfa.trans.(s)
          with
          | Some (_, s') -> go s' rest
          | None -> false (* symbol outside every head predicate *))
    in
    go 0 word

  (* Shortest accepted word, by BFS over the DFA. *)
  let shortest_witness ?state_limit r0 =
    let dfa = build_dfa ?state_limit r0 in
    let n = Array.length dfa.states in
    let visited = Array.make n false in
    let queue = Queue.create () in
    Queue.add (0, []) queue;
    visited.(0) <- true;
    let result = ref None in
    (try
       while not (Queue.is_empty queue) do
         let s, word = Queue.pop queue in
         if dfa.accepting.(s) then begin
           result := Some (List.rev word);
           raise Exit
         end;
         List.iter
           (fun (p, s') ->
             if not visited.(s') then begin
               visited.(s') <- true;
               match A.witness p with
               | Some c -> Queue.add (s', c :: word) queue
               | None -> ()
             end)
           dfa.trans.(s)
       done
     with Exit -> ());
    !result

  let is_empty_lang ?state_limit r = Option.is_none (shortest_witness ?state_limit r)

  (* Up to [limit] accepted words in breadth-first (shortest-first)
     order. Each DFA edge contributes one representative symbol, so this
     enumerates distinct witness *shapes* rather than all words. *)
  let witnesses ?state_limit ~limit r0 =
    let dfa = build_dfa ?state_limit r0 in
    let out = ref [] in
    let count = ref 0 in
    let queue = Queue.create () in
    Queue.add (0, [], 0) queue;
    let max_len = Array.length dfa.states + 8 in
    while (not (Queue.is_empty queue)) && !count < limit do
      let s, word, len = Queue.pop queue in
      if dfa.accepting.(s) then begin
        out := List.rev word :: !out;
        incr count
      end;
      if len < max_len then
        List.iter
          (fun (p, s') ->
            match A.witness p with
            | Some c -> Queue.add (s', c :: word, len + 1) queue
            | None -> ())
          dfa.trans.(s)
    done;
    List.rev !out

  let rec pp fmt = function
    | Empty -> Format.pp_print_string fmt "∅"
    | Eps -> Format.pp_print_string fmt "ε"
    | Pred p -> A.pp_pred fmt p
    | Cat (a, b) -> Format.fprintf fmt "%a·%a" pp a pp b
    | Alt rs ->
        Format.fprintf fmt "(%a)"
          (Format.pp_print_list
             ~pp_sep:(fun f () -> Format.pp_print_string f "|")
             pp)
          rs
    | Inter rs ->
        Format.fprintf fmt "(%a)"
          (Format.pp_print_list
             ~pp_sep:(fun f () -> Format.pp_print_string f "&")
             pp)
          rs
    | Star r -> Format.fprintf fmt "(%a)*" pp r
    | Compl r -> Format.fprintf fmt "¬(%a)" pp r
end
