lib/config/packet.mli: Format Netaddr
