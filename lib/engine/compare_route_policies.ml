(** Behavioural diff of two route-maps — the analogue of Batfish's
    [compareRoutePolicies].

    The two maps may live in different databases (e.g. two candidate
    insertions of a synthesized stanza, each carrying freshly named
    ancillary lists). Differences are reported as concrete input routes
    together with both outcomes. *)

open Symbdd
module Ctx = Symbolic.Route_ctx

type difference = {
  route : Bgp.Route.t;
  result_a : Config.Semantics.route_result;
  result_b : Config.Semantics.route_result;
  stanza_a : int option; (* seq of the handling stanza, None = implicit *)
  stanza_b : int option;
}

let context ~db_a ~db_b rm_a rm_b =
  Ctx.create [ (db_a, [ rm_a ]); (db_b, [ rm_b ]) ]

(* Apply a canonical community pipeline to a concrete community set. *)
let apply_comm_op db op cs =
  match op with
  | Config.Transform.Comm_id -> List.sort_uniq Bgp.Community.compare cs
  | Config.Transform.Comm_const s -> s
  | Config.Transform.Comm_update { delete; add } ->
      let survives c =
        not
          (List.exists
             (fun name ->
               match Config.Database.community_list db name with
               | Some cl -> Config.Community_list.matches cl [ c ]
               | None -> false)
             delete)
      in
      List.sort_uniq Bgp.Community.compare (add @ List.filter survives cs)

(* Community sets (as subsets of the universe) on which the two
   pipelines produce different outputs: candidates are the empty set,
   every singleton, and the full universe. *)
let separating_sets ctx ~db_a ~db_b op_a op_b =
  let universe = Array.to_list ctx.Ctx.comm_universe in
  let candidates =
    ([] :: List.map (fun u -> [ u ]) universe) @ [ universe ]
  in
  List.filter
    (fun s -> apply_comm_op db_a op_a s <> apply_comm_op db_b op_b s)
    candidates

(* Force a route whose community set is exactly [s]. *)
let route_with_comms ctx region s =
  let cube =
    Bdd.conj_list
      (List.mapi
         (fun i u ->
           if List.exists (Bgp.Community.equal u) s then
             Bdd.var (Ctx.atom_base + i)
           else Bdd.nvar (Ctx.atom_base + i))
         (Array.to_list ctx.Ctx.comm_universe))
  in
  Ctx.to_route ctx (Bdd.conj region cube)

(* Pick an example route from a region, preferring one that exposes
   community-transform differences when the two pipelines differ. *)
let sample_route ctx ~db_a ~db_b op_a op_b region =
  let targeted =
    if Config.Transform.comm_op_equal db_a db_b op_a op_b then None
    else
      List.find_map
        (fun s -> route_with_comms ctx region s)
        (separating_sets ctx ~db_a ~db_b op_a op_b)
  in
  match targeted with Some r -> Some r | None -> Ctx.to_route ctx region

let concrete_results ~db_a ~db_b rm_a rm_b route =
  ( Config.Semantics.eval_route_map db_a rm_a route,
    Config.Semantics.eval_route_map db_b rm_b route )

(** All behavioural differences, one example per differing pair of
    execution cells, capped at [limit]. *)
let compare ?(limit = max_int) ~db_a ~db_b (rm_a : Config.Route_map.t)
    (rm_b : Config.Route_map.t) =
  Obs.Counter.incr Metrics.compare_route_policies_calls;
  let ctx = context ~db_a ~db_b rm_a rm_b in
  let cells_a = Ctx.exec ctx db_a rm_a in
  let cells_b = Ctx.exec ctx db_b rm_b in
  let differences = ref [] in
  let count = ref 0 in
  let emit route (ra, rb) sa sb =
    if not (Config.Semantics.route_result_equal ra rb) then begin
      differences :=
        { route; result_a = ra; result_b = rb; stanza_a = sa; stanza_b = sb }
        :: !differences;
      incr count
    end
  in
  List.iter
    (fun (ca : Ctx.cell) ->
      List.iter
        (fun (cb : Ctx.cell) ->
          if !count < limit then begin
            let region = Bdd.conj ca.guard cb.guard in
            let maybe_differs =
              match (ca.action, cb.action) with
              | Config.Action.Deny, Config.Action.Deny -> false
              | Config.Action.Permit, Config.Action.Permit ->
                  not
                    (Config.Transform.equal ~db1:db_a ~db2:db_b
                       (Config.Transform.of_sets db_a ca.sets)
                       (Config.Transform.of_sets db_b cb.sets))
              | _ -> true
            in
            if maybe_differs then
              let op_a = (Config.Transform.of_sets db_a ca.sets).communities in
              let op_b = (Config.Transform.of_sets db_b cb.sets).communities in
              match sample_route ctx ~db_a ~db_b op_a op_b region with
              | None -> ()
              | Some route ->
                  emit route
                    (concrete_results ~db_a ~db_b rm_a rm_b route)
                    ca.stanza_seq cb.stanza_seq
          end)
        cells_b)
    cells_a;
  List.rev !differences

(** First behavioural difference, if any. *)
let first_difference ~db_a ~db_b rm_a rm_b =
  match compare ~limit:1 ~db_a ~db_b rm_a rm_b with
  | [] -> None
  | d :: _ -> Some d

let equal_behavior ~db_a ~db_b rm_a rm_b =
  first_difference ~db_a ~db_b rm_a rm_b = None

let pp_difference fmt d =
  Format.fprintf fmt
    "@[<v>Input route:@ %a@ @ OPTION A:@ %a@ @ OPTION B:@ %a@]" Bgp.Route.pp
    d.route Config.Semantics.pp_route_result d.result_a
    Config.Semantics.pp_route_result d.result_b
