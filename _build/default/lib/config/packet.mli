(** IPv4 packet headers as matched by extended access lists. *)

type protocol = Ip | Tcp | Udp | Icmp | Proto of int

type t = {
  src : Netaddr.Ipv4.t;
  dst : Netaddr.Ipv4.t;
  protocol : protocol; (* [Ip] never appears in a concrete packet *)
  src_port : int; (* meaningful for tcp/udp only *)
  dst_port : int;
  established : bool; (* TCP ACK or RST set *)
}

val protocol_number : protocol -> int
(** IANA protocol number; [Ip] (the match-any wildcard) maps to 0. *)

val protocol_of_number : int -> protocol
val protocol_to_string : protocol -> string
val protocol_of_string : string -> protocol option

val has_ports : protocol -> bool
(** Do port specifiers make sense for this protocol (tcp/udp)? *)

val make :
  ?protocol:protocol ->
  ?src_port:int ->
  ?dst_port:int ->
  ?established:bool ->
  src:Netaddr.Ipv4.t ->
  dst:Netaddr.Ipv4.t ->
  unit ->
  t
(** Defaults: TCP, ports 0, not established. *)

val pp : Format.formatter -> t -> unit
