(* Randomized end-to-end pipeline property tests.

   For a random existing configuration and a random single-stanza
   intent, running the full Clarify pipeline with the "always prefer the
   new stanza" user must produce a configuration that satisfies the
   paper's incremental-update conditions on every probe route:

   - routes matching the intent's spec get exactly the intent's
     behaviour (conditions 1-2, new-first);
   - routes not matching the spec behave exactly as before (condition 1).

   A second property checks the symmetric "always keep existing
   behaviour" user, and a third that injected faults never change the
   final result, only the number of attempts. *)

open Config
module I = Llm.Intent
module D = Clarify.Disambiguator
module P = Clarify.Pipeline

let pfx = Netaddr.Prefix.of_string_exn
let comm = Bgp.Community.of_string_exn

(* ------------------------------------------------------------------ *)
(* Generators                                                         *)
(* ------------------------------------------------------------------ *)

let gen_action = QCheck.Gen.oneofl [ Action.Permit; Action.Deny ]

(* A small existing configuration: 1-3 stanzas over a fixed pool of
   lists, guaranteeing interesting overlap structure with the intents
   below. *)
let base_lists =
  {|ip prefix-list WIDE permit 10.0.0.0/8 le 24
ip prefix-list NARROW permit 10.1.0.0/16 le 32
ip prefix-list OTHER permit 99.0.0.0/8 le 16
ip as-path access-list FROM32 permit _32$
ip community-list expanded GOLD permit _300:3_
|}

let gen_existing_map =
  QCheck.Gen.(
    list_size (int_range 1 3)
      (pair gen_action
         (oneofl
            [
              [ Route_map.Match_prefix_list [ "WIDE" ] ];
              [ Route_map.Match_prefix_list [ "NARROW" ] ];
              [ Route_map.Match_prefix_list [ "OTHER" ] ];
              [ Route_map.Match_as_path [ "FROM32" ] ];
              [ Route_map.Match_community [ "GOLD" ] ];
              [ Route_map.Match_local_pref 300 ];
              [];
            ]))
    >>= fun stanzas ->
    let rm =
      Route_map.make "TARGET"
        (List.mapi
           (fun i (action, matches) ->
             Route_map.stanza ~seq:((i + 1) * 10) ~matches action)
           stanzas)
    in
    return rm)

let gen_intent =
  QCheck.Gen.(
    gen_action >>= fun action ->
    oneofl
      [
        [ Netaddr.Prefix_range.make (pfx "10.0.0.0/8") ~ge:None ~le:(Some 16) ];
        [ Netaddr.Prefix_range.make (pfx "10.1.0.0/16") ~ge:None ~le:(Some 24) ];
        [ Netaddr.Prefix_range.exact (pfx "99.0.0.0/8") ];
        [];
      ]
    >>= fun prefixes ->
    oneofl [ []; [ comm "300:3" ]; [ comm "65000:7" ] ] >>= fun communities ->
    oneofl [ None; Some 32; Some 77 ] >>= fun as_path_origin ->
    oneofl [ []; [ Route_map.Set_metric 55 ]; [ Route_map.Set_local_pref 200 ] ]
    >>= fun sets ->
    (* A completely unconstrained deny with no sets could synthesize an
       empty-match deny stanza: fine, keep it. *)
    return
      {
        I.action;
        prefixes;
        communities;
        as_path_origin;
        as_path_contains = None;
        local_pref = None;
        metric_match = None;
        tag_match = None;
        sets;
      })

let gen_probe_route =
  QCheck.Gen.(
    oneofl
      [
        pfx "10.0.0.0/8"; pfx "10.0.0.0/12"; pfx "10.1.0.0/16";
        pfx "10.1.2.0/24"; pfx "10.1.2.0/28"; pfx "99.0.0.0/8";
        pfx "99.5.0.0/16"; pfx "200.0.0.0/8";
      ]
    >>= fun prefix ->
    oneofl [ []; [ 32 ]; [ 44; 32 ]; [ 77 ]; [ 44 ] ] >>= fun as_path ->
    oneofl [ []; [ comm "300:3" ]; [ comm "65000:7" ]; [ comm "300:3"; comm "65000:7" ] ]
    >>= fun communities ->
    oneofl [ 100; 300 ] >>= fun local_pref ->
    return (Bgp.Route.make ~as_path ~communities ~local_pref prefix))

let gen_scenario =
  QCheck.Gen.(
    triple gen_existing_map gen_intent (list_size (return 40) gen_probe_route))

let arb_scenario =
  QCheck.make
    ~print:(fun (rm, intent, _) ->
      Format.asprintf "%a@.intent: %s" Route_map.pp rm
        (I.to_prompt (I.Route_map intent)))
    gen_scenario

let setup rm =
  match Parser.parse base_lists with
  | Ok db -> Database.add_route_map db rm
  | Error m -> failwith m

(* The behaviour the intent demands on a route it matches. *)
let intended_result db (intent : I.route_map_intent) r =
  match intent.I.action with
  | Action.Deny -> Semantics.Reject
  | Action.Permit -> Semantics.Accept (Semantics.apply_sets db r intent.I.sets)

let run_pipeline ?(faults = []) ~oracle rm intent =
  let db = setup rm in
  let llm = Llm.Mock_llm.create ~faults () in
  P.run_route_map_update ~llm ~oracle ~db ~target:"TARGET"
    ~prompt:(I.to_prompt (I.Route_map intent))
    ()

let prop_new_first_semantics =
  QCheck.Test.make ~name:"pipeline + always-new realizes the intent on top"
    ~count:150 arb_scenario
    (fun (rm, intent, probes) ->
      let db = setup rm in
      let spec = I.spec_of_route_map intent in
      match run_pipeline ~oracle:D.always_new rm intent with
      | Error e -> QCheck.Test.fail_reportf "pipeline: %s" (P.error_to_string e)
      | Ok report ->
          List.for_all
            (fun r ->
              let final =
                Semantics.eval_route_map report.P.db report.P.map r
              in
              let expected =
                if Engine.Spec.matches spec r then
                  intended_result report.P.db intent r
                else Semantics.eval_route_map db rm r
              in
              Semantics.route_result_equal final expected)
            probes)

let prop_old_first_preserves =
  QCheck.Test.make
    ~name:"pipeline + always-old never changes handled routes" ~count:150
    arb_scenario
    (fun (rm, intent, probes) ->
      let db = setup rm in
      match run_pipeline ~oracle:D.always_old rm intent with
      | Error e -> QCheck.Test.fail_reportf "pipeline: %s" (P.error_to_string e)
      | Ok report ->
          List.for_all
            (fun r ->
              (* Any route the original map handled (matched by some
                 stanza) must behave exactly as before. *)
              match Semantics.matching_stanza db rm r with
              | None -> true
              | Some _ ->
                  Semantics.route_result_equal
                    (Semantics.eval_route_map report.P.db report.P.map r)
                    (Semantics.eval_route_map db rm r))
            probes)

let prop_faults_only_cost_attempts =
  QCheck.Test.make
    ~name:"injected faults change attempts, never the outcome" ~count:75
    (QCheck.pair arb_scenario (QCheck.make QCheck.Gen.(int_range 1 3)))
    (fun ((rm, intent, probes), n_faults) ->
      let faults = Llm.Fault_injector.schedule ~seed:5 ~faulty_attempts:n_faults in
      match
        ( run_pipeline ~oracle:D.always_new rm intent,
          run_pipeline ~faults ~oracle:D.always_new rm intent )
      with
      | Ok clean, Ok faulty ->
          clean.P.synthesis_attempts = 1
          && faulty.P.synthesis_attempts >= 1
          && List.for_all
               (fun r ->
                 Semantics.route_result_equal
                   (Semantics.eval_route_map clean.P.db clean.P.map r)
                   (Semantics.eval_route_map faulty.P.db faulty.P.map r))
               probes
      | Error e, _ | _, Error e ->
          QCheck.Test.fail_reportf "pipeline: %s" (P.error_to_string e))

let prop_clean_llm_single_pass =
  QCheck.Test.make ~name:"clean LLM verifies in a single pass" ~count:150
    arb_scenario
    (fun (rm, intent, _) ->
      match run_pipeline ~oracle:D.always_new rm intent with
      | Ok report ->
          report.P.synthesis_attempts = 1 && report.P.llm_calls = 3
      | Error e -> QCheck.Test.fail_reportf "pipeline: %s" (P.error_to_string e))

let prop_question_count_logarithmic =
  QCheck.Test.make ~name:"questions <= ceil(log2(boundaries)) + 1" ~count:150
    arb_scenario
    (fun (rm, intent, _) ->
      match run_pipeline ~oracle:D.always_new rm intent with
      | Ok report ->
          let k = report.P.boundaries in
          let bound =
            if k = 0 then 0
            else
              let rec log2 n = if n <= 1 then 0 else 1 + log2 ((n + 1) / 2) in
              log2 k + 1
          in
          List.length report.P.questions <= bound
      | Error e -> QCheck.Test.fail_reportf "pipeline: %s" (P.error_to_string e))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "pipeline-random"
    [
      ( "end-to-end",
        [
          q prop_new_first_semantics;
          q prop_old_first_preserves;
          q prop_faults_only_cost_attempts;
          q prop_clean_llm_single_pass;
          q prop_question_count_logarithmic;
        ] );
    ]
