(** Observability counters for the symbolic engine.

    Defined here (and referenced from every engine analysis) so that a
    single module owns the naming scheme and the BDD allocation hook is
    wired exactly once. *)

let search_filters_calls =
  Obs.Counter.make "engine.search_filters.solver_calls"
    ~help:"searchFilters invocations (search/differ/verify_rule)"

let search_route_policies_calls =
  Obs.Counter.make "engine.search_route_policies.solver_calls"
    ~help:"searchRoutePolicies invocations (search/verify_stanza)"

let compare_route_policies_calls =
  Obs.Counter.make "engine.compare_route_policies.solver_calls"
    ~help:"compareRoutePolicies invocations"

let compare_acls_calls =
  Obs.Counter.make "engine.compare_acls.solver_calls"
    ~help:"compareAcls invocations"

let adjacent_insertions_calls =
  Obs.Counter.make "engine.adjacent_insertions.calls"
    ~help:"batch adjacent-insertion analyses (one per boundary sweep)"

let adjacent_contexts =
  Obs.Counter.make "engine.adjacent_insertions.contexts_built"
    ~help:
      "symbolic contexts built while finding boundaries (1 per sweep \
       incrementally, n per sweep naively)"

let adjacent_prefix_reuse =
  Obs.Counter.make "engine.adjacent_insertions.prefix_cells_reused"
    ~help:
      "insertion positions served from a shared prefix execution instead \
       of a fresh two-map re-execution"

let boundary_ns =
  Obs.Histogram.make "engine.adjacent_insertions.boundary_ns"
    ~help:"wall time of one full boundary sweep (all insertion positions)"

let batch_intents =
  Obs.Counter.make "engine.batch.intents"
    ~help:"intents processed by batch synthesis runs"

let batch_conflict_pairs =
  Obs.Counter.make "engine.batch.conflict_pairs"
    ~help:"genuine inter-intent conflict pairs found by batch sweeps"

let batch_questions_saved =
  Obs.Counter.make "engine.batch.questions_saved"
    ~help:
      "disambiguation questions answered from the batch answer cache \
       instead of being asked again"

let batch_ns =
  Obs.Histogram.make "engine.batch.batch_ns"
    ~help:"wall time of one full batch synthesis run (all intents)"

let bdd_nodes =
  Obs.Counter.make "bdd.nodes_allocated"
    ~help:"fresh BDD nodes allocated in this domain's unique table"

let cache_hits =
  Obs.Counter.make "bdd.compile_cache.hits"
    ~help:"symbolic compilation cache hits (ACL rules, prefix lists)"

let cache_misses =
  Obs.Counter.make "bdd.compile_cache.misses"
    ~help:"symbolic compilation cache misses"

(* The hooks are installed only while the layer is enabled, so the BDD
   allocation and cache-probe paths stay a single [match] when
   observability is off. They go on the calling domain's manager —
   worker domains install their own per-domain labeled hooks (see
   [Parallel.Pool]). *)
let () =
  Obs.subscribe_state (fun on ->
      Symbdd.Bdd.set_alloc_hook
        (if on then Some (fun () -> Obs.Counter.incr bdd_nodes) else None);
      Symbdd.Bdd.set_cache_hook
        (if on then
           Some
             (fun hit ->
               Obs.Counter.incr (if hit then cache_hits else cache_misses))
         else None))

let manager_nodes = Obs.Counter.make "bdd.manager.nodes"
let manager_memo = Obs.Counter.make "bdd.manager.memo_entries"
let manager_cache_entries = Obs.Counter.make "bdd.manager.cache_entries"

(* Copy the current manager's size gauges into counters so `clarify
   obs` snapshots show where BDD memory stands. Counters are monotonic,
   so each publish raises the counter to the current gauge when it has
   grown (diffed against the counter's own value, which survives
   [Obs.reset] correctly: the counter zeroes and the next publish
   re-raises it). After a [Manager.reset] shrinks a gauge the counter
   holds its high-water mark. *)
let publish_manager_stats () =
  let s = Symbdd.Bdd.Manager.stats (Symbdd.Bdd.manager ()) in
  let memo =
    s.Symbdd.Bdd.Manager.neg_memo + s.Symbdd.Bdd.Manager.and_memo
    + s.Symbdd.Bdd.Manager.xor_memo + s.Symbdd.Bdd.Manager.restrict_memo
  in
  let raise_to counter gauge =
    let d = gauge - Obs.Counter.value counter in
    if d > 0 then Obs.Counter.incr ~by:d counter
  in
  raise_to manager_nodes s.Symbdd.Bdd.Manager.nodes;
  raise_to manager_memo memo;
  raise_to manager_cache_entries s.Symbdd.Bdd.Manager.cache_entries
