lib/workload/route_map_gen.ml: Config List Netaddr Printf
