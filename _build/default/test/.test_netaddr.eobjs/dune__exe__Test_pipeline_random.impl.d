test/test_pipeline_random.ml: Action Alcotest Bgp Clarify Config Database Engine Format List Llm Netaddr Parser QCheck QCheck_alcotest Route_map Semantics
