(** Synthetic route-map generation with exact overlap accounting.

    Building blocks:
    - [disjoint] stanzas each matching a private exact prefix: no
      overlaps;
    - [window] pairs: two stanzas whose prefix-lists share a base prefix
      with nested length windows, one overlap per pair (conflicting when
      the actions differ);
    - an optional [catch_all] permit stanza with no match clauses, which
      overlaps every other stanza. *)

let ip = Netaddr.Ipv4.of_octets

type built = {
  db : Config.Database.t; (* accumulated prefix lists *)
  route_map : Config.Route_map.t;
}

let add_prefix_list db name range =
  Config.Database.add_prefix_list db
    (Config.Prefix_list.make name
       [ Config.Prefix_list.entry ~seq:10 ~action:Config.Action.Permit range ])

(** Build one route-map named [name] into [db].
    [disjoint]: count of non-overlapping stanzas.
    [windows]: list of action pairs, one overlapping stanza pair each.
    [catch_all]: append a match-everything permit stanza. *)
let make ~db ~name ~disjoint ~windows ~catch_all =
  let db = ref db in
  let stanzas = ref [] in
  let seq = ref 0 in
  let next_seq () =
    incr seq;
    !seq * 10
  in
  let add_stanza ?(matches = []) ?(sets = []) action =
    stanzas := Config.Route_map.stanza ~seq:(next_seq ()) ~matches ~sets action :: !stanzas
  in
  (* Disjoint stanzas: exact /24s under 40.<i>.<j>.0, pairwise distinct. *)
  List.iteri
    (fun i action ->
      let pl_name = Printf.sprintf "%s_D%d" name i in
      db :=
        add_prefix_list !db pl_name
          (Netaddr.Prefix_range.exact
             (Netaddr.Prefix.make (ip 40 (i / 256) (i mod 256) 0) 24));
      add_stanza
        ~matches:[ Config.Route_map.Match_prefix_list [ pl_name ] ]
        action)
    disjoint;
  (* Window pairs: base 50.<k>.0.0/16, one stanza le 24 and one le 20 —
     any /16..20 route under the base matches both. *)
  List.iteri
    (fun k (action1, action2) ->
      let base = Netaddr.Prefix.make (ip 50 (k land 0xff) 0 0) 16 in
      let n1 = Printf.sprintf "%s_W%dA" name k in
      let n2 = Printf.sprintf "%s_W%dB" name k in
      db :=
        add_prefix_list !db n1
          (Netaddr.Prefix_range.make base ~ge:None ~le:(Some 24));
      db :=
        add_prefix_list !db n2
          (Netaddr.Prefix_range.make base ~ge:None ~le:(Some 20));
      add_stanza ~matches:[ Config.Route_map.Match_prefix_list [ n1 ] ] action1;
      add_stanza ~matches:[ Config.Route_map.Match_prefix_list [ n2 ] ] action2)
    windows;
  if catch_all then add_stanza Config.Action.Permit;
  let route_map = Config.Route_map.make name (List.rev !stanzas) in
  { db = Config.Database.add_route_map !db route_map; route_map }

(** Expected overlap count: one per window pair, plus (for a catch-all)
    one per other stanza. *)
let expected ~disjoint ~windows ~catch_all =
  let d = List.length disjoint and w = List.length windows in
  let base = w in
  if catch_all then base + d + (2 * w) else base

(** The campus corpus's distinguished map: three pairwise-overlapping
    stanzas (permit, deny, deny) — three overlaps, two conflicting. *)
let triple_overlap ~db ~name =
  let base = Netaddr.Prefix.make (ip 50 200 0 0) 16 in
  let mk i le =
    let pl = Printf.sprintf "%s_T%d" name i in
    (pl, Netaddr.Prefix_range.make base ~ge:None ~le:(Some le))
  in
  let n1, r1 = mk 1 24 and n2, r2 = mk 2 22 and n3, r3 = mk 3 20 in
  let db = add_prefix_list (add_prefix_list (add_prefix_list db n1 r1) n2 r2) n3 r3 in
  let stanza seq action pl =
    Config.Route_map.stanza ~seq
      ~matches:[ Config.Route_map.Match_prefix_list [ pl ] ]
      action
  in
  let route_map =
    Config.Route_map.make name
      [
        stanza 10 Config.Action.Permit n1;
        stanza 20 Config.Action.Deny n2;
        stanza 30 Config.Action.Deny n3;
      ]
  in
  { db = Config.Database.add_route_map db route_map; route_map }
