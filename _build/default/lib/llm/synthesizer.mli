(** Template-based config generation from a structured intent — the
    code-generation half of the simulated LLM. Produces Cisco IOS text
    in the shape GPT-4 produces in the paper: ancillary lists followed
    by a single stanza named after the dominant set clause (SET_METRIC,
    SET_LP, ...), prefix lists named after their first octet
    (PREFIX_100). *)

val render : Intent.t -> string
val map_name_of : Intent.t -> string
(** The name under which the snippet's route-map (or ACL) appears. *)
