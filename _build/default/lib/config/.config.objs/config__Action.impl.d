lib/config/action.ml: Format Stdlib
