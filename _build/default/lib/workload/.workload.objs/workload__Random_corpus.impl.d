lib/workload/random_corpus.ml: Config List Netaddr Printf Random
