(* The Clarify command-line interface.

   clarify update  — run one incremental update through the pipeline,
                     asking disambiguation questions interactively (or
                     answering them from a script);
   clarify audit   — Section 3 overlap analysis of a configuration;
   clarify verify  — check a single-stanza route-map against a JSON spec;
   clarify eval    — regenerate the paper's experiments E1-E4. *)

open Cmdliner

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_config path =
  match Config.Parser.parse (read_file path) with
  | Ok db -> db
  | Error m ->
      prerr_endline ("error: cannot parse " ^ path ^ ": " ^ m);
      exit 1

(* ------------------------------------------------------------------ *)
(* Observability                                                      *)
(* ------------------------------------------------------------------ *)

let obs_term =
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Print an observability run report at exit: counters (LLM calls, \
             verification attempts, disambiguation questions, solver \
             invocations, BDD allocations) and per-stage span latencies.")
  in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "Stream pipeline span traces to stderr as stages complete \
             (implies the instrumentation is enabled).")
  in
  Term.(const (fun metrics trace -> (metrics, trace)) $ metrics $ trace)

(* Enable the layer before [f] runs; print the report via [at_exit] so
   it also appears on error paths that call [exit 1]. *)
let with_obs (metrics, trace) f =
  if metrics || trace then begin
    Obs.enable ();
    if trace then Obs.set_sink (Obs.text_sink Format.err_formatter);
    if metrics then
      (* The BDD manager's live sizes (unique table, memos, compile
         cache) are gauge collectors now — the report samples them. *)
      at_exit (fun () -> Format.printf "@.%a@." Obs.pp_report ())
  end;
  f ()

(* Flight recorder: stream one JSONL event per pipeline interaction to
   [path]. Events are flushed as they are emitted, so error paths that
   [exit 1] lose nothing already recorded. Recording also enables the
   observability layer and mirrors completed spans into the log, so the
   recording carries its own timing tree for `clarify trace export`. *)
let with_recorder record f =
  match record with
  | None -> f ()
  | Some path ->
      let oc = open_out path in
      Telemetry.record_to_channel oc;
      Obs.enable ();
      Obs.add_sink (Telemetry.span_sink ());
      at_exit (fun () ->
          Telemetry.stop ();
          close_out_noerr oc);
      f ()

(* ------------------------------------------------------------------ *)
(* Oracles                                                            *)
(* ------------------------------------------------------------------ *)

let interactive_answer () =
  let rec ask () =
    print_string "Your choice [1/2]: ";
    match String.trim (read_line ()) with
    | "1" -> `New
    | "2" -> `Old
    | _ ->
        print_endline "Please answer 1 (new stanza first) or 2 (keep existing behaviour).";
        ask ()
  in
  ask ()

let scripted_answers script =
  let remaining = ref script in
  fun () ->
    match !remaining with
    | [] ->
        prerr_endline "error: --answers script exhausted";
        exit 1
    | c :: rest ->
        remaining := rest;
        Printf.printf "Your choice [1/2]: %s (scripted)\n"
          (match c with `New -> "1" | `Old -> "2");
        c

let parse_script s =
  List.filter_map
    (fun c ->
      match c with
      | '1' -> Some `New
      | '2' -> Some `Old
      | _ -> None)
    (List.init (String.length s) (String.get s))

(* ------------------------------------------------------------------ *)
(* clarify update                                                     *)
(* ------------------------------------------------------------------ *)

let update_cmd =
  let config =
    Arg.(
      required
      & opt (some file) None
      & info [ "c"; "config" ] ~docv:"FILE" ~doc:"Existing configuration file.")
  in
  let target =
    Arg.(
      required
      & opt (some string) None
      & info [ "t"; "target" ] ~docv:"NAME"
          ~doc:"Route-map or ACL to update.")
  in
  let prompt =
    Arg.(
      required
      & opt (some string) None
      & info [ "p"; "prompt" ] ~docv:"TEXT"
          ~doc:"Natural-language intent for the new stanza or rule.")
  in
  let answers =
    Arg.(
      value
      & opt (some string) None
      & info [ "answers" ] ~docv:"SCRIPT"
          ~doc:
            "Answer disambiguation questions from this script instead of \
             stdin: a string of 1s (new first) and 2s (keep existing), \
             e.g. --answers 12.")
  in
  let acl =
    Arg.(
      value & flag
      & info [ "acl" ] ~doc:"Treat the target as an ACL instead of a route-map.")
  in
  let faults =
    Arg.(
      value & opt int 0
      & info [ "inject-faults" ] ~docv:"N"
          ~doc:
            "Corrupt the first $(docv) LLM answers (seeded), demonstrating \
             the verify-and-repair loop.")
  in
  let record =
    Arg.(
      value
      & opt (some string) None
      & info [ "record" ] ~docv:"FILE"
          ~doc:
            "Record the session as a JSONL event log (one event per \
             pipeline interaction) that $(b,clarify replay) re-runs \
             deterministically.")
  in
  let run config target prompt answers acl faults record obs =
    with_obs obs @@ fun () ->
    with_recorder record @@ fun () ->
    let db = load_config config in
    let llm =
      Llm.Mock_llm.create
        ~faults:(Llm.Fault_injector.schedule ~seed:11 ~faulty_attempts:faults)
        ()
    in
    let next_answer =
      match answers with
      | Some s -> scripted_answers (parse_script s)
      | None -> interactive_answer
    in
    if acl then begin
      let oracle q =
        Format.printf "@.%a@.@." Clarify.Acl_disambiguator.pp_question q;
        match next_answer () with
        | `New -> Clarify.Acl_disambiguator.Prefer_new
        | `Old -> Clarify.Acl_disambiguator.Prefer_old
      in
      match Clarify.Pipeline.run_acl_update ~llm ~oracle ~db ~target ~prompt () with
      | Error e ->
          prerr_endline ("error: " ^ Clarify.Pipeline.error_to_string e);
          exit 1
      | Ok r ->
          Format.printf
            "@.Inserted after %d synthesis attempt(s), %d question(s).@.@.%a@."
            r.Clarify.Pipeline.synthesis_attempts
            (List.length r.Clarify.Pipeline.questions)
            Config.Acl.pp r.Clarify.Pipeline.acl
    end
    else begin
      let oracle q =
        Format.printf "@.%a@.@." Clarify.Disambiguator.pp_question q;
        match next_answer () with
        | `New -> Clarify.Disambiguator.Prefer_new
        | `Old -> Clarify.Disambiguator.Prefer_old
      in
      match
        Clarify.Pipeline.run_route_map_update ~llm ~oracle ~db ~target ~prompt ()
      with
      | Error e ->
          prerr_endline ("error: " ^ Clarify.Pipeline.error_to_string e);
          exit 1
      | Ok r ->
          if r.Clarify.Pipeline.verification_history <> [] then begin
            Format.printf "Verification feedback loop:@.";
            List.iter
              (fun h -> Format.printf "  %s@." h)
              r.Clarify.Pipeline.verification_history
          end;
          Format.printf
            "@.Inserted at position %d after %d synthesis attempt(s), %d \
             question(s).@.@.Updated configuration:@.%s@."
            r.Clarify.Pipeline.position r.Clarify.Pipeline.synthesis_attempts
            (List.length r.Clarify.Pipeline.questions)
            (Config.Parser.to_string r.Clarify.Pipeline.db)
    end
  in
  Cmd.v
    (Cmd.info "update" ~doc:"Incrementally add one stanza or rule from an English intent.")
    Term.(
      const run $ config $ target $ prompt $ answers $ acl $ faults $ record
      $ obs_term)

(* ------------------------------------------------------------------ *)
(* clarify batch                                                      *)
(* ------------------------------------------------------------------ *)

(* One intent per spec: "route-map:TARGET:PROMPT" or "acl:TARGET:PROMPT"
   (also accepted with an underscore, "route_map"). *)
let parse_intent_spec s =
  match String.index_opt s ':' with
  | None -> Error ("missing ':' in intent " ^ s)
  | Some i -> (
      let kind = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match String.index_opt rest ':' with
      | None -> Error ("missing prompt in intent " ^ s)
      | Some j -> (
          let target = String.sub rest 0 j in
          let prompt =
            String.trim (String.sub rest (j + 1) (String.length rest - j - 1))
          in
          match kind with
          | "route-map" | "route_map" ->
              Ok (Clarify.Batch.Route_map_update { target; prompt })
          | "acl" -> Ok (Clarify.Batch.Acl_update { target; prompt })
          | k -> Error ("unknown intent kind " ^ k ^ " in " ^ s)))

let batch_cmd =
  let config =
    Arg.(
      required
      & opt (some file) None
      & info [ "c"; "config" ] ~docv:"FILE" ~doc:"Existing configuration file.")
  in
  let intents =
    Arg.(
      value & opt_all string []
      & info [ "i"; "intent" ] ~docv:"KIND:TARGET:PROMPT"
          ~doc:
            "One intent of the batch: $(b,route-map:NAME:English intent) or \
             $(b,acl:NAME:English intent). Repeatable; order is the batch \
             order.")
  in
  let intents_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "intents-file" ] ~docv:"FILE"
          ~doc:
            "Read intents from $(docv), one KIND:TARGET:PROMPT per line \
             (blank lines and #-comments ignored), appended after any \
             --intent flags.")
  in
  let answers =
    Arg.(
      value
      & opt (some string) None
      & info [ "answers" ] ~docv:"SCRIPT"
          ~doc:
            "Answer disambiguation questions from this script instead of \
             stdin: a string of 1s (new first) and 2s (keep existing).")
  in
  let faults =
    Arg.(
      value & opt int 0
      & info [ "inject-faults" ] ~docv:"N"
          ~doc:
            "Corrupt the first $(docv) LLM answers (seeded), demonstrating \
             the verify-and-repair loop mid-batch.")
  in
  let record =
    Arg.(
      value
      & opt (some string) None
      & info [ "record" ] ~docv:"FILE"
          ~doc:
            "Record the batch session as a JSONL event log that \
             $(b,clarify replay) re-runs deterministically.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains for the batch conflict-graph sweep. Defaults to \
             $(b,CLARIFY_JOBS), or 1 (serial). Results are identical at \
             every value.")
  in
  let run config intents intents_file answers faults record jobs obs =
    with_obs obs @@ fun () ->
    with_recorder record @@ fun () ->
    let db = load_config config in
    let specs =
      intents
      @
      match intents_file with
      | None -> []
      | Some path ->
          String.split_on_char '\n' (read_file path)
          |> List.filter_map (fun line ->
                 let line = String.trim line in
                 if line = "" || line.[0] = '#' then None else Some line)
    in
    let items =
      List.map
        (fun s ->
          match parse_intent_spec s with
          | Ok it -> it
          | Error m ->
              prerr_endline ("error: " ^ m);
              exit 1)
        specs
    in
    if items = [] then begin
      prerr_endline "error: no intents given (use --intent or --intents-file)";
      exit 1
    end;
    let llm =
      Llm.Mock_llm.create
        ~faults:(Llm.Fault_injector.schedule ~seed:11 ~faulty_attempts:faults)
        ()
    in
    let next_answer =
      match answers with
      | Some s -> scripted_answers (parse_script s)
      | None -> interactive_answer
    in
    let oracle ~intent ~target q =
      Format.printf "@.[intent %d, %s]@." intent target;
      (match q with
      | Clarify.Batch.Route_map_q q ->
          Format.printf "%a@.@." Clarify.Disambiguator.pp_question q
      | Clarify.Batch.Acl_q q ->
          Format.printf "%a@.@." Clarify.Acl_disambiguator.pp_question q);
      match next_answer () with
      | `New -> Clarify.Disambig_common.Prefer_new
      | `Old -> Clarify.Disambig_common.Prefer_old
    in
    let pool = Parallel.Pool.create ?domains:jobs () in
    match Clarify.Batch.run ~pool ~llm ~oracle ~db items with
    | Error e ->
        prerr_endline ("error: " ^ Clarify.Batch.error_to_string e);
        exit 1
    | Ok r ->
        Format.printf
          "@.Batch of %d intent(s): %d overlapping pair(s), %d genuine \
           conflict(s), %d question(s) saved by the shared answer cache.@."
          (List.length items) r.Clarify.Batch.overlap_pairs
          (List.length r.Clarify.Batch.conflicts)
          r.Clarify.Batch.questions_saved;
        List.iter
          (fun (c : Clarify.Batch.conflict) ->
            Format.printf "@.Conflict between intents %d and %d on %s:@.%s@."
              c.Clarify.Batch.intent_a c.Clarify.Batch.intent_b
              c.Clarify.Batch.target
              (match c.Clarify.Batch.witness with
              | Clarify.Batch.Route_witness d ->
                  Format.asprintf "%a"
                    Engine.Compare_route_policies.pp_difference d
              | Clarify.Batch.Acl_witness d ->
                  Format.asprintf "%a" Engine.Compare_acls.pp_difference d
              | Clarify.Batch.Prefix_witness p ->
                  Format.asprintf "shared prefix %a" Netaddr.Prefix.pp p))
          r.Clarify.Batch.conflicts;
        List.iteri
          (fun k res ->
            match res with
            | Clarify.Batch.Route_map_result rr ->
                Format.printf
                  "Intent %d (route-map %s): inserted at position %d after %d \
                   synthesis attempt(s), %d question(s).@."
                  k rr.Clarify.Pipeline.map.Config.Route_map.name
                  rr.Clarify.Pipeline.position
                  rr.Clarify.Pipeline.synthesis_attempts
                  (List.length rr.Clarify.Pipeline.questions)
            | Clarify.Batch.Acl_result ar ->
                Format.printf
                  "Intent %d (acl %s): inserted at position %d after %d \
                   synthesis attempt(s), %d question(s).@."
                  k ar.Clarify.Pipeline.acl.Config.Acl.name
                  ar.Clarify.Pipeline.position
                  ar.Clarify.Pipeline.synthesis_attempts
                  (List.length ar.Clarify.Pipeline.questions))
          r.Clarify.Batch.items;
        Format.printf "@.Updated configuration:@.%s@."
          (Config.Parser.to_string r.Clarify.Batch.db)
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Apply a batch of English intents at once: synthesize all stanzas, \
          build the pairwise inter-intent conflict graph with one symbolic \
          sweep per target policy, and ask only about genuine conflicts.")
    Term.(
      const run $ config $ intents $ intents_file $ answers $ faults $ record
      $ jobs $ obs_term)

(* ------------------------------------------------------------------ *)
(* clarify replay                                                     *)
(* ------------------------------------------------------------------ *)

let replay_cmd =
  let log =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"LOG"
          ~doc:"JSONL event log recorded with $(b,clarify update --record).")
  in
  let run log =
    match Clarify.Replay.run_file log with
    | Error m ->
        prerr_endline ("error: cannot replay " ^ log ^ ": " ^ m);
        exit 2
    | Ok report ->
        Format.printf "%a" Clarify.Replay.pp_report report;
        exit (if Clarify.Replay.identical report then 0 else 1)
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Re-run a recorded session deterministically (LLM responses and \
          user answers fed from the log), failing loudly on divergence.")
    Term.(const run $ log)

(* ------------------------------------------------------------------ *)
(* clarify obs diff                                                   *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Experiments (shared by `clarify eval` and `clarify obs serve`)      *)
(* ------------------------------------------------------------------ *)

(* e4 and e5 manage their own per-router logs; e1 records as one
   session. *)
let run_experiments ?record_dir ?(scale = 1.0) ?(routers = 64)
    ?(profile = Netgen.Fat_tree) ?(simulate = false) ~pool fmt which =
  let record_session name f =
    match record_dir with
    | None -> f ()
    | Some dir ->
        let oc = open_out (Filename.concat dir (name ^ ".jsonl")) in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            Telemetry.with_channel_recorder oc @@ fun () ->
            Telemetry.with_context [ ("experiment", name) ] f)
  in
  let e1 () =
    record_session "e1" @@ fun () ->
    Evaluation.E1_running_example.(print fmt (run ()))
  in
  let e2 () =
    Evaluation.E23_overlap_study.(
      print ~title:"E2: cloud WAN overlap study (Section 3.1)" fmt
        (cloud ~pool ()))
  in
  let e3 () =
    Evaluation.E23_overlap_study.(
      print ~title:"E3: campus overlap study (Section 3.2)" fmt
        (campus ~scale ~pool ()))
  in
  let e4 () = Evaluation.E4_lightyear.(print fmt (run ?record_dir ~pool ())) in
  let e5 () =
    Evaluation.E5_fleet.(
      print fmt (run ?record_dir ~pool ~simulate ~profile ~routers ()))
  in
  match which with
  | `E1 -> e1 ()
  | `E2 -> e2 ()
  | `E3 -> e3 ()
  | `E4 -> e4 ()
  | `E5 -> e5 ()
  | `All ->
      (* e5 scales with --routers, so it is opted into explicitly
         rather than riding along with the fixed-size experiments. *)
      e1 ();
      e2 ();
      e3 ();
      e4 ()

let experiment_enum =
  [
    ("e1", `E1);
    ("e2", `E2);
    ("e3", `E3);
    ("e4", `E4);
    ("e5", `E5);
    ("all", `All);
  ]

let obs_cmd =
  (* Plain strings, not Arg.file: a missing snapshot must exit 2 as the
     documented exits promise, not cmdliner's usage-error 124. *)
  let old_file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"OLD" ~doc:"Baseline bench snapshot (BENCH.json).")
  in
  let new_file =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"NEW" ~doc:"Candidate bench snapshot to compare.")
  in
  let threshold =
    Arg.(
      value
      & opt float Telemetry.Bench.default_threshold
      & info [ "threshold" ] ~docv:"FRACTION"
          ~doc:
            "Fractional growth beyond which a counter or latency metric \
             counts as a regression (default 0.2 = 20%).")
  in
  let all =
    Arg.(
      value & flag
      & info [ "all" ] ~doc:"Print every compared metric, not just deltas.")
  in
  let diff old_file new_file threshold all =
    let load path =
      match Telemetry.Bench.load_file path with
      | Ok t -> t
      | Error m ->
          prerr_endline ("error: cannot load " ^ path ^ ": " ^ m);
          exit 2
    in
    let old_t = load old_file and new_t = load new_file in
    if old_t.Telemetry.Bench.domains <> new_t.Telemetry.Bench.domains then begin
      Printf.eprintf
        "error: snapshots were taken at different parallelism (%d vs %d \
         domains); timings are not comparable\n"
        old_t.Telemetry.Bench.domains new_t.Telemetry.Bench.domains;
      exit 2
    end;
    let deltas = Telemetry.Bench.diff ~threshold old_t new_t in
    Format.printf "%a" (Telemetry.Bench.pp_diff ~all) deltas;
    exit (if Telemetry.Bench.regressed deltas then 1 else 0)
  in
  let diff_cmd =
    Cmd.v
      (Cmd.info "diff"
         ~doc:
           "Compare two bench snapshots; non-zero exit when a counter or \
            latency histogram regresses beyond the threshold. Prints a \
            one-line summary (N regressed / N improved / N unchanged) \
            before the per-metric table."
         ~exits:
           [
             Cmd.Exit.info 0 ~doc:"no metric regressed beyond the threshold.";
             Cmd.Exit.info 1 ~doc:"at least one metric regressed.";
             Cmd.Exit.info 2 ~doc:"a snapshot file is missing or malformed.";
           ])
      Term.(const diff $ old_file $ new_file $ threshold $ all)
  in
  let serve_cmd =
    let port =
      Arg.(
        value & opt int 9217
        & info [ "port"; "p" ] ~docv:"PORT"
            ~doc:"TCP port for the /metrics endpoint (0 picks a free port).")
    in
    let host =
      Arg.(
        value
        & opt string "127.0.0.1"
        & info [ "host" ] ~docv:"IP"
            ~doc:"Address to bind (an IP literal; default loopback).")
    in
    let which =
      Arg.(
        value
        & pos 0 (enum (("idle", `Idle) :: experiment_enum)) `Idle
        & info [] ~docv:"EXPERIMENT"
            ~doc:
              "Workload to run while serving: one of e1, e2, e3, e4, all, or \
               idle (serve an empty registry until interrupted).")
    in
    let linger =
      Arg.(
        value & flag
        & info [ "linger" ]
            ~doc:
              "Keep serving after the experiment finishes (until \
               interrupted) instead of exiting; final counter totals and \
               gauge samples stay scrapeable.")
    in
    let jobs =
      Arg.(
        value
        & opt (some int) None
        & info [ "jobs"; "j" ] ~docv:"N"
            ~doc:
              "Worker domains for the experiment's parallel sweeps \
               (defaults to $(b,CLARIFY_JOBS), or 1).")
    in
    let serve port host which linger jobs =
      Obs.enable ();
      match Obs_serve.Server.start ~host ~port () with
      | Error m ->
          prerr_endline ("error: cannot serve metrics: " ^ m);
          exit 2
      | Ok server ->
          (* stderr, so piping the experiment's stdout stays clean. *)
          Printf.eprintf "serving OpenMetrics on http://%s:%d/metrics\n%!" host
            (Obs_serve.Server.port server);
          let pool = Parallel.Pool.create ?domains:jobs () in
          (match which with
          | `Idle -> ()
          | (`E1 | `E2 | `E3 | `E4 | `E5 | `All) as w ->
              run_experiments ~pool Format.std_formatter w);
          if linger || which = `Idle then begin
            Printf.eprintf "experiment done; still serving (Ctrl-C to stop)\n%!";
            let rec forever () =
              Unix.sleep 3600;
              forever ()
            in
            forever ()
          end
          else Obs_serve.Server.stop server
    in
    Cmd.v
      (Cmd.info "serve"
         ~doc:
           "Serve live metrics over HTTP while running an experiment: a \
            background thread answers $(b,GET /metrics) with the \
            Prometheus/OpenMetrics text rendering of a fresh snapshot \
            (counters, latency histograms, runtime gauges). Pair with \
            $(b,clarify top) or any Prometheus scraper."
         ~exits:
           [
             Cmd.Exit.info 0 ~doc:"the experiment completed.";
             Cmd.Exit.info 2 ~doc:"the endpoint could not be bound.";
           ])
      Term.(const serve $ port $ host $ which $ linger $ jobs)
  in
  Cmd.group
    (Cmd.info "obs"
       ~doc:
         "Observability: compare bench snapshots, serve live metrics.")
    [ diff_cmd; serve_cmd ]

(* ------------------------------------------------------------------ *)

let top_cmd =
  let port =
    Arg.(
      value & opt int 9217
      & info [ "port"; "p" ] ~docv:"PORT"
          ~doc:"Port of the $(b,clarify obs serve) endpoint to watch.")
  in
  let host =
    Arg.(
      value
      & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"IP" ~doc:"Endpoint address (an IP literal).")
  in
  let interval =
    Arg.(
      value & opt float 2.0
      & info [ "interval"; "i" ] ~docv:"SECONDS"
          ~doc:"Seconds between scrapes (rates are computed per window).")
  in
  let samples =
    Arg.(
      value
      & opt (some int) None
      & info [ "samples"; "n" ] ~docv:"N"
          ~doc:"Render N frames, then exit (default: until interrupted).")
  in
  let fleet =
    Arg.(
      value & flag
      & info [ "fleet" ]
          ~doc:
            "Prepend a fleet pane built from the e5 fleet gauges: router \
             progress bar, pending/running/done counts, stragglers, \
             per-router wall p50/p99 with completion rate and ETA, and \
             fleet-wide question/token/cost totals.")
  in
  let run port host interval samples fleet =
    let scrape () =
      match Obs_serve.Scrape.fetch ~host ~port "/metrics" with
      | Error e -> Error e
      | Ok body -> (
          match Obs_serve.Scrape.parse body with
          | Error e -> Error ("bad exposition text: " ^ e)
          | Ok s -> Ok (Obs_serve.Top.of_scrape ~at:(Unix.gettimeofday ()) s))
    in
    (* The first scrape must succeed — a refused connection here means
       there is nothing to watch. Later failures are tolerated (the
       serving process may be between experiments or briefly saturated)
       up to a few in a row. *)
    let first =
      match scrape () with
      | Ok s -> s
      | Error e ->
          Printf.eprintf "error: cannot scrape http://%s:%d/metrics: %s\n" host
            port e;
          exit 1
    in
    let clear = Unix.isatty Unix.stdout in
    let rec loop prev rendered failures =
      let finished =
        match samples with Some n -> rendered >= n | None -> false
      in
      if not finished then begin
        Unix.sleepf interval;
        match scrape () with
        | Error e ->
            if failures + 1 >= 5 then begin
              Printf.eprintf "error: %d scrapes failed in a row (%s)\n"
                (failures + 1) e;
              exit 1
            end
            else loop prev rendered (failures + 1)
        | Ok cur ->
            if clear then print_string "\x1b[2J\x1b[H";
            (* Token pricing lives in the LLM layer; obs_serve takes it
               as a closure so it never depends on that library. *)
            let cost_of_tokens ~prompt ~completion =
              Some
                (Llm.Tokens.cost
                   ~prompt_tokens:(int_of_float prompt)
                   ~completion_tokens:(int_of_float completion))
            in
            print_string
              (Obs_serve.Top.render ~fleet ~cost_of_tokens ~prev ~cur ());
            flush stdout;
            loop cur (rendered + 1) 0
      end
    in
    loop first 0 0
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Watch a $(b,clarify obs serve) endpoint like top(1): scrape \
          /metrics every interval and render counter rates, histogram \
          p50/p99 latencies, per-domain worker utilization and runtime \
          gauges over the last window."
       ~exits:
         [
           Cmd.Exit.info 0 ~doc:"the requested number of frames rendered.";
           Cmd.Exit.info 1
             ~doc:"the first scrape failed, or five in a row did.";
         ])
    Term.(const run $ port $ host $ interval $ samples $ fleet)

(* ------------------------------------------------------------------ *)
(* clarify trace                                                      *)
(* ------------------------------------------------------------------ *)

let trace_cmd =
  let log =
    (* A string, not Arg.file: an unreadable log exits 2 like every
       other load error, not cmdliner's usage-error 124. *)
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"LOG"
          ~doc:
            "JSONL event log recorded with $(b,clarify update --record) or \
             $(b,clarify eval --record-dir).")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the trace JSON here instead of standard output.")
  in
  let export log output =
    (* Streamed: one trace event written per log line, so a fleet-sized
       log never has to fit in memory. *)
    let write oc =
      let process =
        Filename.remove_extension (Filename.basename log)
      in
      let w = Analytics.Trace.Writer.create ~process oc in
      match Analytics.Stream.iter_file log (Analytics.Trace.Writer.event w) with
      | Error m ->
          prerr_endline ("error: cannot load " ^ m);
          exit 2
      | Ok _ -> Analytics.Trace.Writer.close w
    in
    match output with
    | None -> write stdout
    | Some path ->
        let oc = open_out path in
        Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write oc)
  in
  let export_cmd =
    Cmd.v
      (Cmd.info "export"
         ~doc:
           "Convert a recorded session log to Chrome-trace JSON \
            (chrome://tracing, Perfetto): spans become complete events on \
            router/phase lanes, every other event an instant tick.")
      Term.(const export $ log $ output)
  in
  Cmd.group
    (Cmd.info "trace" ~doc:"Export recorded sessions as flame-graph traces.")
    [ export_cmd ]

(* ------------------------------------------------------------------ *)
(* clarify report                                                     *)
(* ------------------------------------------------------------------ *)

let report_cmd =
  let paths =
    Arg.(
      non_empty
      & pos_all string []
      & info [] ~docv:"DIR|LOG"
          ~doc:
            "Session logs to aggregate: JSONL files, or directories whose \
             *.jsonl files are taken in name order.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("md", `Md); ("json", `Json); ("csv", `Csv) ]) `Md
      & info [ "format" ] ~docv:"FORMAT" ~doc:"Output format: md, json or csv.")
  in
  let figure4 =
    Arg.(
      value & flag
      & info [ "figure4" ]
          ~doc:
            "Markdown output only: print just the Figure-4 table, without \
             the LLM usage section.")
  in
  let follow =
    Arg.(
      value & flag
      & info [ "follow"; "f" ]
          ~doc:
            "Tail-follow one directory of live logs and re-render the \
             report every $(b,--interval) seconds, folding only the bytes \
             appended since the previous frame (constant memory per log). \
             Watches for new *.jsonl files on every frame, so a fleet run \
             can be followed from before its first router starts.")
  in
  let interval =
    Arg.(
      value & opt float 2.0
      & info [ "interval"; "i" ] ~docv:"SECONDS"
          ~doc:"Seconds between $(b,--follow) frames.")
  in
  let frames =
    Arg.(
      value
      & opt (some int) None
      & info [ "frames" ] ~docv:"N"
          ~doc:
            "With $(b,--follow): render N frames, then exit (default: \
             until interrupted).")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains for the one-shot fold (one log per task). \
             Defaults to $(b,CLARIFY_JOBS), or 1. Output is byte-identical \
             at every value.")
  in
  let run paths format figure4 follow interval frames jobs =
    let print_report report =
      print_string
        (match format with
        | `Md when figure4 -> Analytics.Report.figure4_markdown report
        | `Md -> Analytics.Report.to_markdown report
        | `Json ->
            Json.to_string ~indent:2 (Analytics.Report.to_json report) ^ "\n"
        | `Csv -> Analytics.Report.to_csv report)
    in
    if follow then begin
      let dir =
        match paths with
        | [ dir ] when Sys.file_exists dir && Sys.is_directory dir -> dir
        | _ ->
            prerr_endline "error: --follow takes exactly one directory";
            exit 2
      in
      let d = Analytics.Stream.open_dir dir in
      let clear = Unix.isatty Unix.stdout in
      let rec loop n =
        ignore (Analytics.Stream.poll d);
        if clear then print_string "\x1b[2J\x1b[H";
        print_report (Analytics.Stream.report_of_dir d);
        List.iter
          (fun f ->
            match Analytics.Stream.file_error f with
            | Some e ->
                Printf.eprintf "warn: %s: %s\n%!"
                  (Analytics.Stream.file_path f) e
            | None -> ())
          (Analytics.Stream.files d);
        flush stdout;
        if match frames with Some k -> n + 1 < k | None -> true then begin
          Unix.sleepf interval;
          loop (n + 1)
        end
      in
      loop 0
    end
    else
      (* One-shot: the same streaming fold, sharded across a pool (one
         log per task); merge order is input order, so the output is
         byte-identical at every pool size — and to --follow's final
         frame over the same (complete) logs. *)
      let pool = Parallel.Pool.create ?domains:jobs () in
      match Analytics.Stream.report_paths ~pool paths with
      | Error m ->
          prerr_endline ("error: " ^ m);
          exit 2
      | Ok report -> print_report report
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Aggregate recorded session logs into per-router statistics \
          (the paper's Figure 4: stanzas, questions, retries, LLM calls, \
          token totals) as Markdown, JSON or CSV — one-shot over complete \
          logs, or live with $(b,--follow) while a fleet is still \
          running.")
    Term.(
      const run $ paths $ format $ figure4 $ follow $ interval $ frames
      $ jobs)

(* ------------------------------------------------------------------ *)
(* clarify fleet                                                      *)
(* ------------------------------------------------------------------ *)

let fleet_cmd =
  let dir_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR"
          ~doc:
            "Record directory of a $(b,clarify eval e5 --record-dir) run: \
             holds fleet.json and one e5_ROUTER.jsonl log per router.")
  in
  let follow =
    Arg.(
      value & flag
      & info [ "follow"; "f" ]
          ~doc:
            "Keep re-rendering every $(b,--interval) seconds as the logs \
             grow (Ctrl-C to stop).")
  in
  let interval =
    Arg.(
      value & opt float 2.0
      & info [ "interval"; "i" ] ~docv:"SECONDS"
          ~doc:"Seconds between $(b,--follow) frames.")
  in
  let frames =
    Arg.(
      value
      & opt (some int) None
      & info [ "frames" ] ~docv:"N"
          ~doc:
            "With $(b,--follow): render N frames, then exit (default: \
             until interrupted).")
  in
  let pp_ms ns = Printf.sprintf "%.1fms" (ns /. 1e6) in
  let percentile sorted p =
    match Array.length sorted with
    | 0 -> 0.
    | n ->
        let idx = int_of_float (ceil (p /. 100. *. float_of_int n)) - 1 in
        sorted.(max 0 (min (n - 1) idx))
  in
  let status dir follow interval frames =
    let manifest_path = Filename.concat dir "fleet.json" in
    let manifest =
      match
        if Sys.file_exists manifest_path then read_file manifest_path
        else (
          Printf.eprintf
            "error: %s: no fleet.json manifest (is this a clarify eval e5 \
             --record-dir directory?)\n"
            dir;
          exit 2)
      with
      | text -> (
          match Json.parse text with
          | Ok j -> j
          | Error m ->
              Printf.eprintf "error: %s: %s\n" manifest_path m;
              exit 2)
    in
    let str name j = Option.bind (Json.member name j) Json.to_str in
    let int name j = Option.bind (Json.member name j) Json.to_int in
    let prefix = Option.value ~default:"e5_" (str "log_prefix" manifest) in
    let profile = Option.value ~default:"?" (str "profile" manifest) in
    let k = Option.value ~default:0 (int "k" manifest) in
    let pods = Option.value ~default:0 (int "pods" manifest) in
    let nodes =
      match Option.bind (Json.member "nodes" manifest) Json.to_list with
      | Some l ->
          List.filter_map
            (fun n ->
              match (str "router" n, str "role" n, int "steps" n) with
              | Some router, Some role, Some steps -> Some (router, role, steps)
              | _ -> None)
            l
      | None -> []
    in
    if nodes = [] then begin
      Printf.eprintf "error: %s: manifest lists no routers\n" manifest_path;
      exit 2
    end;
    let d = Analytics.Stream.open_dir dir in
    let render () =
      ignore (Analytics.Stream.poll d);
      let by_name =
        List.map
          (fun f -> (Analytics.Stream.file_name f, f))
          (Analytics.Stream.files d)
      in
      let b = Buffer.create 4096 in
      Printf.bprintf b "fleet %s — %s, %d routers (k=%d, pods=%d)\n\n" dir
        profile (List.length nodes) k pods;
      Printf.bprintf b "%-12s %-12s %-8s %9s %5s %8s %10s %10s\n" "ROUTER"
        "ROLE" "PHASE" "STANZAS" "Q" "TOKENS" "COST" "WALL";
      let pending = ref 0
      and running = ref 0
      and done_ = ref 0
      and errors = ref 0 in
      let walls = ref [] in
      let questions = ref 0
      and tokens = ref 0
      and cost = ref 0. in
      List.iter
        (fun (router, role, steps) ->
          match List.assoc_opt (prefix ^ router) by_name with
          | None ->
              incr pending;
              Printf.bprintf b "%-12s %-12s %-8s %5d/%-3d %5s %8s %10s %10s\n"
                router role "pending" 0 steps "-" "-" "-" "-"
          | Some f ->
              let stats =
                Analytics.Report.Acc.finish ~router
                  (Analytics.Stream.file_acc f)
              in
              let open Analytics.Report in
              let phase, wall =
                match Analytics.Stream.file_error f with
                | Some _ ->
                    incr errors;
                    ("error", "-")
                | None -> (
                    match stats.fleet with
                    | Some fl when fl.completed ->
                        incr done_;
                        walls := fl.wall_ns :: !walls;
                        ("done", pp_ms fl.wall_ns)
                    | _ ->
                        incr running;
                        ("running", "-"))
              in
              let toks = stats.prompt_tokens + stats.completion_tokens in
              questions := !questions + stats.questions;
              tokens := !tokens + toks;
              cost := !cost +. stats.cost_usd;
              Printf.bprintf b
                "%-12s %-12s %-8s %5d/%-3d %5d %8d %10s %10s\n" router role
                phase stats.stanzas steps stats.questions toks
                (Printf.sprintf "$%.4f" stats.cost_usd)
                wall)
        nodes;
      Printf.bprintf b "\npending %d  running %d  done %d/%d%s\n" !pending
        !running !done_ (List.length nodes)
        (if !errors > 0 then Printf.sprintf "  errors %d" !errors else "");
      (if !walls <> [] then
         let arr = Array.of_list !walls in
         let () = Array.sort compare arr in
         Printf.bprintf b
           "router wall (done routers): p50 %s  p99 %s  max %s\n"
           (pp_ms (percentile arr 50.))
           (pp_ms (percentile arr 99.))
           (pp_ms (percentile arr 100.)));
      Printf.bprintf b "questions %d  tokens %d (~$%.4f)\n" !questions !tokens
        !cost;
      Buffer.contents b
    in
    let clear = follow && Unix.isatty Unix.stdout in
    let rec loop n =
      if clear then print_string "\x1b[2J\x1b[H";
      print_string (render ());
      flush stdout;
      if follow && match frames with Some f -> n + 1 < f | None -> true
      then begin
        Unix.sleepf interval;
        loop (n + 1)
      end
    in
    loop 0
  in
  let status_cmd =
    Cmd.v
      (Cmd.info "status"
         ~doc:
           "Per-router fleet progress from a $(b,clarify eval e5) record \
            directory: phase (pending/running/done), stanzas placed vs \
            planned, questions, token usage and wall time per router, with \
            straggler percentiles — live with $(b,--follow). Reads the \
            fleet.json manifest, so routers whose logs do not exist yet \
            show as pending."
         ~exits:
           [
             Cmd.Exit.info 0 ~doc:"status rendered.";
             Cmd.Exit.info 2 ~doc:"the manifest is missing or malformed.";
           ])
      Term.(const status $ dir_arg $ follow $ interval $ frames)
  in
  Cmd.group
    (Cmd.info "fleet" ~doc:"Watch fleet-scale (e5) synthesis runs.")
    [ status_cmd ]

(* ------------------------------------------------------------------ *)
(* clarify audit                                                      *)
(* ------------------------------------------------------------------ *)

let audit_cmd =
  let config =
    Arg.(
      required
      & opt (some file) None
      & info [ "c"; "config" ] ~docv:"FILE" ~doc:"Configuration file to audit.")
  in
  let run config =
    let db = load_config config in
    List.iter
      (fun (acl : Config.Acl.t) ->
        let s = Overlap.Acl_overlap.analyze acl in
        Format.printf
          "ACL %-20s rules %3d  overlaps %3d  conflicts %3d  non-trivial %3d@."
          s.Overlap.Acl_overlap.name s.Overlap.Acl_overlap.rules
          s.Overlap.Acl_overlap.overlap_pairs
          s.Overlap.Acl_overlap.conflict_pairs
          s.Overlap.Acl_overlap.nontrivial_conflicts)
      (Config.Database.acls db);
    List.iter
      (fun (rm : Config.Route_map.t) ->
        let s = Overlap.Route_map_overlap.analyze db rm in
        Format.printf
          "route-map %-15s stanzas %3d  overlaps %3d  conflicts %3d@."
          s.Overlap.Route_map_overlap.name s.Overlap.Route_map_overlap.stanzas
          s.Overlap.Route_map_overlap.overlap_pairs
          s.Overlap.Route_map_overlap.conflict_pairs)
      (Config.Database.route_maps db)
  in
  Cmd.v
    (Cmd.info "audit" ~doc:"Count overlapping and conflicting rule pairs (Section 3 analysis).")
    Term.(const run $ config)

(* ------------------------------------------------------------------ *)
(* clarify verify                                                     *)
(* ------------------------------------------------------------------ *)

let verify_cmd =
  let config =
    Arg.(
      required
      & opt (some file) None
      & info [ "c"; "config" ] ~docv:"FILE"
          ~doc:"Configuration containing the stanza and its lists.")
  in
  let map_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "m"; "map" ] ~docv:"NAME" ~doc:"Single-stanza route-map to verify.")
  in
  let spec =
    Arg.(
      required
      & opt (some file) None
      & info [ "s"; "spec" ] ~docv:"FILE" ~doc:"JSON behavioural specification.")
  in
  let run config map_name spec =
    let db = load_config config in
    let rm =
      match Config.Database.route_map db map_name with
      | Some rm -> rm
      | None ->
          prerr_endline ("error: no route-map named " ^ map_name);
          exit 1
    in
    let spec =
      match Engine.Spec.of_string (read_file spec) with
      | Ok s -> s
      | Error m ->
          prerr_endline ("error: bad spec: " ^ m);
          exit 1
    in
    match Engine.Search_route_policies.verify_stanza db rm spec with
    | Engine.Search_route_policies.Verified ->
        print_endline "verified";
        exit 0
    | v ->
        Format.printf "%a@." Engine.Search_route_policies.pp_verdict v;
        exit 1
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Verify a synthesized stanza against a JSON spec (searchRoutePolicies).")
    Term.(const run $ config $ map_arg $ spec)

(* ------------------------------------------------------------------ *)
(* clarify eval                                                       *)
(* ------------------------------------------------------------------ *)

let eval_cmd =
  let which =
    Arg.(
      value
      & pos 0 (enum experiment_enum) `All
      & info [] ~docv:"EXPERIMENT"
          ~doc:
            "One of e1, e2, e3, e4, e5, all. $(b,all) covers the paper's \
             fixed-size experiments (e1-e4); the e5 fleet scales with \
             $(b,--routers), so it is requested explicitly.")
  in
  let scale =
    Arg.(
      value & opt float 1.0
      & info [ "scale" ] ~docv:"X"
          ~doc:"Scale factor for the campus corpus (e3); 1.0 = full size.")
  in
  let record_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "record-dir" ] ~docv:"DIR"
          ~doc:
            "Record session logs into $(docv) (created if missing): one \
             JSONL file per experiment session (e1.jsonl, e4_M.jsonl, \
             e4_R1.jsonl, e4_R2.jsonl; e5 writes fleet.json plus one \
             e5_ROUTER.jsonl per router) that $(b,clarify report) \
             aggregates, $(b,clarify fleet status) watches and \
             $(b,clarify trace export) visualizes.")
  in
  let profile =
    Arg.(
      value
      & opt
          (enum [ ("fat-tree", Netgen.Fat_tree); ("wan", Netgen.Wan) ])
          Netgen.Fat_tree
      & info [ "profile" ] ~docv:"PROFILE"
          ~doc:
            "Topology profile for the e5 fleet: $(b,fat-tree) (data-center \
             Clos) or $(b,wan) (Abilene-style backbone with attached \
             sites).")
  in
  let routers =
    Arg.(
      value & opt int 64
      & info [ "routers" ] ~docv:"N"
          ~doc:
            "Fleet size for e5: the number of internal routers to generate \
             and synthesize policy for.")
  in
  let simulate =
    Arg.(
      value & flag
      & info [ "simulate" ]
          ~doc:
            "e5 only: after synthesis, install every router's configuration \
             into the generated topology, run the BGP simulation to \
             convergence and print the network-wide policy checks.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains for the parallel sweeps (e2/e3 corpus analyses \
             and e4's per-router builds). Defaults to $(b,CLARIFY_JOBS), or \
             1 (serial). Results are identical at every value; only \
             wall-clock changes.")
  in
  let run which scale record_dir jobs profile routers simulate obs =
    with_obs obs @@ fun () ->
    let pool = Parallel.Pool.create ?domains:jobs () in
    (match record_dir with
    | None -> ()
    | Some dir ->
        if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
        (* Recorded sessions carry their timing tree (span events). *)
        Obs.enable ();
        Obs.add_sink (Telemetry.span_sink ()));
    run_experiments ?record_dir ~scale ~profile ~routers ~simulate ~pool
      Format.std_formatter which
  in
  Cmd.v
    (Cmd.info "eval" ~doc:"Regenerate the paper's experiments.")
    Term.(
      const run $ which $ scale $ record_dir $ jobs $ profile $ routers
      $ simulate $ obs_term)

let () =
  let doc = "LLM-based incremental network-configuration synthesis with intent disambiguation" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "clarify" ~version:"1.0.0" ~doc)
          [
            update_cmd;
            batch_cmd;
            replay_cmd;
            obs_cmd;
            top_cmd;
            trace_cmd;
            report_cmd;
            fleet_cmd;
            audit_cmd;
            verify_cmd;
            eval_cmd;
          ]))
