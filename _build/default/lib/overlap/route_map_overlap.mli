(** Stanza-overlap analysis for route-maps.

    Per the paper, two stanzas overlap when at least one route
    advertisement matches both; actions are ignored in the headline
    count (a stanza may chain into other policies), making it an upper
    bound. Conflicting pairs are still reported for the campus
    breakdown. AS-path atom feasibility is honoured: stanzas with
    mutually exclusive as-path constraints do not overlap. *)

type pair = {
  stanza_a : Config.Route_map.stanza;
  stanza_b : Config.Route_map.stanza;
  conflicting : bool;
}

type stats = {
  name : string;
  stanzas : int;
  overlap_pairs : int;
  conflict_pairs : int;
}

val pairs : Config.Database.t -> Config.Route_map.t -> pair list
val analyze : Config.Database.t -> Config.Route_map.t -> stats

val witness :
  Config.Database.t ->
  Config.Route_map.t ->
  Config.Route_map.stanza ->
  Config.Route_map.stanza ->
  Bgp.Route.t option
(** A route matching both stanzas. *)

type chain_pair = {
  map_a : string;
  map_b : string;
  chain_stanza_a : Config.Route_map.stanza;
  chain_stanza_b : Config.Route_map.stanza;
}

val chain_pairs :
  Config.Database.t -> Config.Route_map.t list -> chain_pair list
(** Overlaps between stanzas of {e different} route-maps applied in
    sequence to the same neighbor — the paper notes these are common in
    cloud routers using chains of route-maps. *)
