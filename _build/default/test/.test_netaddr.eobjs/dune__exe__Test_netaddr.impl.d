test/test_netaddr.ml: Alcotest Format Intset Ipv4 List Netaddr Prefix Prefix_range QCheck QCheck_alcotest
