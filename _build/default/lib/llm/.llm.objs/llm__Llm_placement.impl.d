lib/llm/llm_placement.ml: Config List
