lib/config/as_path_list.ml: Action Format List Sre
