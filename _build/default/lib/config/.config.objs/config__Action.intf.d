lib/config/action.mli: Format
