examples/overlap_audit.ml: Bgp Config Format List Netaddr Overlap Sys
