(** Symbolic BGP route space.

    Variable layout: prefix bits 0-31, prefix length 32-37, local-pref
    38-69, metric 70-101, tag 102-133, then one atom variable per
    community in the finite community universe, then one per as-path
    access-list in scope.

    {b Community abstraction.} Expanded community lists match regexes
    against a route's community set, which is unbounded. We restrict the
    modelled routes to those whose communities come from a finite
    universe [U] computed from everything in scope: all concrete
    communities appearing in standard lists, set clauses and
    specifications, plus witnesses of every expanded regex and of every
    pairwise difference of regexes, plus one community matching none of
    them. Every subset of [U] is a real community set, so all examples
    extracted from the space are sound; enriching [U] with difference
    witnesses makes the analysis complete for behavioural differences
    expressible by the regexes in scope.

    {b AS-path abstraction.} Each as-path access-list in scope becomes a
    boolean atom "this list permits the route's path". Not every atom
    valuation is realizable by a concrete path; feasibility is decided
    lazily with the symbolic regex engine (intersections of accept
    languages and their complements), infeasible valuations are blocked
    from the space, and feasible ones are memoized with a concrete
    witness path used in extracted example routes. *)

open Symbdd

let pfx_ip = Bvec.sequential ~first:0 ~width:32
let pfx_len = Bvec.sequential ~first:32 ~width:6
let local_pref = Bvec.sequential ~first:38 ~width:32
let metric = Bvec.sequential ~first:70 ~width:32
let tag = Bvec.sequential ~first:102 ~width:32
let atom_base = 134

module Apr = Sre.As_path_regex
module R = Apr.R

type t = {
  comm_universe : Bgp.Community.t array;
  as_path_lists : Config.As_path_list.t array;
  accept_langs : R.re array; (* per as-path list: paths it permits *)
  mutable blocked : Bdd.t; (* negations of infeasible as-path atom cubes *)
  combo_table : (bool list, int list option) Hashtbl.t;
}

let comm_var ctx c =
  let rec find i =
    if i >= Array.length ctx.comm_universe then None
    else if Bgp.Community.equal ctx.comm_universe.(i) c then
      Some (atom_base + i)
    else find (i + 1)
  in
  find 0

let as_path_atom_count ctx = Array.length ctx.as_path_lists

let as_path_var ctx (al : Config.As_path_list.t) =
  let rec find i =
    if i >= Array.length ctx.as_path_lists then None
    else if ctx.as_path_lists.(i) = al then
      Some (atom_base + Array.length ctx.comm_universe + i)
    else find (i + 1)
  in
  find 0

(* Paths on which the list's first matching entry is a permit. *)
let accept_language (al : Config.As_path_list.t) =
  let rec go earlier = function
    | [] -> R.empty
    | (e : Config.As_path_list.entry) :: rest ->
        let lang = R.inter_list (Apr.regex e.regex :: List.map R.compl earlier) in
        let tail = go (Apr.regex e.regex :: earlier) rest in
        if Config.Action.equal e.action Config.Action.Permit then
          R.alt lang tail
        else tail
  in
  go [] al.Config.As_path_list.entries

(* ------------------------------------------------------------------ *)
(* Context construction                                               *)
(* ------------------------------------------------------------------ *)

(* Everything community-related referenced by a route-map in a database. *)
let scan_route_map db (rm : Config.Route_map.t) =
  let comms = ref [] and regexes = ref [] and as_lists = ref [] in
  let scan_comm_list name =
    match Config.Database.community_list db name with
    | None -> ()
    | Some cl -> (
        match cl.Config.Community_list.body with
        | Config.Community_list.Standard entries ->
            List.iter
              (fun (e : Config.Community_list.standard_entry) ->
                comms := e.communities @ !comms)
              entries
        | Config.Community_list.Expanded entries ->
            List.iter
              (fun (e : Config.Community_list.expanded_entry) ->
                regexes := e.regex :: !regexes)
              entries)
  in
  List.iter
    (fun (s : Config.Route_map.stanza) ->
      List.iter
        (function
          | Config.Route_map.Match_community names ->
              List.iter scan_comm_list names
          | Config.Route_map.Match_as_path names ->
              List.iter
                (fun n ->
                  match Config.Database.as_path_list db n with
                  | Some al -> as_lists := al :: !as_lists
                  | None -> ())
                names
          | _ -> ())
        s.matches;
      List.iter
        (function
          | Config.Route_map.Set_community { communities; _ } ->
              comms := communities @ !comms
          | Config.Route_map.Set_comm_list_delete name -> scan_comm_list name
          | _ -> ())
        s.sets)
    rm.Config.Route_map.stanzas;
  (!comms, !regexes, !as_lists)

let build_comm_universe concrete regexes =
  let u = ref (List.sort_uniq Bgp.Community.compare concrete) in
  let add = function
    | Some (a, b) ->
        let c = Bgp.Community.make a b in
        if not (List.exists (Bgp.Community.equal c) !u) then u := c :: !u
    | None -> ()
  in
  let regexes = List.sort_uniq Stdlib.compare regexes in
  (* One witness per regex, one per pairwise difference, one matching
     nothing: enough to distinguish any boolean combination in scope. *)
  List.iter (fun r -> add (Sre.Community_regex.sat_witness ~pos:[ r ] ~neg:[])) regexes;
  List.iter
    (fun r1 ->
      List.iter
        (fun r2 ->
          if r1 != r2 then
            add (Sre.Community_regex.sat_witness ~pos:[ r1 ] ~neg:[ r2 ]))
        regexes)
    regexes;
  add (Sre.Community_regex.sat_witness ~pos:[] ~neg:regexes);
  Array.of_list (List.sort Bgp.Community.compare !u)

let create ?(extra_communities = []) ?(extra_comm_regexes = [])
    ?(extra_as_path_lists = []) (scope : (Config.Database.t * Config.Route_map.t list) list) =
  let comms = ref extra_communities
  and regexes = ref extra_comm_regexes
  and as_lists = ref extra_as_path_lists in
  List.iter
    (fun (db, route_maps) ->
      List.iter
        (fun rm ->
          let c, r, a = scan_route_map db rm in
          comms := c @ !comms;
          regexes := r @ !regexes;
          as_lists := a @ !as_lists)
        route_maps)
    scope;
  let as_path_lists =
    Array.of_list (List.sort_uniq Stdlib.compare !as_lists)
  in
  {
    comm_universe = build_comm_universe !comms !regexes;
    as_path_lists;
    accept_langs = Array.map accept_language as_path_lists;
    blocked = Bdd.one;
    combo_table = Hashtbl.create 16;
  }

(* A private copy for a worker that shares the immutable universe but
   owns the mutable feasibility state ([blocked], [combo_table]), so
   concurrent workers layered on one compiled context never race. *)
let fork ctx =
  { ctx with combo_table = Hashtbl.copy ctx.combo_table }

(** Routes representable in this context: prefix length at most 32. *)
let valid _ctx = Bvec.le_const pfx_len 32

(* ------------------------------------------------------------------ *)
(* Match-condition compilation                                        *)
(* ------------------------------------------------------------------ *)

(* Prefix-range and prefix-list compilations are context-independent
   (they touch only the prefix bit-vectors), so they are memoized in
   the manager's compilation cache under canonical content keys. *)
let range_key (r : Netaddr.Prefix_range.t) =
  Printf.sprintf "%d/%d:%d-%d"
    (Netaddr.Ipv4.to_int r.prefix.Netaddr.Prefix.ip)
    r.prefix.Netaddr.Prefix.len r.lo r.hi

let of_prefix_range (r : Netaddr.Prefix_range.t) =
  Bdd.cached
    ~key:("route.prefix_range;" ^ range_key r)
    (fun () ->
      Bdd.conj
        (Bvec.prefix_match pfx_ip
           ~value:(Netaddr.Ipv4.to_int r.prefix.Netaddr.Prefix.ip)
           ~len:r.prefix.Netaddr.Prefix.len)
        (Bvec.in_range pfx_len r.lo r.hi))

(* Keyed by full content (not name): two lists with equal entries share
   one compilation, and a list reused under the same name but edited
   content never sees a stale BDD. *)
let prefix_list_key (pl : Config.Prefix_list.t) =
  String.concat ";"
    ("route.prefix_list"
    :: List.map
         (fun (e : Config.Prefix_list.entry) ->
           (if Config.Action.equal e.action Config.Action.Permit then "p"
            else "d")
           ^ range_key e.range)
         pl.Config.Prefix_list.entries)

let of_prefix_list (pl : Config.Prefix_list.t) =
  Bdd.cached ~key:(prefix_list_key pl) (fun () ->
      let rec go unmatched = function
        | [] -> Bdd.zero
        | (e : Config.Prefix_list.entry) :: rest ->
            let m = of_prefix_range e.range in
            let here = Bdd.conj unmatched m in
            let tail = go (Bdd.conj unmatched (Bdd.neg m)) rest in
            if Config.Action.equal e.action Config.Action.Permit then
              Bdd.disj here tail
            else tail
      in
      go Bdd.one pl.Config.Prefix_list.entries)

(* "Route carries at least one community in the regex's language",
   relative to the universe. *)
let of_comm_regex ctx regex =
  let acc = ref Bdd.zero in
  Array.iteri
    (fun i c ->
      if Sre.Community_regex.matches regex (Bgp.Community.to_pair c) then
        acc := Bdd.disj (Bdd.var (atom_base + i)) !acc)
    ctx.comm_universe;
  !acc

let of_standard_entry ctx (e : Config.Community_list.standard_entry) =
  List.fold_left
    (fun acc c ->
      match comm_var ctx c with
      | Some v -> Bdd.conj (Bdd.var v) acc
      | None -> Bdd.zero (* community outside the universe: unmatchable *))
    Bdd.one e.communities

let of_community_list ctx (cl : Config.Community_list.t) =
  let entry_bdds =
    match cl.Config.Community_list.body with
    | Config.Community_list.Standard entries ->
        List.map
          (fun (e : Config.Community_list.standard_entry) ->
            (e.action, of_standard_entry ctx e))
          entries
    | Config.Community_list.Expanded entries ->
        List.map
          (fun (e : Config.Community_list.expanded_entry) ->
            (e.action, of_comm_regex ctx e.regex))
          entries
  in
  let rec go unmatched = function
    | [] -> Bdd.zero
    | (action, m) :: rest ->
        let here = Bdd.conj unmatched m in
        let tail = go (Bdd.conj unmatched (Bdd.neg m)) rest in
        if Config.Action.equal action Config.Action.Permit then
          Bdd.disj here tail
        else tail
  in
  go Bdd.one entry_bdds

let of_as_path_list ctx (al : Config.As_path_list.t) =
  match as_path_var ctx al with
  | Some v -> Bdd.var v
  | None ->
      invalid_arg
        (Printf.sprintf
           "Route_ctx: as-path list %s was not in scope when the context was \
            built"
           al.Config.As_path_list.name)

let of_match_clause ctx db = function
  | Config.Route_map.Match_prefix_list names ->
      Bdd.disj_list
        (List.map
           (fun n ->
             match Config.Database.prefix_list db n with
             | Some pl -> of_prefix_list pl
             | None -> Bdd.zero)
           names)
  | Config.Route_map.Match_community names ->
      Bdd.disj_list
        (List.map
           (fun n ->
             match Config.Database.community_list db n with
             | Some cl -> of_community_list ctx cl
             | None -> Bdd.zero)
           names)
  | Config.Route_map.Match_as_path names ->
      Bdd.disj_list
        (List.map
           (fun n ->
             match Config.Database.as_path_list db n with
             | Some al -> of_as_path_list ctx al
             | None -> Bdd.zero)
           names)
  | Config.Route_map.Match_local_pref n -> Bvec.eq_const local_pref n
  | Config.Route_map.Match_metric n -> Bvec.eq_const metric n
  | Config.Route_map.Match_tag tags ->
      Bdd.disj_list (List.map (Bvec.eq_const tag) tags)

let of_stanza ctx db (s : Config.Route_map.stanza) =
  Bdd.conj_list (List.map (of_match_clause ctx db) s.matches)

(* ------------------------------------------------------------------ *)
(* Symbolic execution of a route-map                                  *)
(* ------------------------------------------------------------------ *)

type cell = {
  guard : Bdd.t;
  action : Config.Action.t;
  sets : Config.Route_map.set_clause list;
  stanza_seq : int option; (* [None] for the implicit trailing deny *)
}

(** Ordered first-match partition of the route space; guards are
    pairwise disjoint and cover everything, the last cell being the
    implicit deny. *)
let exec ctx db (rm : Config.Route_map.t) =
  let rec go unmatched = function
    | [] ->
        [
          {
            guard = unmatched;
            action = Config.Action.Deny;
            sets = [];
            stanza_seq = None;
          };
        ]
    | (s : Config.Route_map.stanza) :: rest ->
        let m = of_stanza ctx db s in
        {
          guard = Bdd.conj unmatched m;
          action = s.action;
          sets = s.sets;
          stanza_seq = Some s.seq;
        }
        :: go (Bdd.conj unmatched (Bdd.neg m)) rest
  in
  go Bdd.one rm.Config.Route_map.stanzas

(** Prefix execution: [i]th element is the set of routes that fall
    through (match none of) stanzas [0..i-1], so index 0 is the full
    space and index [n] is the implicit-deny guard. One traversal of
    the map yields every insertion point's reachability at once — the
    foundation of the incremental boundary engine (DESIGN.md §11). *)
let exec_prefixes ctx db (rm : Config.Route_map.t) =
  let stanzas = Array.of_list rm.Config.Route_map.stanzas in
  let n = Array.length stanzas in
  let reach = Array.make (n + 1) Bdd.one in
  for i = 0 to n - 1 do
    reach.(i + 1) <- Bdd.conj reach.(i) (Bdd.neg (of_stanza ctx db stanzas.(i)))
  done;
  reach

(** Routes the map accepts (any permit stanza). *)
let accepted ctx db rm =
  Bdd.disj_list
    (List.filter_map
       (fun c ->
         if Config.Action.equal c.action Config.Action.Permit then Some c.guard
         else None)
       (exec ctx db rm))

(* ------------------------------------------------------------------ *)
(* Model extraction                                                   *)
(* ------------------------------------------------------------------ *)

(* Witness path for a full as-path atom valuation, or None if
   infeasible; memoized. *)
let combo_witness ctx combo =
  match Hashtbl.find_opt ctx.combo_table combo with
  | Some w -> w
  | None ->
      let lang =
        R.inter_list
          (List.mapi
             (fun i b ->
               if b then ctx.accept_langs.(i) else R.compl ctx.accept_langs.(i))
             combo)
      in
      let w = R.shortest_witness lang in
      Hashtbl.add ctx.combo_table combo w;
      w

(* All completions of a partial atom valuation, most-significant first. *)
let rec completions = function
  | [] -> [ [] ]
  | Some b :: rest -> List.map (fun c -> b :: c) (completions rest)
  | None :: rest ->
      let cs = completions rest in
      List.map (fun c -> false :: c) cs @ List.map (fun c -> true :: c) cs


(* Find a feasible as-path valuation extending the assignment; also
   returns the chosen combo for blocking bookkeeping. *)
let feasible_path ctx assignment =
  let n = as_path_atom_count ctx in
  let base = atom_base + Array.length ctx.comm_universe in
  let partial =
    List.init n (fun i -> List.assoc_opt (base + i) assignment)
  in
  match
    List.find_map
      (fun combo ->
        match combo_witness ctx combo with
        | Some path -> Some (path, combo)
        | None -> None)
      (completions partial)
  with
  | Some (path, combo) -> Some (path, combo)
  | None -> None

(* Conjoin the negation of the partial atom cube into [blocked]. *)
let block ctx assignment =
  let base = atom_base + Array.length ctx.comm_universe in
  let n = as_path_atom_count ctx in
  let cube =
    Bdd.conj_list
      (List.filter_map
         (fun i ->
           match List.assoc_opt (base + i) assignment with
           | Some true -> Some (Bdd.var (base + i))
           | Some false -> Some (Bdd.nvar (base + i))
           | None -> None)
         (List.init n Fun.id))
  in
  ctx.blocked <- Bdd.conj ctx.blocked (Bdd.neg cube)

(** Extract a concrete route from a region of the space, or [None] if
    the region is empty (after removing infeasible as-path valuations). *)
(* Bias unconstrained attributes toward BGP defaults (local-pref 100,
   metric/tag 0) so extracted examples look like real advertisements. *)
let prefer_defaults b =
  List.fold_left
    (fun b c ->
      let b' = Bdd.conj b c in
      if Bdd.is_sat b' then b' else b)
    b
    [
      Bvec.eq_const local_pref 100;
      Bvec.eq_const metric 0;
      Bvec.eq_const tag 0;
    ]

let rec to_route ctx bdd =
  let b = Bdd.conj_list [ bdd; valid ctx; ctx.blocked ] in
  if Bdd.is_zero b then None
  else
    let a = Bdd.any_sat (prefer_defaults b) in
    match feasible_path ctx a with
    | None ->
        block ctx a;
        to_route ctx bdd
    | Some (path, _) ->
        let len = Bvec.decode pfx_len a in
        let ip = Netaddr.Ipv4.of_int (Bvec.decode pfx_ip a) in
        let communities =
          List.filteri
            (fun i _ ->
              List.assoc_opt (atom_base + i) a = Some true)
            (Array.to_list ctx.comm_universe)
        in
        Some
          (Bgp.Route.make
             ~as_path:path ~communities
             ~local_pref:(Bvec.decode local_pref a)
             ~metric:(Bvec.decode metric a) ~tag:(Bvec.decode tag a)
             (Netaddr.Prefix.make ip len))

(** Satisfiability of a region under the feasibility constraints,
    i.e. "does a real route live here". *)
let is_sat ctx bdd = to_route ctx bdd <> None

(* ------------------------------------------------------------------ *)
(* Concrete-route encoding                                            *)
(* ------------------------------------------------------------------ *)

(** The BDD environment describing a concrete route, for evaluating
    region membership with {!Symbdd.Bdd.eval}. Sound for any route whose
    communities all lie in the context universe; communities outside the
    universe are not representable (their membership reads as false). *)
let route_env ctx (r : Bgp.Route.t) =
  let bit_of bv value v =
    (* Position of [v] within the bit-vector, MSB first. *)
    let vars = Bvec.vars bv in
    let rec idx i = function
      | [] -> None
      | x :: rest -> if x = v then Some i else idx (i + 1) rest
    in
    Option.map
      (fun i -> value land (1 lsl (List.length vars - 1 - i)) <> 0)
      (idx 0 vars)
  in
  fun v ->
    let try_fields =
      List.find_map Fun.id
        [
          bit_of pfx_ip (Netaddr.Ipv4.to_int r.prefix.Netaddr.Prefix.ip) v;
          bit_of pfx_len r.prefix.Netaddr.Prefix.len v;
          bit_of local_pref r.local_pref v;
          bit_of metric r.metric v;
          bit_of tag r.tag v;
        ]
    in
    match try_fields with
    | Some b -> b
    | None ->
        let ncomm = Array.length ctx.comm_universe in
        if v >= atom_base && v < atom_base + ncomm then
          List.exists
            (Bgp.Community.equal ctx.comm_universe.(v - atom_base))
            r.communities
        else if
          v >= atom_base + ncomm
          && v < atom_base + ncomm + Array.length ctx.as_path_lists
        then
          Config.As_path_list.matches
            ctx.as_path_lists.(v - atom_base - ncomm)
            r.as_path
        else false

(** All of a route's communities lie in the context universe. *)
let representable ctx (r : Bgp.Route.t) =
  List.for_all
    (fun c ->
      Array.exists (Bgp.Community.equal c) ctx.comm_universe)
    r.communities
