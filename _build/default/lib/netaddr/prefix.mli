(** IPv4 CIDR prefixes, canonicalized so that host bits are zero. *)

type t = private { ip : Ipv4.t; len : int }

val make : Ipv4.t -> int -> t
(** [make ip len] canonicalizes [ip] by zeroing bits beyond [len].
    @raise Invalid_argument unless [0 <= len <= 32]. *)

val of_string : string -> t option
(** Parse ["a.b.c.d/len"]. Host bits are zeroed silently. *)

val of_string_exn : string -> t
val to_string : t -> string

val default : t
(** [0.0.0.0/0]. *)

val host : Ipv4.t -> t
(** The /32 prefix of a single address. *)

val contains_ip : t -> Ipv4.t -> bool

val subset : t -> t -> bool
(** [subset p q] iff every address of [p] is in [q]. *)

val overlap : t -> t -> bool
(** [overlap p q] iff the prefixes share at least one address, i.e. one
    is a subset of the other. *)

val first : t -> Ipv4.t
val last : t -> Ipv4.t

val split : t -> (t * t) option
(** Split into the two half-prefixes; [None] when [len = 32]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
