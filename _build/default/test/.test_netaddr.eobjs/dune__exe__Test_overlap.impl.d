test/test_overlap.ml: Acl Action Alcotest Config Database List Option Overlap Parser QCheck QCheck_alcotest Random Route_map Semantics Workload
