test/test_config.ml: Acl Action Alcotest As_path_list Bgp Community_list Config Database Format List Netaddr Option Packet Parser Prefix_list QCheck QCheck_alcotest Route_map Semantics Transform
