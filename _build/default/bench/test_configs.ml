(* The two extreme insertion candidates of the paper's Figure 2, used by
   the compareRoutePolicies benchmark. *)

let fig2a =
  {|ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
ip prefix-list D1 seq 30 permit 1.0.0.0/20 ge 24
ip community-list expanded D2 permit _300:3_
ip prefix-list D3 permit 100.0.0.0/16 le 23
route-map ISP_OUT permit 10
 match community D2
 match ip address prefix-list D3
 set metric 55
route-map ISP_OUT deny 20
 match as-path D0
route-map ISP_OUT deny 30
 match ip address prefix-list D1
route-map ISP_OUT permit 40
 match local-preference 300|}

let fig2b =
  {|ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
ip prefix-list D1 seq 30 permit 1.0.0.0/20 ge 24
ip community-list expanded D2 permit _300:3_
ip prefix-list D3 permit 100.0.0.0/16 le 23
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300
route-map ISP_OUT permit 40
 match community D2
 match ip address prefix-list D3
 set metric 55|}
