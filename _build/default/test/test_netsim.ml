open Netsim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let pfx = Netaddr.Prefix.of_string_exn
let ip = Netaddr.Ipv4.of_string_exn

let parse_ok src =
  match Config.Parser.parse src with
  | Ok db -> db
  | Error m -> Alcotest.failf "parse failed: %s" m

(* ------------------------------------------------------------------ *)
(* Topology validation                                                *)
(* ------------------------------------------------------------------ *)

let test_topology_validation () =
  let r name ~neighbors =
    Topology.router name ~asn:1 ~router_ip:(ip "1.1.1.1") ~neighbors
  in
  (* Unidirectional session rejected. *)
  (try
     ignore
       (Topology.make
          [ r "A" ~neighbors:[ Topology.neighbor "B" ]; r "B" ~neighbors:[] ]);
     Alcotest.fail "expected Invalid_topology"
   with Topology.Invalid_topology _ -> ());
  (* Unknown neighbor rejected. *)
  (try
     ignore (Topology.make [ r "A" ~neighbors:[ Topology.neighbor "Z" ] ]);
     Alcotest.fail "expected Invalid_topology"
   with Topology.Invalid_topology _ -> ());
  (* Undefined route-map rejected. *)
  try
    ignore
      (Topology.make
         [
           r "A" ~neighbors:[ Topology.neighbor "B" ~import:[ "NOPE" ] ];
           r "B" ~neighbors:[ Topology.neighbor "A" ];
         ]);
    Alcotest.fail "expected Invalid_topology"
  with Topology.Invalid_topology _ -> ()

(* ------------------------------------------------------------------ *)
(* Basic propagation                                                  *)
(* ------------------------------------------------------------------ *)

(* A -- B -- C line. *)
let line_topology () =
  Topology.make
    [
      Topology.router "A" ~asn:1 ~router_ip:(ip "1.0.0.1")
        ~originated:[ pfx "11.0.0.0/8" ]
        ~neighbors:[ Topology.neighbor "B" ];
      Topology.router "B" ~asn:2 ~router_ip:(ip "2.0.0.1")
        ~neighbors:[ Topology.neighbor "A"; Topology.neighbor "C" ];
      Topology.router "C" ~asn:3 ~router_ip:(ip "3.0.0.1")
        ~originated:[ pfx "33.0.0.0/8" ]
        ~neighbors:[ Topology.neighbor "B" ];
    ]

let test_line_propagation () =
  let state = Simulator.run (line_topology ()) in
  check "converged" true state.Simulator.converged;
  (* C hears A's prefix with path [2; 1]. *)
  (match Simulator.lookup state ~router:"C" ~prefix:(pfx "11.0.0.0/8") with
  | Some e ->
      Alcotest.(check (list int)) "as path" [ 2; 1 ] e.route.Bgp.Route.as_path;
      check "via B" true (e.learned_from = Some "B");
      check "next hop is B" true
        (Netaddr.Ipv4.equal e.route.Bgp.Route.next_hop (ip "2.0.0.1"))
  | None -> Alcotest.fail "C should reach 11.0.0.0/8");
  (* And symmetrically. *)
  check "A reaches C" true
    (Simulator.reaches state ~router:"A" ~prefix:(pfx "33.0.0.0/8"))

let test_loop_prevention () =
  (* Triangle where every router originates; no as-path loops appear. *)
  let t =
    Topology.make
      [
        Topology.router "A" ~asn:1 ~router_ip:(ip "1.0.0.1")
          ~originated:[ pfx "11.0.0.0/8" ]
          ~neighbors:[ Topology.neighbor "B"; Topology.neighbor "C" ];
        Topology.router "B" ~asn:2 ~router_ip:(ip "2.0.0.1")
          ~neighbors:[ Topology.neighbor "A"; Topology.neighbor "C" ];
        Topology.router "C" ~asn:3 ~router_ip:(ip "3.0.0.1")
          ~neighbors:[ Topology.neighbor "A"; Topology.neighbor "B" ];
      ]
  in
  let state = Simulator.run t in
  check "converged" true state.Simulator.converged;
  List.iter
    (fun router ->
      List.iter
        (fun (_, (e : Simulator.rib_entry)) ->
          let path = e.route.Bgp.Route.as_path in
          check "no duplicate ASNs" true
            (List.length path = List.length (List.sort_uniq Int.compare path)))
        (Simulator.rib state router))
    [ "A"; "B"; "C" ]

let test_best_path_selection () =
  (* D hears X's prefix from two paths; the longer one loses. *)
  let t =
    Topology.make
      [
        Topology.router "X" ~asn:10 ~router_ip:(ip "10.0.0.1")
          ~originated:[ pfx "99.0.0.0/8" ]
          ~neighbors:[ Topology.neighbor "S"; Topology.neighbor "L1" ];
        Topology.router "S" ~asn:20 ~router_ip:(ip "20.0.0.1")
          ~neighbors:[ Topology.neighbor "X"; Topology.neighbor "D" ];
        Topology.router "L1" ~asn:30 ~router_ip:(ip "30.0.0.1")
          ~neighbors:[ Topology.neighbor "X"; Topology.neighbor "L2" ];
        Topology.router "L2" ~asn:31 ~router_ip:(ip "31.0.0.1")
          ~neighbors:[ Topology.neighbor "L1"; Topology.neighbor "D" ];
        Topology.router "D" ~asn:40 ~router_ip:(ip "40.0.0.1")
          ~neighbors:[ Topology.neighbor "S"; Topology.neighbor "L2" ];
      ]
  in
  let state = Simulator.run t in
  match Simulator.lookup state ~router:"D" ~prefix:(pfx "99.0.0.0/8") with
  | Some e -> check "short path wins" true (e.learned_from = Some "S")
  | None -> Alcotest.fail "D should reach 99.0.0.0/8"

let test_local_pref_beats_path_length () =
  (* Import policy bumps local-pref on the longer path; it must win. *)
  let prefer =
    parse_ok
      {|
ip prefix-list ALL permit 0.0.0.0/0 le 32
route-map PREFER permit 10
 match ip address prefix-list ALL
 set local-preference 300
|}
  in
  let t =
    Topology.make
      [
        Topology.router "X" ~asn:10 ~router_ip:(ip "10.0.0.1")
          ~originated:[ pfx "99.0.0.0/8" ]
          ~neighbors:[ Topology.neighbor "S"; Topology.neighbor "L1" ];
        Topology.router "S" ~asn:20 ~router_ip:(ip "20.0.0.1")
          ~neighbors:[ Topology.neighbor "X"; Topology.neighbor "D" ];
        Topology.router "L1" ~asn:30 ~router_ip:(ip "30.0.0.1")
          ~neighbors:[ Topology.neighbor "X"; Topology.neighbor "L2" ];
        Topology.router "L2" ~asn:31 ~router_ip:(ip "31.0.0.1")
          ~neighbors:[ Topology.neighbor "L1"; Topology.neighbor "D" ];
        Topology.router "D" ~asn:40 ~router_ip:(ip "40.0.0.1") ~config:prefer
          ~neighbors:
            [
              Topology.neighbor "S";
              Topology.neighbor "L2" ~import:[ "PREFER" ];
            ];
      ]
  in
  let state = Simulator.run t in
  match Simulator.lookup state ~router:"D" ~prefix:(pfx "99.0.0.0/8") with
  | Some e ->
      check "local-pref wins" true (e.learned_from = Some "L2");
      check_int "lp 300" 300 e.route.Bgp.Route.local_pref
  | None -> Alcotest.fail "D should reach 99.0.0.0/8"

let test_export_filter () =
  let filter =
    parse_ok
      {|
ip prefix-list SECRET permit 11.0.0.0/8
route-map OUT deny 10
 match ip address prefix-list SECRET
route-map OUT permit 20
|}
  in
  let t =
    Topology.make
      [
        Topology.router "A" ~asn:1 ~router_ip:(ip "1.0.0.1") ~config:filter
          ~originated:[ pfx "11.0.0.0/8"; pfx "12.0.0.0/8" ]
          ~neighbors:[ Topology.neighbor "B" ~export:[ "OUT" ] ];
        Topology.router "B" ~asn:2 ~router_ip:(ip "2.0.0.1")
          ~neighbors:[ Topology.neighbor "A" ];
      ]
  in
  let state = Simulator.run t in
  check "filtered prefix hidden" false
    (Simulator.reaches state ~router:"B" ~prefix:(pfx "11.0.0.0/8"));
  check "other prefix visible" true
    (Simulator.reaches state ~router:"B" ~prefix:(pfx "12.0.0.0/8"))

let test_communities_propagate () =
  let tagger =
    parse_ok
      {|
ip prefix-list ALL permit 0.0.0.0/0 le 32
route-map TAG permit 10
 match ip address prefix-list ALL
 set community 65000:100 additive
|}
  in
  let t =
    Topology.make
      [
        Topology.router "A" ~asn:1 ~router_ip:(ip "1.0.0.1")
          ~originated:[ pfx "11.0.0.0/8" ]
          ~neighbors:[ Topology.neighbor "B" ];
        Topology.router "B" ~asn:2 ~router_ip:(ip "2.0.0.1") ~config:tagger
          ~neighbors:
            [
              Topology.neighbor "A" ~import:[ "TAG" ]; Topology.neighbor "C";
            ];
        Topology.router "C" ~asn:3 ~router_ip:(ip "3.0.0.1")
          ~neighbors:[ Topology.neighbor "B" ];
      ]
  in
  let state = Simulator.run t in
  match Simulator.lookup state ~router:"C" ~prefix:(pfx "11.0.0.0/8") with
  | Some e ->
      check "community survives the next hop" true
        (Bgp.Route.has_community e.route (Bgp.Community.make 65000 100))
  | None -> Alcotest.fail "C should reach 11.0.0.0/8"

(* ------------------------------------------------------------------ *)
(* Figure 3 with the reference configuration                          *)
(* ------------------------------------------------------------------ *)

let test_reference_policies () =
  let state = Simulator.run (Figure3.reference ()) in
  check "converged" true state.Simulator.converged;
  let results = Policies.check_all state in
  List.iter
    (fun (r : Policies.result) ->
      check (r.policy ^ " — " ^ r.detail) true r.holds)
    results

let test_reference_details () =
  let state = Simulator.run (Figure3.reference ()) in
  (* M reaches the service via R1 with local-pref 200. *)
  (match
     Simulator.lookup state ~router:"M" ~prefix:Figure3.service_prefix
   with
  | Some e ->
      check "via R1" true (e.learned_from = Some "R1");
      check_int "lp 200" 200 e.route.Bgp.Route.local_pref
  | None -> Alcotest.fail "M should reach the service prefix");
  (* ISPs see each other's prefixes only directly, never via us; with no
     direct ISP1-ISP2 session they see nothing of each other. *)
  check "isp1 blind to isp2" false
    (Simulator.reaches state ~router:"ISP1" ~prefix:Figure3.isp2_prefix);
  (* The datacenter still reaches ISP routes (no policy forbids it). *)
  check "dc reaches isp1 space" true
    (Simulator.reaches state ~router:"DC" ~prefix:Figure3.isp1_prefix)

let test_policies_fail_without_configs () =
  (* With empty border configs (implicit-deny placeholder maps removed:
     no import/export chains at all), reused prefixes leak and bogons
     reach the ISPs: the checker must notice. *)
  let t =
    Figure3.topology
      ~r1_config:(Figure3.placeholder_maps Figure3.r1_maps)
      ~r2_config:(Figure3.placeholder_maps Figure3.r2_maps)
      ~m_config:(Figure3.placeholder_maps Figure3.m_maps)
      ~dc_config:Config.Database.empty
  in
  let state = Simulator.run t in
  let results = Policies.check_all state in
  (* Placeholder maps deny everything, so the service prefix cannot
     reach M: P2 and P3 fail. *)
  let failed = List.filter (fun (r : Policies.result) -> not r.holds) results in
  check "some policies fail" true (failed <> [])

(* ------------------------------------------------------------------ *)
(* iBGP                                                               *)
(* ------------------------------------------------------------------ *)

(* AS 200 = {B, C, E}; external feed A (AS 100) peers with B. *)
let ibgp_topology ~full_mesh =
  let lp =
    parse_ok
      {|
ip prefix-list ALL permit 0.0.0.0/0 le 32
route-map LP250 permit 10
 match ip address prefix-list ALL
 set local-preference 250
|}
  in
  Topology.make
    (List.concat
       [
         [
           Topology.router "A" ~asn:100 ~router_ip:(ip "1.0.0.1")
             ~originated:[ pfx "11.0.0.0/8" ]
             ~neighbors:[ Topology.neighbor "B" ];
           Topology.router "B" ~asn:200 ~router_ip:(ip "2.0.0.1") ~config:lp
             ~neighbors:
               (List.concat
                  [
                    [ Topology.neighbor "A" ~import:[ "LP250" ];
                      Topology.neighbor "C" ];
                    (if full_mesh then [ Topology.neighbor "E" ] else []);
                  ]);
           Topology.router "C" ~asn:200 ~router_ip:(ip "2.0.0.2")
             ~neighbors:[ Topology.neighbor "B"; Topology.neighbor "E" ];
           Topology.router "E" ~asn:200 ~router_ip:(ip "2.0.0.3")
             ~neighbors:
               (List.concat
                  [
                    [ Topology.neighbor "C" ];
                    (if full_mesh then [ Topology.neighbor "B" ] else []);
                  ]);
         ];
       ])

let test_ibgp_no_prepend_and_lp () =
  let state = Simulator.run (ibgp_topology ~full_mesh:true) in
  match Simulator.lookup state ~router:"C" ~prefix:(pfx "11.0.0.0/8") with
  | Some e ->
      (* Only the eBGP hop appears in the path; the import-time local
         preference survives the iBGP hop. *)
      Alcotest.(check (list int)) "path has only AS 100" [ 100 ]
        e.route.Bgp.Route.as_path;
      check_int "local-pref propagated" 250 e.route.Bgp.Route.local_pref
  | None -> Alcotest.fail "C should learn the external route over iBGP"

let test_ibgp_full_mesh_rule () =
  (* Without a B-E session, E must NOT learn the route: C may not
     re-advertise an iBGP-learned route to another iBGP peer. *)
  let partial = Simulator.run (ibgp_topology ~full_mesh:false) in
  check "E blind without full mesh" false
    (Simulator.reaches partial ~router:"E" ~prefix:(pfx "11.0.0.0/8"));
  let full = Simulator.run (ibgp_topology ~full_mesh:true) in
  check "E learns with full mesh" true
    (Simulator.reaches full ~router:"E" ~prefix:(pfx "11.0.0.0/8"))

(* ------------------------------------------------------------------ *)
(* Random-topology properties                                         *)
(* ------------------------------------------------------------------ *)

(* A random tree over n routers (edge i connects node i+1 to a random
   earlier node), each originating one private prefix, no policies. *)
let gen_tree =
  QCheck.Gen.(
    int_range 2 8 >>= fun n ->
    list_size (return (n - 1)) (int_range 0 1000) >>= fun parents ->
    let parent = Array.of_list parents in
    let neighbors = Array.make n [] in
    Array.iteri
      (fun i p ->
        let child = i + 1 and parent = p mod (i + 1) in
        neighbors.(child) <- parent :: neighbors.(child);
        neighbors.(parent) <- child :: neighbors.(parent))
      parent;
    return
      (Topology.make
         (List.init n (fun i ->
              Topology.router
                (Printf.sprintf "N%d" i)
                ~asn:(1000 + i)
                ~router_ip:(Netaddr.Ipv4.of_octets 10 0 i 1)
                ~originated:[ Netaddr.Prefix.make (Netaddr.Ipv4.of_octets 40 i 0 0) 16 ]
                ~neighbors:
                  (List.map
                     (fun j -> Topology.neighbor (Printf.sprintf "N%d" j))
                     neighbors.(i))))))

let arb_tree =
  QCheck.make ~print:(Format.asprintf "%a" Topology.pp) gen_tree

let prop_tree_full_reachability =
  QCheck.Test.make ~name:"policy-free trees: everyone reaches everything"
    ~count:100 arb_tree
    (fun t ->
      let state = Simulator.run t in
      state.Simulator.converged
      && List.for_all
           (fun (r : Topology.router) ->
             List.for_all
               (fun (o : Topology.router) ->
                 List.for_all
                   (fun p -> Simulator.reaches state ~router:r.name ~prefix:p)
                   o.Topology.originated)
               t.Topology.routers)
           t.Topology.routers)

let prop_tree_paths_loop_free =
  QCheck.Test.make ~name:"tree RIB paths never repeat an ASN" ~count:100
    arb_tree
    (fun t ->
      let state = Simulator.run t in
      List.for_all
        (fun (r : Topology.router) ->
          List.for_all
            (fun (_, (e : Simulator.rib_entry)) ->
              let path = e.route.Bgp.Route.as_path in
              List.length path = List.length (List.sort_uniq Int.compare path))
            (Simulator.rib state r.name))
        t.Topology.routers)

let prop_simulation_deterministic =
  QCheck.Test.make ~name:"simulation is deterministic" ~count:50 arb_tree
    (fun t ->
      let a = Simulator.run t and b = Simulator.run t in
      List.for_all
        (fun (r : Topology.router) ->
          Simulator.rib a r.name = Simulator.rib b r.name)
        t.Topology.routers)

let () =
  Alcotest.run "netsim"
    [
      ( "topology",
        [ Alcotest.test_case "validation" `Quick test_topology_validation ] );
      ( "simulator",
        [
          Alcotest.test_case "line propagation" `Quick test_line_propagation;
          Alcotest.test_case "loop prevention" `Quick test_loop_prevention;
          Alcotest.test_case "shortest path wins" `Quick test_best_path_selection;
          Alcotest.test_case "local-pref beats length" `Quick
            test_local_pref_beats_path_length;
          Alcotest.test_case "export filter" `Quick test_export_filter;
          Alcotest.test_case "communities propagate" `Quick
            test_communities_propagate;
        ] );
      ( "ibgp",
        [
          Alcotest.test_case "no prepend, lp propagates" `Quick
            test_ibgp_no_prepend_and_lp;
          Alcotest.test_case "full-mesh rule" `Quick test_ibgp_full_mesh_rule;
        ] );
      ( "random-topologies",
        [
          QCheck_alcotest.to_alcotest prop_tree_full_reachability;
          QCheck_alcotest.to_alcotest prop_tree_paths_loop_free;
          QCheck_alcotest.to_alcotest prop_simulation_deterministic;
        ] );
      ( "figure3",
        [
          Alcotest.test_case "five policies hold" `Quick test_reference_policies;
          Alcotest.test_case "details" `Quick test_reference_details;
          Alcotest.test_case "unconfigured network fails" `Quick
            test_policies_fail_without_configs;
        ] );
    ]
