(* Pull-based live metrics.

   [Server] answers [GET /metrics] with the Prometheus rendering of a
   fresh [Obs.Snapshot.capture] from a background systhread. Within one
   domain, systhreads interleave under the runtime lock (they never run
   simultaneously), so the serving thread's registry reads are as safe
   as any same-domain reader; shards owned by still-running worker
   domains are merged as racy-but-memory-safe reads, which is exactly
   the live-view contract ([Obs] interface docs).

   [Scrape] is the matching minimal client: a one-shot HTTP GET over a
   Unix socket plus a parser for the exposition text, shared by
   [clarify top] and the round-trip tests.

   [Top] turns two scrapes into a terminal dashboard: windowed rates
   from counter deltas, p50/p99 from cumulative histogram buckets, and
   per-domain pool utilization from the [parallel.task_ns{domain=N}]
   busy-time series. *)

(* ------------------------------------------------------------------ *)
(* Server                                                             *)
(* ------------------------------------------------------------------ *)

module Server = struct
  type t = {
    sock : Unix.file_descr;
    port : int;
    mutable running : bool;
    mutable thread : Thread.t option;
  }

  let http_response ~status ~content_type body =
    Printf.sprintf
      "HTTP/1.1 %s\r\n\
       Content-Type: %s\r\n\
       Content-Length: %d\r\n\
       Connection: close\r\n\
       \r\n\
       %s"
      status content_type (String.length body) body

  let metrics_body () =
    Obs.Snapshot.to_prometheus ~help:(Obs.help_index ())
      (Obs.Snapshot.capture ())

  let handle fd =
    (* Only the request line matters; 4KB is plenty for it. *)
    let buf = Bytes.create 4096 in
    let n = try Unix.read fd buf 0 4096 with _ -> 0 in
    let req = Bytes.sub_string buf 0 (max 0 n) in
    let target =
      match String.split_on_char '\r' req with
      | line :: _ -> (
          match String.split_on_char ' ' line with
          | meth :: path :: _ when String.uppercase_ascii meth = "GET" ->
              Some path
          | _ -> None)
      | [] -> None
    in
    let resp =
      match target with
      | Some path
        when path = "/metrics" || String.starts_with ~prefix:"/metrics?" path
        ->
          http_response ~status:"200 OK"
            ~content_type:"text/plain; version=0.0.4; charset=utf-8"
            (metrics_body ())
      | Some _ ->
          http_response ~status:"404 Not Found" ~content_type:"text/plain"
            "not found\n"
      | None ->
          http_response ~status:"400 Bad Request" ~content_type:"text/plain"
            "bad request\n"
    in
    (try
       let len = String.length resp in
       let rec put o =
         if o < len then put (o + Unix.write_substring fd resp o (len - o))
       in
       put 0
     with _ -> ());
    try Unix.close fd with _ -> ()

  (* Connections are served sequentially in the one background thread:
     the consumers are a scraper and a watch loop, each polling every
     few hundred milliseconds at most. *)
  let accept_loop t =
    while t.running do
      match Unix.accept t.sock with
      | fd, _ -> if t.running then handle fd else ( try Unix.close fd with _ -> ())
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
          t.running <- false
      | exception _ -> if t.running then Thread.yield ()
    done

  let start ?(host = "127.0.0.1") ~port () =
    match
      let addr = Unix.inet_addr_of_string host in
      let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.setsockopt sock Unix.SO_REUSEADDR true;
         Unix.bind sock (Unix.ADDR_INET (addr, port));
         Unix.listen sock 16
       with e ->
         (try Unix.close sock with _ -> ());
         raise e);
      let port =
        match Unix.getsockname sock with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      (sock, port)
    with
    | exception e -> Error (Printexc.to_string e)
    | sock, port ->
        let t = { sock; port; running = true; thread = None } in
        t.thread <- Some (Thread.create accept_loop t);
        Ok t

  let port t = t.port

  let stop t =
    if t.running then begin
      t.running <- false;
      (* Wake the blocked accept with a throwaway connection so the
         loop observes [running = false] and exits. *)
      (try
         let c = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
         Fun.protect
           ~finally:(fun () -> try Unix.close c with _ -> ())
           (fun () ->
             Unix.connect c (Unix.ADDR_INET (Unix.inet_addr_loopback, t.port)))
       with _ -> ());
      Option.iter Thread.join t.thread;
      try Unix.close t.sock with _ -> ()
    end
end

(* ------------------------------------------------------------------ *)
(* Scrape                                                             *)
(* ------------------------------------------------------------------ *)

module Scrape = struct
  type sample = {
    metric : string;
    labels : (string * string) list;
    value : float;
  }

  type t = { types : (string * string) list; samples : sample list }

  (* Split "name{labels} value" at the closing brace (label values may
     contain spaces and escaped quotes), or at the first space for
     label-free samples. *)
  let split_sample line =
    match String.index_opt line '{' with
    | None -> (
        match String.index_opt line ' ' with
        | None -> None
        | Some i ->
            Some
              ( String.sub line 0 i,
                String.trim
                  (String.sub line (i + 1) (String.length line - i - 1)) ))
    | Some b -> (
        let n = String.length line in
        let rec close i inq =
          if i >= n then None
          else
            match line.[i] with
            | '\\' when inq -> close (i + 2) inq
            | '"' -> close (i + 1) (not inq)
            | '}' when not inq -> Some i
            | _ -> close (i + 1) inq
        in
        match close (b + 1) false with
        | None -> None
        | Some e ->
            Some
              ( String.sub line 0 (e + 1),
                String.trim (String.sub line (e + 1) (n - e - 1)) ))

  let parse_value s =
    (* Drop an optional trailing timestamp. *)
    let s =
      match String.index_opt s ' ' with
      | Some i -> String.sub s 0 i
      | None -> s
    in
    match s with
    | "+Inf" -> Some infinity
    | "-Inf" -> Some neg_infinity
    | "NaN" -> Some (Float.of_string "nan")
    | s -> float_of_string_opt s

  let parse text =
    let err = ref None in
    let types = ref [] in
    let samples = ref [] in
    List.iteri
      (fun ln line ->
        if !err = None then
          let line = String.trim line in
          if line = "" then ()
          else if String.length line > 0 && line.[0] = '#' then begin
            match String.split_on_char ' ' line with
            | "#" :: "TYPE" :: name :: typ :: _ ->
                types := (name, typ) :: !types
            | _ -> () (* HELP, UNIT, EOF, arbitrary comments *)
          end
          else
            match split_sample line with
            | None ->
                err := Some (Printf.sprintf "line %d: not a sample: %s"
                               (ln + 1) line)
            | Some (name, v) -> (
                match parse_value v with
                | None ->
                    err :=
                      Some
                        (Printf.sprintf "line %d: bad value %S" (ln + 1) v)
                | Some value ->
                    (* The label syntax matches the registry's own
                       full-name encoding, so the parser is shared. *)
                    let metric, labels = Obs.Labels.parse name in
                    samples := { metric; labels; value } :: !samples))
      (String.split_on_char '\n' text);
    match !err with
    | Some e -> Error e
    | None -> Ok { types = List.rev !types; samples = List.rev !samples }

  let fetch ?(host = "127.0.0.1") ~port path =
    match
      let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
      let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close sock with _ -> ())
        (fun () ->
          Unix.connect sock addr;
          let req =
            Printf.sprintf
              "GET %s HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n" path
              host
          in
          ignore (Unix.write_substring sock req 0 (String.length req));
          let buf = Buffer.create 8192 in
          let chunk = Bytes.create 8192 in
          let rec drain () =
            let n = Unix.read sock chunk 0 8192 in
            if n > 0 then begin
              Buffer.add_subbytes buf chunk 0 n;
              drain ()
            end
          in
          drain ();
          Buffer.contents buf)
    with
    | exception e -> Error (Printexc.to_string e)
    | resp -> (
        let header_end =
          let n = String.length resp in
          let rec find i =
            if i + 4 > n then None
            else if String.sub resp i 4 = "\r\n\r\n" then Some (i + 4)
            else find (i + 1)
          in
          find 0
        in
        match header_end with
        | None -> Error "malformed HTTP response (no header terminator)"
        | Some body_at -> (
            let body =
              String.sub resp body_at (String.length resp - body_at)
            in
            match String.split_on_char ' ' resp with
            | _ :: "200" :: _ -> Ok body
            | _ :: code :: _ -> Error (Printf.sprintf "HTTP %s" code)
            | _ -> Error "malformed HTTP status line"))
end

(* ------------------------------------------------------------------ *)
(* Top                                                                *)
(* ------------------------------------------------------------------ *)

module Top = struct
  type hist = {
    count : float;
    sum_ns : float;
    buckets : (float * float) list; (* (upper_bound, cumulative), sorted *)
  }

  type snap = {
    at : float; (* seconds, caller's clock *)
    counters : (string * float) list; (* series name -> total *)
    gauges : (string * float) list;
    hists : (string * hist) list;
  }

  let empty_hist = { count = 0.; sum_ns = 0.; buckets = [] }

  let of_scrape ~at (sc : Scrape.t) =
    let series base labels = base ^ Obs.Labels.encode labels in
    let counters = ref [] in
    let gauges = ref [] in
    let htbl : (string, hist) Hashtbl.t = Hashtbl.create 32 in
    let hist_update key f =
      Hashtbl.replace htbl key
        (f (Option.value ~default:empty_hist (Hashtbl.find_opt htbl key)))
    in
    let histogram_family metric suffix =
      if String.ends_with ~suffix metric then
        let f =
          String.sub metric 0 (String.length metric - String.length suffix)
        in
        if List.assoc_opt f sc.Scrape.types = Some "histogram" then Some f
        else None
      else None
    in
    List.iter
      (fun { Scrape.metric; labels; value } ->
        match List.assoc_opt metric sc.Scrape.types with
        | Some "counter" -> counters := (series metric labels, value) :: !counters
        | Some "gauge" -> gauges := (series metric labels, value) :: !gauges
        | _ -> (
            match histogram_family metric "_bucket" with
            | Some f ->
                let bound =
                  match List.assoc_opt "le" labels with
                  | Some "+Inf" -> infinity
                  | Some s -> Option.value ~default:0. (float_of_string_opt s)
                  | None -> 0.
                in
                hist_update
                  (series f (List.remove_assoc "le" labels))
                  (fun h -> { h with buckets = (bound, value) :: h.buckets })
            | None -> (
                match histogram_family metric "_sum" with
                | Some f ->
                    hist_update (series f labels) (fun h ->
                        { h with sum_ns = value })
                | None -> (
                    match histogram_family metric "_count" with
                    | Some f ->
                        hist_update (series f labels) (fun h ->
                            { h with count = value })
                    | None -> () (* untyped or unknown sample: skip *)))))
      sc.Scrape.samples;
    let by_name l = List.sort (fun (a, _) (b, _) -> String.compare a b) l in
    let hists =
      Hashtbl.fold
        (fun k h acc ->
          (k, { h with buckets = List.sort compare h.buckets }) :: acc)
        htbl []
      |> by_name
    in
    { at; counters = by_name !counters; gauges = by_name !gauges; hists }

  (* Upper bound of the bucket containing quantile [q] of the
     cumulative distribution; the +Inf overflow bucket is clamped to
     the last finite bound so the estimate stays printable. *)
  let quantile q (h : hist) =
    if h.count <= 0. then 0.
    else
      let target = q *. h.count in
      let rec go last = function
        | [] -> last
        | (b, cum) :: rest ->
            let last = if b = infinity then last else b in
            if cum >= target then last else go last rest
      in
      go 0. h.buckets

  let pp_ns ns =
    if ns >= 1e9 then Printf.sprintf "%.2fs" (ns /. 1e9)
    else if ns >= 1e6 then Printf.sprintf "%.1fms" (ns /. 1e6)
    else if ns >= 1e3 then Printf.sprintf "%.1fus" (ns /. 1e3)
    else Printf.sprintf "%.0fns" ns

  let pp_float v =
    if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
    else Printf.sprintf "%.2f" v

  (* Per-domain utilization over the window: busy ns from the
     [parallel.task_ns] sum delta divided by window wall ns. *)
  let utilization ~prev ~cur =
    let dt_ns = Float.max 1. ((cur.at -. prev.at) *. 1e9) in
    List.filter_map
      (fun (name, (h : hist)) ->
        let base, labels = Obs.Labels.parse name in
        match (base, List.assoc_opt "domain" labels) with
        | "clarify_parallel_task_ns", Some d ->
            let before =
              match List.assoc_opt name prev.hists with
              | Some p -> p.sum_ns
              | None -> 0.
            in
            Some (d, Float.min 1. (Float.max 0. ((h.sum_ns -. before) /. dt_ns)))
        | _ -> None)
      cur.hists

  let gauge snap name = Option.value ~default:0. (List.assoc_opt name snap.gauges)

  (* Sum a counter family across all its labelled series. Prometheus
     counter sample names carry the [_total] suffix, so that is part of
     the family name here. *)
  let family_total snap family =
    List.fold_left
      (fun acc (name, v) ->
        let base, _ = Obs.Labels.parse name in
        if base = family then acc +. v else acc)
      0. snap.counters

  (* The fleet pane: router progress from the fleet.* gauges an E5 run
     maintains, with completion rate and straggler-tail latency. Token
     pricing lives in the LLM layer, which this library must not depend
     on — the caller passes it in as a closure. *)
  let fleet_pane ?cost_of_tokens ~prev ~cur b =
    let pending = gauge cur "clarify_fleet_routers_pending" in
    let running = gauge cur "clarify_fleet_routers_running" in
    let done_ = gauge cur "clarify_fleet_routers_done" in
    let total = pending +. running +. done_ in
    if total <= 0. then
      Printf.bprintf b
        "\nFLEET        no fleet run visible (fleet.* gauges are zero)\n"
    else begin
      let dt = Float.max 1e-9 (cur.at -. prev.at) in
      let done_before = gauge prev "clarify_fleet_routers_done" in
      (* Same reset-clamp as the counter table: a fresh run restarts the
         done gauge at zero. *)
      let rate = Float.max 0. ((done_ -. done_before) /. dt) in
      let frac = Float.min 1. (done_ /. total) in
      let width = 32 in
      let full = int_of_float (frac *. float_of_int width) in
      Printf.bprintf b "\nFLEET        [%s%s] %.0f/%.0f routers (%.0f%%)\n"
        (String.make full '#')
        (String.make (width - full) '.')
        done_ total (frac *. 100.);
      Printf.bprintf b
        "  pending %-6.0f running %-6.0f done %-6.0f stragglers %.0f\n"
        pending running done_
        (gauge cur "clarify_fleet_stragglers");
      (match List.assoc_opt "clarify_fleet_router_ns" cur.hists with
      | Some h when h.count > 0. ->
          Printf.bprintf b "  router wall p50 %s  p99 %s  done %.1f/s%s\n"
            (pp_ns (quantile 0.50 h))
            (pp_ns (quantile 0.99 h))
            rate
            (if rate > 0. && pending +. running > 0. then
               Printf.sprintf "  eta %.0fs" ((pending +. running) /. rate)
             else "")
      | _ -> ());
      let questions = family_total cur "clarify_disambiguator_questions_total" in
      let prompt = family_total cur "clarify_llm_tokens_prompt_total" in
      let completion = family_total cur "clarify_llm_tokens_completion_total" in
      if questions > 0. || prompt +. completion > 0. then
        Printf.bprintf b "  questions %.0f  tokens %.0f prompt / %.0f completion%s\n"
          questions prompt completion
          (match cost_of_tokens with
          | Some f -> (
              match f ~prompt ~completion with
              | Some usd -> Printf.sprintf "  ~$%.4f" usd
              | None -> "")
          | None -> "")
    end

  let render ?(fleet = false) ?cost_of_tokens ~prev ~cur () =
    let b = Buffer.create 2048 in
    let dt = Float.max 1e-9 (cur.at -. prev.at) in
    Printf.bprintf b
      "clarify top — window %.1fs — %d counters, %d gauges, %d histograms\n"
      dt
      (List.length cur.counters)
      (List.length cur.gauges)
      (List.length cur.hists);
    if fleet then fleet_pane ?cost_of_tokens ~prev ~cur b;
    (* Counters by windowed rate. *)
    let rates =
      List.map
        (fun (name, total) ->
          let before =
            Option.value ~default:0. (List.assoc_opt name prev.counters)
          in
          (* A restarted process resets its counters; a negative delta
             would render as a nonsense negative rate, so clamp to 0. *)
          (name, Float.max 0. ((total -. before) /. dt), total))
        cur.counters
      |> List.sort (fun (_, ra, ta) (_, rb, tb) ->
             match compare rb ra with 0 -> compare tb ta | c -> c)
    in
    if rates <> [] then begin
      Printf.bprintf b "\n%-58s %12s %12s\n" "COUNTER" "rate/s" "total";
      List.iteri
        (fun i (name, rate, total) ->
          if i < 14 then
            Printf.bprintf b "%-58s %12.1f %12.0f\n" name rate total)
        rates
    end;
    (* Histograms by windowed observation count. *)
    let hrows =
      List.map
        (fun (name, (h : hist)) ->
          let before =
            match List.assoc_opt name prev.hists with
            | Some p -> p.count
            | None -> 0.
          in
          (name, h, Float.max 0. ((h.count -. before) /. dt)))
        cur.hists
      |> List.sort (fun (_, (a : hist), ra) (_, b, rb) ->
             match compare rb ra with 0 -> compare b.count a.count | c -> c)
    in
    if hrows <> [] then begin
      Printf.bprintf b "\n%-50s %8s %9s %9s %9s\n" "HISTOGRAM" "obs/s" "p50"
        "p99" "n";
      List.iteri
        (fun i (name, h, rate) ->
          if i < 10 then
            Printf.bprintf b "%-50s %8.1f %9s %9s %9.0f\n" name rate
              (pp_ns (quantile 0.50 h))
              (pp_ns (quantile 0.99 h))
              h.count)
        hrows
    end;
    (match utilization ~prev ~cur with
    | [] -> ()
    | util ->
        Printf.bprintf b "\nPOOL UTILIZATION (busy fraction per domain)\n";
        List.iter
          (fun (d, u) ->
            let width = 32 in
            let full = int_of_float (u *. float_of_int width) in
            Printf.bprintf b "  domain %-3s [%s%s] %3.0f%%\n" d
              (String.make full '#')
              (String.make (width - full) '.')
              (u *. 100.))
          (List.sort compare util));
    if cur.gauges <> [] then begin
      Printf.bprintf b "\n%-58s %12s\n" "GAUGE" "value";
      List.iteri
        (fun i (name, v) ->
          if i < 16 then Printf.bprintf b "%-58s %12s\n" name (pp_float v))
        cur.gauges
    end;
    Buffer.contents b
end
