(** Extended regular expressions over a predicate alphabet, with
    Brzozowski derivatives and lazy symbolic DFA exploration.

    Supports intersection and complement in addition to the standard
    operators, which is what the configuration analyses need: language
    emptiness of boolean combinations of as-path lists decides the
    feasibility of symbolic atom valuations, and shortest witnesses
    become concrete example paths and communities.

    Constructors normalize aggressively (ACI laws and identities) so the
    derivative closure of any regex is finite and all searches
    terminate. *)

exception Too_many_states
(** Raised when determinization exceeds the state limit — a safety
    valve; the regexes appearing in router configurations stay tiny. *)

module Make (A : Alphabet.S) : sig
  type re

  val compare_re : re -> re -> int
  val equal_re : re -> re -> bool

  (** {2 Constructors (normalizing)} *)

  val empty : re (* ∅ *)
  val eps : re
  val all : re (* every word *)
  val any : re (* any single symbol *)
  val pred : A.pred -> re
  val cat : re -> re -> re
  val alt : re -> re -> re
  val alt_list : re list -> re
  val inter : re -> re -> re
  val inter_list : re list -> re
  val star : re -> re
  val plus : re -> re
  val opt : re -> re
  val compl : re -> re

  (** {2 Semantics} *)

  val nullable : re -> bool
  val deriv : A.sym -> re -> re
  val matches : re -> A.sym list -> bool

  (** {2 Symbolic DFA} *)

  type dfa = {
    states : re array;
    accepting : bool array;
    trans : (A.pred * int) list array; (* minterms: total per state *)
  }

  val default_state_limit : int

  val build_dfa : ?state_limit:int -> re -> dfa
  (** Lazy breadth-first determinization over local minterms.
      @raise Too_many_states past the limit. *)

  val dfa_accepts : dfa -> A.sym list -> bool

  val shortest_witness : ?state_limit:int -> re -> A.sym list option
  (** Shortest accepted word, by BFS over the DFA. *)

  val is_empty_lang : ?state_limit:int -> re -> bool

  val witnesses : ?state_limit:int -> limit:int -> re -> A.sym list list
  (** Up to [limit] accepted words in shortest-first order; each DFA
      edge contributes one representative symbol, so this enumerates
      distinct witness shapes rather than all words. *)

  val pp : Format.formatter -> re -> unit
end
