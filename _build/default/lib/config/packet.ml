(** IPv4 packet headers as matched by extended access lists. *)

type protocol = Ip | Tcp | Udp | Icmp | Proto of int

type t = {
  src : Netaddr.Ipv4.t;
  dst : Netaddr.Ipv4.t;
  protocol : protocol; (* [Ip] never appears in a concrete packet *)
  src_port : int; (* meaningful for tcp/udp only *)
  dst_port : int;
  established : bool; (* TCP ACK or RST set *)
}

let protocol_number = function
  | Ip -> 0 (* placeholder; [Ip] is a match-any wildcard, not a protocol *)
  | Icmp -> 1
  | Tcp -> 6
  | Udp -> 17
  | Proto n -> n

let protocol_of_number = function
  | 1 -> Icmp
  | 6 -> Tcp
  | 17 -> Udp
  | n -> Proto n

let protocol_to_string = function
  | Ip -> "ip"
  | Tcp -> "tcp"
  | Udp -> "udp"
  | Icmp -> "icmp"
  | Proto n -> string_of_int n

let protocol_of_string = function
  | "ip" -> Some Ip
  | "tcp" -> Some Tcp
  | "udp" -> Some Udp
  | "icmp" -> Some Icmp
  | s -> (
      match int_of_string_opt s with
      | Some n when n >= 0 && n <= 255 -> Some (protocol_of_number n)
      | _ -> None)

let has_ports = function Tcp | Udp -> true | Ip | Icmp | Proto _ -> false

let make ?(protocol = Tcp) ?(src_port = 0) ?(dst_port = 0)
    ?(established = false) ~src ~dst () =
  { src; dst; protocol; src_port; dst_port; established }

let pp fmt p =
  Format.fprintf fmt "%s %a:%d -> %a:%d%s"
    (protocol_to_string p.protocol)
    Netaddr.Ipv4.pp p.src p.src_port Netaddr.Ipv4.pp p.dst p.dst_port
    (if p.established then " established" else "")
