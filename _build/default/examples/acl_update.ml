(* ACL update scenario: a firewall on a campus border needs to start
   blocking outbound SSH from the lab network. The existing ACL already
   permits all lab TCP traffic, so where the new rule lands matters; the
   disambiguator surfaces the conflict as a concrete packet.

   Run with: dune exec examples/acl_update.exe *)

let existing_config =
  {|ip access-list extended LAB_EDGE
 deny tcp any any eq 23
 permit tcp 10.20.0.0/16 any
 permit udp 10.20.0.0/16 any eq 53
 deny udp any any
 permit icmp 10.20.0.0/16 any|}

let intent =
  "Write an access list rule that denies tcp traffic from 10.20.0.0/16 to \
   any destination with destination port 22."

let () =
  let db =
    match Config.Parser.parse existing_config with
    | Ok db -> db
    | Error m -> failwith m
  in
  Format.printf "Existing ACL:@.%s@.@." existing_config;
  Format.printf "User intent:@.  %s@.@." intent;
  (* The operator wants SSH blocked, i.e. the new rule must win. *)
  let oracle q =
    Format.printf "%a@.@.Operator picks OPTION 1 (block it).@.@."
      Clarify.Acl_disambiguator.pp_question q;
    Clarify.Acl_disambiguator.Prefer_new
  in
  match
    Clarify.Pipeline.run_acl_update
      ~llm:(Llm.Mock_llm.create ())
      ~oracle ~db ~target:"LAB_EDGE" ~prompt:intent ()
  with
  | Error e -> failwith (Clarify.Pipeline.error_to_string e)
  | Ok report ->
      Format.printf "Rule inserted at position %d after %d question(s).@.@."
        report.Clarify.Pipeline.position
        (List.length report.Clarify.Pipeline.questions);
      Format.printf "Updated ACL:@.%a@.@." Config.Acl.pp
        report.Clarify.Pipeline.acl;
      (* Show that the update worked and broke nothing else. *)
      let probe ~dport =
        Config.Semantics.eval_acl report.Clarify.Pipeline.acl
          (Config.Packet.make ~protocol:Config.Packet.Tcp ~dst_port:dport
             ~src:(Netaddr.Ipv4.of_string_exn "10.20.5.5")
             ~dst:(Netaddr.Ipv4.of_string_exn "93.184.216.34")
             ())
      in
      Format.printf "Lab SSH (port 22) is now: %a@." Config.Action.pp
        (probe ~dport:22);
      Format.printf "Lab HTTPS (port 443) is still: %a@." Config.Action.pp
        (probe ~dport:443)
