(** Behavioural diff of two ACLs, used to generate differential packet
    examples for ACL insertion disambiguation. *)

type difference = {
  packet : Config.Packet.t;
  action_a : Config.Action.t;
  action_b : Config.Action.t;
  rule_a : int option; (* handling rule seq under A; None = implicit *)
  rule_b : int option;
}

val compare : ?limit:int -> Config.Acl.t -> Config.Acl.t -> difference list
(** All behavioural differences, one example packet per differing pair
    of execution cells, capped at [limit]. *)

val first_difference : Config.Acl.t -> Config.Acl.t -> difference option
val equal_behavior : Config.Acl.t -> Config.Acl.t -> bool
val pp_difference : Format.formatter -> difference -> unit
