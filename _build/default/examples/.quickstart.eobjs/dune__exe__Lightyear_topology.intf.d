examples/lightyear_topology.mli:
