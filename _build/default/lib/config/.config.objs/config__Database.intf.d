lib/config/database.mli: Acl As_path_list Community_list Format Map Prefix_list Route_map
