(** The paper's disambiguator (Section 4) for route-maps.

    Candidate placements of a verified stanza [S*] into a target map of
    [n] stanzas are positions [0..n]. Adjacent placements [i] and [i+1]
    differ exactly on routes that match [S*] and are handled by the
    original stanza at position [i]; such positions are {e boundaries},
    each carrying a differential example route computed by
    {!Engine.Compare_route_policies}. Under the paper's three
    well-formedness conditions on the intended semantics [M'], the
    user's boundary answers are monotone, so binary search finds the
    placement with a logarithmic number of questions. *)

type question = {
  position : int; (* boundary position, 0-based into the target *)
  boundary_seq : int; (* seq of the original stanza at that position *)
  route : Bgp.Route.t; (* differential example *)
  if_new_first : Config.Semantics.route_result;
  if_old_first : Config.Semantics.route_result;
}

type answer = Disambig_common.answer =
  | Prefer_new (* the route should be handled by the new stanza *)
  | Prefer_old (* the route should keep its existing behaviour *)

type oracle = question -> answer

type mode =
  | Binary_search (* the paper's Section 4 algorithm *)
  | Top_bottom (* the paper's prototype: only positions 0 and n *)
  | Linear (* ask every boundary; detects inconsistent intent *)

type outcome = {
  map : Config.Route_map.t; (* the target with the stanza inserted *)
  position : int;
  questions : question list; (* in the order asked *)
  boundaries : int; (* differing boundaries found *)
}

type error =
  | Inconsistent_intent of question list
      (** Linear mode found non-monotone answers: no single insertion
          point implements the user's wishes (paper condition 3 fails). *)
  | Top_bottom_insufficient of question list

val pp_question : Format.formatter -> question -> unit

val view : question -> Disambig_common.view
(** The telemetry rendering of a question — also the batch answer
    cache's key material. *)

val boundaries :
  ?pool:Parallel.Pool.t ->
  db:Config.Database.t ->
  target:Config.Route_map.t ->
  Config.Route_map.stanza ->
  question list
(** All differing boundaries with their differential examples, in
    position order, from one incremental sweep of
    {!Engine.Compare_route_policies.adjacent_insertions} (naive
    per-position comparison under [CLARIFY_NAIVE_BOUNDARIES=1]).
    [?pool] fans contiguous position chunks across worker domains.
    Exposed for tests and the evaluation harness. *)

val run :
  ?mode:mode ->
  ?pool:Parallel.Pool.t ->
  ?precomputed:question list ->
  db:Config.Database.t ->
  target:Config.Route_map.t ->
  stanza:Config.Route_map.stanza ->
  oracle:oracle ->
  unit ->
  (outcome, error) result
(** [?precomputed] skips the engine sweep and uses the given boundary
    questions (position order) — the batch pipeline's fast path, which
    translates boundaries from one shared multi-stanza sweep instead of
    recompiling the target per intent. *)

(** {2 Oracles} *)

val scripted : answer list -> oracle
(** Fixed answers in order; raises [Failure] when exhausted. *)

val intent_driven :
  (Bgp.Route.t -> Config.Semantics.route_result) -> oracle
(** The ideal user: answers according to a target semantics. *)

val always_new : oracle
val always_old : oracle
