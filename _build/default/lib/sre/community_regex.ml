(** Expanded community-list regular expressions.

    Cisco matches expanded community lists against the textual rendering
    of a route's communities. We interpret the regex against each
    individual community rendered as ["A:B"]: a route satisfies the
    regex iff at least one of its communities matches. Within a single
    community string:

    - a leading [_] (or [^]) anchors the start, a trailing [_] (or [$])
      anchors the end; an unanchored pattern is padded with [.*];
    - an internal [_] matches the [:] separator;
    - digits, [:], [.], [[..]] classes, [()], [|], [*], [+], [?] have
      their usual character-level meanings. *)

module R = Regex.Make (Alphabet.Char_)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let char_pred c = Netaddr.Intset.singleton (Char.code c)
let digit_pred = Netaddr.Intset.range (Char.code '0') (Char.code '9')

(* Characters that can legitimately appear in a community string. *)
let any_comm_char = Netaddr.Intset.union digit_pred (char_pred ':')

(* Parse the regex body (anchors already stripped). *)
let parse_body source =
  let n = String.length source in
  let pos = ref 0 in
  let peek () = if !pos < n then Some source.[!pos] else None in
  let advance () = incr pos in
  let rec body () =
    let t = term () in
    match peek () with
    | Some '|' ->
        advance ();
        R.alt t (body ())
    | _ -> t
  and term () =
    match peek () with
    | None | Some ('|' | ')') -> R.eps
    | Some _ -> (
        match factor () with None -> R.eps | Some f -> R.cat f (term ()))
  and factor () =
    let base =
      match peek () with
      | Some ('0' .. '9' as c) ->
          advance ();
          Some (R.pred (char_pred c))
      | Some ':' ->
          advance ();
          Some (R.pred (char_pred ':'))
      | Some '.' ->
          advance ();
          Some (R.pred any_comm_char)
      | Some '_' ->
          advance ();
          Some (R.pred (char_pred ':'))
      | Some '[' ->
          advance ();
          let set = ref Netaddr.Intset.empty in
          let continue = ref true in
          while !continue do
            match peek () with
            | Some ']' ->
                advance ();
                continue := false
            | Some c -> (
                advance ();
                match peek () with
                | Some '-' -> (
                    advance ();
                    match peek () with
                    | Some hi when hi <> ']' ->
                        advance ();
                        if Char.code c > Char.code hi then
                          fail "empty class range in %S" source;
                        set :=
                          Netaddr.Intset.union !set
                            (Netaddr.Intset.range (Char.code c) (Char.code hi))
                    | _ -> fail "bad class range in %S" source)
                | _ -> set := Netaddr.Intset.union !set (char_pred c))
            | None -> fail "unterminated class in %S" source
          done;
          Some (R.pred !set)
      | Some '(' ->
          advance ();
          let r = body () in
          (match peek () with
          | Some ')' -> advance ()
          | _ -> fail "expected ')' in %S" source);
          Some r
      | Some ('*' | '+' | '?') -> fail "dangling postfix in %S" source
      | Some ('^' | '$') -> assert false (* anchors pre-stripped *)
      | Some c -> fail "unexpected %C in community regex %S" c source
      | None -> None
    in
    match base with
    | None -> None
    | Some r ->
        let rec postfix r =
          match peek () with
          | Some '*' -> advance (); postfix (R.star r)
          | Some '+' -> advance (); postfix (R.plus r)
          | Some '?' -> advance (); postfix (R.opt r)
          | _ -> r
        in
        Some (postfix r)
  in
  let r = body () in
  if !pos < n then fail "unparsed trailing characters in %S" source;
  r

type t = { source : string; re : R.re }

let any_word = R.star (R.pred any_comm_char)

let compile source =
  let n = String.length source in
  let start_anchor =
    n > 0 && (match source.[0] with '^' | '_' -> true | _ -> false)
  in
  (* A single '_' is both a leading and a trailing anchor; guard so we
     do not strip the same character twice. *)
  let end_anchor =
    n > (if start_anchor then 1 else 0)
    &&
    match source.[n - 1] with
    | '_' -> true
    | '$' -> true
    | _ -> false
  in
  let lo = if start_anchor then 1 else 0 in
  let hi = if end_anchor then n - 1 else n in
  let body = parse_body (String.sub source lo (hi - lo)) in
  let body = if start_anchor then body else R.cat any_word body in
  let body = if end_anchor then body else R.cat body any_word in
  { source; re = body }

let source t = t.source
let regex t = t.re

let matches_string t s =
  R.matches t.re (List.init (String.length s) (String.get s))

(* Matching is defined per community; (a, b) is rendered as "a:b". *)
let render (a, b) = Printf.sprintf "%d:%d" a b
let matches t comm = matches_string t (render comm)

(* The language of syntactically valid community strings whose halves
   also satisfy the 16-bit bound is approximated by bounding each side
   to at most 5 digits; witnesses are bound-checked after extraction. *)
let valid_community =
  let digit = R.pred digit_pred in
  let digits_1_5 =
    R.cat digit (R.cat (R.opt digit) (R.cat (R.opt digit) (R.cat (R.opt digit) (R.opt digit))))
  in
  R.cat digits_1_5 (R.cat (R.pred (char_pred ':')) digits_1_5)

let parse_community s =
  match String.index_opt s ':' with
  | None -> None
  | Some i -> (
      let a = String.sub s 0 i and b = String.sub s (i + 1) (String.length s - i - 1) in
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some a, Some b when a >= 0 && a <= 65535 && b >= 0 && b <= 65535 ->
          Some (a, b)
      | _ -> None)

(** A concrete community matching all of [pos] and none of [neg], if one
    can be found. Complete up to the witness-enumeration budget: a [None]
    answer is almost always genuine infeasibility, but an adversarial
    regex whose only witnesses exceed 16-bit bounds could be missed. *)
let sat_witness ~pos ~neg =
  let r =
    R.inter_list
      (valid_community
       :: (List.map regex pos @ List.map (fun t -> R.compl t.re) neg))
  in
  let words = R.witnesses ~limit:64 r in
  List.find_map
    (fun word ->
      let s = String.init (List.length word) (List.nth word) in
      parse_community s)
    words

let intersects a b = Option.is_some (sat_witness ~pos:[ a; b ] ~neg:[])
let is_empty t = Option.is_some (R.shortest_witness t.re) = false
let pp fmt t = Format.fprintf fmt "%s" t.source
