(** A parsed configuration: named collections of every construct. *)

module Smap = Map.Make (String)

type t = {
  prefix_lists : Prefix_list.t Smap.t;
  community_lists : Community_list.t Smap.t;
  as_path_lists : As_path_list.t Smap.t;
  route_maps : Route_map.t Smap.t;
  acls : Acl.t Smap.t;
}

let empty =
  {
    prefix_lists = Smap.empty;
    community_lists = Smap.empty;
    as_path_lists = Smap.empty;
    route_maps = Smap.empty;
    acls = Smap.empty;
  }

let add_prefix_list t (pl : Prefix_list.t) =
  { t with prefix_lists = Smap.add pl.Prefix_list.name pl t.prefix_lists }

let add_community_list t (cl : Community_list.t) =
  {
    t with
    community_lists = Smap.add cl.Community_list.name cl t.community_lists;
  }

let add_as_path_list t (al : As_path_list.t) =
  { t with as_path_lists = Smap.add al.As_path_list.name al t.as_path_lists }

let add_route_map t (rm : Route_map.t) =
  { t with route_maps = Smap.add rm.Route_map.name rm t.route_maps }

let add_acl t (acl : Acl.t) =
  { t with acls = Smap.add acl.Acl.name acl t.acls }

let prefix_list t name = Smap.find_opt name t.prefix_lists
let community_list t name = Smap.find_opt name t.community_lists
let as_path_list t name = Smap.find_opt name t.as_path_lists
let route_map t name = Smap.find_opt name t.route_maps
let acl t name = Smap.find_opt name t.acls

let route_maps t = List.map snd (Smap.bindings t.route_maps)
let acls t = List.map snd (Smap.bindings t.acls)

let all_names t =
  List.concat
    [
      List.map fst (Smap.bindings t.prefix_lists);
      List.map fst (Smap.bindings t.community_lists);
      List.map fst (Smap.bindings t.as_path_lists);
      List.map fst (Smap.bindings t.route_maps);
      List.map fst (Smap.bindings t.acls);
    ]

(** Right-biased union: definitions in [b] shadow same-name definitions
    in [a]. *)
let merge a b =
  let right _ x y = match y with Some _ -> y | None -> x in
  let right k x y = right k x y in
  {
    prefix_lists =
      Smap.merge (fun k x y -> right k x y) a.prefix_lists b.prefix_lists;
    community_lists =
      Smap.merge (fun k x y -> right k x y) a.community_lists b.community_lists;
    as_path_lists =
      Smap.merge (fun k x y -> right k x y) a.as_path_lists b.as_path_lists;
    route_maps = Smap.merge (fun k x y -> right k x y) a.route_maps b.route_maps;
    acls = Smap.merge (fun k x y -> right k x y) a.acls b.acls;
  }

(** Names of ancillary lists a route-map references that are missing
    from the database — useful for validating LLM output, which loves to
    hallucinate list names. *)
let undefined_references t (rm : Route_map.t) =
  List.filter
    (fun (kind, name) ->
      match kind with
      | `Prefix_list -> prefix_list t name = None
      | `Community_list -> community_list t name = None
      | `As_path_list -> as_path_list t name = None)
    (Route_map.referenced_lists rm)

let pp fmt t =
  let sections =
    List.concat
      [
        List.map
          (fun (_, al) -> Format.asprintf "%a" As_path_list.pp al)
          (Smap.bindings t.as_path_lists);
        List.map
          (fun (_, cl) -> Format.asprintf "%a" Community_list.pp cl)
          (Smap.bindings t.community_lists);
        List.map
          (fun (_, pl) -> Format.asprintf "%a" Prefix_list.pp pl)
          (Smap.bindings t.prefix_lists);
        List.map
          (fun (_, acl) -> Format.asprintf "%a" Acl.pp acl)
          (Smap.bindings t.acls);
        List.map
          (fun (_, rm) -> Format.asprintf "%a" Route_map.pp rm)
          (Smap.bindings t.route_maps);
      ]
  in
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.fprintf fmt "@ ")
    Format.pp_print_string fmt sections
