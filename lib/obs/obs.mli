(** Process-wide observability: counters, latency histograms and
    hierarchical spans with pluggable sinks.

    The registry is global and zero-dependency (monotonic-ish time via a
    pluggable clock, [Sys.time] by default). Instrumented code pays a
    single [if enabled] branch per event while the layer is disabled, so
    it is safe to leave instrumentation in hot paths; recording only
    happens after {!enable}.

    Naming scheme (see DESIGN.md §Observability): counters and spans are
    dot-separated, [<subsystem>.<event>], e.g. [llm.calls.synthesize],
    [pipeline.verification_attempts], [bdd.nodes_allocated]. Span
    latencies are recorded automatically as histograms named by the full
    span path, e.g. [pipeline.route_map_update.disambiguate]. *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val subscribe_state : (bool -> unit) -> unit
(** [subscribe_state f] calls [f] immediately with the current state and
    again on every {!enable}/{!disable} transition. Used to wire
    external hooks (e.g. the BDD allocation hook) so that they cost
    nothing while the layer is off. *)

val set_clock : (unit -> float) -> unit
(** Replace the time source (seconds, monotonically non-decreasing).
    Default: [Unix.gettimeofday] — wall-clock, so span latencies include
    time spent blocked or sleeping (CPU time would hide it). Tests
    substitute a deterministic clock. *)

val now : unit -> float
(** The current reading of the (pluggable) clock, in seconds. The flight
    recorder stamps events with it so a deterministic test clock makes
    event timestamps deterministic too. *)

val reset : unit -> unit
(** Zero every counter and histogram, drop dynamically created labeled
    series, drop recorded spans (and the overflow count, sequence
    counter and open-span stack) and re-anchor the span start-offset
    origin. Zero-label metric registrations, sinks, subscribers and the
    enabled state are kept. *)

(** Metric dimensions. A label set is a list of [key, value] pairs
    (canonically sorted by key); a labeled metric is registered under
    [name{k="v",...}], so the unlabeled API is exactly the zero-label
    case and labeled series flow through snapshots, reports and the
    bench diff as ordinary metrics with richer names. *)
module Labels : sig
  type t = (string * string) list

  val canon : (string * string) list -> t
  (** Sort by key. *)

  val encode : t -> string
  (** The empty string for the empty set, [{k="v",k2="v2"}] otherwise,
      with double quotes and backslashes escaped inside values. *)

  val full_name : string -> t -> string
  (** [full_name base labels = base ^ encode labels]. *)
end

(** Monotonic event counters. *)
module Counter : sig
  type t

  val make : ?help:string -> string -> t
  (** Register (or look up) the counter with this name. [make] is
      idempotent: a second call with the same name returns the same
      counter. Equivalent to [labeled name []]. *)

  val labeled : ?help:string -> string -> (string * string) list -> t
  (** [labeled base kvs] registers (or looks up) one series of the
      [base] family per distinct label set. Idempotent per label set;
      the label list is canonicalized, so order does not matter. *)

  val incr : ?by:int -> t -> unit
  (** No-op while the layer is disabled. *)

  val value : t -> int

  val name : t -> string
  (** The full registered name, labels encoded. *)

  val base_name : t -> string
  val labels : t -> Labels.t
  val find : string -> t option
  val find_labeled : string -> (string * string) list -> t option
end

(** Latency histograms over fixed exponential buckets of nanoseconds
    (1us, 10us, ..., 10s, +inf). *)
module Histogram : sig
  type t

  val make : ?help:string -> string -> t
  (** Idempotent, like {!Counter.make}. *)

  val labeled : ?help:string -> string -> (string * string) list -> t
  (** One series per label set, like {!Counter.labeled}. *)

  val observe_ns : t -> float -> unit
  (** No-op while the layer is disabled. *)

  val count : t -> int
  val sum_ns : t -> float
  val max_ns : t -> float

  val buckets : t -> (float * int) list
  (** [(upper_bound_ns, cumulative_count)] pairs; the last upper bound
      is [infinity]. *)

  val name : t -> string
  val base_name : t -> string
  val labels : t -> Labels.t
  val find : string -> t option
  val find_labeled : string -> (string * string) list -> t option
end

(** A completed span. *)
module Span : sig
  type t = {
    path : string; (* dotted path including enclosing spans *)
    depth : int; (* 0 = root *)
    start_ns : float; (* begin offset from the origin of the last reset *)
    duration_ns : float;
    seq : int; (* completion order, 0-based since last reset *)
  }
end

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span. While disabled this is
    exactly [f ()]. While enabled the span nests under the innermost
    open span, its duration is recorded (also into a histogram named by
    the span path) and it is forwarded to the current sink — including
    when [f] raises. *)

val spans : unit -> Span.t list
(** Completed spans since the last {!reset}, in completion order. The
    buffer is capped; [dropped_spans] counts the overflow. *)

val current_path : unit -> string
(** The dotted path of the innermost open span, or [""] when no span is
    open (or the layer is disabled). Used by the flight recorder to
    correlate events with span latencies. *)

val dropped_spans : unit -> int

(** Where completed spans are streamed. *)
type sink = { on_span : Span.t -> unit }

val silent : sink
(** The default: spans are recorded in the buffer but not streamed. *)

val text_sink : Format.formatter -> sink
(** One indented line per span as it completes (children close before
    their parents, as in any close-order trace). *)

val json_sink : Buffer.t -> sink
(** One compact JSON object per line per span (JSONL), into an
    in-memory buffer. The buffer grows without bound, so prefer
    {!jsonl_sink} for long-running processes. *)

val jsonl_sink : out_channel -> sink
(** Same line format as {!json_sink}, streamed to a channel and flushed
    after every span, so long runs spill to disk instead of growing an
    unbounded buffer and a crash loses at most the open spans. *)

val tee : sink -> sink -> sink
(** [tee a b] forwards each span to [a] then [b]. *)

val set_sink : sink -> unit

val add_sink : sink -> unit
(** [add_sink s] composes [s] onto the current sink with {!tee}, so
    e.g. the flight recorder can capture spans without displacing a
    trace printer the user asked for. *)

val pp_duration : Format.formatter -> float -> unit
(** Nanoseconds rendered with a human unit (ns/us/ms/s). *)

val pp_report : Format.formatter -> unit -> unit
(** The full snapshot: every non-zero counter, then per-span-path
    latency aggregates (count, total, mean, max), then any other
    non-empty histogram. *)

val to_json : unit -> Json.t
(** The same snapshot as a JSON object:
    [{"counters": {...}, "histograms": {...}, "spans": [...]}]. *)

(** A frozen copy of the registry's aggregates, serializable to the
    stable schema used by bench snapshots ([BENCH.json]) and compared by
    [clarify obs diff]. *)
module Snapshot : sig
  type hist = {
    count : int;
    sum_ns : float;
    max_ns : float;
    buckets : (float * int) list;
        (** [(upper_bound_ns, cumulative_count)]; the overflow bound is
            [infinity], encoded in JSON as the string ["inf"]. *)
  }

  type t = {
    counters : (string * int) list; (* sorted by name, non-zero only *)
    histograms : (string * hist) list;
  }

  val take : unit -> t
  (** Freeze every non-zero counter and non-empty histogram. *)

  val mean_ns : hist -> float
  val equal : t -> t -> bool

  val to_json : t -> Json.t

  val of_json : Json.t -> (t, string) result
  (** Inverse of {!to_json}: [of_json (to_json s) = Ok s]. *)
end
