(** Deterministic fault injection for the simulated LLM.

    Real LLMs mistranslate intents in characteristic ways; each fault
    below models one error class observed in LLM-generated router
    configuration (wrong mask bounds, inverted actions, hallucinated
    list names, dropped or altered set clauses, malformed syntax). A
    fault transforms the synthesized config {e text}, exactly where a
    real model's error would appear. *)

type fault =
  | Mask_off_by_one (* "le 23" becomes "le 24" *)
  | Flip_action (* permit <-> deny on the stanza line *)
  | Hallucinate_name (* reference an undefined list *)
  | Drop_set_clause (* lose a "set ..." line *)
  | Wrong_set_value (* numeric set argument off by one *)
  | Wrong_community (* community value off by one *)
  | Syntax_error (* mangle the route-map keyword *)

let all_faults =
  [
    Mask_off_by_one;
    Flip_action;
    Hallucinate_name;
    Drop_set_clause;
    Wrong_set_value;
    Wrong_community;
    Syntax_error;
  ]

let fault_to_string = function
  | Mask_off_by_one -> "mask-off-by-one"
  | Flip_action -> "flip-action"
  | Hallucinate_name -> "hallucinate-name"
  | Drop_set_clause -> "drop-set-clause"
  | Wrong_set_value -> "wrong-set-value"
  | Wrong_community -> "wrong-community"
  | Syntax_error -> "syntax-error"

(* Observability: total injections plus one labeled series per fault
   class, so a breakdown by class is one label dimension rather than
   seven unrelated metric names. *)
let injected_total =
  Obs.Counter.make "llm.faults.injected" ~help:"faults injected into completions"

let class_counter fault =
  Obs.Counter.labeled "llm.faults.injected"
    [ ("class", fault_to_string fault) ]

let map_lines f text =
  String.split_on_char '\n' text |> List.filter_map f |> String.concat "\n"

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Replace the first occurrence of a regex-free needle. *)
let replace_first line needle replacement =
  let hn = String.length line and nn = String.length needle in
  let rec find i =
    if i + nn > hn then None
    else if String.sub line i nn = needle then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i ->
      Some
        (String.sub line 0 i ^ replacement
        ^ String.sub line (i + nn) (hn - i - nn))

(* Bump the last integer on the line by one. *)
let bump_last_int line =
  let n = String.length line in
  let rec last_digit i = if i < 0 then None else if line.[i] >= '0' && line.[i] <= '9' then Some i else last_digit (i - 1) in
  match last_digit (n - 1) with
  | None -> None
  | Some hi ->
      let rec lo i =
        if i < 0 || line.[i] < '0' || line.[i] > '9' then i + 1 else lo (i - 1)
      in
      let lo = lo hi in
      let v = int_of_string (String.sub line lo (hi - lo + 1)) in
      Some
        (String.sub line 0 lo
        ^ string_of_int (v + 1)
        ^ String.sub line (hi + 1) (n - hi - 1))

(** Apply a fault to the config text. Returns [None] when the fault has
    nothing to corrupt (e.g. no mask bound present); callers then fall
    back to the next scheduled fault or to clean output. *)
let apply fault text =
  let changed = ref false in
  let once f line = if !changed then Some line else match f line with Some l -> changed := true; Some l | None -> Some line in
  let result =
    match fault with
    | Mask_off_by_one ->
        map_lines
          (once (fun line ->
               if starts_with "ip prefix-list" line then
                 match bump_last_int line with
                 | Some l when l <> line -> Some l
                 | _ -> None
               else None))
          text
    | Flip_action ->
        map_lines
          (once (fun line ->
               if starts_with "route-map" line || String.trim line |> starts_with "permit" || String.trim line |> starts_with "deny" then
                 match replace_first line " permit " " deny " with
                 | Some l -> Some l
                 | None -> replace_first line " deny " " permit "
               else None))
          text
    | Hallucinate_name ->
        map_lines
          (once (fun line ->
               let t = String.trim line in
               if starts_with "match ip address prefix-list" t
                 || starts_with "match community" t
                 || starts_with "match as-path" t
               then Some (line ^ "_X")
               else None))
          text
    | Drop_set_clause ->
        let dropped = ref false in
        let out =
          map_lines
            (fun line ->
              if (not !dropped) && starts_with "set " (String.trim line) then begin
                dropped := true;
                None
              end
              else Some line)
            text
        in
        changed := !dropped;
        out
    | Wrong_set_value ->
        map_lines
          (once (fun line ->
               let t = String.trim line in
               if starts_with "set metric" t || starts_with "set local-preference" t
                 || starts_with "set tag" t || starts_with "set weight" t
               then bump_last_int line
               else None))
          text
    | Wrong_community ->
        map_lines
          (once (fun line ->
               if starts_with "ip community-list" line then bump_last_int line
               else None))
          text
    | Syntax_error ->
        map_lines
          (once (fun line ->
               if starts_with "route-map" line then
                 replace_first line "route-map" "route-mp"
               else if starts_with "ip access-list" line then
                 replace_first line "access-list" "acess-list"
               else None))
          text
  in
  if !changed then begin
    Obs.Counter.incr injected_total;
    Obs.Counter.incr (class_counter fault);
    Some result
  end
  else None

(** A deterministic schedule of faults drawn from a seed: attempt [i]
    of a synthesis loop consumes entry [i]; an empty tail means clean
    output, so every schedule eventually converges. *)
let schedule ~seed ~faulty_attempts =
  let rng = Random.State.make [| seed |] in
  List.init faulty_attempts (fun _ ->
      List.nth all_faults (Random.State.int rng (List.length all_faults)))
