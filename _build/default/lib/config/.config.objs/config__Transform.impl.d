lib/config/transform.ml: Bgp Community_list Database Format List Netaddr Printf Route_map String
