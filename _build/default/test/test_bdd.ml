open Symbdd

let check = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* A tiny propositional formula language used as the reference
   semantics: we generate random formulas, build them both as BDDs and
   as evaluation functions, and compare on all assignments over a small
   variable universe.                                                  *)
(* ------------------------------------------------------------------ *)

type form =
  | Var of int
  | Not of form
  | And of form * form
  | Or of form * form
  | Xor of form * form
  | Const of bool

let rec eval_form env = function
  | Var i -> env i
  | Not f -> not (eval_form env f)
  | And (a, b) -> eval_form env a && eval_form env b
  | Or (a, b) -> eval_form env a || eval_form env b
  | Xor (a, b) -> eval_form env a <> eval_form env b
  | Const b -> b

let rec to_bdd = function
  | Var i -> Bdd.var i
  | Not f -> Bdd.neg (to_bdd f)
  | And (a, b) -> Bdd.conj (to_bdd a) (to_bdd b)
  | Or (a, b) -> Bdd.disj (to_bdd a) (to_bdd b)
  | Xor (a, b) -> Bdd.xor (to_bdd a) (to_bdd b)
  | Const true -> Bdd.one
  | Const false -> Bdd.zero

let nvars = 5

let gen_form =
  QCheck.Gen.(
    sized @@ fix (fun self size ->
        if size <= 1 then
          oneof [ map (fun i -> Var i) (int_range 0 (nvars - 1));
                  map (fun b -> Const b) bool ]
        else
          oneof
            [
              map (fun i -> Var i) (int_range 0 (nvars - 1));
              map (fun f -> Not f) (self (size - 1));
              map2 (fun a b -> And (a, b)) (self (size / 2)) (self (size / 2));
              map2 (fun a b -> Or (a, b)) (self (size / 2)) (self (size / 2));
              map2 (fun a b -> Xor (a, b)) (self (size / 2)) (self (size / 2));
            ]))

let rec show_form = function
  | Var i -> Printf.sprintf "x%d" i
  | Not f -> Printf.sprintf "!(%s)" (show_form f)
  | And (a, b) -> Printf.sprintf "(%s & %s)" (show_form a) (show_form b)
  | Or (a, b) -> Printf.sprintf "(%s | %s)" (show_form a) (show_form b)
  | Xor (a, b) -> Printf.sprintf "(%s ^ %s)" (show_form a) (show_form b)
  | Const b -> string_of_bool b

let arb_form = QCheck.make ~print:show_form gen_form

let assignments =
  (* All 2^nvars environments. *)
  List.init (1 lsl nvars) (fun bits i -> bits land (1 lsl i) <> 0)

let prop_bdd_matches_semantics =
  QCheck.Test.make ~name:"BDD agrees with formula semantics" ~count:500
    arb_form
    (fun f ->
      let b = to_bdd f in
      List.for_all (fun env -> Bdd.eval env b = eval_form env f) assignments)

let prop_canonical =
  (* Semantically equal formulas yield physically equal BDDs. *)
  QCheck.Test.make ~name:"BDDs are canonical" ~count:300
    QCheck.(pair arb_form arb_form)
    (fun (f, g) ->
      let equal_sem =
        List.for_all
          (fun env -> eval_form env f = eval_form env g)
          assignments
      in
      let bf = to_bdd f and bg = to_bdd g in
      Bdd.equal bf bg = equal_sem)

let prop_any_sat =
  QCheck.Test.make ~name:"any_sat produces a model" ~count:500 arb_form
    (fun f ->
      let b = to_bdd f in
      if Bdd.is_zero b then true
      else
        let part = Bdd.any_sat b in
        let env i = match List.assoc_opt i part with Some v -> v | None -> false in
        Bdd.eval env b)

let prop_sat_count =
  QCheck.Test.make ~name:"sat_count equals brute-force count" ~count:300
    arb_form
    (fun f ->
      let b = to_bdd f in
      let brute =
        List.length (List.filter (fun env -> eval_form env f) assignments)
      in
      Bdd.sat_count ~nvars b = float_of_int brute)

let prop_all_sat =
  QCheck.Test.make ~name:"all_sat paths are models and cover sat_count" ~count:200
    arb_form
    (fun f ->
      let b = to_bdd f in
      let paths = List.of_seq (Bdd.all_sat b) in
      let path_models part =
        (* A path with k assigned vars stands for 2^(nvars-k) models. *)
        1 lsl (nvars - List.length part)
      in
      let total = List.fold_left (fun acc p -> acc + path_models p) 0 paths in
      let all_valid =
        List.for_all
          (fun part ->
            let env i =
              match List.assoc_opt i part with Some v -> v | None -> false
            in
            Bdd.eval env b)
          paths
      in
      all_valid && float_of_int total = Bdd.sat_count ~nvars b)

let prop_exists =
  QCheck.Test.make ~name:"exists quantification" ~count:300
    QCheck.(pair arb_form (int_range 0 (nvars - 1)))
    (fun (f, v) ->
      let b = Bdd.exists [ v ] (to_bdd f) in
      List.for_all
        (fun env ->
          let expected =
            eval_form (fun i -> if i = v then false else env i) f
            || eval_form (fun i -> if i = v then true else env i) f
          in
          Bdd.eval env b = expected)
        assignments)

let prop_implies =
  QCheck.Test.make ~name:"implies is semantic entailment" ~count:300
    QCheck.(pair arb_form arb_form)
    (fun (f, g) ->
      let expected =
        List.for_all
          (fun env -> (not (eval_form env f)) || eval_form env g)
          assignments
      in
      Bdd.implies (to_bdd f) (to_bdd g) = expected)

let prop_support =
  QCheck.Test.make ~name:"support variables are exactly the relevant ones"
    ~count:300 arb_form
    (fun f ->
      let b = to_bdd f in
      let relevant v =
        List.exists
          (fun env ->
            eval_form (fun i -> if i = v then false else env i) f
            <> eval_form (fun i -> if i = v then true else env i) f)
          assignments
      in
      let sup = Bdd.support b in
      List.for_all (fun v -> List.mem v sup = relevant v)
        (List.init nvars Fun.id))

(* ------------------------------------------------------------------ *)
(* Unit tests                                                         *)
(* ------------------------------------------------------------------ *)

let test_constants () =
  check "one is sat" true (Bdd.is_sat Bdd.one);
  check "zero is not sat" false (Bdd.is_sat Bdd.zero);
  check "neg one" true (Bdd.equal (Bdd.neg Bdd.one) Bdd.zero);
  check "x and not x" true
    (Bdd.is_zero (Bdd.conj (Bdd.var 0) (Bdd.nvar 0)));
  check "x or not x" true (Bdd.is_one (Bdd.disj (Bdd.var 0) (Bdd.nvar 0)))

let test_restrict () =
  let f = Bdd.ite (Bdd.var 0) (Bdd.var 1) (Bdd.var 2) in
  check "restrict x0=1" true (Bdd.equal (Bdd.restrict 0 true f) (Bdd.var 1));
  check "restrict x0=0" true (Bdd.equal (Bdd.restrict 0 false f) (Bdd.var 2))

let test_size () =
  Alcotest.(check int) "terminal size" 0 (Bdd.size Bdd.one);
  Alcotest.(check int) "var size" 1 (Bdd.size (Bdd.var 3))

(* ------------------------------------------------------------------ *)
(* Bvec                                                               *)
(* ------------------------------------------------------------------ *)

let bv8 = Bvec.sequential ~first:0 ~width:8

let models_of bdd =
  (* All 8-bit values satisfying the BDD. *)
  List.filter
    (fun n -> Bdd.eval (fun i -> n land (1 lsl (7 - i)) <> 0) bdd)
    (List.init 256 Fun.id)

let test_bvec_eq () =
  Alcotest.(check (list int)) "eq 77" [ 77 ] (models_of (Bvec.eq_const bv8 77))

let test_bvec_range () =
  Alcotest.(check (list int)) "range 10..13"
    [ 10; 11; 12; 13 ]
    (models_of (Bvec.in_range bv8 10 13))

let test_bvec_prefix () =
  Alcotest.(check (list int)) "top-3-bit prefix of 0b101xxxxx"
    (List.init 32 (fun i -> 160 + i))
    (models_of (Bvec.prefix_match bv8 ~value:0b10100000 ~len:3))

let prop_bvec_le =
  QCheck.Test.make ~name:"le_const models" ~count:200
    QCheck.(int_range 0 255)
    (fun n ->
      models_of (Bvec.le_const bv8 n) = List.init (n + 1) Fun.id)

let prop_bvec_ge =
  QCheck.Test.make ~name:"ge_const models" ~count:200
    QCheck.(int_range 0 255)
    (fun n ->
      models_of (Bvec.ge_const bv8 n) = List.init (256 - n) (fun i -> n + i))

let prop_bvec_decode =
  QCheck.Test.make ~name:"decode(any_sat(eq n)) = n" ~count:200
    QCheck.(int_range 0 255)
    (fun n -> Bvec.decode bv8 (Bdd.any_sat (Bvec.eq_const bv8 n)) = n)

let prop_bvec_range_decode =
  QCheck.Test.make ~name:"range witness decodes inside range" ~count:200
    QCheck.(pair (int_range 0 255) (int_range 0 255))
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      let v = Bvec.decode bv8 (Bdd.any_sat (Bvec.in_range bv8 lo hi)) in
      v >= lo && v <= hi)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "bdd"
    [
      ( "bdd",
        [
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "restrict" `Quick test_restrict;
          Alcotest.test_case "size" `Quick test_size;
          q prop_bdd_matches_semantics;
          q prop_canonical;
          q prop_any_sat;
          q prop_sat_count;
          q prop_all_sat;
          q prop_exists;
          q prop_implies;
          q prop_support;
        ] );
      ( "bvec",
        [
          Alcotest.test_case "eq_const" `Quick test_bvec_eq;
          Alcotest.test_case "in_range" `Quick test_bvec_range;
          Alcotest.test_case "prefix_match" `Quick test_bvec_prefix;
          q prop_bvec_le;
          q prop_bvec_ge;
          q prop_bvec_decode;
          q prop_bvec_range_decode;
        ] );
    ]
