lib/netsim/topology.mli: Config Format Netaddr
