open Config

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let pfx = Netaddr.Prefix.of_string_exn
let ip = Netaddr.Ipv4.of_string_exn
let comm = Bgp.Community.of_string_exn

(* The paper's running example (Section 2.1). *)
let isp_out_config =
  {|
ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
ip prefix-list D1 seq 30 permit 1.0.0.0/20 ge 24
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300
|}

let parse_ok src =
  match Parser.parse src with
  | Ok db -> db
  | Error m -> Alcotest.failf "parse failed: %s" m

let db () = parse_ok isp_out_config
let isp_out d = Option.get (Database.route_map d "ISP_OUT")

(* ------------------------------------------------------------------ *)
(* Parsing structure                                                  *)
(* ------------------------------------------------------------------ *)

let test_parse_structure () =
  let d = db () in
  let rm = isp_out d in
  check_int "three stanzas" 3 (List.length rm.Route_map.stanzas);
  let seqs = List.map (fun (s : Route_map.stanza) -> s.seq) rm.Route_map.stanzas in
  Alcotest.(check (list int)) "stanza seqs" [ 10; 20; 30 ] seqs;
  let actions =
    List.map (fun (s : Route_map.stanza) -> s.action) rm.Route_map.stanzas
  in
  check "deny deny permit" true
    (actions = [ Action.Deny; Action.Deny; Action.Permit ]);
  let d1 = Option.get (Database.prefix_list d "D1") in
  check_int "D1 entries" 3 (List.length d1.Prefix_list.entries);
  check "D0 exists" true (Database.as_path_list d "D0" <> None)

let test_parse_acl () =
  let d =
    parse_ok
      {|
ip access-list extended FW
 permit tcp 10.0.0.0/8 any eq 443
 deny udp any 192.168.0.0 0.0.255.255 range 100 200
 permit icmp host 1.2.3.4 any
 deny ip any any
|}
  in
  let acl = Option.get (Database.acl d "FW") in
  check_int "four rules" 4 (List.length acl.Acl.rules);
  let seqs = List.map (fun (r : Acl.rule) -> r.seq) acl.Acl.rules in
  Alcotest.(check (list int)) "auto seqs" [ 10; 20; 30; 40 ] seqs

let test_parse_numbered_acl () =
  let d =
    parse_ok
      {|
access-list 101 permit tcp any any eq 80
access-list 101 deny ip any any
|}
  in
  let acl = Option.get (Database.acl d "101") in
  check_int "two rules" 2 (List.length acl.Acl.rules)

let test_parse_community_lists () =
  let d =
    parse_ok
      {|
ip community-list expanded COM permit _300:3_
ip community-list standard STD permit 100:1 100:2
|}
  in
  (match (Option.get (Database.community_list d "COM")).Community_list.body with
  | Community_list.Expanded [ e ] ->
      check "expanded action" true (e.action = Action.Permit)
  | _ -> Alcotest.fail "COM should be expanded with one entry");
  match (Option.get (Database.community_list d "STD")).Community_list.body with
  | Community_list.Standard [ e ] -> check_int "two comms" 2 (List.length e.communities)
  | _ -> Alcotest.fail "STD should be standard with one entry"

let test_parse_errors () =
  let expect_error src =
    match Parser.parse src with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected parse error for %S" src
  in
  List.iter expect_error
    [
      "route-map X permit notanumber";
      "ip prefix-list P permit 10.0.0.0/8 le 99";
      "match local-preference 300";
      "set metric 5";
      "ip access-list extended A\n permit tcp any\n";
      "ip access-list extended A\n permit icmp any eq 3 any\n";
      "ip access-list extended A\n permit udp any any established\n";
      "bogus directive here";
      "ip prefix-list P permit 10.0.0.0/8 ge 4";
    ]

let test_print_parse_roundtrip () =
  let d = db () in
  let printed = Parser.to_string d in
  let d2 = parse_ok printed in
  let rm = isp_out d and rm2 = isp_out d2 in
  check "same stanzas" true (rm.Route_map.stanzas = rm2.Route_map.stanzas);
  check "same prefix lists" true
    (Database.prefix_list d "D1" = Database.prefix_list d2 "D1")

(* ------------------------------------------------------------------ *)
(* Concrete route-map semantics (the paper's ISP_OUT behaviour)       *)
(* ------------------------------------------------------------------ *)

let eval_isp_out route = Semantics.eval_route_map (db ()) (isp_out (db ())) route

let test_deny_by_as_path () =
  (* Routes originating from ASN 32 hit stanza 10. *)
  let r = Bgp.Route.make ~as_path:[ 100; 32 ] ~local_pref:300 (pfx "50.0.0.0/16") in
  check "denied" true (eval_isp_out r = Semantics.Reject)

let test_deny_by_prefix () =
  let r = Bgp.Route.make ~local_pref:300 (pfx "10.5.0.0/16") in
  check "denied by D1" true (eval_isp_out r = Semantics.Reject);
  (* /25 is outside "10.0.0.0/8 le 24", so stanza 20 does not match. *)
  let r = Bgp.Route.make ~local_pref:300 (pfx "10.5.5.0/25") in
  check "permitted (too long for D1)" true
    (match eval_isp_out r with Semantics.Accept _ -> true | _ -> false)

let test_permit_by_local_pref () =
  let r = Bgp.Route.make ~local_pref:300 (pfx "99.0.0.0/8") in
  (match eval_isp_out r with
  | Semantics.Accept r' -> check "unchanged" true (Bgp.Route.equal r r')
  | Semantics.Reject -> Alcotest.fail "should be permitted");
  let r = Bgp.Route.make ~local_pref:100 (pfx "99.0.0.0/8") in
  check "implicit deny" true (eval_isp_out r = Semantics.Reject)

let test_first_match_order () =
  (* A route matching both stanza 10 (as-path) and stanza 30
     (local-pref) is handled by the earlier stanza. *)
  let r = Bgp.Route.make ~as_path:[ 32 ] ~local_pref:300 (pfx "99.0.0.0/8") in
  check "stanza 10 wins" true (eval_isp_out r = Semantics.Reject);
  let d = db () in
  match Semantics.matching_stanza d (isp_out d) r with
  | Some s -> check_int "seq 10" 10 s.seq
  | None -> Alcotest.fail "expected a match"

(* ------------------------------------------------------------------ *)
(* Set clauses                                                        *)
(* ------------------------------------------------------------------ *)

let paper_snippet =
  {|
ip community-list expanded COM_LIST permit _300:3_
ip prefix-list PREFIX_100 permit 100.0.0.0/16 le 23
route-map SET_METRIC permit 10
 match community COM_LIST
 match ip address prefix-list PREFIX_100
 set metric 55
|}

let test_paper_snippet_semantics () =
  let d = parse_ok paper_snippet in
  let rm = Option.get (Database.route_map d "SET_METRIC") in
  (* The paper's differential-example route. *)
  let r =
    Bgp.Route.make ~as_path:[ 32 ] ~communities:[ comm "300:3" ]
      (pfx "100.0.0.0/16")
  in
  (match Semantics.eval_route_map d rm r with
  | Semantics.Accept r' ->
      check_int "metric set to 55" 55 r'.Bgp.Route.metric;
      check "others unchanged" true
        (Bgp.Route.equal { r' with Bgp.Route.metric = 0 } r)
  | Semantics.Reject -> Alcotest.fail "should be permitted");
  (* Without the community it must fall to the implicit deny. *)
  let r = Bgp.Route.make (pfx "100.0.0.0/16") in
  check "no community -> deny" true
    (Semantics.eval_route_map d rm r = Semantics.Reject);
  (* Mask length 24 is outside "le 23". *)
  let r =
    Bgp.Route.make ~communities:[ comm "300:3" ] (pfx "100.0.5.0/24")
  in
  check "/24 -> deny" true (Semantics.eval_route_map d rm r = Semantics.Reject)

let test_set_clauses () =
  let d =
    parse_ok
      {|
ip prefix-list ALL permit 0.0.0.0/0 le 32
route-map T permit 10
 match ip address prefix-list ALL
 set local-preference 250
 set community 65000:1 65000:2 additive
 set as-path prepend 65000 65000
 set ip next-hop 10.9.9.9
 set tag 777
 set weight 50
 set origin incomplete
|}
  in
  let rm = Option.get (Database.route_map d "T") in
  let r = Bgp.Route.make ~communities:[ comm "1:1" ] (pfx "8.8.8.0/24") in
  match Semantics.eval_route_map d rm r with
  | Semantics.Accept r' ->
      check_int "local-pref" 250 r'.Bgp.Route.local_pref;
      check "communities additive" true
        (Bgp.Route.has_community r' (comm "1:1")
        && Bgp.Route.has_community r' (comm "65000:1")
        && Bgp.Route.has_community r' (comm "65000:2"));
      Alcotest.(check (list int)) "prepend" [ 65000; 65000 ] r'.Bgp.Route.as_path;
      check_str "next hop" "10.9.9.9" (Netaddr.Ipv4.to_string r'.Bgp.Route.next_hop);
      check_int "tag" 777 r'.Bgp.Route.tag;
      check_int "weight" 50 r'.Bgp.Route.weight;
      check "origin" true (r'.Bgp.Route.origin = Bgp.Route.Incomplete)
  | Semantics.Reject -> Alcotest.fail "should be permitted"

let test_set_community_replace () =
  let d =
    parse_ok
      {|
ip prefix-list ALL permit 0.0.0.0/0 le 32
route-map T permit 10
 match ip address prefix-list ALL
 set community 65000:9
|}
  in
  let rm = Option.get (Database.route_map d "T") in
  let r = Bgp.Route.make ~communities:[ comm "1:1"; comm "2:2" ] (pfx "8.0.0.0/8") in
  match Semantics.eval_route_map d rm r with
  | Semantics.Accept r' ->
      check "replaced" true (r'.Bgp.Route.communities = [ comm "65000:9" ])
  | Semantics.Reject -> Alcotest.fail "should be permitted"

let test_comm_list_delete () =
  let d =
    parse_ok
      {|
ip community-list expanded SCRUB permit _65000:.*_
ip prefix-list ALL permit 0.0.0.0/0 le 32
route-map T permit 10
 match ip address prefix-list ALL
 set comm-list SCRUB delete
|}
  in
  let rm = Option.get (Database.route_map d "T") in
  let r =
    Bgp.Route.make
      ~communities:[ comm "65000:1"; comm "65000:77"; comm "300:3" ]
      (pfx "8.0.0.0/8")
  in
  match Semantics.eval_route_map d rm r with
  | Semantics.Accept r' ->
      check "scrubbed" true (r'.Bgp.Route.communities = [ comm "300:3" ])
  | Semantics.Reject -> Alcotest.fail "should be permitted"

(* ------------------------------------------------------------------ *)
(* ACL semantics                                                      *)
(* ------------------------------------------------------------------ *)

let fw_config =
  {|
ip access-list extended FW
 permit tcp 10.0.0.0/8 any eq 443
 deny udp any 192.168.0.0 0.0.255.255 range 100 200
 permit icmp host 1.2.3.4 any
 deny tcp any any established
 permit tcp any any
|}

let fw () = Option.get (Database.acl (parse_ok fw_config) "FW")

let test_acl_eval () =
  let acl = fw () in
  let p ?(protocol = Packet.Tcp) ?(sport = 1000) ?(dport = 443)
      ?(established = false) src dst =
    Packet.make ~protocol ~src_port:sport ~dst_port:dport ~established
      ~src:(ip src) ~dst:(ip dst) ()
  in
  check "permit 443 from 10/8" true
    (Semantics.eval_acl acl (p "10.1.2.3" "200.0.0.1") = Action.Permit);
  check "udp in range denied" true
    (Semantics.eval_acl acl
       (p ~protocol:Packet.Udp ~dport:150 "10.1.2.3" "192.168.4.5")
    = Action.Deny);
  check "udp out of range falls through to implicit deny" true
    (Semantics.eval_acl acl
       (p ~protocol:Packet.Udp ~dport:99 "10.1.2.3" "192.168.4.5")
    = Action.Deny);
  check "icmp from host" true
    (Semantics.eval_acl acl
       (p ~protocol:Packet.Icmp ~dport:0 "1.2.3.4" "9.9.9.9")
    = Action.Permit);
  check "established denied" true
    (Semantics.eval_acl acl (p ~dport:80 ~established:true "11.0.0.1" "9.9.9.9")
    = Action.Deny);
  check "fresh tcp permitted" true
    (Semantics.eval_acl acl (p ~dport:80 "11.0.0.1" "9.9.9.9") = Action.Permit)

let test_acl_first_match () =
  let acl = fw () in
  (* 10/8 + tcp 443 + established matches rule 10 before rule 40. *)
  let p =
    Packet.make ~protocol:Packet.Tcp ~dst_port:443 ~established:true
      ~src:(ip "10.0.0.1") ~dst:(ip "8.8.8.8") ()
  in
  match Acl.first_match acl p with
  | Some r -> check_int "rule 10" 10 r.Acl.seq
  | None -> Alcotest.fail "expected match"

(* ------------------------------------------------------------------ *)
(* Insertion / renaming helpers                                       *)
(* ------------------------------------------------------------------ *)

let test_route_map_insert_at () =
  let d = db () in
  let rm = isp_out d in
  let s = Route_map.stanza ~seq:99 Action.Permit in
  let rm0 = Route_map.insert_at rm 0 s in
  let seqs rm = List.map (fun (s : Route_map.stanza) -> s.Route_map.seq) rm.Route_map.stanzas in
  Alcotest.(check (list int)) "top insert resequenced" [ 10; 20; 30; 40 ] (seqs rm0);
  check "new first" true
    ((List.hd rm0.Route_map.stanzas).Route_map.matches = []);
  let rm3 = Route_map.insert_at rm 3 s in
  check "new last" true
    ((List.nth rm3.Route_map.stanzas 3).Route_map.matches = []);
  Alcotest.check_raises "out of range" (Invalid_argument "Route_map.insert_at")
    (fun () -> ignore (Route_map.insert_at rm 4 s))

let test_rename_references () =
  let d = parse_ok paper_snippet in
  let rm = Option.get (Database.route_map d "SET_METRIC") in
  let rm' =
    Route_map.rename_references rm
      [ ("COM_LIST", "D2"); ("PREFIX_100", "D3") ]
  in
  let refs = Route_map.referenced_lists rm' in
  check "renamed" true
    (List.mem (`Community_list, "D2") refs
    && List.mem (`Prefix_list, "D3") refs
    && not (List.mem (`Community_list, "COM_LIST") refs))

let test_undefined_references () =
  let d = Database.empty in
  let rm =
    Route_map.make "X"
      [
        Route_map.stanza ~seq:10
          ~matches:[ Route_map.Match_prefix_list [ "NOPE" ] ]
          Action.Permit;
      ]
  in
  check "undefined detected" true
    (Database.undefined_references d rm = [ (`Prefix_list, "NOPE") ])

(* ------------------------------------------------------------------ *)
(* Container helpers                                                  *)
(* ------------------------------------------------------------------ *)

let test_append_and_next_seq () =
  let rm = Route_map.make "M" [ Route_map.stanza ~seq:10 Action.Permit ] in
  check_int "next seq" 20 (Route_map.next_seq rm);
  let rm' = Route_map.append rm (Route_map.stanza Action.Deny) in
  check_int "appended at 20" 20
    (List.nth rm'.Route_map.stanzas 1).Route_map.seq;
  let acl = Acl.make "A" [ Acl.rule ~seq:10 Action.Permit ] in
  let acl' = Acl.append acl (Acl.rule Action.Deny) in
  check_int "acl appended at 20" 20 (List.nth acl'.Acl.rules 1).Acl.seq;
  let pl =
    Prefix_list.make "P"
      [ Prefix_list.entry ~seq:10 ~action:Action.Permit
          (Netaddr.Prefix_range.exact (pfx "10.0.0.0/8")) ]
  in
  let pl' =
    Prefix_list.append pl
      (Prefix_list.entry ~action:Action.Deny
         (Netaddr.Prefix_range.exact (pfx "11.0.0.0/8")))
  in
  check_int "pl appended at 20" 20
    (List.nth pl'.Prefix_list.entries 1).Prefix_list.seq

let test_duplicate_seq_rejected () =
  Alcotest.check_raises "route-map dup seq"
    (Invalid_argument "Route_map.make: duplicate seq 10 in M")
    (fun () ->
      ignore
        (Route_map.make "M"
           [ Route_map.stanza ~seq:10 Action.Permit;
             Route_map.stanza ~seq:10 Action.Deny ]))

let test_database_merge () =
  let a =
    Database.add_route_map Database.empty
      (Route_map.make "SHARED" [ Route_map.stanza ~seq:10 Action.Permit ])
  in
  let b =
    Database.add_route_map
      (Database.add_acl Database.empty (Acl.make "ONLY_B" []))
      (Route_map.make "SHARED" [ Route_map.stanza ~seq:10 Action.Deny ])
  in
  let m = Database.merge a b in
  (* Right bias: b's SHARED wins; both sides' unique entries survive. *)
  check "b shadows a" true
    ((Option.get (Database.route_map m "SHARED")).Route_map.stanzas
    |> List.hd |> fun (s : Route_map.stanza) -> s.action = Action.Deny);
  check "b-only present" true (Database.acl m "ONLY_B" <> None)

let test_parser_more_forms () =
  (* Explicit sequence numbers inside a named ACL; prefix-list entries
     without seq auto-number past the highest; comment lines close
     blocks. *)
  let d =
    parse_ok
      {|
ip access-list extended A
 100 permit tcp any any eq 80
 deny ip any any
!
ip prefix-list P permit 10.0.0.0/8
ip prefix-list P permit 11.0.0.0/8
ip prefix-list P seq 100 permit 12.0.0.0/8
ip prefix-list P permit 13.0.0.0/8
|}
  in
  let acl = Option.get (Database.acl d "A") in
  Alcotest.(check (list int)) "explicit then auto" [ 100; 110 ]
    (List.map (fun (r : Acl.rule) -> r.seq) acl.Acl.rules);
  let pl = Option.get (Database.prefix_list d "P") in
  Alcotest.(check (list int)) "auto skips past explicit" [ 10; 20; 100; 110 ]
    (List.map (fun (e : Prefix_list.entry) -> e.seq) pl.Prefix_list.entries)

let test_parser_tabs_and_blanks () =
  let d = parse_ok "
ip prefix-list	T permit 10.0.0.0/8


" in
  check "tab separated" true (Database.prefix_list d "T" <> None)

(* ------------------------------------------------------------------ *)
(* Transform canonicalization                                         *)
(* ------------------------------------------------------------------ *)

let test_transform_override () =
  let d = Database.empty in
  let t =
    Transform.of_sets d [ Route_map.Set_metric 5; Route_map.Set_metric 7 ]
  in
  check "later metric wins" true (t.Transform.metric = Some 7)

let test_transform_community_pipeline () =
  let d = Database.empty in
  (* replace then additive collapses to a constant *)
  let t =
    Transform.of_sets d
      [
        Route_map.Set_community { communities = [ comm "1:1" ]; additive = false };
        Route_map.Set_community { communities = [ comm "2:2" ]; additive = true };
      ]
  in
  (match t.Transform.communities with
  | Transform.Comm_const cs ->
      check "both" true (cs = [ comm "1:1"; comm "2:2" ])
  | _ -> Alcotest.fail "expected constant pipeline");
  (* pure additive stays an update *)
  let t =
    Transform.of_sets d
      [ Route_map.Set_community { communities = [ comm "2:2" ]; additive = true } ]
  in
  match t.Transform.communities with
  | Transform.Comm_update { delete = []; add } -> check "add" true (add = [ comm "2:2" ])
  | _ -> Alcotest.fail "expected update pipeline"

let test_transform_equal () =
  let d = Database.empty in
  let t1 = Transform.of_sets d [ Route_map.Set_metric 55 ] in
  let t2 = Transform.of_sets d [ Route_map.Set_metric 55; Route_map.Set_metric 55 ] in
  let t3 = Transform.of_sets d [ Route_map.Set_metric 56 ] in
  check "equal" true (Transform.equal ~db1:d ~db2:d t1 t2);
  check "not equal" false (Transform.equal ~db1:d ~db2:d t1 t3)

(* ------------------------------------------------------------------ *)
(* Round-trip property over generated configurations                  *)
(* ------------------------------------------------------------------ *)

let gen_action = QCheck.Gen.oneofl [ Action.Permit; Action.Deny ]

let gen_acl_rule =
  QCheck.Gen.(
    let gen_addr =
      oneof
        [
          return Acl.Any;
          map (fun n -> Acl.Host (Netaddr.Ipv4.of_int n)) (int_range 0 0xffffffff);
          map2
            (fun n len -> Acl.addr_of_prefix (Netaddr.Prefix.make (Netaddr.Ipv4.of_int n) len))
            (int_range 0 0xffffffff) (int_range 1 31);
        ]
    in
    let gen_port =
      oneof
        [
          return Acl.Any_port;
          map (fun p -> Acl.Eq p) (int_range 0 65535);
          map (fun p -> Acl.Gt p) (int_range 0 65534);
          map (fun p -> Acl.Lt p) (int_range 1 65535);
          map2 (fun a b -> Acl.Range (min a b, max a b)) (int_range 0 65535) (int_range 0 65535);
        ]
    in
    gen_action >>= fun action ->
    oneofl [ Packet.Ip; Packet.Tcp; Packet.Udp; Packet.Icmp ] >>= fun protocol ->
    gen_addr >>= fun src ->
    gen_addr >>= fun dst ->
    (if Packet.has_ports protocol then pair gen_port gen_port
     else return (Acl.Any_port, Acl.Any_port))
    >>= fun (src_port, dst_port) ->
    (if protocol = Packet.Tcp then bool else return false) >>= fun established ->
    return (Acl.rule ~protocol ~src ~src_port ~dst ~dst_port ~established action))

let gen_acl =
  QCheck.Gen.(
    map
      (fun rules ->
        Acl.resequence (Acl.make "GEN" rules))
      (list_size (int_range 1 8) gen_acl_rule))

let arb_acl =
  QCheck.make ~print:(fun a -> Format.asprintf "%a" Acl.pp a) gen_acl

let prop_acl_roundtrip =
  QCheck.Test.make ~name:"ACL print/parse roundtrip" ~count:200 arb_acl
    (fun acl ->
      let d = Database.add_acl Database.empty acl in
      match Parser.parse (Parser.to_string d) with
      | Error m -> QCheck.Test.fail_reportf "reparse failed: %s" m
      | Ok d2 -> (
          match Database.acl d2 "GEN" with
          | Some acl2 -> acl2.Acl.rules = acl.Acl.rules
          | None -> false))

let gen_route_map_with_lists =
  QCheck.Gen.(
    let gen_range =
      int_range 0 0xffffffff >>= fun n ->
      int_range 0 24 >>= fun len ->
      let p = Netaddr.Prefix.make (Netaddr.Ipv4.of_int n) len in
      int_range len 32 >>= fun lo ->
      int_range lo 32 >>= fun hi ->
      return (Netaddr.Prefix_range.make p ~ge:(Some lo) ~le:(Some hi))
    in
    list_size (int_range 1 3) (pair gen_action gen_range) >>= fun pl_entries ->
    list_size (int_range 1 3)
      (pair gen_action (oneofl [ "_32$"; "^44_"; "_100_"; ".*" ]))
    >>= fun apl_entries ->
    list_size (int_range 1 3)
      (pair gen_action (oneofl [ "_300:3_"; "^65000:"; "_12:34_" ]))
    >>= fun cl_entries ->
    let pl =
      Prefix_list.make "PL"
        (List.mapi
           (fun i (action, range) ->
             Prefix_list.entry ~seq:((i + 1) * 10) ~action range)
           pl_entries)
    in
    let apl = As_path_list.make "APL" apl_entries in
    let cl = Community_list.expanded "CL" cl_entries in
    list_size (int_range 1 4)
      (triple gen_action
         (oneofl
            [
              [ Route_map.Match_prefix_list [ "PL" ] ];
              [ Route_map.Match_as_path [ "APL" ] ];
              [ Route_map.Match_community [ "CL" ] ];
              [ Route_map.Match_local_pref 300 ];
              [ Route_map.Match_metric 20 ];
              [ Route_map.Match_tag [ 5; 6 ] ];
              [
                Route_map.Match_prefix_list [ "PL" ];
                Route_map.Match_community [ "CL" ];
              ];
            ])
         (oneofl
            [
              [];
              [ Route_map.Set_metric 55 ];
              [ Route_map.Set_local_pref 200; Route_map.Set_tag 9 ];
              [
                Route_map.Set_community
                  { communities = [ comm "65000:1" ]; additive = true };
              ];
              [ Route_map.Set_as_path_prepend [ 65000 ] ];
            ]))
    >>= fun stanzas ->
    let rm =
      Route_map.make "GEN"
        (List.mapi
           (fun i (action, matches, sets) ->
             Route_map.stanza ~seq:((i + 1) * 10) ~matches ~sets action)
           stanzas)
    in
    let d =
      Database.add_route_map
        (Database.add_community_list
           (Database.add_as_path_list
              (Database.add_prefix_list Database.empty pl)
              apl)
           cl)
        rm
    in
    return d)

let arb_db =
  QCheck.make ~print:Parser.to_string gen_route_map_with_lists

let prop_route_map_roundtrip =
  QCheck.Test.make ~name:"route-map print/parse roundtrip" ~count:200 arb_db
    (fun d ->
      match Parser.parse (Parser.to_string d) with
      | Error m -> QCheck.Test.fail_reportf "reparse failed: %s" m
      | Ok d2 ->
          Database.route_map d2 "GEN" = Database.route_map d "GEN"
          && Database.prefix_list d2 "PL" = Database.prefix_list d "PL"
          && Database.as_path_list d2 "APL" = Database.as_path_list d "APL"
          && Database.community_list d2 "CL" = Database.community_list d "CL")

let gen_route =
  QCheck.Gen.(
    int_range 0 0xffffffff >>= fun ipn ->
    int_range 0 32 >>= fun len ->
    list_size (int_range 0 3) (oneofl [ 32; 44; 100; 65000 ]) >>= fun as_path ->
    list_size (int_range 0 2)
      (oneofl
         [ comm "300:3"; comm "65000:1"; comm "12:34"; comm "9:9" ])
    >>= fun communities ->
    oneofl [ 100; 300 ] >>= fun local_pref ->
    oneofl [ 0; 20; 55 ] >>= fun metric ->
    oneofl [ 0; 5; 6; 9 ] >>= fun tag ->
    return
      (Bgp.Route.make ~as_path ~communities ~local_pref ~metric ~tag
         (Netaddr.Prefix.make (Netaddr.Ipv4.of_int ipn) len)))

let arb_db_route =
  QCheck.make
    ~print:(fun (d, r) ->
      Parser.to_string d ^ "\n--\n" ^ Format.asprintf "%a" Bgp.Route.pp r)
    QCheck.Gen.(pair gen_route_map_with_lists gen_route)

let prop_roundtrip_preserves_semantics =
  QCheck.Test.make ~name:"print/parse preserves route-map behaviour" ~count:300
    arb_db_route
    (fun (d, r) ->
      match Parser.parse (Parser.to_string d) with
      | Error m -> QCheck.Test.fail_reportf "reparse failed: %s" m
      | Ok d2 ->
          let rm = Option.get (Database.route_map d "GEN") in
          let rm2 = Option.get (Database.route_map d2 "GEN") in
          Semantics.route_result_equal
            (Semantics.eval_route_map d rm r)
            (Semantics.eval_route_map d2 rm2 r))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "config"
    [
      ( "parser",
        [
          Alcotest.test_case "ISP_OUT structure" `Quick test_parse_structure;
          Alcotest.test_case "named ACL" `Quick test_parse_acl;
          Alcotest.test_case "numbered ACL" `Quick test_parse_numbered_acl;
          Alcotest.test_case "community lists" `Quick test_parse_community_lists;
          Alcotest.test_case "rejects malformed input" `Quick test_parse_errors;
          Alcotest.test_case "print/parse roundtrip" `Quick test_print_parse_roundtrip;
          q prop_acl_roundtrip;
          q prop_route_map_roundtrip;
          q prop_roundtrip_preserves_semantics;
        ] );
      ( "route-map semantics",
        [
          Alcotest.test_case "deny by as-path" `Quick test_deny_by_as_path;
          Alcotest.test_case "deny by prefix-list" `Quick test_deny_by_prefix;
          Alcotest.test_case "permit by local-pref" `Quick test_permit_by_local_pref;
          Alcotest.test_case "first-match order" `Quick test_first_match_order;
          Alcotest.test_case "paper snippet" `Quick test_paper_snippet_semantics;
          Alcotest.test_case "set clauses" `Quick test_set_clauses;
          Alcotest.test_case "set community replace" `Quick test_set_community_replace;
          Alcotest.test_case "comm-list delete" `Quick test_comm_list_delete;
        ] );
      ( "acl semantics",
        [
          Alcotest.test_case "eval" `Quick test_acl_eval;
          Alcotest.test_case "first match" `Quick test_acl_first_match;
        ] );
      ( "editing",
        [
          Alcotest.test_case "insert_at" `Quick test_route_map_insert_at;
          Alcotest.test_case "rename references" `Quick test_rename_references;
          Alcotest.test_case "undefined references" `Quick test_undefined_references;
        ] );
      ( "containers",
        [
          Alcotest.test_case "append/next_seq" `Quick test_append_and_next_seq;
          Alcotest.test_case "duplicate seq rejected" `Quick
            test_duplicate_seq_rejected;
          Alcotest.test_case "database merge" `Quick test_database_merge;
          Alcotest.test_case "parser extra forms" `Quick test_parser_more_forms;
          Alcotest.test_case "tabs and blanks" `Quick test_parser_tabs_and_blanks;
        ] );
      ( "transform",
        [
          Alcotest.test_case "override" `Quick test_transform_override;
          Alcotest.test_case "community pipeline" `Quick test_transform_community_pipeline;
          Alcotest.test_case "equality" `Quick test_transform_equal;
        ] );
    ]
