(** A bounded Chase–Lev work-stealing deque of non-negative ints.

    One {e owner} pushes and pops task ids at the bottom; any number of
    {e thieves} steal from the top. The store is a flat int-packed
    circular array (power-of-two capacity), so the owner's fast path is
    two plain array operations plus sequentially-consistent loads and
    stores of the [top]/[bottom] indices, and a steal is a single CAS
    on [top] — no allocation anywhere.

    The deque is {e bounded}: it never grows under concurrency. The
    scheduler sizes it while the deque is quiescent ({!reset}) and
    seeds it with one batch's task ids before workers are released, so
    a mid-batch {!push} overflow is a scheduler bug, not a recoverable
    condition — it raises [Invalid_argument].

    Values must be [>= 0]: the negative range is reserved for the
    {!pop}/{!steal} miss codes ({!empty} and {!abort}). *)

type t

val create : ?capacity:int -> unit -> t
(** A fresh empty deque; [capacity] (default 64) is rounded up to a
    power of two, minimum 8. *)

val empty : int
(** [-1] — returned by {!pop} and {!steal} when no task is available. *)

val abort : int
(** [-2] — returned by {!steal} when it lost the CAS race to a
    concurrent thief (or the owner's last-element pop); the victim may
    still hold work, so the thief should retry rather than move on. *)

val reset : t -> ensure:int -> unit
(** Empty the deque and grow its array (never shrink) to hold at least
    [ensure] entries. Callable only while the deque is quiescent — no
    concurrent owner or thieves — i.e. between scheduler batches. *)

val push : t -> int -> unit
(** Owner only. Push a task id at the bottom.
    @raise Invalid_argument on a negative id or a full deque. *)

val pop : t -> int
(** Owner only. Pop the most recently pushed id from the bottom, or
    {!empty}. The last-element race against thieves is resolved by a
    CAS on [top]; losing it returns {!empty}. *)

val steal : t -> int
(** Any domain. Claim the {e oldest} id from the top: the stolen task
    is the one farthest from the owner's working end, which for
    contiguously seeded ranges preserves locality on both sides.
    Returns the id, or {!empty} when the deque looks empty, or
    {!abort} when the CAS was lost. *)

val size : t -> int
(** Racy snapshot of [bottom - top], clamped to [>= 0]; exact when
    quiescent. Used by the deque-depth gauge collector. *)

val capacity : t -> int
