(** Clarify's end-to-end workflow (the paper's Figure 1):

    classify the query → retrieve system prompt and few-shot examples →
    LLM synthesizes one stanza in isolation → a second LLM call extracts
    a JSON behavioural spec → the stanza is verified against the spec
    (searchRoutePolicies / searchFilters) with counterexample feedback
    looping back to the LLM → the verified stanza is imported under
    fresh list names → the disambiguator binary-searches the insertion
    point with differential-example questions to the user. *)

type error =
  | Wrong_query_type of { expected : string; got : string }
  | Llm_error of string
  | Parse_error of string
  | Snippet_shape of string
  | Verification_exhausted of string list (* verdicts per attempt *)
  | Spec_error of string
  | Target_not_found of string
  | Disambiguation_failed of string

let error_to_string = function
  | Wrong_query_type { expected; got } ->
      Printf.sprintf "classifier says this is a %s query, expected %s" got
        expected
  | Llm_error m -> "LLM failure: " ^ m
  | Parse_error m -> "generated config does not parse: " ^ m
  | Snippet_shape m -> "unexpected snippet shape: " ^ m
  | Verification_exhausted history ->
      "verification failed on every attempt:\n  "
      ^ String.concat "\n  " history
  | Spec_error m -> "spec extraction failed: " ^ m
  | Target_not_found name -> "no route-map or ACL named " ^ name
  | Disambiguation_failed m -> "disambiguation failed: " ^ m

type route_map_report = {
  db : Config.Database.t; (* updated configuration *)
  map : Config.Route_map.t; (* updated target map *)
  spec : Engine.Spec.t;
  stanza : Config.Route_map.stanza; (* as inserted, post renaming *)
  renaming : (string * string) list;
  synthesis_attempts : int;
  verification_history : string list;
  llm_calls : int; (* calls consumed by this update *)
  questions : Disambiguator.question list;
  position : int;
  boundaries : int;
}

let default_max_attempts = 5

(* Flight recorder (see DESIGN.md §Observability for the event schema).
   [Telemetry.emit] payload thunks are only forced while recording. *)
let mode_to_string = function
  | Disambiguator.Binary_search -> "binary_search"
  | Disambiguator.Top_bottom -> "top_bottom"
  | Disambiguator.Linear -> "linear"

let acl_mode_to_string = function
  | Acl_disambiguator.Binary_search -> "binary_search"
  | Acl_disambiguator.Top_bottom -> "top_bottom"
  | Acl_disambiguator.Linear -> "linear"

let emit_session_start ~pipeline ~target ~prompt ~mode ~max_attempts ~db =
  Telemetry.emit ~kind:"session_start" (fun () ->
      [
        ("pipeline", Json.String pipeline);
        ("target", Json.String target);
        ("prompt", Json.String prompt);
        ("mode", Json.String mode);
        ("max_attempts", Json.Int max_attempts);
        ("config", Json.String (Config.Parser.to_string db));
      ])

let emit_verify ~attempt verdict =
  Telemetry.emit ~kind:"verify" (fun () ->
      [ ("attempt", Json.Int attempt); ("verdict", Json.String verdict) ])

let emit_placement ~position ~boundaries ~questions =
  Telemetry.emit ~kind:"placement" (fun () ->
      [
        ("position", Json.Int position);
        ("boundaries", Json.Int boundaries);
        ("questions", Json.Int questions);
      ])

let emit_session_end ~final_config result =
  Telemetry.emit ~kind:"session_end" (fun () ->
      match result with
      | Ok r ->
          [ ("ok", Json.Bool true); ("config", Json.String (final_config r)) ]
      | Error e ->
          [ ("ok", Json.Bool false); ("error", Json.String (error_to_string e)) ])

(* Observability (see DESIGN.md §Observability for the naming scheme).
   Stage latencies are recorded automatically by the spans below. *)
let runs_counter =
  Obs.Counter.make "pipeline.runs" ~help:"end-to-end pipeline invocations"

let errors_counter =
  Obs.Counter.make "pipeline.errors" ~help:"pipeline runs ending in an error"

let llm_calls_counter =
  Obs.Counter.make "pipeline.llm_calls"
    ~help:"LLM calls consumed by pipeline runs (all endpoints)"

let attempts_counter =
  Obs.Counter.make "pipeline.synthesis_attempts"
    ~help:"synthesis attempts (>=1 per run)"

let verification_counter =
  Obs.Counter.make "pipeline.verification_attempts"
    ~help:"verifier invocations on parsed candidate snippets"

let cex_loops_counter =
  Obs.Counter.make "pipeline.counterexample_loops"
    ~help:"failed attempts fed back to the LLM as counterexamples"

(* The verify-repair loop: ask the LLM for a snippet until it parses and
   verifies against the spec, feeding failures back into the prompt. *)
let synthesis_loop llm ~max_attempts ~entry ~prompt ~spec =
  Obs.with_span "synthesize" @@ fun () ->
  let rec attempt n ~feedback history =
    if n > max_attempts then Error (Verification_exhausted (List.rev history))
    else begin
      Obs.Counter.incr attempts_counter;
      let loop_back msg history' =
        Obs.Counter.incr cex_loops_counter;
        emit_verify ~attempt:n msg;
        attempt (n + 1) ~feedback:(Some msg) history'
      in
      let user =
        match feedback with
        | None -> prompt
        | Some f -> prompt ^ "\nYour previous answer was wrong: " ^ f
      in
      let req =
        {
          Llm.Mock_llm.system = entry.Llm.Prompt_db.system;
          few_shot = entry.Llm.Prompt_db.few_shot;
          user;
        }
      in
      match Obs.with_span "llm" (fun () -> Llm.Mock_llm.synthesize llm req) with
      | Error m -> Error (Llm_error m)
      | Ok text -> (
          match Config.Parser.parse text with
          | Error m ->
              loop_back ("syntax error: " ^ m)
                (("attempt " ^ string_of_int n ^ ": syntax error: " ^ m)
                :: history)
          | Ok snippet -> (
              match Config.Database.route_maps snippet with
              | [ rm ] -> (
                  match
                    Obs.with_span "verify" (fun () ->
                        Obs.Counter.incr verification_counter;
                        Engine.Search_route_policies.verify_stanza snippet rm
                          spec)
                  with
                  | Engine.Search_route_policies.Verified ->
                      emit_verify ~attempt:n "verified";
                      Ok (snippet, rm, n, List.rev history)
                  | verdict ->
                      let msg =
                        Format.asprintf "%a"
                          Engine.Search_route_policies.pp_verdict verdict
                      in
                      loop_back msg
                        (("attempt " ^ string_of_int n ^ ": " ^ msg) :: history))
              | rms ->
                  Error
                    (Snippet_shape
                       (Printf.sprintf "expected one route-map, found %d"
                          (List.length rms)))))
    end
  in
  attempt 1 ~feedback:None []

(** Run one incremental route-map update end to end. *)
let run_route_map_update ?(max_attempts = default_max_attempts)
    ?(mode = Disambiguator.Binary_search) ~llm ~oracle ~db ~target ~prompt () =
  Obs.with_span "pipeline.route_map_update" @@ fun () ->
  Obs.Counter.incr runs_counter;
  emit_session_start ~pipeline:"route_map" ~target ~prompt
    ~mode:(mode_to_string mode) ~max_attempts ~db;
  let calls_before = Llm.Mock_llm.total_calls llm in
  let result =
    match Config.Database.route_map db target with
    | None -> Error (Target_not_found target)
    | Some target_map -> (
        match
          Obs.with_span "classify" (fun () -> Llm.Mock_llm.classify llm prompt)
        with
        | `Acl ->
            Error (Wrong_query_type { expected = "route-map"; got = "acl" })
        | `Route_map -> (
            let entry = Llm.Prompt_db.retrieve `Route_map in
            match
              Obs.with_span "spec_extract" (fun () ->
                  Llm.Mock_llm.generate_spec llm prompt)
            with
            | Error m -> Error (Spec_error m)
            | Ok spec -> (
                (* The paper has the user vet the spec here; our simulated
                   spec generator is faithful by construction. *)
                match synthesis_loop llm ~max_attempts ~entry ~prompt ~spec with
                | Error e -> Error e
                | Ok (snippet, rm, attempts, history) -> (
                    match
                      Obs.with_span "import" (fun () ->
                          Naming.import_route_map_snippet ~db ~snippet rm)
                    with
                    | Error m -> Error (Snippet_shape m)
                    | Ok { db = db'; stanza; renaming } -> (
                        match
                          Obs.with_span "disambiguate" (fun () ->
                              Disambiguator.run ~mode ~db:db' ~target:target_map
                                ~stanza ~oracle ())
                        with
                        | Error (Disambiguator.Inconsistent_intent _) ->
                            Error
                              (Disambiguation_failed
                                 "answers are inconsistent: no single \
                                  insertion point implements this intent")
                        | Error (Disambiguator.Top_bottom_insufficient _) ->
                            Error
                              (Disambiguation_failed
                                 "top/bottom placement cannot satisfy the \
                                  intent")
                        | Ok outcome ->
                            emit_placement ~position:outcome.position
                              ~boundaries:outcome.boundaries
                              ~questions:(List.length outcome.questions);
                            let db'' =
                              Config.Database.add_route_map db' outcome.map
                            in
                            Ok
                              {
                                db = db'';
                                map = outcome.map;
                                spec;
                                stanza;
                                renaming;
                                synthesis_attempts = attempts;
                                verification_history = history;
                                llm_calls =
                                  Llm.Mock_llm.total_calls llm - calls_before;
                                questions = outcome.questions;
                                position = outcome.position;
                                boundaries = outcome.boundaries;
                              })))))
  in
  Obs.Counter.incr llm_calls_counter
    ~by:(Llm.Mock_llm.total_calls llm - calls_before);
  (match result with
  | Error _ -> Obs.Counter.incr errors_counter
  | Ok _ -> ());
  emit_session_end
    ~final_config:(fun r -> Config.Parser.to_string r.db)
    result;
  result

(* ------------------------------------------------------------------ *)
(* ACL updates                                                        *)
(* ------------------------------------------------------------------ *)

type acl_report = {
  db : Config.Database.t;
  acl : Config.Acl.t;
  rule : Config.Acl.rule;
  synthesis_attempts : int;
  verification_history : string list;
  llm_calls : int;
  questions : Acl_disambiguator.question list;
  position : int;
  boundaries : int;
}

(* For ACLs the intent itself is the spec: expected rule derived from
   the parsed intent; verification compares header spaces and actions. *)
let acl_synthesis_loop llm ~max_attempts ~entry ~prompt =
  match
    Obs.with_span "spec_extract" (fun () -> Llm.Nl_parser.parse `Acl prompt)
  with
  | Error e -> Error (Spec_error (Llm.Nl_parser.error_message e))
  | Ok (Llm.Intent.Route_map _) -> assert false
  | Ok (Llm.Intent.Acl intent) ->
      Obs.with_span "synthesize" @@ fun () ->
      let expected =
        Config.Acl.rule ~seq:10 ~protocol:intent.Llm.Intent.protocol
          ~src:intent.src ~src_port:intent.src_port ~dst:intent.dst
          ~dst_port:intent.dst_port ~established:intent.established
          intent.acl_action
      in
      let spec_space = Symbolic.Packet_space.of_rule expected in
      let rec attempt n ~feedback history =
        if n > max_attempts then
          Error (Verification_exhausted (List.rev history))
        else begin
          Obs.Counter.incr attempts_counter;
          let loop_back msg history' =
            Obs.Counter.incr cex_loops_counter;
            emit_verify ~attempt:n msg;
            attempt (n + 1) ~feedback:(Some msg) history'
          in
          let user =
            match feedback with
            | None -> prompt
            | Some f -> prompt ^ "\nYour previous answer was wrong: " ^ f
          in
          let req =
            {
              Llm.Mock_llm.system = entry.Llm.Prompt_db.system;
              few_shot = entry.Llm.Prompt_db.few_shot;
              user;
            }
          in
          match
            Obs.with_span "llm" (fun () -> Llm.Mock_llm.synthesize llm req)
          with
          | Error m -> Error (Llm_error m)
          | Ok text -> (
              match Config.Parser.parse text with
              | Error m ->
                  loop_back ("syntax error: " ^ m)
                    (("attempt " ^ string_of_int n ^ ": syntax error: " ^ m)
                    :: history)
              | Ok snippet -> (
                  match Config.Database.acls snippet with
                  | [ { Config.Acl.rules = [ rule ]; _ } ] -> (
                      match
                        Obs.with_span "verify" (fun () ->
                            Obs.Counter.incr verification_counter;
                            Engine.Search_filters.verify_rule rule ~spec_space
                              ~action:intent.acl_action)
                      with
                      | Engine.Search_filters.Verified ->
                          emit_verify ~attempt:n "verified";
                          Ok (rule, n, List.rev history)
                      | Engine.Search_filters.Wrong_action _ ->
                          loop_back "wrong action"
                            (("attempt " ^ string_of_int n ^ ": wrong action")
                            :: history)
                      | Engine.Search_filters.Match_too_broad p ->
                          let msg =
                            Format.asprintf
                              "rule matches a packet outside the intent: %a"
                              Config.Packet.pp p
                          in
                          loop_back msg
                            (("attempt " ^ string_of_int n ^ ": " ^ msg)
                            :: history)
                      | Engine.Search_filters.Match_too_narrow p ->
                          let msg =
                            Format.asprintf
                              "rule misses a packet the intent covers: %a"
                              Config.Packet.pp p
                          in
                          loop_back msg
                            (("attempt " ^ string_of_int n ^ ": " ^ msg)
                            :: history))
                  | _ ->
                      loop_back "produce exactly one ACL rule"
                        (("attempt " ^ string_of_int n ^ ": wrong snippet shape")
                        :: history)))
        end
      in
      attempt 1 ~feedback:None []

(** Run one incremental ACL update end to end. *)
let run_acl_update ?(max_attempts = default_max_attempts)
    ?(mode = Acl_disambiguator.Binary_search) ~llm ~oracle ~db ~target ~prompt
    () =
  Obs.with_span "pipeline.acl_update" @@ fun () ->
  Obs.Counter.incr runs_counter;
  emit_session_start ~pipeline:"acl" ~target ~prompt
    ~mode:(acl_mode_to_string mode) ~max_attempts ~db;
  let calls_before = Llm.Mock_llm.total_calls llm in
  let result =
    match Config.Database.acl db target with
    | None -> Error (Target_not_found target)
    | Some target_acl -> (
        match
          Obs.with_span "classify" (fun () -> Llm.Mock_llm.classify llm prompt)
        with
        | `Route_map ->
            Error (Wrong_query_type { expected = "acl"; got = "route-map" })
        | `Acl -> (
            let entry = Llm.Prompt_db.retrieve `Acl in
            match acl_synthesis_loop llm ~max_attempts ~entry ~prompt with
            | Error e -> Error e
            | Ok (rule, attempts, history) -> (
                match
                  Obs.with_span "disambiguate" (fun () ->
                      Acl_disambiguator.run ~mode ~target:target_acl ~rule
                        ~oracle ())
                with
                | Error (Acl_disambiguator.Inconsistent_intent _) ->
                    Error
                      (Disambiguation_failed
                         "answers are inconsistent: no single insertion point \
                          implements this intent")
                | Ok outcome ->
                    emit_placement ~position:outcome.position
                      ~boundaries:outcome.boundaries
                      ~questions:(List.length outcome.questions);
                    let db' = Config.Database.add_acl db outcome.acl in
                    Ok
                      {
                        db = db';
                        acl = outcome.acl;
                        rule;
                        synthesis_attempts = attempts;
                        verification_history = history;
                        llm_calls = Llm.Mock_llm.total_calls llm - calls_before;
                        questions = outcome.questions;
                        position = outcome.position;
                        boundaries = outcome.boundaries;
                      })))
  in
  Obs.Counter.incr llm_calls_counter
    ~by:(Llm.Mock_llm.total_calls llm - calls_before);
  (match result with
  | Error _ -> Obs.Counter.incr errors_counter
  | Ok _ -> ());
  emit_session_end
    ~final_config:(fun (r : acl_report) -> Config.Parser.to_string r.db)
    result;
  result
