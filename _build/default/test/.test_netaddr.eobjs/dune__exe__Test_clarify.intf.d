test/test_clarify.mli:
