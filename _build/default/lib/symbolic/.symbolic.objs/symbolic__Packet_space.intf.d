lib/symbolic/packet_space.mli: Bdd Bvec Config Symbdd
