(** Template-based config generation from a structured intent — the
    code-generation half of the simulated LLM. Produces Cisco IOS text
    in the shape GPT-4 produces in the paper (ancillary lists followed
    by a single stanza named after the dominant set clause). *)

let snippet_map_name (i : Intent.route_map_intent) =
  match i.sets with
  | Config.Route_map.Set_metric _ :: _ -> "SET_METRIC"
  | Config.Route_map.Set_local_pref _ :: _ -> "SET_LP"
  | Config.Route_map.Set_community _ :: _ -> "SET_COMM"
  | Config.Route_map.Set_as_path_prepend _ :: _ -> "PREPEND"
  | _ -> ( match i.action with Config.Action.Permit -> "PERMIT" | Config.Action.Deny -> "DENY")

let render_route_map (i : Intent.route_map_intent) =
  let buf = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let matches = ref [] in
  (match i.communities with
  | [] -> ()
  | [ c ] ->
      line "ip community-list expanded COM_LIST permit _%s_"
        (Bgp.Community.to_string c);
      matches := "match community COM_LIST" :: !matches
  | cs ->
      line "ip community-list standard COM_LIST permit %s"
        (String.concat " " (List.map Bgp.Community.to_string cs));
      matches := "match community COM_LIST" :: !matches);
  (match i.prefixes with
  | [] -> ()
  | ranges ->
      (* Named after the first octet, like the paper's PREFIX_100. *)
      let first_octet =
        Netaddr.Ipv4.to_int
          (List.hd ranges).Netaddr.Prefix_range.prefix.Netaddr.Prefix.ip
        lsr 24
      in
      let name =
        if first_octet = 0 then "PREFIX_LIST"
        else Printf.sprintf "PREFIX_%d" first_octet
      in
      List.iteri
        (fun k r ->
          line "ip prefix-list %s seq %d permit %s" name ((k + 1) * 10)
            (Netaddr.Prefix_range.to_string r))
        ranges;
      matches := Printf.sprintf "match ip address prefix-list %s" name :: !matches);
  (match (i.as_path_origin, i.as_path_contains) with
  | Some a, _ ->
      line "ip as-path access-list AS_LIST permit _%d$" a;
      matches := "match as-path AS_LIST" :: !matches
  | None, Some a ->
      line "ip as-path access-list AS_LIST permit _%d_" a;
      matches := "match as-path AS_LIST" :: !matches
  | None, None -> ());
  (match i.local_pref with
  | Some n -> matches := Printf.sprintf "match local-preference %d" n :: !matches
  | None -> ());
  (match i.metric_match with
  | Some n -> matches := Printf.sprintf "match metric %d" n :: !matches
  | None -> ());
  (match i.tag_match with
  | Some n -> matches := Printf.sprintf "match tag %d" n :: !matches
  | None -> ());
  line "route-map %s %s 10" (snippet_map_name i)
    (Config.Action.to_string i.action);
  List.iter (fun m -> line " %s" m) (List.rev !matches);
  List.iter (fun s -> line " %s" (Config.Route_map.string_of_set s)) i.sets;
  Buffer.contents buf

let render_acl (i : Intent.acl_intent) =
  let rule =
    Config.Acl.rule ~seq:10 ~protocol:i.protocol ~src:i.src
      ~src_port:i.src_port ~dst:i.dst ~dst_port:i.dst_port
      ~established:i.established i.acl_action
  in
  Printf.sprintf "ip access-list extended SYNTH_ACL\n %s\n"
    (Config.Acl.string_of_rule rule)

let render = function
  | Intent.Route_map i -> render_route_map i
  | Intent.Acl i -> render_acl i

(* The name under which the snippet's route-map appears in its parse. *)
let map_name_of = function
  | Intent.Route_map i -> snippet_map_name i
  | Intent.Acl _ -> "SYNTH_ACL"
