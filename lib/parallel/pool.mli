(** A persistent work-stealing scheduler with deterministic ordering.

    {!map} is observationally [List.map]: results come back in input
    order regardless of the steal schedule, and the first task
    exception (by input position) is re-raised in the submitting
    domain. The calling domain participates as slot 0; the remaining
    participants are {e persistent} worker domains, spawned once per
    process (lazily, up to the largest pool used so far), parked on a
    condition variable between batches and reused — watch
    [parallel.domains_spawned] stay flat across a multi-batch run.

    Distribution is per item group ([?grain] items per task): each
    participant owns a bounded Chase–Lev deque seeded with a contiguous
    share of tasks, pops locally, and steals from random victims with
    exponential backoff when its own deque runs dry, so one straggling
    item no longer serializes the rest of its former chunk.

    Every worker domain runs under a private BDD manager, so tasks may
    freely build BDDs — but must return only plain data (stats records,
    databases), never BDD values. With [?bdd_base] (a frozen root
    manager) each participant runs under a long-lived delta layered on
    the base, cached per domain and {e reset} — rewound to the base
    boundary, not reallocated — between batches; handles built by the
    base are valid in every delta, so tasks may capture and use them.
    Without a base, persistent workers run under a long-lived scratch
    root manager, likewise reset per batch, preserving the old
    fresh-domain guarantee that nodes never leak across batches.

    Setting [CLARIFY_STEAL_STRESS=1] forces grain 1, seeds every task
    into slot 0's deque and claims exclusively through the steal path —
    maximal cross-worker contention under which outputs must stay
    byte-identical to the serial run. *)

type t

val create : ?domains:int -> unit -> t
(** [create ()] sizes the pool from the [CLARIFY_JOBS] environment
    variable (default 1 when unset or unparsable); [~domains] overrides
    it. Values are clamped to at least 1. Pools are cheap views over
    the process-wide scheduler: creating many pools never spawns extra
    domains beyond the largest [domains] actually used by a {!map}. A
    pool of 1 domain runs everything serially in the calling domain. *)

val default_domains : unit -> int
(** The [CLARIFY_JOBS] value (>= 1), or 1. *)

val domains : t -> int

val serial : t
(** A pool of one domain; [map serial ~f] is [List.map f]. *)

val map :
  ?grain:int ->
  ?bdd_base:Symbdd.Bdd.Manager.t ->
  t ->
  f:('a -> 'b) ->
  'a list ->
  'b list
(** [map pool ~f items] applies [f] to every item across the pool's
    domains and returns the results in input order.

    [?grain] (default 1) is the number of consecutive items per
    stealable task — a {e granularity} knob, not a balance knob:
    balance comes from stealing. Leave it at 1 for coarse items
    (routers, corpus sweeps); raise it only when single items are so
    cheap that per-task bookkeeping would dominate (e.g. 64 for
    microbenchmark-sized closures).

    [?bdd_base] must be a {e frozen} root manager
    ({!Symbdd.Bdd.Manager.freeze}); see the module docs for the delta
    lifecycle. The serial fallback (one domain, a single task, or a
    nested call from inside a worker task — which runs inline, serial)
    applies the same layering with a fresh delta per call.

    While observability is enabled, each participant runs under a root
    span [domainN] (a separate thread lane in the Chrome-trace export)
    and feeds per-domain labeled series: [parallel.tasks{domain=N}],
    [parallel.task_ns{domain=N}], [parallel.queue_wait_ns{domain=N}],
    [parallel.steals{domain=N}], [parallel.steal_failures{domain=N}],
    [parallel.worker.idle_ns{domain=N}], plus
    [bdd.nodes_allocated{domain=N}] and compile-cache hit/miss counters
    via the worker's BDD hooks; [parallel.park_ns] records how long
    workers slept between batches, and the [parallel.queue.depth]
    collector sums the live deques of the in-flight batch. Labeled
    handles are acquired per batch (never cached across {!Obs.reset}),
    and slot 0's previous BDD hooks are restored when the batch
    completes.

    If any task raises, the batch still drains, and the exception from
    the smallest input position is re-raised. *)

val ranges : ?grain:int -> int -> (int * int) list
(** [ranges ~grain n] is [n] positions cut into contiguous
    [(start, len)] slices of at most [grain] (default 8) — the shape
    the boundary-sweep engines feed to {!map} so that per-slice setup
    (context forks, rule compilation) amortizes over a few positions
    while slices stay plentiful enough to steal. *)

val in_worker : unit -> bool
(** True while the calling domain is executing inside a {!map} batch
    (including the submitting domain's own participation). Nested
    {!map} calls in that state run serially inline. *)

val spawned_workers : unit -> int
(** Persistent worker domains currently alive (excludes the submitting
    domain). Flat across batches once warmed up. *)

val shutdown : unit -> unit
(** Wake and join every persistent worker domain. Registered [at_exit];
    safe to call repeatedly, and the scheduler respawns workers on the
    next {!map} after a manual shutdown. Must not be called from inside
    a task. *)

val steal_stress_env : string
(** ["CLARIFY_STEAL_STRESS"]. *)

val steal_stress : unit -> bool
(** Whether the environment currently requests steal-stress mode (the
    variable is re-read at every {!map}, so tests can toggle it with
    [Unix.putenv]). *)
