(* Chrome-trace (chrome://tracing, Perfetto) export.

   The target format is the Trace Event JSON of the Chromium project:
   an object {"traceEvents": [...], "displayTimeUnit": "ms"} whose
   events carry ph (event type), ts/dur (microseconds), pid/tid
   (numeric lanes) and name. Span mirror events become complete ("X")
   events; every other recorded event becomes an instant ("i") tick, so
   questions and LLM exchanges line up against the phase that asked
   them. Processes map to routers (the ctx "router" label) and threads
   to the root segment of the span path, with "M"etadata events naming
   both. *)

module E = Telemetry.Event

type lane = { pid : int; tid : int }

(* Stable small integers per (process, thread) name, metadata emitted
   on first sight. *)
type lanes = {
  mutable procs : (string * int) list;
  mutable threads : ((int * string) * int) list;
  mutable meta : Json.t list; (* metadata events, reversed *)
}

let new_lanes () = { procs = []; threads = []; meta = [] }

let meta_event ~name ~pid ?tid ~value () =
  Json.Obj
    ([
       ("name", Json.String name);
       ("ph", Json.String "M");
       ("pid", Json.Int pid);
     ]
    @ (match tid with None -> [] | Some t -> [ ("tid", Json.Int t) ])
    @ [ ("args", Json.Obj [ ("name", Json.String value) ]) ])

let pid_of lanes proc =
  match List.assoc_opt proc lanes.procs with
  | Some pid -> pid
  | None ->
      let pid = List.length lanes.procs + 1 in
      lanes.procs <- lanes.procs @ [ (proc, pid) ];
      lanes.meta <-
        meta_event ~name:"process_name" ~pid ~value:proc () :: lanes.meta;
      pid

let tid_of lanes ~pid thread =
  match List.assoc_opt (pid, thread) lanes.threads with
  | Some tid -> tid
  | None ->
      let tid =
        1
        + List.length (List.filter (fun ((p, _), _) -> p = pid) lanes.threads)
      in
      lanes.threads <- lanes.threads @ [ ((pid, thread), tid) ];
      lanes.meta <-
        meta_event ~name:"thread_name" ~pid ~tid ~value:thread ()
        :: lanes.meta;
      tid

let lane lanes ~proc ~thread =
  let pid = pid_of lanes proc in
  { pid; tid = tid_of lanes ~pid thread }

let root_segment path =
  match String.index_opt path '.' with
  | Some i -> String.sub path 0 i
  | None -> path

(* Small scalar payload fields make useful hover args; long strings
   (configs, prompts) would bloat the trace. *)
let args_of_fields fields =
  List.filter
    (fun (_, v) ->
      match v with
      | Json.Int _ | Json.Float _ | Json.Bool _ -> true
      | Json.String s -> String.length s <= 80
      | _ -> false)
    fields

let us ns = ns /. 1e3

let span_event lanes ~proc e =
  match
    (E.str_field "path" e, E.field "start_ns" e, E.field "duration_ns" e)
  with
  | Some path, Some start_j, Some dur_j ->
      let f = function
        | Json.Float f -> f
        | Json.Int i -> float_of_int i
        | _ -> 0.
      in
      let { pid; tid } = lane lanes ~proc ~thread:(root_segment path) in
      Some
        (Json.Obj
           [
             ("name", Json.String path);
             ("ph", Json.String "X");
             ("ts", Json.Float (us (f start_j)));
             ("dur", Json.Float (us (f dur_j)));
             ("pid", Json.Int pid);
             ("tid", Json.Int tid);
             ( "args",
               Json.Obj
                 [
                   ( "depth",
                     Json.Int
                       (Option.value ~default:0 (E.int_field "depth" e)) );
                 ] );
           ])
  | _ -> None

let instant_event lanes ~proc e =
  let { pid; tid } = lane lanes ~proc ~thread:"events" in
  (* Logs from before event timestamps existed have ts_ns = 0; spread
     those events out by sequence number (1 us apart) so they remain
     distinguishable on the timeline. *)
  let ts = if e.E.ts_ns > 0. then us e.E.ts_ns else float_of_int e.E.seq in
  Json.Obj
    [
      ("name", Json.String e.E.kind);
      ("ph", Json.String "i");
      ("ts", Json.Float ts);
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("s", Json.String "t");
      ("args", Json.Obj (args_of_fields e.E.fields));
    ]

let wrap lanes events =
  Json.Obj
    [
      ("traceEvents", Json.List (List.rev lanes.meta @ events));
      ("displayTimeUnit", Json.String "ms");
    ]

let of_events ?(process = "clarify") events =
  let lanes = new_lanes () in
  let body =
    List.filter_map
      (fun e ->
        let proc =
          Option.value ~default:process (List.assoc_opt "router" e.E.ctx)
        in
        if e.E.kind = "span" then span_event lanes ~proc e
        else Some (instant_event lanes ~proc e))
      events
  in
  wrap lanes body

(* Streaming export: one trace event written per recorded event, so a
   multi-gigabyte fleet log never has to fit in memory. Metadata events
   are interleaved at first sight of each lane instead of collected up
   front — position inside traceEvents is irrelevant to the format. *)
module Writer = struct
  type t = {
    oc : out_channel;
    process : string;
    lanes : lanes;
    mutable first : bool;
    mutable closed : bool;
  }

  let create ?(process = "clarify") oc =
    let w = { oc; process; lanes = new_lanes (); first = true; closed = false } in
    output_string oc "{\"traceEvents\": [\n";
    w

  let emit w j =
    if not w.first then output_string w.oc ",\n";
    w.first <- false;
    output_string w.oc "  ";
    output_string w.oc (Json.to_string j)

  let drain_meta w =
    let meta = List.rev w.lanes.meta in
    w.lanes.meta <- [];
    List.iter (emit w) meta

  let event w e =
    let proc =
      Option.value ~default:w.process (List.assoc_opt "router" e.E.ctx)
    in
    let j =
      if e.E.kind = "span" then span_event w.lanes ~proc e
      else Some (instant_event w.lanes ~proc e)
    in
    (* The lane lookup above may have minted new pid/tid metadata;
       write it before the event that needed it. *)
    match j with
    | None -> ()
    | Some j ->
        drain_meta w;
        emit w j

  let close w =
    if not w.closed then begin
      w.closed <- true;
      drain_meta w;
      output_string w.oc "\n], \"displayTimeUnit\": \"ms\"}\n";
      flush w.oc
    end
end

(* Live spans (Obs.spans ()) export the same way without a recording. *)
let of_spans ?(process = "clarify") spans =
  let lanes = new_lanes () in
  let body =
    List.map
      (fun (s : Obs.Span.t) ->
        let { pid; tid } =
          lane lanes ~proc:process ~thread:(root_segment s.Obs.Span.path)
        in
        Json.Obj
          [
            ("name", Json.String s.Obs.Span.path);
            ("ph", Json.String "X");
            ("ts", Json.Float (us s.Obs.Span.start_ns));
            ("dur", Json.Float (us s.Obs.Span.duration_ns));
            ("pid", Json.Int pid);
            ("tid", Json.Int tid);
            ("args", Json.Obj [ ("depth", Json.Int s.Obs.Span.depth) ]);
          ])
      spans
  in
  wrap lanes body
