(** Canonical form of a stanza's set-clause sequence, used to compare
    two stanzas for behavioural equality without enumerating routes.

    Equal canonical forms behave identically (soundness); community
    pipelines additionally compare their delete-list {e definitions},
    not names, so the comparison is meaningful across two databases. *)

type community_op =
  | Comm_id (* leave communities unchanged *)
  | Comm_const of Bgp.Community.t list (* replace with this set *)
  | Comm_update of { delete : string list; add : Bgp.Community.t list }
      (** delete what the named lists match, then add [add] *)

type t = {
  metric : int option;
  local_pref : int option;
  communities : community_op;
  prepend : int list;
  next_hop : Netaddr.Ipv4.t option;
  tag : int option;
  weight : int option;
  origin : Bgp.Route.origin option;
}

val identity : t

val of_sets : Database.t -> Route_map.set_clause list -> t
(** Fold the clauses in order; later clauses of the same kind override
    earlier ones, and community clauses compose into a normalized
    pipeline. *)

val comm_op_equal :
  Database.t -> Database.t -> community_op -> community_op -> bool

val equal : db1:Database.t -> db2:Database.t -> t -> t -> bool
(** [db1]/[db2] resolve the delete-list names of the first/second
    transform respectively. *)

val pp : Format.formatter -> t -> unit
