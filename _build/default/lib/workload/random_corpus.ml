(** Fully random configuration generation with a tunable overlap
    density, for fuzzing and for the density-sweep benchmark. Unlike
    {!Acl_gen}/{!Route_map_gen} the overlap counts here are emergent —
    the analyzer measures them — but the [overlap_density] knob moves
    them monotonically from pairwise-disjoint (0.0) to heavily
    entangled (1.0). *)

let ip = Netaddr.Ipv4.of_octets

(* A fresh region private to rule [i]: host-source in 30.0.0.0/8 space
   sliced by index, so distinct indices never collide. *)
let fresh_region i =
  ( Config.Acl.Host (ip 30 (i / 256 mod 256) (i mod 256) 1),
    Config.Acl.Eq (1024 + (i mod 50000)) )

(* A region derived from an existing rule: widen or shift its source so
   the two intersect without either containing the other. *)
let derived_region rng (base : Config.Acl.rule) i =
  match Config.Acl.addr_to_prefix base.Config.Acl.src with
  | Some p when p.Netaddr.Prefix.len > 1 && p.Netaddr.Prefix.len < 32 ->
      (* Widen the source by one bit: a superset -> overlap. *)
      ( Config.Acl.addr_of_prefix
          (Netaddr.Prefix.make p.Netaddr.Prefix.ip (p.Netaddr.Prefix.len - 1)),
        base.Config.Acl.dst_port )
  | _ ->
      (* Host source: reuse it with a different port predicate that
         still covers the original port. *)
      let port =
        match base.Config.Acl.dst_port with
        | Config.Acl.Eq p -> Config.Acl.Range (max 0 (p - 10), min 65535 (p + 10))
        | _ -> Config.Acl.Any_port
      in
      ignore (rng, i);
      (base.Config.Acl.src, port)

(** A random ACL of [rules] rules; each rule overlaps some earlier rule
    with probability [overlap_density]. *)
let acl ~rng ~name ~rules ~overlap_density =
  if overlap_density < 0.0 || overlap_density > 1.0 then
    invalid_arg "Random_corpus.acl: density must be in [0, 1]";
  let action () =
    if Random.State.bool rng then Config.Action.Permit else Config.Action.Deny
  in
  let built = ref [] in
  for i = 0 to rules - 1 do
    let src, dst_port =
      match !built with
      | prev :: _ when Random.State.float rng 1.0 < overlap_density ->
          (* Overlap a random earlier rule (the most recent is fine and
             keeps chains of entanglement growing). *)
          let target =
            List.nth !built (Random.State.int rng (List.length !built))
          in
          ignore prev;
          derived_region rng target i
      | _ -> fresh_region i
    in
    built :=
      Config.Acl.rule ~protocol:Config.Packet.Tcp ~src ~dst:Config.Acl.Any
        ~dst_port (action ())
      :: !built
  done;
  Config.Acl.resequence (Config.Acl.make name (List.rev !built))

(** A random route-map of [stanzas] stanzas over fresh prefix lists;
    each stanza's prefix window overlaps an earlier stanza's with
    probability [overlap_density]. Returns the accumulated database and
    the map. *)
let route_map ~rng ~db ~name ~stanzas ~overlap_density =
  if overlap_density < 0.0 || overlap_density > 1.0 then
    invalid_arg "Random_corpus.route_map: density must be in [0, 1]";
  let db = ref db in
  let regions = ref [] in
  let out = ref [] in
  for i = 0 to stanzas - 1 do
    let base, lo, hi =
      match !regions with
      | (base, lo, hi) :: _ when Random.State.float rng 1.0 < overlap_density
        ->
          (* Widen the window: guaranteed overlap with the source. *)
          (base, lo, min 32 (hi + 2))
      | _ ->
          let base = Netaddr.Prefix.make (ip 60 (i mod 256) 0 0) 16 in
          (base, 16, 20 + Random.State.int rng 4)
    in
    regions := (base, lo, hi) :: !regions;
    let pl_name = Printf.sprintf "%s_R%d" name i in
    db :=
      Config.Database.add_prefix_list !db
        (Config.Prefix_list.make pl_name
           [
             Config.Prefix_list.entry ~seq:10 ~action:Config.Action.Permit
               (Netaddr.Prefix_range.make base ~ge:(Some lo) ~le:(Some hi));
           ]);
    let action =
      if Random.State.bool rng then Config.Action.Permit else Config.Action.Deny
    in
    out :=
      Config.Route_map.stanza ~seq:((i + 1) * 10)
        ~matches:[ Config.Route_map.Match_prefix_list [ pl_name ] ]
        action
      :: !out
  done;
  let rm = Config.Route_map.make name (List.rev !out) in
  (Config.Database.add_route_map !db rm, rm)
