lib/netsim/figure3.ml: Bgp Config List Netaddr Printf Topology
