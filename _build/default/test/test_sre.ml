open Sre

let check = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Reference semantics: an independent test-side regex AST with a
   denotational membership function, compared against the library's
   derivative-based engine on all short words.                         *)
(* ------------------------------------------------------------------ *)

module R = Regex.Make (Alphabet.Asn)

type tre =
  | Sym of int list
  | Eps
  | Cat of tre * tre
  | Alt of tre * tre
  | Inter of tre * tre
  | Compl of tre
  | Star of tre

let rec mem_ref w r =
  match r with
  | Sym s -> ( match w with [ c ] -> List.mem c s | _ -> false)
  | Eps -> w = []
  | Alt (a, b) -> mem_ref w a || mem_ref w b
  | Inter (a, b) -> mem_ref w a && mem_ref w b
  | Compl a -> not (mem_ref w a)
  | Cat (a, b) ->
      let n = List.length w in
      let rec split i =
        if i > n then false
        else
          let w1 = List.filteri (fun j _ -> j < i) w in
          let w2 = List.filteri (fun j _ -> j >= i) w in
          (mem_ref w1 a && mem_ref w2 b) || split (i + 1)
      in
      split 0
  | Star a ->
      w = []
      ||
      let n = List.length w in
      let rec split i =
        if i > n then false
        else
          let w1 = List.filteri (fun j _ -> j < i) w in
          let w2 = List.filteri (fun j _ -> j >= i) w in
          (w1 <> [] && mem_ref w1 a && mem_ref w2 (Star a)) || split (i + 1)
      in
      split 1

let rec to_lib = function
  | Sym s -> R.pred (Netaddr.Intset.of_list s)
  | Eps -> R.eps
  | Cat (a, b) -> R.cat (to_lib a) (to_lib b)
  | Alt (a, b) -> R.alt (to_lib a) (to_lib b)
  | Inter (a, b) -> R.inter (to_lib a) (to_lib b)
  | Compl a -> R.compl (to_lib a)
  | Star a -> R.star (to_lib a)

let alphabet = [ 0; 1; 2 ]

let words_up_to n =
  let rec go n =
    if n = 0 then [ [] ]
    else
      let shorter = go (n - 1) in
      shorter
      @ List.concat_map
          (fun w -> if List.length w = n - 1 then List.map (fun c -> c :: w) alphabet else [])
          shorter
  in
  go n

let all_words = words_up_to 5

let gen_tre =
  QCheck.Gen.(
    sized_size (int_range 0 12) @@ fix (fun self size ->
        if size <= 1 then
          oneof
            [ map (fun cs -> Sym cs) (list_size (int_range 1 2) (oneofl alphabet));
              return Eps ]
        else
          frequency
            [
              (2, map (fun cs -> Sym cs) (list_size (int_range 1 2) (oneofl alphabet)));
              (3, map2 (fun a b -> Cat (a, b)) (self (size / 2)) (self (size / 2)));
              (3, map2 (fun a b -> Alt (a, b)) (self (size / 2)) (self (size / 2)));
              (1, map2 (fun a b -> Inter (a, b)) (self (size / 2)) (self (size / 2)));
              (1, map (fun a -> Compl a) (self (size - 1)));
              (2, map (fun a -> Star a) (self (size - 1)));
            ]))

let rec show_tre = function
  | Sym s -> Printf.sprintf "[%s]" (String.concat "," (List.map string_of_int s))
  | Eps -> "ε"
  | Cat (a, b) -> Printf.sprintf "(%s·%s)" (show_tre a) (show_tre b)
  | Alt (a, b) -> Printf.sprintf "(%s|%s)" (show_tre a) (show_tre b)
  | Inter (a, b) -> Printf.sprintf "(%s&%s)" (show_tre a) (show_tre b)
  | Compl a -> Printf.sprintf "¬(%s)" (show_tre a)
  | Star a -> Printf.sprintf "(%s)*" (show_tre a)



let arb_tre = QCheck.make ~print:show_tre gen_tre

let prop_matches_agree =
  QCheck.Test.make ~name:"derivative matching agrees with reference" ~count:200
    arb_tre
    (fun t ->
      let r = to_lib t in
      List.for_all (fun w -> R.matches r w = mem_ref w t) all_words)

let prop_dfa_agrees =
  QCheck.Test.make ~name:"DFA acceptance agrees with reference" ~count:100
    arb_tre
    (fun t ->
      let r = to_lib t in
      let dfa = R.build_dfa r in
      List.for_all (fun w -> R.dfa_accepts dfa w = mem_ref w t) all_words)

let prop_shortest_witness =
  QCheck.Test.make ~name:"shortest_witness is accepted and minimal" ~count:200
    arb_tre
    (fun t ->
      let r = to_lib t in
      match R.shortest_witness r with
      | None ->
          (* No witness: no short word may be accepted either. *)
          List.for_all (fun w -> not (mem_ref w t)) all_words
      | Some w ->
          R.matches r w
          && List.for_all
               (fun w' ->
                 List.length w' >= List.length w || not (mem_ref w' t))
               all_words)

let prop_witnesses_accepted =
  QCheck.Test.make ~name:"all enumerated witnesses are accepted" ~count:100
    arb_tre
    (fun t ->
      let r = to_lib t in
      List.for_all (fun w -> R.matches r w) (R.witnesses ~limit:10 r))

let prop_inter_is_conjunction =
  QCheck.Test.make ~name:"intersection witness in both languages" ~count:200
    QCheck.(pair arb_tre arb_tre)
    (fun (a, b) ->
      let ra = to_lib a and rb = to_lib b in
      match R.shortest_witness (R.inter ra rb) with
      | Some w -> R.matches ra w && R.matches rb w
      | None ->
          List.for_all (fun w -> not (mem_ref w a && mem_ref w b)) all_words)

(* ------------------------------------------------------------------ *)
(* AS-path regexes                                                    *)
(* ------------------------------------------------------------------ *)

let ap = As_path_regex.compile

let test_aspath_origin () =
  (* The paper's D0 list: _32$ — routes originating from ASN 32. *)
  let r = ap "_32$" in
  check "origin only" true (As_path_regex.matches r [ 32 ]);
  check "longer path" true (As_path_regex.matches r [ 44; 100; 32 ]);
  check "not origin" false (As_path_regex.matches r [ 32; 44 ]);
  check "different asn" false (As_path_regex.matches r [ 132 ]);
  check "empty" false (As_path_regex.matches r [])

let test_aspath_first_hop () =
  let r = ap "^32_" in
  check "starts with" true (As_path_regex.matches r [ 32; 44 ]);
  check "alone" true (As_path_regex.matches r [ 32 ]);
  check "not first" false (As_path_regex.matches r [ 44; 32 ])

let test_aspath_empty () =
  let r = ap "^$" in
  check "empty path" true (As_path_regex.matches r []);
  check "nonempty" false (As_path_regex.matches r [ 1 ])

let test_aspath_contains () =
  let r = ap "_701_" in
  check "contains" true (As_path_regex.matches r [ 3356; 701; 64512 ]);
  check "at start" true (As_path_regex.matches r [ 701 ]);
  check "absent" false (As_path_regex.matches r [ 3356; 64512 ])

let test_aspath_any () =
  let r = ap ".*" in
  check "empty" true (As_path_regex.matches r []);
  check "anything" true (As_path_regex.matches r [ 1; 2; 3 ])

let test_aspath_class () =
  let r = ap "^[64512-65534]$" in
  check "private asn" true (As_path_regex.matches r [ 64900 ]);
  check "public asn" false (As_path_regex.matches r [ 3356 ]);
  check "two hops" false (As_path_regex.matches r [ 64900; 64901 ])

let test_aspath_digit_class_idiom () =
  (* ^65000(_[0-9]+)*$ — paths through 65000 then anything. *)
  let r = ap "^65000(_[0-9]+)*$" in
  check "alone" true (As_path_regex.matches r [ 65000 ]);
  check "with tail" true (As_path_regex.matches r [ 65000; 3356; 701 ]);
  check "wrong head" false (As_path_regex.matches r [ 3356; 65000 ])

let test_aspath_alternation () =
  let r = ap "^(32|44)_" in
  check "first alt" true (As_path_regex.matches r [ 32; 7 ]);
  check "second alt" true (As_path_regex.matches r [ 44 ]);
  check "neither" false (As_path_regex.matches r [ 7; 32 ])

let test_aspath_sat_witness () =
  (match As_path_regex.sat_witness ~pos:[ ap "_32$"; ap "^44_" ] ~neg:[] with
  | Some w ->
      check "pos1" true (As_path_regex.matches (ap "_32$") w);
      check "pos2" true (As_path_regex.matches (ap "^44_") w)
  | None -> Alcotest.fail "expected witness");
  (match As_path_regex.sat_witness ~pos:[ ap "_32_" ] ~neg:[ ap "^32_" ] with
  | Some w ->
      check "contains 32" true (As_path_regex.matches (ap "_32_") w);
      check "does not start with 32" false (As_path_regex.matches (ap "^32_") w)
  | None -> Alcotest.fail "expected witness");
  check "unsat: empty and nonempty" true
    (As_path_regex.sat_witness ~pos:[ ap "^$"; ap "_32_" ] ~neg:[] = None)

let test_aspath_intersects () =
  check "origin vs contains" true
    (As_path_regex.intersects (ap "_32$") (ap "_44_"));
  check "two different singletons" false
    (As_path_regex.intersects (ap "^32$") (ap "^44$"))

let test_aspath_parse_errors () =
  let expect_fail s =
    match As_path_regex.compile s with
    | exception As_path_regex.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" s
  in
  List.iter expect_fail [ "("; "[12"; "*"; "a"; "32$44"; "[9-2]" ]

(* ------------------------------------------------------------------ *)
(* Community regexes                                                  *)
(* ------------------------------------------------------------------ *)

let cr = Community_regex.compile

let test_comm_exact () =
  (* The paper's COM_LIST: _300:3_. *)
  let r = cr "_300:3_" in
  check "exact" true (Community_regex.matches r (300, 3));
  check "prefix asn" false (Community_regex.matches r (1300, 3));
  check "suffix val" false (Community_regex.matches r (300, 31));
  check "other" false (Community_regex.matches r (300, 4))

let test_comm_prefix_anchor () =
  let r = cr "^300:" in
  check "300:anything" true (Community_regex.matches r (300, 999));
  check "3001" false (Community_regex.matches r (3001, 5));
  check "not 300" false (Community_regex.matches r (30, 3))

let test_comm_unanchored () =
  (* Cisco substring semantics when unanchored. *)
  let r = cr "300:3" in
  check "exact" true (Community_regex.matches r (300, 3));
  check "substring" true (Community_regex.matches r (1300, 31))

let test_comm_class () =
  let r = cr "_65000:[0-9]+_" in
  check "any value" true (Community_regex.matches r (65000, 12345));
  check "other asn" false (Community_regex.matches r (65001, 1))

let test_comm_alternation () =
  let r = cr "_(100|200):1_" in
  check "first" true (Community_regex.matches r (100, 1));
  check "second" true (Community_regex.matches r (200, 1));
  check "neither" false (Community_regex.matches r (300, 1))

let test_comm_sat_witness () =
  (match Community_regex.sat_witness ~pos:[ cr "^300:" ] ~neg:[ cr "_300:3_" ] with
  | Some (a, b) ->
      check "witness pos" true (Community_regex.matches (cr "^300:") (a, b));
      check "witness neg" false (Community_regex.matches (cr "_300:3_") (a, b))
  | None -> Alcotest.fail "expected witness");
  check "unsat" true
    (Community_regex.sat_witness ~pos:[ cr "_300:3_" ] ~neg:[ cr "^300:" ] = None)

let test_comm_intersects () =
  check "compatible" true (Community_regex.intersects (cr "^300:") (cr "_300:3_"));
  check "incompatible" false (Community_regex.intersects (cr "_300:3_") (cr "_400:4_"))

let test_comm_witness_bounds () =
  (* Witnesses must respect 16-bit bounds. *)
  match Community_regex.sat_witness ~pos:[ cr "_[0-9]+:[0-9]+_" ] ~neg:[] with
  | Some (a, b) ->
      check "bounds" true (a >= 0 && a <= 65535 && b >= 0 && b <= 65535)
  | None -> Alcotest.fail "expected witness"

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "sre"
    [
      ( "regex-core",
        [
          q prop_matches_agree;
          q prop_dfa_agrees;
          q prop_shortest_witness;
          q prop_witnesses_accepted;
          q prop_inter_is_conjunction;
        ] );
      ( "as-path",
        [
          Alcotest.test_case "origin _32$" `Quick test_aspath_origin;
          Alcotest.test_case "first hop ^32_" `Quick test_aspath_first_hop;
          Alcotest.test_case "empty path ^$" `Quick test_aspath_empty;
          Alcotest.test_case "contains _701_" `Quick test_aspath_contains;
          Alcotest.test_case "any .*" `Quick test_aspath_any;
          Alcotest.test_case "asn class" `Quick test_aspath_class;
          Alcotest.test_case "digit class idiom" `Quick test_aspath_digit_class_idiom;
          Alcotest.test_case "alternation" `Quick test_aspath_alternation;
          Alcotest.test_case "sat_witness" `Quick test_aspath_sat_witness;
          Alcotest.test_case "intersects" `Quick test_aspath_intersects;
          Alcotest.test_case "parse errors" `Quick test_aspath_parse_errors;
        ] );
      ( "community",
        [
          Alcotest.test_case "exact _300:3_" `Quick test_comm_exact;
          Alcotest.test_case "prefix anchor" `Quick test_comm_prefix_anchor;
          Alcotest.test_case "unanchored substring" `Quick test_comm_unanchored;
          Alcotest.test_case "value class" `Quick test_comm_class;
          Alcotest.test_case "alternation" `Quick test_comm_alternation;
          Alcotest.test_case "sat_witness" `Quick test_comm_sat_witness;
          Alcotest.test_case "intersects" `Quick test_comm_intersects;
          Alcotest.test_case "witness bounds" `Quick test_comm_witness_bounds;
        ] );
    ]
