lib/config/acl.mli: Action Format Netaddr Packet
