(** ACL search — the analogue of Batfish's [searchFilters]: find a
    packet within a header-space constraint for which the ACL takes a
    given action, or prove there is none. *)

open Symbdd

type query = {
  within : Bdd.t; (* header-space constraint; [Bdd.one] = everything *)
  action : Config.Action.t; (* final ACL action sought *)
}

let any_query action = { within = Bdd.one; action }

(** Header space on which the ACL's final action is [action]. *)
let action_space (acl : Config.Acl.t) action =
  Bdd.disj_list
    (List.filter_map
       (fun (c : Symbolic.Packet_space.cell) ->
         if Config.Action.equal c.action action then Some c.guard else None)
       (Symbolic.Packet_space.exec acl))

(** A packet satisfying the query, if any. *)
let search (acl : Config.Acl.t) (q : query) =
  Obs.Counter.incr Metrics.search_filters_calls;
  Symbolic.Packet_space.to_packet (Bdd.conj q.within (action_space acl q.action))

(** Are the two ACLs behaviourally identical? Returns a differing packet
    otherwise. *)
let differ (a : Config.Acl.t) (b : Config.Acl.t) =
  Obs.Counter.incr Metrics.search_filters_calls;
  let pa = action_space a Config.Action.Permit in
  let pb = action_space b Config.Action.Permit in
  Symbolic.Packet_space.to_packet (Bdd.xor pa pb)

type verdict =
  | Verified
  | Wrong_action of { expected : Config.Action.t }
  | Match_too_broad of Config.Packet.t (* rule matches, spec does not *)
  | Match_too_narrow of Config.Packet.t (* spec matches, rule does not *)

(** Verify a single synthesized ACL rule against a header-space spec
    given as (match-space BDD, expected action): the rule's match
    condition must equal the spec space and the action must agree. *)
let verify_rule (rule : Config.Acl.rule) ~spec_space ~action =
  Obs.Counter.incr Metrics.search_filters_calls;
  if not (Config.Action.equal rule.action action) then
    Wrong_action { expected = action }
  else
    let m = Symbolic.Packet_space.of_rule rule in
    match Symbolic.Packet_space.to_packet (Bdd.conj m (Bdd.neg spec_space)) with
    | Some p -> Match_too_broad p
    | None -> (
        match
          Symbolic.Packet_space.to_packet (Bdd.conj spec_space (Bdd.neg m))
        with
        | Some p -> Match_too_narrow p
        | None -> Verified)
