(** Cisco [ip community-list] definitions, standard and expanded.

    A standard entry matches a route carrying {e all} of its listed
    communities; an expanded entry matches a route carrying {e at least
    one} community in its regex's language. Entries are evaluated
    first-match. *)

type standard_entry = { action : Action.t; communities : Bgp.Community.t list }

type expanded_entry = {
  action : Action.t;
  regex : Sre.Community_regex.t; (* compiled once at construction *)
}

type body =
  | Standard of standard_entry list
  | Expanded of expanded_entry list

type t = { name : string; body : body }

val standard : string -> standard_entry list -> t

val expanded : string -> (Action.t * string) list -> t
(** Compiles each regex source.
    @raise Sre.Community_regex.Parse_error on malformed regexes. *)

val eval : t -> Bgp.Community.t list -> Action.t option
(** First matching entry's action on the route's community set; [None]
    when no entry matches. *)

val matches : t -> Bgp.Community.t list -> bool
(** [eval] returned [Some Permit]. *)

val permitted_patterns :
  t ->
  [ `Standard of Bgp.Community.t list list
  | `Expanded of Sre.Community_regex.t list ]
(** The permit entries' payloads, for symbolic analysis. *)

val rename : t -> string -> t
val pp : Format.formatter -> t -> unit
