(** A baseline for the paper's closing question: could the LLM itself
    play the disambiguator? Guesses an insertion position from surface
    heuristics, without symbolic reasoning and without asking the user.
    The A2 ablation measures how often the guess is behaviourally what
    the user wanted. *)

val guess : target:Config.Route_map.t -> stanza:Config.Route_map.stanza -> int
(** Heuristics, in order: a deny goes above a trailing catch-all permit;
    otherwise a deny goes to the top; a permit goes to the bottom. *)

val place :
  target:Config.Route_map.t ->
  stanza:Config.Route_map.stanza ->
  Config.Route_map.t
