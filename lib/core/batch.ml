(** Conflict-aware batch intent synthesis (DESIGN.md §12).

    A batch run takes N natural-language intents at once and reproduces
    exactly what N sequential pipeline runs would do — same final
    configuration, same questions — while doing strictly less symbolic
    work and consulting the user strictly less often:

    - every intent is synthesized and verified up front with the same
      LLM loops as {!Pipeline} (same call order, same repair behaviour);
    - per target policy, ONE multi-stanza engine sweep
      ({!Engine.Compare_route_policies.batch_insertions} /
      {!Engine.Compare_acls.batch_insertions}) computes every intent's
      boundary set plus the pairwise inter-intent overlap/conflict
      graph against a single compiled first-match partition;
    - intents with no overlap edge to any other intent take a fast
      path: their precomputed boundaries are translated into the
      coordinates of the evolving target (match-disjointness makes the
      translation exact — see DESIGN.md §12) and fed to the
      disambiguator as [?precomputed], so no further compilation
      happens;
    - intents that do overlap go through a live disambiguation against
      the current target — that is where genuine inter-intent conflicts
      surface as boundary questions carrying differential witnesses;
    - a shared {!Disambig_common.Answer_cache} (keyed on policy AND
      position, not just text) answers repeated questions across
      intents without consulting the user again.

    Intents are processed in input order, which is a topological order
    of the conflict graph when edges are oriented from earlier to later
    intents: a later intent's questions are always asked against a
    configuration that already contains every earlier stanza, so each
    conflict is resolved exactly once, by the later party. *)

type item =
  | Route_map_update of { target : string; prompt : string }
  | Acl_update of { target : string; prompt : string }

type question =
  | Route_map_q of Disambiguator.question
  | Acl_q of Acl_disambiguator.question

type oracle = intent:int -> target:string -> question -> Disambig_common.answer

type witness =
  | Route_witness of Engine.Compare_route_policies.difference
  | Acl_witness of Engine.Compare_acls.difference
  | Prefix_witness of Netaddr.Prefix.t

type conflict = {
  intent_a : int; (* input indices, [intent_a < intent_b] *)
  intent_b : int;
  target : string;
  witness : witness;
}

type item_result =
  | Route_map_result of Pipeline.route_map_report
  | Acl_result of Pipeline.acl_report

type report = {
  db : Config.Database.t; (* final configuration, all intents applied *)
  items : item_result list; (* in input order *)
  conflicts : conflict list; (* genuine inter-intent conflict edges *)
  overlap_pairs : int; (* intent pairs whose match regions intersect *)
  questions_saved : int; (* answer-cache hits *)
}

type error = { intent : int; reason : Pipeline.error }

let error_to_string { intent; reason } =
  Printf.sprintf "intent %d: %s" intent (Pipeline.error_to_string reason)

let item_target = function
  | Route_map_update { target; _ } | Acl_update { target; _ } -> target

let item_kind = function
  | Route_map_update _ -> "route_map"
  | Acl_update _ -> "acl"

let item_prompt = function
  | Route_map_update { prompt; _ } | Acl_update { prompt; _ } -> prompt

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                    *)
(* ------------------------------------------------------------------ *)

let emit_session_start ~items ~rm_mode ~acl_mode ~max_attempts ~db =
  Telemetry.emit ~kind:"session_start" (fun () ->
      [
        ("pipeline", Json.String "batch");
        ("target", Json.String "*");
        ("prompt", Json.String (String.concat "\n" (List.map item_prompt items)));
        ("mode", Json.String (Pipeline.mode_to_string rm_mode));
        ("acl_mode", Json.String (Pipeline.acl_mode_to_string acl_mode));
        ("max_attempts", Json.Int max_attempts);
        ("config", Json.String (Config.Parser.to_string db));
        ( "items",
          Json.List
            (List.map
               (fun it ->
                 Json.Obj
                   [
                     ("kind", Json.String (item_kind it));
                     ("target", Json.String (item_target it));
                     ("prompt", Json.String (item_prompt it));
                   ])
               items) );
      ])

let emit_plan ~intents ~groups ~overlaps ~conflicts =
  Telemetry.emit ~kind:"batch_plan" (fun () ->
      [
        ("intents", Json.Int intents);
        ("groups", Json.Int groups);
        ("overlap_pairs", Json.Int overlaps);
        ("conflict_pairs", Json.Int (List.length conflicts));
        ( "conflicts",
          Json.List
            (List.map
               (fun c ->
                 Json.Obj
                   [
                     ("a", Json.Int c.intent_a);
                     ("b", Json.Int c.intent_b);
                     ("target", Json.String c.target);
                   ])
               conflicts) );
      ])

let emit_item ~intent ~fast it =
  Telemetry.emit ~kind:"batch_item" (fun () ->
      [
        ("intent", Json.Int intent);
        ("kind", Json.String (item_kind it));
        ("target", Json.String (item_target it));
        ("fast_path", Json.Bool fast);
      ])

let emit_session_end result =
  Telemetry.emit ~kind:"session_end" (fun () ->
      match result with
      | Ok r ->
          [
            ("ok", Json.Bool true);
            ("config", Json.String (Config.Parser.to_string r.db));
          ]
      | Error e ->
          [ ("ok", Json.Bool false); ("error", Json.String (error_to_string e)) ])

(* ------------------------------------------------------------------ *)
(* Shared answer cache                                                *)
(* ------------------------------------------------------------------ *)

(* Wrap a per-question oracle consultation with the batch cache. The
   cache sits between the disambiguator's asker and the user: the
   question event is still emitted (telemetry parity with a sequential
   run), but a repeated question — same policy, same coordinates, same
   rendered content — is answered from the cache. A "batch_cache_hit"
   marker is emitted BEFORE the asker's own question event so replay
   can tell which recorded answers never reached the user. *)
let cached_answer cache ~intent ~target view_of consult q =
  let v = view_of q in
  match Disambig_common.Answer_cache.find cache ~policy:target v with
  | Some a ->
      Obs.Counter.incr Engine.Metrics.batch_questions_saved;
      Telemetry.emit ~kind:"batch_cache_hit" (fun () ->
          [ ("intent", Json.Int intent); ("target", Json.String target) ]);
      a
  | None ->
      let a = consult q in
      Disambig_common.Answer_cache.add cache ~policy:target v a;
      a

(* ------------------------------------------------------------------ *)
(* Phase 1: synthesize every intent                                   *)
(* ------------------------------------------------------------------ *)

type synth =
  | S_route_map of {
      target : string;
      stanza : Config.Route_map.stanza;
      spec : Engine.Spec.t;
      renaming : (string * string) list;
      attempts : int;
      history : string list;
      llm_calls : int;
    }
  | S_acl of {
      target : string;
      rule : Config.Acl.rule;
      attempts : int;
      history : string list;
      llm_calls : int;
    }

exception Abort of error

let fail intent reason = raise (Abort { intent; reason })

(* Synthesize one intent against the accumulating database, exactly as
   the sequential pipeline would: same target lookup, classification,
   spec extraction and verify-repair loop, in the same order — so the
   LLM call sequence (and any scheduled fault injections) lines up
   one-to-one with N sequential runs. Importing a route-map snippet
   only adds ancillary lists under fresh [D<k>] names; stanza
   insertions never mint list names, so the renamings are the ones a
   sequential run would produce too. *)
let synthesize_item ~llm ~max_attempts ~db k it =
  let calls_before = Llm.Mock_llm.total_calls llm in
  match it with
  | Route_map_update { target; prompt } -> (
      (match Config.Database.route_map db target with
      | None -> fail k (Pipeline.Target_not_found target)
      | Some _ -> ());
      match
        Obs.with_span "classify" (fun () -> Llm.Mock_llm.classify llm prompt)
      with
      | `Acl ->
          fail k
            (Pipeline.Wrong_query_type { expected = "route-map"; got = "acl" })
      | `Route_map -> (
          let entry = Llm.Prompt_db.retrieve `Route_map in
          match
            Obs.with_span "spec_extract" (fun () ->
                Llm.Mock_llm.generate_spec llm prompt)
          with
          | Error m -> fail k (Pipeline.Spec_error m)
          | Ok spec -> (
              match
                Pipeline.synthesis_loop llm ~max_attempts ~entry ~prompt ~spec
              with
              | Error e -> fail k e
              | Ok (snippet, rm, attempts, history) -> (
                  match
                    Obs.with_span "import" (fun () ->
                        Naming.import_route_map_snippet ~db ~snippet rm)
                  with
                  | Error m -> fail k (Pipeline.Snippet_shape m)
                  | Ok { Naming.db = db'; stanza; renaming } ->
                      ( db',
                        S_route_map
                          {
                            target;
                            stanza;
                            spec;
                            renaming;
                            attempts;
                            history;
                            llm_calls =
                              Llm.Mock_llm.total_calls llm - calls_before;
                          } )))))
  | Acl_update { target; prompt } -> (
      (match Config.Database.acl db target with
      | None -> fail k (Pipeline.Target_not_found target)
      | Some _ -> ());
      match
        Obs.with_span "classify" (fun () -> Llm.Mock_llm.classify llm prompt)
      with
      | `Route_map ->
          fail k
            (Pipeline.Wrong_query_type { expected = "acl"; got = "route-map" })
      | `Acl -> (
          let entry = Llm.Prompt_db.retrieve `Acl in
          match Pipeline.acl_synthesis_loop llm ~max_attempts ~entry ~prompt with
          | Error e -> fail k e
          | Ok (rule, attempts, history) ->
              ( db,
                S_acl
                  {
                    target;
                    rule;
                    attempts;
                    history;
                    llm_calls = Llm.Mock_llm.total_calls llm - calls_before;
                  } )))

(* ------------------------------------------------------------------ *)
(* Phase 2: one engine sweep per target policy                        *)
(* ------------------------------------------------------------------ *)

(* Group intent indices by (kind, target), preserving first-seen order. *)
let group_targets synths =
  let order = ref [] in
  let tbl = Hashtbl.create 8 in
  Array.iteri
    (fun k s ->
      let key =
        match s with
        | S_route_map { target; _ } -> ("route_map", target)
        | S_acl { target; _ } -> ("acl", target)
      in
      match Hashtbl.find_opt tbl key with
      | None ->
          order := key :: !order;
          Hashtbl.add tbl key [ k ]
      | Some ks -> Hashtbl.replace tbl key (k :: ks))
    synths;
  List.rev_map (fun key -> (key, List.rev (Hashtbl.find tbl key))) !order

(* Run the multi-stanza engine sweep for every group. Returns the
   per-intent boundary sets (original-target coordinates), the
   per-intent overlap flags, and the conflict edges in input order. *)
let sweep_groups ?pool ~db synths =
  let n = Array.length synths in
  let rm_bounds = Array.make n [] in
  let acl_bounds = Array.make n [] in
  let overlapping = Array.make n false in
  let conflicts = ref [] in
  let overlap_pairs = ref 0 in
  let groups = group_targets synths in
  List.iter
    (fun ((kind, target), ks) ->
      let ks_arr = Array.of_list ks in
      let mark_overlaps overlaps =
        List.iter
          (fun (i, j) ->
            incr overlap_pairs;
            overlapping.(ks_arr.(i)) <- true;
            overlapping.(ks_arr.(j)) <- true)
          overlaps
      in
      match kind with
      | "route_map" ->
          let target_map =
            match Config.Database.route_map db target with
            | Some m -> m
            | None -> assert false (* checked during synthesis *)
          in
          let stanzas =
            List.map
              (fun k ->
                match synths.(k) with
                | S_route_map { stanza; _ } -> stanza
                | S_acl _ -> assert false)
              ks
          in
          let sw =
            Engine.Compare_route_policies.batch_insertions ?pool ~db
              ~target:target_map stanzas
          in
          Array.iteri
            (fun local k -> rm_bounds.(k) <- sw.per_candidate.(local))
            ks_arr;
          mark_overlaps sw.overlaps;
          List.iter
            (fun (i, j, d) ->
              conflicts :=
                {
                  intent_a = ks_arr.(i);
                  intent_b = ks_arr.(j);
                  target;
                  witness = Route_witness d;
                }
                :: !conflicts)
            sw.conflicts
      | _ ->
          let target_acl =
            match Config.Database.acl db target with
            | Some a -> a
            | None -> assert false
          in
          let rules =
            List.map
              (fun k ->
                match synths.(k) with
                | S_acl { rule; _ } -> rule
                | S_route_map _ -> assert false)
              ks
          in
          let sw =
            Engine.Compare_acls.batch_insertions ?pool ~target:target_acl rules
          in
          Array.iteri
            (fun local k -> acl_bounds.(k) <- sw.per_candidate.(local))
            ks_arr;
          mark_overlaps sw.overlaps;
          List.iter
            (fun (i, j, d) ->
              conflicts :=
                {
                  intent_a = ks_arr.(i);
                  intent_b = ks_arr.(j);
                  target;
                  witness = Acl_witness d;
                }
                :: !conflicts)
            sw.conflicts)
    groups;
  let conflicts =
    List.sort
      (fun a b ->
        match compare a.intent_a b.intent_a with
        | 0 -> compare a.intent_b b.intent_b
        | c -> c)
      !conflicts
  in
  (rm_bounds, acl_bounds, overlapping, conflicts, !overlap_pairs, List.length groups)

(* ------------------------------------------------------------------ *)
(* Phase 3: place every stanza, in input order                        *)
(* ------------------------------------------------------------------ *)

(* The evolving shape of one target policy: which current slot holds
   which original stanza. [`New] slots are earlier batch insertions;
   original positions shift past them when precomputed boundaries are
   translated to current coordinates. *)
type slot = Orig of int | New

type rm_state = {
  mutable rmap : Config.Route_map.t;
  mutable rslots : slot list;
}

type acl_state = { mutable aacl : Config.Acl.t; mutable aslots : slot list }

let rec insert_slot slots p =
  if p = 0 then New :: slots
  else
    match slots with
    | [] -> [ New ]
    | s :: rest -> s :: insert_slot rest (p - 1)

(* Current index of each original position, for boundary translation.
   Only valid for match-disjoint (fast-path) intents: their boundary
   regions are untouched by the [`New] stanzas they skip over. *)
let orig_index slots =
  let tbl = Hashtbl.create 16 in
  List.iteri
    (fun idx -> function Orig i -> Hashtbl.add tbl i idx | New -> ())
    slots;
  fun i -> Hashtbl.find tbl i

(* ------------------------------------------------------------------ *)
(* The batch run                                                      *)
(* ------------------------------------------------------------------ *)

let default_max_attempts = Pipeline.default_max_attempts

let run ?(max_attempts = default_max_attempts)
    ?(rm_mode = Disambiguator.Binary_search)
    ?(acl_mode = Acl_disambiguator.Binary_search) ?pool ~llm ~(oracle : oracle)
    ~db items =
  Obs.with_span "pipeline.batch" @@ fun () ->
  Obs.Counter.incr Pipeline.runs_counter;
  let nitems = List.length items in
  Obs.Counter.incr ~by:nitems Engine.Metrics.batch_intents;
  let t0 = Obs.now () in
  emit_session_start ~items ~rm_mode ~acl_mode ~max_attempts ~db;
  let calls_before = Llm.Mock_llm.total_calls llm in
  let cache = Disambig_common.Answer_cache.create () in
  let result =
    try
      (* Phase 1: synthesize everything, accumulating imported lists. *)
      let db_all, synths_rev =
        List.fold_left
          (fun (db, acc) (k, it) ->
            let db', s = synthesize_item ~llm ~max_attempts ~db k it in
            (db', s :: acc))
          (db, [])
          (List.mapi (fun k it -> (k, it)) items)
      in
      let synths = Array.of_list (List.rev synths_rev) in
      (* Phase 2: one engine sweep per target policy. *)
      let rm_bounds, acl_bounds, overlapping, conflicts, overlap_pairs, groups
          =
        Obs.with_span "batch_sweep" (fun () ->
            sweep_groups ?pool ~db:db_all synths)
      in
      emit_plan ~intents:nitems ~groups ~overlaps:overlap_pairs ~conflicts;
      (* Phase 3: place stanzas in input order. *)
      let rm_states : (string, rm_state) Hashtbl.t = Hashtbl.create 4 in
      let acl_states : (string, acl_state) Hashtbl.t = Hashtbl.create 4 in
      let db_cur = ref db_all in
      let results =
        List.mapi
          (fun k it ->
            let fast = not overlapping.(k) in
            emit_item ~intent:k ~fast it;
            match synths.(k) with
            | S_route_map
                { target; stanza; spec; renaming; attempts; history; llm_calls }
              -> (
                let st =
                  match Hashtbl.find_opt rm_states target with
                  | Some st -> st
                  | None ->
                      let m =
                        match Config.Database.route_map !db_cur target with
                        | Some m -> m
                        | None -> assert false
                      in
                      let st =
                        {
                          rmap = m;
                          rslots =
                            List.mapi
                              (fun i _ -> Orig i)
                              m.Config.Route_map.stanzas;
                        }
                      in
                      Hashtbl.add rm_states target st;
                      st
                in
                let precomputed =
                  if not fast then None
                  else
                    let stanzas_cur =
                      Array.of_list st.rmap.Config.Route_map.stanzas
                    in
                    let idx = orig_index st.rslots in
                    Some
                      (List.map
                         (fun
                           (i, (d : Engine.Compare_route_policies.difference))
                         ->
                           let i' = idx i in
                           {
                             Disambiguator.position = i';
                             boundary_seq =
                               stanzas_cur.(i').Config.Route_map.seq;
                             route = d.route;
                             if_new_first = d.result_a;
                             if_old_first = d.result_b;
                           })
                         rm_bounds.(k))
                in
                let ask =
                  cached_answer cache ~intent:k ~target Disambiguator.view
                    (fun q -> oracle ~intent:k ~target (Route_map_q q))
                in
                match
                  Disambiguator.run ~mode:rm_mode ?pool ?precomputed
                    ~db:!db_cur ~target:st.rmap ~stanza ~oracle:ask ()
                with
                | Error (Disambiguator.Inconsistent_intent _) ->
                    fail k
                      (Pipeline.Disambiguation_failed
                         "answers are inconsistent: no single insertion point \
                          implements this intent")
                | Error (Disambiguator.Top_bottom_insufficient _) ->
                    fail k
                      (Pipeline.Disambiguation_failed
                         "top/bottom placement cannot satisfy the intent")
                | Ok outcome ->
                    Pipeline.emit_placement ~position:outcome.position
                      ~boundaries:outcome.boundaries
                      ~questions:(List.length outcome.questions);
                    st.rmap <- outcome.Disambiguator.map;
                    st.rslots <- insert_slot st.rslots outcome.position;
                    db_cur :=
                      Config.Database.add_route_map !db_cur outcome.map;
                    Route_map_result
                      {
                        Pipeline.db = !db_cur;
                        map = outcome.map;
                        spec;
                        stanza;
                        renaming;
                        synthesis_attempts = attempts;
                        verification_history = history;
                        llm_calls;
                        questions = outcome.questions;
                        position = outcome.position;
                        boundaries = outcome.boundaries;
                      })
            | S_acl { target; rule; attempts; history; llm_calls } -> (
                let st =
                  match Hashtbl.find_opt acl_states target with
                  | Some st -> st
                  | None ->
                      let a =
                        match Config.Database.acl !db_cur target with
                        | Some a -> a
                        | None -> assert false
                      in
                      let st =
                        {
                          aacl = a;
                          aslots =
                            List.mapi (fun i _ -> Orig i) a.Config.Acl.rules;
                        }
                      in
                      Hashtbl.add acl_states target st;
                      st
                in
                let precomputed =
                  if not fast then None
                  else
                    let rules_cur = Array.of_list st.aacl.Config.Acl.rules in
                    let idx = orig_index st.aslots in
                    Some
                      (List.map
                         (fun (i, (d : Engine.Compare_acls.difference)) ->
                           let i' = idx i in
                           {
                             Acl_disambiguator.position = i';
                             boundary_seq = rules_cur.(i').Config.Acl.seq;
                             packet = d.packet;
                             if_new_first = d.action_a;
                             if_old_first = d.action_b;
                           })
                         acl_bounds.(k))
                in
                let ask =
                  cached_answer cache ~intent:k ~target Acl_disambiguator.view
                    (fun q -> oracle ~intent:k ~target (Acl_q q))
                in
                match
                  Acl_disambiguator.run ~mode:acl_mode ?pool ?precomputed
                    ~target:st.aacl ~rule ~oracle:ask ()
                with
                | Error (Acl_disambiguator.Inconsistent_intent _) ->
                    fail k
                      (Pipeline.Disambiguation_failed
                         "answers are inconsistent: no single insertion point \
                          implements this intent")
                | Ok outcome ->
                    Pipeline.emit_placement ~position:outcome.position
                      ~boundaries:outcome.boundaries
                      ~questions:(List.length outcome.questions);
                    st.aacl <- outcome.Acl_disambiguator.acl;
                    st.aslots <- insert_slot st.aslots outcome.position;
                    db_cur := Config.Database.add_acl !db_cur outcome.acl;
                    Acl_result
                      {
                        Pipeline.db = !db_cur;
                        acl = outcome.acl;
                        rule;
                        synthesis_attempts = attempts;
                        verification_history = history;
                        llm_calls;
                        questions = outcome.questions;
                        position = outcome.position;
                        boundaries = outcome.boundaries;
                      }))
          items
      in
      Ok
        {
          db = !db_cur;
          items = results;
          conflicts;
          overlap_pairs;
          questions_saved = Disambig_common.Answer_cache.hits cache;
        }
    with Abort e -> Error e
  in
  Obs.Counter.incr Pipeline.llm_calls_counter
    ~by:(Llm.Mock_llm.total_calls llm - calls_before);
  (match result with
  | Error _ -> Obs.Counter.incr Pipeline.errors_counter
  | Ok _ -> ());
  Obs.Histogram.observe_ns Engine.Metrics.batch_ns ((Obs.now () -. t0) *. 1e9);
  emit_session_end result;
  result

(* ------------------------------------------------------------------ *)
(* Prefix-list batches                                                *)
(* ------------------------------------------------------------------ *)

type prefix_item = { target : string; entry : Config.Prefix_list.entry }

type prefix_report = {
  db : Config.Database.t;
  outcomes : Prefix_list_disambiguator.outcome list; (* in input order *)
  conflicts : conflict list;
  questions_saved : int;
}

(* Prefix-list entries are not LLM-synthesized, and the prefix
   disambiguator's boundary scan is interval arithmetic (no symbolic
   compilation), so the batch here is the live sequential loop plus the
   shared answer cache and the pairwise conflict graph: entry pairs
   whose ranges share a matched prefix and whose actions differ, with
   the overlap witness prefix. *)
let insert_prefix_list_entries ?(mode = Prefix_list_disambiguator.Binary_search)
    ~(oracle :
       intent:int ->
       target:string ->
       Prefix_list_disambiguator.question ->
       Disambig_common.answer) ~db items =
  Obs.with_span "pipeline.batch_prefix" @@ fun () ->
  let nitems = List.length items in
  Obs.Counter.incr ~by:nitems Engine.Metrics.batch_intents;
  let t0 = Obs.now () in
  let cache = Disambig_common.Answer_cache.create () in
  let items_arr = Array.of_list items in
  (* Pairwise inter-intent conflicts, per target. *)
  let conflicts = ref [] in
  Array.iteri
    (fun i a ->
      Array.iteri
        (fun j b ->
          if
            i < j && a.target = b.target
            && not
                 (Config.Action.equal a.entry.Config.Prefix_list.action
                    b.entry.Config.Prefix_list.action)
          then
            match
              Netaddr.Prefix_range.witness_overlap
                a.entry.Config.Prefix_list.range
                b.entry.Config.Prefix_list.range
            with
            | None -> ()
            | Some p ->
                conflicts :=
                  {
                    intent_a = i;
                    intent_b = j;
                    target = a.target;
                    witness = Prefix_witness p;
                  }
                  :: !conflicts)
        items_arr)
    items_arr;
  let conflicts = List.rev !conflicts in
  Obs.Counter.incr ~by:(List.length conflicts) Engine.Metrics.batch_conflict_pairs;
  let result =
    try
      let db_cur = ref db in
      let states : (string, Config.Prefix_list.t) Hashtbl.t =
        Hashtbl.create 4
      in
      let outcomes =
        List.mapi
          (fun k { target; entry } ->
            let cur =
              match Hashtbl.find_opt states target with
              | Some pl -> pl
              | None -> (
                  match Config.Database.prefix_list !db_cur target with
                  | Some pl -> pl
                  | None -> fail k (Pipeline.Target_not_found target))
            in
            let ask =
              cached_answer cache ~intent:k ~target
                Prefix_list_disambiguator.view (fun q ->
                  oracle ~intent:k ~target q)
            in
            match
              Prefix_list_disambiguator.run ~mode ~target:cur ~entry
                ~oracle:ask ()
            with
            | Error (Prefix_list_disambiguator.Inconsistent_intent _) ->
                fail k
                  (Pipeline.Disambiguation_failed
                     "answers are inconsistent: no single insertion point \
                      implements this intent")
            | Ok outcome ->
                Hashtbl.replace states target
                  outcome.Prefix_list_disambiguator.prefix_list;
                db_cur :=
                  Config.Database.add_prefix_list !db_cur outcome.prefix_list;
                outcome)
          items
      in
      Ok
        {
          db = !db_cur;
          outcomes;
          conflicts;
          questions_saved = Disambig_common.Answer_cache.hits cache;
        }
    with Abort e -> Error e
  in
  Obs.Histogram.observe_ns Engine.Metrics.batch_ns ((Obs.now () -. t0) *. 1e9);
  result
