lib/engine/search_route_policies.ml: Bdd Bgp Bvec Config Format List Option Printf Spec Sre String Symbdd Symbolic
