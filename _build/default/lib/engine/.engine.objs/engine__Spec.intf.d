lib/engine/spec.mli: Bgp Config Format Json Netaddr Sre
