(* Differential tests for the two BDD store backends: the int-packed
   arena (default) and the boxed baseline (CLARIFY_BOXED_BDD / the
   [~boxed] manager flag), plus the frozen-base/delta sharing contract
   both backends implement. DESIGN.md §15. *)

open Symbdd

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Random formulas, built once per backend, compared on every
   observable the API offers. Handles are manager-local, so the
   comparison goes through the observation functions, never through
   handle identity across managers.                                    *)
(* ------------------------------------------------------------------ *)

type form =
  | Var of int
  | Not of form
  | And of form * form
  | Or of form * form
  | Xor of form * form
  | Const of bool

let rec eval_form env = function
  | Var i -> env i
  | Not f -> not (eval_form env f)
  | And (a, b) -> eval_form env a && eval_form env b
  | Or (a, b) -> eval_form env a || eval_form env b
  | Xor (a, b) -> eval_form env a <> eval_form env b
  | Const b -> b

let rec to_bdd = function
  | Var i -> Bdd.var i
  | Not f -> Bdd.neg (to_bdd f)
  | And (a, b) -> Bdd.conj (to_bdd a) (to_bdd b)
  | Or (a, b) -> Bdd.disj (to_bdd a) (to_bdd b)
  | Xor (a, b) -> Bdd.xor (to_bdd a) (to_bdd b)
  | Const true -> Bdd.one
  | Const false -> Bdd.zero

let nvars = 5

let gen_form =
  QCheck.Gen.(
    sized
    @@ fix (fun self size ->
           if size <= 1 then
             oneof
               [
                 map (fun i -> Var i) (int_range 0 (nvars - 1));
                 map (fun b -> Const b) bool;
               ]
           else
             oneof
               [
                 map (fun i -> Var i) (int_range 0 (nvars - 1));
                 map (fun f -> Not f) (self (size - 1));
                 map2 (fun a b -> And (a, b)) (self (size / 2)) (self (size / 2));
                 map2 (fun a b -> Or (a, b)) (self (size / 2)) (self (size / 2));
                 map2 (fun a b -> Xor (a, b)) (self (size / 2)) (self (size / 2));
               ]))

let rec show_form = function
  | Var i -> Printf.sprintf "x%d" i
  | Not f -> Printf.sprintf "!(%s)" (show_form f)
  | And (a, b) -> Printf.sprintf "(%s & %s)" (show_form a) (show_form b)
  | Or (a, b) -> Printf.sprintf "(%s | %s)" (show_form a) (show_form b)
  | Xor (a, b) -> Printf.sprintf "(%s ^ %s)" (show_form a) (show_form b)
  | Const b -> string_of_bool b

let arb_form = QCheck.make ~print:show_form gen_form

(* Everything observable about one formula under one backend. *)
let observe boxed f =
  Bdd.with_manager (Bdd.Manager.create ~boxed ()) @@ fun () ->
  let b = to_bdd f in
  let model = if Bdd.is_sat b then Some (Bdd.any_sat b) else None in
  let restricted = Bdd.size (Bdd.restrict 2 true b) in
  ( Bdd.size b,
    Bdd.sat_count ~nvars b,
    Bdd.support b,
    model,
    restricted,
    Bdd.eval (fun i -> i mod 2 = 0) b )

let prop_backends_agree =
  QCheck.Test.make ~name:"arena and boxed stores observe identically"
    ~count:300 arb_form (fun f -> observe false f = observe true f)

let prop_backend_models_valid =
  QCheck.Test.make ~name:"arena models satisfy the formula" ~count:300
    arb_form (fun f ->
      Bdd.with_manager (Bdd.Manager.create ()) @@ fun () ->
      let b = to_bdd f in
      (not (Bdd.is_sat b))
      ||
      let model = Bdd.any_sat b in
      eval_form (fun i -> try List.assoc i model with Not_found -> false) f)

(* conj_list/disj_list: the arena short-circuits on the absorbing
   element; semantics must not change, and the boxed fold must agree. *)
let prop_list_ops_agree =
  QCheck.Test.make ~name:"conj_list/disj_list agree across backends"
    ~count:200
    QCheck.(small_list arb_form)
    (fun fs ->
      let run boxed =
        Bdd.with_manager (Bdd.Manager.create ~boxed ()) @@ fun () ->
        let bs = List.map to_bdd fs in
        ( Bdd.sat_count ~nvars (Bdd.conj_list bs),
          Bdd.sat_count ~nvars (Bdd.disj_list bs) )
      in
      run false = run true)

let test_list_short_circuit () =
  (* An absorbing element early in the list must not change results
     regardless of what follows it. *)
  Bdd.with_manager (Bdd.Manager.create ()) @@ fun () ->
  check_bool "conj_list hits zero" true
    (Bdd.is_zero (Bdd.conj_list [ Bdd.var 0; Bdd.zero; Bdd.nvar 0 ]));
  check_bool "disj_list hits one" true
    (Bdd.is_one (Bdd.disj_list [ Bdd.var 0; Bdd.one; Bdd.nvar 0 ]))

(* ------------------------------------------------------------------ *)
(* The frozen-base / delta contract.                                  *)
(* ------------------------------------------------------------------ *)

let test_freeze_blocks_alloc () =
  List.iter
    (fun boxed ->
      let m = Bdd.Manager.create ~boxed () in
      Bdd.with_manager m (fun () -> ignore (Bdd.var 0));
      Bdd.Manager.freeze m;
      check_bool "frozen flag" true (Bdd.Manager.frozen m);
      (* Existing nodes are still reachable... *)
      Bdd.with_manager m (fun () -> ignore (Bdd.var 0));
      (* ...but new allocations raise. *)
      check_bool "alloc raises" true
        (try
           Bdd.with_manager m (fun () -> ignore (Bdd.var 7));
           false
         with Invalid_argument _ -> true))
    [ false; true ]

let test_delta_requires_frozen_root () =
  let m = Bdd.Manager.create () in
  check_bool "unfrozen base rejected" true
    (try
       ignore (Bdd.Manager.create_delta m);
       false
     with Invalid_argument _ -> true);
  Bdd.Manager.freeze m;
  let d = Bdd.Manager.create_delta m in
  Bdd.Manager.freeze d;
  check_bool "delta-of-delta rejected" true
    (try
       ignore (Bdd.Manager.create_delta d);
       false
     with Invalid_argument _ -> true)

let test_delta_isolation () =
  List.iter
    (fun boxed ->
      let base = Bdd.Manager.create ~boxed () in
      let shared =
        Bdd.with_manager base (fun () ->
            Bdd.conj (Bdd.var 0) (Bdd.var 1))
      in
      Bdd.Manager.freeze base;
      let base_nodes = (Bdd.Manager.stats base).Bdd.Manager.nodes in
      let delta = Bdd.Manager.create_delta base in
      let obs1 =
        Bdd.with_manager delta (fun () ->
            (* Base handles are usable under the delta; new structure
               lands in the delta only. *)
            let f = Bdd.disj shared (Bdd.var 3) in
            (Bdd.size f, Bdd.sat_count ~nvars f, Bdd.support f))
      in
      check_int "base untouched by delta work" base_nodes
        (Bdd.Manager.stats base).Bdd.Manager.nodes;
      check_bool "delta grew" true
        ((Bdd.Manager.stats delta).Bdd.Manager.nodes > 0);
      (* Reset rewinds the delta to the base boundary, not to empty,
         and rebuilding afterwards reproduces the same observations. *)
      Bdd.Manager.reset delta;
      check_int "reset keeps base" base_nodes
        (Bdd.Manager.stats base).Bdd.Manager.nodes;
      check_int "reset empties delta" 0
        (Bdd.Manager.stats delta).Bdd.Manager.nodes;
      let obs2 =
        Bdd.with_manager delta (fun () ->
            let f = Bdd.disj shared (Bdd.var 3) in
            (Bdd.size f, Bdd.sat_count ~nvars f, Bdd.support f))
      in
      check_bool "rebuild after reset is deterministic" true (obs1 = obs2);
      check_bool "shared handle still valid in base" true
        (Bdd.with_manager base (fun () -> Bdd.size shared = 2)))
    [ false; true ]

let test_cached_falls_through () =
  let base = Bdd.Manager.create () in
  let in_base =
    Bdd.with_manager base (fun () ->
        Bdd.cached ~key:"t" (fun () -> Bdd.conj (Bdd.var 0) (Bdd.var 1)))
  in
  Bdd.Manager.freeze base;
  let delta = Bdd.Manager.create_delta base in
  let called = ref false in
  let got =
    Bdd.with_manager delta (fun () ->
        Bdd.cached ~key:"t" (fun () ->
            called := true;
            Bdd.zero))
  in
  check_bool "no recompilation under delta" false !called;
  check_bool "same handle as base compilation" true (Bdd.equal got in_base)

(* Four domains, each under its own delta on one frozen base, must
   observe exactly what a serial delta observes. *)
let test_cross_domain_deltas () =
  let base = Bdd.Manager.create () in
  let vs = Bdd.with_manager base (fun () -> List.init 4 Bdd.var) in
  Bdd.Manager.freeze base;
  let job k =
    Bdd.with_manager (Bdd.Manager.create_delta base) (fun () ->
        let f =
          Bdd.conj_list
            (List.mapi (fun i v -> if i = k then Bdd.neg v else v) vs)
        in
        (Bdd.size f, Bdd.sat_count ~nvars f))
  in
  let serial = List.init 4 job in
  let domains = List.init 4 (fun k -> Domain.spawn (fun () -> job k)) in
  let parallel = List.map Domain.join domains in
  check_bool "parallel deltas agree with serial" true (serial = parallel)

(* ------------------------------------------------------------------ *)
(* Bounded memos: a tiny bound forces generation evictions without
   changing any result.                                               *)
(* ------------------------------------------------------------------ *)

let test_memo_eviction () =
  let bv m = Bdd.with_manager m in
  (* Arena-only machinery: pin the backend so the suite also passes
     under CLARIFY_BOXED_BDD=1 (the boxed store has unbounded memos). *)
  let small = Bdd.Manager.create ~boxed:false ~memo_bound:64 () in
  let big = Bdd.Manager.create ~boxed:false () in
  let workload m =
    bv m (fun () ->
        let vec = Bvec.sequential ~first:0 ~width:8 in
        let s = ref 0 in
        for lo = 0 to 63 do
          let r = Bvec.in_range vec lo (lo + 128) in
          s := !s + Bdd.size (Bdd.conj r (Bvec.le_const vec 200))
        done;
        !s)
  in
  let a = workload small and b = workload big in
  check_int "bounded memos do not change results" b a;
  check_bool "evictions happened" true
    ((Bdd.Manager.stats small).Bdd.Manager.memo_evictions > 0);
  check_int "default manager never evicts" 0
    (Bdd.Manager.stats big).Bdd.Manager.memo_evictions

(* ------------------------------------------------------------------ *)
(* Stats surface sanity for the new gauges.                           *)
(* ------------------------------------------------------------------ *)

let test_stats_surface () =
  let m = Bdd.Manager.create ~boxed:false () in
  Bdd.with_manager m (fun () -> ignore (Bdd.conj (Bdd.var 0) (Bdd.var 1)));
  let s = Bdd.Manager.stats m in
  check_bool "arena flag reported" false s.Bdd.Manager.boxed;
  check_bool "arena capacity covers nodes" true
    (s.Bdd.Manager.arena_capacity >= s.Bdd.Manager.nodes);
  check_bool "uniq lookups counted" true (s.Bdd.Manager.uniq_lookups > 0);
  check_bool "probe total sane" true
    (s.Bdd.Manager.uniq_probes >= s.Bdd.Manager.uniq_lookups);
  Bdd.Manager.freeze m;
  let d = Bdd.Manager.create_delta m in
  check_int "delta reports base nodes" s.Bdd.Manager.nodes
    (Bdd.Manager.stats d).Bdd.Manager.base_nodes;
  let bm = Bdd.Manager.create ~boxed:true () in
  check_bool "boxed flag reported" true (Bdd.Manager.stats bm).Bdd.Manager.boxed

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "arena"
    [
      ( "backends",
        [
          q prop_backends_agree;
          q prop_backend_models_valid;
          q prop_list_ops_agree;
          Alcotest.test_case "list short-circuit" `Quick
            test_list_short_circuit;
        ] );
      ( "base-delta",
        [
          Alcotest.test_case "freeze blocks alloc" `Quick
            test_freeze_blocks_alloc;
          Alcotest.test_case "delta requires frozen root" `Quick
            test_delta_requires_frozen_root;
          Alcotest.test_case "delta isolation" `Quick test_delta_isolation;
          Alcotest.test_case "cached falls through" `Quick
            test_cached_falls_through;
          Alcotest.test_case "cross-domain deltas" `Quick
            test_cross_domain_deltas;
        ] );
      ( "memo",
        [
          Alcotest.test_case "bounded eviction" `Quick test_memo_eviction;
          Alcotest.test_case "stats surface" `Quick test_stats_surface;
        ] );
    ]
