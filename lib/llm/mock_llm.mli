(** The simulated LLM: a [prompt -> completion] endpoint with call
    accounting and scheduled fault injection.

    The completion function composes the natural-language parser with
    the template synthesizer, optionally corrupted by the next scheduled
    fault. Faults are consumed one per synthesis attempt, so the
    pipeline's verify-and-repair loop converges once the schedule is
    exhausted — mirroring an LLM that fixes its output when shown a
    counterexample. *)

type request = {
  system : string;
  few_shot : (string * string) list;
  user : string;
}

type stats = {
  mutable classify_calls : int;
  mutable synthesis_calls : int;
  mutable spec_calls : int;
  mutable prompt_tokens : int; (* {!Tokens.estimate}, summed over calls *)
  mutable completion_tokens : int;
  mutable faults_injected : Fault_injector.fault list; (* newest first *)
}

type t

(** [replay]: a recorded session's synthesis responses (faults already
    baked in). When present, {!synthesize} pops answers verbatim from
    this transcript instead of running the parser+synthesizer — the
    record/replay hook of {!Clarify.Replay} — and returns
    [Error "replay transcript exhausted"] once it runs dry. Each call
    also emits [llm_classify] / [llm_synthesize] / [llm_spec] flight
    recorder events while {!Telemetry.recording}. *)
val create :
  ?faults:Fault_injector.fault list ->
  ?replay:(string, string) result list ->
  unit ->
  t
val stats : t -> stats
val total_calls : t -> int

val classify : t -> string -> Classifier.query_type
(** The classification call (paper step 1). *)

val synthesize : t -> request -> (string, string) result
(** The synthesis call (paper step 3): Cisco IOS text. [Error] models a
    refusal or an unparseable intent. Feedback lines appended after a
    newline are ignored by the simulated model. *)

val generate_spec : t -> string -> (Engine.Spec.t, string) result
(** The spec-extraction call: the JSON behavioural spec of the user's
    intent. Always faithful — the paper has the user vet this output. *)
