(* Deterministic replay: a session recorded by the flight recorder must
   re-run bit-for-bit from its own log, and any tampering must surface
   as a divergence at the first differing event. Also pins the golden
   fixture in examples/ to the behaviour of the live pipeline. *)

module P = Clarify.Pipeline
module D = Clarify.Disambiguator
module R = Clarify.Replay
module E = Telemetry.Event

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let parse_ok src =
  match Config.Parser.parse src with
  | Ok db -> db
  | Error m -> Alcotest.failf "parse failed: %s" m

(* Record an E1 route-map session in memory and hand back its events. *)
let record_route_map ?(faults = []) () =
  let llm = Llm.Mock_llm.create ~faults () in
  let result, events =
    Telemetry.with_memory_recorder (fun () ->
        P.run_route_map_update ~llm ~oracle:D.always_new
          ~db:(parse_ok Evaluation.E1_running_example.isp_out_config)
          ~target:"ISP_OUT" ~prompt:Evaluation.E1_running_example.prompt ())
  in
  (match result with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "recording run failed: %s" (P.error_to_string e));
  events

let expect_identical events =
  match R.run_events events with
  | Error m -> Alcotest.failf "replay refused the log: %s" m
  | Ok report ->
      if not (R.identical report) then
        Alcotest.failf "replay diverged:@.%a" R.pp_report report;
      report

let test_route_map_roundtrip () =
  let events = record_route_map () in
  check_bool "session recorded" true (List.length events >= 5);
  let report = expect_identical events in
  Alcotest.(check string) "pipeline" "route_map" report.R.pipeline;
  check_int "same stream length" (List.length events)
    report.R.replayed_events

(* A fault-injected session replays too: the recorded responses carry
   the fault already baked in, so the replay sees the same faulty text,
   the same failed verdict and the same repair round. *)
let test_faulty_session_roundtrip () =
  let events = record_route_map ~faults:[ Llm.Fault_injector.Flip_action ] () in
  check_bool "verify event shows the failed attempt" true
    (List.exists
       (fun e ->
         e.E.kind = "verify" && E.str_field "verdict" e <> Some "verified")
       events);
  ignore (expect_identical events)

(* Tamper with one synthesized stanza: the replay must diverge, and at
   the tampered event, not at the end of the stream. *)
let test_tampered_response_diverges () =
  let events = record_route_map () in
  let tampered_index = ref (-1) in
  let tampered =
    List.mapi
      (fun i e ->
        if e.E.kind = "llm_synthesize" && !tampered_index < 0 then (
          tampered_index := i;
          {
            e with
            E.fields =
              List.map
                (fun (n, v) ->
                  if n = "text" then
                    (n, Json.String "route-map EVIL deny 10\n")
                  else (n, v))
                e.E.fields;
          })
        else e)
      events
  in
  check_bool "found a synthesize event to tamper with" true
    (!tampered_index >= 0);
  match R.run_events tampered with
  | Error m -> Alcotest.failf "replay refused the log: %s" m
  | Ok report -> (
      match report.R.outcome with
      | R.Identical -> Alcotest.fail "tampered log replayed as identical"
      | R.Diverged d ->
          (* The synthesize event itself matches (the mock echoes the
             recorded text), so the first visible divergence is at or
             just after the tampered event — never before it. *)
          check_bool "diverges at or after the tampered event" true
            (d.R.index >= !tampered_index))

let test_unusable_logs_rejected () =
  (match R.run_events [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty log accepted");
  let events = record_route_map () in
  match R.run_events (List.tl events) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "log without session_start accepted"

(* ------------------------------------------------------------------ *)
(* Batch sessions                                                     *)
(* ------------------------------------------------------------------ *)

let batch_config =
  Evaluation.E1_running_example.isp_out_config
  ^ {|
ip access-list extended LAB_EDGE
 deny tcp any any eq 23
 permit tcp 10.20.0.0 0.0.255.255 any
 deny udp any any|}

let batch_items =
  [
    Clarify.Batch.Route_map_update
      {
        target = "ISP_OUT";
        prompt = Evaluation.E1_running_example.prompt;
      };
    Clarify.Batch.Route_map_update
      {
        target = "ISP_OUT";
        prompt =
          "Write a route-map stanza that denies routes containing the prefix \
           100.0.0.0/18 with mask length less than or equal to 23.";
      };
    Clarify.Batch.Acl_update
      {
        target = "LAB_EDGE";
        prompt =
          "Write an access list rule that permits tcp traffic from anywhere \
           to any destination with destination port 443.";
      };
  ]

(* A batch session — including a genuine inter-intent conflict between
   the two ISP_OUT intents — records and replays bit-for-bit. *)
let test_batch_roundtrip () =
  let llm = Llm.Mock_llm.create () in
  let oracle ~intent:_ ~target:_ _ = Clarify.Disambig_common.Prefer_new in
  let result, events =
    Telemetry.with_memory_recorder (fun () ->
        Clarify.Batch.run ~llm ~oracle ~db:(parse_ok batch_config) batch_items)
  in
  let report =
    match result with
    | Ok r -> r
    | Error e ->
        Alcotest.failf "recording batch failed: %s"
          (Clarify.Batch.error_to_string e)
  in
  check_int "one genuine conflict" 1
    (List.length report.Clarify.Batch.conflicts);
  let r = expect_identical events in
  Alcotest.(check string) "pipeline" "batch" r.R.pipeline

(* ------------------------------------------------------------------ *)
(* Golden fixtures                                                    *)
(* ------------------------------------------------------------------ *)

let fixture = "../examples/acl_session.jsonl"
let batch_fixture = "../examples/batch_session.jsonl"

let test_golden_batch_fixture_replays () =
  let report =
    match R.run_file batch_fixture with
    | Ok r -> r
    | Error m -> Alcotest.failf "replay refused the batch fixture: %s" m
  in
  if not (R.identical report) then
    Alcotest.failf "golden batch fixture diverged:@.%a" R.pp_report report;
  Alcotest.(check string) "pipeline" "batch" report.R.pipeline

let fixture_events () =
  match Telemetry.load_file fixture with
  | Ok events -> events
  | Error m -> Alcotest.failf "cannot load %s: %s" fixture m

let test_golden_fixture_replays () =
  let report =
    match R.run_file fixture with
    | Ok r -> r
    | Error m -> Alcotest.failf "replay refused the fixture: %s" m
  in
  if not (R.identical report) then
    Alcotest.failf "golden fixture diverged:@.%a" R.pp_report report;
  Alcotest.(check string) "pipeline" "acl" report.R.pipeline

(* The fixture's recorded outcome must equal what the seed pipeline
   produces today when run directly from the fixture's inputs: the
   final configuration is reproduced verbatim. *)
let test_golden_fixture_matches_live_pipeline () =
  let events = fixture_events () in
  let start = List.hd events in
  let field name =
    match E.str_field name start with
    | Some s -> s
    | None -> Alcotest.failf "fixture session_start lacks %S" name
  in
  let db = parse_ok (field "config") in
  let llm = Llm.Mock_llm.create () in
  let oracle _ = Clarify.Acl_disambiguator.Prefer_new in
  let report =
    match
      P.run_acl_update ~llm ~oracle ~db ~target:(field "target")
        ~prompt:(field "prompt") ()
    with
    | Ok r -> r
    | Error e -> Alcotest.failf "live run failed: %s" (P.error_to_string e)
  in
  let session_end =
    (* Span mirror events may trail session_end (the root span closes
       after the pipeline's last emission); skip them. *)
    match
      List.rev (List.filter (fun e -> e.E.kind <> "span") events)
    with
    | e :: _ when e.E.kind = "session_end" -> e
    | _ -> Alcotest.fail "fixture does not end with session_end"
  in
  let recorded_config =
    match E.str_field "config" session_end with
    | Some c -> c
    | None -> Alcotest.fail "fixture session_end lacks the final config"
  in
  Alcotest.(check string) "final configuration verbatim" recorded_config
    (Config.Parser.to_string report.P.db);
  check_int "placement position" 1 report.P.position

let () =
  Alcotest.run "replay"
    [
      ( "record/replay",
        [
          Alcotest.test_case "route-map session" `Quick
            test_route_map_roundtrip;
          Alcotest.test_case "fault-injected session" `Quick
            test_faulty_session_roundtrip;
          Alcotest.test_case "tampered response diverges" `Quick
            test_tampered_response_diverges;
          Alcotest.test_case "unusable logs rejected" `Quick
            test_unusable_logs_rejected;
          Alcotest.test_case "batch session with a conflict" `Quick
            test_batch_roundtrip;
        ] );
      ( "golden fixture",
        [
          Alcotest.test_case "replays identically" `Quick
            test_golden_fixture_replays;
          Alcotest.test_case "matches the live pipeline" `Quick
            test_golden_fixture_matches_live_pipeline;
          Alcotest.test_case "batch session replays identically" `Quick
            test_golden_batch_fixture_replays;
        ] );
    ]
