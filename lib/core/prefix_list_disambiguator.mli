(** Insertion disambiguation for prefix-list entries — the paper's first
    future-work item. Prefix lists share route-maps' first-match
    semantics, so the same boundary/binary-search algorithm applies with
    route prefixes as the inputs. *)

type question = {
  position : int;
  boundary_seq : int;
  prefix : Netaddr.Prefix.t; (* differential example *)
  if_new_first : Config.Action.t; (* implicit deny when unmatched *)
  if_old_first : Config.Action.t;
}

type answer = Disambig_common.answer = Prefer_new | Prefer_old
type oracle = question -> answer
type mode = Binary_search | Top_bottom | Linear

type outcome = {
  prefix_list : Config.Prefix_list.t;
  position : int;
  questions : question list;
  boundaries : int;
}

type error = Inconsistent_intent of question list

val pp_question : Format.formatter -> question -> unit

val view : question -> Disambig_common.view
(** The telemetry rendering of a question — also the batch answer
    cache's key material. *)

val insert_entry_at :
  Config.Prefix_list.t -> int -> Config.Prefix_list.entry -> Config.Prefix_list.t

val boundaries :
  target:Config.Prefix_list.t -> Config.Prefix_list.entry -> question list

val run :
  ?mode:mode ->
  target:Config.Prefix_list.t ->
  entry:Config.Prefix_list.entry ->
  oracle:oracle ->
  unit ->
  (outcome, error) result

val intent_driven : (Netaddr.Prefix.t -> Config.Action.t) -> oracle
