lib/workload/random_corpus.mli: Config Random
