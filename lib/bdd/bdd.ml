(* Hash-consed ROBDDs over an int-packed node store.

   A BDD value is an [int] handle: 0 is the constant false, 1 the
   constant true, and handles >= 2 name interior nodes owned by some
   manager. Two backends implement the store:

   - The default {e arena} backend packs each node as a (var, lo, hi)
     triple of ints in a flat growable [Bigarray.Array1], hash-conses
     through an open-addressing unique table (linear probing over a
     packed [int array], no allocation on the probe path) and memoizes
     the binary operators in open-addressing tables with
     generation-tagged eviction, so long runs stop growing memos
     without a full [reset].

   - The {e boxed} oracle backend (CLARIFY_BOXED_BDD=1, or
     [Manager.create ~boxed:true]) keeps the historical representation:
     boxed [Node] records hash-consed through polymorphic [Hashtbl]s,
     including the original triple-negation [disj] detour. Because both
     backends build canonical ROBDDs, every derived result
     (satisfying assignments, counts, pipeline outputs) is identical;
     CI diffs golden outputs across the two stores the same way it does
     for CLARIFY_NAIVE_BOUNDARIES.

   Managers can be {e frozen} into read-only bases: a frozen manager
   refuses fresh allocations, and [Manager.create_delta] layers a
   private writable manager on top whose lookups fall through
   base -> delta. Worker domains share one compiled base (corpus,
   partition, prefix encodings) and allocate only in their own deltas,
   which eliminates per-domain recompilation in parallel sweeps. *)

type t = int

let zero = 0
let one = 1

(* ------------------------------------------------------------------ *)
(* Open-addressing operation memos with generation-tagged eviction     *)
(* ------------------------------------------------------------------ *)

(* Fixed-size-entry memo: key = two ints, value = one int, stored in
   parallel packed arrays. A slot is live iff its generation tag equals
   the table's current generation, so [clear] (and wholesale eviction
   when a bounded table fills up) is a single counter bump — no
   clearing pass, no allocation. Within one generation the standard
   linear-probing invariant holds (the probe chain from a key's home
   slot to its entry contains only live slots), so lookups can stop at
   the first stale slot. Losing memo entries is correctness-neutral:
   the tables only cache deterministic recomputations. *)
module Memo = struct
  type t = {
    mutable keys : int array; (* 2 ints per slot *)
    mutable vals : int array;
    mutable gens : int array; (* slot live iff gens.(i) = gen *)
    mutable mask : int; (* capacity - 1, capacity a power of two *)
    mutable count : int; (* live entries in the current generation *)
    mutable gen : int;
    max_cap : int; (* growth ceiling; beyond it, evict by generation *)
    mutable evictions : int;
  }

  let pow2_ge n =
    let rec go c = if c >= n then c else go (c * 2) in
    go 16

  let create ~bound =
    let max_cap = pow2_ge bound in
    let cap = min 256 max_cap in
    {
      keys = Array.make (2 * cap) 0;
      vals = Array.make cap 0;
      gens = Array.make cap 0;
      mask = cap - 1;
      count = 0;
      gen = 1;
      max_cap;
      evictions = 0;
    }

  let[@inline] hash2 k1 k2 =
    let h = (k1 * 0x9E3779B1) lxor (k2 * 0x85EBCA77) in
    h lxor (h lsr 16)

  let rec find_loop m k1 k2 i =
    if Array.unsafe_get m.gens i <> m.gen then -1
    else if
      Array.unsafe_get m.keys (2 * i) = k1
      && Array.unsafe_get m.keys ((2 * i) + 1) = k2
    then Array.unsafe_get m.vals i
    else find_loop m k1 k2 ((i + 1) land m.mask)

  (* Returns the memoized handle, or -1 on a miss. *)
  let[@inline] find m k1 k2 = find_loop m k1 k2 (hash2 k1 k2 land m.mask)

  let rec insert_loop m k1 k2 v i =
    if Array.unsafe_get m.gens i <> m.gen then begin
      Array.unsafe_set m.keys (2 * i) k1;
      Array.unsafe_set m.keys ((2 * i) + 1) k2;
      Array.unsafe_set m.vals i v;
      Array.unsafe_set m.gens i m.gen;
      m.count <- m.count + 1
    end
    else if
      Array.unsafe_get m.keys (2 * i) = k1
      && Array.unsafe_get m.keys ((2 * i) + 1) = k2
    then ()
    else insert_loop m k1 k2 v ((i + 1) land m.mask)

  let grow m =
    let ocap = m.mask + 1 in
    let okeys = m.keys and ovals = m.vals and ogens = m.gens in
    let ogen = m.gen in
    let ncap = ocap * 2 in
    m.keys <- Array.make (2 * ncap) 0;
    m.vals <- Array.make ncap 0;
    m.gens <- Array.make ncap 0;
    m.mask <- ncap - 1;
    m.gen <- 1;
    m.count <- 0;
    for i = 0 to ocap - 1 do
      if Array.unsafe_get ogens i = ogen then begin
        let k1 = okeys.(2 * i) and k2 = okeys.((2 * i) + 1) in
        insert_loop m k1 k2 ovals.(i) (hash2 k1 k2 land m.mask)
      end
    done

  let add m k1 k2 v =
    let cap = m.mask + 1 in
    (* Keep the load factor under 3/4: grow while allowed, otherwise
       evict the whole generation in O(1). *)
    if m.count >= cap - (cap lsr 2) then
      if cap < m.max_cap then grow m
      else begin
        m.gen <- m.gen + 1;
        m.count <- 0;
        m.evictions <- m.evictions + 1
      end;
    insert_loop m k1 k2 v (hash2 k1 k2 land m.mask)

  let clear m =
    m.gen <- m.gen + 1;
    m.count <- 0
end

(* ------------------------------------------------------------------ *)
(* Arena backend: int-packed nodes, open-addressing unique table       *)
(* ------------------------------------------------------------------ *)

module Arena = struct
  type store = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

  let make_store cap : store =
    Bigarray.Array1.create Bigarray.int Bigarray.c_layout (3 * cap)

  let empty_store : store = make_store 0

  type t = {
    start : int; (* first own handle; base handles are < start *)
    mutable store : store; (* own triples at (h - start) * 3 *)
    mutable cap : int; (* own node capacity *)
    mutable next : int; (* next fresh handle *)
    (* Frozen base arena, flattened to avoid an option deref per node
       access. Root arenas use an empty base with base_limit = 2, so
       the base branch is never taken. *)
    base_store : store;
    base_start : int;
    base_limit : int; (* handles in [2, base_limit) live in the base *)
    base_uniq : int array;
    base_umask : int;
    (* Own unique table: open addressing, slot holds a handle, 0 means
       empty (0 is the terminal false, never an interior node). *)
    mutable uniq : int array;
    mutable umask : int;
    mutable ucount : int;
    mutable probes : int; (* slots inspected across unique lookups *)
    mutable lookups : int;
    neg_memo : Memo.t;
    and_memo : Memo.t;
    or_memo : Memo.t;
    xor_memo : Memo.t;
    restrict_memo : Memo.t;
    mutable frozen : bool;
    mutable alloc_hook : (unit -> unit) option;
  }

  let create ~memo_bound () =
    {
      start = 2;
      store = make_store 4096;
      cap = 4096;
      next = 2;
      base_store = empty_store;
      base_start = 2;
      base_limit = 2;
      base_uniq = [||];
      base_umask = 0;
      uniq = Array.make 8192 0;
      umask = 8191;
      ucount = 0;
      probes = 0;
      lookups = 0;
      neg_memo = Memo.create ~bound:memo_bound;
      and_memo = Memo.create ~bound:memo_bound;
      or_memo = Memo.create ~bound:memo_bound;
      xor_memo = Memo.create ~bound:memo_bound;
      restrict_memo = Memo.create ~bound:memo_bound;
      frozen = false;
      alloc_hook = None;
    }

  (* A delta shares the base's store and unique table by reference;
     both are immutable once the base is frozen, so concurrent deltas
     in different domains read them without synchronization. *)
  let create_delta ~memo_bound (b : t) =
    {
      start = b.next;
      store = make_store 1024;
      cap = 1024;
      next = b.next;
      base_store = b.store;
      base_start = b.start;
      base_limit = b.next;
      base_uniq = b.uniq;
      base_umask = b.umask;
      uniq = Array.make 2048 0;
      umask = 2047;
      ucount = 0;
      probes = 0;
      lookups = 0;
      neg_memo = Memo.create ~bound:memo_bound;
      and_memo = Memo.create ~bound:memo_bound;
      or_memo = Memo.create ~bound:memo_bound;
      xor_memo = Memo.create ~bound:memo_bound;
      restrict_memo = Memo.create ~bound:memo_bound;
      frozen = false;
      alloc_hook = None;
    }

  let[@inline] node_v a h =
    if h >= a.start then Bigarray.Array1.unsafe_get a.store (3 * (h - a.start))
    else Bigarray.Array1.unsafe_get a.base_store (3 * (h - a.base_start))

  let[@inline] node_lo a h =
    if h >= a.start then
      Bigarray.Array1.unsafe_get a.store ((3 * (h - a.start)) + 1)
    else Bigarray.Array1.unsafe_get a.base_store ((3 * (h - a.base_start)) + 1)

  let[@inline] node_hi a h =
    if h >= a.start then
      Bigarray.Array1.unsafe_get a.store ((3 * (h - a.start)) + 2)
    else Bigarray.Array1.unsafe_get a.base_store ((3 * (h - a.base_start)) + 2)

  let[@inline] level a h = if h <= 1 then max_int else node_v a h

  let[@inline] hash3 v lo hi =
    let h = (v * 0x65CC5C97) lxor (lo * 0x9E3779B1) lxor (hi * 0x85EBCA77) in
    h lxor (h lsr 16)

  let rec probe_base a v lo hi i =
    let h = Array.unsafe_get a.base_uniq i in
    if h = 0 then -1
    else if node_v a h = v && node_lo a h = lo && node_hi a h = hi then h
    else probe_base a v lo hi ((i + 1) land a.base_umask)

  (* Returns the found handle, or [lnot slot] (< 0) for the empty slot
     where the node should be inserted. *)
  let rec probe_own a v lo hi i steps =
    let h = Array.unsafe_get a.uniq i in
    if h = 0 then begin
      a.probes <- a.probes + steps;
      lnot i
    end
    else if node_v a h = v && node_lo a h = lo && node_hi a h = hi then begin
      a.probes <- a.probes + steps;
      h
    end
    else probe_own a v lo hi ((i + 1) land a.umask) (steps + 1)

  let rehash_own a =
    let ncap = (a.umask + 1) * 2 in
    let nu = Array.make ncap 0 in
    let nmask = ncap - 1 in
    for h = a.start to a.next - 1 do
      let v = node_v a h and lo = node_lo a h and hi = node_hi a h in
      let rec place i =
        if Array.unsafe_get nu i = 0 then Array.unsafe_set nu i h
        else place ((i + 1) land nmask)
      in
      place (hash3 v lo hi land nmask)
    done;
    a.uniq <- nu;
    a.umask <- nmask

  let grow_store a =
    let ncap = a.cap * 2 in
    let ns = make_store ncap in
    let used = 3 * (a.next - a.start) in
    Bigarray.Array1.blit
      (Bigarray.Array1.sub a.store 0 used)
      (Bigarray.Array1.sub ns 0 used);
    a.store <- ns;
    a.cap <- ncap

  let mk a v lo hi =
    if lo = hi then lo
    else begin
      a.lookups <- a.lookups + 1;
      let hsh = hash3 v lo hi in
      (* A node whose children both live in the base can itself live in
         the base; probe there first so deltas reuse shared structure
         instead of duplicating it. *)
      let based =
        if a.base_limit > 2 && lo < a.base_limit && hi < a.base_limit then
          probe_base a v lo hi (hsh land a.base_umask)
        else -1
      in
      if based >= 0 then based
      else
        let r = probe_own a v lo hi (hsh land a.umask) 1 in
        if r >= 0 then r
        else begin
          if a.frozen then
            invalid_arg "Bdd: node allocation in a frozen manager";
          let slot = lnot r in
          let h = a.next in
          if h - a.start >= a.cap then grow_store a;
          let off = 3 * (h - a.start) in
          Bigarray.Array1.unsafe_set a.store off v;
          Bigarray.Array1.unsafe_set a.store (off + 1) lo;
          Bigarray.Array1.unsafe_set a.store (off + 2) hi;
          Array.unsafe_set a.uniq slot h;
          a.next <- h + 1;
          a.ucount <- a.ucount + 1;
          (match a.alloc_hook with None -> () | Some f -> f ());
          let cap = a.umask + 1 in
          if a.ucount >= cap - (cap lsr 2) then rehash_own a;
          h
        end
    end

  let rec neg a t =
    if t <= 1 then 1 - t
    else
      let r = Memo.find a.neg_memo t 0 in
      if r >= 0 then r
      else begin
        let v = node_v a t in
        let lo = neg a (node_lo a t) in
        let hi = neg a (node_hi a t) in
        let r = mk a v lo hi in
        Memo.add a.neg_memo t 0 r;
        r
      end

  let rec conj a x y =
    if x = y then x
    else if x = 0 || y = 0 then 0
    else if x = 1 then y
    else if y = 1 then x
    else begin
      let k1 = if x < y then x else y in
      let k2 = if x < y then y else x in
      let r = Memo.find a.and_memo k1 k2 in
      if r >= 0 then r
      else begin
        let vx = node_v a x and vy = node_v a y in
        let v = if vx < vy then vx else vy in
        let xlo = if vx = v then node_lo a x else x in
        let xhi = if vx = v then node_hi a x else x in
        let ylo = if vy = v then node_lo a y else y in
        let yhi = if vy = v then node_hi a y else y in
        let lo = conj a xlo ylo in
        let hi = conj a xhi yhi in
        let r = mk a v lo hi in
        Memo.add a.and_memo k1 k2 r;
        r
      end
    end

  (* Direct disjunction with its own memo — no triple-negation detour,
     no transient complement nodes. *)
  let rec disj a x y =
    if x = y then x
    else if x = 1 || y = 1 then 1
    else if x = 0 then y
    else if y = 0 then x
    else begin
      let k1 = if x < y then x else y in
      let k2 = if x < y then y else x in
      let r = Memo.find a.or_memo k1 k2 in
      if r >= 0 then r
      else begin
        let vx = node_v a x and vy = node_v a y in
        let v = if vx < vy then vx else vy in
        let xlo = if vx = v then node_lo a x else x in
        let xhi = if vx = v then node_hi a x else x in
        let ylo = if vy = v then node_lo a y else y in
        let yhi = if vy = v then node_hi a y else y in
        let lo = disj a xlo ylo in
        let hi = disj a xhi yhi in
        let r = mk a v lo hi in
        Memo.add a.or_memo k1 k2 r;
        r
      end
    end

  let rec xor a x y =
    if x = y then 0
    else if x = 0 then y
    else if y = 0 then x
    else if x = 1 then neg a y
    else if y = 1 then neg a x
    else begin
      let k1 = if x < y then x else y in
      let k2 = if x < y then y else x in
      let r = Memo.find a.xor_memo k1 k2 in
      if r >= 0 then r
      else begin
        let vx = node_v a x and vy = node_v a y in
        let v = if vx < vy then vx else vy in
        let xlo = if vx = v then node_lo a x else x in
        let xhi = if vx = v then node_hi a x else x in
        let ylo = if vy = v then node_lo a y else y in
        let yhi = if vy = v then node_hi a y else y in
        let lo = xor a xlo ylo in
        let hi = xor a xhi yhi in
        let r = mk a v lo hi in
        Memo.add a.xor_memo k1 k2 r;
        r
      end
    end

  let rec restrict a v b t =
    if t <= 1 then t
    else
      let tv = node_v a t in
      if tv > v then t
      else if tv = v then (if b then node_hi a t else node_lo a t)
      else
        let k2 = (v * 2) + Bool.to_int b in
        let r = Memo.find a.restrict_memo t k2 in
        if r >= 0 then r
        else begin
          let lo = restrict a v b (node_lo a t) in
          let hi = restrict a v b (node_hi a t) in
          let r = mk a tv lo hi in
          Memo.add a.restrict_memo t k2 r;
          r
        end

  let clear_caches a =
    Memo.clear a.neg_memo;
    Memo.clear a.and_memo;
    Memo.clear a.or_memo;
    Memo.clear a.xor_memo;
    Memo.clear a.restrict_memo

  (* Reset drops own nodes only: a delta rewinds to its base boundary
     and the base (shared, frozen) is untouched. *)
  let reset a =
    a.next <- a.start;
    a.ucount <- 0;
    Array.fill a.uniq 0 (Array.length a.uniq) 0;
    clear_caches a
end

(* ------------------------------------------------------------------ *)
(* Boxed oracle backend: the historical node store, kept byte-equal    *)
(* ------------------------------------------------------------------ *)

module Boxed = struct
  type node = Zero | One | Node of { v : int; lo : node; hi : node; id : int }

  let nid = function Zero -> 0 | One -> 1 | Node n -> n.id
  let level = function Zero | One -> max_int | Node n -> n.v

  type t = {
    unique : (int * int * int, node) Hashtbl.t;
    by_id : (int, node) Hashtbl.t; (* handle -> node decode table *)
    start_id : int;
    mutable next_id : int;
    neg_memo : (int, node) Hashtbl.t;
    and_memo : (int * int, node) Hashtbl.t;
    xor_memo : (int * int, node) Hashtbl.t;
    restrict_memo : (int * int * bool, node) Hashtbl.t;
    base : t option;
    mutable frozen : bool;
    mutable alloc_hook : (unit -> unit) option;
  }

  let create () =
    {
      unique = Hashtbl.create 65536;
      by_id = Hashtbl.create 65536;
      start_id = 2;
      next_id = 2;
      neg_memo = Hashtbl.create 4096;
      and_memo = Hashtbl.create 65536;
      xor_memo = Hashtbl.create 4096;
      restrict_memo = Hashtbl.create 4096;
      base = None;
      frozen = false;
      alloc_hook = None;
    }

  let create_delta (b : t) =
    {
      unique = Hashtbl.create 1024;
      by_id = Hashtbl.create 1024;
      start_id = b.next_id;
      next_id = b.next_id;
      neg_memo = Hashtbl.create 1024;
      and_memo = Hashtbl.create 1024;
      xor_memo = Hashtbl.create 1024;
      restrict_memo = Hashtbl.create 1024;
      base = Some b;
      frozen = false;
      alloc_hook = None;
    }

  let decode m h =
    if h = 0 then Zero
    else if h = 1 then One
    else if h < m.start_id then
      match m.base with
      | Some b -> Hashtbl.find b.by_id h
      | None -> invalid_arg "Bdd: unknown node handle"
    else Hashtbl.find m.by_id h

  let mk m v lo hi =
    if lo == hi then lo
    else
      let key = (v, nid lo, nid hi) in
      let based =
        match m.base with
        | Some b -> Hashtbl.find_opt b.unique key
        | None -> None
      in
      match based with
      | Some n -> n
      | None -> (
          match Hashtbl.find_opt m.unique key with
          | Some n -> n
          | None ->
              if m.frozen then
                invalid_arg "Bdd: node allocation in a frozen manager";
              let n = Node { v; lo; hi; id = m.next_id } in
              Hashtbl.add m.by_id m.next_id n;
              m.next_id <- m.next_id + 1;
              Hashtbl.add m.unique key n;
              (match m.alloc_hook with None -> () | Some f -> f ());
              n)

  let rec neg_m m t =
    match t with
    | Zero -> One
    | One -> Zero
    | Node { v; lo; hi; id } -> (
        match Hashtbl.find_opt m.neg_memo id with
        | Some r -> r
        | None ->
            let r = mk m v (neg_m m lo) (neg_m m hi) in
            Hashtbl.add m.neg_memo id r;
            r)

  let branches t v =
    match t with Node n when n.v = v -> (n.lo, n.hi) | _ -> (t, t)

  let rec conj_m m a b =
    match (a, b) with
    | Zero, _ | _, Zero -> Zero
    | One, t | t, One -> t
    | _ when a == b -> a
    | _ -> (
        let ia = nid a and ib = nid b in
        let key = if ia < ib then (ia, ib) else (ib, ia) in
        match Hashtbl.find_opt m.and_memo key with
        | Some r -> r
        | None ->
            let v = min (level a) (level b) in
            let alo, ahi = branches a v and blo, bhi = branches b v in
            let r = mk m v (conj_m m alo blo) (conj_m m ahi bhi) in
            Hashtbl.add m.and_memo key r;
            r)

  (* The historical detour, preserved verbatim in the oracle. *)
  let disj_m m a b = neg_m m (conj_m m (neg_m m a) (neg_m m b))

  let rec xor_m m a b =
    match (a, b) with
    | Zero, t | t, Zero -> t
    | One, t | t, One -> neg_m m t
    | _ when a == b -> Zero
    | _ -> (
        let ia = nid a and ib = nid b in
        let key = if ia < ib then (ia, ib) else (ib, ia) in
        match Hashtbl.find_opt m.xor_memo key with
        | Some r -> r
        | None ->
            let v = min (level a) (level b) in
            let alo, ahi = branches a v and blo, bhi = branches b v in
            let r = mk m v (xor_m m alo blo) (xor_m m ahi bhi) in
            Hashtbl.add m.xor_memo key r;
            r)

  let rec restrict_m m v b t =
    match t with
    | Zero | One -> t
    | Node n when n.v > v -> t
    | Node n when n.v = v -> if b then n.hi else n.lo
    | Node n -> (
        let key = (n.id, v, b) in
        match Hashtbl.find_opt m.restrict_memo key with
        | Some r -> r
        | None ->
            let r = mk m n.v (restrict_m m v b n.lo) (restrict_m m v b n.hi) in
            Hashtbl.add m.restrict_memo key r;
            r)

  let exists_var m v t =
    disj_m m (restrict_m m v false t) (restrict_m m v true t)

  (* Handle-level wrappers. *)
  let h_var m i = nid (mk m i Zero One)
  let h_nvar m i = nid (mk m i One Zero)
  let h_neg m x = nid (neg_m m (decode m x))
  let h_conj m x y = nid (conj_m m (decode m x) (decode m y))
  let h_disj m x y = nid (disj_m m (decode m x) (decode m y))
  let h_xor m x y = nid (xor_m m (decode m x) (decode m y))
  let h_imp m x y = nid (disj_m m (neg_m m (decode m x)) (decode m y))
  let h_iff m x y = nid (neg_m m (xor_m m (decode m x) (decode m y)))

  let h_ite m c t e =
    let c = decode m c and t = decode m t and e = decode m e in
    nid (disj_m m (conj_m m c t) (conj_m m (neg_m m c) e))

  let h_restrict m v b x = nid (restrict_m m v b (decode m x))

  let h_exists m vs x =
    nid (List.fold_left (fun t v -> exists_var m v t) (decode m x) vs)

  (* The historical folds: no short-circuit on the absorbing element. *)
  let h_conj_list m xs =
    nid (List.fold_left (fun acc x -> conj_m m acc (decode m x)) One xs)

  let h_disj_list m xs =
    nid (List.fold_left (fun acc x -> disj_m m acc (decode m x)) Zero xs)

  let h_implies m x y = conj_m m (decode m x) (neg_m m (decode m y)) == Zero

  let h_expand m h =
    match decode m h with
    | Node n -> (n.v, nid n.lo, nid n.hi)
    | Zero | One -> invalid_arg "Bdd: expanding a terminal"

  let h_level m h = if h <= 1 then max_int else level (decode m h)

  let clear_caches m =
    Hashtbl.reset m.neg_memo;
    Hashtbl.reset m.and_memo;
    Hashtbl.reset m.xor_memo;
    Hashtbl.reset m.restrict_memo

  let reset m =
    clear_caches m;
    Hashtbl.reset m.unique;
    Hashtbl.reset m.by_id;
    m.next_id <- m.start_id
end

(* ------------------------------------------------------------------ *)
(* Managers                                                           *)
(* ------------------------------------------------------------------ *)

(* All mutable state of the hash-consing engine lives in an explicit
   manager record wrapping one of the two backends. Node handles (and
   therefore equality of results) are only meaningful relative to the
   manager that built them, so values from different managers must
   never be mixed in one operation — except for a frozen base and its
   deltas, which share one handle space by construction.

   The public operations below act on a domain-local default manager
   (one per [Domain], via [Domain.DLS]), which keeps the historical
   module-level API while making every domain an isolated, race-free
   BDD universe: parallel workers hash-cons into their own tables with
   no locks on the allocation path. *)
module Manager = struct
  type bdd = int

  type impl = Arena_impl of Arena.t | Boxed_impl of Boxed.t

  type t = {
    impl : impl;
    base : t option;
    memo_bound : int;
    mutable frozen : bool;
    (* Structural-hash-keyed compilation cache: callers memoize
       "source object -> BDD" translations (ACL rules, prefix lists)
       under a canonical string key, so corpus sweeps compile each
       distinct rule once per manager epoch instead of once per use.
       Delta lookups fall through to the frozen base's cache. *)
    compile_cache : (string, int) Hashtbl.t;
    mutable cache_hits : int;
    mutable cache_misses : int;
    mutable cache_hook : (bool -> unit) option; (* arg: was it a hit? *)
  }

  let boxed_env = "CLARIFY_BOXED_BDD"
  let memo_bound_env = "CLARIFY_BDD_MEMO_BOUND"
  let default_memo_bound = 1 lsl 20

  let env_truthy name =
    match Sys.getenv_opt name with
    | Some ("1" | "true" | "yes" | "on") -> true
    | _ -> false

  let memo_bound_from_env () =
    match Sys.getenv_opt memo_bound_env with
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n when n >= 16 -> n
        | _ -> default_memo_bound)
    | None -> default_memo_bound

  let create ?boxed ?memo_bound () =
    let boxed =
      match boxed with Some b -> b | None -> env_truthy boxed_env
    in
    let memo_bound =
      match memo_bound with
      | Some b -> max 16 b
      | None -> memo_bound_from_env ()
    in
    let impl =
      if boxed then Boxed_impl (Boxed.create ())
      else Arena_impl (Arena.create ~memo_bound ())
    in
    {
      impl;
      base = None;
      memo_bound;
      frozen = false;
      compile_cache = Hashtbl.create 1024;
      cache_hits = 0;
      cache_misses = 0;
      cache_hook = None;
    }

  let frozen m = m.frozen

  let freeze m =
    m.frozen <- true;
    match m.impl with
    | Arena_impl a -> a.Arena.frozen <- true
    | Boxed_impl b -> b.Boxed.frozen <- true

  let create_delta base =
    if not base.frozen then
      invalid_arg "Bdd.Manager.create_delta: base manager must be frozen";
    (match base.base with
    | Some _ ->
        invalid_arg "Bdd.Manager.create_delta: base must be a root manager"
    | None -> ());
    let impl =
      match base.impl with
      | Arena_impl a ->
          Arena_impl (Arena.create_delta ~memo_bound:base.memo_bound a)
      | Boxed_impl b -> Boxed_impl (Boxed.create_delta b)
    in
    {
      impl;
      base = Some base;
      memo_bound = base.memo_bound;
      frozen = false;
      compile_cache = Hashtbl.create 256;
      cache_hits = 0;
      cache_misses = 0;
      cache_hook = None;
    }

  (* Drop the operation memo tables only; hash-consed nodes (and the
     compilation cache, which pins them) survive. *)
  let clear_caches m =
    match m.impl with
    | Arena_impl a -> Arena.clear_caches a
    | Boxed_impl b -> Boxed.clear_caches b

  (* Full reset: unique table, id allocator, memos and the compilation
     cache. Every BDD built by this manager is invalidated — only call
     between independent analyses when none of them is still live. On a
     delta this rewinds to the base boundary; the shared base survives. *)
  let reset m =
    if m.frozen then invalid_arg "Bdd.Manager.reset: manager is frozen";
    (match m.impl with
    | Arena_impl a -> Arena.reset a
    | Boxed_impl b -> Boxed.reset b);
    Hashtbl.reset m.compile_cache

  type stats = {
    nodes : int; (* live entries in the own unique table *)
    next_id : int;
    neg_memo : int;
    and_memo : int;
    or_memo : int;
    xor_memo : int;
    restrict_memo : int;
    cache_entries : int;
    cache_hits : int;
    cache_misses : int;
    boxed : bool;
    base_nodes : int; (* nodes inherited from a frozen base *)
    arena_capacity : int; (* own node-store capacity (0 when boxed) *)
    uniq_slots : int; (* own unique-table slots (0 when boxed) *)
    uniq_lookups : int;
    uniq_probes : int; (* slots inspected across those lookups *)
    memo_evictions : int; (* generation bumps forced by the memo bound *)
  }

  let stats m =
    let cache_entries = Hashtbl.length m.compile_cache in
    match m.impl with
    | Arena_impl a ->
        {
          nodes = a.Arena.ucount;
          next_id = a.Arena.next;
          neg_memo = a.Arena.neg_memo.Memo.count;
          and_memo = a.Arena.and_memo.Memo.count;
          or_memo = a.Arena.or_memo.Memo.count;
          xor_memo = a.Arena.xor_memo.Memo.count;
          restrict_memo = a.Arena.restrict_memo.Memo.count;
          cache_entries;
          cache_hits = m.cache_hits;
          cache_misses = m.cache_misses;
          boxed = false;
          base_nodes = a.Arena.base_limit - a.Arena.base_start;
          arena_capacity = a.Arena.cap;
          uniq_slots = a.Arena.umask + 1;
          uniq_lookups = a.Arena.lookups;
          uniq_probes = a.Arena.probes;
          memo_evictions =
            a.Arena.neg_memo.Memo.evictions
            + a.Arena.and_memo.Memo.evictions
            + a.Arena.or_memo.Memo.evictions
            + a.Arena.xor_memo.Memo.evictions
            + a.Arena.restrict_memo.Memo.evictions;
        }
    | Boxed_impl b ->
        {
          nodes = Hashtbl.length b.Boxed.unique;
          next_id = b.Boxed.next_id;
          neg_memo = Hashtbl.length b.Boxed.neg_memo;
          and_memo = Hashtbl.length b.Boxed.and_memo;
          or_memo = 0;
          xor_memo = Hashtbl.length b.Boxed.xor_memo;
          restrict_memo = Hashtbl.length b.Boxed.restrict_memo;
          cache_entries;
          cache_hits = m.cache_hits;
          cache_misses = m.cache_misses;
          boxed = true;
          base_nodes =
            (match b.Boxed.base with
            | Some p -> Hashtbl.length p.Boxed.unique
            | None -> 0);
          arena_capacity = 0;
          uniq_slots = 0;
          uniq_lookups = 0;
          uniq_probes = 0;
          memo_evictions = 0;
        }

  let key = Domain.DLS.new_key (fun () -> create ())
  let current () = Domain.DLS.get key
end

let manager = Manager.current

let with_manager m f =
  let saved = Domain.DLS.get Manager.key in
  Domain.DLS.set Manager.key m;
  Fun.protect ~finally:(fun () -> Domain.DLS.set Manager.key saved) f

let set_alloc_hook h =
  match (manager ()).Manager.impl with
  | Manager.Arena_impl a -> a.Arena.alloc_hook <- h
  | Manager.Boxed_impl b -> b.Boxed.alloc_hook <- h

let get_alloc_hook () =
  match (manager ()).Manager.impl with
  | Manager.Arena_impl a -> a.Arena.alloc_hook
  | Manager.Boxed_impl b -> b.Boxed.alloc_hook

let set_cache_hook h = (manager ()).Manager.cache_hook <- h
let get_cache_hook () = (manager ()).Manager.cache_hook
let clear_caches () = Manager.clear_caches (manager ())

(* ------------------------------------------------------------------ *)
(* Public operations: resolve the DLS manager exactly once, dispatch   *)
(* ------------------------------------------------------------------ *)

let[@inline] impl () = (Manager.current ()).Manager.impl

let var i =
  if i < 0 then invalid_arg "Bdd.var";
  match impl () with
  | Manager.Arena_impl a -> Arena.mk a i 0 1
  | Manager.Boxed_impl b -> Boxed.h_var b i

let nvar i =
  if i < 0 then invalid_arg "Bdd.nvar";
  match impl () with
  | Manager.Arena_impl a -> Arena.mk a i 1 0
  | Manager.Boxed_impl b -> Boxed.h_nvar b i

let neg t =
  match impl () with
  | Manager.Arena_impl a -> Arena.neg a t
  | Manager.Boxed_impl b -> Boxed.h_neg b t

let conj x y =
  match impl () with
  | Manager.Arena_impl a -> Arena.conj a x y
  | Manager.Boxed_impl b -> Boxed.h_conj b x y

let disj x y =
  match impl () with
  | Manager.Arena_impl a -> Arena.disj a x y
  | Manager.Boxed_impl b -> Boxed.h_disj b x y

let xor x y =
  match impl () with
  | Manager.Arena_impl a -> Arena.xor a x y
  | Manager.Boxed_impl b -> Boxed.h_xor b x y

let imp x y =
  match impl () with
  | Manager.Arena_impl a -> Arena.disj a (Arena.neg a x) y
  | Manager.Boxed_impl b -> Boxed.h_imp b x y

let iff x y =
  match impl () with
  | Manager.Arena_impl a -> Arena.neg a (Arena.xor a x y)
  | Manager.Boxed_impl b -> Boxed.h_iff b x y

let ite c t e =
  match impl () with
  | Manager.Arena_impl a ->
      Arena.disj a (Arena.conj a c t) (Arena.conj a (Arena.neg a c) e)
  | Manager.Boxed_impl b -> Boxed.h_ite b c t e

(* Both folds short-circuit on the absorbing element: once the
   accumulator is the annihilator there is no need to look at (or
   memoize against) the rest of the list. The boxed oracle keeps the
   historical non-short-circuit folds. *)
let conj_list ts =
  match impl () with
  | Manager.Arena_impl a ->
      let rec go acc = function
        | [] -> acc
        | _ when acc = 0 -> 0
        | x :: rest -> go (Arena.conj a acc x) rest
      in
      go 1 ts
  | Manager.Boxed_impl b -> Boxed.h_conj_list b ts

let disj_list ts =
  match impl () with
  | Manager.Arena_impl a ->
      let rec go acc = function
        | [] -> acc
        | _ when acc = 1 -> 1
        | x :: rest -> go (Arena.disj a acc x) rest
      in
      go 0 ts
  | Manager.Boxed_impl b -> Boxed.h_disj_list b ts

let restrict v b t =
  match impl () with
  | Manager.Arena_impl a -> Arena.restrict a v b t
  | Manager.Boxed_impl bx -> Boxed.h_restrict bx v b t

let exists vs t =
  match impl () with
  | Manager.Arena_impl a ->
      List.fold_left
        (fun t v -> Arena.disj a (Arena.restrict a v false t) (Arena.restrict a v true t))
        t vs
  | Manager.Boxed_impl b -> Boxed.h_exists b vs t

let is_zero t = t = 0
let is_one t = t = 1
let equal (a : int) (b : int) = a = b
let compare = Int.compare
let hash (t : int) = t
let is_sat t = t <> 0

let implies x y =
  match impl () with
  | Manager.Arena_impl a -> Arena.conj a x (Arena.neg a y) = 0
  | Manager.Boxed_impl b -> Boxed.h_implies b x y

(* ------------------------------------------------------------------ *)
(* Symbolic compilation cache                                         *)
(* ------------------------------------------------------------------ *)

let cached ~key f =
  let m = manager () in
  let found =
    match Hashtbl.find_opt m.Manager.compile_cache key with
    | Some _ as s -> s
    | None -> (
        match m.Manager.base with
        | Some b -> Hashtbl.find_opt b.Manager.compile_cache key
        | None -> None)
  in
  match found with
  | Some b ->
      m.Manager.cache_hits <- m.Manager.cache_hits + 1;
      (match m.Manager.cache_hook with None -> () | Some h -> h true);
      b
  | None ->
      m.Manager.cache_misses <- m.Manager.cache_misses + 1;
      (match m.Manager.cache_hook with None -> () | Some h -> h false);
      let b = f () in
      Hashtbl.add m.Manager.compile_cache key b;
      b

(* ------------------------------------------------------------------ *)
(* Traversals (backend-generic over node expansion)                   *)
(* ------------------------------------------------------------------ *)

let[@inline] expand m h =
  match m.Manager.impl with
  | Manager.Arena_impl a -> (Arena.node_v a h, Arena.node_lo a h, Arena.node_hi a h)
  | Manager.Boxed_impl b -> Boxed.h_expand b h

let[@inline] level_of m h =
  match m.Manager.impl with
  | Manager.Arena_impl a -> Arena.level a h
  | Manager.Boxed_impl b -> Boxed.h_level b h

let any_sat t =
  let m = manager () in
  let rec go acc h =
    if h = 0 then raise Not_found
    else if h = 1 then List.rev acc
    else
      let v, lo, hi = expand m h in
      if hi = 0 then go ((v, false) :: acc) lo else go ((v, true) :: acc) hi
  in
  go [] t

let all_sat t =
  let m = manager () in
  let rec go acc h () =
    if h = 0 then Seq.Nil
    else if h = 1 then Seq.Cons (List.rev acc, Seq.empty)
    else
      let v, lo, hi = expand m h in
      Seq.append (go ((v, false) :: acc) lo) (go ((v, true) :: acc) hi) ()
  in
  go [] t

let sat_count ~nvars t =
  let m = manager () in
  let lvl h = if h <= 1 then nvars else let l = level_of m h in l in
  let memo = Hashtbl.create 256 in
  let pow2 n = Float.pow 2. (Float.of_int n) in
  let rec go h =
    if h = 0 then 0.
    else if h = 1 then 1.
    else
      match Hashtbl.find_opt memo h with
      | Some c -> c
      | None ->
          let v, lo, hi = expand m h in
          let c =
            (go lo *. pow2 (lvl lo - v - 1)) +. (go hi *. pow2 (lvl hi - v - 1))
          in
          Hashtbl.add memo h c;
          c
  in
  go t *. pow2 (min (lvl t) nvars)

let size t =
  let m = manager () in
  let seen = Hashtbl.create 64 in
  let rec go h =
    if h > 1 && not (Hashtbl.mem seen h) then begin
      Hashtbl.add seen h ();
      let _, lo, hi = expand m h in
      go lo;
      go hi
    end
  in
  go t;
  Hashtbl.length seen

let support t =
  let m = manager () in
  let seen = Hashtbl.create 64 in
  let vars = Hashtbl.create 16 in
  let rec go h =
    if h > 1 && not (Hashtbl.mem seen h) then begin
      Hashtbl.add seen h ();
      let v, lo, hi = expand m h in
      Hashtbl.replace vars v ();
      go lo;
      go hi
    end
  in
  go t;
  List.sort Int.compare (Hashtbl.fold (fun v () acc -> v :: acc) vars [])

let eval env t =
  let m = manager () in
  let rec go h =
    if h = 0 then false
    else if h = 1 then true
    else
      let v, lo, hi = expand m h in
      if env v then go hi else go lo
  in
  go t

let pp fmt t =
  let m = manager () in
  let rec go fmt h =
    if h = 0 then Format.pp_print_string fmt "F"
    else if h = 1 then Format.pp_print_string fmt "T"
    else
      let v, lo, hi = expand m h in
      Format.fprintf fmt "@[<hv 1>(x%d?%a:%a)@]" v go hi go lo
  in
  go fmt t

let node_count () =
  match impl () with
  | Manager.Arena_impl a -> a.Arena.ucount
  | Manager.Boxed_impl b -> Hashtbl.length b.Boxed.unique
