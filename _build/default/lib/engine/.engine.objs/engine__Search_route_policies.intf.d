lib/engine/search_route_policies.mli: Bgp Config Format Spec Sre Symbdd Symbolic
