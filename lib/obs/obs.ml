(* Process-global observability registry.

   Domain-safety contract (see DESIGN.md §Multicore): metric
   registration and the span record path are guarded by a mutex, and
   the open-span stack is domain-local, so worker domains may register
   labeled series, increment counters and open spans concurrently.
   Counter increments and histogram observations on a *shared* series
   are unsynchronized field updates — memory-safe in OCaml, but two
   domains racing on the same series can lose updates. The parallel
   layer therefore gives each worker its own [domain=N]-labeled series
   for hot-path metrics; totals on shared series are best-effort under
   parallelism. *)

(* ------------------------------------------------------------------ *)
(* State and lifecycle                                                *)
(* ------------------------------------------------------------------ *)

let enabled_flag = ref false

(* Guards the metric registries (Hashtbl add/iterate) and the span
   record path (buffer, sequence counter, sink forwarding). Never held
   while user code runs. *)
let registry_mutex = Mutex.create ()

let locked f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

(* Wall-clock, not [Sys.time]: span latencies must include time spent
   blocked on IO or sleeping, which CPU time would hide. *)
let clock = ref Unix.gettimeofday
let state_subscribers : (bool -> unit) list ref = ref []

let enabled () = !enabled_flag

let subscribe_state f =
  state_subscribers := f :: !state_subscribers;
  f !enabled_flag

let set_state b =
  if !enabled_flag <> b then begin
    enabled_flag := b;
    List.iter (fun f -> f b) !state_subscribers
  end

let enable () = set_state true
let disable () = set_state false
let set_clock c = clock := c
let now () = !clock ()

(* Origin for span start offsets: trace exporters want begin timestamps
   relative to a session origin, not absolute wall time. Re-anchored on
   every [reset] so back-to-back runs start from zero. *)
let origin = ref (Unix.gettimeofday ())

(* ------------------------------------------------------------------ *)
(* Labels                                                              *)
(* ------------------------------------------------------------------ *)

(* Metric dimensions (router, policy, query kind, fault class, ...).
   A labeled metric is registered under its full name,
   [name{k="v",k2="v2"}] with keys sorted, so the unlabeled API is
   exactly the zero-label case and every existing consumer (snapshots,
   reports, the bench diff) sees labeled series as ordinary metrics
   with a richer name. *)
module Labels = struct
  type t = (string * string) list (* sorted by key *)

  let canon kvs = List.sort (fun (a, _) (b, _) -> String.compare a b) kvs

  let escape v =
    let buf = Buffer.create (String.length v) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | c -> Buffer.add_char buf c)
      v;
    Buffer.contents buf

  let encode = function
    | [] -> ""
    | kvs ->
        "{"
        ^ String.concat ","
            (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape v)) kvs)
        ^ "}"

  (* Canonicalize here too, so a name rebuilt from an unsorted label
     list still matches the registered series. *)
  let full_name name kvs = name ^ encode (canon kvs)
end

(* ------------------------------------------------------------------ *)
(* Counters                                                           *)
(* ------------------------------------------------------------------ *)

module Counter = struct
  type t = {
    name : string; (* full name, labels encoded *)
    base : string;
    labels : Labels.t;
    help : string;
    mutable value : int;
  }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 64

  let labeled ?(help = "") base kvs =
    let labels = Labels.canon kvs in
    let name = Labels.full_name base labels in
    locked (fun () ->
        match Hashtbl.find_opt registry name with
        | Some c -> c
        | None ->
            let c = { name; base; labels; help; value = 0 } in
            Hashtbl.add registry name c;
            c)

  let make ?help name = labeled ?help name []
  let incr ?(by = 1) c = if !enabled_flag then c.value <- c.value + by
  let value c = c.value
  let name c = c.name
  let base_name c = c.base
  let labels c = c.labels
  let find name = locked (fun () -> Hashtbl.find_opt registry name)

  let find_labeled base kvs =
    locked (fun () ->
        Hashtbl.find_opt registry (Labels.full_name base (Labels.canon kvs)))

  let all () =
    locked (fun () -> Hashtbl.fold (fun _ c acc -> c :: acc) registry [])
    |> List.sort (fun a b -> String.compare a.name b.name)

  (* Zero the statically declared (zero-label) series, whose handles
     live in module bodies across resets, and drop the dynamically
     created labeled series outright: their cardinality is data-driven
     (per router, per fault class), so keeping dead registrations would
     leak across runs. *)
  let reset () =
    locked (fun () ->
        Hashtbl.filter_map_inplace
          (fun _ c ->
            if c.labels = [] then begin
              c.value <- 0;
              Some c
            end
            else None)
          registry)
end

(* ------------------------------------------------------------------ *)
(* Histograms                                                         *)
(* ------------------------------------------------------------------ *)

module Histogram = struct
  (* Upper bounds in ns: 1us .. 10s, then +inf as the overflow bucket. *)
  let bounds =
    [| 1e3; 1e4; 1e5; 1e6; 1e7; 1e8; 1e9; 1e10; infinity |]

  type t = {
    name : string; (* full name, labels encoded *)
    base : string;
    labels : Labels.t;
    help : string;
    counts : int array; (* one slot per bound *)
    mutable count : int;
    mutable sum_ns : float;
    mutable max_ns : float;
  }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 64

  let labeled ?(help = "") base kvs =
    let labels = Labels.canon kvs in
    let name = Labels.full_name base labels in
    locked (fun () ->
        match Hashtbl.find_opt registry name with
        | Some h -> h
        | None ->
            let h =
              {
                name;
                base;
                labels;
                help;
                counts = Array.make (Array.length bounds) 0;
                count = 0;
                sum_ns = 0.;
                max_ns = 0.;
              }
            in
            Hashtbl.add registry name h;
            h)

  let make ?help name = labeled ?help name []

  let slot ns =
    let rec go i = if ns <= bounds.(i) then i else go (i + 1) in
    go 0

  let observe_ns h ns =
    if !enabled_flag then begin
      let ns = if ns < 0. then 0. else ns in
      h.counts.(slot ns) <- h.counts.(slot ns) + 1;
      h.count <- h.count + 1;
      h.sum_ns <- h.sum_ns +. ns;
      if ns > h.max_ns then h.max_ns <- ns
    end

  let count h = h.count
  let sum_ns h = h.sum_ns
  let max_ns h = h.max_ns

  let buckets h =
    let cum = ref 0 in
    Array.to_list
      (Array.mapi
         (fun i b ->
           cum := !cum + h.counts.(i);
           (b, !cum))
         bounds)

  let name h = h.name
  let base_name h = h.base
  let labels h = h.labels
  let find name = locked (fun () -> Hashtbl.find_opt registry name)

  let find_labeled base kvs =
    locked (fun () ->
        Hashtbl.find_opt registry (Labels.full_name base (Labels.canon kvs)))

  let all () =
    locked (fun () -> Hashtbl.fold (fun _ h acc -> h :: acc) registry [])
    |> List.sort (fun a b -> String.compare a.name b.name)

  (* Same policy as {!Counter.reset}: zero the zero-label series, drop
     the data-driven labeled ones. *)
  let reset () =
    locked (fun () ->
        Hashtbl.filter_map_inplace
          (fun _ h ->
            if h.labels = [] then begin
              Array.fill h.counts 0 (Array.length h.counts) 0;
              h.count <- 0;
              h.sum_ns <- 0.;
              h.max_ns <- 0.;
              Some h
            end
            else None)
          registry)
end

(* ------------------------------------------------------------------ *)
(* Spans                                                              *)
(* ------------------------------------------------------------------ *)

module Span = struct
  type t = {
    path : string;
    depth : int;
    start_ns : float; (* offset from the origin of the current reset *)
    duration_ns : float;
    seq : int;
  }
end

type sink = { on_span : Span.t -> unit }

let silent = { on_span = (fun _ -> ()) }

let tee a b =
  {
    on_span =
      (fun s ->
        a.on_span s;
        b.on_span s);
  }

let pp_duration fmt ns =
  if ns >= 1e9 then Format.fprintf fmt "%.2f s" (ns /. 1e9)
  else if ns >= 1e6 then Format.fprintf fmt "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Format.fprintf fmt "%.2f us" (ns /. 1e3)
  else Format.fprintf fmt "%.0f ns" ns

let text_sink fmt =
  {
    on_span =
      (fun (s : Span.t) ->
        Format.fprintf fmt "[trace] %*s%s %a@." (2 * s.depth) "" s.path
          pp_duration s.duration_ns);
  }

let span_to_json (s : Span.t) =
  Json.Obj
    [
      ("path", Json.String s.path);
      ("depth", Json.Int s.depth);
      ("start_ns", Json.Float s.start_ns);
      ("duration_ns", Json.Float s.duration_ns);
      ("seq", Json.Int s.seq);
    ]

let json_sink buf =
  {
    on_span =
      (fun (s : Span.t) ->
        Buffer.add_string buf (Json.to_string ~indent:0 (span_to_json s));
        Buffer.add_char buf '\n');
  }

let jsonl_sink oc =
  {
    on_span =
      (fun (s : Span.t) ->
        output_string oc (Json.to_string ~indent:0 (span_to_json s));
        output_char oc '\n';
        flush oc);
  }

let current_sink = ref silent
let set_sink s = current_sink := s
let add_sink s = current_sink := tee !current_sink s

let max_recorded_spans = 16_384
let recorded : Span.t list ref = ref [] (* newest first *)
let recorded_len = ref 0
let dropped = ref 0
let next_seq = ref 0

(* Stack of open spans: (path, start seconds). Domain-local, so each
   worker domain nests its own spans without seeing (or corrupting)
   another domain's open stack; worker roots become separate thread
   lanes in the Chrome-trace export. *)
let stack_key : (string * float) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let stack () = Domain.DLS.get stack_key

let current_path () = match !(stack ()) with [] -> "" | (p, _) :: _ -> p

(* The buffer, the sequence counter and the sink are shared across
   domains; serialize completions so concurrent workers never corrupt
   them. Completion (seq) order between domains is scheduling-
   dependent; within one domain it stays close order. *)
let record (s : Span.t) =
  locked (fun () ->
      let s =
        if !recorded_len < max_recorded_spans then begin
          let s = { s with Span.seq = !next_seq } in
          incr next_seq;
          recorded := s :: !recorded;
          incr recorded_len;
          s
        end
        else begin
          let s = { s with Span.seq = !next_seq } in
          incr next_seq;
          incr dropped;
          s
        end
      in
      !current_sink.on_span s)

let with_span name f =
  if not !enabled_flag then f ()
  else begin
    let stack = stack () in
    let path =
      match !stack with [] -> name | (parent, _) :: _ -> parent ^ "." ^ name
    in
    let depth = List.length !stack in
    stack := (path, !clock ()) :: !stack;
    let finish () =
      match !stack with
      | (p, t0) :: rest when p == path ->
          stack := rest;
          let duration_ns = (!clock () -. t0) *. 1e9 in
          let duration_ns = if duration_ns < 0. then 0. else duration_ns in
          let start_ns = (t0 -. !origin) *. 1e9 in
          let start_ns = if start_ns < 0. then 0. else start_ns in
          Histogram.observe_ns (Histogram.make path) duration_ns;
          record { Span.path; depth; start_ns; duration_ns; seq = 0 }
      | _ -> () (* disabled or reset mid-span: drop silently *)
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

let spans () = locked (fun () -> List.rev !recorded)
let dropped_spans () = locked (fun () -> !dropped)

(* Clears *every* piece of mutable state this module accumulates —
   counters and histograms (labeled series dropped entirely), the span
   buffer and its overflow count, the span sequence counter, the
   open-span stack, and the start-offset origin — so two back-to-back
   identical runs produce identical snapshots (under a deterministic
   clock). Sinks, subscribers and the enabled state are configuration,
   not run state, and are kept. *)
let reset () =
  Counter.reset ();
  Histogram.reset ();
  locked (fun () ->
      recorded := [];
      recorded_len := 0;
      dropped := 0;
      next_seq := 0);
  stack () := [];
  origin := !clock ()

(* ------------------------------------------------------------------ *)
(* Reporting                                                          *)
(* ------------------------------------------------------------------ *)

let pp_report fmt () =
  let counters = List.filter (fun c -> Counter.value c > 0) (Counter.all ()) in
  let hists = List.filter (fun h -> Histogram.count h > 0) (Histogram.all ()) in
  Format.fprintf fmt "@[<v>=== Observability snapshot ===@,";
  if counters = [] && hists = [] then
    Format.fprintf fmt "(no events recorded; is the layer enabled?)@,"
  else begin
    if counters <> [] then begin
      Format.fprintf fmt "counters:@,";
      List.iter
        (fun c ->
          Format.fprintf fmt "  %-48s %10d@," (Counter.name c)
            (Counter.value c))
        counters
    end;
    if hists <> [] then begin
      Format.fprintf fmt "latencies (per span path):@,";
      List.iter
        (fun h ->
          let n = Histogram.count h in
          let mean = Histogram.sum_ns h /. float_of_int n in
          Format.fprintf fmt "  %-48s n=%-6d total=%a mean=%a max=%a@,"
            (Histogram.name h) n pp_duration (Histogram.sum_ns h) pp_duration
            mean pp_duration (Histogram.max_ns h))
        hists
    end;
    if !dropped > 0 then
      Format.fprintf fmt "(%d spans dropped beyond the %d-span buffer)@,"
        !dropped max_recorded_spans
  end;
  Format.fprintf fmt "@]"

(* ------------------------------------------------------------------ *)
(* Snapshots                                                          *)
(* ------------------------------------------------------------------ *)

module Snapshot = struct
  type hist = {
    count : int;
    sum_ns : float;
    max_ns : float;
    buckets : (float * int) list; (* (upper_bound_ns, cumulative) *)
  }

  type t = {
    counters : (string * int) list; (* sorted by name, non-zero only *)
    histograms : (string * hist) list;
  }

  let take () =
    let counters =
      List.filter_map
        (fun c ->
          if Counter.value c = 0 then None
          else Some (Counter.name c, Counter.value c))
        (Counter.all ())
    in
    let histograms =
      List.filter_map
        (fun h ->
          if Histogram.count h = 0 then None
          else
            Some
              ( Histogram.name h,
                {
                  count = Histogram.count h;
                  sum_ns = Histogram.sum_ns h;
                  max_ns = Histogram.max_ns h;
                  buckets = Histogram.buckets h;
                } ))
        (Histogram.all ())
    in
    { counters; histograms }

  let mean_ns (h : hist) =
    if h.count = 0 then 0. else h.sum_ns /. float_of_int h.count

  let equal a b =
    a.counters = b.counters
    && List.length a.histograms = List.length b.histograms
    && List.for_all2
         (fun (na, ha) (nb, hb) ->
           na = nb && ha.count = hb.count && ha.sum_ns = hb.sum_ns
           && ha.max_ns = hb.max_ns && ha.buckets = hb.buckets)
         a.histograms b.histograms

  (* Bucket bounds: infinity is not valid JSON, so the overflow bound is
     encoded as the string "inf". *)
  let bound_to_json b =
    if b = infinity then Json.String "inf" else Json.Float b

  let bound_of_json = function
    | Json.String "inf" -> Some infinity
    | Json.Float f -> Some f
    | Json.Int i -> Some (float_of_int i)
    | _ -> None

  let to_json t =
    Json.Obj
      [
        ( "counters",
          Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) t.counters) );
        ( "histograms",
          Json.Obj
            (List.map
               (fun (n, h) ->
                 ( n,
                   Json.Obj
                     [
                       ("count", Json.Int h.count);
                       ("sum_ns", Json.Float h.sum_ns);
                       ("max_ns", Json.Float h.max_ns);
                       ( "buckets",
                         Json.List
                           (List.map
                              (fun (b, c) ->
                                Json.List [ bound_to_json b; Json.Int c ])
                              h.buckets) );
                     ] ))
               t.histograms) );
      ]

  let of_json j =
    let ( let* ) r f = Result.bind r f in
    let obj_fields name =
      match Json.member name j with
      | Some (Json.Obj fields) -> Ok fields
      | Some _ -> Error (Printf.sprintf "snapshot: %S is not an object" name)
      | None -> Error (Printf.sprintf "snapshot: missing %S" name)
    in
    let num = function
      | Json.Float f -> Some f
      | Json.Int i -> Some (float_of_int i)
      | _ -> None
    in
    let* counter_fields = obj_fields "counters" in
    let* counters =
      List.fold_left
        (fun acc (n, v) ->
          let* acc = acc in
          match Json.to_int v with
          | Some i -> Ok ((n, i) :: acc)
          | None -> Error (Printf.sprintf "snapshot: counter %S not an int" n))
        (Ok []) counter_fields
    in
    let* hist_fields = obj_fields "histograms" in
    let hist_of_json n hj =
      let get name = Json.member name hj in
      let* count =
        match Option.bind (get "count") Json.to_int with
        | Some c -> Ok c
        | None -> Error (Printf.sprintf "snapshot: histogram %S: bad count" n)
      in
      let fnum name =
        match Option.bind (get name) num with
        | Some f -> Ok f
        | None ->
            Error (Printf.sprintf "snapshot: histogram %S: bad %s" n name)
      in
      let* sum_ns = fnum "sum_ns" in
      let* max_ns = fnum "max_ns" in
      let* buckets =
        match Option.bind (get "buckets") Json.to_list with
        | None -> Error (Printf.sprintf "snapshot: histogram %S: no buckets" n)
        | Some items ->
            List.fold_left
              (fun acc item ->
                let* acc = acc in
                match item with
                | Json.List [ b; c ] -> (
                    match (bound_of_json b, Json.to_int c) with
                    | Some b, Some c -> Ok ((b, c) :: acc)
                    | _ ->
                        Error
                          (Printf.sprintf "snapshot: histogram %S: bad bucket"
                             n))
                | _ ->
                    Error
                      (Printf.sprintf "snapshot: histogram %S: bad bucket" n))
              (Ok []) items
            |> Result.map List.rev
      in
      Ok { count; sum_ns; max_ns; buckets }
    in
    let* histograms =
      List.fold_left
        (fun acc (n, hj) ->
          let* acc = acc in
          let* h = hist_of_json n hj in
          Ok ((n, h) :: acc))
        (Ok []) hist_fields
    in
    Ok { counters = List.rev counters; histograms = List.rev histograms }
end

let to_json () =
  let counters =
    List.filter_map
      (fun c ->
        if Counter.value c = 0 then None
        else Some (Counter.name c, Json.Int (Counter.value c)))
      (Counter.all ())
  in
  let histograms =
    List.filter_map
      (fun h ->
        if Histogram.count h = 0 then None
        else
          Some
            ( Histogram.name h,
              Json.Obj
                [
                  ("count", Json.Int (Histogram.count h));
                  ("sum_ns", Json.Float (Histogram.sum_ns h));
                  ("max_ns", Json.Float (Histogram.max_ns h));
                  ( "buckets",
                    Json.List
                      (List.filter_map
                         (fun (b, c) ->
                           if b = infinity then
                             Some (Json.List [ Json.String "inf"; Json.Int c ])
                           else Some (Json.List [ Json.Float b; Json.Int c ]))
                         (Histogram.buckets h)) );
                ] ))
      (Histogram.all ())
  in
  let spans = List.map span_to_json (spans ()) in
  Json.Obj
    [
      ("counters", Json.Obj counters);
      ("histograms", Json.Obj histograms);
      ("spans", Json.List spans);
    ]
