(* Deterministic token and cost accounting for the simulated LLM.

   The estimator is the standard chars/4 heuristic: real tokenizers
   average ~4 characters per token on English-plus-config text, and a
   deterministic estimate is what matters here — the same prompt must
   cost the same tokens on every run so recorded sessions, replays and
   goldens agree. *)

let estimate s = if s = "" then 0 else (String.length s + 3) / 4

let estimate_request ~system ~few_shot ~user =
  estimate system
  + List.fold_left
      (fun acc (q, a) -> acc + estimate q + estimate a)
      0 few_shot
  + estimate user

(* Flat per-token prices in USD, in the range of 2024-era frontier
   API pricing ($3 / $15 per million prompt / completion tokens). The
   absolute numbers are a modeling choice; only their ratio and
   stability matter for comparing experiments. *)
let prompt_token_cost = 3e-6
let completion_token_cost = 15e-6

let cost ~prompt_tokens ~completion_tokens =
  (float_of_int prompt_tokens *. prompt_token_cost)
  +. (float_of_int completion_tokens *. completion_token_cost)

(* Labeled counters, one series per call site so `clarify report` can
   break cost down by endpoint. *)
let prompt_counter endpoint =
  Obs.Counter.labeled "llm.tokens.prompt"
    [ ("endpoint", endpoint) ]
    ~help:"estimated prompt tokens"

let completion_counter endpoint =
  Obs.Counter.labeled "llm.tokens.completion"
    [ ("endpoint", endpoint) ]
    ~help:"estimated completion tokens"

let account ~endpoint ~prompt_tokens ~completion_tokens =
  Obs.Counter.incr (prompt_counter endpoint) ~by:prompt_tokens;
  Obs.Counter.incr (completion_counter endpoint) ~by:completion_tokens
