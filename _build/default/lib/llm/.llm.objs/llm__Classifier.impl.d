lib/llm/classifier.ml: List Nl_parser
