(* Bounded Chase–Lev deque over non-negative ints.

   The classic dynamic-circular-array algorithm (Chase & Lev, SPAA'05)
   minus the growth path: the scheduler seeds every task id while the
   deque is quiescent, so capacity is fixed for the lifetime of a batch
   and [push] never races a concurrent resize. All cross-domain
   ordering goes through the [top]/[bottom] Atomics; the int array
   itself is plain because a slot is written only while it is not
   reachable by any thief (quiescent seeding). *)

type t = {
  mutable tasks : int array;
  mutable mask : int; (* Array.length tasks - 1, capacity is a power of two *)
  top : int Atomic.t; (* next slot thieves claim *)
  bottom : int Atomic.t; (* next slot the owner writes *)
}

let empty = -1
let abort = -2

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 8

let create ?(capacity = 64) () =
  let cap = next_pow2 capacity in
  {
    tasks = Array.make cap empty;
    mask = cap - 1;
    top = Atomic.make 0;
    bottom = Atomic.make 0;
  }

let capacity t = t.mask + 1
let size t = max 0 (Atomic.get t.bottom - Atomic.get t.top)

let reset t ~ensure =
  if ensure > t.mask + 1 then begin
    let cap = next_pow2 ensure in
    t.tasks <- Array.make cap empty;
    t.mask <- cap - 1
  end;
  Atomic.set t.top 0;
  Atomic.set t.bottom 0

let push t x =
  if x < 0 then invalid_arg "Deque.push: negative task id";
  let b = Atomic.get t.bottom in
  if b - Atomic.get t.top > t.mask then invalid_arg "Deque.push: full";
  t.tasks.(b land t.mask) <- x;
  Atomic.set t.bottom (b + 1)

let pop t =
  let b = Atomic.get t.bottom - 1 in
  Atomic.set t.bottom b;
  let tp = Atomic.get t.top in
  if b < tp then begin
    (* already empty: undo the reservation *)
    Atomic.set t.bottom tp;
    empty
  end
  else
    let x = t.tasks.(b land t.mask) in
    if b > tp then x
    else begin
      (* last element: race thieves for it via the CAS on top *)
      let won = Atomic.compare_and_set t.top tp (tp + 1) in
      Atomic.set t.bottom (tp + 1);
      if won then x else empty
    end

let steal t =
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if tp >= b then empty
  else
    let x = t.tasks.(tp land t.mask) in
    if Atomic.compare_and_set t.top tp (tp + 1) then x else abort
