(** Query-type classification — the paper's first, intermediate LLM call
    that selects the synthesis pipeline. Implemented as keyword scoring,
    which is what a temperature-0 two-class classification call amounts
    to. Ties favour route-maps. *)

type query_type = [ `Acl | `Route_map ]

val classify : string -> query_type
val to_string : query_type -> string
