(** Hash-consed reduced ordered binary decision diagrams.

    Variables are non-negative integers ordered by their index: smaller
    indices appear closer to the root. All BDDs built through this
    module are maximally shared, so structural equality coincides with
    physical equality and is O(1) via {!equal}. *)

type t

val zero : t
(** The constant false. *)

val one : t
(** The constant true. *)

val var : int -> t
(** [var i] is the BDD of the propositional variable [i].
    @raise Invalid_argument if [i < 0]. *)

val nvar : int -> t
(** [nvar i] is the negation of variable [i]. *)

val neg : t -> t
val conj : t -> t -> t
val disj : t -> t -> t
val xor : t -> t -> t
val imp : t -> t -> t
val iff : t -> t -> t
val ite : t -> t -> t -> t

val conj_list : t list -> t
val disj_list : t list -> t

val exists : int list -> t -> t
(** Existentially quantify the given variables. *)

val restrict : int -> bool -> t -> t
(** [restrict i v t] fixes variable [i] to [v]. *)

val is_zero : t -> bool
val is_one : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val is_sat : t -> bool
val implies : t -> t -> bool
(** [implies a b] iff [a] entails [b]. *)

val any_sat : t -> (int * bool) list
(** A partial assignment (variable, value) making the BDD true; variables
    absent from the list are don't-cares. @raise Not_found on [zero]. *)

val all_sat : t -> (int * bool) list Seq.t
(** Lazy sequence of all satisfying partial assignments (BDD paths). *)

val sat_count : nvars:int -> t -> float
(** Number of satisfying total assignments over a universe of [nvars]
    variables (as float: counts can exceed 2{^62}). *)

val size : t -> int
(** Number of distinct internal nodes. *)

val support : t -> int list
(** Variables the function actually depends on, ascending. *)

val eval : (int -> bool) -> t -> bool
(** Evaluate under a total assignment. *)

val node_count : unit -> int
(** Number of live nodes in the global unique table (diagnostic). *)

val set_alloc_hook : (unit -> unit) option -> unit
(** Install (or clear) a callback fired once per fresh node allocation.
    Used by the observability layer to count BDD allocations; [None]
    keeps the allocation path hook-free apart from one match. *)

val clear_caches : unit -> unit
(** Drop operation memo tables (unique table is kept). Useful between
    large independent analyses to bound memory. *)

val pp : Format.formatter -> t -> unit
(** Debug rendering as nested if-then-else. *)
