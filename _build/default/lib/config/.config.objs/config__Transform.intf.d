lib/config/transform.mli: Bgp Database Format Netaddr Route_map
