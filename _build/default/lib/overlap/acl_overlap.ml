(** Rule-overlap analysis for ACLs (the paper's Section 3 Batfish
    extension).

    Two rules have an {e overlap} when some packet matches both; the
    overlap is {e conflicting} when their actions differ, and {e
    trivial} when one rule's match set is a subset of the other's (e.g.
    [permit tcp host 1.1.1.1 host 2.2.2.2] against [deny ip any any]). *)

open Symbdd

type pair = {
  rule_a : Config.Acl.rule;
  rule_b : Config.Acl.rule;
  conflicting : bool;
  subset : bool; (* one match set contained in the other *)
}

type stats = {
  name : string;
  rules : int;
  overlap_pairs : int;
  conflict_pairs : int;
  nontrivial_conflicts : int; (* conflicting and not subset *)
}

let pairs (acl : Config.Acl.t) =
  let rules =
    List.map (fun r -> (r, Symbolic.Packet_space.of_rule r)) acl.Config.Acl.rules
  in
  let rec go acc = function
    | [] -> List.rev acc
    | (r1, b1) :: rest ->
        let acc =
          List.fold_left
            (fun acc (r2, b2) ->
              let inter = Bdd.conj b1 b2 in
              if Bdd.is_sat inter then
                {
                  rule_a = r1;
                  rule_b = r2;
                  conflicting = not (Config.Action.equal r1.action r2.action);
                  subset = Bdd.implies b1 b2 || Bdd.implies b2 b1;
                }
                :: acc
              else acc)
            acc rest
        in
        go acc rest
  in
  go [] rules

let analyze (acl : Config.Acl.t) =
  let ps = pairs acl in
  {
    name = acl.Config.Acl.name;
    rules = List.length acl.Config.Acl.rules;
    overlap_pairs = List.length ps;
    conflict_pairs = List.length (List.filter (fun p -> p.conflicting) ps);
    nontrivial_conflicts =
      List.length (List.filter (fun p -> p.conflicting && not p.subset) ps);
  }

(** A packet witnessing an overlapping pair. *)
let witness p = Symbolic.Packet_space.overlap_witness p.rule_a p.rule_b
