(** Behavioural specifications for a single route-map stanza or ACL
    rule, in the paper's JSON format:

    {v
    { "permit": true,
      "prefix": ["100.0.0.0/16:16-23"],
      "community": "/_300:3_/",
      "set": { "metric": 55 } }
    v}

    A spec pairs a match condition (conjunction of the given fields)
    with an expected action and expected set clauses. *)

type t = {
  action : Config.Action.t;
  prefixes : Netaddr.Prefix_range.t list; (* OR; empty = unconstrained *)
  community : Sre.Community_regex.t option;
  communities_all : Bgp.Community.t list; (* carries all of these *)
  as_path : Sre.As_path_regex.t option;
  local_pref : int option;
  metric : int option;
  tag : int option;
  sets : Config.Route_map.set_clause list;
}

let make ?(prefixes = []) ?community ?(communities_all = []) ?as_path
    ?local_pref ?metric ?tag ?(sets = []) action =
  {
    action;
    prefixes;
    community;
    communities_all;
    as_path;
    local_pref;
    metric;
    tag;
    sets;
  }

exception Spec_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Spec_error s)) fmt

(* "100.0.0.0/16:16-23" — base prefix and length window. *)
let parse_prefix_entry s =
  let range_of prefix lo hi =
    try Netaddr.Prefix_range.make prefix ~ge:(Some lo) ~le:(Some hi)
    with Invalid_argument m -> fail "%s" m
  in
  match String.rindex_opt s ':' with
  | None -> (
      match Netaddr.Prefix.of_string s with
      | Some p -> Netaddr.Prefix_range.exact p
      | None -> fail "bad prefix %S" s)
  | Some i -> (
      let pfx = String.sub s 0 i in
      let window = String.sub s (i + 1) (String.length s - i - 1) in
      match
        ( Netaddr.Prefix.of_string pfx,
          String.split_on_char '-' window |> List.map int_of_string_opt )
      with
      | Some p, [ Some lo; Some hi ] -> range_of p lo hi
      | _ -> fail "bad prefix range %S" s)

let print_prefix_entry (r : Netaddr.Prefix_range.t) =
  Printf.sprintf "%s:%d-%d" (Netaddr.Prefix.to_string r.prefix) r.lo r.hi

(* Strip the /.../ decoration the paper uses around regexes. *)
let strip_slashes s =
  let n = String.length s in
  if n >= 2 && s.[0] = '/' && s.[n - 1] = '/' then String.sub s 1 (n - 2)
  else s

let sets_of_json j =
  match j with
  | Json.Obj fields ->
      List.map
        (fun (k, v) ->
          match (k, v) with
          | "metric", Json.Int n -> Config.Route_map.Set_metric n
          | "local-preference", Json.Int n -> Config.Route_map.Set_local_pref n
          | "localPreference", Json.Int n -> Config.Route_map.Set_local_pref n
          | "tag", Json.Int n -> Config.Route_map.Set_tag n
          | "weight", Json.Int n -> Config.Route_map.Set_weight n
          | "next-hop", Json.String s | "nextHop", Json.String s -> (
              match Netaddr.Ipv4.of_string s with
              | Some ip -> Config.Route_map.Set_next_hop ip
              | None -> fail "bad next-hop %S" s)
          | "community", Json.List cs ->
              let communities =
                List.map
                  (fun c ->
                    match c with
                    | Json.String s -> (
                        match Bgp.Community.of_string s with
                        | Some c -> c
                        | None -> fail "bad community %S" s)
                    | _ -> fail "bad community value")
                  cs
              in
              Config.Route_map.Set_community { communities; additive = false }
          | "communityAdditive", Json.List cs ->
              let communities =
                List.map
                  (fun c ->
                    match Json.to_str c with
                    | Some s -> (
                        match Bgp.Community.of_string s with
                        | Some c -> c
                        | None -> fail "bad community %S" s)
                    | None -> fail "bad community value")
                  cs
              in
              Config.Route_map.Set_community { communities; additive = true }
          | "prepend", Json.List asns ->
              Config.Route_map.Set_as_path_prepend
                (List.map
                   (fun a ->
                     match Json.to_int a with
                     | Some n -> n
                     | None -> fail "bad prepend asn")
                   asns)
          | "origin", Json.String s ->
              Config.Route_map.Set_origin
                (match s with
                | "igp" -> Bgp.Route.Igp
                | "egp" -> Bgp.Route.Egp
                | "incomplete" -> Bgp.Route.Incomplete
                | _ -> fail "bad origin %S" s)
          | k, _ -> fail "unknown set field %S" k)
        fields
  | _ -> fail "\"set\" must be an object"

let of_json j =
  let action =
    match Json.member "permit" j with
    | Some (Json.Bool true) -> Config.Action.Permit
    | Some (Json.Bool false) -> Config.Action.Deny
    | _ -> fail "spec needs a boolean \"permit\" field"
  in
  let prefixes =
    match Json.member "prefix" j with
    | None -> []
    | Some (Json.List entries) ->
        List.map
          (fun e ->
            match Json.to_str e with
            | Some s -> parse_prefix_entry s
            | None -> fail "prefix entries must be strings")
          entries
    | Some (Json.String s) -> [ parse_prefix_entry s ]
    | Some _ -> fail "\"prefix\" must be a list of strings"
  in
  let community =
    match Json.member "community" j with
    | None -> None
    | Some (Json.String s) ->
        Some (Sre.Community_regex.compile (strip_slashes s))
    | Some _ -> fail "\"community\" must be a regex string"
  in
  let communities_all =
    match Json.member "communitiesAll" j with
    | None -> []
    | Some (Json.List entries) ->
        List.map
          (fun e ->
            match Option.bind (Json.to_str e) Bgp.Community.of_string with
            | Some c -> c
            | None -> fail "bad community in communitiesAll")
          entries
    | Some _ -> fail "\"communitiesAll\" must be a list of strings"
  in
  let as_path =
    match Json.member "asPath" j with
    | None -> None
    | Some (Json.String s) -> Some (Sre.As_path_regex.compile (strip_slashes s))
    | Some _ -> fail "\"asPath\" must be a regex string"
  in
  let int_field name =
    match Json.member name j with
    | None -> None
    | Some (Json.Int n) -> Some n
    | Some _ -> fail "%S must be an integer" name
  in
  let sets =
    match Json.member "set" j with None -> [] | Some s -> sets_of_json s
  in
  {
    action;
    prefixes;
    community;
    communities_all;
    as_path;
    local_pref = int_field "localPreference";
    metric = int_field "metric";
    tag = int_field "tag";
    sets;
  }

let of_string s =
  match Json.parse s with
  | Error m -> Error m
  | Ok j -> ( try Ok (of_json j) with Spec_error m -> Error m)

let sets_to_json sets =
  Json.Obj
    (List.map
       (function
         | Config.Route_map.Set_metric n -> ("metric", Json.Int n)
         | Config.Route_map.Set_local_pref n ->
             ("localPreference", Json.Int n)
         | Config.Route_map.Set_tag n -> ("tag", Json.Int n)
         | Config.Route_map.Set_weight n -> ("weight", Json.Int n)
         | Config.Route_map.Set_next_hop ip ->
             ("nextHop", Json.String (Netaddr.Ipv4.to_string ip))
         | Config.Route_map.Set_community { communities; additive } ->
             ( (if additive then "communityAdditive" else "community"),
               Json.List
                 (List.map
                    (fun c -> Json.String (Bgp.Community.to_string c))
                    communities) )
         | Config.Route_map.Set_comm_list_delete name ->
             ("commListDelete", Json.String name)
         | Config.Route_map.Set_as_path_prepend asns ->
             ("prepend", Json.List (List.map (fun a -> Json.Int a) asns))
         | Config.Route_map.Set_origin o ->
             ("origin", Json.String (Bgp.Route.origin_to_string o)))
       sets)

let to_json t =
  Json.Obj
    (List.concat
       [
         [ ("permit", Json.Bool (t.action = Config.Action.Permit)) ];
         (match t.prefixes with
         | [] -> []
         | ps ->
             [
               ( "prefix",
                 Json.List (List.map (fun p -> Json.String (print_prefix_entry p)) ps)
               );
             ]);
         (match t.community with
         | None -> []
         | Some r ->
             [
               ( "community",
                 Json.String ("/" ^ Sre.Community_regex.source r ^ "/") );
             ]);
         (match t.communities_all with
         | [] -> []
         | cs ->
             [
               ( "communitiesAll",
                 Json.List
                   (List.map
                      (fun c -> Json.String (Bgp.Community.to_string c))
                      cs) );
             ]);
         (match t.as_path with
         | None -> []
         | Some r ->
             [ ("asPath", Json.String ("/" ^ Sre.As_path_regex.source r ^ "/")) ]);
         (match t.local_pref with
         | None -> []
         | Some n -> [ ("localPreference", Json.Int n) ]);
         (match t.metric with None -> [] | Some n -> [ ("metric", Json.Int n) ]);
         (match t.tag with None -> [] | Some n -> [ ("tag", Json.Int n) ]);
         (match t.sets with [] -> [] | sets -> [ ("set", sets_to_json sets) ]);
       ])

let to_string t = Json.to_string (to_json t)

(** Does a concrete route satisfy the spec's match condition? *)
let matches t (r : Bgp.Route.t) =
  (t.prefixes = []
  || List.exists (fun p -> Netaddr.Prefix_range.matches p r.prefix) t.prefixes)
  && (match t.community with
     | None -> true
     | Some regex ->
         List.exists
           (fun c -> Sre.Community_regex.matches regex (Bgp.Community.to_pair c))
           r.communities)
  && List.for_all
       (fun c -> List.exists (Bgp.Community.equal c) r.communities)
       t.communities_all
  && (match t.as_path with
     | None -> true
     | Some regex -> Sre.As_path_regex.matches regex r.as_path)
  && (match t.local_pref with None -> true | Some n -> r.local_pref = n)
  && (match t.metric with None -> true | Some n -> r.metric = n)
  && match t.tag with None -> true | Some n -> r.tag = n

let pp fmt t = Format.pp_print_string fmt (to_string t)
