(** Deterministic fleet topology generator (see netgen.mli). *)

type profile = Fat_tree | Wan

let profile_to_string = function Fat_tree -> "fat-tree" | Wan -> "wan"

let profile_of_string = function
  | "fat-tree" | "fattree" | "ft" -> Ok Fat_tree
  | "wan" | "abilene" -> Ok Wan
  | s -> Error (Printf.sprintf "unknown profile %S (expected fat-tree|wan)" s)

type role = Core | Aggregation | Edge | Backbone | Site

let role_to_string = function
  | Core -> "core"
  | Aggregation -> "aggregation"
  | Edge -> "edge"
  | Backbone -> "backbone"
  | Site -> "site"

type node = { name : string; role : role; site : int }

type t = {
  profile : profile;
  routers : int;
  k : int;
  pods : int;
  nodes : node list;
  topology : Netsim.Topology.t;
  external_router : string;
}

exception Invalid_profile of string

let invalid fmt = Printf.ksprintf (fun m -> raise (Invalid_profile m)) fmt
let pfx = Netaddr.Prefix.of_string_exn

(* Shared prefixes. The service and edge prefixes live in public space
   so the bogon filter lets them through; the probe sits inside the
   192.168.0.0/16 bogon. *)
let service_prefix = pfx "60.10.0.0/16"
let bogon_probe = pfx "192.168.77.0/24"
let reserved_prefix = pfx "192.168.0.0/16"
let edge_prefix i = pfx (Printf.sprintf "20.%d.%d.0/24" (i / 256) (i mod 256))

let max_routers = 4096
let external_name = "ext0"
let external_asn = 64500

(* Internal router i: a private ASN and a CGNAT management address,
   both pure functions of the generation index. *)
let asn_of_index i = 64512 + i

let ip_of_index i =
  Netaddr.Ipv4.of_octets 100 (64 + (i / 254)) ((i mod 254) + 1) 0

let map_in name = name ^ "_IN"
let map_out name = name ^ "_OUT"

(* A generated router before numbering: neighbors by name only. *)
type proto = { p_name : string; p_role : role; p_site : int; p_peers : string list }

(* ------------------------------------------------------------------ *)
(* Fat-tree. Canonically arity k (even, 4..16) gives (k/2)^2 cores and
   k pods of k/2 aggregation + k/2 edge routers. For fleets beyond the
   k=16 budget (320 routers) we keep k=16 and append extra pods; each
   aggregation router j still uplinks to the same core group
   [j*(k/2) .. j*(k/2)+k/2-1], so every pod is wired identically. *)
(* ------------------------------------------------------------------ *)

let fat_tree_protos ~k ~pods =
  let half = k / 2 in
  let cores = half * half in
  let core_name i = Printf.sprintf "core%03d" i in
  let agg_name p j = Printf.sprintf "pod%03d_agg%d" p j in
  let edge_name p j = Printf.sprintf "pod%03d_edge%d" p j in
  let core_protos =
    List.init cores (fun i ->
        let peers =
          (* core i belongs to group i/half and serves agg #group in
             every pod. *)
          List.init pods (fun p -> agg_name p (i / half))
        in
        { p_name = core_name i; p_role = Core; p_site = -1; p_peers = peers })
  in
  let pod_protos =
    List.concat
      (List.init pods (fun p ->
           let aggs =
             List.init half (fun j ->
                 let ups = List.init half (fun c -> core_name ((j * half) + c)) in
                 let downs = List.init half (fun e -> edge_name p e) in
                 {
                   p_name = agg_name p j;
                   p_role = Aggregation;
                   p_site = p;
                   p_peers = ups @ downs;
                 })
           in
           let edges =
             List.init half (fun j ->
                 {
                   p_name = edge_name p j;
                   p_role = Edge;
                   p_site = p;
                   p_peers = List.init half (fun a -> agg_name p a);
                 })
           in
           aggs @ edges))
  in
  core_protos @ pod_protos

let fat_tree_dims ~routers =
  (* Smallest even k in 4..16 whose canonical budget covers the fleet;
     past k=16 the pod count grows instead. *)
  let rec pick k =
    if k >= 16 then 16
    else if 5 * k * k / 4 >= routers then k
    else pick (k + 2)
  in
  let k = pick 4 in
  let half = k / 2 in
  let cores = half * half in
  let pods =
    if 5 * k * k / 4 >= routers then k
    else ((routers - cores + k - 1) / k) + 1 (* one spare partial pod *)
  in
  (k, pods)

(* ------------------------------------------------------------------ *)
(* WAN: the classic 11-city Abilene backbone; site routers attach
   round-robin to backbone cities.                                     *)
(* ------------------------------------------------------------------ *)

let abilene_cities =
  [
    "seattle"; "sunnyvale"; "losangeles"; "denver"; "kansascity"; "houston";
    "indianapolis"; "chicago"; "atlanta"; "newyork"; "washington";
  ]

let abilene_links =
  [
    (0, 1); (0, 3); (1, 2); (1, 3); (2, 5); (3, 4); (4, 5); (4, 6); (5, 8);
    (6, 7); (6, 8); (7, 9); (8, 10); (9, 10);
  ]

let wan_protos ~sites =
  let bb = List.length abilene_cities in
  let bb_name i = Printf.sprintf "wan%02d_%s" i (List.nth abilene_cities i) in
  let site_name i = Printf.sprintf "site%03d" i in
  let bb_protos =
    List.mapi
      (fun i city ->
        let links =
          List.filter_map
            (fun (a, b) ->
              if a = i then Some (bb_name b)
              else if b = i then Some (bb_name a)
              else None)
            abilene_links
        in
        let attached =
          List.filter_map
            (fun s -> if s mod bb = i then Some (site_name s) else None)
            (List.init sites Fun.id)
        in
        ignore city;
        { p_name = bb_name i; p_role = Backbone; p_site = -1; p_peers = links @ attached })
      abilene_cities
  in
  let site_protos =
    List.init sites (fun s ->
        { p_name = site_name s; p_role = Site; p_site = s; p_peers = [ bb_name (s mod bb) ] })
  in
  bb_protos @ site_protos

(* ------------------------------------------------------------------ *)
(* Assembly: trim to the requested size, prune dangling sessions, and
   number the survivors.                                               *)
(* ------------------------------------------------------------------ *)

let generate ~profile ~routers =
  if routers < 1 then invalid "routers must be >= 1 (got %d)" routers;
  if routers > max_routers then
    invalid "routers must be <= %d (got %d)" max_routers routers;
  let k, pods, protos =
    match profile with
    | Fat_tree ->
        let k, pods = fat_tree_dims ~routers in
        (k, pods, fat_tree_protos ~k ~pods)
    | Wan ->
        let bb = List.length abilene_cities in
        let sites = max 0 (routers - bb) in
        (0, bb, wan_protos ~sites)
  in
  let kept =
    (* Generation order is cores/backbone first, then pods/sites, so a
       truncated fleet keeps its spine. *)
    List.filteri (fun i _ -> i < routers) protos
  in
  let alive = Hashtbl.create (List.length kept) in
  List.iter (fun p -> Hashtbl.replace alive p.p_name ()) kept;
  let edge_counter = ref 0 in
  let open Netsim.Topology in
  let internal =
    List.mapi
      (fun i p ->
        let peers = List.filter (Hashtbl.mem alive) p.p_peers in
        let peers =
          if i = 0 then peers @ [ external_name ] else peers
        in
        let originated =
          match p.p_role with
          | Edge | Site ->
              let e = !edge_counter in
              incr edge_counter;
              [ edge_prefix e ]
          | Core | Aggregation | Backbone -> []
        in
        let neighbors =
          List.map
            (fun peer ->
              neighbor peer ~import:[ map_in p.p_name ] ~export:[ map_out p.p_name ])
            peers
        in
        let config =
          Netsim.Figure3.placeholder_maps [ map_in p.p_name; map_out p.p_name ]
        in
        router p.p_name ~asn:(asn_of_index i) ~router_ip:(ip_of_index i)
          ~originated ~neighbors ~config)
      kept
  in
  let first = (List.hd kept).p_name in
  let ext =
    router external_name ~asn:external_asn
      ~router_ip:(Netaddr.Ipv4.of_octets 100 127 255 1)
      ~originated:[ service_prefix; bogon_probe ]
      ~neighbors:[ neighbor first ]
  in
  let topology = make (internal @ [ ext ]) in
  let nodes =
    List.map (fun p -> { name = p.p_name; role = p.p_role; site = p.p_site }) kept
  in
  { profile; routers; k; pods; nodes; topology; external_router = external_name }

let find_node t name = List.find_opt (fun n -> n.name = name) t.nodes

let install t configs =
  List.fold_left
    (fun topo (name, db) -> Netsim.Topology.with_config topo name db)
    t.topology configs

let site_community _t node =
  (* Cores and backbone routers share the spine tag; each pod/site gets
     its own. Pod counts are bounded by max_routers, so the value fits
     comfortably in 16 bits. *)
  if node.site < 0 then Bgp.Community.make 65000 99
  else Bgp.Community.make 65000 (100 + node.site)

(* ------------------------------------------------------------------ *)
(* Global-policy compiler.                                             *)
(* ------------------------------------------------------------------ *)

module Policy = struct
  let global_intents =
    [
      "drop bogon routes at every import";
      "tag every accepted route with its pod/site community";
      "prefer the shared service prefix (local-preference 200) on edge and \
       site routers";
      "never export the reserved 192.168.0.0/16 space";
      "export everything else";
    ]

  type step = { map : string; intent : Llm.Intent.t }

  type plan = {
    router : string;
    role : role;
    site : int;
    maps : string list;
    steps : step list;
    reference : Config.Database.t;
  }

  module I = Llm.Intent

  let bogon_ranges =
    List.map
      (fun p -> Netaddr.Prefix_range.make p ~ge:None ~le:(Some 32))
      Netsim.Figure3.bogons

  let reserved_range =
    Netaddr.Prefix_range.make reserved_prefix ~ge:None ~le:(Some 32)

  let service_range = Netaddr.Prefix_range.exact service_prefix

  (* Every plan's intents reference the same handful of prefix ranges;
     fleet runs prewarm their symbolic encodings into a shared frozen
     BDD base so per-router deltas never recompile them. *)
  let shared_ranges () = bogon_ranges @ [ reserved_range; service_range ]

  let deny_bogons = I.route_map_intent ~prefixes:bogon_ranges Config.Action.Deny

  let deny_reserved =
    I.route_map_intent ~prefixes:[ reserved_range ] Config.Action.Deny

  let permit_all = I.route_map_intent Config.Action.Permit

  let permit_all_tagging community =
    I.route_map_intent
      ~sets:
        [ Config.Route_map.Set_community { communities = [ community ]; additive = true } ]
      Config.Action.Permit

  let permit_service_lp200 =
    I.route_map_intent ~prefixes:[ service_range ]
      ~sets:[ Config.Route_map.Set_local_pref 200 ]
      Config.Action.Permit

  let wants_service role = match role with Edge | Site -> true | _ -> false

  (* The hand-written reference config the oracle answers from: what a
     network engineer would have produced for this router by hand. *)
  let reference_config ~name ~community ~service =
    let service_stanza =
      if service then
        Printf.sprintf
          "route-map %s permit 20\n\
          \ match ip address prefix-list SERVICE\n\
          \ set local-preference 200\n"
          (map_in name)
      else ""
    in
    let src =
      Printf.sprintf
        {|
ip prefix-list BOGONS seq 10 permit 0.0.0.0/8 le 32
ip prefix-list BOGONS seq 20 permit 10.0.0.0/8 le 32
ip prefix-list BOGONS seq 30 permit 127.0.0.0/8 le 32
ip prefix-list BOGONS seq 40 permit 169.254.0.0/16 le 32
ip prefix-list BOGONS seq 50 permit 172.16.0.0/12 le 32
ip prefix-list BOGONS seq 60 permit 192.168.0.0/16 le 32
ip prefix-list BOGONS seq 70 permit 224.0.0.0/4 le 32
ip prefix-list SERVICE seq 10 permit 60.10.0.0/16
ip prefix-list RESERVED seq 10 permit 192.168.0.0/16 le 32
route-map %s deny 10
 match ip address prefix-list BOGONS
%sroute-map %s permit 30
 set community %s additive
route-map %s deny 10
 match ip address prefix-list RESERVED
route-map %s permit 20
|}
        (map_in name) service_stanza (map_in name)
        (Bgp.Community.to_string community)
        (map_out name) (map_out name)
    in
    match Config.Parser.parse src with
    | Ok db -> db
    | Error m -> failwith ("Netgen.Policy.reference_config: " ^ m)

  let compile t =
    List.map
      (fun node ->
        let community = site_community t node in
        let service = wants_service node.role in
        let min_ = map_in node.name and mout = map_out node.name in
        let steps =
          [
            { map = min_; intent = deny_bogons };
            { map = min_; intent = permit_all_tagging community };
          ]
          @ (if service then
               (* Learned last, so it must be disambiguated above the
                  catch-all tag stanza. *)
               [ { map = min_; intent = permit_service_lp200 } ]
             else [])
          @ [
              { map = mout; intent = deny_reserved };
              { map = mout; intent = permit_all };
            ]
        in
        {
          router = node.name;
          role = node.role;
          site = node.site;
          maps = [ min_; mout ];
          steps;
          reference = reference_config ~name:node.name ~community ~service;
        })
      t.nodes

  (* A pathological fleet: the first [heavy] plans carry [factor]x the
     policy work — their step sequence is replayed [factor - 1] extra
     times under fresh map names (suffix __Sk), with the reference
     config extended to answer for the copies. Heavies are contiguous
     (compile order = generation order), modelling one pod of fat edge
     routers, which is exactly the shape that straggles a scheduler
     dealing contiguous chunks. *)
  let skew ~heavy ~factor plans =
    if factor <= 1 || heavy <= 0 then plans
    else
      List.mapi
        (fun idx (p : plan) ->
          if idx >= heavy then p
          else
            let copy_name m k = Printf.sprintf "%s__S%d" m k in
            let copies =
              List.concat_map
                (fun k ->
                  List.map
                    (fun s -> { s with map = copy_name s.map k })
                    p.steps)
                (List.init (factor - 1) (fun k -> k + 1))
            in
            let reference =
              List.fold_left
                (fun db k ->
                  List.fold_left
                    (fun db m ->
                      match Config.Database.route_map p.reference m with
                      | None -> db
                      | Some rm ->
                          Config.Database.add_route_map db
                            (Config.Route_map.make (copy_name m k)
                               rm.Config.Route_map.stanzas))
                    db p.maps)
                p.reference
                (List.init (factor - 1) (fun k -> k + 1))
            in
            let extra_maps =
              List.concat_map
                (fun k -> List.map (fun m -> copy_name m k) p.maps)
                (List.init (factor - 1) (fun k -> k + 1))
            in
            {
              p with
              maps = p.maps @ extra_maps;
              steps = p.steps @ copies;
              reference;
            })
        plans
end

(* ------------------------------------------------------------------ *)
(* Fleet-wide policy probes over a simulation.                         *)
(* ------------------------------------------------------------------ *)

type check = { name : string; ok : bool; detail : string }

let check t state =
  let leaves =
    List.filter (fun n -> Policy.wants_service n.role) t.nodes
  in
  let internal_names = List.map (fun (n : node) -> n.name) t.nodes in
  let converged =
    {
      name = "converged";
      ok = state.Netsim.Simulator.converged;
      detail = Printf.sprintf "%d rounds" state.Netsim.Simulator.rounds;
    }
  in
  let bogon_holders =
    List.filter
      (fun r -> Netsim.Simulator.reaches state ~router:r ~prefix:bogon_probe)
      internal_names
  in
  let bogons =
    {
      name = "bogons-filtered";
      ok = bogon_holders = [];
      detail =
        (match bogon_holders with
        | [] -> "probe absent from every internal RIB"
        | rs -> Printf.sprintf "probe visible on %d routers (%s...)"
                  (List.length rs) (List.hd rs));
    }
  in
  let service_misses =
    List.filter
      (fun (n : node) ->
        match
          Netsim.Simulator.lookup state ~router:n.name ~prefix:service_prefix
        with
        | Some e -> e.Netsim.Simulator.route.Bgp.Route.local_pref <> 200
        | None -> true)
      leaves
  in
  let service =
    {
      name = "service-lp200-at-leaves";
      ok = service_misses = [] && leaves <> [];
      detail =
        (if leaves = [] then "no edge/site routers in this fleet"
         else
           Printf.sprintf "%d/%d edge+site routers hold %s at LP 200"
             (List.length leaves - List.length service_misses)
             (List.length leaves)
             (Netaddr.Prefix.to_string service_prefix));
    }
  in
  let spread =
    (* Spot-check fleet-wide propagation: the first edge prefix must be
       visible from the last router and vice versa. *)
    match leaves with
    | [] -> { name = "edge-prefixes-propagate"; ok = true; detail = "skipped" }
    | (first : node) :: _ ->
        let last = List.nth leaves (List.length leaves - 1) in
        let p0 = edge_prefix 0 in
        let ok =
          Netsim.Simulator.reaches state ~router:last.name ~prefix:p0
          && Netsim.Simulator.reaches state ~router:first.name
               ~prefix:(edge_prefix (List.length leaves - 1))
        in
        {
          name = "edge-prefixes-propagate";
          ok;
          detail =
            Printf.sprintf "%s <-> %s" first.name last.name;
        }
  in
  [ converged; bogons; service; spread ]

let pp_check fmt c =
  Format.fprintf fmt "[%s] %-28s %s"
    (if c.ok then "PASS" else "FAIL")
    c.name c.detail
