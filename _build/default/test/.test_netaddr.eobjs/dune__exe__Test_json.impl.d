test/test_json.ml: Alcotest Hashtbl Json List QCheck QCheck_alcotest Result
