(* The paper's Section 5 evaluation end to end: incrementally synthesize
   the route-maps of the Figure 3 topology from natural-language
   intents, install them, simulate BGP, and check the five global
   policies. Prints the paper's Figure 4 table next to our measurements.

   Run with: dune exec examples/lightyear_topology.exe *)

let () =
  let result = Evaluation.E4_lightyear.run () in
  Evaluation.E4_lightyear.print Format.std_formatter result;
  if
    result.Evaluation.E4_lightyear.converged
    && Netsim.Policies.all_hold result.Evaluation.E4_lightyear.policies
  then print_endline "All five global policies hold."
  else begin
    print_endline "FAILURE: some policies do not hold.";
    exit 1
  end
