(** Corpus-level aggregation of overlap statistics, producing the
    quantities reported in the paper's Section 3. *)

type acl_summary = {
  total : int;
  with_overlaps : int; (* >= 1 overlapping pair *)
  heavy_overlaps : int; (* > threshold overlapping pairs *)
  with_conflicts : int;
  heavy_conflicts : int; (* of the conflicting ones, > threshold pairs *)
  with_nontrivial : int;
  heavy_nontrivial : int;
  max_overlaps : int; (* largest per-ACL overlap count *)
}

let default_threshold = 20
let reset_period = 512

(* Per-domain count of analyses since that domain's last manager reset.
   A [Manager.reset] every [reset_period] analyses bounds memory across
   very large corpora — the unique table itself is dropped, not just
   the operation memos, so node count cannot grow without bound. Safe
   because sweeps run under a scratch delta manager (below) and no BDD
   outlives a single [analyze] call; on a delta the reset rewinds to
   the base boundary, so the shared prewarmed compilation survives. *)
let analyzed_since_reset : int ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref 0)

let bounded analyze x =
  let n = Domain.DLS.get analyzed_since_reset in
  incr n;
  if !n mod reset_period = 0 then
    Symbdd.Bdd.Manager.reset (Symbdd.Bdd.manager ());
  analyze x

(* Run one corpus sweep, optionally across a pool. [prewarm] compiles
   whatever the sweep's analyses share (distinct ACL rules, prefix
   lists) into a fresh base manager, which is then frozen; the serial
   path and every pool worker run under private deltas layered on it,
   so the shared structure is compiled once per sweep instead of once
   per domain, and the caller's default manager is not bloated by
   sweep-sized unique tables. [progress] fires only on the serial
   path: parallel completion order is nondeterministic, and per-index
   callbacks from worker domains would race. *)
let sweep ?(pool = Parallel.Pool.serial) ?progress ?prewarm ~f items =
  let base = Symbdd.Bdd.Manager.create () in
  (match prewarm with
  | Some warm -> Symbdd.Bdd.with_manager base warm
  | None -> ());
  Symbdd.Bdd.Manager.freeze base;
  match progress with
  | Some p when Parallel.Pool.domains pool <= 1 ->
      Symbdd.Bdd.with_manager
        (Symbdd.Bdd.Manager.create_delta base)
        (fun () ->
          List.mapi
            (fun i x ->
              p i;
              bounded f x)
            items)
  | _ -> Parallel.Pool.map ~bdd_base:base pool ~f:(bounded f) items

let summarize_acls ?(threshold = default_threshold) ?pool ?progress
    (acls : Config.Acl.t list) =
  let prewarm () =
    List.iter
      (fun (acl : Config.Acl.t) ->
        List.iter
          (fun r -> ignore (Symbolic.Packet_space.of_rule r))
          acl.Config.Acl.rules)
      acls
  in
  let stats = sweep ?pool ?progress ~prewarm ~f:Acl_overlap.analyze acls in
  let count f = List.length (List.filter f stats) in
  {
    total = List.length stats;
    with_overlaps = count (fun (s : Acl_overlap.stats) -> s.overlap_pairs > 0);
    heavy_overlaps = count (fun s -> s.overlap_pairs > threshold);
    with_conflicts = count (fun s -> s.conflict_pairs > 0);
    heavy_conflicts = count (fun s -> s.conflict_pairs > threshold);
    with_nontrivial = count (fun s -> s.nontrivial_conflicts > 0);
    heavy_nontrivial = count (fun s -> s.nontrivial_conflicts > threshold);
    max_overlaps =
      List.fold_left (fun m (s : Acl_overlap.stats) -> max m s.overlap_pairs) 0 stats;
  }

type route_map_summary = {
  rm_total : int;
  rm_with_overlaps : int;
  rm_heavy_overlaps : int;
  rm_max_overlaps : int;
  rm_conflicting_pairs_total : int;
}

let summarize_route_maps ?(threshold = default_threshold) ?pool db
    (rms : Config.Route_map.t list) =
  let prewarm () =
    Config.Database.Smap.iter
      (fun _ pl -> ignore (Symbolic.Route_ctx.of_prefix_list pl))
      db.Config.Database.prefix_lists
  in
  let stats = sweep ?pool ~prewarm ~f:(Route_map_overlap.analyze db) rms in
  {
    rm_total = List.length stats;
    rm_with_overlaps =
      List.length
        (List.filter (fun (s : Route_map_overlap.stats) -> s.overlap_pairs > 0) stats);
    rm_heavy_overlaps =
      List.length (List.filter (fun s -> s.Route_map_overlap.overlap_pairs > threshold) stats);
    rm_max_overlaps =
      List.fold_left
        (fun m (s : Route_map_overlap.stats) -> max m s.overlap_pairs)
        0 stats;
    rm_conflicting_pairs_total =
      List.fold_left
        (fun acc (s : Route_map_overlap.stats) -> acc + s.conflict_pairs)
        0 stats;
  }

let pct part whole =
  if whole = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int whole

let pp_acl_summary fmt s =
  Format.fprintf fmt
    "@[<v>ACLs analyzed: %d@ with >=1 overlap: %d (%.1f%%)@ with >%d \
     overlaps: %d@ with conflicting overlaps: %d (%.1f%%)@ conflicting and \
     >%d: %d (%.1f%% of conflicting)@ with non-trivial conflicts: %d \
     (%.1f%%)@ non-trivial and >%d: %d (%.1f%% of non-trivial)@ max overlap \
     count: %d@]"
    s.total s.with_overlaps (pct s.with_overlaps s.total) default_threshold
    s.heavy_overlaps s.with_conflicts (pct s.with_conflicts s.total)
    default_threshold s.heavy_conflicts (pct s.heavy_conflicts s.with_conflicts)
    s.with_nontrivial (pct s.with_nontrivial s.total) default_threshold
    s.heavy_nontrivial (pct s.heavy_nontrivial s.with_nontrivial)
    s.max_overlaps

let pp_route_map_summary fmt s =
  Format.fprintf fmt
    "@[<v>route-maps analyzed: %d@ with overlaps: %d@ with >%d overlaps: %d@ \
     max overlap count: %d@ conflicting stanza pairs: %d@]"
    s.rm_total s.rm_with_overlaps default_threshold s.rm_heavy_overlaps
    s.rm_max_overlaps s.rm_conflicting_pairs_total
