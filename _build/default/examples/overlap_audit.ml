(* Overlap audit: the paper's Section 3 analysis applied to a single
   configuration — list every overlapping rule pair in an ACL, flag the
   conflicting and non-trivial ones, and show a witness packet for each.

   Run with:
     dune exec examples/overlap_audit.exe            # built-in demo config
     dune exec examples/overlap_audit.exe -- FILE    # audit a config file *)

let demo_config =
  {|ip access-list extended EDGE_IN
 permit tcp 10.0.0.0/9 20.0.0.0/8 eq 80
 deny tcp 10.0.0.0/8 20.0.0.0/9 eq 80
 permit udp any any eq 53
 permit tcp host 10.1.2.3 host 20.9.9.9
 deny ip any any
ip prefix-list CUST permit 100.0.0.0/16 le 24
ip prefix-list CUST_WIDE permit 100.0.0.0/16 le 20
route-map EDGE_OUT permit 10
 match ip address prefix-list CUST
route-map EDGE_OUT deny 20
 match ip address prefix-list CUST_WIDE
route-map EDGE_OUT permit 30|}

let () =
  let source =
    match Sys.argv with
    | [| _; file |] ->
        let ic = open_in file in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
    | _ -> demo_config
  in
  let db =
    match Config.Parser.parse source with
    | Ok db -> db
    | Error m ->
        prerr_endline ("parse error: " ^ m);
        exit 1
  in
  List.iter
    (fun (acl : Config.Acl.t) ->
      Format.printf "=== ACL %s ===@." acl.Config.Acl.name;
      let pairs = Overlap.Acl_overlap.pairs acl in
      if pairs = [] then Format.printf "no overlapping rules@."
      else
        List.iter
          (fun (p : Overlap.Acl_overlap.pair) ->
            Format.printf "rules %d and %d overlap%s%s@."
              p.rule_a.Config.Acl.seq p.rule_b.Config.Acl.seq
              (if p.conflicting then ", CONFLICTING" else "")
              (if p.subset then " (subset: trivial)" else "");
            match Overlap.Acl_overlap.witness p with
            | Some packet ->
                Format.printf "  e.g. %a@." Config.Packet.pp packet
            | None -> ())
          pairs;
      let s = Overlap.Acl_overlap.analyze acl in
      Format.printf
        "summary: %d overlaps, %d conflicts, %d non-trivial conflicts@.@."
        s.Overlap.Acl_overlap.overlap_pairs s.Overlap.Acl_overlap.conflict_pairs
        s.Overlap.Acl_overlap.nontrivial_conflicts)
    (Config.Database.acls db);
  List.iter
    (fun (rm : Config.Route_map.t) ->
      Format.printf "=== route-map %s ===@." rm.Config.Route_map.name;
      let pairs = Overlap.Route_map_overlap.pairs db rm in
      if pairs = [] then Format.printf "no overlapping stanzas@.@."
      else begin
        List.iter
          (fun (p : Overlap.Route_map_overlap.pair) ->
            Format.printf "stanzas %d and %d overlap%s@."
              p.stanza_a.Config.Route_map.seq p.stanza_b.Config.Route_map.seq
              (if p.conflicting then ", CONFLICTING" else "");
            match
              Overlap.Route_map_overlap.witness db rm p.stanza_a p.stanza_b
            with
            | Some route ->
                Format.printf "  e.g. route for %a@." Netaddr.Prefix.pp
                  route.Bgp.Route.prefix
            | None -> ())
          pairs;
        Format.printf "@."
      end)
    (Config.Database.route_maps db)
