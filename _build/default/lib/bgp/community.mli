(** BGP standard communities, written ["asn:value"] with two 16-bit
    halves. *)

type t = private { asn : int; value : int }

val make : int -> int -> t
(** @raise Invalid_argument unless both halves are in [0, 65535]. *)

val of_string : string -> t option
val of_string_exn : string -> t
val to_string : t -> string
val to_pair : t -> int * int

(* Well-known communities. *)
val no_export : t
val no_advertise : t

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
