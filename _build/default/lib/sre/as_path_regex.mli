(** Cisco-style AS-path regular expressions, interpreted at the level of
    AS-number tokens.

    A BGP AS path is a sequence of AS numbers. Cisco matches its regex
    against the textual rendering of the path; we instead interpret the
    common surface syntax directly over ASN tokens, which avoids the
    substring pitfalls of character-level matching (e.g. [32] matching
    inside [132]) while agreeing with idiomatic use:

    - [^] / [$] anchor the start / end; an unanchored pattern is padded
      with [.*] on the corresponding side;
    - [_] is a token boundary contributing no token of its own;
    - a decimal literal matches exactly that ASN as a whole token;
    - [.] matches any single ASN; [[n-m]] an ASN range (multi-digit
      bounds allowed); the idiom [[0-9]+] means "any single ASN";
    - [( )], [|], [*], [+], [?] have their usual meanings over tokens.

    Examples: [_32$] — paths originated by AS 32; [^32_] — first hop
    32; [^$] — the empty path; [_32_] — paths containing 32. *)

module R : module type of Regex.Make (Alphabet.Asn)

exception Parse_error of string

type t

val compile : string -> t
(** @raise Parse_error on malformed input. *)

val source : t -> string
val regex : t -> R.re
val matches : t -> int list -> bool
val pp : Format.formatter -> t -> unit

val sat_witness : pos:t list -> neg:t list -> int list option
(** A concrete AS path in every [pos] language and no [neg] language,
    if one exists (decided exactly with the symbolic regex engine). *)

val intersects : t -> t -> bool
