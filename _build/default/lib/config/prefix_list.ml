(** Cisco [ip prefix-list] definitions. *)

type entry = { seq : int; action : Action.t; range : Netaddr.Prefix_range.t }
type t = { name : string; entries : entry list (* ascending seq *) }

let make name entries =
  let sorted = List.sort (fun a b -> Int.compare a.seq b.seq) entries in
  let rec check = function
    | a :: (b :: _ as rest) ->
        if a.seq = b.seq then
          invalid_arg
            (Printf.sprintf "Prefix_list.make: duplicate seq %d in %s" a.seq
               name)
        else check rest
    | _ -> ()
  in
  check sorted;
  { name; entries = sorted }

let entry ?seq ~action range =
  { seq = Option.value seq ~default:0; action; range }

(** First matching entry's action; [None] when nothing matches (the
    caller applies Cisco's implicit deny). *)
let eval t prefix =
  List.find_map
    (fun e ->
      if Netaddr.Prefix_range.matches e.range prefix then Some e.action
      else None)
    t.entries

let permits t prefix = eval t prefix = Some Action.Permit

let next_seq t =
  match List.rev t.entries with [] -> 10 | last :: _ -> last.seq + 10

(** Append an entry, auto-assigning the next sequence number when the
    given one is 0. *)
let append t e =
  let e = if e.seq = 0 then { e with seq = next_seq t } else e in
  make t.name (e :: t.entries)

(** Entry pairs whose ranges share at least one matched prefix.
    Conflicting pairs additionally disagree on the action. *)
let overlapping_pairs t =
  let rec go = function
    | [] -> []
    | e :: rest ->
        List.filter_map
          (fun e' ->
            if Netaddr.Prefix_range.overlap e.range e'.range then
              Some (e, e')
            else None)
          rest
        @ go rest
  in
  go t.entries

let conflicting_pairs t =
  List.filter
    (fun (a, b) -> not (Action.equal a.action b.action))
    (overlapping_pairs t)

let rename t name = { t with name }

let pp_entry fmt name e =
  Format.fprintf fmt "ip prefix-list %s seq %d %s %s" name e.seq
    (Action.to_string e.action)
    (Netaddr.Prefix_range.to_string e.range)

let pp fmt t =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun fmt e ->
         pp_entry fmt t.name e))
    t.entries
