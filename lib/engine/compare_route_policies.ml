(** Behavioural diff of two route-maps — the analogue of Batfish's
    [compareRoutePolicies].

    The two maps may live in different databases (e.g. two candidate
    insertions of a synthesized stanza, each carrying freshly named
    ancillary lists). Differences are reported as concrete input routes
    together with both outcomes. *)

open Symbdd
module Ctx = Symbolic.Route_ctx

type difference = {
  route : Bgp.Route.t;
  result_a : Config.Semantics.route_result;
  result_b : Config.Semantics.route_result;
  stanza_a : int option; (* seq of the handling stanza, None = implicit *)
  stanza_b : int option;
}

let context ~db_a ~db_b rm_a rm_b =
  Ctx.create [ (db_a, [ rm_a ]); (db_b, [ rm_b ]) ]

(* Apply a canonical community pipeline to a concrete community set. *)
let apply_comm_op db op cs =
  match op with
  | Config.Transform.Comm_id -> List.sort_uniq Bgp.Community.compare cs
  | Config.Transform.Comm_const s -> s
  | Config.Transform.Comm_update { delete; add } ->
      let survives c =
        not
          (List.exists
             (fun name ->
               match Config.Database.community_list db name with
               | Some cl -> Config.Community_list.matches cl [ c ]
               | None -> false)
             delete)
      in
      List.sort_uniq Bgp.Community.compare (add @ List.filter survives cs)

(* Community sets (as subsets of the universe) on which the two
   pipelines produce different outputs: candidates are the empty set,
   every singleton, and the full universe. *)
let separating_sets ctx ~db_a ~db_b op_a op_b =
  let universe = Array.to_list ctx.Ctx.comm_universe in
  let candidates =
    ([] :: List.map (fun u -> [ u ]) universe) @ [ universe ]
  in
  List.filter
    (fun s -> apply_comm_op db_a op_a s <> apply_comm_op db_b op_b s)
    candidates

(* Force a route whose community set is exactly [s]. *)
let route_with_comms ctx region s =
  let cube =
    Bdd.conj_list
      (List.mapi
         (fun i u ->
           if List.exists (Bgp.Community.equal u) s then
             Bdd.var (Ctx.atom_base + i)
           else Bdd.nvar (Ctx.atom_base + i))
         (Array.to_list ctx.Ctx.comm_universe))
  in
  Ctx.to_route ctx (Bdd.conj region cube)

(* Pick an example route from a region, preferring one that exposes
   community-transform differences when the two pipelines differ. *)
let sample_route ctx ~db_a ~db_b op_a op_b region =
  let targeted =
    if Config.Transform.comm_op_equal db_a db_b op_a op_b then None
    else
      List.find_map
        (fun s -> route_with_comms ctx region s)
        (separating_sets ctx ~db_a ~db_b op_a op_b)
  in
  match targeted with Some r -> Some r | None -> Ctx.to_route ctx region

let concrete_results ~db_a ~db_b rm_a rm_b route =
  ( Config.Semantics.eval_route_map db_a rm_a route,
    Config.Semantics.eval_route_map db_b rm_b route )

(** All behavioural differences, one example per differing pair of
    execution cells, capped at [limit]. Reaching the cap exits the cell
    product immediately, so [first_difference] stops at the first
    differing pair instead of scanning the remaining O(n²) cells. *)
let compare ?(limit = max_int) ~db_a ~db_b (rm_a : Config.Route_map.t)
    (rm_b : Config.Route_map.t) =
  Obs.Counter.incr Metrics.compare_route_policies_calls;
  let ctx = context ~db_a ~db_b rm_a rm_b in
  let cells_a = Ctx.exec ctx db_a rm_a in
  let cells_b = Ctx.exec ctx db_b rm_b in
  let differences = ref [] in
  let count = ref 0 in
  let emit route (ra, rb) sa sb =
    if not (Config.Semantics.route_result_equal ra rb) then begin
      differences :=
        { route; result_a = ra; result_b = rb; stanza_a = sa; stanza_b = sb }
        :: !differences;
      incr count
    end
  in
  (try
     List.iter
       (fun (ca : Ctx.cell) ->
         List.iter
           (fun (cb : Ctx.cell) ->
             if !count >= limit then raise_notrace Exit;
             let region = Bdd.conj ca.guard cb.guard in
             let maybe_differs =
               match (ca.action, cb.action) with
               | Config.Action.Deny, Config.Action.Deny -> false
               | Config.Action.Permit, Config.Action.Permit ->
                   not
                     (Config.Transform.equal ~db1:db_a ~db2:db_b
                        (Config.Transform.of_sets db_a ca.sets)
                        (Config.Transform.of_sets db_b cb.sets))
               | _ -> true
             in
             if maybe_differs then
               let op_a = (Config.Transform.of_sets db_a ca.sets).communities in
               let op_b = (Config.Transform.of_sets db_b cb.sets).communities in
               match sample_route ctx ~db_a ~db_b op_a op_b region with
               | None -> ()
               | Some route ->
                   emit route
                     (concrete_results ~db_a ~db_b rm_a rm_b route)
                     ca.stanza_seq cb.stanza_seq)
           cells_b)
       cells_a
   with Exit -> ());
  List.rev !differences

(** First behavioural difference, if any. *)
let first_difference ~db_a ~db_b rm_a rm_b =
  match compare ~limit:1 ~db_a ~db_b rm_a rm_b with
  | [] -> None
  | d :: _ -> Some d

let equal_behavior ~db_a ~db_b rm_a rm_b =
  first_difference ~db_a ~db_b rm_a rm_b = None

(* ------------------------------------------------------------------ *)
(* Batch adjacent-insertion analysis (DESIGN.md §11).

   Inserting stanza S* at position i vs i+1 only reorders S* against
   stanza s_i, so the two maps can differ exactly on the routes that
   fall through stanzas 0..i-1 and match both S* and s_i. In the
   first-match partition of the *target* map, cell i's guard already is
   fall-through(0..i-1) ∧ match(s_i): the candidate region at position
   i is one conjunction, [cell_i.guard ∧ match(new)], against a single
   shared compilation — no per-position map construction or
   re-execution. The pair-filtering, sampling and concrete-replay logic
   below mirrors [compare] exactly so that witnesses are byte-identical
   to the naive per-position sweep. *)

let naive_chunk ~db ~target stanza (start, len) =
  Obs.Counter.incr ~by:len Metrics.adjacent_contexts;
  let map_at p = Config.Route_map.insert_at target p stanza in
  List.filter_map
    (fun i ->
      match
        first_difference ~db_a:db ~db_b:db (map_at i) (map_at (i + 1))
      with
      | None -> None
      | Some d -> Some (i, d))
    (List.init len (fun k -> start + k))

(* Boundaries of one candidate stanza against a pre-executed partition
   of the target: position [i]'s candidate region is
   [cells.(i).guard ∧ match(stanza)], sampled and replayed concretely
   exactly as [compare] would, so witnesses match the naive sweep. *)
let cell_boundaries ctx cells ~db ~(target : Config.Route_map.t) stanza
    (start, len) =
  let match_new = Ctx.of_stanza ctx db stanza in
  let t_new = Config.Transform.of_sets db stanza.Config.Route_map.sets in
  let map_at p = Config.Route_map.insert_at target p stanza in
  List.filter_map
    (fun i ->
      let (c : Ctx.cell) = cells.(i) in
      let maybe_differs =
        match (stanza.Config.Route_map.action, c.action) with
        | Config.Action.Deny, Config.Action.Deny -> false
        | Config.Action.Permit, Config.Action.Permit ->
            not
              (Config.Transform.equal ~db1:db ~db2:db t_new
                 (Config.Transform.of_sets db c.sets))
        | _ -> true
      in
      if not maybe_differs then None
      else
        let region = Bdd.conj c.guard match_new in
        let op_a = t_new.Config.Transform.communities in
        let op_b = (Config.Transform.of_sets db c.sets).communities in
        match sample_route ctx ~db_a:db ~db_b:db op_a op_b region with
        | None -> None
        | Some route ->
            let result_a, result_b =
              concrete_results ~db_a:db ~db_b:db (map_at i) (map_at (i + 1))
                route
            in
            if Config.Semantics.route_result_equal result_a result_b then None
            else
              (* Both maps resequence, putting S* and s_i at seq
                 (i+1)*10 in their respective maps. *)
              let seq = Some ((i + 1) * 10) in
              Some
                (i, { route; result_a; result_b; stanza_a = seq; stanza_b = seq }))
    (List.init len (fun k -> start + k))

let incremental_chunk ~db ~(target : Config.Route_map.t) stanza (start, len) =
  Obs.Counter.incr Metrics.adjacent_contexts;
  Obs.Counter.incr ~by:(max 0 (len - 1)) Metrics.adjacent_prefix_reuse;
  (* Any insertion brings the new stanza's ancillary lists into scope;
     position 0 is as good as any for the shared universe, which is a
     function of the referenced community sets only. *)
  let ctx = context ~db_a:db ~db_b:db (Config.Route_map.insert_at target 0 stanza) target in
  let cells = Array.of_list (Ctx.exec ctx db target) in
  cell_boundaries ctx cells ~db ~target stanza (start, len)

let adjacent_insertions ?naive ?pool ~db ~(target : Config.Route_map.t)
    (stanza : Config.Route_map.stanza) =
  Obs.Counter.incr Metrics.adjacent_insertions_calls;
  let t0 = Obs.now () in
  let naive =
    match naive with Some b -> b | None -> Boundary_mode.naive_requested ()
  in
  let run_chunk =
    if naive then naive_chunk ~db ~target stanza
    else incremental_chunk ~db ~target stanza
  in
  let n = List.length target.Config.Route_map.stanzas in
  let result =
    match pool with
    | Some pool when Parallel.Pool.domains pool > 1 && n > 1 ->
        if naive then
          (* One position per task: a pathological insertion point gets
             stolen around instead of serializing a coarse chunk. *)
          List.concat
            (Parallel.Pool.map pool ~f:run_chunk
               (Parallel.Pool.ranges ~grain:1 n))
        else begin
          (* Compile the shared context and first-match partition once
             into a fresh base manager, freeze it, and let every worker
             walk its slice under a private delta — the base's nodes
             and compile cache are shared read-only, so nothing is
             recompiled per domain. *)
          let base = Bdd.Manager.create () in
          let ctx, cells =
            Bdd.with_manager base (fun () ->
                Obs.Counter.incr Metrics.adjacent_contexts;
                let ctx =
                  context ~db_a:db ~db_b:db
                    (Config.Route_map.insert_at target 0 stanza)
                    target
                in
                let cells = Array.of_list (Ctx.exec ctx db target) in
                (* Pre-compile the candidate's match condition too, so
                   deltas resolve it from the base instead of each
                   rebuilding it. *)
                ignore (Ctx.of_stanza ctx db stanza);
                (ctx, cells))
          in
          Bdd.Manager.freeze base;
          Obs.Counter.incr ~by:(max 0 (n - 1)) Metrics.adjacent_prefix_reuse;
          (* Slices of a few positions: the context fork (a hashtable
             copy) amortizes over the slice while slices stay plentiful
             enough to steal when stanza widths are skewed. *)
          List.concat
            (Parallel.Pool.map ~bdd_base:base pool
               ~f:(fun slice ->
                 cell_boundaries (Ctx.fork ctx) cells ~db ~target stanza slice)
               (Parallel.Pool.ranges ~grain:8 n))
        end
    | _ -> if n = 0 then [] else run_chunk (0, n)
  in
  Obs.Histogram.observe_ns Metrics.boundary_ns ((Obs.now () -. t0) *. 1e9);
  result

(* ------------------------------------------------------------------ *)
(* Multi-stanza batch sweep (DESIGN.md §12).

   A batch of N candidate stanzas against one target policy shares a
   single compiled first-match partition: every candidate's boundary
   sweep is N conjunctions against the same cells, and the pairwise
   inter-intent analysis is one conjunction per candidate pair. The
   symbolic scope always covers the target plus *every* candidate, so
   the community/as-path universe — and therefore every witness — is
   identical however the work is sharded across a pool. *)

type pair_kind = Pair_disjoint | Pair_overlap | Pair_conflict of difference

type batch_sweep = {
  per_candidate : (int * difference) list array;
      (* candidate k's boundary sweep against the original target *)
  overlaps : (int * int) list; (* i < j: match regions intersect *)
  conflicts : (int * int * difference) list;
      (* overlapping pairs whose behaviours differ, with a witness *)
}

let batch_insertions ?pool ~db ~(target : Config.Route_map.t) stanzas =
  let candidates = Array.of_list stanzas in
  let ncand = Array.length candidates in
  if ncand = 0 then { per_candidate = [||]; overlaps = []; conflicts = [] }
  else begin
    Obs.Counter.incr Metrics.adjacent_insertions_calls;
    let t0 = Obs.now () in
    let n = List.length target.Config.Route_map.stanzas in
    (* The shared scope map: target stanzas plus every candidate, so
       each chunk's universe is the same whichever candidates it owns. *)
    let scope_map =
      let base =
        1
        + List.fold_left
            (fun a (s : Config.Route_map.stanza) -> max a s.seq)
            0 target.Config.Route_map.stanzas
      in
      Config.Route_map.make target.Config.Route_map.name
        (target.Config.Route_map.stanzas
        @ List.mapi
            (fun k s -> { s with Config.Route_map.seq = base + k })
            stanzas)
    in
    let make_ctx () =
      Obs.Counter.incr Metrics.adjacent_contexts;
      Ctx.create [ (db, [ scope_map; target ]) ]
    in
    let classify_pair ctx (i, j) =
      let si = candidates.(i) and sj = candidates.(j) in
      let region =
        Bdd.conj (Ctx.of_stanza ctx db si) (Ctx.of_stanza ctx db sj)
      in
      if not (Ctx.is_sat ctx region) then (i, j, Pair_disjoint)
      else
        let ti = Config.Transform.of_sets db si.Config.Route_map.sets in
        let tj = Config.Transform.of_sets db sj.Config.Route_map.sets in
        let maybe_differs =
          match (si.Config.Route_map.action, sj.Config.Route_map.action) with
          | Config.Action.Deny, Config.Action.Deny -> false
          | Config.Action.Permit, Config.Action.Permit ->
              not (Config.Transform.equal ~db1:db ~db2:db ti tj)
          | _ -> true
        in
        if not maybe_differs then (i, j, Pair_overlap)
        else
          match
            sample_route ctx ~db_a:db ~db_b:db
              ti.Config.Transform.communities tj.Config.Transform.communities
              region
          with
          | None -> (i, j, Pair_overlap)
          | Some route ->
              let map_of s =
                Config.Route_map.make target.Config.Route_map.name [ s ]
              in
              let result_a, result_b =
                concrete_results ~db_a:db ~db_b:db (map_of si) (map_of sj)
                  route
              in
              if Config.Semantics.route_result_equal result_a result_b then
                (i, j, Pair_overlap)
              else
                ( i,
                  j,
                  Pair_conflict
                    {
                      route;
                      result_a;
                      result_b;
                      stanza_a = Some si.Config.Route_map.seq;
                      stanza_b = Some sj.Config.Route_map.seq;
                    } )
    in
    let all_pairs =
      List.concat
        (List.init ncand (fun i ->
             List.init (ncand - i - 1) (fun d -> (i, i + d + 1))))
    in
    let bounds, pairs =
      match pool with
      | Some pool when Parallel.Pool.domains pool > 1 && ncand > 1 ->
          (* One shared compilation for the whole batch: context,
             first-match partition and every candidate's match
             condition live in a frozen base; workers fork the context
             (private feasibility state) and layer private deltas. *)
          let base = Bdd.Manager.create () in
          let ctx, cells =
            Bdd.with_manager base (fun () ->
                let ctx = make_ctx () in
                let cells = Array.of_list (Ctx.exec ctx db target) in
                Array.iter
                  (fun s -> ignore (Ctx.of_stanza ctx db s))
                  candidates;
                (ctx, cells))
          in
          Bdd.Manager.freeze base;
          (* Candidate sweeps are coarse — one stealable task each;
             pairs are cheap, so a few share a task to amortize the
             context fork (a hashtable copy) that gives each task its
             private feasibility state. *)
          let bounds =
            Parallel.Pool.map ~bdd_base:base pool
              ~f:(fun k ->
                ( k,
                  cell_boundaries (Ctx.fork ctx) cells ~db ~target
                    candidates.(k) (0, n) ))
              (List.init ncand Fun.id)
          in
          let pairs =
            Parallel.Pool.map ~grain:4 ~bdd_base:base pool
              ~f:(fun p -> classify_pair (Ctx.fork ctx) p)
              all_pairs
          in
          (bounds, pairs)
      | _ ->
          let ctx = make_ctx () in
          let cells = Array.of_list (Ctx.exec ctx db target) in
          ( List.map
              (fun k ->
                ( k,
                  cell_boundaries ctx cells ~db ~target candidates.(k) (0, n)
                ))
              (List.init ncand Fun.id),
            List.map (classify_pair ctx) all_pairs )
    in
    Obs.Counter.incr
      ~by:(max 0 ((ncand * max 1 n) - 1))
      Metrics.adjacent_prefix_reuse;
    let per_candidate = Array.make ncand [] in
    List.iter (fun (k, bs) -> per_candidate.(k) <- bs) bounds;
    let overlaps =
      List.filter_map
        (function
          | i, j, (Pair_overlap | Pair_conflict _) -> Some (i, j)
          | _, _, Pair_disjoint -> None)
        pairs
    in
    let conflicts =
      List.filter_map
        (function
          | i, j, Pair_conflict d -> Some (i, j, d)
          | _ -> None)
        pairs
    in
    Obs.Counter.incr ~by:(List.length conflicts) Metrics.batch_conflict_pairs;
    Obs.Histogram.observe_ns Metrics.boundary_ns ((Obs.now () -. t0) *. 1e9);
    { per_candidate; overlaps; conflicts }
  end

let pp_difference fmt d =
  Format.fprintf fmt
    "@[<v>Input route:@ %a@ @ OPTION A:@ %a@ @ OPTION B:@ %a@]" Bgp.Route.pp
    d.route Config.Semantics.pp_route_result d.result_a
    Config.Semantics.pp_route_result d.result_b
