(** A recorded session: one JSONL flight-recorder log loaded back as
    events, with enough identity for aggregation. *)

type t = {
  name : string; (* file basename without extension, e.g. "e4_R1" *)
  path : string;
  events : Telemetry.Event.t list;
}

val router : t -> string
(** The router the session ran for: the first [ctx] ["router"] label in
    its events ({!Telemetry.with_context}), else the session name. *)

val load_file : ?tolerant:bool -> string -> (t, string) result
(** [tolerant] additionally accepts a log whose {e final} line is
    truncated or malformed (a crashed or still-running recorder) by
    dropping that line; garbage anywhere earlier is still an error. *)

val expand_paths : string list -> string list
(** Expand arguments into log files: a directory contributes its
    [*.jsonl] files sorted by name (so downstream reports are
    byte-stable regardless of filesystem readdir order), anything else
    passes through unchanged. *)

val load : ?tolerant:bool -> string list -> (t list, string) result
(** Load several logs. A directory argument contributes its [*.jsonl]
    files in name order; anything else is taken as a log file. *)
