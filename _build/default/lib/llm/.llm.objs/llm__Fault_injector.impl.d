lib/llm/fault_injector.ml: List Random String
