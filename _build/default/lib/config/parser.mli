(** Line-oriented parser and printer for the Cisco IOS subset used by
    the paper.

    Supported directives:
    - [ip prefix-list NAME [seq N] permit|deny PFX [ge N] [le N]]
    - [ip community-list [standard|expanded] NAME permit|deny ...]
    - [ip as-path access-list NAME permit|deny REGEX]
    - [route-map NAME permit|deny SEQ] followed by indented
      [match ...] / [set ...] lines
    - [ip access-list extended NAME] followed by indented rules
    - [access-list NUM permit|deny ...] (numbered extended ACLs)
    - blank lines and [!] comment lines *)

exception Syntax_error of { line : int; message : string }

val parse : string -> (Database.t, string) result
(** Parse a configuration; errors carry a line number and message. *)

val parse_exn : string -> Database.t
(** @raise Syntax_error on malformed input. *)

val to_string : Database.t -> string
(** Render back to Cisco syntax; [parse (to_string db)] reconstructs an
    equivalent database (property-tested). *)
