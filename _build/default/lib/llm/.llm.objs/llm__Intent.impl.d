lib/llm/intent.ml: Bgp Config Engine Format List Netaddr Printf Sre String
