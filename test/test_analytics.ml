(* Tests for lib/analytics: session loading (including tolerant
   recovery of truncated logs), the Figure-4 report aggregator checked
   against both the events themselves and the committed golden, and
   Chrome-trace export re-parsed from its JSON text with the span
   nesting validated event by event. *)

module S = Analytics.Session
module Rp = Analytics.Report
module T = Analytics.Trace
module E = Telemetry.Event

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let fixture = "../examples/acl_session.jsonl"
let golden_report = "../examples/e4_figure4.md"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_fixture () =
  match S.load_file fixture with
  | Ok s -> s
  | Error m -> Alcotest.failf "cannot load %s: %s" fixture m

let num j =
  match j with
  | Json.Float f -> Some f
  | Json.Int i -> Some (float_of_int i)
  | _ -> None

let field name j =
  match Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "trace event lacks %S: %s" name (Json.to_string j)

let count_kind kind events =
  List.length (List.filter (fun e -> e.E.kind = kind) events)

let sum_int_field name events =
  List.fold_left
    (fun acc e ->
      acc + Option.value ~default:0 (Option.map int_of_float
        (Option.bind (List.assoc_opt name e.E.fields) num)))
    0 events

(* ------------------------------------------------------------------ *)
(* Session loading                                                    *)
(* ------------------------------------------------------------------ *)

let test_load_fixture () =
  let s = load_fixture () in
  check_string "name from basename" "acl_session" s.S.name;
  check_string "router falls back to name" "acl_session" (S.router s);
  check_bool "fixture has domain events" true
    (count_kind "session_start" s.S.events = 1
    && count_kind "session_end" s.S.events = 1);
  check_bool "fixture has span mirror events" true
    (count_kind "span" s.S.events > 0)

(* A crashed recorder leaves a truncated final line: tolerant loading
   drops exactly that line, strict loading refuses the file. *)
let test_tolerant_truncated_log () =
  let s = load_fixture () in
  let text = read_file fixture in
  let truncated = String.sub text 0 (String.length text - 7) in
  let path = Filename.temp_file "analytics_trunc" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc truncated;
      close_out oc;
      (match S.load_file path with
      | Ok _ -> Alcotest.fail "strict load accepted a truncated log"
      | Error _ -> ());
      match S.load_file ~tolerant:true path with
      | Error m -> Alcotest.failf "tolerant load refused the log: %s" m
      | Ok s' ->
          check_int "only the damaged final line is dropped"
            (List.length s.S.events - 1)
            (List.length s'.S.events))

(* Garbage in the middle of a log is corruption, not a crash tail, and
   stays an error even under tolerant loading. *)
let test_tolerant_rejects_mid_file_garbage () =
  let text = read_file fixture in
  let lines = String.split_on_char '\n' text in
  let mangled =
    String.concat "\n"
      (List.mapi (fun i l -> if i = 2 then "{not json" else l) lines)
  in
  let path = Filename.temp_file "analytics_mid" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc mangled;
      close_out oc;
      match S.load_file ~tolerant:true path with
      | Ok _ -> Alcotest.fail "tolerant load accepted mid-file garbage"
      | Error _ -> ())

(* ------------------------------------------------------------------ *)
(* Report aggregation                                                 *)
(* ------------------------------------------------------------------ *)

(* Every number in the report row must be recomputable from the raw
   events of the session it aggregates. *)
let test_report_matches_fixture_events () =
  let s = load_fixture () in
  let events = s.S.events in
  let report = Rp.of_sessions [ s ] in
  match report.Rp.routers with
  | [ r ] ->
      check_string "router" "acl_session" r.Rp.router;
      check_int "sessions" (count_kind "session_start" events) r.Rp.sessions;
      check_int "stanzas" (count_kind "placement" events) r.Rp.stanzas;
      check_int "questions" (count_kind "question" events) r.Rp.questions;
      check_int "probes" (count_kind "probe" events) r.Rp.probes;
      check_int "boundaries" (sum_int_field "boundaries" events)
        r.Rp.boundaries;
      check_int "classify" (count_kind "llm_classify" events)
        r.Rp.classify_calls;
      check_int "synthesize" (count_kind "llm_synthesize" events)
        r.Rp.synthesize_calls;
      check_int "spec" (count_kind "llm_spec" events) r.Rp.spec_calls;
      check_int "llm calls total"
        (r.Rp.classify_calls + r.Rp.synthesize_calls + r.Rp.spec_calls)
        (Rp.llm_calls r);
      check_int "retries"
        (List.length
           (List.filter
              (fun e ->
                e.E.kind = "verify"
                && E.str_field "verdict" e <> Some "verified")
              events))
        r.Rp.retries;
      check_int "prompt tokens" (sum_int_field "prompt_tokens" events)
        r.Rp.prompt_tokens;
      check_int "completion tokens"
        (sum_int_field "completion_tokens" events)
        r.Rp.completion_tokens;
      check_bool "tokens were recorded" true (r.Rp.prompt_tokens > 0);
      Alcotest.(check (float 1e-12))
        "cost from the token totals"
        (Llm.Tokens.cost ~prompt_tokens:r.Rp.prompt_tokens
           ~completion_tokens:r.Rp.completion_tokens)
        r.Rp.cost_usd;
      check_bool "phases include the root span total" true
        (List.exists (fun p -> p.Rp.phase = "total") r.Rp.phases)
  | rows -> Alcotest.failf "expected one router row, got %d" (List.length rows)

let test_report_renderings () =
  let s = load_fixture () in
  let report = Rp.of_sessions [ s ] in
  let md = Rp.to_markdown report in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "markdown has the Figure-4 table" true
    (contains md "## Figure 4: per-router interaction counts");
  check_bool "markdown has the cost table" true
    (contains md "## LLM usage and estimated cost");
  check_bool "figure4_markdown is a subset of to_markdown" true
    (contains md (Rp.figure4_markdown report));
  let csv = Rp.to_csv report in
  (match String.split_on_char '\n' (String.trim csv) with
  | header :: rows ->
      check_string "csv header"
        "router,sessions,route_maps,stanzas,questions,probes,boundaries,\
         retries,classify_calls,synthesize_calls,spec_calls,prompt_tokens,\
         completion_tokens,cost_usd,batch_sessions,batch_intents,\
         batch_conflict_pairs,batch_fast_path,batch_questions_saved"
        header;
      check_int "one csv row per router" 1 (List.length rows)
  | [] -> Alcotest.fail "empty csv");
  (* Wall-clock phase timings are JSON-only: the deterministic
     renderings must not mention nanoseconds at all. *)
  check_bool "markdown carries no wall-clock data" false (contains md "_ns");
  check_bool "csv carries no wall-clock data" false (contains csv "_ns");
  let j = Rp.to_json report in
  match Option.bind (Json.member "routers" j) Json.to_list with
  | Some [ row ] ->
      check_bool "json row has phases" true
        (Json.member "phases" row <> None)
  | _ -> Alcotest.fail "json lacks the routers array"

(* The batch fixture aggregates into the batch columns: one batch
   session of three intents with one genuine conflict pair, and the
   markdown gains its batch section (absent from single-intent
   reports like the committed E4 golden). *)
let test_batch_fixture_report () =
  let s =
    match S.load_file "../examples/batch_session.jsonl" with
    | Ok s -> s
    | Error m -> Alcotest.failf "cannot load batch fixture: %s" m
  in
  let report = Rp.of_sessions [ s ] in
  match report.Rp.routers with
  | [ r ] ->
      check_int "one batch session" 1 r.Rp.batch_sessions;
      check_int "three intents" 3 r.Rp.batch_intents;
      check_int "one conflict pair" 1 r.Rp.batch_conflict_pairs;
      check_bool "some placements took the fast path" true
        (r.Rp.batch_fast_path >= 1);
      check_int "placements cover every intent" 3 r.Rp.stanzas;
      let md = Rp.to_markdown report in
      let contains hay needle =
        let nl = String.length needle and hl = String.length hay in
        let rec go i =
          i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
        in
        go 0
      in
      check_bool "markdown has the batch section" true
        (contains md "## Batch intents")
  | rows -> Alcotest.failf "expected one router row, got %d" (List.length rows)

(* The acceptance gate: record E4, aggregate the logs, and demand both
   (a) the per-router rows equal the stats the experiment itself
   computed, and (b) the Markdown is byte-identical to the committed
   golden in examples/e4_figure4.md. *)
let test_e4_report_matches_run_and_golden () =
  let dir = Filename.temp_file "e4_logs" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      let result = Evaluation.E4_lightyear.run ~record_dir:dir () in
      let sessions =
        match S.load [ dir ] with
        | Ok s -> s
        | Error m -> Alcotest.failf "cannot load %s: %s" dir m
      in
      check_int "one session per router" 3 (List.length sessions);
      let report = Rp.of_sessions sessions in
      check_int "one row per router" 3 (List.length report.Rp.routers);
      List.iter2
        (fun (s : Evaluation.E4_lightyear.router_stats)
             (r : Rp.router_stats) ->
          check_string "router" s.Evaluation.E4_lightyear.router r.Rp.router;
          check_int
            (r.Rp.router ^ " route-maps")
            s.Evaluation.E4_lightyear.route_maps r.Rp.route_maps;
          check_int
            (r.Rp.router ^ " synthesis calls")
            s.Evaluation.E4_lightyear.synthesis_calls r.Rp.synthesize_calls;
          check_int
            (r.Rp.router ^ " questions")
            s.Evaluation.E4_lightyear.questions r.Rp.questions;
          check_int
            (r.Rp.router ^ " total llm calls")
            s.Evaluation.E4_lightyear.total_llm_calls (Rp.llm_calls r))
        result.Evaluation.E4_lightyear.stats report.Rp.routers;
      check_string "markdown reproduces the committed golden"
        (read_file golden_report) (Rp.to_markdown report))

(* ------------------------------------------------------------------ *)
(* Chrome-trace export                                                *)
(* ------------------------------------------------------------------ *)

type x_event = { ts : float; dur : float; depth : int }

let contains_interval p c =
  p.ts <= c.ts && c.ts +. c.dur <= p.ts +. p.dur

let overlaps a b = a.ts < b.ts +. b.dur && b.ts < a.ts +. a.dur

(* The acceptance criterion: export the golden fixture, re-parse the
   JSON text, and check the complete ("X") events nest properly within
   each pid/tid lane — no partial overlap, and every child interval
   lies inside a parent interval one level up. *)
let test_trace_export_reparses_and_nests () =
  let s = load_fixture () in
  let trace = T.of_events ~process:s.S.name s.S.events in
  let text = Json.to_string ~indent:1 trace in
  let j =
    match Json.parse text with
    | Ok j -> j
    | Error m -> Alcotest.failf "trace JSON does not re-parse: %s" m
  in
  Alcotest.(check (option string))
    "display unit" (Some "ms")
    (Option.bind (Json.member "displayTimeUnit" j) Json.to_str);
  let events =
    match Option.bind (Json.member "traceEvents" j) Json.to_list with
    | Some l -> l
    | None -> Alcotest.fail "no traceEvents array"
  in
  check_bool "trace is non-empty" true (events <> []);
  (* Every event is well-formed and of a known phase. *)
  let phases =
    List.map
      (fun e ->
        let ph =
          match Json.to_str (field "ph" e) with
          | Some ph -> ph
          | None -> Alcotest.fail "ph is not a string"
        in
        (match ph with
        | "M" -> ()
        | "X" | "i" ->
            check_bool "pid is an int" true
              (Json.to_int (field "pid" e) <> None);
            check_bool "tid is an int" true
              (Json.to_int (field "tid" e) <> None);
            check_bool "ts is a number" true (num (field "ts" e) <> None);
            if ph = "X" then
              check_bool "dur is non-negative" true
                (match num (field "dur" e) with
                | Some d -> d >= 0.
                | None -> false)
        | other -> Alcotest.failf "unexpected phase %S" other);
        ph)
      events
  in
  let count ph = List.length (List.filter (( = ) ph) phases) in
  check_int "one X event per span mirror event"
    (count_kind "span" s.S.events)
    (count "X");
  check_int "one instant per domain event"
    (List.length s.S.events - count_kind "span" s.S.events)
    (count "i");
  (* The process lane is named after the session. *)
  check_bool "process metadata names the session" true
    (List.exists
       (fun e ->
         Json.to_str (field "name" e) = Some "process_name"
         && Option.bind (Json.member "args" e) (Json.member "name")
            |> Option.map Json.to_str
            |> Option.join = Some "acl_session")
       events);
  (* Nesting: group X events by lane and compare pairwise. *)
  let lanes = Hashtbl.create 4 in
  List.iter
    (fun e ->
      if Json.to_str (field "ph" e) = Some "X" then begin
        let lane =
          ( Option.get (Json.to_int (field "pid" e)),
            Option.get (Json.to_int (field "tid" e)) )
        in
        let x =
          {
            ts = Option.get (num (field "ts" e));
            dur = Option.get (num (field "dur" e));
            depth =
              Option.get
                (Option.bind
                   (Option.bind (Json.member "args" e) (Json.member "depth"))
                   Json.to_int);
          }
        in
        Hashtbl.replace lanes lane
          (x :: Option.value ~default:[] (Hashtbl.find_opt lanes lane))
      end)
    events;
  check_bool "at least one lane carries spans" true (Hashtbl.length lanes > 0);
  Hashtbl.iter
    (fun _lane xs ->
      List.iteri
        (fun i a ->
          List.iteri
            (fun k b ->
              if i < k && overlaps a b then
                check_bool "overlapping spans are properly nested" true
                  (contains_interval a b || contains_interval b a))
            xs)
        xs;
      List.iter
        (fun c ->
          if c.depth > 0 then
            check_bool
              (Printf.sprintf "span at depth %d has an enclosing parent"
                 c.depth)
              true
              (List.exists
                 (fun p -> p.depth = c.depth - 1 && contains_interval p c)
                 xs))
        xs)
    lanes

(* Pre-timestamp logs (ts_ns = 0 everywhere) still export: instants
   fall back to sequence numbers, one microsecond apart. *)
let test_trace_export_legacy_log () =
  let s = load_fixture () in
  let stripped =
    List.filter_map
      (fun e ->
        if e.E.kind = "span" then None
        else Some { e with E.ts_ns = 0.; E.ctx = [] })
      s.S.events
  in
  let j = T.of_events stripped in
  let events =
    Option.get (Option.bind (Json.member "traceEvents" j) Json.to_list)
  in
  let instants =
    List.filter (fun e -> Json.to_str (field "ph" e) = Some "i") events
  in
  check_int "every event became an instant" (List.length stripped)
    (List.length instants);
  let ts =
    List.map (fun e -> Option.get (num (field "ts" e))) instants
  in
  check_bool "fallback timestamps strictly increase" true
    (List.for_all2 ( < ) ts (List.tl ts @ [ infinity ]))

(* Live span buffers export without any recording. *)
let test_trace_of_spans () =
  Obs.enable ();
  Obs.reset ();
  Fun.protect ~finally:Obs.disable @@ fun () ->
  Obs.with_span "outer" (fun () -> Obs.with_span "inner" (fun () -> ()));
  let j = T.of_spans ~process:"live" (Obs.spans ()) in
  let events =
    Option.get (Option.bind (Json.member "traceEvents" j) Json.to_list)
  in
  let xs =
    List.filter (fun e -> Json.to_str (field "ph" e) = Some "X") events
  in
  check_int "one X event per span" 2 (List.length xs);
  check_bool "span names survive" true
    (List.exists
       (fun e -> Json.to_str (field "name" e) = Some "outer.inner")
       xs)

let () =
  Alcotest.run "analytics"
    [
      ( "sessions",
        [
          Alcotest.test_case "load the golden fixture" `Quick
            test_load_fixture;
          Alcotest.test_case "tolerant truncated log" `Quick
            test_tolerant_truncated_log;
          Alcotest.test_case "tolerant rejects mid-file garbage" `Quick
            test_tolerant_rejects_mid_file_garbage;
        ] );
      ( "report",
        [
          Alcotest.test_case "row matches the raw events" `Quick
            test_report_matches_fixture_events;
          Alcotest.test_case "renderings" `Quick test_report_renderings;
          Alcotest.test_case "batch fixture aggregates" `Quick
            test_batch_fixture_report;
          Alcotest.test_case "e4 run vs report vs golden" `Quick
            test_e4_report_matches_run_and_golden;
        ] );
      ( "trace",
        [
          Alcotest.test_case "re-parses and nests" `Quick
            test_trace_export_reparses_and_nests;
          Alcotest.test_case "legacy log fallback" `Quick
            test_trace_export_legacy_log;
          Alcotest.test_case "live span buffer" `Quick test_trace_of_spans;
        ] );
    ]
