lib/core/acl_disambiguator.ml: Array Config Engine Format Fun List
