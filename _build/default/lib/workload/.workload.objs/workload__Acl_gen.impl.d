lib/workload/acl_gen.ml: Config List Netaddr Random
