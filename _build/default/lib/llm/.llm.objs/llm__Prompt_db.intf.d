lib/llm/prompt_db.mli:
