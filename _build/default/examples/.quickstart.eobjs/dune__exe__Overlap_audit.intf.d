examples/overlap_audit.mli:
