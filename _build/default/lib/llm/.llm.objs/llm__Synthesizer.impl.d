lib/llm/synthesizer.ml: Bgp Buffer Config Intent List Netaddr Printf String
