(** Deterministic fleet topology generator.

    Two profiles: a data-center fat-tree (arity [k] in 4..16, extended
    with extra pods beyond [k] when the requested fleet outgrows the
    canonical 5k²/4 router budget) and a WAN modeled on the 11-node
    Abilene backbone with access ("site") routers attached round-robin.

    Every internal router [r] owns exactly two route-maps, [r_IN]
    applied on import and [r_OUT] applied on export of every session.
    One external router (EXT, no policies of its own) peers with the
    first internal router and originates the shared service prefix plus
    a bogon probe, so the generated import policies are observable in a
    BGP simulation.

    Generation is a pure function of (profile, routers): names, AS
    numbers, router addresses and originated prefixes are assigned by
    index, so two runs — or two processes — agree byte-for-byte. *)

type profile = Fat_tree | Wan

val profile_to_string : profile -> string
val profile_of_string : string -> (profile, string) result

type role = Core | Aggregation | Edge | Backbone | Site

val role_to_string : role -> string

type node = {
  name : string;
  role : role;
  site : int; (* pod index / WAN site index; -1 for core and backbone *)
}

type t = {
  profile : profile;
  routers : int; (* internal router count (excludes EXT) *)
  k : int; (* fat-tree arity actually used; 0 for WAN *)
  pods : int; (* fat-tree pods / WAN backbone size *)
  nodes : node list; (* internal routers in generation order *)
  topology : Netsim.Topology.t; (* internal routers + EXT, placeholder maps *)
  external_router : string;
}

exception Invalid_profile of string

val generate : profile:profile -> routers:int -> t
(** Exactly [routers] internal routers. @raise Invalid_profile when
    [routers < 1] or the fleet exceeds the generator's budget. *)

val find_node : t -> string -> node option

val install : t -> (string * Config.Database.t) list -> Netsim.Topology.t
(** Replace the placeholder configs of the named routers with
    synthesized ones (for simulation). *)

(* Prefixes the generator wires into every plan. *)
val service_prefix : Netaddr.Prefix.t (* originated by EXT, wants LP 200 at edges *)
val bogon_probe : Netaddr.Prefix.t (* originated by EXT, must be filtered *)
val reserved_prefix : Netaddr.Prefix.t (* must never be exported *)
val edge_prefix : int -> Netaddr.Prefix.t (* the /24 originated by the i-th edge *)
val site_community : t -> node -> Bgp.Community.t

(** The global-policy compiler: a handful of network-wide intents
    expanded into an ordered per-router synthesis worklist. *)
module Policy : sig
  val global_intents : string list
  (** Human-readable statement of the network-wide policies. *)

  type step = { map : string; intent : Llm.Intent.t }

  type plan = {
    router : string;
    role : role;
    site : int;
    maps : string list; (* the router's route-maps, [r_IN; r_OUT] *)
    steps : step list; (* insertion order drives disambiguation *)
    reference : Config.Database.t; (* ground truth for the oracle *)
  }

  val shared_ranges : unit -> Netaddr.Prefix_range.t list
  (** The prefix ranges every plan's intents reference (bogons,
      reserved space, service prefix) — what a fleet run prewarms into
      a shared frozen BDD base so per-router deltas never recompile
      them. *)

  val compile : t -> plan list
  (** One plan per internal router, in generation order. Core,
      aggregation and backbone routers get 4 steps; edge and site
      routers additionally pin the service prefix at LP 200 (5 steps,
      inserted after the catch-all so it must be disambiguated above
      it). *)

  val skew : heavy:int -> factor:int -> plan list -> plan list
  (** A pathological fleet for straggler benchmarks: the first [heavy]
      plans (contiguous, like one pod of fat edge routers) have their
      step sequence replayed [factor - 1] extra times under fresh map
      names, with the reference config extended to answer for the
      copies — [factor]x the synthesis work on 100·heavy/n percent of
      routers. Identity when [factor <= 1] or [heavy <= 0]. *)
end

type check = { name : string; ok : bool; detail : string }

val check : t -> Netsim.Simulator.state -> check list
(** Fleet-wide policy probes over a converged simulation: bogons
    filtered everywhere, the service prefix visible (at LP 200) on
    every edge/site router, and edge prefixes propagating fleet-wide. *)

val pp_check : Format.formatter -> check -> unit
