lib/overlap/route_map_overlap.mli: Bgp Config
