(** Behavioural diff of two route-maps — the analogue of Batfish's
    [compareRoutePolicies].

    The two maps may live in different databases (e.g. two candidate
    insertions of a synthesized stanza, each carrying freshly named
    ancillary lists). Differences are reported as concrete input routes
    together with both outcomes. *)

open Symbdd
module Ctx = Symbolic.Route_ctx

type difference = {
  route : Bgp.Route.t;
  result_a : Config.Semantics.route_result;
  result_b : Config.Semantics.route_result;
  stanza_a : int option; (* seq of the handling stanza, None = implicit *)
  stanza_b : int option;
}

let context ~db_a ~db_b rm_a rm_b =
  Ctx.create [ (db_a, [ rm_a ]); (db_b, [ rm_b ]) ]

(* Apply a canonical community pipeline to a concrete community set. *)
let apply_comm_op db op cs =
  match op with
  | Config.Transform.Comm_id -> List.sort_uniq Bgp.Community.compare cs
  | Config.Transform.Comm_const s -> s
  | Config.Transform.Comm_update { delete; add } ->
      let survives c =
        not
          (List.exists
             (fun name ->
               match Config.Database.community_list db name with
               | Some cl -> Config.Community_list.matches cl [ c ]
               | None -> false)
             delete)
      in
      List.sort_uniq Bgp.Community.compare (add @ List.filter survives cs)

(* Community sets (as subsets of the universe) on which the two
   pipelines produce different outputs: candidates are the empty set,
   every singleton, and the full universe. *)
let separating_sets ctx ~db_a ~db_b op_a op_b =
  let universe = Array.to_list ctx.Ctx.comm_universe in
  let candidates =
    ([] :: List.map (fun u -> [ u ]) universe) @ [ universe ]
  in
  List.filter
    (fun s -> apply_comm_op db_a op_a s <> apply_comm_op db_b op_b s)
    candidates

(* Force a route whose community set is exactly [s]. *)
let route_with_comms ctx region s =
  let cube =
    Bdd.conj_list
      (List.mapi
         (fun i u ->
           if List.exists (Bgp.Community.equal u) s then
             Bdd.var (Ctx.atom_base + i)
           else Bdd.nvar (Ctx.atom_base + i))
         (Array.to_list ctx.Ctx.comm_universe))
  in
  Ctx.to_route ctx (Bdd.conj region cube)

(* Pick an example route from a region, preferring one that exposes
   community-transform differences when the two pipelines differ. *)
let sample_route ctx ~db_a ~db_b op_a op_b region =
  let targeted =
    if Config.Transform.comm_op_equal db_a db_b op_a op_b then None
    else
      List.find_map
        (fun s -> route_with_comms ctx region s)
        (separating_sets ctx ~db_a ~db_b op_a op_b)
  in
  match targeted with Some r -> Some r | None -> Ctx.to_route ctx region

let concrete_results ~db_a ~db_b rm_a rm_b route =
  ( Config.Semantics.eval_route_map db_a rm_a route,
    Config.Semantics.eval_route_map db_b rm_b route )

(** All behavioural differences, one example per differing pair of
    execution cells, capped at [limit]. Reaching the cap exits the cell
    product immediately, so [first_difference] stops at the first
    differing pair instead of scanning the remaining O(n²) cells. *)
let compare ?(limit = max_int) ~db_a ~db_b (rm_a : Config.Route_map.t)
    (rm_b : Config.Route_map.t) =
  Obs.Counter.incr Metrics.compare_route_policies_calls;
  let ctx = context ~db_a ~db_b rm_a rm_b in
  let cells_a = Ctx.exec ctx db_a rm_a in
  let cells_b = Ctx.exec ctx db_b rm_b in
  let differences = ref [] in
  let count = ref 0 in
  let emit route (ra, rb) sa sb =
    if not (Config.Semantics.route_result_equal ra rb) then begin
      differences :=
        { route; result_a = ra; result_b = rb; stanza_a = sa; stanza_b = sb }
        :: !differences;
      incr count
    end
  in
  (try
     List.iter
       (fun (ca : Ctx.cell) ->
         List.iter
           (fun (cb : Ctx.cell) ->
             if !count >= limit then raise_notrace Exit;
             let region = Bdd.conj ca.guard cb.guard in
             let maybe_differs =
               match (ca.action, cb.action) with
               | Config.Action.Deny, Config.Action.Deny -> false
               | Config.Action.Permit, Config.Action.Permit ->
                   not
                     (Config.Transform.equal ~db1:db_a ~db2:db_b
                        (Config.Transform.of_sets db_a ca.sets)
                        (Config.Transform.of_sets db_b cb.sets))
               | _ -> true
             in
             if maybe_differs then
               let op_a = (Config.Transform.of_sets db_a ca.sets).communities in
               let op_b = (Config.Transform.of_sets db_b cb.sets).communities in
               match sample_route ctx ~db_a ~db_b op_a op_b region with
               | None -> ()
               | Some route ->
                   emit route
                     (concrete_results ~db_a ~db_b rm_a rm_b route)
                     ca.stanza_seq cb.stanza_seq)
           cells_b)
       cells_a
   with Exit -> ());
  List.rev !differences

(** First behavioural difference, if any. *)
let first_difference ~db_a ~db_b rm_a rm_b =
  match compare ~limit:1 ~db_a ~db_b rm_a rm_b with
  | [] -> None
  | d :: _ -> Some d

let equal_behavior ~db_a ~db_b rm_a rm_b =
  first_difference ~db_a ~db_b rm_a rm_b = None

(* ------------------------------------------------------------------ *)
(* Batch adjacent-insertion analysis (DESIGN.md §11).

   Inserting stanza S* at position i vs i+1 only reorders S* against
   stanza s_i, so the two maps can differ exactly on the routes that
   fall through stanzas 0..i-1 and match both S* and s_i. In the
   first-match partition of the *target* map, cell i's guard already is
   fall-through(0..i-1) ∧ match(s_i): the candidate region at position
   i is one conjunction, [cell_i.guard ∧ match(new)], against a single
   shared compilation — no per-position map construction or
   re-execution. The pair-filtering, sampling and concrete-replay logic
   below mirrors [compare] exactly so that witnesses are byte-identical
   to the naive per-position sweep. *)

(* Contiguous slices of [0..n-1], one per worker, so each parallel
   chunk compiles its own context once and walks its slice. *)
let position_chunks ~domains n =
  let d = max 1 (min domains n) in
  List.init d (fun c ->
      let start = c * n / d and stop = (c + 1) * n / d in
      (start, stop - start))
  |> List.filter (fun (_, len) -> len > 0)

let naive_chunk ~db ~target stanza (start, len) =
  Obs.Counter.incr ~by:len Metrics.adjacent_contexts;
  let map_at p = Config.Route_map.insert_at target p stanza in
  List.filter_map
    (fun i ->
      match
        first_difference ~db_a:db ~db_b:db (map_at i) (map_at (i + 1))
      with
      | None -> None
      | Some d -> Some (i, d))
    (List.init len (fun k -> start + k))

let incremental_chunk ~db ~(target : Config.Route_map.t) stanza (start, len) =
  Obs.Counter.incr Metrics.adjacent_contexts;
  Obs.Counter.incr ~by:(max 0 (len - 1)) Metrics.adjacent_prefix_reuse;
  (* Any insertion brings the new stanza's ancillary lists into scope;
     position 0 is as good as any for the shared universe, which is a
     function of the referenced community sets only. *)
  let ctx = context ~db_a:db ~db_b:db (Config.Route_map.insert_at target 0 stanza) target in
  let match_new = Ctx.of_stanza ctx db stanza in
  let t_new = Config.Transform.of_sets db stanza.Config.Route_map.sets in
  let cells = Array.of_list (Ctx.exec ctx db target) in
  let map_at p = Config.Route_map.insert_at target p stanza in
  List.filter_map
    (fun i ->
      let (c : Ctx.cell) = cells.(i) in
      let maybe_differs =
        match (stanza.Config.Route_map.action, c.action) with
        | Config.Action.Deny, Config.Action.Deny -> false
        | Config.Action.Permit, Config.Action.Permit ->
            not
              (Config.Transform.equal ~db1:db ~db2:db t_new
                 (Config.Transform.of_sets db c.sets))
        | _ -> true
      in
      if not maybe_differs then None
      else
        let region = Bdd.conj c.guard match_new in
        let op_a = t_new.Config.Transform.communities in
        let op_b = (Config.Transform.of_sets db c.sets).communities in
        match sample_route ctx ~db_a:db ~db_b:db op_a op_b region with
        | None -> None
        | Some route ->
            let result_a, result_b =
              concrete_results ~db_a:db ~db_b:db (map_at i) (map_at (i + 1))
                route
            in
            if Config.Semantics.route_result_equal result_a result_b then None
            else
              (* Both maps resequence, putting S* and s_i at seq
                 (i+1)*10 in their respective maps. *)
              let seq = Some ((i + 1) * 10) in
              Some
                (i, { route; result_a; result_b; stanza_a = seq; stanza_b = seq }))
    (List.init len (fun k -> start + k))

let adjacent_insertions ?naive ?pool ~db ~(target : Config.Route_map.t)
    (stanza : Config.Route_map.stanza) =
  Obs.Counter.incr Metrics.adjacent_insertions_calls;
  let t0 = Obs.now () in
  let naive =
    match naive with Some b -> b | None -> Boundary_mode.naive_requested ()
  in
  let run_chunk =
    if naive then naive_chunk ~db ~target stanza
    else incremental_chunk ~db ~target stanza
  in
  let n = List.length target.Config.Route_map.stanzas in
  let result =
    match pool with
    | Some pool when Parallel.Pool.domains pool > 1 && n > 1 ->
        List.concat
          (Parallel.Pool.map_chunked ~chunks_per_domain:1 pool ~f:run_chunk
             (position_chunks ~domains:(Parallel.Pool.domains pool) n))
    | _ -> if n = 0 then [] else run_chunk (0, n)
  in
  Obs.Histogram.observe_ns Metrics.boundary_ns ((Obs.now () -. t0) *. 1e9);
  result

let pp_difference fmt d =
  Format.fprintf fmt
    "@[<v>Input route:@ %a@ @ OPTION A:@ %a@ @ OPTION B:@ %a@]" Bgp.Route.pp
    d.route Config.Semantics.pp_route_result d.result_a
    Config.Semantics.pp_route_result d.result_b
