lib/evaluation/e1_running_example.ml: Clarify Config Engine Format Json List Llm Option
