(** Insertion disambiguation for ACL rules — the same algorithm as
    {!Disambiguator}, over packet space. This extends the paper's
    prototype, which handled route-maps only. *)

type question = {
  position : int;
  boundary_seq : int;
  packet : Config.Packet.t;
  if_new_first : Config.Action.t;
  if_old_first : Config.Action.t;
}

type answer = Disambig_common.answer = Prefer_new | Prefer_old
type oracle = question -> answer
type mode = Binary_search | Top_bottom | Linear

type outcome = {
  acl : Config.Acl.t;
  position : int;
  questions : question list;
  boundaries : int;
}

type error = Inconsistent_intent of question list

let pp_question fmt q =
  Format.fprintf fmt
    "@[<v>Where the new rule is placed changes the treatment of this packet \
     (boundary: existing rule %d):@ %a@ OPTION 1 (new rule first): %a@ \
     OPTION 2 (existing rule first): %a@]"
    q.boundary_seq Config.Packet.pp q.packet Config.Action.pp q.if_new_first
    Config.Action.pp q.if_old_first

let insert_rule_at = Config.Acl.insert_at

(* Observability (see DESIGN.md §Observability for the naming scheme). *)
let questions_counter =
  Obs.Counter.make "acl_disambiguator.questions"
    ~help:"differential questions shown to the user"

let boundaries_counter =
  Obs.Counter.make "acl_disambiguator.boundaries"
    ~help:"differing insertion boundaries (overlaps) found"

let probes_counter =
  Obs.Counter.make "acl_disambiguator.binary_search.probes"
    ~help:"binary-search iterations (search depth)"

(* One incremental sweep of the engine (naive per-position comparison
   under CLARIFY_NAIVE_BOUNDARIES=1) instead of one two-ACL diff per
   position. *)
let boundaries ?pool ~(target : Config.Acl.t) rule =
  Obs.with_span "find_boundaries" @@ fun () ->
  let rules = Array.of_list target.Config.Acl.rules in
  let bs =
    List.map
      (fun (i, (d : Engine.Compare_acls.difference)) ->
        {
          position = i;
          boundary_seq = rules.(i).Config.Acl.seq;
          packet = d.packet;
          if_new_first = d.action_a;
          if_old_first = d.action_b;
        })
      (Engine.Compare_acls.adjacent_insertions ?pool ~target rule)
  in
  Obs.Counter.incr ~by:(List.length bs) boundaries_counter;
  bs

let view (q : question) =
  {
    Disambig_common.position = q.position;
    boundary_seq = q.boundary_seq;
    example = Format.asprintf "%a" Config.Packet.pp q.packet;
    if_new_first = Format.asprintf "%a" Config.Action.pp q.if_new_first;
    if_old_first = Format.asprintf "%a" Config.Action.pp q.if_old_first;
  }

let run ?(mode = Binary_search) ?pool ?precomputed ~(target : Config.Acl.t)
    ~(rule : Config.Acl.rule) ~(oracle : oracle) () =
  let n = List.length target.Config.Acl.rules in
  let acl_at p = insert_rule_at target p rule in
  (* Batch runs hand in boundaries translated from a shared
     multi-rule sweep; the counter still ticks for telemetry parity. *)
  let boundaries ?pool ~target rule =
    match precomputed with
    | Some bs ->
        Obs.Counter.incr ~by:(List.length bs) boundaries_counter;
        bs
    | None -> boundaries ?pool ~target rule
  in
  let asked, ask =
    Disambig_common.asker ~subsystem:"acl" ~counter:questions_counter ~view
      ~oracle
  in
  match mode with
  | Top_bottom -> (
      (* The two extreme placements differ exactly when some adjacent
         boundary does, and the first boundary's witness packet is the
         one the two-extremes comparison finds first. *)
      match boundaries ?pool ~target rule with
      | [] ->
          Ok { acl = acl_at n; position = n; questions = []; boundaries = 0 }
      | b :: _ -> (
          let q =
            {
              position = 0;
              boundary_seq = (List.hd target.Config.Acl.rules).Config.Acl.seq;
              packet = b.packet;
              if_new_first = b.if_new_first;
              if_old_first = b.if_old_first;
            }
          in
          match ask q with
          | Prefer_new ->
              Ok
                {
                  acl = acl_at 0;
                  position = 0;
                  questions = asked ();
                  boundaries = 1;
                }
          | Prefer_old ->
              Ok
                {
                  acl = acl_at n;
                  position = n;
                  questions = asked ();
                  boundaries = 1;
                }))
  | Binary_search ->
      let bs = boundaries ?pool ~target rule in
      let k = List.length bs in
      if k = 0 then
        Ok { acl = acl_at n; position = n; questions = []; boundaries = 0 }
      else begin
        let arr = Array.of_list bs in
        let hi =
          Disambig_common.binary_search ~subsystem:"acl"
            ~probes:probes_counter ~ask arr
        in
        let position = if hi = k then n else arr.(hi).position in
        Ok
          {
            acl = acl_at position;
            position;
            questions = asked ();
            boundaries = k;
          }
      end
  | Linear ->
      let bs = boundaries ?pool ~target rule in
      let answers = List.map (fun q -> (q, ask q)) bs in
      if not (Disambig_common.monotone answers) then
        Error (Inconsistent_intent (asked ()))
      else
        let position =
          Disambig_common.first_new_position ~default:n
            ~position:(fun (q : question) -> q.position)
            answers
        in
        Ok
          {
            acl = acl_at position;
            position;
            questions = asked ();
            boundaries = List.length bs;
          }

let scripted answers : oracle = Disambig_common.scripted answers

(** The ideal user: answers according to a target packet policy. *)
let intent_driven (desired : Config.Packet.t -> Config.Action.t) =
  fun q ->
    if Config.Action.equal (desired q.packet) q.if_new_first then Prefer_new
    else Prefer_old
