lib/config/community_list.mli: Action Bgp Format Sre
