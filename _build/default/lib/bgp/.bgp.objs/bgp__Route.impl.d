lib/bgp/route.ml: Community Format List Netaddr Stdlib String
