open Config

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let parse_ok src =
  match Parser.parse src with
  | Ok db -> db
  | Error m -> Alcotest.failf "parse failed: %s" m

(* ------------------------------------------------------------------ *)
(* ACL overlap analysis                                               *)
(* ------------------------------------------------------------------ *)

let analyze_acl src name =
  Overlap.Acl_overlap.analyze (Option.get (Database.acl (parse_ok src) name))

let test_no_overlap () =
  let s =
    analyze_acl
      {|
ip access-list extended A
 permit tcp host 1.1.1.1 any eq 80
 permit tcp host 2.2.2.2 any eq 80
 permit udp host 1.1.1.1 any eq 53
|}
      "A"
  in
  check_int "overlaps" 0 s.Overlap.Acl_overlap.overlap_pairs;
  check_int "conflicts" 0 s.Overlap.Acl_overlap.conflict_pairs

let test_trivial_subset_conflict () =
  (* The paper's example: a host permit against deny ip any any. *)
  let s =
    analyze_acl
      {|
ip access-list extended A
 permit tcp host 1.1.1.1 host 2.2.2.2
 deny ip any any
|}
      "A"
  in
  check_int "one overlap" 1 s.Overlap.Acl_overlap.overlap_pairs;
  check_int "one conflict" 1 s.Overlap.Acl_overlap.conflict_pairs;
  check_int "but trivial" 0 s.Overlap.Acl_overlap.nontrivial_conflicts

let test_nontrivial_conflict () =
  (* Partial overlap in both directions. *)
  let s =
    analyze_acl
      {|
ip access-list extended A
 permit tcp 10.0.0.0/9 20.0.0.0/8 eq 80
 deny tcp 10.0.0.0/8 20.0.0.0/9 eq 80
|}
      "A"
  in
  check_int "one overlap" 1 s.Overlap.Acl_overlap.overlap_pairs;
  check_int "one conflict" 1 s.Overlap.Acl_overlap.conflict_pairs;
  check_int "non-trivial" 1 s.Overlap.Acl_overlap.nontrivial_conflicts

let test_same_action_overlap_not_conflict () =
  let s =
    analyze_acl
      {|
ip access-list extended A
 permit tcp 10.0.0.0/9 any eq 80
 permit tcp 10.0.0.0/8 any eq 80
|}
      "A"
  in
  check_int "one overlap" 1 s.Overlap.Acl_overlap.overlap_pairs;
  check_int "no conflict" 0 s.Overlap.Acl_overlap.conflict_pairs

let test_overlap_witness () =
  let acl =
    Option.get
      (Database.acl
         (parse_ok
            {|
ip access-list extended A
 permit tcp 10.0.0.0/9 20.0.0.0/8 eq 80
 deny tcp 10.0.0.0/8 20.0.0.0/9 eq 80
|})
         "A")
  in
  match Overlap.Acl_overlap.pairs acl with
  | [ pair ] -> (
      match Overlap.Acl_overlap.witness pair with
      | Some p ->
          check "matches both rules" true
            (Acl.match_rule pair.Overlap.Acl_overlap.rule_a p
            && Acl.match_rule pair.Overlap.Acl_overlap.rule_b p)
      | None -> Alcotest.fail "expected witness packet")
  | ps -> Alcotest.failf "expected one pair, got %d" (List.length ps)

(* ------------------------------------------------------------------ *)
(* Route-map overlap analysis                                         *)
(* ------------------------------------------------------------------ *)

let test_route_map_overlap () =
  let db =
    parse_ok
      {|
ip prefix-list P1 permit 10.0.0.0/16 le 24
ip prefix-list P2 permit 10.0.0.0/16 le 20
ip prefix-list P3 permit 99.0.0.0/24
route-map RM permit 10
 match ip address prefix-list P1
route-map RM deny 20
 match ip address prefix-list P2
route-map RM permit 30
 match ip address prefix-list P3
|}
  in
  let rm = Option.get (Database.route_map db "RM") in
  let s = Overlap.Route_map_overlap.analyze db rm in
  check_int "one overlap" 1 s.Overlap.Route_map_overlap.overlap_pairs;
  check_int "one conflict" 1 s.Overlap.Route_map_overlap.conflict_pairs;
  (* And a witness route matches both stanzas. *)
  match
    ( rm.Route_map.stanzas,
      Overlap.Route_map_overlap.pairs db rm )
  with
  | [ s1; s2; _ ], [ pair ] ->
      check "pair is stanzas 10/20" true
        (pair.Overlap.Route_map_overlap.stanza_a.Route_map.seq = 10
        && pair.Overlap.Route_map_overlap.stanza_b.Route_map.seq = 20);
      (match Overlap.Route_map_overlap.witness db rm s1 s2 with
      | Some r ->
          check "matches both" true
            (Semantics.stanza_matches db s1 r && Semantics.stanza_matches db s2 r)
      | None -> Alcotest.fail "expected witness route")
  | _ -> Alcotest.fail "unexpected structure"

let test_route_map_as_path_infeasible_overlap () =
  (* Two stanzas whose as-path constraints are mutually exclusive do NOT
     overlap even though their prefix conditions do. *)
  let db =
    parse_ok
      {|
ip as-path access-list ONLY44 permit ^44$
ip as-path access-list NOT44 deny ^44$
ip as-path access-list NOT44 permit .*
ip prefix-list P permit 10.0.0.0/8 le 32
route-map RM permit 10
 match ip address prefix-list P
 match as-path ONLY44
route-map RM deny 20
 match ip address prefix-list P
 match as-path NOT44
|}
  in
  let rm = Option.get (Database.route_map db "RM") in
  let s = Overlap.Route_map_overlap.analyze db rm in
  check_int "no overlap" 0 s.Overlap.Route_map_overlap.overlap_pairs

(* ------------------------------------------------------------------ *)
(* Generator calibration: closed-form counts match the analyzer       *)
(* ------------------------------------------------------------------ *)

let prop_acl_gen_calibrated =
  QCheck.Test.make ~name:"ACL generator matches closed-form counts" ~count:60
    QCheck.(triple (int_range 0 10) (int_range 0 6) bool)
    (fun (plain, crossing, trailing) ->
      let rng = Random.State.make [| plain + (100 * crossing) |] in
      let acl =
        Workload.Acl_gen.make ~rng ~name:"GEN" ~plain ~crossing
          ~trailing_deny_any:trailing
      in
      let s = Overlap.Acl_overlap.analyze acl in
      let overlaps, conflicts, nontrivial =
        Workload.Acl_gen.expected ~plain ~crossing ~trailing_deny_any:trailing
      in
      s.Overlap.Acl_overlap.overlap_pairs = overlaps
      && s.Overlap.Acl_overlap.conflict_pairs = conflicts
      && s.Overlap.Acl_overlap.nontrivial_conflicts = nontrivial)

let prop_route_map_gen_calibrated =
  QCheck.Test.make ~name:"route-map generator matches closed-form counts"
    ~count:40
    QCheck.(triple (int_range 0 5) (int_range 0 4) bool)
    (fun (d, w, catch_all) ->
      let disjoint = List.init d (fun i -> if i mod 2 = 0 then Action.Permit else Action.Deny) in
      let windows = List.init w (fun i -> (Action.Permit, if i mod 2 = 0 then Action.Deny else Action.Permit)) in
      let b =
        Workload.Route_map_gen.make ~db:Database.empty ~name:"GEN" ~disjoint
          ~windows ~catch_all
      in
      let s = Overlap.Route_map_overlap.analyze b.Workload.Route_map_gen.db b.Workload.Route_map_gen.route_map in
      s.Overlap.Route_map_overlap.overlap_pairs
      = Workload.Route_map_gen.expected ~disjoint ~windows ~catch_all)

let test_triple_overlap_map () =
  let b =
    Workload.Route_map_gen.triple_overlap ~db:Database.empty ~name:"T"
  in
  let s =
    Overlap.Route_map_overlap.analyze b.Workload.Route_map_gen.db
      b.Workload.Route_map_gen.route_map
  in
  check_int "three pairs" 3 s.Overlap.Route_map_overlap.overlap_pairs;
  check_int "two conflicting" 2 s.Overlap.Route_map_overlap.conflict_pairs

(* ------------------------------------------------------------------ *)
(* Random corpus with tunable density                                 *)
(* ------------------------------------------------------------------ *)

let prop_density_zero_disjoint =
  QCheck.Test.make ~name:"density 0 produces no overlaps" ~count:50
    QCheck.(pair (int_range 2 20) (int_range 0 1000))
    (fun (rules, seed) ->
      let rng = Random.State.make [| seed |] in
      let acl =
        Workload.Random_corpus.acl ~rng ~name:"RND" ~rules ~overlap_density:0.0
      in
      (Overlap.Acl_overlap.analyze acl).Overlap.Acl_overlap.overlap_pairs = 0)

let prop_density_one_overlaps =
  QCheck.Test.make ~name:"density 1 produces overlaps" ~count:50
    QCheck.(pair (int_range 3 20) (int_range 0 1000))
    (fun (rules, seed) ->
      let rng = Random.State.make [| seed |] in
      let acl =
        Workload.Random_corpus.acl ~rng ~name:"RND" ~rules ~overlap_density:1.0
      in
      (Overlap.Acl_overlap.analyze acl).Overlap.Acl_overlap.overlap_pairs > 0)

let prop_density_route_maps =
  QCheck.Test.make ~name:"route-map density endpoints" ~count:30
    QCheck.(pair (int_range 3 10) (int_range 0 1000))
    (fun (stanzas, seed) ->
      let rng = Random.State.make [| seed |] in
      let db0, rm0 =
        Workload.Random_corpus.route_map ~rng ~db:Database.empty ~name:"R0"
          ~stanzas ~overlap_density:0.0
      in
      let rng = Random.State.make [| seed |] in
      let db1, rm1 =
        Workload.Random_corpus.route_map ~rng ~db:Database.empty ~name:"R1"
          ~stanzas ~overlap_density:1.0
      in
      (Overlap.Route_map_overlap.analyze db0 rm0).Overlap.Route_map_overlap.overlap_pairs
      = 0
      && (Overlap.Route_map_overlap.analyze db1 rm1).Overlap.Route_map_overlap.overlap_pairs
         > 0)

(* Fuzz: on random-corpus maps, symbolic execution agrees with the
   concrete semantics for extracted witnesses. *)
let prop_random_corpus_witnesses_sound =
  QCheck.Test.make ~name:"random-corpus overlap witnesses are real" ~count:30
    QCheck.(pair (int_range 3 10) (int_range 0 1000))
    (fun (stanzas, seed) ->
      let rng = Random.State.make [| seed |] in
      let db, rm =
        Workload.Random_corpus.route_map ~rng ~db:Database.empty ~name:"F"
          ~stanzas ~overlap_density:0.6
      in
      List.for_all
        (fun (p : Overlap.Route_map_overlap.pair) ->
          match
            Overlap.Route_map_overlap.witness db rm p.stanza_a p.stanza_b
          with
          | Some r ->
              Semantics.stanza_matches db p.stanza_a r
              && Semantics.stanza_matches db p.stanza_b r
          | None -> false)
        (Overlap.Route_map_overlap.pairs db rm))

(* ------------------------------------------------------------------ *)
(* Corpus-level summaries (cloud at full scale; campus scaled down)   *)
(* ------------------------------------------------------------------ *)

let test_cloud_acl_summary () =
  let acls = Workload.Cloud.acls () in
  check_int "237 ACLs" 237 (List.length acls);
  let s = Overlap.Corpus.summarize_acls acls in
  check_int "total" 237 s.Overlap.Corpus.total;
  check_int "69 with overlaps" 69 s.Overlap.Corpus.with_overlaps;
  check_int "48 heavy" 48 s.Overlap.Corpus.heavy_overlaps;
  check "gateway has over 100" true (s.Overlap.Corpus.max_overlaps > 100)

let test_cloud_route_map_summary () =
  let db, rms = Workload.Cloud.route_maps () in
  check_int "800 route-maps" 800 (List.length rms);
  let s = Overlap.Corpus.summarize_route_maps db rms in
  check_int "140 with overlaps" 140 s.Overlap.Corpus.rm_with_overlaps;
  check_int "3 heavy" 3 s.Overlap.Corpus.rm_heavy_overlaps

let test_campus_summary_scaled () =
  (* 2% scale keeps the test fast; percentages match the paper within
     rounding of the scaled group sizes. *)
  let acls = Workload.Campus.acls ~scale:0.02 () in
  let s = Overlap.Corpus.summarize_acls acls in
  let pct a b = 100.0 *. float_of_int a /. float_of_int b in
  check "around 37.7% conflicting" true
    (abs_float (pct s.Overlap.Corpus.with_conflicts s.Overlap.Corpus.total -. 37.7) < 3.0);
  check "around 18.6% non-trivial" true
    (abs_float (pct s.Overlap.Corpus.with_nontrivial s.Overlap.Corpus.total -. 18.6) < 3.0);
  check "around 27% of conflicting are heavy" true
    (abs_float (pct s.Overlap.Corpus.heavy_conflicts s.Overlap.Corpus.with_conflicts -. 27.0) < 5.0);
  check "around 16.3% of non-trivial are heavy" true
    (abs_float (pct s.Overlap.Corpus.heavy_nontrivial s.Overlap.Corpus.with_nontrivial -. 16.3) < 5.0)

let test_campus_route_maps () =
  let db, rms = Workload.Campus.route_maps () in
  check_int "169 route-maps" 169 (List.length rms);
  let s = Overlap.Corpus.summarize_route_maps db rms in
  check_int "2 with overlaps" 2 s.Overlap.Corpus.rm_with_overlaps;
  check_int "max 3 pairs" 3 s.Overlap.Corpus.rm_max_overlaps

let test_chain_overlaps () =
  (* Two maps applied in sequence to the same neighbor, overlapping
     across maps but not within either (the paper's cloud observation). *)
  let db =
    parse_ok
      {|
ip prefix-list A1 permit 10.0.0.0/16 le 24
ip prefix-list B1 permit 10.0.0.0/16 le 20
ip prefix-list C1 permit 99.0.0.0/24
route-map FIRST permit 10
 match ip address prefix-list A1
route-map SECOND deny 10
 match ip address prefix-list B1
route-map SECOND permit 20
 match ip address prefix-list C1
|}
  in
  let rms =
    [ Option.get (Database.route_map db "FIRST");
      Option.get (Database.route_map db "SECOND") ]
  in
  let pairs = Overlap.Route_map_overlap.chain_pairs db rms in
  check_int "one cross-map overlap" 1 (List.length pairs);
  let p = List.hd pairs in
  check "maps differ" true
    (p.Overlap.Route_map_overlap.map_a <> p.Overlap.Route_map_overlap.map_b)

let test_determinism () =
  let a1 = Workload.Cloud.acls ~seed:7 () in
  let a2 = Workload.Cloud.acls ~seed:7 () in
  check "same corpus for same seed" true (a1 = a2);
  let a3 = Workload.Cloud.acls ~seed:8 () in
  check "different seed differs" true (a1 <> a3)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "overlap"
    [
      ( "acl-analysis",
        [
          Alcotest.test_case "no overlap" `Quick test_no_overlap;
          Alcotest.test_case "trivial subset conflict" `Quick
            test_trivial_subset_conflict;
          Alcotest.test_case "non-trivial conflict" `Quick test_nontrivial_conflict;
          Alcotest.test_case "same action" `Quick
            test_same_action_overlap_not_conflict;
          Alcotest.test_case "witness" `Quick test_overlap_witness;
        ] );
      ( "route-map-analysis",
        [
          Alcotest.test_case "window overlap" `Quick test_route_map_overlap;
          Alcotest.test_case "as-path infeasibility respected" `Quick
            test_route_map_as_path_infeasible_overlap;
        ] );
      ( "generators",
        [
          q prop_acl_gen_calibrated;
          q prop_route_map_gen_calibrated;
          Alcotest.test_case "triple overlap map" `Quick test_triple_overlap_map;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "chain overlaps" `Quick test_chain_overlaps;
          q prop_density_zero_disjoint;
          q prop_density_one_overlaps;
          q prop_density_route_maps;
          q prop_random_corpus_witnesses_sound;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "cloud ACLs" `Slow test_cloud_acl_summary;
          Alcotest.test_case "cloud route-maps" `Slow test_cloud_route_map_summary;
          Alcotest.test_case "campus ACLs (scaled)" `Slow test_campus_summary_scaled;
          Alcotest.test_case "campus route-maps" `Slow test_campus_route_maps;
        ] );
    ]
