lib/config/semantics.ml: Acl Action As_path_list Bgp Community_list Database Format List Prefix_list Route_map
