type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)
(* ------------------------------------------------------------------ *)

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c = c' -> advance st
  | Some c' -> fail "expected %C at offset %d, found %C" c st.pos c'
  | None -> fail "expected %C at offset %d, found end of input" c st.pos

let parse_string_body st =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail "unterminated string at offset %d" st.pos
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some 'n' -> advance st; Buffer.add_char buf '\n'; go ()
        | Some 't' -> advance st; Buffer.add_char buf '\t'; go ()
        | Some 'r' -> advance st; Buffer.add_char buf '\r'; go ()
        | Some 'b' -> advance st; Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance st; Buffer.add_char buf '\012'; go ()
        | Some '"' -> advance st; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance st; Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance st; Buffer.add_char buf '/'; go ()
        | Some 'u' ->
            advance st;
            let hex = Bytes.create 4 in
            for i = 0 to 3 do
              (match peek st with
              | Some c -> Bytes.set hex i c
              | None -> fail "truncated \\u escape");
              advance st
            done;
            let code =
              match int_of_string_opt ("0x" ^ Bytes.to_string hex) with
              | Some c -> c
              | None -> fail "bad \\u escape %S" (Bytes.to_string hex)
            in
            (* Encode as UTF-8. *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            go ()
        | Some c -> fail "bad escape \\%C" c
        | None -> fail "truncated escape")
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> is_num_char c | None -> false) do
    advance st
  done;
  let lit = String.sub st.src start (st.pos - start) in
  match int_of_string_opt lit with
  | Some n -> Int n
  | None -> (
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> fail "bad number %S at offset %d" lit start)

let parse_literal st lit value =
  String.iter (fun c -> expect st c) lit;
  value

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail "unexpected end of input"
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else
        let rec fields acc =
          skip_ws st;
          expect st '"';
          let key = parse_string_body st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              fields ((key, v) :: acc)
          | Some '}' ->
              advance st;
              List.rev ((key, v) :: acc)
          | _ -> fail "expected ',' or '}' at offset %d" st.pos
        in
        Obj (fields [])
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              items (v :: acc)
          | Some ']' ->
              advance st;
              List.rev (v :: acc)
          | _ -> fail "expected ',' or ']' at offset %d" st.pos
        in
        List (items [])
  | Some '"' ->
      advance st;
      String (parse_string_body st)
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail "unexpected character %C at offset %d" c st.pos

let parse_exn src =
  let st = { src; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length src then
    fail "trailing characters at offset %d" st.pos;
  v

let parse src =
  match parse_exn src with v -> Ok v | exception Parse_error m -> Error m

(* ------------------------------------------------------------------ *)
(* Printing                                                           *)
(* ------------------------------------------------------------------ *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_string ?(indent = 2) t =
  let buf = Buffer.create 256 in
  let pad depth =
    if indent > 0 then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (depth * indent) ' ')
    end
  in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f ->
        if Float.is_integer f && Float.abs f < 1e15 then
          Buffer.add_string buf (Printf.sprintf "%.1f" f)
        else Buffer.add_string buf (Printf.sprintf "%.17g" f)
    | String s -> Buffer.add_string buf (escape_string s)
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char buf ',';
            pad (depth + 1);
            go (depth + 1) v)
          items;
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            pad (depth + 1);
            Buffer.add_string buf (escape_string k);
            Buffer.add_string buf (if indent > 0 then ": " else ":");
            go (depth + 1) v)
          fields;
        pad depth;
        Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int n -> Some n | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
let equal = ( = )
let pp fmt t = Format.pp_print_string fmt (to_string t)
