(** Checkers for the five global policies of the paper's Section 5
    evaluation, against a converged simulation of the Figure 3 network:

    1. reused prefixes in the datacenter and management are mutually
       invisible;
    2. the service prefix 10.1.0.0/16 is visible to M;
    3. M prefers the path through R1 for the service prefix;
    4. no bogon prefixes are advertised to the ISPs;
    5. ISP1 and ISP2 are mutually unreachable through our network. *)

type result = { policy : string; holds : bool; detail : string }

val check_all : Simulator.state -> result list
val all_hold : result list -> bool
val pp : Format.formatter -> result list -> unit
