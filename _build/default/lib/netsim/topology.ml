(** Network topologies: eBGP routers, sessions, originated prefixes and
    per-neighbor import/export route-map chains. *)

type neighbor = {
  peer : string; (* remote router name *)
  import : string list; (* route-map chain applied to received routes *)
  export : string list; (* route-map chain applied to advertised routes *)
}

type router = {
  name : string;
  asn : int;
  router_ip : Netaddr.Ipv4.t; (* advertised as next-hop *)
  originated : Netaddr.Prefix.t list;
  neighbors : neighbor list;
  config : Config.Database.t; (* this router's lists and route-maps *)
}

type t = { routers : router list }

exception Invalid_topology of string

let fail fmt = Printf.ksprintf (fun s -> raise (Invalid_topology s)) fmt

let router ?(originated = []) ?(neighbors = [])
    ?(config = Config.Database.empty) ~asn ~router_ip name =
  { name; asn; router_ip; originated; neighbors; config }

let neighbor ?(import = []) ?(export = []) peer = { peer; import; export }

let make routers =
  let names = List.map (fun r -> r.name) routers in
  let dup =
    List.exists
      (fun n -> List.length (List.filter (( = ) n) names) > 1)
      names
  in
  if dup then fail "duplicate router name";
  List.iter
    (fun r ->
      List.iter
        (fun nb ->
          if not (List.mem nb.peer names) then
            fail "router %s has unknown neighbor %s" r.name nb.peer;
          (* Sessions must be bidirectional. *)
          let peer = List.find (fun x -> x.name = nb.peer) routers in
          if not (List.exists (fun nb' -> nb'.peer = r.name) peer.neighbors)
          then fail "session %s -> %s is not bidirectional" r.name nb.peer;
          (* Referenced route-maps must exist on this router. *)
          List.iter
            (fun m ->
              if Config.Database.route_map r.config m = None then
                fail "router %s references undefined route-map %s" r.name m)
            (nb.import @ nb.export))
        r.neighbors)
    routers;
  { routers }

let find t name =
  match List.find_opt (fun r -> r.name = name) t.routers with
  | Some r -> r
  | None -> fail "no router named %s" name

let router_names t = List.map (fun r -> r.name) t.routers

(** Replace one router's configuration (e.g. after an incremental
    update synthesized a new route-map). *)
let with_config t name config =
  {
    routers =
      List.map
        (fun r -> if r.name = name then { r with config } else r)
        t.routers;
  }

let with_router t (r : router) =
  { routers = List.map (fun x -> if x.name = r.name then r else x) t.routers }

let pp fmt t =
  List.iter
    (fun r ->
      Format.fprintf fmt "@[<v>router %s (AS %d, %a)@ " r.name r.asn
        Netaddr.Ipv4.pp r.router_ip;
      List.iter
        (fun p -> Format.fprintf fmt " network %a@ " Netaddr.Prefix.pp p)
        r.originated;
      List.iter
        (fun nb ->
          Format.fprintf fmt " neighbor %s import [%s] export [%s]@ " nb.peer
            (String.concat "," nb.import)
            (String.concat "," nb.export))
        r.neighbors;
      Format.fprintf fmt "@]@.")
    t.routers
