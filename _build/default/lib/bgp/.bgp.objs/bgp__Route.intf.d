lib/bgp/route.mli: Community Format Netaddr
