(** Minimal JSON abstract syntax, parser and printer.

    Implements the subset of JSON needed for the paper's behavioural
    specifications: objects, arrays, strings, integers, floats, booleans
    and null, with standard string escapes. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val parse : string -> (t, string) result
val parse_exn : string -> t

val to_string : ?indent:int -> t -> string
(** Render; with [indent] > 0, pretty-print using that many spaces per
    nesting level, otherwise compact. Default [indent = 2]. *)

val member : string -> t -> t option
(** Object field lookup; [None] for missing fields or non-objects. *)

val to_int : t -> int option
val to_bool : t -> bool option
val to_str : t -> string option
val to_list : t -> t list option
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
