lib/llm/synthesizer.mli: Intent
