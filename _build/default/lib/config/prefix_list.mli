(** Cisco [ip prefix-list] definitions: ordered permit/deny entries over
    prefix-length ranges, evaluated first-match with an implicit
    trailing deny. *)

type entry = { seq : int; action : Action.t; range : Netaddr.Prefix_range.t }
type t = { name : string; entries : entry list (* ascending seq *) }

val make : string -> entry list -> t
(** Sorts entries by sequence number.
    @raise Invalid_argument on duplicate sequence numbers. *)

val entry : ?seq:int -> action:Action.t -> Netaddr.Prefix_range.t -> entry
(** [seq] defaults to 0, meaning "assign on {!append}". *)

val eval : t -> Netaddr.Prefix.t -> Action.t option
(** First matching entry's action; [None] when nothing matches (the
    caller applies Cisco's implicit deny). *)

val permits : t -> Netaddr.Prefix.t -> bool

val next_seq : t -> int
(** The next free sequence number (last + 10, or 10 when empty). *)

val append : t -> entry -> t
(** Append an entry, auto-assigning the next sequence number when the
    given one is 0. *)

val overlapping_pairs : t -> (entry * entry) list
(** Entry pairs whose ranges share at least one matched prefix. *)

val conflicting_pairs : t -> (entry * entry) list
(** Overlapping pairs whose actions differ. *)

val rename : t -> string -> t
val pp_entry : Format.formatter -> string -> entry -> unit
val pp : Format.formatter -> t -> unit
