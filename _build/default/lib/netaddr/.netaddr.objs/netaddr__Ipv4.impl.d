lib/netaddr/ipv4.ml: Format Int Printf String
