type t = { ip : Ipv4.t; len : int }

let make ip len =
  if len < 0 || len > 32 then invalid_arg "Prefix.make";
  { ip = Ipv4.logand ip (Ipv4.mask len); len }

let of_string s =
  match String.index_opt s '/' with
  | None -> None
  | Some i -> (
      let addr = String.sub s 0 i in
      let len = String.sub s (i + 1) (String.length s - i - 1) in
      match (Ipv4.of_string addr, int_of_string_opt len) with
      | Some ip, Some len when len >= 0 && len <= 32 -> Some (make ip len)
      | _ -> None)

let of_string_exn s =
  match of_string s with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Prefix.of_string_exn: %S" s)

let to_string p = Printf.sprintf "%s/%d" (Ipv4.to_string p.ip) p.len
let default = make Ipv4.zero 0
let host ip = make ip 32

let contains_ip p a =
  Ipv4.equal (Ipv4.logand a (Ipv4.mask p.len)) p.ip

let subset p q = p.len >= q.len && contains_ip q p.ip
let overlap p q = subset p q || subset q p
let first p = p.ip

let last p =
  Ipv4.of_int
    (Ipv4.to_int p.ip lor Ipv4.to_int (Ipv4.wildcard_of_mask (Ipv4.mask p.len)))

let split p =
  if p.len = 32 then None
  else
    let len = p.len + 1 in
    let lo = make p.ip len in
    let hi = make (Ipv4.with_bit p.ip p.len true) len in
    Some (lo, hi)

let compare p q =
  match Ipv4.compare p.ip q.ip with 0 -> Int.compare p.len q.len | c -> c

let equal p q = compare p q = 0
let pp fmt p = Format.pp_print_string fmt (to_string p)
