(** Cisco prefix-list entry semantics: a base prefix plus an allowed
    range of prefix lengths.

    The entry [P/l ge g le e] matches a route prefix [Q/m] iff the first
    [l] bits of [Q] equal those of [P] and [g <= m <= e]. Cisco default
    bounds: with neither [ge] nor [le], [g = e = l]; with only [le n],
    the range is [l <= m <= n]; with only [ge n], it is [n <= m <= 32]. *)

type t = private { prefix : Prefix.t; lo : int; hi : int }

val make : Prefix.t -> ge:int option -> le:int option -> t
(** @raise Invalid_argument if the resulting bounds are not
    [prefix.len <= lo <= hi <= 32]. *)

val exact : Prefix.t -> t
(** Match exactly this prefix. *)

val any : t
(** [0.0.0.0/0 le 32]: matches every prefix. *)

val matches : t -> Prefix.t -> bool
(** Does a route prefix fall inside this range? *)

val overlap : t -> t -> bool
(** Do two ranges match at least one common route prefix? *)

val subset : t -> t -> bool
(** [subset a b] iff every prefix matched by [a] is matched by [b]. *)

val witness : t -> Prefix.t
(** Some prefix matched by the range (the base prefix extended to the
    minimum allowed length). *)

val witness_overlap : t -> t -> Prefix.t option
(** A route prefix matched by both ranges, if any. *)

val ge_le : t -> int option * int option
(** Render back the Cisco [ge]/[le] modifiers ([None] when implied). *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
