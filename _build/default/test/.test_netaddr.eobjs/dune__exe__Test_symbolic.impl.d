test/test_symbolic.ml: Acl Action Alcotest Array As_path_list Bdd Bgp Config Database Format Fun List Netaddr Option Packet Parser QCheck QCheck_alcotest Route_map Semantics Sre Symbdd Symbolic
