lib/netsim/policies.ml: Bgp Figure3 Format List Netaddr Printf Simulator String
