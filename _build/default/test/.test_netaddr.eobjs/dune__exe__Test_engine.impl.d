test/test_engine.ml: Action Alcotest As_path_list Bgp Config Database Engine Format List Netaddr Option Packet Parser Printf Route_map Semantics Str_replace
