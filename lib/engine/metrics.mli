(** Observability counters for the symbolic engine. Referencing this
    module also wires the BDD allocation and compile-cache hooks to the
    [obs] lifecycle. *)

val search_filters_calls : Obs.Counter.t
val search_route_policies_calls : Obs.Counter.t
val compare_route_policies_calls : Obs.Counter.t
val compare_acls_calls : Obs.Counter.t

val adjacent_insertions_calls : Obs.Counter.t
(** Batch boundary sweeps ([adjacent_insertions] in either compare
    module), naive or incremental. *)

val adjacent_contexts : Obs.Counter.t
(** Symbolic contexts built during boundary discovery: the incremental
    engine builds one per sweep (per chunk under a pool), the naive
    path one per insertion position. *)

val adjacent_prefix_reuse : Obs.Counter.t
(** Insertion positions whose reachability came from a shared prefix
    execution rather than a fresh two-map re-execution. *)

val boundary_ns : Obs.Histogram.t
(** Wall time of one full boundary sweep. *)

val batch_intents : Obs.Counter.t
(** Intents processed by batch synthesis runs ({!Clarify.Batch}). *)

val batch_conflict_pairs : Obs.Counter.t
(** Genuine inter-intent conflict pairs found by the multi-stanza batch
    sweeps ([batch_insertions] in either compare module). *)

val batch_questions_saved : Obs.Counter.t
(** Disambiguation questions a batch run served from its shared answer
    cache instead of asking the user again. *)

val batch_ns : Obs.Histogram.t
(** Wall time of one full batch synthesis run. *)

val bdd_nodes : Obs.Counter.t
val cache_hits : Obs.Counter.t
val cache_misses : Obs.Counter.t

val manager_nodes : Obs.Gauge.t
(** Live nodes in the sampling domain's BDD unique table, collected at
    read time (snapshots and /metrics scrapes need no publish step). *)

val manager_memo : Obs.Gauge.t
(** Entries across the sampling domain's BDD operation memo tables. *)

val manager_cache_entries : Obs.Gauge.t
(** Entries in the sampling domain's symbolic compilation cache. *)

val manager_arena_occupancy : Obs.Gauge.t
(** Fraction of the sampling domain's arena node-store capacity in use
    (0 under the boxed oracle store). *)

val manager_probe_length : Obs.Gauge.t
(** Mean open-addressing probe length per unique-table lookup in the
    sampling domain's arena. *)

val manager_memo_evictions : Obs.Gauge.t
(** Generation-tag evictions forced by the bounded BDD operation memos
    ([CLARIFY_BDD_MEMO_BOUND]). *)
