(** Constrained-English intent parser — the language-understanding half
    of the simulated LLM.

    Accepted phrasing (case-insensitive; synonyms in parentheses):

    Route-map intents — the first sentence gives match conditions,
    later sentences give set clauses:
    - "permits (allows, accepts) / denies (blocks, drops, rejects) routes"
    - "containing the prefix 100.0.0.0/16 with mask length less than or
      equal to 23" (also "greater than or equal to", "between A and B",
      "at most", "at least")
    - "tagged with the community 300:3" / "communities 1:2 and 3:4"
    - "originating from AS 32", "passing through AS 100"
    - "with local preference 300", "with MED 20" ("metric"), "with tag 7"
    - set sentences: "Their MED (metric) value should be set to 55",
      "Their local preference should be set to 200", "The communities
      65000:1 should be added", "Their communities should be replaced
      with 65000:1", "The AS path should be prepended with 65000 65000",
      "The next hop should be set to 10.0.0.1", "Their tag / weight /
      origin should be set to ...".

    ACL intents (one sentence):
    - "permits tcp (udp, icmp, ip) traffic from <src> to <dst>"
    - endpoints: "anywhere"/"any"/"any destination", "host 1.2.3.4",
      "10.0.0.0/8"
    - "with source/destination port 443", "port above/below N",
      "ports A to B", "for established connections" *)

type error = Unrecognized of string

val error_message : error -> string

val words : string -> string list
(** Lowercased tokens with list punctuation stripped (exposed for the
    classifier). *)

val sentences : string -> string list
(** Split on [". "] boundaries and a trailing period; prefixes like
    10.0.0.0/8 survive intact. *)

val parse_route_map : string -> (Intent.route_map_intent, error) result

val parse : [ `Acl | `Route_map ] -> string -> (Intent.t, error) result
(** Parse under the classified query type. *)
