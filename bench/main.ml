(* The benchmark and experiment harness.

   Running this executable regenerates every table and figure of the
   paper's evaluation (E1 = Section 2 / Figure 2 running example, E2 =
   Section 3.1 cloud study, E3 = Section 3.2 campus study, E4 = Section
   5 / Figures 3-4), prints the disambiguation-mode ablation, and then
   times the substrate with Bechamel microbenchmarks.

   Usage: dune exec bench/main.exe [-- --fast] [--json FILE]
   --fast runs the campus corpus at 10% scale (the full 11,088-ACL
   corpus takes about half a minute); --json additionally writes the
   per-experiment Obs snapshots and Bechamel timings as a
   machine-readable BENCH.json (schema clarify-bench/1) for
   `clarify obs diff`. *)

open Bechamel

let fast = Array.exists (fun a -> a = "--fast") Sys.argv

let json_out =
  let rec find i =
    if i + 1 >= Array.length Sys.argv then None
    else if Sys.argv.(i) = "--json" then Some Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

(* --jobs N overrides CLARIFY_JOBS; default 1 (serial). *)
let pool =
  let rec find i =
    if i + 1 >= Array.length Sys.argv then None
    else if Sys.argv.(i) = "--jobs" then int_of_string_opt Sys.argv.(i + 1)
    else find (i + 1)
  in
  Parallel.Pool.create ?domains:(find 1) ()

(* ------------------------------------------------------------------ *)
(* Experiments                                                        *)
(* ------------------------------------------------------------------ *)

(* Each experiment runs under the observability layer and the flight
   recorder; its counter and span snapshot is printed right after its
   tables so the cost profile (LLM calls, verifier invocations, BDD
   allocations, stage latencies) is visible per experiment, and the
   frozen snapshot is kept for the --json bench file. The layer is
   disabled again before the Bechamel microbenchmarks so they measure
   uninstrumented hot paths. *)
let experiments : (string * Telemetry.Bench.experiment) list ref = ref []

(* Sum one labeled counter family — e.g. llm.tokens.prompt{endpoint=..}
   — across all its label sets in a frozen snapshot. *)
let sum_family snapshot base =
  let prefix = base ^ "{" in
  let plen = String.length prefix in
  List.fold_left
    (fun acc (name, v) ->
      if
        name = base
        || (String.length name >= plen && String.sub name 0 plen = prefix)
      then acc + v
      else acc)
    0 snapshot.Obs.Snapshot.counters

let with_metrics name f =
  Obs.enable ();
  Obs.reset ();
  let recorded = Telemetry.record_to_memory () in
  f ();
  Telemetry.stop ();
  (* BDD manager sizes are gauge collectors, sampled by the capture. *)
  let snapshot = Obs.Snapshot.capture () in
  let events = List.length (recorded ()) in
  experiments := !experiments @ [ (name, { Telemetry.Bench.snapshot; events }) ];
  Format.printf "--- metrics (%s) ---@.%a@.(flight recorder: %d events)@."
    name Obs.pp_report () events;
  let prompt = sum_family snapshot "llm.tokens.prompt"
  and completion = sum_family snapshot "llm.tokens.completion" in
  if prompt + completion > 0 then
    Format.printf
      "(llm tokens: %d prompt + %d completion, est. cost $%.6f)@." prompt
      completion
      (Llm.Tokens.cost ~prompt_tokens:prompt ~completion_tokens:completion);
  Format.printf "@.";
  Obs.disable ()

let run_experiments () =
  let fmt = Format.std_formatter in
  with_metrics "E1" (fun () ->
      Evaluation.E1_running_example.(print fmt (run ()));
      Format.fprintf fmt "@.");
  with_metrics "E2" (fun () ->
      Evaluation.E23_overlap_study.(
        print ~title:"E2: cloud WAN overlap study (Section 3.1)" fmt
          (cloud ~pool ())));
  let scale = if fast then 0.1 else 1.0 in
  Format.fprintf fmt "(campus corpus scale: %.2f%s)@.@." scale
    (if fast then "; drop --fast for full size" else "");
  with_metrics "E3" (fun () ->
      Evaluation.E23_overlap_study.(
        print ~title:"E3: campus overlap study (Section 3.2)" fmt
          (campus ~scale ~pool ())));
  with_metrics "E4" (fun () ->
      Evaluation.E4_lightyear.(print fmt (run ~pool ())))

(* ------------------------------------------------------------------ *)
(* Ablation: disambiguation question counts per mode                  *)
(* ------------------------------------------------------------------ *)

(* A target map with [n] mutually overlapping permit stanzas (nested
   prefix windows) and a new stanza overlapping all of them: the number
   of user questions is what each mode pays. *)
let ablation_scenario n =
  let db = ref Config.Database.empty in
  (* n stanzas on pairwise-disjoint /16s: the catch-all new stanza
     overlaps each one on that stanza's own routes, so every position is
     a boundary. *)
  let stanzas =
    List.init n (fun i ->
        let name = Printf.sprintf "AB%d" i in
        db :=
          Config.Database.add_prefix_list !db
            (Config.Prefix_list.make name
               [
                 Config.Prefix_list.entry ~seq:10 ~action:Config.Action.Permit
                   (Netaddr.Prefix_range.make
                      (Netaddr.Prefix.make
                         (Netaddr.Ipv4.of_octets 10 i 0 0)
                         16)
                      ~ge:None ~le:(Some 24));
               ]);
        Config.Route_map.stanza ~seq:((i + 1) * 10)
          ~matches:[ Config.Route_map.Match_prefix_list [ name ] ]
          ~sets:[ Config.Route_map.Set_metric i ]
          Config.Action.Permit)
  in
  let target = Config.Route_map.make "AB" stanzas in
  db := Config.Database.add_route_map !db target;
  let new_list = "ABNEW" in
  db :=
    Config.Database.add_prefix_list !db
      (Config.Prefix_list.make new_list
         [
           Config.Prefix_list.entry ~seq:10 ~action:Config.Action.Permit
             (Netaddr.Prefix_range.make
                (Netaddr.Prefix.of_string_exn "10.0.0.0/8")
                ~ge:None ~le:(Some 32));
         ]);
  let stanza =
    Config.Route_map.stanza ~seq:999
      ~matches:[ Config.Route_map.Match_prefix_list [ new_list ] ]
      ~sets:[ Config.Route_map.Set_metric 99 ]
      Config.Action.Permit
  in
  (!db, target, stanza)

let run_ablation () =
  Format.printf "=== Ablation: user questions per disambiguation mode ===@.";
  Format.printf
    "(new stanza overlapping all n existing stanzas; user wants position 0)@.";
  Format.printf "%-6s %14s %10s %12s@." "n" "binary-search" "linear"
    "top-bottom";
  List.iter
    (fun n ->
      let db, target, stanza = ablation_scenario n in
      let desired_map = Config.Route_map.insert_at target 0 stanza in
      let desired r = Config.Semantics.eval_route_map db desired_map r in
      let count mode =
        match
          Clarify.Disambiguator.run ~mode ~db ~target ~stanza
            ~oracle:(Clarify.Disambiguator.intent_driven desired)
            ()
        with
        | Ok o -> string_of_int (List.length o.Clarify.Disambiguator.questions)
        | Error _ -> "fail"
      in
      Format.printf "%-6d %14s %10s %12s@." n
        (count Clarify.Disambiguator.Binary_search)
        (count Clarify.Disambiguator.Linear)
        (count Clarify.Disambiguator.Top_bottom))
    [ 2; 4; 8; 16 ];
  Format.printf
    "(top-bottom is the paper prototype's restricted mode: one question but \
     only two candidate positions)@.@."

(* ------------------------------------------------------------------ *)
(* Density sweep: overlap pairs vs generation density                 *)
(* ------------------------------------------------------------------ *)

let run_density_sweep () =
  Format.printf "=== Density sweep: mean overlap/conflict pairs in random 40-rule ACLs ===@.";
  Format.printf "%-10s %10s %10s@." "density" "overlaps" "conflicts";
  List.iter
    (fun density ->
      let n = 20 in
      let totals =
        List.init n (fun i ->
            let rng = Random.State.make [| 7000 + i |] in
            Overlap.Acl_overlap.analyze
              (Workload.Random_corpus.acl ~rng ~name:"SWEEP" ~rules:40
                 ~overlap_density:density))
      in
      let mean f =
        float_of_int (List.fold_left (fun a s -> a + f s) 0 totals)
        /. float_of_int n
      in
      Format.printf "%-10.2f %10.1f %10.1f@." density
        (mean (fun (s : Overlap.Acl_overlap.stats) -> s.overlap_pairs))
        (mean (fun (s : Overlap.Acl_overlap.stats) -> s.conflict_pairs)))
    [ 0.0; 0.25; 0.5; 0.75; 1.0 ];
  Format.printf "@."

(* Wall-clock ns for one run; Bechamel is the wrong tool here (one
   iteration takes seconds, and we want the identical workload on both
   sides, not per-side calibration). *)
let wall_ns f =
  let t0 = Obs.now () in
  let r = f () in
  (r, (Obs.now () -. t0) *. 1e9)

(* ------------------------------------------------------------------ *)
(* BDD store: int-packed arena vs boxed baseline (DESIGN.md §15)      *)
(* ------------------------------------------------------------------ *)

(* Identical operation sequences against fresh managers of each
   backend, so every leg starts from a cold unique table and cold
   memos. Each timed attempt gets a fresh manager and a compacted
   heap (`Gc.compact`), min-of-3, because the boxed store's cost is
   GC-state-dependent — without normalization the ratio swings with
   whatever the previous bench stage left on the major heap.
   Canonicity makes the observable results backend-independent, and
   every run asserts it. Checksums deliberately avoid shared-cost
   traversals inside the timed region (an `is_sat` is O(1)); the
   mk leg also compares `node_count`, which is backend-invariant for
   pure-conjunction workloads; legs whose operands are built through
   disjunctions compare canonical result sizes instead (the boxed
   store's triple-negation disjunction allocates negation
   intermediates, skewing raw node counts). With a
   multi-domain pool, the conjunction workload additionally runs
   across domains layered on one frozen base per backend. *)
let run_bdd_microbench () =
  Format.printf "=== BDD store: int-packed arena vs boxed baseline ===@.";
  let module B = Symbdd.Bdd in
  let module V = Symbdd.Bvec in
  let port = Symbolic.Packet_space.dst_port in
  let ranges =
    List.init 64 (fun i ->
        let lo = i * 389 mod 57344 in
        (lo, lo + 8191))
  in
  let mk_workload () =
    (* Each eq_const is a fresh 16-literal chain: ~64k mk calls
       hammering the unique table. *)
    let s = ref 0 in
    for v = 0 to 4095 do
      if B.is_sat (V.eq_const port v) then incr s
    done;
    (!s, B.node_count ())
  in
  let build_ranges () =
    Array.of_list (List.map (fun (lo, hi) -> V.in_range port lo hi) ranges)
  in
  let range_sizes arr = Array.fold_left (fun acc b -> acc + B.size b) 0 arr in
  let conj_workload () =
    let arr = build_ranges () in
    let s = ref 0 in
    Array.iter
      (fun a -> Array.iter (fun b -> if B.is_sat (B.conj a b) then incr s) arr)
      arr;
    (!s, range_sizes arr)
  in
  let restrict_workload () =
    let arr = build_ranges () in
    let s = ref 0 in
    Array.iter
      (fun a ->
        List.iter
          (fun v ->
            if B.is_sat (B.restrict v true a) then incr s;
            if B.is_sat (B.restrict v false a) then incr s)
          (V.vars port))
      arr;
    (!s, range_sizes arr)
  in
  let bigstore_workload () =
    (* Hundreds of thousands of live nodes: this is where the flat
       arena pulls away hardest — the boxed store's nodes are traced
       by every major GC slice, Bigarray storage is invisible to it. *)
    let blocks =
      Array.init 8 (fun k ->
          B.disj_list
            (List.init 1024 (fun i ->
                 V.eq_const port (((i * 16) + (k * 3)) land 0xffff))))
    in
    let s = ref 0 in
    Array.iter
      (fun a ->
        Array.iter (fun b -> if B.is_sat (B.conj a b) then incr s) blocks)
      blocks;
    (!s, Array.fold_left (fun acc b -> acc + B.size b) 0 blocks)
  in
  let time_leg boxed w =
    let best = ref infinity and result = ref (0, 0) in
    for _ = 1 to 3 do
      Gc.compact ();
      let r, ns =
        B.with_manager (B.Manager.create ~boxed ()) (fun () -> wall_ns w)
      in
      result := r;
      best := Float.min !best ns
    done;
    (!result, !best)
  in
  let legs =
    [
      ("mk", mk_workload);
      ("conj", conj_workload);
      ("restrict", restrict_workload);
      ("bigstore", bigstore_workload);
    ]
  in
  let timings =
    ref
      (List.concat_map
         (fun (leg, w) ->
           let arena_sum, arena_ns = time_leg false w in
           let boxed_sum, boxed_ns = time_leg true w in
           if arena_sum <> boxed_sum then
             failwith (leg ^ ": arena BDD workload differs from boxed");
           Format.printf
             "%-10s boxed %9.2f ms  arena %9.2f ms  speedup %.1fx  (min of \
              3)@."
             leg (boxed_ns /. 1e6) (arena_ns /. 1e6) (boxed_ns /. arena_ns);
           [
             (Printf.sprintf "bdd/%s-arena" leg, arena_ns);
             (Printf.sprintf "bdd/%s-boxed" leg, boxed_ns);
           ])
         legs)
  in
  if Parallel.Pool.domains pool > 1 then begin
    (* The all-pairs conjunctions sharded across the pool, every
       worker under a private delta on one frozen base holding the
       operand BDDs. *)
    let pairs =
      let n = List.length ranges in
      List.concat
        (List.init n (fun i -> List.init n (fun j -> (i, j))))
    in
    let x4 boxed =
      let base = B.Manager.create ~boxed () in
      let arr = B.with_manager base build_ranges in
      B.Manager.freeze base;
      wall_ns (fun () ->
          List.fold_left ( + ) 0
            (* Single conjunctions are far below task-bookkeeping cost,
               so batch them 64 per stealable task. *)
            (Parallel.Pool.map ~grain:64 ~bdd_base:base pool
               ~f:(fun (i, j) ->
                 if B.is_sat (B.conj arr.(i) arr.(j)) then 1 else 0)
               pairs))
    in
    let a_sum, a_ns = x4 false in
    let b_sum, b_ns = x4 true in
    let serial_sum, _ =
      B.with_manager (B.Manager.create ()) (fun () -> conj_workload ())
    in
    if a_sum <> serial_sum || b_sum <> serial_sum then
      failwith "pooled BDD conj workload differs from serial";
    Format.printf
      "conj x%-2d   boxed %9.2f ms  arena %9.2f ms  speedup %.1fx@."
      (Parallel.Pool.domains pool)
      (b_ns /. 1e6) (a_ns /. 1e6) (b_ns /. a_ns);
    timings :=
      !timings
      @ [ ("bdd/conj-arena-x4", a_ns); ("bdd/conj-boxed-x4", b_ns) ]
  end;
  Format.printf "@.";
  !timings

(* ------------------------------------------------------------------ *)
(* Boundary sweeps: naive vs incremental (DESIGN.md §11)              *)
(* ------------------------------------------------------------------ *)

(* Same ablation target, both strategies, asserted identical on every
   run. The naive path re-executes two n-stanza maps per insertion
   position (O(n²) cell work per sweep); the incremental path compiles
   the target once and derives every boundary from the shared prefix
   execution. The CI gate holds incremental to >= 3x naive at width
   128. *)
let run_disambig_comparison () =
  Format.printf "=== Boundary sweeps: naive vs incremental ===@.";
  let timings = ref [] in
  List.iter
    (fun n ->
      let db, target, stanza = ablation_scenario n in
      let naive, naive_ns =
        wall_ns (fun () ->
            Engine.Compare_route_policies.adjacent_insertions ~naive:true ~db
              ~target stanza)
      in
      let incr, incr_ns =
        wall_ns (fun () ->
            Engine.Compare_route_policies.adjacent_insertions ~naive:false ~db
              ~target stanza)
      in
      if naive <> incr then failwith "incremental sweep differs from naive";
      timings :=
        (Printf.sprintf "disambig/incremental-w%d" n, incr_ns)
        :: (Printf.sprintf "disambig/naive-w%d" n, naive_ns)
        :: !timings;
      Format.printf
        "width %-4d naive %9.2f ms  incremental %9.2f ms  speedup %.1fx@." n
        (naive_ns /. 1e6) (incr_ns /. 1e6)
        (naive_ns /. incr_ns);
      if Parallel.Pool.domains pool > 1 then begin
        let pooled, pool_ns =
          wall_ns (fun () ->
              Engine.Compare_route_policies.adjacent_insertions ~naive:false
                ~pool ~db ~target stanza)
        in
        if pooled <> incr then failwith "pooled sweep differs from serial";
        timings :=
          (Printf.sprintf "disambig/incremental-w%d-par" n, pool_ns)
          :: !timings;
        Format.printf
          "width %-4d pooled x%d  %9.2f ms  speedup over naive %.1fx@." n
          (Parallel.Pool.domains pool) (pool_ns /. 1e6)
          (naive_ns /. pool_ns)
      end)
    [ 8; 32; 128 ];
  (* The same width-128 incremental sweep under fresh managers of each
     store backend — cold compile caches on both sides, so the legs
     compare the stores, not cache warmth. Results are asserted
     identical to the ambient run above. CI holds the boxed/arena
     ratio to >= 5x. *)
  let db, target, stanza = ablation_scenario 128 in
  let reference =
    Engine.Compare_route_policies.adjacent_insertions ~naive:false ~db ~target
      stanza
  in
  let time_backend boxed =
    let best = ref infinity and result = ref reference in
    for _ = 1 to 3 do
      let r, ns =
        Symbdd.Bdd.with_manager
          (Symbdd.Bdd.Manager.create ~boxed ())
          (fun () ->
            wall_ns (fun () ->
                Engine.Compare_route_policies.adjacent_insertions ~naive:false
                  ~db ~target stanza))
      in
      result := r;
      best := Float.min !best ns
    done;
    (!result, !best)
  in
  let arena_r, arena_ns = time_backend false in
  let boxed_r, boxed_ns = time_backend true in
  if arena_r <> reference || boxed_r <> reference then
    failwith "backend sweep differs from ambient";
  Format.printf
    "width 128  boxed store %9.2f ms  arena %9.2f ms  speedup %.1fx  (min of \
     3, fresh managers)@."
    (boxed_ns /. 1e6) (arena_ns /. 1e6)
    (boxed_ns /. arena_ns);
  timings :=
    ("disambig/arena-w128", arena_ns)
    :: ("disambig/boxed-w128", boxed_ns)
    :: !timings;
  Format.printf "@.";
  List.rev !timings

(* ------------------------------------------------------------------ *)
(* Parallel speedup: serial vs pool on the corpus sweeps and E4       *)
(* ------------------------------------------------------------------ *)

let pp_speedup name serial_ns par_ns =
  Format.printf "%-24s %10.0f ms serial %10.0f ms x%d  speedup %.2fx@." name
    (serial_ns /. 1e6) (par_ns /. 1e6)
    (Parallel.Pool.domains pool)
    (serial_ns /. par_ns)

(* Runs only when a multi-domain pool was requested; returns the
   timings for the bench JSON so `clarify obs diff` tracks them. The
   serial and parallel results are asserted identical — the
   determinism contract, checked on every bench run. *)
let run_parallel_comparison () =
  if Parallel.Pool.domains pool <= 1 then begin
    Format.printf
      "(parallel comparison skipped: serial pool; use --jobs N or \
       CLARIFY_JOBS)@.@.";
    []
  end
  else begin
    Format.printf "=== Parallel speedup (%d domains) ===@."
      (Parallel.Pool.domains pool);
    let corpus =
      Workload.Campus.generate ~scale:(if fast then 0.05 else 0.25) ()
    in
    let acls = corpus.Workload.Campus.acls in
    let s_sum, overlap_serial =
      wall_ns (fun () -> Overlap.Corpus.summarize_acls acls)
    in
    let p_sum, overlap_par =
      wall_ns (fun () -> Overlap.Corpus.summarize_acls ~pool acls)
    in
    if s_sum <> p_sum then
      failwith "parallel overlap summary differs from serial";
    pp_speedup "overlap/campus-sweep" overlap_serial overlap_par;
    (* The same sweeps on the boxed baseline store: corpus sweeps
       create their base managers internally, so the backend toggle
       rides the CLARIFY_BOXED_BDD environment switch. Summaries are
       asserted equal to the arena runs — same partition, same counts.
       CI holds parallel(boxed)/parallel(arena) to >= 5x. *)
    Unix.putenv Symbdd.Bdd.Manager.boxed_env "1";
    let bs_sum, overlap_serial_boxed =
      wall_ns (fun () -> Overlap.Corpus.summarize_acls acls)
    in
    let bp_sum, overlap_par_boxed =
      wall_ns (fun () -> Overlap.Corpus.summarize_acls ~pool acls)
    in
    Unix.putenv Symbdd.Bdd.Manager.boxed_env "0";
    if bs_sum <> s_sum || bp_sum <> s_sum then
      failwith "boxed overlap summary differs from arena";
    pp_speedup "overlap/campus-boxed" overlap_serial_boxed overlap_par_boxed;
    Format.printf "boxed -> arena: serial %.1fx, parallel x%d %.1fx@."
      (overlap_serial_boxed /. overlap_serial)
      (Parallel.Pool.domains pool)
      (overlap_par_boxed /. overlap_par);
    let s_e4, e4_serial = wall_ns (fun () -> Evaluation.E4_lightyear.run ()) in
    let p_e4, e4_par =
      wall_ns (fun () -> Evaluation.E4_lightyear.run ~pool ())
    in
    if s_e4.Evaluation.E4_lightyear.stats <> p_e4.Evaluation.E4_lightyear.stats
    then failwith "parallel E4 stats differ from serial";
    pp_speedup "e4/three-routers" e4_serial e4_par;
    Format.printf "@.";
    [
      ("overlap_parallel/serial", overlap_serial);
      ("overlap_parallel/parallel", overlap_par);
      ("overlap_parallel/serial-boxed", overlap_serial_boxed);
      ("overlap_parallel/parallel-boxed", overlap_par_boxed);
      ("e4_parallel/serial", e4_serial);
      ("e4_parallel/parallel", e4_par);
    ]
  end

(* ------------------------------------------------------------------ *)
(* Batch synthesis: batch-of-N vs N sequential pipeline runs          *)
(* ------------------------------------------------------------------ *)

(* N pairwise match-disjoint intents against one wide target map: the
   batch pipeline compiles the target's partition once for all N
   boundary sets, the sequential baseline once per intent. Final
   configurations are asserted identical on every bench run, and the
   user-facing question counts are exported as pseudo-benchmarks so CI
   can gate questions(batch) <= questions(sequential). *)
let batch_scenario ~intents =
  let db, _, _ = ablation_scenario 16 in
  let prompts =
    List.init intents (fun k ->
        if k mod 2 = 0 then
          Printf.sprintf
            "Write a route-map stanza that permits routes containing the \
             prefix 10.%d.0.0/16 with mask length less than or equal to 24. \
             Their MED value should be set to %d."
            k (50 + k)
        else
          Printf.sprintf
            "Write a route-map stanza that denies routes containing the \
             prefix 10.%d.0.0/16 with mask length less than or equal to 24."
            k)
  in
  (db, prompts)

let run_batch_comparison () =
  Format.printf "=== Batch synthesis: batch-of-N vs N sequential runs ===@.";
  let intents = 6 in
  let db, prompts = batch_scenario ~intents in
  let seq_questions = ref 0 in
  let seq_db, seq_ns =
    wall_ns (fun () ->
        let llm = Llm.Mock_llm.create () in
        List.fold_left
          (fun db prompt ->
            match
              Clarify.Pipeline.run_route_map_update ~llm
                ~oracle:(fun _ -> Clarify.Disambiguator.Prefer_new)
                ~db ~target:"AB" ~prompt ()
            with
            | Ok r ->
                seq_questions :=
                  !seq_questions + List.length r.Clarify.Pipeline.questions;
                r.Clarify.Pipeline.db
            | Error e -> failwith (Clarify.Pipeline.error_to_string e))
          db prompts)
  in
  let run_batch ?pool () =
    let llm = Llm.Mock_llm.create () in
    let items =
      List.map
        (fun prompt -> Clarify.Batch.Route_map_update { target = "AB"; prompt })
        prompts
    in
    match
      Clarify.Batch.run ?pool ~llm
        ~oracle:(fun ~intent:_ ~target:_ _ -> Clarify.Disambig_common.Prefer_new)
        ~db items
    with
    | Ok r -> r
    | Error e -> failwith (Clarify.Batch.error_to_string e)
  in
  let report, batch_ns = wall_ns (fun () -> run_batch ()) in
  if
    Config.Parser.to_string report.Clarify.Batch.db
    <> Config.Parser.to_string seq_db
  then failwith "batch configuration differs from sequential";
  let batch_questions =
    List.fold_left
      (fun n -> function
        | Clarify.Batch.Route_map_result rr ->
            n + List.length rr.Clarify.Pipeline.questions
        | Clarify.Batch.Acl_result ar ->
            n + List.length ar.Clarify.Pipeline.questions)
      0 report.Clarify.Batch.items
    - report.Clarify.Batch.questions_saved
  in
  if batch_questions > !seq_questions then
    failwith "batch asked more questions than sequential";
  Format.printf
    "batch of %-2d  sequential %9.2f ms  batch %9.2f ms  speedup %.1fx@."
    intents (seq_ns /. 1e6) (batch_ns /. 1e6) (seq_ns /. batch_ns);
  Format.printf "questions: sequential %d, batch %d (saved %d)@."
    !seq_questions batch_questions report.Clarify.Batch.questions_saved;
  let timings =
    ref
      [
        (Printf.sprintf "batch/sequential-%d" intents, seq_ns);
        (Printf.sprintf "batch/batch-of-%d" intents, batch_ns);
        ("batch/questions-sequential", float_of_int !seq_questions);
        ("batch/questions-batch", float_of_int batch_questions);
      ]
  in
  if Parallel.Pool.domains pool > 1 then begin
    let pooled, pool_ns = wall_ns (fun () -> run_batch ~pool ()) in
    if
      Config.Parser.to_string pooled.Clarify.Batch.db
      <> Config.Parser.to_string seq_db
    then failwith "pooled batch configuration differs from serial";
    timings :=
      !timings @ [ (Printf.sprintf "batch/batch-of-%d-par" intents, pool_ns) ];
    Format.printf "batch of %-2d  pooled x%d  %9.2f ms  speedup %.1fx@." intents
      (Parallel.Pool.domains pool) (pool_ns /. 1e6) (seq_ns /. pool_ns)
  end;
  Format.printf "@.";
  !timings

(* ------------------------------------------------------------------ *)
(* Observability overhead: sharded vs mutexed recording               *)
(* ------------------------------------------------------------------ *)

(* The sharded hot path (per-domain DLS shard, no lock) against the
   design it replaced (one mutex-guarded cell), serial and with four
   domains hammering the same series; then the end-to-end cost of
   leaving the layer ON during the width-128 incremental sweep, which
   CI holds to <= 5%. Merge exactness under contention is asserted on
   every bench run: domains x per-domain increments must survive the
   shard merge losslessly. *)
let run_obs_overhead () =
  Format.printf
    "=== Observability overhead: sharded vs mutexed recording ===@.";
  let iters = 1_000_000 in
  let contenders = 4 in
  Obs.enable ();
  Obs.reset ();
  let c = Obs.Counter.make "bench.obs.incr" in
  let h = Obs.Histogram.make "bench.obs.observe" in
  let (), sharded_ns =
    wall_ns (fun () ->
        for _ = 1 to iters do
          Obs.Counter.incr c
        done)
  in
  if Obs.Counter.value c <> iters then failwith "sharded counter lost updates";
  let (), hist_ns =
    wall_ns (fun () ->
        for i = 1 to iters do
          Obs.Histogram.observe_ns h (float_of_int i)
        done)
  in
  let (), sharded_par_ns =
    wall_ns (fun () ->
        let ds =
          List.init contenders (fun _ ->
              Domain.spawn (fun () ->
                  for _ = 1 to iters do
                    Obs.Counter.incr c
                  done))
        in
        List.iter Domain.join ds)
  in
  if Obs.Counter.value c <> (contenders + 1) * iters then
    failwith "sharded counter lost updates under contention";
  Obs.reset ();
  Obs.disable ();
  let m = Mutex.create () in
  let cell = ref 0 in
  let locked_incr () =
    Mutex.lock m;
    incr cell;
    Mutex.unlock m
  in
  let (), mutex_ns =
    wall_ns (fun () ->
        for _ = 1 to iters do
          locked_incr ()
        done)
  in
  let (), mutex_par_ns =
    wall_ns (fun () ->
        let ds =
          List.init contenders (fun _ ->
              Domain.spawn (fun () ->
                  for _ = 1 to iters do
                    locked_incr ()
                  done))
        in
        List.iter Domain.join ds)
  in
  if !cell <> (contenders + 1) * iters then
    failwith "mutexed counter lost updates";
  let per_op total ops = total /. float_of_int ops in
  Format.printf
    "counter incr        sharded %6.1f ns/op   mutexed %6.1f ns/op  (serial)@."
    (per_op sharded_ns iters) (per_op mutex_ns iters);
  Format.printf
    "counter incr        sharded %6.1f ns/op   mutexed %6.1f ns/op  (%d \
     domains, one series)@."
    (per_op sharded_par_ns (contenders * iters))
    (per_op mutex_par_ns (contenders * iters))
    contenders;
  Format.printf "histogram observe   sharded %6.1f ns/op  (serial)@."
    (per_op hist_ns iters);
  (* End to end: the width-128 incremental sweep with the layer off vs
     on, interleaved min-of-5 to shed scheduler noise. Both sides run
     once first to warm the symbolic compilation caches. *)
  let db, target, stanza = ablation_scenario 128 in
  let sweep () =
    ignore
      (Engine.Compare_route_policies.adjacent_insertions ~naive:false ~db
         ~target stanza)
  in
  sweep ();
  (* The arena roughly halved the sweep, so fixed ~1ms scheduler noise
     is now a larger fraction of it: more interleaved rounds keep the
     5% overhead gate from flaking. *)
  let min_of = 9 in
  let off = ref infinity and on = ref infinity in
  for _ = 1 to min_of do
    Obs.disable ();
    let (), t_off = wall_ns sweep in
    Obs.enable ();
    Obs.reset ();
    let (), t_on = wall_ns sweep in
    off := Float.min !off t_off;
    on := Float.min !on t_on
  done;
  Obs.reset ();
  Obs.disable ();
  Format.printf
    "disambig w128       off %9.2f ms   on %9.2f ms   overhead %+.1f%%  (min \
     of %d)@.@."
    (!off /. 1e6) (!on /. 1e6)
    ((!on -. !off) /. !off *. 100.)
    min_of;
  [
    ("obs/counter-incr", per_op sharded_ns iters);
    ("obs/counter-incr-mutex", per_op mutex_ns iters);
    ("obs/counter-incr-contended", per_op sharded_par_ns (contenders * iters));
    ( "obs/counter-incr-mutex-contended",
      per_op mutex_par_ns (contenders * iters) );
    ("obs/histogram-observe", per_op hist_ns iters);
    ("obs/disambig-w128-off", !off);
    ("obs/disambig-w128-on", !on);
  ]

(* ------------------------------------------------------------------ *)
(* Fleet scaling: per-router synthesis cost must stay flat            *)
(* ------------------------------------------------------------------ *)

(* E5 at 64 and 256 routers with the configured pool. Per-router wall
   must not grow with fleet size: the BDD manager is scratch per
   router and the analytics fold is constant-memory, so there is no
   shared state to congest. CI holds per-router@256 <= 1.25x
   per-router@64 (min-of-3 each). *)
let run_fleet_scaling () =
  Format.printf "=== Fleet scaling: per-router cost vs fleet size ===@.";
  let min_of = 3 in
  let time routers =
    let best = ref infinity in
    let questions = ref 0 in
    for _ = 1 to min_of do
      let r, ns =
        wall_ns (fun () -> Evaluation.E5_fleet.run ~pool ~routers ())
      in
      questions :=
        List.fold_left
          (fun a (x : Evaluation.E5_fleet.router_result) -> a + x.questions)
          0 r.Evaluation.E5_fleet.results;
      best := Float.min !best ns
    done;
    (!best, !questions)
  in
  let t64, q64 = time 64 in
  let t256, q256 = time 256 in
  let per64 = t64 /. 64. and per256 = t256 /. 256. in
  Format.printf
    "e5 fat-tree  64 routers %8.1f ms (%6.2f ms/router, %d questions)@."
    (t64 /. 1e6) (per64 /. 1e6) q64;
  Format.printf
    "e5 fat-tree 256 routers %8.1f ms (%6.2f ms/router, %d questions)@."
    (t256 /. 1e6) (per256 /. 1e6) q256;
  Format.printf "per-router growth 64 -> 256: %.2fx@.@." (per256 /. per64);
  [
    ("fleet/e5-64", t64);
    ("fleet/e5-256", t256);
    ("fleet/per-router-64", per64);
    ("fleet/per-router-256", per256);
  ]

(* ------------------------------------------------------------------ *)
(* Scheduler skew: coarse fork-join chunks vs per-item stealing       *)
(* ------------------------------------------------------------------ *)

(* 64 boundary-sweep scenarios, the first 8 at full width [w] and the
   remaining 56 at [w/8]: under the pre-scheduler one-contiguous-
   chunk-per-worker split (reconstructed here with a fat grain) the
   heavy head lands on one or two workers while the rest go idle; with
   per-item tasks the idle domains steal the heavy chunk apart. The CI
   gate holds steal >= 2x coarse at both widths; results are asserted
   identical to the serial sweep on every timed attempt. *)
let run_sched_skew () =
  if Parallel.Pool.domains pool <= 1 then []
  else begin
    Format.printf
      "=== Scheduler skew: coarse chunks vs per-item stealing ===@.";
    let nscen = 64 and heavy = 8 in
    let timings = ref [] in
    List.iter
      (fun w ->
        let scenarios =
          List.init nscen (fun i ->
              ablation_scenario (if i < heavy then w else w / 8))
        in
        let sweep (db, target, stanza) =
          Engine.Compare_route_policies.adjacent_insertions ~naive:false ~db
            ~target stanza
        in
        let serial = List.map sweep scenarios in
        let time grain =
          let best = ref infinity in
          for _ = 1 to 3 do
            let r, ns =
              wall_ns (fun () ->
                  Parallel.Pool.map ~grain pool ~f:sweep scenarios)
            in
            if r <> serial then failwith "skewed sweep differs from serial";
            best := Float.min !best ns
          done;
          !best
        in
        let d = Parallel.Pool.domains pool in
        let coarse = time ((nscen + d - 1) / d) in
        let steal = time 1 in
        Format.printf
          "width %-4d coarse %9.2f ms  steal %9.2f ms  speedup %.2fx  (8 \
           heavy + %d light, min of 3)@."
          w (coarse /. 1e6) (steal /. 1e6) (coarse /. steal) (nscen - heavy);
        timings :=
          !timings
          @ [
              (Printf.sprintf "sched/skew-boundaries-w%d-coarse" w, coarse);
              (Printf.sprintf "sched/skew-boundaries-w%d-steal" w, steal);
            ])
      [ 32; 128 ];
    Format.printf "@.";
    !timings
  end

(* ------------------------------------------------------------------ *)
(* Fleet skew: pathological fat-tree, 5% of routers carry 10x work    *)
(* ------------------------------------------------------------------ *)

(* E5 at 256 routers with the first 13 plans replayed 10x (one pod of
   fat edge routers). Coarse contiguous chunks serialize the heavy pod
   behind one worker; stealing spreads it. Router configs and question
   counts are asserted byte-identical to the serial run on every timed
   attempt.

   The straggler figure is p99/p50 of per-router *stretch*: each
   router's build wall under the stealing pool divided by the same
   router's wall in the serial run. Raw walls are 10x bimodal by
   construction and per-step costs vary ~5x across roles, but a router
   compared against itself cancels all intrinsic heterogeneity — the
   ratio only grows when scheduling makes some routers pay (a task
   descheduled mid-build behind a fat neighbor, contention in the
   steal loop). CI holds the tail to <= 1.5: even the p99 router costs
   at most 1.5x its undisturbed serial latency. *)
let run_fleet_skew () =
  if Parallel.Pool.domains pool <= 1 then []
  else begin
    Format.printf "=== Fleet skew: 5%% of routers carry 10x stanzas ===@.";
    let routers = 256 in
    let skew = Some (routers / 20, 10) in
    let view (r : Evaluation.E5_fleet.result) =
      List.map
        (fun (x : Evaluation.E5_fleet.router_result) ->
          (x.router, x.questions, Config.Parser.to_string x.config))
        r.Evaluation.E5_fleet.results
    in
    let serial_r = Evaluation.E5_fleet.run ?skew ~routers () in
    let serial = view serial_r in
    let time grain =
      let best = ref infinity and attempts = ref [] in
      for _ = 1 to 2 do
        let r, ns =
          wall_ns (fun () ->
              Evaluation.E5_fleet.run ?skew ~grain ~pool ~routers ())
        in
        if view r <> serial then failwith "skewed fleet differs from serial";
        attempts := r :: !attempts;
        best := Float.min !best ns
      done;
      (!best, !attempts)
    in
    let d = Parallel.Pool.domains pool in
    let coarse, _ = time ((routers + d - 1) / d) in
    let steal, steal_rs = time 1 in
    let walls r =
      List.map
        (fun (x : Evaluation.E5_fleet.router_result) -> Float.max 1. x.wall_ns)
        r.Evaluation.E5_fleet.results
    in
    (* Per-router minimum across the steal attempts: a router that is
       slow in every run pays a systematic scheduling cost; a one-off
       spike is OS noise the tail gate should not flake on. *)
    let steal_walls =
      List.fold_left
        (fun acc r -> List.map2 Float.min acc (walls r))
        (walls (List.hd steal_rs))
        (List.tl steal_rs)
    in
    let stretches =
      List.map2 (fun p s -> p /. s) steal_walls (walls serial_r)
      |> List.sort compare |> Array.of_list
    in
    let pct p =
      stretches.(min (Array.length stretches - 1)
                   (p * Array.length stretches / 100))
    in
    let p50 = pct 50 and p99 = pct 99 in
    Format.printf
      "e5 skewed %-4d coarse %9.1f ms  steal %9.1f ms  speedup %.2fx  (min \
       of 2)@."
      routers (coarse /. 1e6) (steal /. 1e6) (coarse /. steal);
    Format.printf
      "per-router stretch vs serial: p50 %.2f  p99 %.2f  p99/p50 %.2f@.@."
      p50 p99 (p99 /. p50);
    [
      ("fleet/e5-skewed-256-coarse", coarse);
      ("fleet/e5-skewed-256", steal);
      ("fleet/e5-skewed-p99-p50", p99 /. p50);
    ]
  end

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                           *)
(* ------------------------------------------------------------------ *)

let isp_out_config = Evaluation.E1_running_example.isp_out_config

let parse_ok src =
  match Config.Parser.parse src with Ok db -> db | Error m -> failwith m

let bench_parser =
  Test.make ~name:"config-parse/isp_out"
    (Staged.stage (fun () -> ignore (parse_ok isp_out_config)))

let bench_bdd_route_space =
  let range =
    Netaddr.Prefix_range.make
      (Netaddr.Prefix.of_string_exn "100.0.0.0/16")
      ~ge:None ~le:(Some 23)
  in
  Test.make ~name:"bdd/prefix-range-encode"
    (Staged.stage (fun () ->
         Symbdd.Bdd.clear_caches ();
         ignore (Symbolic.Route_ctx.of_prefix_range range)))

(* Ablation B1: one port interval as a range predicate vs a disjunction
   of 256 equality predicates. *)
let bench_port_range =
  Test.make ~name:"bdd/port-interval-range"
    (Staged.stage (fun () ->
         Symbdd.Bdd.clear_caches ();
         ignore (Symbdd.Bvec.in_range Symbolic.Packet_space.dst_port 1024 8191)))

let bench_port_enum =
  Test.make ~name:"bdd/port-interval-enum256"
    (Staged.stage (fun () ->
         Symbdd.Bdd.clear_caches ();
         ignore
           (Symbdd.Bdd.disj_list
              (List.init 256 (fun i ->
                   Symbdd.Bvec.eq_const Symbolic.Packet_space.dst_port
                     (1024 + i))))))

let bench_aspath_dfa =
  Test.make ~name:"sre/aspath-intersection"
    (Staged.stage (fun () ->
         let a = Sre.As_path_regex.compile "_32$" in
         let b = Sre.As_path_regex.compile "^(44|55)_" in
         ignore (Sre.As_path_regex.sat_witness ~pos:[ a; b ] ~neg:[])))

let bench_acl_overlap =
  let acl =
    let rng = Random.State.make [| 7 |] in
    Workload.Acl_gen.make ~rng ~name:"BENCH" ~plain:20 ~crossing:5
      ~trailing_deny_any:true
  in
  Test.make ~name:"overlap/acl-31-rules"
    (Staged.stage (fun () -> ignore (Overlap.Acl_overlap.analyze acl)))

let fig2a_db = parse_ok Test_configs.fig2a
let fig2b_db = parse_ok Test_configs.fig2b

let bench_compare =
  let rma = Option.get (Config.Database.route_map fig2a_db "ISP_OUT") in
  let rmb = Option.get (Config.Database.route_map fig2b_db "ISP_OUT") in
  Test.make ~name:"engine/compareRoutePolicies"
    (Staged.stage (fun () ->
         ignore
           (Engine.Compare_route_policies.compare ~db_a:fig2a_db
              ~db_b:fig2b_db rma rmb)))

let bench_verify =
  let db =
    parse_ok
      {|ip community-list expanded COM_LIST permit _300:3_
ip prefix-list PREFIX_100 permit 100.0.0.0/16 le 23
route-map SET_METRIC permit 10
 match community COM_LIST
 match ip address prefix-list PREFIX_100
 set metric 55|}
  in
  let rm = Option.get (Config.Database.route_map db "SET_METRIC") in
  let spec =
    Result.get_ok
      (Engine.Spec.of_string
         {|{"permit": true, "prefix": ["100.0.0.0/16:16-23"], "community": "/_300:3_/", "set": {"metric": 55}}|})
  in
  Test.make ~name:"engine/searchRoutePolicies"
    (Staged.stage (fun () ->
         ignore (Engine.Search_route_policies.verify_stanza db rm spec)))

let bench_disambiguate =
  Test.make ~name:"clarify/binary-search-run"
    (Staged.stage (fun () ->
         let db, target, stanza = ablation_scenario 8 in
         let desired_map = Config.Route_map.insert_at target 0 stanza in
         let desired r = Config.Semantics.eval_route_map db desired_map r in
         ignore
           (Clarify.Disambiguator.run ~db ~target ~stanza
              ~oracle:(Clarify.Disambiguator.intent_driven desired)
              ())))

let bench_pipeline =
  Test.make ~name:"clarify/full-pipeline"
    (Staged.stage (fun () ->
         let db = parse_ok isp_out_config in
         ignore
           (Clarify.Pipeline.run_route_map_update
              ~llm:(Llm.Mock_llm.create ())
              ~oracle:(fun _ -> Clarify.Disambiguator.Prefer_new)
              ~db ~target:"ISP_OUT"
              ~prompt:Evaluation.E1_running_example.prompt ())))

let bench_bgp_sim =
  Test.make ~name:"netsim/figure3-propagation"
    (Staged.stage (fun () ->
         ignore (Netsim.Simulator.run (Netsim.Figure3.reference ()))))

let benchmarks =
  [
    bench_parser;
    bench_bdd_route_space;
    bench_port_range;
    bench_port_enum;
    bench_aspath_dfa;
    bench_acl_overlap;
    bench_compare;
    bench_verify;
    bench_disambiguate;
    bench_pipeline;
    bench_bgp_sim;
  ]

let run_benchmarks () =
  Format.printf "=== Bechamel microbenchmarks ===@.";
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let timings = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analysis = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ estimate ] ->
              let pretty =
                if estimate > 1e9 then Printf.sprintf "%.2f s" (estimate /. 1e9)
                else if estimate > 1e6 then
                  Printf.sprintf "%.2f ms" (estimate /. 1e6)
                else if estimate > 1e3 then
                  Printf.sprintf "%.2f us" (estimate /. 1e3)
                else Printf.sprintf "%.0f ns" estimate
              in
              timings := (name, estimate) :: !timings;
              Format.printf "%-42s %12s/run@." name pretty
          | _ -> Format.printf "%-42s %12s@." name "n/a")
        analysis)
    benchmarks;
  Format.printf "@.";
  List.rev !timings

let write_bench_json path benchmarks =
  let t =
    {
      Telemetry.Bench.domains = Parallel.Pool.domains pool;
      experiments = !experiments;
      benchmarks;
    }
  in
  let oc = open_out path in
  output_string oc (Json.to_string ~indent:2 (Telemetry.Bench.to_json t));
  output_char oc '\n';
  close_out oc;
  Format.printf "wrote bench snapshot to %s (schema %s)@." path
    Telemetry.Bench.schema

let () =
  run_experiments ();
  run_ablation ();
  Evaluation.A2_llm_disambiguator.(print Format.std_formatter (run ()));
  run_density_sweep ();
  let bdd_timings = run_bdd_microbench () in
  let disambig_timings = run_disambig_comparison () in
  let batch_timings = run_batch_comparison () in
  let parallel_timings = run_parallel_comparison () in
  let obs_timings = run_obs_overhead () in
  let fleet_timings = run_fleet_scaling () in
  let sched_timings = run_sched_skew () in
  let fleet_skew_timings = run_fleet_skew () in
  let timings = run_benchmarks () in
  Option.iter
    (fun path ->
      write_bench_json path
        (timings @ bdd_timings @ disambig_timings @ batch_timings
       @ parallel_timings @ obs_timings @ fleet_timings @ sched_timings
       @ fleet_skew_timings))
    json_out
