(* Strategy selection for boundary discovery (see DESIGN.md §11).

   The incremental engine is the default; the naive per-position
   re-execution survives behind CLARIFY_NAIVE_BOUNDARIES so tests and
   CI can assert the two agree byte-for-byte, and so a regression in
   the incremental path can be routed around in the field without a
   rebuild. The variable is consulted per sweep, so tests may flip it
   with [Unix.putenv] at runtime. *)

let env_var = "CLARIFY_NAIVE_BOUNDARIES"

let naive_requested () =
  match Sys.getenv_opt env_var with
  | Some ("1" | "true" | "yes" | "on") -> true
  | _ -> false
