examples/faulty_llm.ml: Clarify Config Format List Llm String
