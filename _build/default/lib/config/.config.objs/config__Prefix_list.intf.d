lib/config/prefix_list.mli: Action Format Netaddr
