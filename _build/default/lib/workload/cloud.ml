(** The "cloud WAN" corpus profile, calibrated to Section 3.1 of the
    paper: 237 ACLs of which 69 have at least one overlap and 48 have
    more than 20 (including one gateway ACL with over 100 overlapping
    pairs); 800 route-maps of which 140 contain overlaps and 3 have more
    than 20. *)

let default_seed = 2025

type t = {
  acls : Config.Acl.t list;
  route_map_db : Config.Database.t;
  route_maps : Config.Route_map.t list;
}

let acls ?(seed = default_seed) () =
  let rng = Random.State.make [| seed |] in
  let plain_group =
    List.init 168 (fun i ->
        Acl_gen.make ~rng
          ~name:(Printf.sprintf "CLOUD_PLAIN_%d" i)
          ~plain:(4 + Random.State.int rng 8)
          ~crossing:0 ~trailing_deny_any:false)
  in
  (* Light: 3k + p overlaps with k=1..2, p <= 10 stays within 1..20. *)
  let light_group =
    List.init 21 (fun i ->
        Acl_gen.make ~rng
          ~name:(Printf.sprintf "CLOUD_LIGHT_%d" i)
          ~plain:(2 + Random.State.int rng 8)
          ~crossing:(1 + Random.State.int rng 2)
          ~trailing_deny_any:true)
  in
  (* Heavy: 3k + p > 20. The first one is the paper's gateway ACL with
     over 100 overlapping pairs of source/destination/protocol combos. *)
  let heavy_group =
    List.init 48 (fun i ->
        if i = 0 then
          Acl_gen.make ~rng ~name:"CLOUD_GATEWAY"
            ~plain:70 ~crossing:12 ~trailing_deny_any:true
        else
          Acl_gen.make ~rng
            ~name:(Printf.sprintf "CLOUD_HEAVY_%d" i)
            ~plain:(10 + Random.State.int rng 10)
            ~crossing:(5 + Random.State.int rng 4)
            ~trailing_deny_any:true)
  in
  plain_group @ light_group @ heavy_group

let route_maps ?(seed = default_seed) () =
  let rng = Random.State.make [| seed + 1 |] in
  let actions = [| Config.Action.Permit; Config.Action.Deny |] in
  let action () = actions.(Random.State.int rng 2) in
  let db = ref Config.Database.empty in
  let maps = ref [] in
  let build ~name ~disjoint ~windows ~catch_all =
    let b = Route_map_gen.make ~db:!db ~name ~disjoint ~windows ~catch_all in
    db := b.Route_map_gen.db;
    maps := b.Route_map_gen.route_map :: !maps
  in
  (* 660 without overlaps. *)
  for i = 0 to 659 do
    build
      ~name:(Printf.sprintf "CLOUD_RM_PLAIN_%d" i)
      ~disjoint:(List.init (3 + Random.State.int rng 4) (fun _ -> action ()))
      ~windows:[] ~catch_all:false
  done;
  (* 137 with 1..3 overlapping pairs. *)
  for i = 0 to 136 do
    build
      ~name:(Printf.sprintf "CLOUD_RM_LIGHT_%d" i)
      ~disjoint:(List.init (1 + Random.State.int rng 3) (fun _ -> action ()))
      ~windows:
        (List.init (1 + Random.State.int rng 3) (fun _ -> (action (), action ())))
      ~catch_all:false
  done;
  (* 3 with more than 20 overlaps: a catch-all over many stanzas. *)
  for i = 0 to 2 do
    build
      ~name:(Printf.sprintf "CLOUD_RM_HEAVY_%d" i)
      ~disjoint:(List.init 25 (fun _ -> action ()))
      ~windows:[] ~catch_all:true
  done;
  (!db, List.rev !maps)

let generate ?(seed = default_seed) () =
  let route_map_db, rms = route_maps ~seed () in
  { acls = acls ~seed (); route_map_db; route_maps = rms }
