(** Behavioural diff of two ACLs, used to generate differential packet
    examples for ACL insertion disambiguation. *)

type difference = {
  packet : Config.Packet.t;
  action_a : Config.Action.t;
  action_b : Config.Action.t;
  rule_a : int option; (* handling rule seq under A; None = implicit *)
  rule_b : int option;
}

val compare : ?limit:int -> Config.Acl.t -> Config.Acl.t -> difference list
(** All behavioural differences, one example packet per differing pair
    of execution cells, capped at [limit]. *)

val first_difference : Config.Acl.t -> Config.Acl.t -> difference option
val equal_behavior : Config.Acl.t -> Config.Acl.t -> bool

val adjacent_insertions :
  ?naive:bool ->
  ?pool:Parallel.Pool.t ->
  target:Config.Acl.t ->
  Config.Acl.rule ->
  (int * difference) list
(** Every insertion position [i] (0-based, ascending) at which inserting
    the rule at [i] behaves differently from inserting it at [i + 1],
    with one witness packet per position. Incremental by default (one
    symbolic execution of the target, one conjunction per position);
    [~naive] forces per-position two-ACL comparison, and when omitted
    {!Boundary_mode.naive_requested} decides. [~pool] splits positions
    into one contiguous chunk per worker domain. Both strategies return
    identical results. *)

type batch_sweep = {
  per_candidate : (int * difference) list array;
      (** candidate [k]'s boundary sweep against the original target,
          exactly what {!adjacent_insertions} would return for it *)
  overlaps : (int * int) list;
      (** candidate pairs [i < j] whose match regions intersect *)
  conflicts : (int * int * difference) list;
      (** overlapping pairs with differing actions, with a witness
          packet from the shared region *)
}

val batch_insertions :
  ?pool:Parallel.Pool.t ->
  target:Config.Acl.t ->
  Config.Acl.rule list ->
  batch_sweep
(** Multi-rule sweep for batch synthesis: boundary sweeps for every
    candidate plus the pairwise inter-intent overlap/conflict graph,
    against one symbolic execution of [target] per worker chunk (one
    total when serial). Increments {!Metrics.batch_conflict_pairs} by
    the number of conflicts. *)

val pp_difference : Format.formatter -> difference -> unit
