examples/lightyear_topology.ml: Evaluation Format Netsim
