(** Insertion disambiguation for ACL rules — the same algorithm as
    {!Disambiguator}, over packet space. Extends the paper's prototype,
    which handled route-maps only. *)

type question = {
  position : int;
  boundary_seq : int;
  packet : Config.Packet.t; (* differential example *)
  if_new_first : Config.Action.t;
  if_old_first : Config.Action.t;
}

type answer = Disambig_common.answer = Prefer_new | Prefer_old
type oracle = question -> answer
type mode = Binary_search | Top_bottom | Linear

type outcome = {
  acl : Config.Acl.t;
  position : int;
  questions : question list;
  boundaries : int;
}

type error = Inconsistent_intent of question list

val pp_question : Format.formatter -> question -> unit

val view : question -> Disambig_common.view
(** The telemetry rendering of a question — also the batch answer
    cache's key material. *)

val insert_rule_at : Config.Acl.t -> int -> Config.Acl.rule -> Config.Acl.t
(** Insert at a position (0 = first) and resequence; alias of
    {!Config.Acl.insert_at}. *)

val boundaries :
  ?pool:Parallel.Pool.t -> target:Config.Acl.t -> Config.Acl.rule -> question list
(** All differing boundaries in position order, from one incremental
    sweep of {!Engine.Compare_acls.adjacent_insertions} (naive
    per-position comparison under [CLARIFY_NAIVE_BOUNDARIES=1]).
    [?pool] fans contiguous position chunks across worker domains. *)

val run :
  ?mode:mode ->
  ?pool:Parallel.Pool.t ->
  ?precomputed:question list ->
  target:Config.Acl.t ->
  rule:Config.Acl.rule ->
  oracle:oracle ->
  unit ->
  (outcome, error) result
(** [?precomputed] skips the engine sweep and uses the given boundary
    questions — the batch pipeline's fast path. *)

val scripted : answer list -> oracle
val intent_driven : (Config.Packet.t -> Config.Action.t) -> oracle
