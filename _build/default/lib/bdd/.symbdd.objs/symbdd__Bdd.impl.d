lib/bdd/bdd.ml: Float Format Hashtbl Int List Seq
