(** Strategy selection for boundary discovery.

    [adjacent_insertions] (in {!Compare_route_policies} and
    {!Compare_acls}) runs the incremental compile-once engine by
    default; setting [CLARIFY_NAIVE_BOUNDARIES=1] (or [true]/[yes]/
    [on]) in the environment switches every sweep that does not pass
    an explicit [~naive] to the per-position re-execution path, whose
    results the incremental engine must reproduce byte-for-byte. *)

val env_var : string
(** ["CLARIFY_NAIVE_BOUNDARIES"]. *)

val naive_requested : unit -> bool
(** Consulted once per sweep, so tests can flip the variable at
    runtime with [Unix.putenv]. *)
