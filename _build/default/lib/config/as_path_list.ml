(** Cisco [ip as-path access-list] definitions. *)

type entry = { action : Action.t; regex : Sre.As_path_regex.t }
type t = { name : string; entries : entry list }

let make name entries =
  let compile (action, source) =
    { action; regex = Sre.As_path_regex.compile source }
  in
  { name; entries = List.map compile entries }

(** First matching entry's action on the given AS path. *)
let eval t as_path =
  List.find_map
    (fun e ->
      if Sre.As_path_regex.matches e.regex as_path then Some e.action else None)
    t.entries

let matches t as_path = eval t as_path = Some Action.Permit

let permitted_regexes t =
  List.filter_map
    (fun e ->
      if Action.equal e.action Action.Permit then Some e.regex else None)
    t.entries

let rename t name = { t with name }

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  Format.pp_print_list ~pp_sep:Format.pp_print_cut
    (fun fmt (e : entry) ->
      Format.fprintf fmt "ip as-path access-list %s %s %s" t.name
        (Action.to_string e.action)
        (Sre.As_path_regex.source e.regex))
    fmt t.entries;
  Format.fprintf fmt "@]"
