test/test_netsim.ml: Alcotest Array Bgp Config Figure3 Format Int List Netaddr Netsim Policies Printf QCheck QCheck_alcotest Simulator Topology
