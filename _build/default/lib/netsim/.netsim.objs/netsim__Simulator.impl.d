lib/netsim/simulator.ml: Bgp Config Format Hashtbl Int List Map Netaddr Option String Topology
