lib/llm/prompt_db.ml:
