(** Insertion disambiguation for prefix-list entries — the paper's first
    future-work item ("support for inserting entries into other data
    structures that can have conflicts like prefix lists").

    Prefix lists have the same first-match semantics as route-maps, so
    the same algorithm applies, with route prefixes as the inputs:
    adjacent placements of the new entry differ exactly on prefixes that
    match both the new entry and the existing entry at the boundary, and
    the differential example is a concrete prefix. *)

type question = {
  position : int;
  boundary_seq : int;
  prefix : Netaddr.Prefix.t; (* the differential example *)
  if_new_first : Config.Action.t; (* Cisco implicit deny when unmatched *)
  if_old_first : Config.Action.t;
}

type answer = Disambig_common.answer = Prefer_new | Prefer_old
type oracle = question -> answer
type mode = Binary_search | Top_bottom | Linear

type outcome = {
  prefix_list : Config.Prefix_list.t;
  position : int;
  questions : question list;
  boundaries : int;
}

type error = Inconsistent_intent of question list

let pp_question fmt q =
  Format.fprintf fmt
    "@[<v>Where the new entry is placed changes the treatment of this \
     prefix (boundary: existing entry %d):@ %a@ OPTION 1 (new entry \
     first): %a@ OPTION 2 (existing entry first): %a@]"
    q.boundary_seq Netaddr.Prefix.pp q.prefix Config.Action.pp q.if_new_first
    Config.Action.pp q.if_old_first

let insert_entry_at (pl : Config.Prefix_list.t) pos
    (entry : Config.Prefix_list.entry) =
  let n = List.length pl.Config.Prefix_list.entries in
  if pos < 0 || pos > n then invalid_arg "Prefix_list insertion position";
  let before = List.filteri (fun i _ -> i < pos) pl.Config.Prefix_list.entries in
  let after = List.filteri (fun i _ -> i >= pos) pl.Config.Prefix_list.entries in
  let entries =
    List.mapi
      (fun i (e : Config.Prefix_list.entry) ->
        { e with Config.Prefix_list.seq = (i + 1) * 10 })
      (before @ (entry :: after))
  in
  Config.Prefix_list.make pl.Config.Prefix_list.name entries

(* First-match evaluation with the implicit deny made explicit. *)
let eval pl p =
  match Config.Prefix_list.eval pl p with
  | Some a -> a
  | None -> Config.Action.Deny

(* Observability (see DESIGN.md §Observability for the naming scheme). *)
let questions_counter =
  Obs.Counter.make "prefix_list_disambiguator.questions"
    ~help:"differential questions shown to the user"

let boundaries_counter =
  Obs.Counter.make "prefix_list_disambiguator.boundaries"
    ~help:"differing insertion boundaries (overlaps) found"

let probes_counter =
  Obs.Counter.make "prefix_list_disambiguator.binary_search.probes"
    ~help:"binary-search iterations (search depth)"

(* Adjacent placements i and i+1 differ exactly on prefixes matching
   both the new entry and existing entry i, provided no earlier entry
   captures them first and the two entries' actions differ. The
   shadowing check is done concretely on the witness: per position, the
   naive path materialises both placements and evaluates them, while
   the default incremental path scans the target once — earlier entries
   are the same under both placements, so placement evaluation reduces
   to "is the witness shadowed, and do the two entries' actions
   differ". The two paths return identical boundaries and witnesses. *)

let naive_boundaries ~(target : Config.Prefix_list.t)
    (entry : Config.Prefix_list.entry) =
  let n = List.length target.Config.Prefix_list.entries in
  let pl_at p = insert_entry_at target p entry in
  List.filter_map
    (fun i ->
      let a = pl_at i and b = pl_at (i + 1) in
      let existing = List.nth target.Config.Prefix_list.entries i in
      match
        Netaddr.Prefix_range.witness_overlap entry.Config.Prefix_list.range
          existing.Config.Prefix_list.range
      with
      | None -> None
      | Some w ->
          (* The base witness may be shadowed by an earlier entry; a
             boundary exists iff the two placements actually disagree on
             it. (Within one overlap region the disagreement set is a
             sub-window; the canonical witness lies inside it whenever
             it is nonempty because both placements share the earlier
             entries.) *)
          if Config.Action.equal (eval a w) (eval b w) then None
          else
            Some
              {
                position = i;
                boundary_seq = existing.Config.Prefix_list.seq;
                prefix = w;
                if_new_first = eval a w;
                if_old_first = eval b w;
              })
    (List.init n Fun.id)

let incremental_boundaries ~(target : Config.Prefix_list.t)
    (entry : Config.Prefix_list.entry) =
  let entries = Array.of_list target.Config.Prefix_list.entries in
  let shadowed i w =
    let rec scan j =
      j < i
      && (Netaddr.Prefix_range.matches entries.(j).Config.Prefix_list.range w
          || scan (j + 1))
    in
    scan 0
  in
  List.filter_map
    (fun i ->
      let existing = entries.(i) in
      if Config.Action.equal entry.Config.Prefix_list.action
           existing.Config.Prefix_list.action
      then None
      else
        match
          Netaddr.Prefix_range.witness_overlap entry.Config.Prefix_list.range
            existing.Config.Prefix_list.range
        with
        | None -> None
        | Some w when shadowed i w -> None
        | Some w ->
            Some
              {
                position = i;
                boundary_seq = existing.Config.Prefix_list.seq;
                prefix = w;
                if_new_first = entry.Config.Prefix_list.action;
                if_old_first = existing.Config.Prefix_list.action;
              })
    (List.init (Array.length entries) Fun.id)

let boundaries ~target entry =
  Obs.with_span "find_boundaries" @@ fun () ->
  let bs =
    if Engine.Boundary_mode.naive_requested () then
      naive_boundaries ~target entry
    else incremental_boundaries ~target entry
  in
  Obs.Counter.incr ~by:(List.length bs) boundaries_counter;
  bs

let view (q : question) =
  {
    Disambig_common.position = q.position;
    boundary_seq = q.boundary_seq;
    example = Format.asprintf "%a" Netaddr.Prefix.pp q.prefix;
    if_new_first = Format.asprintf "%a" Config.Action.pp q.if_new_first;
    if_old_first = Format.asprintf "%a" Config.Action.pp q.if_old_first;
  }

let run ?(mode = Binary_search) ~(target : Config.Prefix_list.t)
    ~(entry : Config.Prefix_list.entry) ~(oracle : oracle) () =
  let n = List.length target.Config.Prefix_list.entries in
  let pl_at p = insert_entry_at target p entry in
  let asked, ask =
    Disambig_common.asker ~subsystem:"prefix_list" ~counter:questions_counter
      ~view ~oracle
  in
  match mode with
  | Top_bottom -> (
      let bs = boundaries ~target entry in
      match bs with
      | [] -> Ok { prefix_list = pl_at n; position = n; questions = []; boundaries = 0 }
      | q :: _ -> (
          match ask q with
          | Prefer_new ->
              Ok
                {
                  prefix_list = pl_at 0;
                  position = 0;
                  questions = asked ();
                  boundaries = List.length bs;
                }
          | Prefer_old ->
              Ok
                {
                  prefix_list = pl_at n;
                  position = n;
                  questions = asked ();
                  boundaries = List.length bs;
                }))
  | Binary_search ->
      let bs = boundaries ~target entry in
      let k = List.length bs in
      if k = 0 then
        Ok { prefix_list = pl_at n; position = n; questions = []; boundaries = 0 }
      else begin
        let arr = Array.of_list bs in
        let hi =
          Disambig_common.binary_search ~subsystem:"prefix_list"
            ~probes:probes_counter ~ask arr
        in
        let position = if hi = k then n else arr.(hi).position in
        Ok
          {
            prefix_list = pl_at position;
            position;
            questions = asked ();
            boundaries = k;
          }
      end
  | Linear ->
      let bs = boundaries ~target entry in
      let answers = List.map (fun q -> (q, ask q)) bs in
      if not (Disambig_common.monotone answers) then
        Error (Inconsistent_intent (asked ()))
      else
        let position =
          Disambig_common.first_new_position ~default:n
            ~position:(fun (q : question) -> q.position)
            answers
        in
        Ok
          {
            prefix_list = pl_at position;
            position;
            questions = asked ();
            boundaries = List.length bs;
          }

(** The ideal user: answers according to a target prefix policy. *)
let intent_driven (desired : Netaddr.Prefix.t -> Config.Action.t) =
  fun q ->
    if Config.Action.equal (desired q.prefix) q.if_new_first then Prefer_new
    else Prefer_old
