examples/quickstart.ml: Clarify Config Format List Llm
