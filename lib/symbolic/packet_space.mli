(** Symbolic IPv4 packet header space over BDD variables.

    Variable layout (MSB-first within each field): src 0-31, dst 32-63,
    protocol 64-71, src port 72-87, dst port 88-103, established 104. *)

open Symbdd

val src : Bvec.t
val dst : Bvec.t
val protocol : Bvec.t
val src_port : Bvec.t
val dst_port : Bvec.t
val established_var : int

val of_addr_spec : Bvec.t -> Config.Acl.addr_spec -> Bdd.t
val of_port_spec : Bvec.t -> Config.Acl.port_spec -> Bdd.t
val of_protocol : Config.Packet.protocol -> Bdd.t

val of_rule : Config.Acl.rule -> Bdd.t
(** The match condition of one ACL rule (ignoring its action). *)

type cell = {
  guard : Bdd.t; (* packets reaching and matching this rule *)
  action : Config.Action.t;
  rule_seq : int option; (* [None] for the implicit trailing deny *)
}

val exec : Config.Acl.t -> cell list
(** Ordered first-match partition of the packet space: each cell's guard
    is the rule's match condition minus everything matched earlier; the
    final cell is the implicit deny. Guards partition the space. *)

val exec_prefixes : Config.Acl.t -> Bdd.t array
(** Prefix execution of an ACL with [n] rules: [n + 1] reachability
    sets whose [i]th element is the packets matching none of rules
    [0..i-1] (index 0 is the full space, index [n] the implicit-deny
    guard). One traversal serves every insertion position. *)

val permitted : Config.Acl.t -> Bdd.t
(** The set of packets the ACL permits. *)

val to_packet : Bdd.t -> Config.Packet.t option
(** Extract a concrete packet from a non-empty region; prefers familiar
    protocols (TCP, then UDP, then ICMP) when the region allows them. *)

val overlap_witness :
  Config.Acl.rule -> Config.Acl.rule -> Config.Packet.t option
(** A packet matched by both rules, if any. *)
