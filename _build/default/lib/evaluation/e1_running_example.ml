(** Experiment E1 — the paper's running example (Sections 2.1–2.2 and
    Figure 2): synthesize the SET_METRIC stanza for ISP_OUT, verify it,
    and disambiguate its insertion point. *)

let isp_out_config =
  {|ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
ip prefix-list D1 seq 30 permit 1.0.0.0/20 ge 24
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300|}

let prompt =
  "Write a route-map stanza that permits routes containing the prefix \
   100.0.0.0/16 with mask length less than or equal to 23 and tagged with \
   the community 300:3. Their MED value should be set to 55."

type outcome = {
  db : Config.Database.t; (* the original configuration *)
  snippet_text : string; (* what the LLM produced *)
  spec_json : string; (* the paper's JSON specification *)
  candidates : Config.Route_map.t list; (* all insertion candidates *)
  question : Clarify.Disambiguator.question option; (* top-vs-bottom diff *)
  report : Clarify.Pipeline.route_map_report; (* full binary-search run *)
}

(** Run the example. [choose_new_first] stands for the user's answer to
    every differential question (the paper's user picks OPTION 1, i.e.
    the new stanza first). *)
let run ?(choose_new_first = true) () =
  let db =
    match Config.Parser.parse isp_out_config with
    | Ok db -> db
    | Error m -> failwith m
  in
  (* Raw LLM synthesis, kept for display. *)
  let llm = Llm.Mock_llm.create () in
  let entry = Llm.Prompt_db.retrieve `Route_map in
  let snippet_text =
    match
      Llm.Mock_llm.synthesize llm
        {
          Llm.Mock_llm.system = entry.Llm.Prompt_db.system;
          few_shot = entry.Llm.Prompt_db.few_shot;
          user = prompt;
        }
    with
    | Ok t -> t
    | Error m -> failwith m
  in
  let spec_json =
    match Llm.Mock_llm.generate_spec llm prompt with
    | Ok spec -> Json.to_string (Engine.Spec.to_json spec)
    | Error m -> failwith m
  in
  (* All four insertion candidates (Figure 2). *)
  let target = Option.get (Config.Database.route_map db "ISP_OUT") in
  let snippet =
    match Config.Parser.parse snippet_text with
    | Ok s -> s
    | Error m -> failwith m
  in
  let rm = List.hd (Config.Database.route_maps snippet) in
  let imported =
    match Clarify.Naming.import_route_map_snippet ~db ~snippet rm with
    | Ok i -> i
    | Error m -> failwith m
  in
  let n = List.length target.Config.Route_map.stanzas in
  let candidates =
    List.init (n + 1) (fun p ->
        Config.Route_map.insert_at target p imported.Clarify.Naming.stanza)
  in
  (* The §2.2 differential example between Figure 2(a) and 2(b). *)
  let question =
    match
      Engine.Compare_route_policies.first_difference
        ~db_a:imported.Clarify.Naming.db ~db_b:imported.Clarify.Naming.db
        (List.hd candidates)
        (List.nth candidates n)
    with
    | Some d ->
        Some
          {
            Clarify.Disambiguator.position = 0;
            boundary_seq = 10;
            route = d.route;
            if_new_first = d.result_a;
            if_old_first = d.result_b;
          }
    | None -> None
  in
  (* The full pipeline with binary-search disambiguation. *)
  let answer =
    if choose_new_first then Clarify.Disambiguator.Prefer_new
    else Clarify.Disambiguator.Prefer_old
  in
  let report =
    match
      Clarify.Pipeline.run_route_map_update
        ~llm:(Llm.Mock_llm.create ())
        ~oracle:(fun _ -> answer)
        ~db ~target:"ISP_OUT" ~prompt ()
    with
    | Ok r -> r
    | Error e -> failwith (Clarify.Pipeline.error_to_string e)
  in
  { db; snippet_text; spec_json; candidates; question; report }

let print fmt o =
  Format.fprintf fmt "=== E1: the paper's running example ===@.@.";
  Format.fprintf fmt "--- User prompt ---@.%s@.@." prompt;
  Format.fprintf fmt "--- LLM-synthesized snippet ---@.%s@." o.snippet_text;
  Format.fprintf fmt "--- Extracted JSON specification ---@.%s@.@." o.spec_json;
  Format.fprintf fmt
    "--- Insertion candidates (the paper's Figure 2 a-d) ---@.@.";
  List.iteri
    (fun i candidate ->
      (* Figure 2's panels in paper order: (a) = top, (c)/(d) = middle
         positions, (b) = bottom. *)
      let label =
        match i with 0 -> "a" | 1 -> "c" | 2 -> "d" | _ -> "b"
      in
      Format.fprintf fmt "(%s) position %d:@.%a@.@." label i
        Config.Route_map.pp candidate)
    o.candidates;
  (match o.question with
  | Some q ->
      Format.fprintf fmt "--- Differential example (top vs bottom) ---@.%a@.@."
        Clarify.Disambiguator.pp_question q
  | None -> Format.fprintf fmt "--- no behavioural difference found ---@.");
  Format.fprintf fmt
    "--- Binary-search disambiguation ---@.boundaries: %d, questions asked: \
     %d, chosen position: %d@.@."
    o.report.Clarify.Pipeline.boundaries
    (List.length o.report.Clarify.Pipeline.questions)
    o.report.Clarify.Pipeline.position;
  Format.fprintf fmt "--- Final route-map ---@.%a@." Config.Route_map.pp
    o.report.Clarify.Pipeline.map
