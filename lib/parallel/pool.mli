(** A Domain-based fork-join worker pool with deterministic ordering.

    [map_chunked] is observationally [List.map]: results come back in
    input order regardless of scheduling, and the first task exception
    (by input position) is re-raised in the submitting domain. The
    calling domain participates as worker 0; [domains - 1] fresh
    domains are spawned per batch and joined before returning.

    Every worker domain owns an isolated BDD universe (the domain-local
    default manager of {!Symbdd.Bdd}), so tasks may freely build BDDs —
    but must return only plain data (stats records, databases), never
    BDD values: node identity is manager-relative and worker managers
    die with their domain. The exception is the [?bdd_base] mode of
    {!map_chunked}: handles built by the frozen base manager are valid
    in every worker's delta, so tasks may capture and use them. *)

type t

val create : ?domains:int -> unit -> t
(** [create ()] sizes the pool from the [CLARIFY_JOBS] environment
    variable (default 1 when unset or unparsable); [~domains] overrides
    it. Values are clamped to at least 1. A pool of 1 domain runs
    everything serially in the calling domain — no spawning, identical
    behaviour to [List.map]. *)

val default_domains : unit -> int
(** The [CLARIFY_JOBS] value (>= 1), or 1. *)

val domains : t -> int

val serial : t
(** A pool of one domain; [map_chunked serial ~f] is [List.map f]. *)

val map_chunked :
  ?chunks_per_domain:int ->
  ?bdd_base:Symbdd.Bdd.Manager.t ->
  t ->
  f:('a -> 'b) ->
  'a list ->
  'b list
(** [map_chunked pool ~f items] applies [f] to every item across the
    pool's domains and returns the results in input order. Items are
    partitioned into contiguous chunks ([chunks_per_domain] per worker,
    default 1; raise it for uneven workloads so stragglers
    load-balance) claimed dynamically from a shared atomic counter.

    [?bdd_base] must be a {e frozen} root manager
    ({!Symbdd.Bdd.Manager.freeze}): every worker — including the serial
    fallback taken when the pool has one domain or the batch one item —
    runs its tasks under a private {!Symbdd.Bdd.Manager.create_delta}
    layered on it. Tasks then reuse everything compiled into the base
    (nodes, symbolic compilation cache) instead of recompiling it per
    domain, and may safely capture BDD handles built by the base.

    While observability is enabled, each worker runs under a root span
    [domainN] (a separate thread lane in the Chrome-trace export) and
    feeds per-domain labeled series: [parallel.tasks{domain=N}],
    [parallel.task_ns{domain=N}], [parallel.queue_wait_ns{domain=N}],
    plus [bdd.nodes_allocated{domain=N}] and compile-cache hit/miss
    counters via the worker's BDD hooks. Labeled handles are acquired
    per batch (never cached across {!Obs.reset}), and worker 0's
    previous BDD hooks are restored when the batch completes.

    If any task raises, all chunks still drain, the spawned domains are
    joined, and the exception from the smallest input position is
    re-raised. *)
