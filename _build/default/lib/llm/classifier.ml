(** Query-type classification — the paper's first, intermediate LLM call
    that selects the synthesis pipeline (route-map vs ACL). Implemented
    as keyword scoring, which is what a temperature-0 classification
    call amounts to for this two-class problem. *)

type query_type = [ `Route_map | `Acl ]

let route_map_keywords =
  [
    "route"; "routes"; "route-map"; "routemap"; "stanza"; "community";
    "communities"; "med"; "metric"; "local"; "preference"; "as-path";
    "prepend"; "prepended"; "advertisement"; "advertisements"; "bgp";
    "origin"; "originating"; "next"; "hop";
  ]

let acl_keywords =
  [
    "traffic"; "packet"; "packets"; "tcp"; "udp"; "icmp"; "port"; "ports";
    "host"; "connection"; "connections"; "acl"; "access"; "access-list";
    "firewall"; "established"; "source"; "destination"; "flows";
  ]

let score keywords ws =
  List.length (List.filter (fun w -> List.mem w keywords) ws)

let classify text : query_type =
  let ws = Nl_parser.words text in
  let rm = score route_map_keywords ws and acl = score acl_keywords ws in
  if acl > rm then `Acl else `Route_map

let to_string = function `Route_map -> "route-map" | `Acl -> "acl"
