(** Cisco extended access lists. *)

type addr_spec =
  | Any
  | Host of Netaddr.Ipv4.t
  | Wildcard of Netaddr.Ipv4.t * Netaddr.Ipv4.t
      (** base address and Cisco wildcard mask: a packet address [x]
          matches iff [x land (lnot wild) = base land (lnot wild)]. *)

type port_spec =
  | Any_port
  | Eq of int
  | Neq of int
  | Lt of int
  | Gt of int
  | Range of int * int (* inclusive *)

type rule = {
  seq : int;
  action : Action.t;
  protocol : Packet.protocol; (* [Ip] matches every protocol *)
  src : addr_spec;
  src_port : port_spec;
  dst : addr_spec;
  dst_port : port_spec;
  established : bool; (* only matches established TCP segments *)
}

type t = { name : string; rules : rule list (* ascending seq *) }

let addr_of_prefix p =
  let open Netaddr in
  if p.Prefix.len = 32 then Host p.Prefix.ip
  else if p.Prefix.len = 0 then Any
  else Wildcard (p.Prefix.ip, Ipv4.wildcard_of_mask (Ipv4.mask p.Prefix.len))

(** The prefix equivalent of an address spec when its wildcard mask is
    contiguous; [None] for discontiguous masks. *)
let addr_to_prefix = function
  | Any -> Some Netaddr.Prefix.default
  | Host ip -> Some (Netaddr.Prefix.host ip)
  | Wildcard (base, wild) ->
      let w = Netaddr.Ipv4.to_int wild in
      let len = ref 0 in
      let contiguous = ref true in
      for i = 0 to 31 do
        let bit = w land (1 lsl (31 - i)) <> 0 in
        if not bit then
          if !len = i then incr len else contiguous := false
      done;
      if !contiguous then Some (Netaddr.Prefix.make base !len) else None

let make name rules =
  let sorted = List.sort (fun a b -> Int.compare a.seq b.seq) rules in
  { name; rules = sorted }

let rule ?(seq = 0) ?(protocol = Packet.Ip) ?(src = Any) ?(src_port = Any_port)
    ?(dst = Any) ?(dst_port = Any_port) ?(established = false) action =
  { seq; action; protocol; src; src_port; dst; dst_port; established }

let match_addr spec addr =
  match spec with
  | Any -> true
  | Host ip -> Netaddr.Ipv4.equal ip addr
  | Wildcard (base, wild) ->
      let keep = Netaddr.Ipv4.wildcard_of_mask wild in
      Netaddr.Ipv4.equal
        (Netaddr.Ipv4.logand addr keep)
        (Netaddr.Ipv4.logand base keep)

let match_port spec port =
  match spec with
  | Any_port -> true
  | Eq n -> port = n
  | Neq n -> port <> n
  | Lt n -> port < n
  | Gt n -> port > n
  | Range (a, b) -> port >= a && port <= b

let match_protocol spec (actual : Packet.protocol) =
  match spec with
  | Packet.Ip -> true
  | spec -> Packet.protocol_number spec = Packet.protocol_number actual

let match_rule r (p : Packet.t) =
  match_protocol r.protocol p.protocol
  && match_addr r.src p.src && match_addr r.dst p.dst
  && (match_port r.src_port p.src_port)
  && (match_port r.dst_port p.dst_port)
  && ((not r.established) || p.established)

(** First-match action; [None] when no rule matches (implicit deny). *)
let first_match t p = List.find_opt (fun r -> match_rule r p) t.rules
let eval t p = Option.map (fun r -> r.action) (first_match t p)
let permits t p = eval t p = Some Action.Permit

let next_seq t =
  match List.rev t.rules with [] -> 10 | last :: _ -> last.seq + 10

let append t r =
  let r = if r.seq = 0 then { r with seq = next_seq t } else r in
  make t.name (t.rules @ [ r ])

(** Renumber every rule 10, 20, 30, ... preserving order. *)
let resequence t =
  { t with rules = List.mapi (fun i r -> { r with seq = (i + 1) * 10 }) t.rules }

let insert_at t pos r =
  let n = List.length t.rules in
  if pos < 0 || pos > n then invalid_arg "Acl.insert_at";
  let before = List.filteri (fun i _ -> i < pos) t.rules in
  let after = List.filteri (fun i _ -> i >= pos) t.rules in
  resequence { t with rules = before @ (r :: after) }

let rename t name = { t with name }

let string_of_addr = function
  | Any -> "any"
  | Host ip -> "host " ^ Netaddr.Ipv4.to_string ip
  | Wildcard (base, wild) ->
      Netaddr.Ipv4.to_string base ^ " " ^ Netaddr.Ipv4.to_string wild

let string_of_port = function
  | Any_port -> ""
  | Eq n -> Printf.sprintf " eq %d" n
  | Neq n -> Printf.sprintf " neq %d" n
  | Lt n -> Printf.sprintf " lt %d" n
  | Gt n -> Printf.sprintf " gt %d" n
  | Range (a, b) -> Printf.sprintf " range %d %d" a b

let string_of_rule r =
  Printf.sprintf "%s %s %s%s %s%s%s" (Action.to_string r.action)
    (Packet.protocol_to_string r.protocol)
    (string_of_addr r.src) (string_of_port r.src_port) (string_of_addr r.dst)
    (string_of_port r.dst_port)
    (if r.established then " established" else "")

let pp fmt t =
  Format.fprintf fmt "@[<v>ip access-list extended %s" t.name;
  List.iter (fun r -> Format.fprintf fmt "@  %s" (string_of_rule r)) t.rules;
  Format.fprintf fmt "@]"
