lib/llm/nl_parser.mli: Intent
