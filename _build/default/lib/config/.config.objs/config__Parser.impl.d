lib/config/parser.ml: Acl Action As_path_list Bgp Community_list Database Format Hashtbl List Netaddr Packet Prefix_list Printexc Printf Route_map Sre Stdlib String
