(** Observability counters for the symbolic engine.

    Defined here (and referenced from every engine analysis) so that a
    single module owns the naming scheme and the BDD allocation hook is
    wired exactly once. *)

let search_filters_calls =
  Obs.Counter.make "engine.search_filters.solver_calls"
    ~help:"searchFilters invocations (search/differ/verify_rule)"

let search_route_policies_calls =
  Obs.Counter.make "engine.search_route_policies.solver_calls"
    ~help:"searchRoutePolicies invocations (search/verify_stanza)"

let compare_route_policies_calls =
  Obs.Counter.make "engine.compare_route_policies.solver_calls"
    ~help:"compareRoutePolicies invocations"

let compare_acls_calls =
  Obs.Counter.make "engine.compare_acls.solver_calls"
    ~help:"compareAcls invocations"

let adjacent_insertions_calls =
  Obs.Counter.make "engine.adjacent_insertions.calls"
    ~help:"batch adjacent-insertion analyses (one per boundary sweep)"

let adjacent_contexts =
  Obs.Counter.make "engine.adjacent_insertions.contexts_built"
    ~help:
      "symbolic contexts built while finding boundaries (1 per sweep \
       incrementally, n per sweep naively)"

let adjacent_prefix_reuse =
  Obs.Counter.make "engine.adjacent_insertions.prefix_cells_reused"
    ~help:
      "insertion positions served from a shared prefix execution instead \
       of a fresh two-map re-execution"

let boundary_ns =
  Obs.Histogram.make "engine.adjacent_insertions.boundary_ns"
    ~help:"wall time of one full boundary sweep (all insertion positions)"

let batch_intents =
  Obs.Counter.make "engine.batch.intents"
    ~help:"intents processed by batch synthesis runs"

let batch_conflict_pairs =
  Obs.Counter.make "engine.batch.conflict_pairs"
    ~help:"genuine inter-intent conflict pairs found by batch sweeps"

let batch_questions_saved =
  Obs.Counter.make "engine.batch.questions_saved"
    ~help:
      "disambiguation questions answered from the batch answer cache \
       instead of being asked again"

let batch_ns =
  Obs.Histogram.make "engine.batch.batch_ns"
    ~help:"wall time of one full batch synthesis run (all intents)"

let bdd_nodes =
  Obs.Counter.make "bdd.nodes_allocated"
    ~help:"fresh BDD nodes allocated in this domain's unique table"

let cache_hits =
  Obs.Counter.make "bdd.compile_cache.hits"
    ~help:"symbolic compilation cache hits (ACL rules, prefix lists)"

let cache_misses =
  Obs.Counter.make "bdd.compile_cache.misses"
    ~help:"symbolic compilation cache misses"

(* The hooks are installed only while the layer is enabled, so the BDD
   allocation and cache-probe paths stay a single [match] when
   observability is off. They go on the calling domain's manager —
   worker domains install their own per-domain labeled hooks (see
   [Parallel.Pool]). *)
let () =
  Obs.subscribe_state (fun on ->
      Symbdd.Bdd.set_alloc_hook
        (if on then Some (fun () -> Obs.Counter.incr bdd_nodes) else None);
      Symbdd.Bdd.set_cache_hook
        (if on then
           Some
             (fun hit ->
               Obs.Counter.incr (if hit then cache_hits else cache_misses))
         else None))

(* The sampling domain's manager sizes, as gauges collected at read
   time: every snapshot and every /metrics scrape sees the live unique
   table, memo and compile-cache occupancy with no publish step.
   (These replace the old high-water [bdd.manager.*] counters and
   their explicit [publish_manager_stats] call.) Each domain has its
   own manager; a scrape samples the domain it runs on — domain 0 for
   the serving thread — while worker-domain BDD churn still shows up
   through the per-domain [bdd.nodes_allocated{domain=N}] counters. *)
let manager_stats () = Symbdd.Bdd.Manager.stats (Symbdd.Bdd.manager ())

let manager_nodes =
  Obs.Gauge.collector "bdd.manager.nodes"
    ~help:"live nodes in this domain's BDD unique table" (fun () ->
      float_of_int (manager_stats ()).Symbdd.Bdd.Manager.nodes)

let manager_memo =
  Obs.Gauge.collector "bdd.manager.memo_entries"
    ~help:"entries across this domain's BDD operation memo tables"
    (fun () ->
      let s = manager_stats () in
      float_of_int
        (s.Symbdd.Bdd.Manager.neg_memo + s.Symbdd.Bdd.Manager.and_memo
       + s.Symbdd.Bdd.Manager.or_memo + s.Symbdd.Bdd.Manager.xor_memo
       + s.Symbdd.Bdd.Manager.restrict_memo))

let manager_cache_entries =
  Obs.Gauge.collector "bdd.manager.cache_entries"
    ~help:"entries in this domain's symbolic compilation cache" (fun () ->
      float_of_int (manager_stats ()).Symbdd.Bdd.Manager.cache_entries)

let manager_arena_occupancy =
  Obs.Gauge.collector "bdd.manager.arena_occupancy"
    ~help:
      "fraction of this domain's arena node-store capacity in use (0 under \
       the boxed oracle store)" (fun () ->
      let s = manager_stats () in
      if s.Symbdd.Bdd.Manager.arena_capacity = 0 then 0.
      else
        float_of_int s.Symbdd.Bdd.Manager.nodes
        /. float_of_int s.Symbdd.Bdd.Manager.arena_capacity)

let manager_probe_length =
  Obs.Gauge.collector "bdd.manager.uniq_probe_len"
    ~help:
      "mean open-addressing probe length per unique-table lookup in this \
       domain's arena" (fun () ->
      let s = manager_stats () in
      if s.Symbdd.Bdd.Manager.uniq_lookups = 0 then 0.
      else
        float_of_int s.Symbdd.Bdd.Manager.uniq_probes
        /. float_of_int s.Symbdd.Bdd.Manager.uniq_lookups)

let manager_memo_evictions =
  Obs.Gauge.collector "bdd.manager.memo_evictions"
    ~help:
      "generation-tag evictions forced by the bounded BDD operation memos \
       (CLARIFY_BDD_MEMO_BOUND)" (fun () ->
      float_of_int (manager_stats ()).Symbdd.Bdd.Manager.memo_evictions)
