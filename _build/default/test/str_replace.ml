(** Test helper: replace the first occurrence of [needle] in [haystack];
    fails loudly when the needle is absent so tests cannot silently test
    the unmodified input. *)
let replace haystack needle replacement =
  let hn = String.length haystack and nn = String.length needle in
  let rec find i =
    if i + nn > hn then None
    else if String.sub haystack i nn = needle then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> failwith (Printf.sprintf "Str_replace.replace: %S not found" needle)
  | Some i ->
      String.sub haystack 0 i ^ replacement
      ^ String.sub haystack (i + nn) (hn - i - nn)
