lib/core/naming.mli: Config
