lib/overlap/corpus.ml: Acl_overlap Config Format List Route_map_overlap Symbdd
