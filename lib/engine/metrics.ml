(** Observability counters for the symbolic engine.

    Defined here (and referenced from every engine analysis) so that a
    single module owns the naming scheme and the BDD allocation hook is
    wired exactly once. *)

let search_filters_calls =
  Obs.Counter.make "engine.search_filters.solver_calls"
    ~help:"searchFilters invocations (search/differ/verify_rule)"

let search_route_policies_calls =
  Obs.Counter.make "engine.search_route_policies.solver_calls"
    ~help:"searchRoutePolicies invocations (search/verify_stanza)"

let compare_route_policies_calls =
  Obs.Counter.make "engine.compare_route_policies.solver_calls"
    ~help:"compareRoutePolicies invocations"

let compare_acls_calls =
  Obs.Counter.make "engine.compare_acls.solver_calls"
    ~help:"compareAcls invocations"

let bdd_nodes =
  Obs.Counter.make "bdd.nodes_allocated"
    ~help:"fresh BDD nodes allocated in the global unique table"

(* The hook is installed only while the layer is enabled, so the BDD
   allocation path stays a single [match] when observability is off. *)
let () =
  Obs.subscribe_state (fun on ->
      Symbdd.Bdd.set_alloc_hook
        (if on then Some (fun () -> Obs.Counter.incr bdd_nodes) else None))
