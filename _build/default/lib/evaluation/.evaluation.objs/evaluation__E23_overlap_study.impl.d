lib/evaluation/e23_overlap_study.ml: Format List Overlap Printf Workload
