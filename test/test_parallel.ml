(* The worker pool and the parallel evaluation paths.

   The load-bearing property is determinism: every parallel code path
   must produce results identical to its serial equivalent, because the
   experiment goldens are byte-compared across --jobs values in CI. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Pool basics                                                        *)
(* ------------------------------------------------------------------ *)

let test_sizing () =
  check_int "explicit size" 4 Parallel.Pool.(domains (create ~domains:4 ()));
  check_int "clamped to 1" 1 Parallel.Pool.(domains (create ~domains:0 ()));
  check_int "serial pool" 1 Parallel.Pool.(domains serial)

(* map must equal List.map at every pool size, grain, and input length
   (empty, shorter than the pool, longer than it). *)
let test_ordering () =
  let f x = (x * 2) + 1 in
  List.iter
    (fun domains ->
      let pool = Parallel.Pool.create ~domains () in
      List.iter
        (fun n ->
          let items = List.init n (fun i -> i) in
          List.iter
            (fun grain ->
              Alcotest.(check (list int))
                (Printf.sprintf "d=%d n=%d grain=%d" domains n grain)
                (List.map f items)
                (Parallel.Pool.map ~grain pool ~f items))
            [ 1; 3 ])
        [ 0; 1; 2; 5; 17; 64 ])
    [ 1; 2; 4 ]

exception Boom of int

let test_exception_propagation () =
  let pool = Parallel.Pool.create ~domains:4 () in
  let f x = if x mod 7 = 3 then raise (Boom x) else x in
  (* The exception from the smallest failing input position wins, so
     re-raising is deterministic too. *)
  match Parallel.Pool.map pool ~f (List.init 40 Fun.id) with
  | _ -> Alcotest.fail "worker exception was swallowed"
  | exception Boom x -> check_int "earliest failure re-raised" 3 x

(* A worker exception must not leak spawned domains or corrupt later
   batches: the pool is usable again immediately after. *)
let test_usable_after_exception () =
  let pool = Parallel.Pool.create ~domains:2 () in
  (try
     ignore
       (Parallel.Pool.map pool
          ~f:(fun _ -> raise (Boom 0))
          [ 1; 2; 3; 4 ])
   with Boom _ -> ());
  Alcotest.(check (list int))
    "pool survives a failed batch" [ 2; 4; 6 ]
    (Parallel.Pool.map pool ~f:(fun x -> 2 * x) [ 1; 2; 3 ])

(* Tasks build BDDs in their own domain's manager; plain-data results
   must agree with the serial run even though the BDDs themselves are
   domain-local. *)
let test_bdd_isolation () =
  let pool = Parallel.Pool.create ~domains:4 () in
  let f i =
    let open Symbdd in
    let a = Bvec.eq_const (Bvec.sequential ~first:0 ~width:16) i in
    let b = Bvec.in_range (Bvec.sequential ~first:0 ~width:16) 0 (i + 100) in
    Bdd.sat_count ~nvars:16 (Bdd.conj a b)
  in
  let items = List.init 50 Fun.id in
  Alcotest.(check (list (float 0.0)))
    "per-domain managers agree with serial" (List.map f items)
    (Parallel.Pool.map pool ~f items)

(* ------------------------------------------------------------------ *)
(* Serial = parallel on the evaluation paths                          *)
(* ------------------------------------------------------------------ *)

let test_overlap_summaries_identical () =
  List.iter
    (fun seed ->
      let corpus = Workload.Cloud.generate ~seed () in
      let serial = Overlap.Corpus.summarize_acls corpus.Workload.Cloud.acls in
      List.iter
        (fun domains ->
          let pool = Parallel.Pool.create ~domains () in
          check_bool
            (Printf.sprintf "acl summary seed=%d domains=%d" seed domains)
            true
            (serial
            = Overlap.Corpus.summarize_acls ~pool corpus.Workload.Cloud.acls))
        [ 1; 2; 4 ];
      let rm_serial =
        Overlap.Corpus.summarize_route_maps corpus.Workload.Cloud.route_map_db
          corpus.Workload.Cloud.route_maps
      in
      let pool = Parallel.Pool.create ~domains:4 () in
      check_bool
        (Printf.sprintf "route-map summary seed=%d" seed)
        true
        (rm_serial
        = Overlap.Corpus.summarize_route_maps ~pool
            corpus.Workload.Cloud.route_map_db corpus.Workload.Cloud.route_maps))
    [ 1; 42 ]

let test_e4_identical () =
  let serial = Evaluation.E4_lightyear.run () in
  let pool = Parallel.Pool.create ~domains:3 () in
  let parallel = Evaluation.E4_lightyear.run ~pool () in
  check_bool "router stats identical" true
    (serial.Evaluation.E4_lightyear.stats
   = parallel.Evaluation.E4_lightyear.stats);
  check_bool "policy results identical" true
    (serial.Evaluation.E4_lightyear.policies
   = parallel.Evaluation.E4_lightyear.policies);
  check_bool "convergence identical" true
    (serial.Evaluation.E4_lightyear.converged
     = parallel.Evaluation.E4_lightyear.converged
    && serial.Evaluation.E4_lightyear.rounds
       = parallel.Evaluation.E4_lightyear.rounds)

(* ------------------------------------------------------------------ *)
(* Compilation cache                                                  *)
(* ------------------------------------------------------------------ *)

(* Sweeping a corpus must hit the per-manager compilation cache: each
   analysis compiles its rules once, so hits come from rules shared
   across ACLs (trailing deny-any, common service rules) — a nonzero
   rate, not a dominant one. *)
let test_cache_hit_rate () =
  let corpus = Workload.Cloud.generate ~seed:1 () in
  Symbdd.Bdd.with_manager (Symbdd.Bdd.Manager.create ()) (fun () ->
      let hits = ref 0 and misses = ref 0 in
      Symbdd.Bdd.set_cache_hook
        (Some (fun hit -> incr (if hit then hits else misses)));
      List.iter
        (fun acl -> ignore (Overlap.Acl_overlap.analyze acl))
        corpus.Workload.Cloud.acls;
      Symbdd.Bdd.set_cache_hook None;
      check_bool "cache was probed" true (!hits + !misses > 0);
      check_bool
        (Printf.sprintf "nonzero hit rate (%d hits / %d misses)" !hits !misses)
        true (!hits > 0))

let test_cache_stats_in_manager () =
  Symbdd.Bdd.with_manager (Symbdd.Bdd.Manager.create ()) (fun () ->
      let range =
        Netaddr.Prefix_range.make
          (Netaddr.Prefix.of_string_exn "10.0.0.0/8")
          ~ge:None ~le:(Some 24)
      in
      ignore (Symbolic.Route_ctx.of_prefix_range range);
      ignore (Symbolic.Route_ctx.of_prefix_range range);
      let s = Symbdd.Bdd.Manager.stats (Symbdd.Bdd.manager ()) in
      check_int "one cache entry" 1 s.Symbdd.Bdd.Manager.cache_entries;
      check_int "one miss" 1 s.Symbdd.Bdd.Manager.cache_misses;
      check_int "one hit" 1 s.Symbdd.Bdd.Manager.cache_hits;
      (* A full reset drops the cache and its entry count. *)
      Symbdd.Bdd.Manager.reset (Symbdd.Bdd.manager ());
      let s = Symbdd.Bdd.Manager.stats (Symbdd.Bdd.manager ()) in
      check_int "reset drops cache entries" 0 s.Symbdd.Bdd.Manager.cache_entries;
      check_int "reset drops nodes" 0 s.Symbdd.Bdd.Manager.nodes)

(* Equal content under different names shares one prefix-list
   compilation; different content never collides. *)
let test_cache_keys_content_based () =
  Symbdd.Bdd.with_manager (Symbdd.Bdd.Manager.create ()) (fun () ->
      let entry le =
        Config.Prefix_list.entry ~seq:10 ~action:Config.Action.Permit
          (Netaddr.Prefix_range.make
             (Netaddr.Prefix.of_string_exn "10.0.0.0/8")
             ~ge:None ~le:(Some le))
      in
      let a = Config.Prefix_list.make "A" [ entry 24 ] in
      let b = Config.Prefix_list.make "B" [ entry 24 ] in
      let c = Config.Prefix_list.make "C" [ entry 25 ] in
      let ba = Symbolic.Route_ctx.of_prefix_list a in
      let bb = Symbolic.Route_ctx.of_prefix_list b in
      let bc = Symbolic.Route_ctx.of_prefix_list c in
      check_bool "same content shares the compilation" true
        (Symbdd.Bdd.equal ba bb);
      check_bool "different content stays distinct" false
        (Symbdd.Bdd.equal ba bc))

(* ------------------------------------------------------------------ *)
(* Observability integration                                          *)
(* ------------------------------------------------------------------ *)

let test_per_domain_series () =
  Obs.enable ();
  Obs.reset ();
  let pool = Parallel.Pool.create ~domains:2 () in
  ignore (Parallel.Pool.map pool ~f:(fun x -> x + 1) (List.init 8 Fun.id));
  let total =
    List.fold_left
      (fun acc d ->
        match
          Obs.Counter.find_labeled "parallel.tasks"
            [ ("domain", string_of_int d) ]
        with
        | Some c -> acc + Obs.Counter.value c
        | None -> acc)
      0 [ 0; 1 ]
  in
  Obs.disable ();
  check_int "every task counted exactly once across domains" 8 total

(* Pool workers racing to register the same labeled series must all
   receive the one registry entry — otherwise half the increments land
   in an orphaned duplicate and the merged value undercounts. *)
let test_labeled_registration_race_in_pool () =
  Obs.enable ();
  Obs.reset ();
  let pool = Parallel.Pool.create ~domains:4 () in
  ignore
    (Parallel.Pool.map pool
       ~f:(fun x ->
         Obs.Counter.incr
           (Obs.Counter.labeled "test.pool.race" [ ("k", "v") ]);
         x)
       (List.init 64 Fun.id));
  let v =
    match Obs.Counter.find_labeled "test.pool.race" [ ("k", "v") ] with
    | Some c -> Obs.Counter.value c
    | None -> -1
  in
  Obs.disable ();
  check_int "one series holds all 64 increments" 64 v

(* Pool gauges: after a batch the queue is drained and no worker is
   marked busy; the domain-count gauge reflects the pool that ran. *)
let test_pool_gauges_settle () =
  Obs.enable ();
  Obs.reset ();
  let pool = Parallel.Pool.create ~domains:2 () in
  ignore
    (Parallel.Pool.map pool ~f:(fun x -> x * x) (List.init 16 Fun.id));
  let gauge name =
    match Obs.Gauge.find name with
    | Some g -> Obs.Gauge.value g
    | None -> Alcotest.failf "gauge %s is not registered" name
  in
  let busy =
    List.fold_left
      (fun acc d ->
        match
          Obs.Gauge.find_labeled "parallel.worker.busy"
            [ ("domain", string_of_int d) ]
        with
        | Some g -> acc +. Obs.Gauge.value g
        | None -> acc)
      0. [ 0; 1 ]
  in
  Obs.disable ();
  Alcotest.(check (float 0.)) "no worker busy after the batch" 0. busy;
  Alcotest.(check (float 0.)) "queue drained" 0. (gauge "parallel.queue.depth");
  Alcotest.(check (float 0.)) "pool size published" 2. (gauge "parallel.pool.domains")

(* The submitting domain's hooks must be restored after a batch: the
   engine's process-wide bdd.nodes_allocated counter keeps working. *)
let test_hooks_restored () =
  Obs.enable ();
  Obs.reset ();
  let pool = Parallel.Pool.create ~domains:2 () in
  ignore
    (Parallel.Pool.map pool
       ~f:(fun x -> Symbdd.Bdd.sat_count ~nvars:8 (Symbdd.Bdd.var x))
       [ 0; 1; 2; 3 ]);
  let before = Obs.Counter.value Engine.Metrics.bdd_nodes in
  (* Fresh structure in the main domain must land in the global counter. *)
  ignore
    (Symbdd.Bdd.conj_list (List.init 12 (fun i -> Symbdd.Bdd.var (200 + i))));
  let after = Obs.Counter.value Engine.Metrics.bdd_nodes in
  Obs.disable ();
  check_bool "global alloc hook restored after batch" true (after > before)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "sizing" `Quick test_sizing;
          Alcotest.test_case "deterministic ordering" `Quick test_ordering;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
          Alcotest.test_case "usable after exception" `Quick
            test_usable_after_exception;
          Alcotest.test_case "per-domain BDD managers" `Quick
            test_bdd_isolation;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "overlap summaries serial=parallel" `Slow
            test_overlap_summaries_identical;
          Alcotest.test_case "E4 serial=parallel" `Slow test_e4_identical;
        ] );
      ( "compile-cache",
        [
          Alcotest.test_case "hit rate on cloud corpus" `Slow
            test_cache_hit_rate;
          Alcotest.test_case "manager stats track the cache" `Quick
            test_cache_stats_in_manager;
          Alcotest.test_case "content-based keys" `Quick
            test_cache_keys_content_based;
        ] );
      ( "observability",
        [
          Alcotest.test_case "per-domain labeled series" `Quick
            test_per_domain_series;
          Alcotest.test_case "labeled registration race" `Quick
            test_labeled_registration_race_in_pool;
          Alcotest.test_case "pool gauges settle" `Quick
            test_pool_gauges_settle;
          Alcotest.test_case "hooks restored after batch" `Quick
            test_hooks_restored;
        ] );
    ]
