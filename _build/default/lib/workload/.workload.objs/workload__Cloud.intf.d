lib/workload/cloud.mli: Config
