(* The Figure-4 aggregator: per-router statistics recomputed from
   recorded session logs instead of ad hoc counters inside the
   evaluation harness. Everything in the Markdown and CSV renderings is
   deterministic (event counts and chars/4 token estimates), so reports
   can be committed as goldens and diffed in CI; wall-clock phase
   timings are confined to the JSON rendering. *)

module E = Telemetry.Event

type phase = { phase : string; total_ns : float; count : int }

type fleet_info = {
  role : string; (* netgen role recorded by the E5 fleet_router event *)
  steps_planned : int;
  completed : bool; (* a fleet_router_done event was seen *)
  wall_ns : float; (* from fleet_router_done; 0 until completed *)
}

type router_stats = {
  router : string;
  sessions : int; (* session_start events *)
  route_maps : int; (* distinct session_start targets *)
  stanzas : int; (* placement events *)
  questions : int;
  probes : int;
  boundaries : int; (* summed over placement events *)
  retries : int; (* verify events with a non-"verified" verdict *)
  classify_calls : int;
  synthesize_calls : int;
  spec_calls : int;
  prompt_tokens : int;
  completion_tokens : int;
  cost_usd : float;
  phases : phase list; (* wall time per pipeline phase; JSON only *)
  boundary_ns : float; (* find_boundaries span time; JSON only *)
  batch_sessions : int; (* session_start with pipeline="batch" *)
  batch_intents : int; (* intents over all batch_plan events *)
  batch_conflict_pairs : int; (* genuine inter-intent conflict edges *)
  batch_fast_path : int; (* batch items placed without recompiling *)
  batch_questions_saved : int; (* batch_cache_hit events *)
  gauges : (string * float) list; (* last "gauges" event; JSON only *)
  fleet : fleet_info option; (* E5 fleet runs only; JSON only *)
}

type t = { routers : router_stats list }

let llm_calls s = s.classify_calls + s.synthesize_calls + s.spec_calls

(* Phase attribution from span mirror events: the root span (depth 0)
   is the whole pipeline run, depth-1 spans are its phases (classify,
   spec_extract, synthesize, import, disambiguate), named by the last
   path segment. Deeper spans are details of a phase and would double
   count. *)
let phase_of_span e =
  match (E.int_field "depth" e, E.str_field "path" e) with
  | Some 0, Some _ -> Some "total"
  | Some 1, Some path ->
      let segs = String.split_on_char '.' path in
      Some (List.nth segs (List.length segs - 1))
  | _ -> None

(* ------------------------------------------------------------------ *)
(* The incremental accumulator: everything in router_stats, folded one
   event at a time in constant space. [add] consumes events in log
   order; [merge] combines two accumulators whose event ranges are
   ordered left-before-right, and is associative, so a pooled fold over
   file shards finishes byte-identically to a serial fold. Streaming
   (Stream) and batch (of_sessions) reports share this fold, which is
   what makes them byte-for-byte interchangeable.                      *)
(* ------------------------------------------------------------------ *)

module Acc = struct
  type t = {
    events : int;
    sessions : int;
    targets : string list; (* sorted, deduplicated *)
    stanzas : int;
    questions : int;
    probes : int;
    boundaries : int;
    retries : int;
    classify : int;
    synthesize : int;
    spec : int;
    prompt_tokens : int;
    completion_tokens : int;
    phases : (string * phase) list; (* keyed assoc, order irrelevant *)
    boundary_ns : float;
    batch_sessions : int;
    batch_intents : int;
    batch_conflict_pairs : int;
    batch_fast_path : int;
    batch_questions_saved : int;
    gauges : (string * float) list;
    gauges_seen : bool; (* so merge can make the LAST gauges event win *)
    ctx_router : string option; (* first ctx "router" label *)
    fleet_role : string option; (* E5 fleet_router event *)
    fleet_steps : int;
    fleet_done : bool;
    fleet_wall_ns : float;
    last_ts_ns : float;
    last_kind : string option;
  }

  let empty =
    {
      events = 0;
      sessions = 0;
      targets = [];
      stanzas = 0;
      questions = 0;
      probes = 0;
      boundaries = 0;
      retries = 0;
      classify = 0;
      synthesize = 0;
      spec = 0;
      prompt_tokens = 0;
      completion_tokens = 0;
      phases = [];
      boundary_ns = 0.;
      batch_sessions = 0;
      batch_intents = 0;
      batch_conflict_pairs = 0;
      batch_fast_path = 0;
      batch_questions_saved = 0;
      gauges = [];
      gauges_seen = false;
      ctx_router = None;
      fleet_role = None;
      fleet_steps = 0;
      fleet_done = false;
      fleet_wall_ns = 0.;
      last_ts_ns = 0.;
      last_kind = None;
    }

  let duration_ns e =
    match E.field "duration_ns" e with
    | Some (Json.Float f) -> Some f
    | Some (Json.Int i) -> Some (float_of_int i)
    | _ -> None

  let insert_target targets t =
    (* Sorted insertion keeps the set small (distinct route-maps per
       router) and the representation canonical for merge. *)
    let rec go = function
      | [] -> [ t ]
      | x :: rest as l ->
          let c = String.compare t x in
          if c < 0 then t :: l else if c = 0 then l else x :: go rest
    in
    go targets

  let int_field f e = Option.value ~default:0 (E.int_field f e)

  let add acc e =
    let acc =
      {
        acc with
        events = acc.events + 1;
        last_ts_ns = Float.max acc.last_ts_ns e.E.ts_ns;
        last_kind = Some e.E.kind;
        ctx_router =
          (match acc.ctx_router with
          | Some _ as r -> r
          | None -> List.assoc_opt "router" e.E.ctx);
      }
    in
    match e.E.kind with
    | "session_start" ->
        let acc =
          match E.str_field "target" e with
          | Some t -> { acc with targets = insert_target acc.targets t }
          | None -> acc
        in
        let batch =
          if E.str_field "pipeline" e = Some "batch" then 1 else 0
        in
        {
          acc with
          sessions = acc.sessions + 1;
          batch_sessions = acc.batch_sessions + batch;
        }
    | "placement" ->
        {
          acc with
          stanzas = acc.stanzas + 1;
          boundaries = acc.boundaries + int_field "boundaries" e;
        }
    | "question" -> { acc with questions = acc.questions + 1 }
    | "probe" -> { acc with probes = acc.probes + 1 }
    | "verify" ->
        if E.str_field "verdict" e <> Some "verified" then
          { acc with retries = acc.retries + 1 }
        else acc
    | "llm_classify" ->
        {
          acc with
          classify = acc.classify + 1;
          prompt_tokens = acc.prompt_tokens + int_field "prompt_tokens" e;
          completion_tokens =
            acc.completion_tokens + int_field "completion_tokens" e;
        }
    | "llm_synthesize" ->
        {
          acc with
          synthesize = acc.synthesize + 1;
          prompt_tokens = acc.prompt_tokens + int_field "prompt_tokens" e;
          completion_tokens =
            acc.completion_tokens + int_field "completion_tokens" e;
        }
    | "llm_spec" ->
        {
          acc with
          spec = acc.spec + 1;
          prompt_tokens = acc.prompt_tokens + int_field "prompt_tokens" e;
          completion_tokens =
            acc.completion_tokens + int_field "completion_tokens" e;
        }
    | "span" ->
        let acc =
          match (E.str_field "path" e, duration_ns e) with
          | Some path, Some d
            when String.ends_with ~suffix:"find_boundaries" path ->
              { acc with boundary_ns = acc.boundary_ns +. d }
          | _ -> acc
        in
        (match (phase_of_span e, duration_ns e) with
        | Some name, Some d ->
            let cur =
              Option.value
                ~default:{ phase = name; total_ns = 0.; count = 0 }
                (List.assoc_opt name acc.phases)
            in
            {
              acc with
              phases =
                ( name,
                  {
                    cur with
                    total_ns = cur.total_ns +. d;
                    count = cur.count + 1;
                  } )
                :: List.remove_assoc name acc.phases;
            }
        | _ -> acc)
    | "batch_plan" ->
        {
          acc with
          batch_intents = acc.batch_intents + int_field "intents" e;
          batch_conflict_pairs =
            acc.batch_conflict_pairs + int_field "conflict_pairs" e;
        }
    | "batch_item" ->
        if E.field "fast_path" e = Some (Json.Bool true) then
          { acc with batch_fast_path = acc.batch_fast_path + 1 }
        else acc
    | "batch_cache_hit" ->
        { acc with batch_questions_saved = acc.batch_questions_saved + 1 }
    | "gauges" ->
        (* Runtime state sampled when the session closed; the last
           gauges event wins when several sessions merge into one
           router row. JSON-only, like the phase timings. *)
        {
          acc with
          gauges_seen = true;
          gauges =
            List.filter_map
              (fun (n, v) ->
                match v with
                | Json.Float f -> Some (n, f)
                | Json.Int i -> Some (n, float_of_int i)
                | _ -> None)
              e.E.fields;
        }
    | "fleet_router" ->
        {
          acc with
          fleet_role = Some (Option.value ~default:"" (E.str_field "role" e));
          fleet_steps = int_field "steps" e;
        }
    | "fleet_router_done" ->
        let wall =
          match E.field "wall_ns" e with
          | Some (Json.Float f) -> f
          | Some (Json.Int i) -> float_of_int i
          | _ -> 0.
        in
        { acc with fleet_done = true; fleet_wall_ns = wall }
    | _ -> acc

  (* [merge a b] where a's events precede b's. *)
  let merge a b =
    let merge_phases pa pb =
      List.fold_left
        (fun acc (name, (p : phase)) ->
          let cur =
            Option.value ~default:{ phase = name; total_ns = 0.; count = 0 }
              (List.assoc_opt name acc)
          in
          ( name,
            {
              cur with
              total_ns = cur.total_ns +. p.total_ns;
              count = cur.count + p.count;
            } )
          :: List.remove_assoc name acc)
        pa pb
    in
    let merge_targets ta tb = List.fold_left insert_target ta tb in
    {
      events = a.events + b.events;
      sessions = a.sessions + b.sessions;
      targets = merge_targets a.targets b.targets;
      stanzas = a.stanzas + b.stanzas;
      questions = a.questions + b.questions;
      probes = a.probes + b.probes;
      boundaries = a.boundaries + b.boundaries;
      retries = a.retries + b.retries;
      classify = a.classify + b.classify;
      synthesize = a.synthesize + b.synthesize;
      spec = a.spec + b.spec;
      prompt_tokens = a.prompt_tokens + b.prompt_tokens;
      completion_tokens = a.completion_tokens + b.completion_tokens;
      phases = merge_phases a.phases b.phases;
      boundary_ns = a.boundary_ns +. b.boundary_ns;
      batch_sessions = a.batch_sessions + b.batch_sessions;
      batch_intents = a.batch_intents + b.batch_intents;
      batch_conflict_pairs = a.batch_conflict_pairs + b.batch_conflict_pairs;
      batch_fast_path = a.batch_fast_path + b.batch_fast_path;
      batch_questions_saved =
        a.batch_questions_saved + b.batch_questions_saved;
      gauges = (if b.gauges_seen then b.gauges else a.gauges);
      gauges_seen = a.gauges_seen || b.gauges_seen;
      ctx_router = (match a.ctx_router with Some _ -> a.ctx_router | None -> b.ctx_router);
      fleet_role = (match a.fleet_role with Some _ -> a.fleet_role | None -> b.fleet_role);
      fleet_steps = max a.fleet_steps b.fleet_steps;
      fleet_done = a.fleet_done || b.fleet_done;
      fleet_wall_ns = Float.max a.fleet_wall_ns b.fleet_wall_ns;
      last_ts_ns = Float.max a.last_ts_ns b.last_ts_ns;
      last_kind = (match b.last_kind with Some _ -> b.last_kind | None -> a.last_kind);
    }

  let router_label acc = acc.ctx_router
  let events acc = acc.events
  let last_ts_ns acc = acc.last_ts_ns
  let last_kind acc = acc.last_kind
  let questions acc = acc.questions
  let stanzas acc = acc.stanzas

  let finish ~router acc =
    {
      router;
      sessions = acc.sessions;
      route_maps = List.length acc.targets;
      stanzas = acc.stanzas;
      questions = acc.questions;
      probes = acc.probes;
      boundaries = acc.boundaries;
      retries = acc.retries;
      classify_calls = acc.classify;
      synthesize_calls = acc.synthesize;
      spec_calls = acc.spec;
      prompt_tokens = acc.prompt_tokens;
      completion_tokens = acc.completion_tokens;
      cost_usd =
        Llm.Tokens.cost ~prompt_tokens:acc.prompt_tokens
          ~completion_tokens:acc.completion_tokens;
      phases =
        List.map snd acc.phases
        |> List.sort (fun a b -> String.compare a.phase b.phase);
      boundary_ns = acc.boundary_ns;
      batch_sessions = acc.batch_sessions;
      batch_intents = acc.batch_intents;
      batch_conflict_pairs = acc.batch_conflict_pairs;
      batch_fast_path = acc.batch_fast_path;
      batch_questions_saved = acc.batch_questions_saved;
      gauges = acc.gauges;
      fleet =
        (match acc.fleet_role with
        | None -> None
        | Some role ->
            Some
              {
                role;
                steps_planned = acc.fleet_steps;
                completed = acc.fleet_done;
                wall_ns = acc.fleet_wall_ns;
              });
    }

  let of_events events = List.fold_left add empty events
end

(* Accumulators for the same router (one log per policy step, say)
   merge into one row in input order; rows sort by router name so
   output order never depends on argument or readdir order. *)
let of_accs named =
  let order = ref [] in
  let groups = Hashtbl.create 8 in
  List.iter
    (fun (fallback, acc) ->
      let r = Option.value ~default:fallback (Acc.router_label acc) in
      (match Hashtbl.find_opt groups r with
      | None ->
          order := r :: !order;
          Hashtbl.replace groups r acc
      | Some prev -> Hashtbl.replace groups r (Acc.merge prev acc)))
    named;
  let routers =
    List.rev_map
      (fun router -> Acc.finish ~router (Hashtbl.find groups router))
      !order
    |> List.sort (fun a b -> String.compare a.router b.router)
  in
  { routers }

let of_sessions sessions =
  of_accs
    (List.map
       (fun s -> (s.Session.name, Acc.of_events s.Session.events))
       sessions)

(* ------------------------------------------------------------------ *)
(* Renderings                                                         *)
(* ------------------------------------------------------------------ *)

let figure4_markdown t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    "| Router | Route-maps | Stanzas | Synthesis calls | Questions | \
     Boundaries | Retries |\n";
  Buffer.add_string b "|---|---:|---:|---:|---:|---:|---:|\n";
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "| %s | %d | %d | %d | %d | %d | %d |\n" s.router
           s.route_maps s.stanzas s.synthesize_calls s.questions s.boundaries
           s.retries))
    t.routers;
  Buffer.contents b

let cost_markdown t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    "| Router | LLM calls | Classify | Synthesize | Spec | Prompt tokens | \
     Completion tokens | Est. cost (USD) |\n";
  Buffer.add_string b "|---|---:|---:|---:|---:|---:|---:|---:|\n";
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "| %s | %d | %d | %d | %d | %d | %d | %.6f |\n"
           s.router (llm_calls s) s.classify_calls s.synthesize_calls
           s.spec_calls s.prompt_tokens s.completion_tokens s.cost_usd))
    t.routers;
  Buffer.contents b

(* Only rendered when batch sessions are present, so reports over
   single-intent logs (e.g. the committed E4 golden) are unchanged. *)
let batch_markdown t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    "| Router | Batch sessions | Intents | Conflict pairs | Fast-path \
     placements | Questions saved |\n";
  Buffer.add_string b "|---|---:|---:|---:|---:|---:|\n";
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "| %s | %d | %d | %d | %d | %d |\n" s.router
           s.batch_sessions s.batch_intents s.batch_conflict_pairs
           s.batch_fast_path s.batch_questions_saved))
    t.routers;
  Buffer.contents b

let to_markdown t =
  "# Session report\n\n## Figure 4: per-router interaction counts\n\n"
  ^ figure4_markdown t ^ "\n## LLM usage and estimated cost\n\n"
  ^ cost_markdown t
  ^
  if List.exists (fun s -> s.batch_sessions > 0) t.routers then
    "\n## Batch intents\n\n" ^ batch_markdown t
  else ""

let to_csv t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    "router,sessions,route_maps,stanzas,questions,probes,boundaries,retries,\
     classify_calls,synthesize_calls,spec_calls,prompt_tokens,\
     completion_tokens,cost_usd,batch_sessions,batch_intents,\
     batch_conflict_pairs,batch_fast_path,batch_questions_saved\n";
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf
           "%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.6f,%d,%d,%d,%d,%d\n"
           s.router s.sessions s.route_maps s.stanzas s.questions s.probes
           s.boundaries s.retries s.classify_calls s.synthesize_calls
           s.spec_calls s.prompt_tokens s.completion_tokens s.cost_usd
           s.batch_sessions s.batch_intents s.batch_conflict_pairs
           s.batch_fast_path s.batch_questions_saved))
    t.routers;
  Buffer.contents b

let to_json t =
  Json.Obj
    [
      ( "routers",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("router", Json.String s.router);
                   ("sessions", Json.Int s.sessions);
                   ("route_maps", Json.Int s.route_maps);
                   ("stanzas", Json.Int s.stanzas);
                   ("questions", Json.Int s.questions);
                   ("probes", Json.Int s.probes);
                   ("boundaries", Json.Int s.boundaries);
                   ("retries", Json.Int s.retries);
                   ("classify_calls", Json.Int s.classify_calls);
                   ("synthesize_calls", Json.Int s.synthesize_calls);
                   ("spec_calls", Json.Int s.spec_calls);
                   ("llm_calls", Json.Int (llm_calls s));
                   ("prompt_tokens", Json.Int s.prompt_tokens);
                   ("completion_tokens", Json.Int s.completion_tokens);
                   ("cost_usd", Json.Float s.cost_usd);
                   ("batch_sessions", Json.Int s.batch_sessions);
                   ("batch_intents", Json.Int s.batch_intents);
                   ("batch_conflict_pairs", Json.Int s.batch_conflict_pairs);
                   ("batch_fast_path", Json.Int s.batch_fast_path);
                   ( "batch_questions_saved",
                     Json.Int s.batch_questions_saved );
                   ("boundary_ns", Json.Float s.boundary_ns);
                   ( "boundary_ns_per_question",
                     Json.Float
                       (s.boundary_ns /. float_of_int (max 1 s.questions)) );
                   ( "gauges",
                     Json.Obj
                       (List.map (fun (n, v) -> (n, Json.Float v)) s.gauges) );
                   ( "fleet",
                     match s.fleet with
                     | None -> Json.Null
                     | Some f ->
                         Json.Obj
                           [
                             ("role", Json.String f.role);
                             ("steps_planned", Json.Int f.steps_planned);
                             ("completed", Json.Bool f.completed);
                             ("wall_ns", Json.Float f.wall_ns);
                           ] );
                   ( "phases",
                     Json.List
                       (List.map
                          (fun p ->
                            Json.Obj
                              [
                                ("phase", Json.String p.phase);
                                ("total_ns", Json.Float p.total_ns);
                                ("count", Json.Int p.count);
                              ])
                          s.phases) );
                 ])
             t.routers) );
    ]
