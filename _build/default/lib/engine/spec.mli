(** Behavioural specifications for a single route-map stanza, in the
    paper's JSON format:

    {v
    { "permit": true,
      "prefix": ["100.0.0.0/16:16-23"],
      "community": "/_300:3_/",
      "set": { "metric": 55 } }
    v}

    A spec pairs a match condition (conjunction of the given fields,
    empty fields unconstrained) with an expected action and expected
    set clauses. Additional fields beyond the paper's example:
    ["communitiesAll"] (route carries all the listed communities),
    ["asPath"], ["localPreference"], ["metric"], ["tag"]. *)

type t = {
  action : Config.Action.t;
  prefixes : Netaddr.Prefix_range.t list; (* OR; empty = unconstrained *)
  community : Sre.Community_regex.t option; (* >=1 matching community *)
  communities_all : Bgp.Community.t list; (* carries all of these *)
  as_path : Sre.As_path_regex.t option;
  local_pref : int option;
  metric : int option;
  tag : int option;
  sets : Config.Route_map.set_clause list;
}

val make :
  ?prefixes:Netaddr.Prefix_range.t list ->
  ?community:Sre.Community_regex.t ->
  ?communities_all:Bgp.Community.t list ->
  ?as_path:Sre.As_path_regex.t ->
  ?local_pref:int ->
  ?metric:int ->
  ?tag:int ->
  ?sets:Config.Route_map.set_clause list ->
  Config.Action.t ->
  t

exception Spec_error of string

val of_json : Json.t -> t
(** @raise Spec_error on malformed specs. *)

val of_string : string -> (t, string) result
val to_json : t -> Json.t
val to_string : t -> string

val matches : t -> Bgp.Route.t -> bool
(** Does a concrete route satisfy the spec's match condition? *)

val pp : Format.formatter -> t -> unit
