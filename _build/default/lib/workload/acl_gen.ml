(** Synthetic ACL generation with exact overlap accounting.

    ACLs are assembled from three building blocks whose pairwise
    interactions are known in closed form, so a generated ACL has a
    predictable overlap profile (verified by the analyzer in tests):

    - a block of [plain] pairwise-disjoint permit rules (0 overlaps);
    - [crossing] pairs of partially-overlapping rules with opposite
      actions confined to pair-private address space: each pair adds
      exactly one {e non-trivial} conflicting overlap;
    - an optional trailing [deny ip any any], which overlaps every
      preceding rule and conflicts (trivially, as a superset) with every
      permit rule.

    Totals for an ACL with [p] plain rules, [k] crossing pairs and a
    trailing deny: overlaps = 3k + p + 1·0 ... precisely [3k + p] plus
    [k + p] conflicts from the trailing deny; without it, overlaps = k.
    In closed form (with trailing deny): overlaps = 3k + p, conflicts =
    2k + p, non-trivial conflicts = k. Without: overlaps = conflicts =
    non-trivial = k. *)

let ip = Netaddr.Ipv4.of_octets

(* Pair-private address spaces: octet pools sliced per rule index. *)
let plain_rule rng i =
  (* permit tcp host 30.x.y.i any eq port — distinct hosts are disjoint. *)
  let x = Random.State.int rng 200 in
  let y = Random.State.int rng 200 in
  Config.Acl.rule ~protocol:Config.Packet.Tcp
    ~src:(Config.Acl.Host (ip 30 x y (i land 0xff)))
    ~dst:Config.Acl.Any
    ~dst_port:(Config.Acl.Eq (1024 + (i mod 50000)))
    Config.Action.Permit

let crossing_pair rng i =
  (* Confined to src 10.i.0.0/16 and dst 20.i.0.0/16; the two rules
     intersect but neither contains the other. *)
  let port = 80 + Random.State.int rng 100 in
  let r1 =
    Config.Acl.rule ~protocol:Config.Packet.Tcp
      ~src:(Config.Acl.addr_of_prefix (Netaddr.Prefix.make (ip 10 i 0 0) 17))
      ~dst:(Config.Acl.addr_of_prefix (Netaddr.Prefix.make (ip 20 i 0 0) 16))
      ~dst_port:(Config.Acl.Eq port) Config.Action.Permit
  in
  let r2 =
    Config.Acl.rule ~protocol:Config.Packet.Tcp
      ~src:(Config.Acl.addr_of_prefix (Netaddr.Prefix.make (ip 10 i 0 0) 16))
      ~dst:(Config.Acl.addr_of_prefix (Netaddr.Prefix.make (ip 20 i 0 0) 17))
      ~dst_port:(Config.Acl.Eq port) Config.Action.Deny
  in
  [ r1; r2 ]

let trailing_deny = Config.Acl.rule Config.Action.Deny

(** Build an ACL with [plain] disjoint permits, [crossing] conflicting
    pairs, and optionally a trailing deny-any. *)
let make ~rng ~name ~plain ~crossing ~trailing_deny_any =
  if crossing > 255 then invalid_arg "Acl_gen.make: crossing > 255";
  let rules =
    List.concat
      [
        List.concat (List.init crossing (fun i -> crossing_pair rng (i + 1)));
        List.init plain (fun i -> plain_rule rng i);
        (if trailing_deny_any then [ trailing_deny ] else []);
      ]
  in
  Config.Acl.resequence (Config.Acl.make name rules)

(** Expected analyzer output for the parameters, used for calibration
    checks. *)
let expected ~plain ~crossing ~trailing_deny_any =
  if trailing_deny_any then
    (* crossing pairs + every rule vs the trailing deny *)
    let overlaps = crossing + (2 * crossing) + plain in
    let conflicts = crossing + crossing + plain in
    (overlaps, conflicts, crossing)
  else (crossing, crossing, crossing)
