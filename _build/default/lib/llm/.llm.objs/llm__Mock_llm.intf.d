lib/llm/mock_llm.mli: Classifier Engine Fault_injector
