(** Hash-consed reduced ordered binary decision diagrams.

    Variables are non-negative integers ordered by their index: smaller
    indices appear closer to the root. All BDDs built through one
    manager are maximally shared, so structural equality coincides with
    handle equality and is O(1) via {!equal}.

    {b Representation.} A BDD value is an integer handle into its
    manager's node store. The default store is an {e arena}: nodes are
    int-packed (var, lo, hi) triples in a flat growable bigarray,
    hash-consed through open-addressing tables that never allocate on
    the probe path, with bounded generation-tagged operation memos
    ([CLARIFY_BDD_MEMO_BOUND], default 2{^20} entries per memo). Setting
    [CLARIFY_BOXED_BDD=1] (or [Manager.create ~boxed:true]) selects the
    historical boxed-record store instead — slower, but kept as a
    byte-equal differential oracle.

    {b Managers and domains.} All mutable state (the node store, the
    operation memo tables, the compilation cache, the hooks) lives in a
    {!Manager.t}. The module-level operations act on a {e domain-local}
    default manager — one per [Domain], allocated lazily — so every
    domain owns an isolated, race-free BDD universe and parallel
    workers never contend on the allocation path. Node identity is
    manager-relative: never mix BDDs built by different managers (or by
    the same manager across a {!Manager.reset}) in one operation.

    {b Base and delta managers.} {!Manager.freeze} turns a manager into
    a read-only base; {!Manager.create_delta} layers a private writable
    manager on top of a frozen base. A delta resolves handles, unique
    lookups and {!cached} probes through base-then-delta fall-through
    and allocates only in its own arena, so many worker domains can
    share one compiled base (corpus, partition, prefix encodings)
    without recompiling it per domain and without synchronization —
    the base is immutable after the freeze. Handles built by the base
    are valid in every one of its deltas. *)

type t

(** The mutable BDD universe: node store, memo tables, compilation
    cache and observability hooks. *)
module Manager : sig
  type bdd = t
  type t

  val create : ?boxed:bool -> ?memo_bound:int -> unit -> t
  (** [create ()] makes a fresh root manager. [boxed] selects the
      historical boxed-record oracle store (default: the int-packed
      arena, unless the [CLARIFY_BOXED_BDD] environment variable is
      truthy). [memo_bound] caps each operation-memo table at that many
      entries (rounded up to a power of two, min 16); when a bounded
      memo fills up it is evicted wholesale by a generation bump
      instead of growing. Default: [CLARIFY_BDD_MEMO_BOUND] or 2{^20}. *)

  val current : unit -> t
  (** The calling domain's default manager (created on first use). *)

  val freeze : t -> unit
  (** Make the manager read-only: any operation that would allocate a
      fresh node afterwards raises [Invalid_argument]. Required before
      {!create_delta}; freezing is what makes sharing the manager
      across domains race-free. *)

  val frozen : t -> bool

  val create_delta : t -> t
  (** [create_delta base] is a private writable manager layered on the
      frozen root manager [base]: node and compilation-cache lookups
      fall through [base] first, fresh allocations go only to the
      delta, and [base]'s handles remain valid (and equal) in the
      delta. The delta inherits [base]'s store flavour and memo bound.
      @raise Invalid_argument if [base] is not frozen, or is itself a
      delta. *)

  val clear_caches : t -> unit
  (** Drop the operation memo tables only; hash-consed nodes and the
      compilation cache are kept. *)

  val reset : t -> unit
  (** Full reset: unique table, id allocator, memo tables and the
      compilation cache. Invalidates {e every} BDD the manager has
      built — only call between independent analyses when none of
      their results is still live. On a delta this rewinds to the base
      boundary and leaves the shared base untouched. Bounds memory
      across large corpus sweeps, which {!val:clear_caches} alone
      cannot (it keeps the unique table).
      @raise Invalid_argument on a frozen manager. *)

  type stats = {
    nodes : int; (* live entries in the own unique table *)
    next_id : int; (* next fresh node handle *)
    neg_memo : int;
    and_memo : int;
    or_memo : int; (* 0 in the boxed oracle (disj has no own memo) *)
    xor_memo : int;
    restrict_memo : int;
    cache_entries : int; (* own compilation-cache entries *)
    cache_hits : int; (* compilation-cache hits since creation *)
    cache_misses : int;
    boxed : bool; (* true when this manager uses the oracle store *)
    base_nodes : int; (* nodes inherited from a frozen base *)
    arena_capacity : int; (* own node-store capacity (0 when boxed) *)
    uniq_slots : int; (* own unique-table slots (0 when boxed) *)
    uniq_lookups : int; (* unique-table lookups since creation *)
    uniq_probes : int; (* slots inspected across those lookups *)
    memo_evictions : int; (* generation bumps forced by the memo bound *)
  }

  val stats : t -> stats

  val boxed_env : string
  (** ["CLARIFY_BOXED_BDD"] — truthy values ("1", "true", "yes", "on")
      make {!create} default to the boxed oracle store. *)

  val memo_bound_env : string
  (** ["CLARIFY_BDD_MEMO_BOUND"] — default per-memo entry bound. *)
end

val manager : unit -> Manager.t
(** Alias for {!Manager.current}. *)

val with_manager : Manager.t -> (unit -> 'a) -> 'a
(** [with_manager m f] runs [f] with [m] installed as the calling
    domain's default manager, restoring the previous one afterwards
    (also on raise). BDDs built inside [f] belong to [m] and must not
    escape into operations under another manager (base handles inside
    one of the base's deltas excepted). *)

val zero : t
(** The constant false. *)

val one : t
(** The constant true. *)

val var : int -> t
(** [var i] is the BDD of the propositional variable [i].
    @raise Invalid_argument if [i < 0]. *)

val nvar : int -> t
(** [nvar i] is the negation of variable [i]. *)

val neg : t -> t
val conj : t -> t -> t

val disj : t -> t -> t
(** Direct recursive disjunction with its own memo table (the boxed
    oracle keeps the historical [neg (conj (neg a) (neg b))] detour). *)

val xor : t -> t -> t
val imp : t -> t -> t
val iff : t -> t -> t
val ite : t -> t -> t -> t

val conj_list : t list -> t
(** Conjunction of a list, short-circuiting on {!zero}. *)

val disj_list : t list -> t
(** Disjunction of a list, short-circuiting on {!one}. *)

val exists : int list -> t -> t
(** Existentially quantify the given variables. *)

val restrict : int -> bool -> t -> t
(** [restrict i v t] fixes variable [i] to [v]. *)

val is_zero : t -> bool
val is_one : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val is_sat : t -> bool
val implies : t -> t -> bool
(** [implies a b] iff [a] entails [b]. *)

val cached : key:string -> (unit -> t) -> t
(** [cached ~key f] is the symbolic compilation cache of the current
    manager: return the BDD memoized under [key], or run [f], store
    its result and return it. Keys must canonically encode the whole
    source object being compiled (two different objects must never
    render to the same key). On a delta manager the probe falls
    through to the frozen base's cache first, so work compiled in the
    base is reused without reallocation. Hit/miss totals appear in
    {!Manager.stats} and fire {!set_cache_hook}. *)

val any_sat : t -> (int * bool) list
(** A partial assignment (variable, value) making the BDD true; variables
    absent from the list are don't-cares. @raise Not_found on [zero]. *)

val all_sat : t -> (int * bool) list Seq.t
(** Lazy sequence of all satisfying partial assignments (BDD paths). *)

val sat_count : nvars:int -> t -> float
(** Number of satisfying total assignments over a universe of [nvars]
    variables (as float: counts can exceed 2{^62}). *)

val size : t -> int
(** Number of distinct internal nodes. *)

val support : t -> int list
(** Variables the function actually depends on, ascending. *)

val eval : (int -> bool) -> t -> bool
(** Evaluate under a total assignment. *)

val node_count : unit -> int
(** Number of live nodes in the current domain's unique table
    (diagnostic); [Manager.stats] gives the full picture. *)

val set_alloc_hook : (unit -> unit) option -> unit
(** Install (or clear) a callback on the {e current domain's} manager,
    fired once per fresh node allocation. Used by the observability
    layer to count BDD allocations; [None] keeps the allocation path
    hook-free apart from one match. Per-manager, so concurrent domains
    can count allocations without racing on a shared cell. *)

val set_cache_hook : (bool -> unit) option -> unit
(** Install (or clear) a callback on the current domain's manager,
    fired on every {!cached} probe with [true] on a hit and [false] on
    a miss. *)

val get_alloc_hook : unit -> (unit -> unit) option
val get_cache_hook : unit -> (bool -> unit) option
(** The current domain's installed hooks, so a scope that redirects
    them (e.g. a worker pool labelling allocations per domain) can
    restore the previous wiring afterwards. *)

val clear_caches : unit -> unit
(** [Manager.clear_caches] on the current domain's manager: drop
    operation memo tables (unique table is kept). Useful between large
    independent analyses to bound memo growth; use {!Manager.reset}
    to also bound the unique table. *)

val pp : Format.formatter -> t -> unit
(** Debug rendering as nested if-then-else. *)
